module mixtime

go 1.22
