// Package mixtime measures the mixing time of social graphs — a Go
// implementation of the methodology of Mohaisen, Yun and Kim,
// "Measuring the Mixing Time of Social Graphs" (IMC 2010).
//
// The mixing time T(ε) of the random walk on a graph is the walk
// length needed for the walk's distribution to come within total
// variation distance ε of the stationary distribution
// π_v = deg(v)/2m, from the worst-case start vertex. Social-network
// Sybil defenses (SybilGuard, SybilLimit, SybilInfer, Whānau) assume
// social graphs mix in O(log n) steps; the paper — and this library —
// measures how far real graph structure is from that assumption.
//
// Two measurement techniques are provided, exactly as in the paper:
//
//   - the spectral bound: the second largest eigenvalue modulus µ of
//     the transition matrix, estimated matrix-free by deflated power
//     iteration or Lanczos, bounding T(ε) via Sinclair's inequalities
//     (SLEM, MixingLowerBound, MixingUpperBound);
//
//   - direct sampling: exact propagation of point distributions with
//     per-step distance traces (Measure, Measurement).
//
// The package also ships the substrates the paper's evaluation needs:
// compact CSR graphs with the paper's preprocessing (largest
// component, degree trimming, BFS sampling), synthetic substitutes
// for the paper's fifteen datasets, a full SybilLimit/SybilGuard
// implementation with an attack model, and experiment drivers that
// regenerate every table and figure (see cmd/paperfigs and
// EXPERIMENTS.md).
//
// # Quick start
//
//	g := mixtime.BarabasiAlbert(10_000, 5, 1)
//	m, err := mixtime.Measure(g, mixtime.Options{Sources: 100, MaxWalk: 200})
//	if err != nil { ... }
//	fmt.Printf("µ = %.4f\n", m.Mu())
//	t, ok := m.SampledMixingTime(0.01)
//	fmt.Printf("sampled T(0.01) = %d (reached: %v); log n = %d\n",
//		t, ok, m.FastMixingYardstick())
//
// # Package map
//
// This facade re-exports the internal packages. Where something lives:
//
//	internal/graph        CSR graph, LCC, trimming, BFS sampling, shard plans
//	internal/digraph      directed graphs, Tarjan SCC, symmetrization
//	internal/graphio      edge-list / binary graph I/O (gzip-aware)
//	internal/linalg       dense Jacobi eigensolver, Sturm bisection, vectors
//	internal/markov       chain, exact propagation, TV/separation distance, traces
//	internal/spectral     SLEM (power, Lanczos), Sinclair/Cheeger bounds, sweep cut
//	internal/trust        trust-weighted and hesitant walks, weighted SLEM
//	internal/gen          reference topologies and social-graph generators
//	internal/datasets     Table-1 synthetic substitutes
//	internal/metrics      clustering, assortativity, degree statistics
//	internal/walk         plain walks and SybilGuard/SybilLimit random routes
//	internal/maxflow      Dinic max flow (SumUp substrate)
//	internal/sybil        SybilLimit, SybilGuard, SybilInfer, SumUp, attacks
//	internal/community    label propagation, Louvain, modularity
//	internal/centrality   betweenness, closeness, PageRank, PPR
//	internal/whanau       Whānau DHT core
//	internal/stats        CDFs, percentiles
//	internal/core         the composed Measure/MeasureContext pipeline
//	internal/distmix      simulated distributed estimation: superstep engine,
//	                      walker-flood mixing/local-mixing estimators (DESIGN.md §11)
//	internal/runner       experiment registry, parallel runner, observer events
//	internal/experiments  per-figure drivers (T1, F1–F8, X1–X7, D1–D2)
//	internal/telemetry    kernel counters, gauges, stage timers (DESIGN.md §8)
//	internal/textplot     ASCII charts and tables
//	internal/cliutil      CLI helpers: graph loading, pprof/trace capture
//
// The runner and telemetry layers are reachable through Options
// (Progress, Collector) and cmd/paperfigs; everything else surfaces
// here as plain functions and types.
package mixtime
