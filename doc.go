// Package mixtime measures the mixing time of social graphs — a Go
// implementation of the methodology of Mohaisen, Yun and Kim,
// "Measuring the Mixing Time of Social Graphs" (IMC 2010).
//
// The mixing time T(ε) of the random walk on a graph is the walk
// length needed for the walk's distribution to come within total
// variation distance ε of the stationary distribution
// π_v = deg(v)/2m, from the worst-case start vertex. Social-network
// Sybil defenses (SybilGuard, SybilLimit, SybilInfer, Whānau) assume
// social graphs mix in O(log n) steps; the paper — and this library —
// measures how far real graph structure is from that assumption.
//
// Two measurement techniques are provided, exactly as in the paper:
//
//   - the spectral bound: the second largest eigenvalue modulus µ of
//     the transition matrix, estimated matrix-free by deflated power
//     iteration or Lanczos, bounding T(ε) via Sinclair's inequalities
//     (SLEM, MixingLowerBound, MixingUpperBound);
//
//   - direct sampling: exact propagation of point distributions with
//     per-step distance traces (Measure, Measurement).
//
// The package also ships the substrates the paper's evaluation needs:
// compact CSR graphs with the paper's preprocessing (largest
// component, degree trimming, BFS sampling), synthetic substitutes
// for the paper's fifteen datasets, a full SybilLimit/SybilGuard
// implementation with an attack model, and experiment drivers that
// regenerate every table and figure (see cmd/paperfigs and
// EXPERIMENTS.md).
//
// # Quick start
//
//	g := mixtime.BarabasiAlbert(10_000, 5, 1)
//	m, err := mixtime.Measure(g, mixtime.Options{Sources: 100, MaxWalk: 200})
//	if err != nil { ... }
//	fmt.Printf("µ = %.4f\n", m.Mu())
//	t, ok := m.SampledMixingTime(0.01)
//	fmt.Printf("sampled T(0.01) = %d (reached: %v); log n = %d\n",
//		t, ok, m.FastMixingYardstick())
package mixtime
