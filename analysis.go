package mixtime

import (
	"math/rand/v2"

	"mixtime/internal/centrality"
	"mixtime/internal/community"
	"mixtime/internal/sybil"
	"mixtime/internal/whanau"
)

// --- Community detection ---------------------------------------------

// CommunityLabels assigns every vertex a community id.
type CommunityLabels = community.Labels

// Louvain detects communities by greedy modularity optimization.
// Slow mixing and community structure are two views of the same
// thing (§3.2/§5 of the paper); Louvain exposes the structure
// directly.
func Louvain(g *Graph, seed uint64) CommunityLabels {
	return community.Louvain(g, rand.New(rand.NewPCG(seed, 0x10a)))
}

// LabelPropagation detects communities by iterative majority
// labeling.
func LabelPropagation(g *Graph, maxSweeps int, seed uint64) CommunityLabels {
	return community.LabelPropagation(g, maxSweeps, rand.New(rand.NewPCG(seed, 0x10b)))
}

// Modularity returns Newman's modularity of a labeling.
func Modularity(g *Graph, l CommunityLabels) float64 { return community.Modularity(g, l) }

// --- Centrality -------------------------------------------------------

// Betweenness returns exact shortest-path betweenness (Brandes) —
// the ranking behind the betweenness-based Sybil defense the paper
// cites [19].
func Betweenness(g *Graph) []float64 { return centrality.Betweenness(g) }

// SampledBetweenness estimates betweenness from k pivot sources.
func SampledBetweenness(g *Graph, k int, seed uint64) []float64 {
	return centrality.SampledBetweenness(g, k, rand.New(rand.NewPCG(seed, 0x10c)))
}

// Closeness returns closeness centrality.
func Closeness(g *Graph) []float64 { return centrality.Closeness(g) }

// PageRank returns the damped PageRank vector (d ≤ 0 defaults to
// 0.85).
func PageRank(g *Graph, d float64) []float64 { return centrality.PageRank(g, d, 0, 0) }

// PersonalizedPageRank returns random-walk-with-restart scores from
// source — the "connectivity to the trusted node" core that Viswanath
// et al. showed underlies the random-walk Sybil defenses.
func PersonalizedPageRank(g *Graph, source NodeID, d float64) []float64 {
	return centrality.PersonalizedPageRank(g, source, d, 0, 0)
}

// TopNodes returns the indices of the k largest scores, descending.
func TopNodes(scores []float64, k int) []NodeID { return centrality.Top(scores, k) }

// --- SumUp -------------------------------------------------------------

// SumUpConfig parameterizes SumUp vote collection.
type SumUpConfig = sybil.SumUpConfig

// SumUpResult reports a vote collection.
type SumUpResult = sybil.SumUpResult

// SumUp collects votes at the collector through SumUp's max-flow
// envelope, bounding bogus votes by the number of attack edges.
func SumUp(g *Graph, collector NodeID, voters []NodeID, cfg SumUpConfig) (*SumUpResult, error) {
	return sybil.SumUp(g, collector, voters, cfg)
}

// --- Whānau -------------------------------------------------------------

// WhanauConfig parameterizes Whānau table construction.
type WhanauConfig = whanau.Config

// WhanauDHT is a built Whānau instance.
type WhanauDHT = whanau.DHT

// WhanauKey is a position on the DHT ring.
type WhanauKey = whanau.Key

// BuildWhanau constructs Whānau routing tables from random walks of
// length cfg.W over the social graph. Lookup success tracks how close
// walks of that length get to the stationary distribution.
func BuildWhanau(g *Graph, cfg WhanauConfig) (*WhanauDHT, error) {
	return whanau.Build(g, cfg)
}
