package mixtime

import (
	"math/rand/v2"

	"mixtime/internal/metrics"
	"mixtime/internal/sybil"
)

// --- SybilGuard -------------------------------------------------------

// SybilGuardConfig parameterizes the SybilGuard baselines.
type SybilGuardConfig = sybil.GuardConfig

// SybilGuardResult reports a SybilGuard verification sweep.
type SybilGuardResult = sybil.GuardResult

// SybilGuard runs the single-route SybilGuard baseline (verifier and
// suspects each walk one random route of length w; vertex
// intersection admits).
func SybilGuard(g *Graph, verifier NodeID, suspects []NodeID, cfg SybilGuardConfig) (*SybilGuardResult, error) {
	return sybil.SybilGuard(g, verifier, suspects, cfg)
}

// SybilGuardFull runs SybilGuard as published: one route per edge on
// both sides, and every verifier route must intersect the suspect.
func SybilGuardFull(g *Graph, verifier NodeID, suspects []NodeID, cfg SybilGuardConfig) (*SybilGuardResult, error) {
	return sybil.SybilGuardFull(g, verifier, suspects, cfg)
}

// SybilGuardWalkLength returns SybilGuard's prescribed route length
// ⌈√(n·ln n)⌉.
func SybilGuardWalkLength(n int) int { return sybil.GuardWalkLength(n) }

// --- SybilInfer -------------------------------------------------------

// SybilInferConfig parameterizes the SybilInfer detector.
type SybilInferConfig = sybil.InferConfig

// SybilInferResult carries the per-node honest-probability marginals.
type SybilInferResult = sybil.InferResult

// SybilInfer runs the Bayesian Sybil detector of Danezis & Mittal
// over short-walk traces. Its power rests on the fast-mixing
// assumption this library measures.
func SybilInfer(g *Graph, cfg SybilInferConfig) (*SybilInferResult, error) {
	return sybil.SybilInfer(g, cfg)
}

// --- SybilRank --------------------------------------------------------

// SybilRank propagates trust from seed nodes by power iteration
// terminated after iterations steps (≤ 0: ⌈log₂ n⌉, the published
// choice) and returns degree-normalized scores — the early-termination
// defense that makes the O(log n) mixing assumption most literal.
func SybilRank(g *Graph, seeds []NodeID, iterations int) ([]float64, error) {
	return sybil.SybilRank(g, seeds, iterations)
}

// --- Structural metrics ----------------------------------------------

// DegreeStats summarizes a degree sequence.
type DegreeStats = metrics.DegreeStats

// Degrees computes degree statistics for g.
func Degrees(g *Graph) DegreeStats { return metrics.Degrees(g) }

// AverageClustering returns the mean local clustering coefficient.
func AverageClustering(g *Graph) float64 { return metrics.AverageClustering(g) }

// GlobalClustering returns the transitivity (3×triangles/wedges).
func GlobalClustering(g *Graph) float64 { return metrics.GlobalClustering(g) }

// Assortativity returns Newman's degree assortativity in [−1, 1].
func Assortativity(g *Graph) float64 { return metrics.Assortativity(g) }

// SampledPathLength estimates the mean shortest-path length from k
// BFS sources.
func SampledPathLength(g *Graph, k int, seed uint64) float64 {
	return metrics.SampledPathLength(g, k, rand.New(rand.NewPCG(seed, 0x9a7)))
}
