package mixtime_test

import (
	"math/rand/v2"
	"testing"

	"mixtime"
)

func TestFacadeCommunityAndCentrality(t *testing.T) {
	g := mixtime.PlantedPartition(3, 60, 0.3, 0.005, 5)
	lcc, _ := mixtime.LargestComponent(g)

	labels := mixtime.Louvain(lcc, 1)
	q := mixtime.Modularity(lcc, labels)
	if q < 0.4 {
		t.Fatalf("Louvain modularity %v on planted partition", q)
	}
	lpa := mixtime.LabelPropagation(lcc, 50, 1)
	if mixtime.Modularity(lcc, lpa) < 0.3 {
		t.Fatalf("LPA modularity %v", mixtime.Modularity(lcc, lpa))
	}

	bc := mixtime.Betweenness(lcc)
	if len(bc) != lcc.NumNodes() {
		t.Fatal("betweenness size")
	}
	top := mixtime.TopNodes(bc, 3)
	if len(top) != 3 {
		t.Fatal("TopNodes")
	}
	pr := mixtime.PageRank(lcc, 0.85)
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("PageRank sum %v", sum)
	}
	ppr := mixtime.PersonalizedPageRank(lcc, 0, 0.85)
	if mixtime.TopNodes(ppr, 1)[0] != 0 {
		t.Fatal("PPR restart node not top")
	}
	cl := mixtime.Closeness(lcc)
	if len(cl) != lcc.NumNodes() || cl[0] <= 0 {
		t.Fatal("closeness")
	}
	sb := mixtime.SampledBetweenness(lcc, 20, 2)
	if len(sb) != lcc.NumNodes() {
		t.Fatal("sampled betweenness size")
	}
}

func TestFacadeSumUpAndWhanau(t *testing.T) {
	g := mixtime.BarabasiAlbert(300, 5, 9)

	voters := mixtime.AllHonest(g, 0)
	res, err := mixtime.SumUp(g, 0, voters, mixtime.SumUpConfig{Cmax: len(voters)})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollectionRate() < 0.85 {
		t.Fatalf("SumUp collection %v", res.CollectionRate())
	}

	dht, err := mixtime.BuildWhanau(g, mixtime.WhanauConfig{W: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	if rate := dht.SuccessRate(200, rng); rate < 0.8 {
		t.Fatalf("Whānau success %v", rate)
	}
}
