package checkpoint

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mixtime/internal/runner"
	"mixtime/internal/telemetry"
)

// fakeResult is a deterministic Result whose emissions depend only on
// its payload string.
type fakeResult string

func (f fakeResult) Render() string { return "render:" + string(f) + "\n" }
func (f fakeResult) CSV(w io.Writer) error {
	_, err := fmt.Fprintf(w, "col\n%s\n", string(f))
	return err
}
func (f fakeResult) JSON(w io.Writer) error {
	_, err := fmt.Fprintf(w, "{%q: %q}\n", "v", string(f))
	return err
}

func report(id, payload string, elapsed time.Duration) *runner.ExperimentReport {
	return &runner.ExperimentReport{ID: id, Name: "name-" + id, Title: "Title " + id,
		Result: fakeResult(payload), Elapsed: elapsed}
}

// emit renders all three artifact streams of a Result into one blob
// for byte-identity comparisons.
func emit(t *testing.T, r runner.Result) string {
	t.Helper()
	var b bytes.Buffer
	b.WriteString(r.Render())
	if err := r.CSV(&b); err != nil {
		t.Fatal(err)
	}
	if err := r.JSON(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestSaveLookupRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := runner.DefaultConfig()
	rep := report("T1", "payload", 3*time.Second)
	if err := s.Save("T1", cfg, rep); err != nil {
		t.Fatal(err)
	}
	entry, ok := s.Lookup("T1", cfg)
	if !ok {
		t.Fatal("fresh save not found")
	}
	if got, want := emit(t, entry.Result), emit(t, rep.Result); got != want {
		t.Errorf("replayed artifact differs:\n got %q\nwant %q", got, want)
	}
	if entry.Elapsed != 3*time.Second {
		t.Errorf("Elapsed = %v, want 3s", entry.Elapsed)
	}
	if entry.Telemetry != nil {
		t.Errorf("Telemetry = %+v, want nil (uninstrumented save)", entry.Telemetry)
	}
}

func TestLookupMissesOnFingerprintMismatch(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := runner.DefaultConfig()
	if err := s.Save("F1", cfg, report("F1", "x", time.Second)); err != nil {
		t.Fatal(err)
	}
	for name, other := range map[string]runner.Config{
		"seed":    {Seed: cfg.Seed + 1, Scale: cfg.Scale, Sources: cfg.Sources},
		"scale":   {Seed: cfg.Seed, Scale: cfg.Scale * 2, Sources: cfg.Sources},
		"sources": {Seed: cfg.Seed, Scale: cfg.Scale, Sources: cfg.Sources + 1},
		"block":   {Seed: cfg.Seed, Scale: cfg.Scale, BlockSize: cfg.BlockSize * 2},
		"workers": {Seed: cfg.Seed, Scale: cfg.Scale, Workers: 3},
	} {
		if _, ok := s.Lookup("F1", other); ok {
			t.Errorf("lookup hit despite changed %s", name)
		}
	}
	// Retry/timeout knobs must NOT invalidate checkpoints.
	cfg.MaxAttempts, cfg.RetryBackoff, cfg.PerExperimentTimeout = 5, time.Second, time.Minute
	if _, ok := s.Lookup("F1", cfg); !ok {
		t.Error("fault-tolerance knobs invalidated the checkpoint")
	}
}

func TestLookupMissesOnTornEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := runner.DefaultConfig()
	if err := s.Save("X1", cfg, report("X1", "x", time.Second)); err != nil {
		t.Fatal(err)
	}
	// A crash mid-save never leaves meta.json without its artifacts —
	// but a corrupted directory might; Lookup must shrug it off.
	if err := os.Remove(filepath.Join(dir, "X1", "rows.csv")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup("X1", cfg); ok {
		t.Error("torn entry (missing rows.csv) replayed")
	}
	// Corrupt meta.json → miss, not error.
	if err := os.WriteFile(filepath.Join(dir, "X1", "meta.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Lookup("X1", cfg); ok {
		t.Error("corrupt meta.json replayed")
	}
	// Absent entry → miss.
	if _, ok := s.Lookup("NOPE", cfg); ok {
		t.Error("absent entry replayed")
	}
}

func TestSaveRestoresTelemetry(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	col.Add(telemetry.Matvecs, 42)
	snap := col.Snapshot()
	rep := report("F3", "x", time.Second)
	rep.Telemetry = &snap
	cfg := runner.DefaultConfig()
	if err := s.Save("F3", cfg, rep); err != nil {
		t.Fatal(err)
	}
	entry, ok := s.Lookup("F3", cfg)
	if !ok {
		t.Fatal("lookup miss")
	}
	if entry.Telemetry == nil || entry.Telemetry.Get(telemetry.Matvecs) != 42 {
		t.Errorf("telemetry not restored: %+v", entry.Telemetry)
	}
}

func TestSaveRejectsMissingResult(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save("T1", runner.Config{}, &runner.ExperimentReport{ID: "T1"}); err == nil {
		t.Error("nil result saved")
	}
	if err := s.Save("T1", runner.Config{}, nil); err == nil {
		t.Error("nil report saved")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Error("empty dir accepted")
	}
}

// renderRun renders a report's artifacts exactly as cmd/paperfigs
// concatenates them.
func renderRun(t *testing.T, rp *runner.Report) string {
	t.Helper()
	var b bytes.Buffer
	for _, e := range rp.Experiments {
		if e.Err != nil {
			continue
		}
		fmt.Fprintf(&b, "== %s ==\n%s\n", e.ID, e.Result.Render())
		if err := e.Result.CSV(&b); err != nil {
			t.Fatal(err)
		}
		if err := e.Result.JSON(&b); err != nil {
			t.Fatal(err)
		}
	}
	return b.String()
}

// newRegistry builds three deterministic fake experiments; calls
// counts driver invocations per ID, and failFirstB makes B's first
// attempt panic (the simulated crash trigger).
func newRegistry(calls *map[string]*atomic.Int32, bPanics *atomic.Bool) *runner.Registry {
	reg := runner.NewRegistry()
	for _, id := range []string{"A", "B", "C"} {
		id := id
		(*calls)[id] = &atomic.Int32{}
		reg.MustRegister(runner.Def{ID: id, Run: func(ctx context.Context, cfg runner.Config, obs runner.Observer) (runner.Result, error) {
			(*calls)[id].Add(1)
			if id == "B" && bPanics != nil && bPanics.Load() {
				panic("simulated crash")
			}
			return fakeResult(fmt.Sprintf("%s-seed%d", id, cfg.Seed)), nil
		}})
	}
	return reg
}

// TestResumeAfterCrashIsByteIdentical pins the acceptance criterion:
// a checkpointed run that dies mid-way, rerun with resume, skips the
// completed experiments and produces concatenated artifacts
// byte-identical to an uninterrupted run.
func TestResumeAfterCrashIsByteIdentical(t *testing.T) {
	cfg := runner.Config{Seed: 7}

	// The uninterrupted reference run (no checkpointing involved).
	calls := map[string]*atomic.Int32{}
	clean, err := (&runner.Runner{Registry: newRegistry(&calls, nil), Jobs: 1}).
		Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := renderRun(t, clean)

	// Run 1: checkpointed, B panics — A and C complete and persist, B
	// fails. (A process kill between experiments looks the same to the
	// store: completed entries on disk, the rest absent.)
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bPanics atomic.Bool
	bPanics.Store(true)
	calls1 := map[string]*atomic.Int32{}
	r1 := &runner.Runner{Registry: newRegistry(&calls1, &bPanics), Jobs: 1, Checkpoint: store}
	if _, err := r1.Run(context.Background(), cfg); err == nil {
		t.Fatal("crashing run reported success")
	}

	// Run 2: resume. B heals; A and C must replay without re-running.
	bPanics.Store(false)
	calls2 := map[string]*atomic.Int32{}
	r2 := &runner.Runner{Registry: newRegistry(&calls2, &bPanics), Jobs: 1, Checkpoint: store}
	resumed, err := r2.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"A", "C"} {
		if n := calls2[id].Load(); n != 0 {
			t.Errorf("%s re-ran %d times on resume, want replay", id, n)
		}
	}
	if n := calls2["B"].Load(); n != 1 {
		t.Errorf("B ran %d times on resume, want 1", n)
	}
	for _, e := range resumed.Experiments {
		wantResumed := e.ID != "B"
		if e.Resumed != wantResumed {
			t.Errorf("%s.Resumed = %v, want %v", e.ID, e.Resumed, wantResumed)
		}
	}
	if got := renderRun(t, resumed); got != want {
		t.Errorf("resumed artifacts differ from uninterrupted run:\n got %q\nwant %q", got, want)
	}
	if !strings.Contains(resumed.Summary(), "resumed from checkpoint") {
		t.Errorf("Summary does not surface resume:\n%s", resumed.Summary())
	}

	// Run 3: a different seed must invalidate every entry.
	calls3 := map[string]*atomic.Int32{}
	r3 := &runner.Runner{Registry: newRegistry(&calls3, &bPanics), Jobs: 1, Checkpoint: store}
	if _, err := r3.Run(context.Background(), runner.Config{Seed: 8}); err != nil {
		t.Fatal(err)
	}
	for id, c := range calls3 {
		if c.Load() != 1 {
			t.Errorf("%s did not re-run under a new seed", id)
		}
	}
}

// TestCheckpointFailureDoesNotFailRun: an unwritable store degrades
// to a KindCheckpointFailed event, not a run failure.
func TestCheckpointFailureDoesNotFailRun(t *testing.T) {
	dir := t.TempDir()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Remove the directory out from under the store so saves fail.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	calls := map[string]*atomic.Int32{}
	var failures []error
	obs := runner.ObserverFunc(func(e runner.Event) {
		if e.Kind == runner.KindCheckpointFailed {
			failures = append(failures, e.Err)
		}
	})
	r := &runner.Runner{Registry: newRegistry(&calls, nil), Jobs: 1,
		Checkpoint: store, Observer: obs}
	if _, err := r.Run(context.Background(), runner.Config{}); err != nil {
		t.Fatalf("unwritable checkpoint store failed the run: %v", err)
	}
	if len(failures) != 3 {
		t.Errorf("checkpoint-failed events = %d, want 3", len(failures))
	}
}

func TestFingerprintStability(t *testing.T) {
	cfg := runner.DefaultConfig()
	a, b := Fingerprint("T1", cfg), Fingerprint("T1", cfg)
	if a != b {
		t.Error("fingerprint not deterministic")
	}
	if Fingerprint("F1", cfg) == a {
		t.Error("fingerprint ignores experiment ID")
	}
	// Zero-config normalizes through WithDefaults, so an explicit
	// default config and an all-zero one fingerprint identically
	// (except Seed, which defaults never rewrite).
	zero := runner.Config{Seed: runner.DefaultSeed}
	if Fingerprint("T1", zero) != a {
		t.Error("WithDefaults-equivalent configs fingerprint differently")
	}
}
