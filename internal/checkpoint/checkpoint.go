// Package checkpoint persists each completed experiment's rendered
// artifact, raw CSV/JSON rows and telemetry to a run directory, so a
// killed multi-hour evaluation restarts where it died instead of
// from scratch. The Store implements runner.Checkpointer: the runner
// saves after every success and, on resume, replays matching prior
// results byte-for-byte.
//
// Entries are keyed by experiment ID and guarded by a fingerprint of
// every Config knob that selects the run (seed, scale, sources, walk
// cap, spectral tolerance, block size, workers): a resume under a
// different configuration misses and re-runs rather than replaying a
// stale artifact. Saves are crash-safe — the entry is assembled in a
// temp directory and renamed into place, so a kill mid-save leaves a
// miss, never a torn entry.
//
// Layout under the run directory:
//
//	<dir>/<id>/meta.json        fingerprint, names, wall time (commit marker)
//	<dir>/<id>/render.txt       Result.Render output
//	<dir>/<id>/rows.csv         Result.CSV output
//	<dir>/<id>/rows.json        Result.JSON output
//	<dir>/<id>/telemetry.json   telemetry snapshot (instrumented runs only)
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"mixtime/internal/runner"
	"mixtime/internal/telemetry"
)

// fingerprintVersion is bumped whenever the fingerprint input or the
// entry layout changes, invalidating older checkpoint directories.
const fingerprintVersion = 1

// Fingerprint canonically hashes the configuration knobs an
// experiment's output (and cost envelope) depends on, plus the
// experiment ID. Fault-tolerance knobs (retries, backoff, timeout)
// are deliberately excluded: they never change a successful result,
// so turning them on must not invalidate prior checkpoints.
func Fingerprint(id string, cfg runner.Config) string {
	cfg = cfg.WithDefaults()
	canon := fmt.Sprintf("v%d|%s|scale=%v|seed=%d|sources=%d|maxwalk=%d|tol=%v|block=%d|workers=%d",
		fingerprintVersion, id, cfg.Scale, cfg.Seed, cfg.Sources, cfg.MaxWalk,
		cfg.SpectralTol, cfg.BlockSize, cfg.Workers)
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}

// meta is the per-entry commit record. Entries become visible only
// via the atomic temp-dir rename in Save, so a readable meta.json
// certifies the artifact files beside it are complete.
type meta struct {
	Fingerprint string `json:"fingerprint"`
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Title       string `json:"title,omitempty"`
	ElapsedNS   int64  `json:"elapsed_ns"`
	Telemetry   bool   `json:"telemetry"`
}

// Store is a file-backed runner.Checkpointer rooted at one run
// directory. Methods are safe for concurrent use by the runner's
// worker pool: distinct experiments write distinct subdirectories.
type Store struct {
	dir string
}

// Open creates (if needed) and returns the store rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("checkpoint: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// cachedResult replays a persisted artifact byte-for-byte.
type cachedResult struct {
	render    string
	csv, json []byte
}

func (c *cachedResult) Render() string { return c.render }
func (c *cachedResult) CSV(w io.Writer) error {
	_, err := w.Write(c.csv)
	return err
}
func (c *cachedResult) JSON(w io.Writer) error {
	_, err := w.Write(c.json)
	return err
}

// Lookup returns the replayable entry for id under cfg, or false on
// any miss: no entry, fingerprint mismatch, or a torn/unreadable
// entry (which resume treats as "re-run", never as an error).
func (s *Store) Lookup(id string, cfg runner.Config) (runner.CheckpointEntry, bool) {
	dir := filepath.Join(s.dir, id)
	raw, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return runner.CheckpointEntry{}, false
	}
	var m meta
	if json.Unmarshal(raw, &m) != nil || m.Fingerprint != Fingerprint(id, cfg) {
		return runner.CheckpointEntry{}, false
	}
	render, err1 := os.ReadFile(filepath.Join(dir, "render.txt"))
	csv, err2 := os.ReadFile(filepath.Join(dir, "rows.csv"))
	jsn, err3 := os.ReadFile(filepath.Join(dir, "rows.json"))
	if err1 != nil || err2 != nil || err3 != nil {
		return runner.CheckpointEntry{}, false
	}
	entry := runner.CheckpointEntry{
		Result:  &cachedResult{render: string(render), csv: csv, json: jsn},
		Elapsed: time.Duration(m.ElapsedNS),
	}
	if m.Telemetry {
		traw, err := os.ReadFile(filepath.Join(dir, "telemetry.json"))
		if err != nil {
			return runner.CheckpointEntry{}, false
		}
		var snap telemetry.Snapshot
		if json.Unmarshal(traw, &snap) != nil {
			return runner.CheckpointEntry{}, false
		}
		entry.Telemetry = &snap
	}
	return entry, true
}

// Save persists rep's artifact under id. The entry is assembled in a
// sibling temp directory and renamed into place so a crash mid-save
// cannot leave a half-written entry behind a valid meta.json.
func (s *Store) Save(id string, cfg runner.Config, rep *runner.ExperimentReport) error {
	if rep == nil || rep.Result == nil {
		return fmt.Errorf("checkpoint: %s: no result to save", id)
	}
	tmp, err := os.MkdirTemp(s.dir, id+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	var csv, jsn bytes.Buffer
	if err := rep.Result.CSV(&csv); err != nil {
		return fmt.Errorf("checkpoint: %s: csv: %w", id, err)
	}
	if err := rep.Result.JSON(&jsn); err != nil {
		return fmt.Errorf("checkpoint: %s: json: %w", id, err)
	}
	files := map[string][]byte{
		"render.txt": []byte(rep.Result.Render()),
		"rows.csv":   csv.Bytes(),
		"rows.json":  jsn.Bytes(),
	}
	if rep.Telemetry != nil {
		traw, err := json.Marshal(rep.Telemetry)
		if err != nil {
			return fmt.Errorf("checkpoint: %s: telemetry: %w", id, err)
		}
		files["telemetry.json"] = traw
	}
	m := meta{
		Fingerprint: Fingerprint(id, cfg),
		ID:          id,
		Name:        rep.Name,
		Title:       rep.Title,
		ElapsedNS:   int64(rep.Elapsed),
		Telemetry:   rep.Telemetry != nil,
	}
	mraw, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %s: meta: %w", id, err)
	}
	files["meta.json"] = mraw
	for name, data := range files {
		if err := os.WriteFile(filepath.Join(tmp, name), data, 0o644); err != nil {
			return fmt.Errorf("checkpoint: %s: %w", id, err)
		}
	}
	final := filepath.Join(s.dir, id)
	if err := os.RemoveAll(final); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", id, err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("checkpoint: %s: %w", id, err)
	}
	return nil
}

// Compile-time check: the Store satisfies the runner's hook.
var _ runner.Checkpointer = (*Store)(nil)
