// Package textplot renders data series as ASCII charts and aligned
// tables, so the experiment binaries can reproduce the paper's
// figures directly in a terminal without any plotting dependency.
//
// Chart plots one or more Series into a fixed-size rune grid with
// distinct per-series glyphs, linear or logarithmic axes, and a
// legend — enough to reproduce the shape of the paper's
// ε-vs-walk-length curves (Figures 1–2) and CDFs (Figures 3–4).
// Table lays out rows with per-column alignment for the Table-1 style
// artifacts. Output is deterministic for identical input, which is
// what lets paperfigs promise byte-identical runs: charts contain no
// timestamps, addresses, or map-ordered iteration.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	X, Y []float64
}

// markers distinguish series in a chart.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&', '$', '~', '^', '='}

// Options configures a chart.
type Options struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot area size in characters
	// (default 72×20).
	Width, Height int
	// LogX / LogY select logarithmic axes; non-positive values are
	// dropped.
	LogX, LogY bool
}

func (o Options) withDefaults() Options {
	if o.Width <= 0 {
		o.Width = 72
	}
	if o.Height <= 0 {
		o.Height = 20
	}
	return o
}

// Chart renders the series into a multi-line string.
func Chart(opt Options, series ...Series) string {
	opt = opt.withDefaults()
	tx := func(v float64) (float64, bool) { return v, true }
	ty := tx
	if opt.LogX {
		tx = logT
	}
	if opt.LogY {
		ty = logT
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if !any {
		return opt.Title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	w, h := opt.Width, opt.Height
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky || math.IsInf(y, 0) || math.IsNaN(y) {
				continue
			}
			col := int(float64(w-1) * (x - minX) / (maxX - minX))
			row := h - 1 - int(float64(h-1)*(y-minY)/(maxY-minY))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = mark
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	yHi, yLo := invLabel(maxY, opt.LogY), invLabel(minY, opt.LogY)
	for r, row := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10s", yHi)
		case h - 1:
			label = fmt.Sprintf("%10s", yLo)
		case h / 2:
			if opt.YLabel != "" {
				label = fmt.Sprintf("%10s", trunc(opt.YLabel, 10))
			}
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&b, "%10s +%s+\n", "", strings.Repeat("-", w))
	xHi, xLo := invLabel(maxX, opt.LogX), invLabel(minX, opt.LogX)
	pad := w - len(xLo) - len(xHi)
	if pad < 1 {
		pad = 1
	}
	mid := opt.XLabel
	if len(mid) > pad {
		mid = trunc(mid, pad)
	}
	lpad := (pad - len(mid)) / 2
	rpad := pad - len(mid) - lpad
	fmt.Fprintf(&b, "%10s  %s%s%s%s%s\n", "", xLo,
		strings.Repeat(" ", lpad), mid, strings.Repeat(" ", rpad), xHi)
	// Legend.
	for si, s := range series {
		fmt.Fprintf(&b, "%10s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func logT(v float64) (float64, bool) {
	if v <= 0 {
		return 0, false
	}
	return math.Log10(v), true
}

func invLabel(v float64, log bool) string {
	if log {
		v = math.Pow(10, v)
	}
	return fmt.Sprintf("%.3g", v)
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	if n <= 1 {
		return s[:n]
	}
	return s[:n-1] + "…"
}

// Table renders rows as an aligned text table. header may be nil.
func Table(header []string, rows [][]string) string {
	all := rows
	if header != nil {
		all = append([][]string{header}, rows...)
	}
	if len(all) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range all {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	if header != nil {
		writeRow(header)
		total := 0
		for _, w := range widths {
			total += w
		}
		b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
		b.WriteByte('\n')
	}
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
