package textplot

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	out := Chart(Options{Title: "demo", XLabel: "walk", YLabel: "tv"},
		Series{Name: "a", X: []float64{1, 2, 3}, Y: []float64{3, 2, 1}},
		Series{Name: "b", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
	)
	if !strings.Contains(out, "demo") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatal("legend missing")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatal("markers missing from plot")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 20 {
		t.Fatalf("only %d lines", len(lines))
	}
}

func TestChartLogAxesDropNonPositive(t *testing.T) {
	out := Chart(Options{LogY: true, LogX: true},
		Series{Name: "s", X: []float64{0, 1, 10, 100}, Y: []float64{-1, 0.1, 0.01, 0.001}})
	if !strings.Contains(out, "s") {
		t.Fatal("series missing")
	}
	// Axis labels are back-transformed to linear values.
	if !strings.Contains(out, "0.1") {
		t.Fatalf("log axis label missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart(Options{Title: "void"}, Series{Name: "x"})
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	out := Chart(Options{}, Series{Name: "c", X: []float64{1, 1}, Y: []float64{2, 2}})
	if !strings.Contains(out, "c") {
		t.Fatal("constant series lost")
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"name", "n"}, [][]string{{"wiki", "7066"}, {"dblp", "614981"}})
	if !strings.Contains(out, "name") || !strings.Contains(out, "dblp") {
		t.Fatalf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("%d lines", len(lines))
	}
	// Columns aligned: both data rows have "n" values starting at the
	// same offset.
	if strings.Index(lines[2], "7066") != strings.Index(lines[3], "614981") {
		t.Fatal("columns not aligned")
	}
	if Table(nil, nil) != "" {
		t.Fatal("empty table not empty")
	}
	if out := Table(nil, [][]string{{"a", "b"}}); !strings.Contains(out, "a  b") {
		t.Fatalf("headerless table %q", out)
	}
}
