// Package trust implements the paper's future-work direction
// (Mohaisen, Hopper, Kim: "Keep your friends close — incorporating
// trust into social network-based Sybil defenses"): random walks
// whose transition probabilities are modulated to account for the
// trust an edge carries, and the measurement of what that costs in
// mixing time.
//
// Two mechanisms are provided, composable:
//
//   - edge weighting: the walk moves across {u,v} with probability
//     proportional to a symmetric weight w(u,v); weights derived from
//     structural embeddedness (Jaccard similarity of neighborhoods)
//     concentrate the walk inside communities, modeling walks that
//     prefer strong ties;
//
//   - hesitation (originator-style laziness): each step stays put
//     with probability α, modeling per-hop reluctance to extend trust.
//
// Both leave the stationary distribution of the weighted chain at
// π_v ∝ strength(v), and both slow mixing — quantifying the paper's
// observation that stricter trust models are exactly the slow-mixing
// ones.
package trust

import (
	"context"
	"errors"
	"fmt"
	"math"

	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/spectral"
)

// Weights are symmetric positive edge weights, CSR-aligned with a
// graph: one entry per directed adjacency slot in Neighbors order.
type Weights []float64

// slotCount returns the total adjacency slots of g (= 2m).
func slotCount(g *graph.Graph) int {
	var s int64
	for v := 0; v < g.NumNodes(); v++ {
		s += int64(g.Degree(graph.NodeID(v)))
	}
	return int(s)
}

// UniformWeights assigns weight 1 to every edge — the plain random
// walk, as a baseline.
func UniformWeights(g *graph.Graph) Weights {
	w := make(Weights, slotCount(g))
	for i := range w {
		w[i] = 1
	}
	return w
}

// JaccardWeights weights each edge by the Jaccard similarity of its
// endpoints' neighborhoods, smoothed to stay positive:
// w(u,v) = (|N(u)∩N(v)| + 1) / (|N(u)∪N(v)| + 1). Edges inside dense
// communities (high embeddedness — strong ties) get high weight;
// bridges get low weight.
func JaccardWeights(g *graph.Graph) Weights {
	w := make(Weights, slotCount(g))
	idx := 0
	for v := 0; v < g.NumNodes(); v++ {
		adjV := g.Neighbors(graph.NodeID(v))
		for _, u := range adjV {
			common := intersectionSize(adjV, g.Neighbors(u))
			union := len(adjV) + g.Degree(u) - common
			w[idx] = float64(common+1) / float64(union+1)
			idx++
		}
	}
	return w
}

// intersectionSize counts common elements of two sorted lists.
func intersectionSize(a, b []graph.NodeID) int {
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}

// InverseDegreeWeights weights each edge by 1/√(deg(u)·deg(v)),
// penalizing promiscuous endpoints — hubs are the least trustworthy
// attachment points for a Sybil region.
func InverseDegreeWeights(g *graph.Graph) Weights {
	w := make(Weights, slotCount(g))
	idx := 0
	for v := 0; v < g.NumNodes(); v++ {
		dv := float64(g.Degree(graph.NodeID(v)))
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			w[idx] = 1 / math.Sqrt(dv*float64(g.Degree(u)))
			idx++
		}
	}
	return w
}

// Chain is a trust-modulated random walk: weighted transitions plus
// hesitation probability α ∈ [0, 1).
type Chain struct {
	g           *graph.Graph
	weights     Weights
	invStrength []float64
	pi          []float64
	alpha       float64
}

// NewChain builds the chain. weights must be CSR-aligned, symmetric
// and positive; alpha is the per-step hesitation (self-loop)
// probability.
func NewChain(g *graph.Graph, weights Weights, alpha float64) (*Chain, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("trust: empty graph")
	}
	if len(weights) != slotCount(g) {
		return nil, fmt.Errorf("trust: %d weights for %d adjacency slots", len(weights), slotCount(g))
	}
	if alpha < 0 || alpha >= 1 {
		return nil, fmt.Errorf("trust: hesitation α=%v outside [0,1)", alpha)
	}
	c := &Chain{g: g, weights: weights, alpha: alpha,
		invStrength: make([]float64, n), pi: make([]float64, n)}
	idx := 0
	var total float64
	for v := 0; v < n; v++ {
		var s float64
		for range g.Neighbors(graph.NodeID(v)) {
			w := weights[idx]
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, errors.New("trust: weights must be positive and finite")
			}
			s += w
			idx++
		}
		if s == 0 {
			return nil, errors.New("trust: isolated vertex")
		}
		c.invStrength[v] = 1 / s
		c.pi[v] = s
		total += s
	}
	for v := range c.pi {
		c.pi[v] /= total
	}
	return c, nil
}

// Alpha returns the hesitation probability.
func (c *Chain) Alpha() float64 { return c.alpha }

// Stationary returns π (π_v ∝ strength(v); hesitation does not change
// it). The slice is shared.
func (c *Chain) Stationary() []float64 { return c.pi }

// Step computes dst = p·P_trust.
func (c *Chain) Step(dst, p []float64) {
	n := c.g.NumNodes()
	// outflow[u] = (1−α)·p[u]/strength(u), scattered along weights.
	for v := range dst {
		dst[v] = c.alpha * p[v]
	}
	idx := 0
	for u := 0; u < n; u++ {
		out := (1 - c.alpha) * p[u] * c.invStrength[u]
		for _, v := range c.g.Neighbors(graph.NodeID(u)) {
			dst[v] += out * c.weights[idx]
			idx++
		}
	}
}

// TraceFrom propagates a point mass at src and records the TV
// distance to π after each of maxT steps.
func (c *Chain) TraceFrom(src graph.NodeID, maxT int) *markov.Trace {
	n := c.g.NumNodes()
	p := make([]float64, n)
	q := make([]float64, n)
	p[src] = 1
	tv := make([]float64, maxT)
	for t := 0; t < maxT; t++ {
		c.Step(q, p)
		p, q = q, p
		tv[t] = markov.TVDistance(p, c.pi)
	}
	return &markov.Trace{Source: src, TV: tv}
}

// SLEM estimates the chain's second largest eigenvalue modulus. The
// weighted walk's eigenvalues are computed spectrally on
// S = D_w^{-1/2} W D_w^{-1/2} and then hesitation is applied as the
// affine map λ ↦ α + (1−α)λ.
func (c *Chain) SLEM(opt spectral.Options) (*spectral.Estimate, error) {
	return c.SLEMContext(context.Background(), opt)
}

// SLEMContext is SLEM with cancellation, threaded through the
// underlying Lanczos/power iterations.
func (c *Chain) SLEMContext(ctx context.Context, opt spectral.Options) (*spectral.Estimate, error) {
	op, err := spectral.NewWeightedOperator(c.g, c.weights)
	if err != nil {
		return nil, err
	}
	est, err := spectral.SLEMOfContext(ctx, op, opt)
	if err != nil {
		return nil, err
	}
	l2 := c.alpha + (1-c.alpha)*est.Lambda2
	ln := c.alpha + (1-c.alpha)*est.LambdaN
	return &spectral.Estimate{
		Mu:         math.Max(math.Abs(l2), math.Abs(ln)),
		Lambda2:    l2,
		LambdaN:    ln,
		Iterations: est.Iterations,
		Converged:  est.Converged,
	}, nil
}
