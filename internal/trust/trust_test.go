package trust

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
	"mixtime/internal/linalg"
	"mixtime/internal/markov"
	"mixtime/internal/spectral"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x7275)) }

func TestNewChainValidation(t *testing.T) {
	g := gen.Complete(5)
	if _, err := NewChain(&graph.Graph{}, nil, 0); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := NewChain(g, make(Weights, 3), 0); err == nil {
		t.Fatal("misaligned weights accepted")
	}
	if _, err := NewChain(g, UniformWeights(g), 1.0); err == nil {
		t.Fatal("α=1 accepted")
	}
	bad := UniformWeights(g)
	bad[0] = -1
	if _, err := NewChain(g, bad, 0); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestUniformWeightsMatchPlainChain(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng(1))
	tc, err := NewChain(g, UniformWeights(g), 0)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := markov.New(g)
	if err != nil {
		t.Fatal(err)
	}
	// Same stationary distribution.
	for v, p := range tc.Stationary() {
		if math.Abs(p-mc.Stationary()[v]) > 1e-14 {
			t.Fatalf("π[%d]: trust %v vs markov %v", v, p, mc.Stationary()[v])
		}
	}
	// Same propagation.
	a := tc.TraceFrom(0, 20)
	b := mc.TraceFrom(0, 20)
	for i := range a.TV {
		if math.Abs(a.TV[i]-b.TV[i]) > 1e-12 {
			t.Fatalf("step %d: %v vs %v", i, a.TV[i], b.TV[i])
		}
	}
}

func TestStationaryInvariantUnderWeightsAndAlpha(t *testing.T) {
	g := gen.RelaxedCaveman(15, 6, 0.1, rng(2))
	for _, alpha := range []float64{0, 0.3} {
		for name, w := range map[string]Weights{
			"jaccard": JaccardWeights(g),
			"invdeg":  InverseDegreeWeights(g),
		} {
			c, err := NewChain(g, w, alpha)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			pi := append([]float64(nil), c.Stationary()...)
			next := make([]float64, len(pi))
			c.Step(next, pi)
			if d := markov.TVDistance(next, c.Stationary()); d > 1e-13 {
				t.Fatalf("%s α=%v: ‖πP−π‖ = %g", name, alpha, d)
			}
			if s := linalg.Sum(pi); math.Abs(s-1) > 1e-12 {
				t.Fatalf("%s: π sums to %v", name, s)
			}
		}
	}
}

func TestHesitationSlowsMixing(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, rng(3))
	w := UniformWeights(g)
	fast, err := NewChain(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := NewChain(g, w, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	ft := fast.TraceFrom(0, 80)
	st := slow.TraceFrom(0, 80)
	// At every probe, hesitation keeps the distance higher.
	for _, probe := range []int{5, 20, 60} {
		if st.TV[probe] <= ft.TV[probe] {
			t.Fatalf("α=0.6 not slower at t=%d: %v vs %v", probe, st.TV[probe], ft.TV[probe])
		}
	}
	// And the SLEM moves by the affine law.
	fe, err := fast.SLEM(spectral.Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	se, err := slow.SLEM(spectral.Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.6 + 0.4*fe.Lambda2
	if math.Abs(se.Lambda2-want) > 1e-6 {
		t.Fatalf("α-mapped λ2 = %v, want %v", se.Lambda2, want)
	}
}

func TestJaccardSlowsCommunityGraph(t *testing.T) {
	// On a community-structured graph, similarity weighting further
	// down-weights the bridges, so mixing slows (µ grows).
	g := gen.RelaxedCaveman(20, 8, 0.05, rng(4))
	lcc, _ := graph.LargestComponent(g)
	uni, err := NewChain(lcc, UniformWeights(lcc), 0)
	if err != nil {
		t.Fatal(err)
	}
	jac, err := NewChain(lcc, JaccardWeights(lcc), 0)
	if err != nil {
		t.Fatal(err)
	}
	ue, err := uni.SLEM(spectral.Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	je, err := jac.SLEM(spectral.Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if je.Mu <= ue.Mu {
		t.Fatalf("jaccard µ=%v not slower than uniform µ=%v", je.Mu, ue.Mu)
	}
}

func TestWeightedSLEMAgainstDenseOracle(t *testing.T) {
	// Build a small weighted graph, compute the weighted walk's SLEM
	// spectrally, and verify against a dense Jacobi eigensolve of
	// S = D_w^{-1/2} W D_w^{-1/2}.
	g := gen.Complete(8)
	w := JaccardWeights(g)
	c, err := NewChain(g, w, 0)
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.SLEM(spectral.Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumNodes()
	strength := make([]float64, n)
	idx := 0
	type entry struct {
		u, v int
		w    float64
	}
	var entries []entry
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			strength[v] += w[idx]
			entries = append(entries, entry{v, int(u), w[idx]})
			idx++
		}
	}
	s := linalg.NewSymDense(n)
	for _, e := range entries {
		s.Data[e.u*n+e.v] = e.w / math.Sqrt(strength[e.u]*strength[e.v])
	}
	vals, _, err := linalg.EigenSym(s, false)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Max(math.Abs(vals[n-2]), math.Abs(vals[0]))
	if math.Abs(est.Mu-want) > 1e-7 {
		t.Fatalf("weighted µ = %v, dense oracle %v", est.Mu, want)
	}
}

func TestJaccardWeightsSymmetricAndBounded(t *testing.T) {
	g := gen.WattsStrogatz(120, 3, 0.2, rng(5))
	w := JaccardWeights(g)
	// Rebuild a map edge→weight from slot order and check symmetry.
	byEdge := map[[2]graph.NodeID]float64{}
	idx := 0
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			byEdge[[2]graph.NodeID{graph.NodeID(v), u}] = w[idx]
			idx++
		}
	}
	for k, val := range byEdge {
		if val <= 0 || val > 1 {
			t.Fatalf("weight %v outside (0,1]", val)
		}
		if rev := byEdge[[2]graph.NodeID{k[1], k[0]}]; rev != val {
			t.Fatalf("asymmetric weight on %v: %v vs %v", k, val, rev)
		}
	}
}

// Property: trust chains preserve probability mass and never increase
// TV distance to π.
func TestQuickTrustChainContraction(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.BarabasiAlbert(60+int(seed%60), 2, rng(seed))
		c, err := NewChain(g, JaccardWeights(g), float64(seed%5)/10)
		if err != nil {
			return false
		}
		tr := c.TraceFrom(graph.NodeID(seed%uint64(g.NumNodes())), 40)
		for i := 1; i < len(tr.TV); i++ {
			if tr.TV[i] > tr.TV[i-1]+1e-12 {
				return false
			}
		}
		// Mass check after a fresh propagation.
		p := make([]float64, g.NumNodes())
		q := make([]float64, g.NumNodes())
		p[0] = 1
		for k := 0; k < 10; k++ {
			c.Step(q, p)
			p, q = q, p
		}
		return math.Abs(linalg.Sum(p)-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkJaccardWeights(b *testing.B) {
	g := gen.BarabasiAlbert(20_000, 5, rng(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JaccardWeights(g)
	}
}
