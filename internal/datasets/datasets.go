// Package datasets provides deterministic synthetic substitutes for
// the fifteen social graphs of the paper's Table 1. The originals are
// proprietary crawls (Mislove's Livejournal/Youtube, Wilson's
// Facebook A/B) or SNAP downloads unavailable offline, so each entry
// pairs the paper's reported metadata (nodes, edges, SLEM) with a
// generator whose output matches the dataset's size (scaled) and
// mixing character:
//
//   - trust graphs that require physical acquaintance (Physics
//     co-authorship, DBLP, Enron) → strong community structure,
//     slow mixing (relaxed caveman, pendant cliques);
//   - online graphs with loose trust (wiki-vote, Facebook) →
//     expander-like, fast mixing (preferential attachment);
//   - interaction graphs in between (Slashdot, Epinion, Youtube,
//     Livejournal) → preferential-attachment communities with sparse
//     bridges.
//
// Every measurement in the paper is a function of the graph's
// spectral profile and degree sequence, not of node identities, so
// substitutes calibrated this way preserve the paper's findings:
// which graphs mix slowly, by roughly what factor, and how trimming
// and sampling move the numbers.
package datasets

import (
	"fmt"
	"math/rand/v2"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

// Kind classifies a dataset by the trust model of its edges — the
// axis the paper's §5 argues should parameterize Sybil defenses.
type Kind string

const (
	// Trust marks graphs whose edges imply physical acquaintance
	// (co-authorship); the paper finds these mix slowest.
	Trust Kind = "trust"
	// Interaction marks graphs whose edges require interaction but
	// not acquaintance (Livejournal, Youtube, Slashdot, Epinion).
	Interaction Kind = "interaction"
	// Online marks graphs with the loosest semantics (wiki-vote,
	// Facebook); the paper finds these mix fastest.
	Online Kind = "online"
)

// Meta records what the paper's Table 1 reports for a dataset.
type Meta struct {
	// Name is the paper's dataset label.
	Name string
	// PaperNodes and PaperEdges are the sizes in Table 1.
	PaperNodes int
	PaperEdges int64
	// PaperMu is the second largest eigenvalue modulus Table 1
	// reports (values reconstructed from the paper's narrative where
	// the scanned table is illegible).
	PaperMu float64
	// Kind is the trust classification.
	Kind Kind
	// Large marks the Figure-2 datasets (vs Figure-1 small ones).
	Large bool
	// Source cites the paper's data source.
	Source string
}

// Dataset couples paper metadata with its synthetic substitute.
type Dataset struct {
	Meta
	// generate builds the substitute at a node budget; callers use
	// Generate.
	generate func(n int, rng *rand.Rand) *graph.Graph
}

// Generate builds the substitute scaled to ≈ scale×PaperNodes nodes
// (minimum 200), extracts the largest connected component (the
// paper measures LCCs only — mixing is undefined otherwise) and
// returns it. Deterministic in (dataset, scale, seed).
func (d Dataset) Generate(scale float64, seed uint64) *graph.Graph {
	n := int(scale * float64(d.PaperNodes))
	if n < 200 {
		n = 200
	}
	rng := rand.New(rand.NewPCG(seed, hashName(d.Name)))
	g := d.generate(n, rng)
	lcc, _ := graph.LargestComponent(g)
	return lcc
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// All returns the fifteen Table-1 datasets in the paper's order.
func All() []Dataset { return registry }

// Small returns the Figure-1 datasets (small/medium graphs).
func Small() []Dataset { return filter(false) }

// Large returns the Figure-2 datasets (DBLP and the million-node
// graphs).
func Large() []Dataset { return filter(true) }

func filter(large bool) []Dataset {
	var out []Dataset
	for _, d := range registry {
		if d.Large == large {
			out = append(out, d)
		}
	}
	return out
}

// ByName looks a dataset up by its Table-1 label.
func ByName(name string) (Dataset, error) {
	for _, d := range registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("datasets: unknown dataset %q", name)
}

// Names lists the registry labels in order.
func Names() []string {
	out := make([]string, len(registry))
	for i, d := range registry {
		out[i] = d.Name
	}
	return out
}

// The generators below derive their parameters from the requested
// node budget so that the community count (and hence conductance and
// µ) stays roughly scale-invariant: communities keep their natural
// size and the number of communities grows with n.

// fastOnline: preferential attachment with high degree and a few weak
// communities — µ around 0.9.
func fastOnline(avgDeg int, communities int, bridgeFrac float64) func(int, *rand.Rand) *graph.Graph {
	return func(n int, rng *rand.Rand) *graph.Graph {
		size := n / communities
		if size < 50 {
			return gen.BarabasiAlbert(n, avgDeg/2, rng)
		}
		bridges := int(bridgeFrac * float64(n) * float64(avgDeg) / 2)
		return gen.CommunityBA(communities, size, avgDeg/2, bridges, rng)
	}
}

// slowTrust: relaxed caveman — dense cliques, sparse bridges, µ very
// close to 1.
func slowTrust(cliqueSize int, rewire float64) func(int, *rand.Rand) *graph.Graph {
	return func(n int, rng *rand.Rand) *graph.Graph {
		cliques := n / cliqueSize
		if cliques < 2 {
			cliques = 2
		}
		return gen.RelaxedCaveman(cliques, cliqueSize, rewire, rng)
	}
}

// interactionCommunities: BA communities with calibrated bridge
// budget — µ between the online and trust regimes.
func interactionCommunities(kAttach, communitySize int, bridgesPerCommunity float64) func(int, *rand.Rand) *graph.Graph {
	return func(n int, rng *rand.Rand) *graph.Graph {
		k := n / communitySize
		if k < 2 {
			k = 2
		}
		bridges := int(bridgesPerCommunity * float64(k))
		if bridges < k {
			bridges = k // keep it connectable
		}
		return gen.CommunityBA(k, communitySize, kAttach, bridges, rng)
	}
}

// dblpLike: caveman core plus pendant cliques of sizes 2..6 so that
// trim levels 1..5 shave the graph gradually, as Figure 6 reports for
// DBLP (615k → 145k between DBLP 1 and DBLP 5).
func dblpLike(cliqueSize int, rewire float64) func(int, *rand.Rand) *graph.Graph {
	return func(n int, rng *rand.Rand) *graph.Graph {
		// Budget: ~45% core, ~55% spread across pendant structures,
		// echoing DBLP's 76% size loss by trim level 5.
		coreN := int(0.45 * float64(n))
		cliques := coreN / cliqueSize
		if cliques < 2 {
			cliques = 2
		}
		g := gen.RelaxedCaveman(cliques, cliqueSize, rewire, rng)
		rest := n - g.NumNodes()
		// Split the fringe budget over pendant structure sizes 1..5
		// (size s vanishes when trimming to min degree s+1).
		per := rest / 5
		g = gen.WithPendants(g, per, rng)     // degree 1
		g = gen.WithCliques(g, per/2, 2, rng) // pendant edges (degree 1-2)
		g = gen.WithCliques(g, per/3, 3, rng) // triangles (degree 2)
		g = gen.WithCliques(g, per/4, 4, rng) // K4 (degree 3)
		g = gen.WithCliques(g, per/5, 5, rng) // K5 (degree 4)
		return g
	}
}

// youtubeLike: power-law configuration with min degree 1 — a sparse
// hub-dominated graph with a large low-degree fringe.
func youtubeLike(gamma float64, maxDegFrac float64) func(int, *rand.Rand) *graph.Graph {
	return func(n int, rng *rand.Rand) *graph.Graph {
		maxDeg := int(maxDegFrac * float64(n))
		if maxDeg < 10 {
			maxDeg = 10
		}
		deg := gen.PowerLawDegrees(n, gamma, 1, maxDeg, rng)
		return gen.ConfigurationModel(deg, rng)
	}
}

// livejournalLike: strong planted communities — the slowest-mixing
// large graphs in the paper.
func livejournalLike(communitySize int, inDeg, outDeg float64) func(int, *rand.Rand) *graph.Graph {
	return func(n int, rng *rand.Rand) *graph.Graph {
		k := n / communitySize
		if k < 2 {
			k = 2
		}
		pIn := inDeg / float64(communitySize)
		pOut := outDeg / float64(n-communitySize)
		return gen.PlantedPartition(k, communitySize, pIn, pOut, rng)
	}
}

var registry = []Dataset{
	{Meta{"wiki-vote", 7_066, 100_736, 0.899, Online, false, "Leskovec et al. [8]"},
		fastOnline(28, 2, 0.05)},
	{Meta{"slashdot-2", 77_360, 546_487, 0.987, Interaction, false, "Leskovec et al. [10]"},
		interactionCommunities(7, 400, 30)},
	{Meta{"slashdot-1", 82_168, 504_230, 0.987, Interaction, false, "Leskovec et al. [10]"},
		interactionCommunities(6, 400, 30)},
	{Meta{"facebook", 63_731, 817_090, 0.982, Online, false, "Viswanath et al. [26]"},
		fastOnline(25, 4, 0.01)},
	{Meta{"physics-1", 4_158, 13_422, 0.998, Trust, false, "Leskovec et al. [9] (ca-GrQc)"},
		slowTrust(7, 0.03)},
	{Meta{"physics-2", 11_204, 117_619, 0.998, Trust, false, "Leskovec et al. [9] (ca-HepPh)"},
		slowTrust(21, 0.02)},
	{Meta{"physics-3", 8_638, 24_806, 0.996, Trust, false, "Leskovec et al. [9] (ca-HepTh)"},
		slowTrust(6, 0.04)},
	{Meta{"enron", 33_696, 180_811, 0.996, Interaction, false, "Leskovec et al. [9]"},
		interactionCommunities(5, 250, 8)},
	{Meta{"epinion", 75_877, 405_739, 0.998, Interaction, false, "Richardson et al. [20]"},
		interactionCommunities(5, 300, 5)},
	{Meta{"dblp", 614_981, 1_155_148, 0.997, Trust, true, "Ley [13]"},
		dblpLike(8, 0.02)},
	{Meta{"facebook-A", 1_000_000, 20_353_734, 0.992, Online, true, "Wilson et al. [28]"},
		fastOnline(40, 4, 0.008)},
	{Meta{"facebook-B", 1_000_000, 15_807_563, 0.992, Online, true, "Wilson et al. [28]"},
		fastOnline(31, 4, 0.008)},
	{Meta{"livejournal-A", 1_000_000, 26_151_771, 0.9998, Interaction, true, "Mislove et al. [14]"},
		livejournalLike(500, 50, 0.1)},
	{Meta{"livejournal-B", 1_000_000, 27_562_349, 0.9998, Interaction, true, "Mislove et al. [14]"},
		livejournalLike(500, 53, 0.12)},
	{Meta{"youtube", 1_134_890, 2_987_624, 0.998, Interaction, true, "Mislove et al. [14]"},
		youtubeLike(2.2, 0.01)},
}
