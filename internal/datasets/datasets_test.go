package datasets

import (
	"testing"

	"mixtime/internal/graph"
	"mixtime/internal/spectral"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("%d datasets, want 15 (Table 1)", len(all))
	}
	if len(Small())+len(Large()) != 15 {
		t.Fatal("Small/Large split loses datasets")
	}
	if len(Large()) != 6 {
		t.Fatalf("%d large datasets, want 6 (DBLP, FB A/B, LJ A/B, Youtube)", len(Large()))
	}
	seen := map[string]bool{}
	for _, d := range all {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		if d.PaperNodes <= 0 || d.PaperEdges <= 0 || d.PaperMu <= 0 || d.PaperMu >= 1 {
			t.Fatalf("%s: bad paper metadata %+v", d.Name, d.Meta)
		}
	}
}

func TestByName(t *testing.T) {
	d, err := ByName("physics-1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Kind != Trust {
		t.Fatalf("physics-1 kind %q", d.Kind)
	}
	if _, err := ByName("myspace"); err == nil {
		t.Fatal("unknown dataset resolved")
	}
	if len(Names()) != 15 {
		t.Fatal("Names incomplete")
	}
}

func TestGenerateConnectedAndScaled(t *testing.T) {
	for _, d := range All() {
		scale := 0.05
		if d.Large {
			scale = 0.005
		}
		g := d.Generate(scale, 1)
		if g.NumNodes() < 150 {
			t.Errorf("%s: only %d nodes at scale %v", d.Name, g.NumNodes(), scale)
			continue
		}
		if !graph.IsConnected(g) {
			t.Errorf("%s: LCC not connected", d.Name)
		}
		if g.MinDegree() < 1 {
			t.Errorf("%s: isolated vertex survived LCC", d.Name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d, _ := ByName("enron")
	a := d.Generate(0.02, 9)
	b := d.Generate(0.02, 9)
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed: %v vs %v", a, b)
	}
	c := d.Generate(0.02, 10)
	if a.NumNodes() == c.NumNodes() && a.NumEdges() == c.NumEdges() {
		// Different seeds may coincide in size, but check edges too.
		identical := true
		a.Edges(func(u, v graph.NodeID) bool {
			if !c.HasEdge(u, v) {
				identical = false
				return false
			}
			return true
		})
		if identical {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestMinimumScaleClamp(t *testing.T) {
	d, _ := ByName("physics-1")
	g := d.Generate(0.000001, 1)
	if g.NumNodes() < 100 {
		t.Fatalf("clamp failed: %d nodes", g.NumNodes())
	}
}

// TestMixingCharacterOrdering is the calibration contract: at a small
// scale, trust-graph substitutes must mix more slowly (larger µ) than
// online-graph substitutes — the paper's central qualitative finding.
func TestMixingCharacterOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration check is slow")
	}
	mu := func(name string, scale float64) float64 {
		d, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := d.Generate(scale, 1)
		est, err := spectral.SLEM(g, spectral.Options{Tol: 1e-7})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%-14s n=%6d m=%8d µ=%.5f (paper %.4f)",
			name, g.NumNodes(), g.NumEdges(), est.Mu, d.PaperMu)
		return est.Mu
	}
	wiki := mu("wiki-vote", 0.3)
	fb := mu("facebook", 0.05)
	phys1 := mu("physics-1", 0.5)
	phys3 := mu("physics-3", 0.3)
	enron := mu("enron", 0.08)
	lj := mu("livejournal-A", 0.003)
	// The paper's qualitative finding: online graphs mix faster than
	// trust graphs; physics-3 and enron sit together near the slow end
	// (both 0.996 in Table 1), so they are not mutually ordered here.
	for name, slow := range map[string]float64{"physics-1": phys1, "physics-3": phys3, "enron": enron} {
		if wiki >= slow || fb >= slow {
			t.Errorf("online faster than %s violated: wiki=%v fb=%v %s=%v", name, wiki, fb, name, slow)
		}
	}
	if lj < 0.99 {
		t.Errorf("livejournal substitute too fast: µ=%v", lj)
	}
	if phys1 < 0.99 {
		t.Errorf("physics substitute too fast: µ=%v", phys1)
	}
}
