package digraph

import (
	"errors"

	"mixtime/internal/markov"
)

// Chain is the random walk on a strongly connected digraph:
// P(u→v) = 1/outdeg(u). Unlike the undirected case, the stationary
// distribution is not deg/2m — it is computed numerically at
// construction by iterating the (lazy) walk operator from the uniform
// distribution until the update is below tolerance. The lazy operator
// (I+P)/2 shares P's stationary distribution and is aperiodic on
// every strongly connected digraph, so the iteration always
// converges.
type Chain struct {
	g      *DiGraph
	invOut []float64
	pi     []float64
	lazy   bool
}

// ChainOption configures NewChain.
type ChainOption func(*Chain)

// LazyChain makes the measured chain itself lazy: P' = (I+P)/2.
func LazyChain() ChainOption { return func(c *Chain) { c.lazy = true } }

// NewChain builds the chain. The digraph must be strongly connected
// (extract the largest SCC first); tol bounds the L1 error of the
// computed stationary distribution (≤ 0 defaults to 1e-12).
func NewChain(g *DiGraph, tol float64, opts ...ChainOption) (*Chain, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("digraph: empty graph")
	}
	_, sizes := StronglyConnectedComponents(g)
	if len(sizes) != 1 {
		return nil, errors.New("digraph: chain requires a strongly connected graph")
	}
	if tol <= 0 {
		tol = 1e-12
	}
	c := &Chain{g: g, invOut: make([]float64, n)}
	for _, o := range opts {
		o(c)
	}
	for v := 0; v < n; v++ {
		d := g.OutDegree(NodeID(v))
		if d == 0 {
			return nil, errors.New("digraph: vertex with out-degree 0")
		}
		c.invOut[v] = 1 / float64(d)
	}

	// Stationary distribution by (lazy) power iteration from uniform.
	p := make([]float64, n)
	q := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	const maxIter = 500_000
	for iter := 0; iter < maxIter; iter++ {
		c.stepLazy(q, p)
		var diff float64
		for i := range q {
			d := q[i] - p[i]
			if d < 0 {
				d = -d
			}
			diff += d
		}
		p, q = q, p
		if diff < tol {
			break
		}
	}
	c.pi = p
	return c, nil
}

// stepLazy computes dst = p·(I+P)/2 — used for the stationary solve.
func (c *Chain) stepLazy(dst, p []float64) {
	n := c.g.NumNodes()
	for v := 0; v < n; v++ {
		var s float64
		for _, u := range c.g.In(NodeID(v)) {
			s += p[u] * c.invOut[u]
		}
		dst[v] = 0.5*p[v] + 0.5*s
	}
}

// Step computes dst = p·P (or the lazy variant if configured).
func (c *Chain) Step(dst, p []float64) {
	if c.lazy {
		c.stepLazy(dst, p)
		return
	}
	n := c.g.NumNodes()
	for v := 0; v < n; v++ {
		var s float64
		for _, u := range c.g.In(NodeID(v)) {
			s += p[u] * c.invOut[u]
		}
		dst[v] = s
	}
}

// Stationary returns the numerically computed stationary
// distribution. The slice is shared; callers must not modify it.
func (c *Chain) Stationary() []float64 { return c.pi }

// NumNodes returns the state count.
func (c *Chain) NumNodes() int { return c.g.NumNodes() }

// TraceFrom propagates a point mass at src for maxT steps and records
// the total-variation distance to the stationary distribution after
// each — the directed analogue of the paper's sampling method.
func (c *Chain) TraceFrom(src NodeID, maxT int) *markov.Trace {
	n := c.g.NumNodes()
	p := make([]float64, n)
	q := make([]float64, n)
	p[src] = 1
	tv := make([]float64, maxT)
	for t := 0; t < maxT; t++ {
		c.Step(q, p)
		p, q = q, p
		tv[t] = markov.TVDistance(p, c.pi)
	}
	return &markov.Trace{Source: src, TV: tv}
}
