package digraph

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mixtime/internal/graph"
)

// dicycle returns the directed cycle 0→1→…→n-1→0.
func dicycle(n int) *DiGraph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddArc(NodeID(i), NodeID((i+1)%n))
	}
	return b.Build()
}

// dicomplete returns the complete digraph (all ordered pairs).
func dicomplete(n int) *DiGraph {
	b := NewBuilder(n * (n - 1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddArc(NodeID(i), NodeID(j))
			}
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(0)
	b.AddArc(0, 1)
	b.AddArc(0, 1) // dup
	b.AddArc(1, 0) // reciprocal is distinct
	b.AddArc(2, 2) // self loop dropped
	b.AddNode(3)
	g := b.Build()
	if g.NumNodes() != 4 || g.NumArcs() != 2 {
		t.Fatalf("n=%d arcs=%d", g.NumNodes(), g.NumArcs())
	}
	if !g.HasArc(0, 1) || !g.HasArc(1, 0) || g.HasArc(0, 2) {
		t.Fatal("arc membership wrong")
	}
	if g.OutDegree(0) != 1 || g.InDegree(0) != 1 || g.OutDegree(3) != 0 {
		t.Fatal("degrees wrong")
	}
}

func TestInOutConsistency(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	b := NewBuilder(0)
	n := 100
	b.AddNode(NodeID(n - 1))
	for i := 0; i < 400; i++ {
		b.AddArc(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
	}
	g := b.Build()
	var outSum, inSum int64
	for v := 0; v < n; v++ {
		outSum += int64(g.OutDegree(NodeID(v)))
		inSum += int64(g.InDegree(NodeID(v)))
		for _, w := range g.Out(NodeID(v)) {
			found := false
			for _, u := range g.In(w) {
				if u == NodeID(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("arc %d→%d missing from in-list", v, w)
			}
		}
	}
	if outSum != inSum || outSum != g.NumArcs() {
		t.Fatalf("degree sums out=%d in=%d arcs=%d", outSum, inSum, g.NumArcs())
	}
}

func TestFromArcsRange(t *testing.T) {
	if _, err := FromArcs(2, []Arc{{0, 5}}); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
	g, err := FromArcs(3, []Arc{{0, 1}})
	if err != nil || g.NumNodes() != 3 {
		t.Fatalf("g=%v err=%v", g, err)
	}
}

func TestSymmetrize(t *testing.T) {
	b := NewBuilder(0)
	b.AddArc(0, 1)
	b.AddArc(1, 0) // reciprocal pair → one undirected edge
	b.AddArc(1, 2)
	g := Symmetrize(b.Build())
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("symmetrized %v", g)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("edges wrong")
	}
}

func TestReverse(t *testing.T) {
	g := dicycle(5)
	r := Reverse(g)
	for v := 0; v < 5; v++ {
		if !r.HasArc(NodeID((v+1)%5), NodeID(v)) {
			t.Fatalf("reverse arc missing at %d", v)
		}
	}
	if r.NumArcs() != g.NumArcs() {
		t.Fatal("arc count changed")
	}
}

func TestSCCOnCycleAndDAG(t *testing.T) {
	labels, sizes := StronglyConnectedComponents(dicycle(6))
	if len(sizes) != 1 || sizes[0] != 6 {
		t.Fatalf("cycle SCCs %v", sizes)
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("cycle label mismatch")
		}
	}
	// A DAG: every vertex its own SCC.
	b := NewBuilder(0)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(0, 2)
	_, sizes = StronglyConnectedComponents(b.Build())
	if len(sizes) != 3 {
		t.Fatalf("DAG SCCs %v", sizes)
	}
}

func TestSCCMixed(t *testing.T) {
	// Two 3-cycles joined by a one-way bridge: two SCCs of size 3.
	b := NewBuilder(0)
	for i := 0; i < 3; i++ {
		b.AddArc(NodeID(i), NodeID((i+1)%3))
		b.AddArc(NodeID(3+i), NodeID(3+(i+1)%3))
	}
	b.AddArc(2, 3)
	labels, sizes := StronglyConnectedComponents(b.Build())
	if len(sizes) != 2 || sizes[0] != 3 || sizes[1] != 3 {
		t.Fatalf("sizes %v", sizes)
	}
	if labels[0] == labels[3] {
		t.Fatal("bridge merged the SCCs")
	}
	lscc, orig := LargestSCC(b.Build())
	if lscc.NumNodes() != 3 || len(orig) != 3 {
		t.Fatalf("largest SCC %v", lscc)
	}
}

func TestSCCDeepChainNoOverflow(t *testing.T) {
	// A 200k-long path exercises the iterative DFS (recursive Tarjan
	// would blow the stack).
	n := 200_000
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddArc(NodeID(i), NodeID(i+1))
	}
	_, sizes := StronglyConnectedComponents(b.Build())
	if len(sizes) != n {
		t.Fatalf("%d SCCs, want %d", len(sizes), n)
	}
}

func TestChainRequiresStrongConnectivity(t *testing.T) {
	b := NewBuilder(0)
	b.AddArc(0, 1) // not strongly connected
	if _, err := NewChain(b.Build(), 0); err == nil {
		t.Fatal("weakly connected chain accepted")
	}
	if _, err := NewChain(&DiGraph{}, 0); err == nil {
		t.Fatal("empty chain accepted")
	}
}

func TestChainStationaryOnCompleteDigraph(t *testing.T) {
	// Complete digraph: uniform stationary distribution.
	c, err := NewChain(dicomplete(8), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c.Stationary() {
		if math.Abs(p-1.0/8) > 1e-9 {
			t.Fatalf("π = %v", c.Stationary())
		}
	}
}

func TestChainStationaryIsInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	// Random strongly connected digraph: a cycle plus chords.
	b := NewBuilder(0)
	n := 60
	for i := 0; i < n; i++ {
		b.AddArc(NodeID(i), NodeID((i+1)%n))
	}
	for k := 0; k < 150; k++ {
		b.AddArc(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
	}
	g := b.Build()
	c, err := NewChain(g, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	pi := append([]float64(nil), c.Stationary()...)
	next := make([]float64, n)
	c.Step(next, pi)
	var diff float64
	for i := range next {
		diff += math.Abs(next[i] - pi[i])
	}
	if diff > 1e-9 {
		t.Fatalf("‖πP − π‖₁ = %g", diff)
	}
}

func TestChainTraceConverges(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	b := NewBuilder(0)
	n := 40
	for i := 0; i < n; i++ {
		b.AddArc(NodeID(i), NodeID((i+1)%n))
	}
	for k := 0; k < 200; k++ {
		b.AddArc(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
	}
	c, err := NewChain(b.Build(), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	tr := c.TraceFrom(0, 300)
	if final := tr.TV[len(tr.TV)-1]; final > 1e-6 {
		t.Fatalf("directed trace TV after 300 steps = %v", final)
	}
}

func TestChainLazyOnPeriodicCycle(t *testing.T) {
	// The pure walk on a directed cycle is periodic and never mixes;
	// the lazy chain converges to uniform.
	g := dicycle(7)
	plain, err := NewChain(g, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	tr := plain.TraceFrom(0, 100)
	if tr.TV[99] < 0.4 {
		t.Fatalf("periodic walk mixed: %v", tr.TV[99])
	}
	lazy, err := NewChain(g, 1e-12, LazyChain())
	if err != nil {
		t.Fatal(err)
	}
	ltr := lazy.TraceFrom(0, 400)
	if ltr.TV[399] > 1e-3 {
		t.Fatalf("lazy directed walk TV %v", ltr.TV[399])
	}
	// Both share the uniform stationary distribution on the cycle.
	for _, p := range plain.Stationary() {
		if math.Abs(p-1.0/7) > 1e-9 {
			t.Fatalf("cycle π = %v", plain.Stationary())
		}
	}
}

// Property: Symmetrize(g) has between max(arcs/2 rounded) and arcs
// edges, and every arc maps to an edge.
func TestQuickSymmetrize(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		b := NewBuilder(0)
		n := 30 + int(seed%30)
		b.AddNode(NodeID(n - 1))
		for k := 0; k < 3*n; k++ {
			b.AddArc(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
		}
		dg := b.Build()
		ug := Symmetrize(dg)
		if ug.Validate() != nil {
			return false
		}
		if ug.NumEdges() > dg.NumArcs() || 2*ug.NumEdges() < dg.NumArcs() {
			return false
		}
		ok := true
		for v := 0; v < n && ok; v++ {
			for _, w := range dg.Out(NodeID(v)) {
				if !ug.HasEdge(NodeID(v), w) {
					ok = false
					break
				}
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: SCC labels partition the vertex set and arcs within an
// SCC stay within it under Subgraph extraction.
func TestQuickSCCPartition(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		b := NewBuilder(0)
		n := 20 + int(seed%40)
		b.AddNode(NodeID(n - 1))
		for k := 0; k < 2*n; k++ {
			b.AddArc(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
		}
		g := b.Build()
		labels, sizes := StronglyConnectedComponents(g)
		var total int64
		for _, s := range sizes {
			total += s
		}
		if total != int64(n) {
			return false
		}
		for _, l := range labels {
			if l < 0 || int(l) >= len(sizes) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSymmetrizePreservesWalkEquivalence(t *testing.T) {
	// On a symmetric digraph (every arc reciprocated) the directed
	// chain equals the undirected one: same stationary distribution.
	b := NewBuilder(0)
	edges := [][2]NodeID{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
	for _, e := range edges {
		b.AddArc(e[0], e[1])
		b.AddArc(e[1], e[0])
	}
	dg := b.Build()
	c, err := NewChain(dg, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	ug := Symmetrize(dg)
	twoM := float64(2 * ug.NumEdges())
	for v := 0; v < ug.NumNodes(); v++ {
		want := float64(ug.Degree(graph.NodeID(v))) / twoM
		if math.Abs(c.Stationary()[v]-want) > 1e-9 {
			t.Fatalf("π[%d] = %v, want deg/2m = %v", v, c.Stationary()[v], want)
		}
	}
}
