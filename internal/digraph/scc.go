package digraph

// StronglyConnectedComponents labels each vertex with an SCC index in
// [0, k) and returns the sizes. The implementation is an iterative
// Tarjan (explicit stack) so million-node crawls don't overflow the
// goroutine stack.
func StronglyConnectedComponents(g *DiGraph) (labels []int32, sizes []int64) {
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	const unvisited = -1
	labels = make([]int32, n)
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		labels[i] = -1
	}
	var stack []NodeID
	var next int32

	// Explicit DFS frames: vertex plus the position within its
	// out-list.
	type frame struct {
		v   NodeID
		idx int
	}
	var frames []frame

	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		frames = append(frames[:0], frame{NodeID(start), 0})
		index[start] = next
		lowlink[start] = next
		next++
		stack = append(stack, NodeID(start))
		onStack[start] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			out := g.Out(f.v)
			if f.idx < len(out) {
				w := out[f.idx]
				f.idx++
				if index[w] == unvisited {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			// Post-order: pop the frame, propagate lowlink, emit SCC.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				comp := int32(len(sizes))
				var size int64
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					labels[w] = comp
					size++
					if w == v {
						break
					}
				}
				sizes = append(sizes, size)
			}
		}
	}
	return labels, sizes
}

// Subgraph returns the sub-digraph induced by nodes, relabeled to
// [0, len(nodes)); the second value maps new IDs to originals.
func Subgraph(g *DiGraph, nodes []NodeID) (*DiGraph, []NodeID) {
	const absent = ^NodeID(0)
	remap := make([]NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = absent
	}
	orig := make([]NodeID, 0, len(nodes))
	for _, v := range nodes {
		if remap[v] == absent {
			remap[v] = NodeID(len(orig))
			orig = append(orig, v)
		}
	}
	b := NewBuilder(0)
	if len(orig) > 0 {
		b.AddNode(NodeID(len(orig) - 1))
	}
	for newU, oldU := range orig {
		for _, oldV := range g.Out(oldU) {
			if newV := remap[oldV]; newV != absent {
				b.AddArc(NodeID(newU), newV)
			}
		}
	}
	return b.Build(), orig
}

// LargestSCC extracts the largest strongly connected component — the
// directed analogue of the paper's largest-component preprocessing
// (the directed walk is irreducible only there).
func LargestSCC(g *DiGraph) (*DiGraph, []NodeID) {
	labels, sizes := StronglyConnectedComponents(g)
	if len(sizes) == 0 {
		return &DiGraph{}, nil
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	nodes := make([]NodeID, 0, sizes[best])
	for v, l := range labels {
		if l == int32(best) {
			nodes = append(nodes, NodeID(v))
		}
	}
	return Subgraph(g, nodes)
}
