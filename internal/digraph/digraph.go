// Package digraph provides directed graphs and the preprocessing the
// paper applies to them. The SNAP datasets of Table 1 (wiki-vote,
// Slashdot, Epinion) are directed crawls; the paper — like the Sybil
// defenses it measures — symmetrizes them and takes the largest
// connected component. This package makes that pipeline explicit
// (Symmetrize, largest strongly connected component via Tarjan), and
// supports the random walk on the directed graph itself, whose mixing
// the authors' follow-up work ("On the Mixing Time of Directed Social
// Graphs") measures: unlike the undirected case the stationary
// distribution has no closed form and is computed numerically.
package digraph

import (
	"fmt"

	"mixtime/internal/graph"
)

// NodeID identifies a vertex.
type NodeID = graph.NodeID

// DiGraph is an immutable simple directed graph in CSR form (both
// out- and in-adjacency). The zero value is an empty graph.
type DiGraph struct {
	outOff []int64
	outAdj []NodeID
	inOff  []int64
	inAdj  []NodeID
}

// NumNodes returns the number of vertices.
func (g *DiGraph) NumNodes() int {
	if len(g.outOff) == 0 {
		return 0
	}
	return len(g.outOff) - 1
}

// NumArcs returns the number of directed edges.
func (g *DiGraph) NumArcs() int64 { return int64(len(g.outAdj)) }

// OutDegree returns the out-degree of v.
func (g *DiGraph) OutDegree(v NodeID) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the in-degree of v.
func (g *DiGraph) InDegree(v NodeID) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Out returns v's out-neighbors, sorted. The slice aliases internal
// storage and must not be modified.
func (g *DiGraph) Out(v NodeID) []NodeID { return g.outAdj[g.outOff[v]:g.outOff[v+1]] }

// In returns v's in-neighbors, sorted.
func (g *DiGraph) In(v NodeID) []NodeID { return g.inAdj[g.inOff[v]:g.inOff[v+1]] }

// HasArc reports whether the arc u→v exists.
func (g *DiGraph) HasArc(u, v NodeID) bool {
	adj := g.Out(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// String returns a short summary.
func (g *DiGraph) String() string {
	return fmt.Sprintf("digraph{n=%d arcs=%d}", g.NumNodes(), g.NumArcs())
}

// Arc is a directed edge.
type Arc struct{ From, To NodeID }

// Builder accumulates arcs; duplicates and self-loops are dropped at
// Build.
type Builder struct {
	arcs  []Arc
	maxID NodeID
	any   bool
}

// NewBuilder returns a Builder with capacity for sizeHint arcs.
func NewBuilder(sizeHint int) *Builder { return &Builder{arcs: make([]Arc, 0, sizeHint)} }

// AddArc records the arc u→v (self-loops ignored).
func (b *Builder) AddArc(u, v NodeID) {
	if u == v {
		return
	}
	if u > b.maxID {
		b.maxID = u
	}
	if v > b.maxID {
		b.maxID = v
	}
	b.any = true
	b.arcs = append(b.arcs, Arc{u, v})
}

// AddNode extends the node range to cover v.
func (b *Builder) AddNode(v NodeID) {
	if v > b.maxID {
		b.maxID = v
	}
	b.any = true
}

// Build produces the DiGraph.
func (b *Builder) Build() *DiGraph {
	if !b.any {
		return &DiGraph{}
	}
	n := int(b.maxID) + 1
	arcs := dedupArcs(b.arcs)

	g := &DiGraph{
		outOff: make([]int64, n+1),
		inOff:  make([]int64, n+1),
		outAdj: make([]NodeID, len(arcs)),
		inAdj:  make([]NodeID, len(arcs)),
	}
	for _, a := range arcs {
		g.outOff[a.From+1]++
		g.inOff[a.To+1]++
	}
	for v := 0; v < n; v++ {
		g.outOff[v+1] += g.outOff[v]
		g.inOff[v+1] += g.inOff[v]
	}
	outCur := make([]int64, n)
	inCur := make([]int64, n)
	copy(outCur, g.outOff[:n])
	copy(inCur, g.inOff[:n])
	for _, a := range arcs {
		g.outAdj[outCur[a.From]] = a.To
		outCur[a.From]++
		g.inAdj[inCur[a.To]] = a.From
		inCur[a.To]++
	}
	// arcs sorted by (From, To) makes out-lists sorted; in-lists come
	// out sorted by From for each To because the scan is in From order.
	return g
}

// dedupArcs sorts by (From, To) and removes duplicates.
func dedupArcs(arcs []Arc) []Arc {
	sorted := append([]Arc(nil), arcs...)
	// Simple two-key sort.
	sortArcs(sorted)
	out := sorted[:0]
	for i, a := range sorted {
		if i == 0 || a != sorted[i-1] {
			out = append(out, a)
		}
	}
	return out
}

func sortArcs(arcs []Arc) {
	// Standard sort on packed keys (uint64) is fastest and simplest.
	keys := make([]uint64, len(arcs))
	for i, a := range arcs {
		keys[i] = uint64(a.From)<<32 | uint64(a.To)
	}
	quicksortWith(keys, arcs)
}

func quicksortWith(keys []uint64, arcs []Arc) {
	if len(keys) < 2 {
		return
	}
	if len(keys) < 24 {
		for i := 1; i < len(keys); i++ {
			k, a := keys[i], arcs[i]
			j := i - 1
			for j >= 0 && keys[j] > k {
				keys[j+1], arcs[j+1] = keys[j], arcs[j]
				j--
			}
			keys[j+1], arcs[j+1] = k, a
		}
		return
	}
	// median-of-three pivot
	mid := len(keys) / 2
	last := len(keys) - 1
	if keys[mid] < keys[0] {
		keys[mid], keys[0] = keys[0], keys[mid]
		arcs[mid], arcs[0] = arcs[0], arcs[mid]
	}
	if keys[last] < keys[0] {
		keys[last], keys[0] = keys[0], keys[last]
		arcs[last], arcs[0] = arcs[0], arcs[last]
	}
	if keys[last] < keys[mid] {
		keys[last], keys[mid] = keys[mid], keys[last]
		arcs[last], arcs[mid] = arcs[mid], arcs[last]
	}
	pivot := keys[mid]
	i, j := 0, last
	for i <= j {
		for keys[i] < pivot {
			i++
		}
		for keys[j] > pivot {
			j--
		}
		if i <= j {
			keys[i], keys[j] = keys[j], keys[i]
			arcs[i], arcs[j] = arcs[j], arcs[i]
			i++
			j--
		}
	}
	quicksortWith(keys[:j+1], arcs[:j+1])
	quicksortWith(keys[i:], arcs[i:])
}

// FromArcs builds a digraph from an arc list; n=0 infers the node
// count.
func FromArcs(n int, arcs []Arc) (*DiGraph, error) {
	b := NewBuilder(len(arcs))
	for _, a := range arcs {
		if n > 0 && (int(a.From) >= n || int(a.To) >= n) {
			return nil, fmt.Errorf("digraph: arc %d→%d out of range for n=%d", a.From, a.To, n)
		}
		b.AddArc(a.From, a.To)
	}
	if n > 0 {
		b.AddNode(NodeID(n - 1))
	}
	return b.Build(), nil
}

// Symmetrize converts the digraph to the undirected graph the paper
// measures: every arc becomes an undirected edge (reciprocal pairs
// merge).
func Symmetrize(g *DiGraph) *graph.Graph {
	b := graph.NewBuilder(int(g.NumArcs()))
	if n := g.NumNodes(); n > 0 {
		b.AddNode(NodeID(n - 1))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.Out(NodeID(v)) {
			b.AddEdge(NodeID(v), w)
		}
	}
	return b.Build()
}

// Reverse returns the digraph with all arcs flipped.
func Reverse(g *DiGraph) *DiGraph {
	b := NewBuilder(int(g.NumArcs()))
	if n := g.NumNodes(); n > 0 {
		b.AddNode(NodeID(n - 1))
	}
	for v := 0; v < g.NumNodes(); v++ {
		for _, w := range g.Out(NodeID(v)) {
			b.AddArc(w, NodeID(v))
		}
	}
	return b.Build()
}
