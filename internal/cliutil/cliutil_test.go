package cliutil

import (
	"os"
	"path/filepath"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graphio"
)

func TestParseDatasetRef(t *testing.T) {
	name, scale, ok, err := ParseDatasetRef("dataset:physics-1:0.5")
	if err != nil || !ok || name != "physics-1" || scale != 0.5 {
		t.Fatalf("got %q %v %v %v", name, scale, ok, err)
	}
	name, scale, ok, err = ParseDatasetRef("dataset:enron")
	if err != nil || !ok || name != "enron" || scale != DefaultScale {
		t.Fatalf("default scale: %q %v %v %v", name, scale, ok, err)
	}
	if _, _, ok, _ := ParseDatasetRef("somefile.txt"); ok {
		t.Fatal("file path treated as reference")
	}
	if _, _, _, err := ParseDatasetRef("dataset:enron:zero"); err == nil {
		t.Fatal("bad scale accepted")
	}
	if _, _, _, err := ParseDatasetRef("dataset:enron:-1"); err == nil {
		t.Fatal("negative scale accepted")
	}
}

func TestLoadGraphArg(t *testing.T) {
	g, err := LoadGraphArg("dataset:wiki-vote:0.05")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() < 100 {
		t.Fatalf("dataset ref yielded %d nodes", g.NumNodes())
	}
	if _, err := LoadGraphArg("dataset:myspace"); err == nil {
		t.Fatal("unknown dataset accepted")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	want := gen.Ring(12)
	if err := graphio.SaveFile(path, want); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadGraphArg(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumNodes() != 12 || loaded.NumEdges() != 12 {
		t.Fatalf("loaded %v", loaded)
	}
	if _, err := LoadGraphArg(filepath.Join(dir, "missing.txt")); !os.IsNotExist(err) {
		t.Fatalf("missing file error: %v", err)
	}
}
