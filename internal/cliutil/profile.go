package cliutil

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// StartProfiles turns on the requested runtime profilers: a CPU
// profile, a heap profile, and an execution trace, each written to
// the named file (empty name = off). It returns the stop function the
// caller must run at exit — conventionally
//
//	stop, err := cliutil.StartProfiles(*cpuprofile, *memprofile, *traceFile)
//	if err != nil { ... }
//	defer stop()
//
// stop flushes and closes every profile; the heap profile is captured
// at stop time (after a GC, so it reflects live objects). Errors
// while stopping are reported on stderr rather than returned, since
// stop usually runs in a defer.
func StartProfiles(cpuFile, memFile, traceFile string) (stop func(), err error) {
	var stops []func()
	fail := func(err error) (func(), error) {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		return nil, err
	}
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return fail(fmt.Errorf("cpu profile: %w", err))
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("cpu profile: %w", err))
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpu profile:", err)
			}
		})
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			return fail(fmt.Errorf("trace: %w", err))
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return fail(fmt.Errorf("trace: %w", err))
		}
		stops = append(stops, func() {
			trace.Stop()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
		})
	}
	if memFile != "" {
		stops = append(stops, func() {
			f, err := os.Create(memFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			runtime.GC() // materialize live-object stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		})
	}
	return func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}, nil
}
