package cliutil

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// SignalContext installs the shared first-graceful/second-hard
// interrupt discipline every binary uses: the returned context is
// cancelled on the first SIGINT/SIGTERM (long loops notice at their
// next context check, cleanups and profile flushes still run), and
// the moment it dies — from a signal, a timeout ancestor, or the
// returned stop — the handler is released, so a second signal takes
// the default disposition and hard-exits a wedged process.
//
// This used to be duplicated (goroutine included) across
// cmd/paperfigs and cmd/mixtime; paperfigs, mixtime, mixtimed and
// mixload all call this now. The caller must defer stop.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx, stop
}
