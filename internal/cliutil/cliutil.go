// Package cliutil holds the small helpers the command-line tools
// share, so cmd/mixtime, cmd/paperfigs, cmd/gensocial and
// cmd/sybilcheck stay thin shells:
//
//   - LoadGraphArg resolves a graph argument that may be a file path
//     (edge-list or binary, ".gz" accepted) or a
//     "dataset:<name>[:scale]" reference into a loaded graph.
//   - StartProfiles turns -cpuprofile/-memprofile/-trace flag values
//     into running runtime/pprof and runtime/trace captures with a
//     single stop function, so every binary exposes the same
//     profiling surface (see README "Profiling & benchmarking").
package cliutil

import (
	"fmt"
	"strconv"
	"strings"

	"mixtime/internal/datasets"
	"mixtime/internal/graph"
	"mixtime/internal/graphio"
)

// DefaultScale is the dataset scale used when a reference omits one.
const DefaultScale = 0.01

// ParseDatasetRef splits "dataset:<name>[:scale]" into its parts;
// ok is false if arg is not a dataset reference.
func ParseDatasetRef(arg string) (name string, scale float64, ok bool, err error) {
	rest, ok := strings.CutPrefix(arg, "dataset:")
	if !ok {
		return "", 0, false, nil
	}
	scale = DefaultScale
	name = rest
	if i := strings.LastIndex(rest, ":"); i > 0 {
		s, perr := strconv.ParseFloat(rest[i+1:], 64)
		if perr != nil {
			return "", 0, true, fmt.Errorf("bad scale in %q: %v", arg, perr)
		}
		if s <= 0 {
			return "", 0, true, fmt.Errorf("scale must be positive in %q", arg)
		}
		scale, name = s, rest[:i]
	}
	return name, scale, true, nil
}

// LoadGraphArg resolves a graph argument: a dataset reference is
// generated (seed 1), anything else loads as a file.
func LoadGraphArg(arg string) (*graph.Graph, error) {
	name, scale, isRef, err := ParseDatasetRef(arg)
	if err != nil {
		return nil, err
	}
	if isRef {
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		return d.Generate(scale, 1), nil
	}
	return graphio.LoadFile(arg)
}
