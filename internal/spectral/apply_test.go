package spectral

import (
	"math/rand/v2"
	"testing"

	"mixtime/internal/graph"
)

// variedWeights builds symmetric non-uniform CSR-aligned weights for
// g, deterministic in the edge endpoints so the u→v and v→u slots
// agree.
func variedWeights(g *graph.Graph) []float64 {
	var weights []float64
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			a, b := v, int(u)
			if a > b {
				a, b = b, a
			}
			weights = append(weights, 1+float64((a*31+b)%7))
		}
	}
	return weights
}

func TestApplyParallelMatchesApply(t *testing.T) {
	g := connectedRandom(300, 600, 19)
	rng := rand.New(rand.NewPCG(2, 3))
	x := make([]float64, g.NumNodes())
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}

	unweighted, err := NewOperator(g)
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := NewWeightedOperator(g, variedWeights(g))
	if err != nil {
		t.Fatal(err)
	}
	for name, op := range map[string]*Operator{"unweighted": unweighted, "weighted": weighted} {
		want := make([]float64, op.Dim())
		op.Apply(want, x, nil)
		for _, workers := range []int{0, 1, 2, 4, 64} {
			got := make([]float64, op.Dim())
			op.ApplyParallel(got, x, nil, workers)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s workers=%d: row %d: %v, want %v (not byte-identical)",
						name, workers, v, got[v], want[v])
				}
			}
		}
	}
}

// Apply must accept oversized scratch by reslicing and allocate its
// own when scratch is short, with identical results.
func TestApplyScratchSizes(t *testing.T) {
	g := connectedRandom(80, 120, 23)
	op, err := NewOperator(g)
	if err != nil {
		t.Fatal(err)
	}
	n := op.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%5) - 2
	}
	want := make([]float64, n)
	op.Apply(want, x, make([]float64, n))
	for _, size := range []int{0, n - 1, n + 33} {
		got := make([]float64, n)
		op.Apply(got, x, make([]float64, size))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("scratch len %d: row %d differs", size, v)
			}
		}
		gotPar := make([]float64, n)
		op.ApplyParallel(gotPar, x, make([]float64, size), 3)
		for v := range want {
			if gotPar[v] != want[v] {
				t.Fatalf("parallel scratch len %d: row %d differs", size, v)
			}
		}
	}
}

// SLEM estimates must be byte-identical for any Workers setting, since
// the sharded matvec preserves per-row summation order.
func TestSLEMWorkersByteIdentical(t *testing.T) {
	g := connectedRandom(150, 250, 29)
	base, err := SLEM(g, Options{Seed: 11, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 4} {
		est, err := SLEM(g, Options{Seed: 11, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if est.Mu != base.Mu || est.Lambda2 != base.Lambda2 || est.Iterations != base.Iterations {
			t.Fatalf("workers=%d: (µ=%v λ₂=%v iters=%d), want (µ=%v λ₂=%v iters=%d)",
				workers, est.Mu, est.Lambda2, est.Iterations,
				base.Mu, base.Lambda2, base.Iterations)
		}
	}
}
