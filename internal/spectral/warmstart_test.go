package spectral

import (
	"math"
	"strconv"
	"testing"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// warmTestGraph is a ring with chords — connected with a clean
// spectral gap, cheap enough for dense cross-checks.
func warmTestGraph(n int) *graph.Graph {
	b := graph.NewBuilder(2 * n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+n/3)%n))
	}
	return b.Build()
}

// TestWarmStartFromConvergedVectorCollapsesIterations: seeding the λ₂
// phase with its own converged eigenvector must converge almost
// immediately — the limiting case of the evolving-graph warm start.
func TestWarmStartFromConvergedVectorCollapsesIterations(t *testing.T) {
	g := warmTestGraph(90)
	opt := Options{Tol: 1e-9, Seed: 1}
	cold, err := SLEMPower(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Converged || cold.WarmStarted {
		t.Fatalf("cold run: converged=%v warm=%v", cold.Converged, cold.WarmStarted)
	}
	opt.Start = cold.Vector2
	warm, err := SLEMPower(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted || !warm.Converged {
		t.Fatalf("warm run: converged=%v warm=%v", warm.Converged, warm.WarmStarted)
	}
	if warm.Iters2 > 3 {
		t.Fatalf("warm start from the converged vector took %d λ₂ iterations, want ≤ 3 (cold took %d)",
			warm.Iters2, cold.Iters2)
	}
	if warm.Iters2 >= cold.Iters2 {
		t.Fatalf("warm λ₂ phase (%d) not cheaper than cold (%d)", warm.Iters2, cold.Iters2)
	}
	// The λ_n phase never warm-starts, so its cost is unchanged.
	if warm.ItersN != cold.ItersN {
		t.Fatalf("λ_n phase differs: %d vs %d", warm.ItersN, cold.ItersN)
	}
	// Byte identity of the converged value at document precision.
	if w, c := strconv.FormatFloat(warm.Mu, 'f', 6, 64), strconv.FormatFloat(cold.Mu, 'f', 6, 64); w != c {
		t.Fatalf("converged µ differs: %s vs %s", w, c)
	}
}

// TestWrongLengthStartFallsBackByteIdentical: a Start of the wrong
// length must be ignored entirely, reproducing the cold run bit for
// bit (the rng consumption is identical).
func TestWrongLengthStartFallsBackByteIdentical(t *testing.T) {
	g := warmTestGraph(60)
	opt := Options{Tol: 1e-8, Seed: 3}
	cold, err := SLEMPower(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Start = make([]float64, g.NumNodes()-1) // wrong length
	fell, err := SLEMPower(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fell.WarmStarted {
		t.Fatal("wrong-length Start reported as warm")
	}
	if fell.Mu != cold.Mu || fell.Lambda2 != cold.Lambda2 || fell.Iterations != cold.Iterations {
		t.Fatalf("fallback differs from cold run: %+v vs %+v", fell, cold)
	}
}

// TestDegenerateStartRecovers: a Start that deflates to zero (v₁
// itself) must fall back to the random start and still converge to
// the right answer.
func TestDegenerateStartRecovers(t *testing.T) {
	g := warmTestGraph(50)
	op, err := NewOperator(g)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SLEMPower(g, Options{Tol: 1e-8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	deg, err := SLEMPower(g, Options{Tol: 1e-8, Seed: 1, Start: op.TopEigenvector()})
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Converged {
		t.Fatal("degenerate start did not converge")
	}
	if d := math.Abs(deg.Mu - cold.Mu); d > 1e-7 {
		t.Fatalf("degenerate-start µ %v vs cold µ %v differ by %g", deg.Mu, cold.Mu, d)
	}
}

// TestLanczosWarmStartAndRitzVector: Lanczos must emit a λ₂ Ritz
// vector usable as a warm start, and accept one.
func TestLanczosWarmStartAndRitzVector(t *testing.T) {
	g := warmTestGraph(80)
	opt := Options{Tol: 1e-9, Seed: 1}
	est, err := SLEMLanczos(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Vector2) != g.NumNodes() {
		t.Fatalf("Lanczos Vector2 length %d, want %d", len(est.Vector2), g.NumNodes())
	}
	// The Ritz vector should be a genuine eigenvector estimate: check
	// its Rayleigh quotient against the reported λ₂.
	op, err := NewOperator(g)
	if err != nil {
		t.Fatal(err)
	}
	sx := make([]float64, g.NumNodes())
	op.Apply(sx, est.Vector2, nil)
	var rq float64
	for i := range sx {
		rq += sx[i] * est.Vector2[i]
	}
	if d := math.Abs(rq - est.Lambda2); d > 1e-6 {
		t.Fatalf("Ritz vector Rayleigh quotient %v vs λ₂ %v differ by %g", rq, est.Lambda2, d)
	}

	opt.Start = est.Vector2
	warm, err := SLEMLanczos(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStarted || !warm.Converged {
		t.Fatalf("warm Lanczos: converged=%v warm=%v", warm.Converged, warm.WarmStarted)
	}
	if d := math.Abs(warm.Mu - est.Mu); d > 1e-7 {
		t.Fatalf("warm Lanczos µ %v vs cold %v differ by %g", warm.Mu, est.Mu, d)
	}
}

// TestWarmStartAgainstDenseOracle: warm-started estimates still match
// the dense eigensolver — the warm path is an optimization, not an
// approximation.
func TestWarmStartAgainstDenseOracle(t *testing.T) {
	g := warmTestGraph(40)
	want, err := DenseSLEM(g)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SLEMPower(g, Options{Tol: 1e-9, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := SLEMPower(g, Options{Tol: 1e-9, Seed: 1, Start: cold.Vector2})
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(warm.Mu - want); d > 1e-6 {
		t.Fatalf("warm µ %v vs dense %v differ by %g", warm.Mu, want, d)
	}
}

func TestWarmStartTelemetry(t *testing.T) {
	g := warmTestGraph(40)
	col := telemetry.New()
	cold, err := SLEMPower(g, Options{Tol: 1e-8, Seed: 1, Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	if got := col.Count(telemetry.EvolveWarmStarts); got != 0 {
		t.Fatalf("cold run counted %d warm starts", got)
	}
	if _, err := SLEMPower(g, Options{Tol: 1e-8, Seed: 1, Collector: col, Start: cold.Vector2}); err != nil {
		t.Fatal(err)
	}
	if got := col.Count(telemetry.EvolveWarmStarts); got != 1 {
		t.Fatalf("evolve_warm_starts = %d, want 1", got)
	}
}
