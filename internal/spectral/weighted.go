package spectral

import (
	"context"
	"errors"
	"math"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// NewWeightedOperator builds the symmetrized walk operator for a
// weighted graph: S = D_w^{-1/2} W D_w^{-1/2}, where W holds the
// symmetric edge weights and D_w the node strengths (weighted
// degrees). weights must be CSR-aligned with g: one entry per
// directed adjacency slot, in the order Neighbors(0), Neighbors(1),
// …, and symmetric (the slot for u→v equals the one for v→u). All
// weights must be positive.
//
// Weighted walks are the mechanism of the paper's future-work
// direction (trust-incorporating Sybil defenses): biasing transition
// probabilities by edge trust changes µ and hence the mixing time.
func NewWeightedOperator(g *graph.Graph, weights []float64) (*Operator, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("spectral: empty graph")
	}
	var slots int64
	for v := 0; v < n; v++ {
		slots += int64(g.Degree(graph.NodeID(v)))
	}
	if int64(len(weights)) != slots {
		return nil, errors.New("spectral: weights not CSR-aligned with graph")
	}
	strength := make([]float64, n)
	idx := 0
	for v := 0; v < n; v++ {
		for range g.Neighbors(graph.NodeID(v)) {
			w := weights[idx]
			if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
				return nil, errors.New("spectral: weights must be positive and finite")
			}
			strength[v] += w
			idx++
		}
	}
	var total float64
	op := &Operator{
		g:          g,
		invSqrtDeg: make([]float64, n),
		v1:         make([]float64, n),
		weights:    weights,
	}
	for v := 0; v < n; v++ {
		if strength[v] == 0 {
			return nil, errors.New("spectral: isolated vertex")
		}
		op.invSqrtDeg[v] = 1 / math.Sqrt(strength[v])
		total += strength[v]
	}
	for v := 0; v < n; v++ {
		op.v1[v] = math.Sqrt(strength[v] / total)
	}
	op.plan = newOperatorPlan(g)
	op.adjLen = slots
	return op, nil
}

// SLEMPowerOp runs the deflated power iteration against an arbitrary
// (possibly weighted) operator.
func SLEMPowerOp(op *Operator, opt Options) (*Estimate, error) {
	return SLEMPowerOpContext(context.Background(), op, opt)
}

// SLEMPowerOpContext is SLEMPowerOp with cancellation.
func SLEMPowerOpContext(ctx context.Context, op *Operator, opt Options) (*Estimate, error) {
	return slemPowerOp(ctx, op, opt)
}

// SLEMLanczosOp runs Lanczos against an arbitrary (possibly weighted)
// operator.
func SLEMLanczosOp(op *Operator, opt Options) (*Estimate, error) {
	return SLEMLanczosOpContext(context.Background(), op, opt)
}

// SLEMLanczosOpContext is SLEMLanczosOp with cancellation.
func SLEMLanczosOpContext(ctx context.Context, op *Operator, opt Options) (*Estimate, error) {
	return slemLanczosOp(ctx, op, opt)
}

// SLEMOf estimates µ for an operator with the default strategy
// (Lanczos, power fallback).
func SLEMOf(op *Operator, opt Options) (*Estimate, error) {
	return SLEMOfContext(context.Background(), op, opt)
}

// SLEMOfContext is SLEMOf with cancellation; both the Lanczos attempt
// and the power fallback abort at their next iteration once ctx is
// done, returning the wrapped ctx.Err().
func SLEMOfContext(ctx context.Context, op *Operator, opt Options) (*Estimate, error) {
	est, err := slemLanczosOp(ctx, op, opt)
	if err != nil {
		return nil, err
	}
	if est.Converged {
		return est, nil
	}
	opt.Collector.Add(telemetry.Restarts, 1)
	pow, err := slemPowerOp(ctx, op, opt)
	if err != nil {
		// A cancelled fallback must surface, not be swallowed as an
		// "unconverged but usable" estimate.
		if cerr := ctx.Err(); cerr != nil {
			return nil, err
		}
		return est, nil
	}
	if !pow.Converged {
		return est, nil
	}
	return pow, nil
}

// Strengths exposes the operator's node strengths π-proportions for
// callers that need the weighted stationary distribution: π_v is
// v1[v]² .
func (op *Operator) Strengths() []float64 {
	out := make([]float64, len(op.v1))
	for i, v := range op.v1 {
		out[i] = v * v
	}
	return out
}
