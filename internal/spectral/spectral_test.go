package spectral

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mixtime/internal/graph"
)

func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return b.Build()
}

func star(leaves int) *graph.Graph {
	b := graph.NewBuilder(leaves)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	return b.Build()
}

// hypercube returns the d-dimensional hypercube Q_d.
func hypercube(d int) *graph.Graph {
	n := 1 << d
	b := graph.NewBuilder(n * d / 2)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			b.AddEdge(graph.NodeID(v), graph.NodeID(v^(1<<bit)))
		}
	}
	return b.Build()
}

// barbell joins two K_k cliques with a single bridge edge — the
// canonical slow-mixing graph.
func barbell(k int) *graph.Graph {
	b := graph.NewBuilder(k * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			b.AddEdge(graph.NodeID(k+i), graph.NodeID(k+j))
		}
	}
	b.AddEdge(0, graph.NodeID(k))
	return b.Build()
}

func connectedRandom(n, extra int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 23))
	b := graph.NewBuilder(0)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(rng.IntN(i)), graph.NodeID(i))
	}
	for k := 0; k < extra; k++ {
		b.AddEdge(graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n)))
	}
	return b.Build()
}

func TestOperatorRejectsDegenerate(t *testing.T) {
	if _, err := NewOperator(&graph.Graph{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	b := graph.NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddNode(2)
	if _, err := NewOperator(b.Build()); err == nil {
		t.Fatal("isolated vertex accepted")
	}
}

func TestOperatorTopEigenvector(t *testing.T) {
	g := connectedRandom(30, 40, 1)
	op, err := NewOperator(g)
	if err != nil {
		t.Fatal(err)
	}
	v1 := op.TopEigenvector()
	sv := make([]float64, g.NumNodes())
	op.Apply(sv, v1, nil)
	for i := range v1 {
		if math.Abs(sv[i]-v1[i]) > 1e-12 {
			t.Fatalf("S·v1 != v1 at %d: %v vs %v", i, sv[i], v1[i])
		}
	}
	var norm float64
	for _, v := range v1 {
		norm += v * v
	}
	if math.Abs(norm-1) > 1e-12 {
		t.Fatalf("‖v1‖² = %v", norm)
	}
}

func TestDenseSLEMCompleteGraph(t *testing.T) {
	// K_n: P has eigenvalues 1 and -1/(n-1); µ = 1/(n-1).
	for _, n := range []int{3, 5, 10} {
		mu, err := DenseSLEM(complete(n))
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / float64(n-1)
		if math.Abs(mu-want) > 1e-10 {
			t.Fatalf("K%d: µ = %v, want %v", n, mu, want)
		}
	}
}

func TestDenseSpectrumOddCycle(t *testing.T) {
	// C_n: eigenvalues cos(2πk/n); for odd n, µ = cos(π/n).
	n := 9
	vals, err := DenseSpectrum(ring(n))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[n-1]-1) > 1e-10 {
		t.Fatalf("top eigenvalue %v", vals[n-1])
	}
	wantMin := math.Cos(math.Pi * float64(n-1) / float64(n))
	if math.Abs(vals[0]-wantMin) > 1e-10 {
		t.Fatalf("min eigenvalue %v, want %v", vals[0], wantMin)
	}
}

func TestSLEMPowerMatchesAnalytic(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		mu   float64
	}{
		{"K10", complete(10), 1.0 / 9},
		{"C9", ring(9), math.Cos(math.Pi / 9)},
		{"C8 (bipartite)", ring(8), 1},
		{"star (bipartite)", star(6), 1},
		{"Q3 (bipartite)", hypercube(3), 1},
	}
	for _, c := range cases {
		est, err := SLEMPower(c.g, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(est.Mu-c.mu) > 1e-7 {
			t.Errorf("%s: µ = %v, want %v (λ2=%v λn=%v, conv=%v)",
				c.name, est.Mu, c.mu, est.Lambda2, est.LambdaN, est.Converged)
		}
	}
}

func TestSLEMLanczosMatchesAnalytic(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		mu   float64
	}{
		{"K10", complete(10), 1.0 / 9},
		{"C9", ring(9), math.Cos(math.Pi / 9)},
		{"C12 (bipartite)", ring(12), 1},
		{"Q4 λ2", hypercube(4), 1}, // bipartite: λn = −1
	}
	for _, c := range cases {
		est, err := SLEMLanczos(c.g, Options{Tol: 1e-10})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Abs(est.Mu-c.mu) > 1e-6 {
			t.Errorf("%s: µ = %v, want %v", c.name, est.Mu, c.mu)
		}
	}
	// Hypercube λ2 = (d-2)/d.
	est, err := SLEMLanczos(hypercube(4), Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Lambda2-0.5) > 1e-6 {
		t.Errorf("Q4: λ2 = %v, want 0.5", est.Lambda2)
	}
	if math.Abs(est.LambdaN+1) > 1e-6 {
		t.Errorf("Q4: λn = %v, want -1", est.LambdaN)
	}
}

func TestBarbellSlowMixing(t *testing.T) {
	est, err := SLEMLanczos(barbell(10), Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if est.Mu < 0.98 {
		t.Fatalf("barbell µ = %v, expected near 1", est.Mu)
	}
	if est.Mu >= 1 {
		t.Fatalf("barbell µ = %v, must be < 1 (connected, non-bipartite)", est.Mu)
	}
	want, err := DenseSLEM(barbell(10))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mu-want) > 1e-6 {
		t.Fatalf("barbell µ = %v, dense oracle %v", est.Mu, want)
	}
}

// Property: on random connected graphs, power iteration, Lanczos and
// the dense Jacobi oracle agree on µ.
func TestQuickSLEMAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		n := 10 + int(seed%30)
		g := connectedRandom(n, n, seed)
		want, err := DenseSLEM(g)
		if err != nil {
			t.Logf("dense: %v", err)
			return false
		}
		pow, err := SLEMPower(g, Options{Tol: 1e-9, Seed: seed + 1})
		if err != nil {
			t.Logf("power: %v", err)
			return false
		}
		lan, err := SLEMLanczos(g, Options{Tol: 1e-9, Seed: seed + 2})
		if err != nil {
			t.Logf("lanczos: %v", err)
			return false
		}
		if math.Abs(pow.Mu-want) > 1e-5 {
			t.Logf("seed %d: power %v vs dense %v", seed, pow.Mu, want)
			return false
		}
		if math.Abs(lan.Mu-want) > 1e-5 {
			t.Logf("seed %d: lanczos %v vs dense %v", seed, lan.Mu, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileAgainstDenseSpectrum(t *testing.T) {
	g := connectedRandom(60, 80, 31)
	want, err := DenseSpectrum(g)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Profile(g, 5, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("%d eigenvalues", len(got))
	}
	// got[i] should match λ_{2+i} from the dense (ascending) spectrum.
	n := len(want)
	for i := 0; i < 5; i++ {
		if math.Abs(got[i]-want[n-2-i]) > 1e-6 {
			t.Fatalf("profile[%d] = %v, dense %v", i, got[i], want[n-2-i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] > got[i-1]+1e-12 {
			t.Fatal("profile not descending")
		}
	}
}

func TestProfileCountsCommunities(t *testing.T) {
	// Four barely-connected cliques: three eigenvalues near 1 (the
	// fourth is the deflated λ₁).
	b := graph.NewBuilder(0)
	for c := 0; c < 4; c++ {
		base := graph.NodeID(c * 10)
		for i := 0; i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				b.AddEdge(base+graph.NodeID(i), base+graph.NodeID(j))
			}
		}
	}
	for c := 0; c < 3; c++ {
		b.AddEdge(graph.NodeID(c*10), graph.NodeID((c+1)*10))
	}
	g := b.Build()
	prof, err := Profile(g, 6, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	near1 := 0
	for _, l := range prof {
		if l > 0.9 {
			near1++
		}
	}
	if near1 != 3 {
		t.Fatalf("%d eigenvalues near 1, want 3 (profile %v)", near1, prof)
	}
}

func TestSLEMDefaultEntryPoint(t *testing.T) {
	est, err := SLEM(complete(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mu-1.0/7) > 1e-6 {
		t.Fatalf("µ = %v", est.Mu)
	}
}

func TestMixingBounds(t *testing.T) {
	// Known point: µ=0.9, ε=0.1 → lower = 0.9/0.2·ln(5) ≈ 7.24.
	lb := MixingLowerBound(0.9, 0.1)
	if math.Abs(lb-0.9/0.2*math.Log(5)) > 1e-12 {
		t.Fatalf("lower bound %v", lb)
	}
	if MixingLowerBound(1.0, 0.1) != math.Inf(1) {
		t.Fatal("µ=1 lower bound not Inf")
	}
	if MixingLowerBound(0.9, 0.5) != 0 {
		t.Fatal("ε≥0.5 lower bound not 0")
	}
	ub := MixingUpperBound(0.9, 0.1, 1000)
	if ub <= lb {
		t.Fatalf("upper %v <= lower %v", ub, lb)
	}
	if MixingUpperBound(1, 0.1, 10) != math.Inf(1) {
		t.Fatal("µ=1 upper bound not Inf")
	}
	// Monotonicity in µ and ε.
	if MixingLowerBound(0.99, 0.1) <= MixingLowerBound(0.9, 0.1) {
		t.Fatal("lower bound not increasing in µ")
	}
	if MixingLowerBound(0.9, 0.01) <= MixingLowerBound(0.9, 0.1) {
		t.Fatal("lower bound not increasing as ε shrinks")
	}
}

func TestEpsilonAtWalkLengthInvertsLowerBound(t *testing.T) {
	mu := 0.95
	for _, eps := range []float64{0.2, 0.05, 1e-3} {
		tm := MixingLowerBound(mu, eps)
		back := EpsilonAtWalkLength(mu, tm)
		if math.Abs(back-eps) > 1e-12 {
			t.Fatalf("round trip ε: %v -> %v", eps, back)
		}
	}
	if EpsilonAtWalkLength(1, 100) != 0.5 {
		t.Fatal("µ=1 epsilon should stay 0.5")
	}
}

func TestFastMixingWalkLength(t *testing.T) {
	if FastMixingWalkLength(1_000_000) != 14 {
		t.Fatalf("log(1e6) = %d", FastMixingWalkLength(1_000_000))
	}
	if FastMixingWalkLength(1) != 1 {
		t.Fatal("degenerate n")
	}
}

func TestCheegerBounds(t *testing.T) {
	lo, hi := CheegerBounds(0.92)
	if math.Abs(lo-0.04) > 1e-12 || math.Abs(hi-0.4) > 1e-12 {
		t.Fatalf("Cheeger(0.92) = %v, %v", lo, hi)
	}
	lo, hi = CheegerBounds(1.5) // clamped
	if lo != 0 || hi != 0 {
		t.Fatalf("clamp failed: %v %v", lo, hi)
	}
}

func TestConductanceOf(t *testing.T) {
	g := barbell(5)
	inS := make([]bool, g.NumNodes())
	for i := 0; i < 5; i++ {
		inS[i] = true
	}
	// Left clique: vol = 5·4 + 1 = 21, one crossing edge.
	phi := ConductanceOf(g, inS)
	if math.Abs(phi-1.0/21) > 1e-12 {
		t.Fatalf("Φ = %v, want 1/21", phi)
	}
	if !math.IsInf(ConductanceOf(g, make([]bool, g.NumNodes())), 1) {
		t.Fatal("empty set conductance not Inf")
	}
}

func TestSweepCutFindsBarbellBridge(t *testing.T) {
	g := barbell(8)
	cut, est, err := SweepConductance(g, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if cut.Size != 8 {
		t.Fatalf("sweep cut size %d, want 8 (one clique)", cut.Size)
	}
	if cut.CrossEdges != 1 {
		t.Fatalf("cross edges %d, want 1", cut.CrossEdges)
	}
	// Cheeger sandwich: (1-λ2)/2 ≤ Φ ≤ √(2(1-λ2)).
	lo, hi := CheegerBounds(est.Lambda2)
	if cut.Conductance < lo-1e-9 || cut.Conductance > hi+1e-9 {
		t.Fatalf("Φ = %v outside Cheeger [%v, %v]", cut.Conductance, lo, hi)
	}
	// The returned conductance must match a recomputation.
	if got := ConductanceOf(g, cut.InS); math.Abs(got-cut.Conductance) > 1e-12 {
		t.Fatalf("reported Φ %v, recomputed %v", cut.Conductance, got)
	}
}

// Property: µ estimates always land in [0, 1] and sweep conductance
// respects the Cheeger upper bound.
func TestQuickSweepCheeger(t *testing.T) {
	f := func(seed uint64) bool {
		n := 12 + int(seed%20)
		g := connectedRandom(n, n/2, seed)
		cut, est, err := SweepConductance(g, Options{Tol: 1e-8, Seed: seed + 3})
		if err != nil {
			return false
		}
		if est.Mu < 0 || est.Mu > 1+1e-9 {
			return false
		}
		_, hi := CheegerBounds(est.Lambda2)
		return cut.Conductance <= hi+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestWalkMatrixRowStochastic(t *testing.T) {
	g := connectedRandom(20, 15, 4)
	p := WalkMatrix(g)
	for v := range p {
		var s float64
		for _, x := range p[v] {
			s += x
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", v, s)
		}
	}
}

func BenchmarkSLEMPower10k(b *testing.B) {
	g := connectedRandom(10_000, 40_000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SLEMPower(g, Options{Tol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSLEMLanczos10k(b *testing.B) {
	g := connectedRandom(10_000, 40_000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SLEMLanczos(g, Options{Tol: 1e-6}); err != nil {
			b.Fatal(err)
		}
	}
}
