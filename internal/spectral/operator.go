// Package spectral estimates the second largest eigenvalue modulus
// (SLEM, µ) of the random-walk transition matrix P = D⁻¹A and derives
// the mixing-time bounds of Sinclair (Theorem 2 of the paper):
//
//	µ/(2(1−µ))·ln(1/2ε)  ≤  T(ε)  ≤  (ln n + ln 1/ε)/(1−µ).
//
// P is not symmetric, but it is similar to S = D^{-1/2} A D^{-1/2},
// which is. All spectral computation happens on S, whose top
// eigenpair is known in closed form (λ₁ = 1, v₁[i] = √(deg(i)/2m)),
// so λ₂ and λ_n are reachable by deflated power iteration or by
// Lanczos — both hand-rolled here on the sparse CSR graph, since the
// Go ecosystem offers no sparse symmetric eigensolver and the dense
// route is hopeless at social-graph scale.
package spectral

import (
	"errors"
	"math"
	"runtime"

	"mixtime/internal/graph"
	"mixtime/internal/linalg"
	"mixtime/internal/telemetry"
)

// minParallelAdj is the adjacency length (2m) below which ApplyParallel
// falls back to the sequential kernel when asked for automatic
// parallelism: under it a matvec costs a few tens of microseconds and
// goroutine fan-out overhead dominates. An explicit workers > 1
// always shards.
const minParallelAdj = 1 << 15

// Operator is the symmetrized walk operator S = D^{-1/2} A D^{-1/2}
// of a graph — or, when weights is set, S = D_w^{-1/2} W D_w^{-1/2}
// for a weighted graph — applied matrix-free against the CSR
// adjacency. Immutable and safe for concurrent use.
type Operator struct {
	g          *graph.Graph
	invSqrtDeg []float64 // 1/√strength(v) (strength = degree unweighted)
	v1         []float64 // unit top eigenvector √(strength/total)
	weights    []float64 // CSR-aligned edge weights; nil = unweighted
	plan       *graph.ShardPlan
	adjLen     int64 // 2m, the CSR entries one matvec scans
	col        *telemetry.Collector
}

// NewOperator builds the operator. The graph must be non-empty with
// no isolated vertices.
func NewOperator(g *graph.Graph) (*Operator, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("spectral: empty graph")
	}
	op := &Operator{
		g:          g,
		invSqrtDeg: make([]float64, n),
		v1:         make([]float64, n),
	}
	twoM := float64(2 * g.NumEdges())
	if twoM == 0 {
		return nil, errors.New("spectral: graph has no edges")
	}
	for v := 0; v < n; v++ {
		d := float64(g.Degree(graph.NodeID(v)))
		if d == 0 {
			return nil, errors.New("spectral: graph has an isolated vertex")
		}
		op.invSqrtDeg[v] = 1 / math.Sqrt(d)
		op.v1[v] = math.Sqrt(d / twoM)
	}
	op.plan = newOperatorPlan(g)
	op.adjLen = 2 * g.NumEdges()
	return op, nil
}

// SetCollector attaches a telemetry collector: every matvec then
// counts into col at call granularity (one atomic add per CSR pass),
// and the operator's shard-plan imbalance is recorded as a gauge.
// Call before the operator is shared across goroutines; a nil col
// (the default) keeps Apply on the uninstrumented fast path. The
// solver entry points do this automatically from
// Options.Collector.
func (op *Operator) SetCollector(col *telemetry.Collector) {
	op.col = col
	if col != nil {
		st := op.plan.Stats(op.g)
		col.ObserveMax(telemetry.ShardImbalanceMilli, int64(st.Imbalance*1000))
		col.ObserveMax(telemetry.MaxGraphAdjacency, op.adjLen)
	}
}

// newOperatorPlan precomputes the edge-balanced shard plan the
// row-sharded ApplyParallel kernel claims ranges from. Oversubscribing
// the core count keeps workers busy when shard costs drift apart.
func newOperatorPlan(g *graph.Graph) *graph.ShardPlan {
	return graph.NewShardPlan(g, 4*runtime.GOMAXPROCS(0))
}

// Dim returns the operator dimension n.
func (op *Operator) Dim() int { return op.g.NumNodes() }

// Graph returns the underlying graph.
func (op *Operator) Graph() *graph.Graph { return op.g }

// TopEigenvector returns the unit eigenvector for λ₁ = 1. The slice
// is shared; callers must not modify it.
func (op *Operator) TopEigenvector() []float64 { return op.v1 }

// Apply computes dst = S·x. dst and x must have length Dim and must
// not alias. scratch, if at least Dim long, avoids an allocation
// (longer pooled buffers are resliced, not rejected).
func (op *Operator) Apply(dst, x, scratch []float64) {
	if op.col != nil {
		op.col.Add(telemetry.Matvecs, 1)
		op.col.Add(telemetry.EdgesScanned, op.adjLen)
	}
	n := op.Dim()
	w := scratch
	if len(w) < n {
		w = make([]float64, n)
	} else {
		w = w[:n]
	}
	for v := 0; v < n; v++ {
		w[v] = x[v] * op.invSqrtDeg[v]
	}
	op.applyRows(dst, w, 0, n)
}

// applyRows computes dst[v] for v in [lo, hi) from the pre-scaled
// w = D^{-1/2}x. Rows are independent and each row sums its neighbors
// in CSR order, so any partition of the vertex range produces bytes
// identical to a full sequential pass — the invariant ApplyParallel
// relies on. On the compact (uint32-offset) form the offset and
// adjacency arrays are hoisted into locals, skipping the per-row
// slice construction; the wide form keeps the Neighbors loops.
func (op *Operator) applyRows(dst, w []float64, lo, hi int) {
	if off := op.g.Offsets32(); off != nil {
		adj := op.g.Adjacency()
		if op.weights != nil {
			wt := op.weights
			for v := lo; v < hi; v++ {
				var s float64
				for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
					s += wt[i] * w[adj[i]]
				}
				dst[v] = s * op.invSqrtDeg[v]
			}
			return
		}
		for v := lo; v < hi; v++ {
			var s float64
			for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
				s += w[adj[i]]
			}
			dst[v] = s * op.invSqrtDeg[v]
		}
		return
	}
	if op.weights != nil {
		idx := op.g.AdjacencyOffset(graph.NodeID(lo))
		for v := lo; v < hi; v++ {
			var s float64
			for _, u := range op.g.Neighbors(graph.NodeID(v)) {
				s += op.weights[idx] * w[u]
				idx++
			}
			dst[v] = s * op.invSqrtDeg[v]
		}
		return
	}
	for v := lo; v < hi; v++ {
		var s float64
		for _, u := range op.g.Neighbors(graph.NodeID(v)) {
			s += w[u]
		}
		dst[v] = s * op.invSqrtDeg[v]
	}
}

// ApplyParallel is Apply with the row loop sharded across the
// operator's edge-balanced plan: workers goroutines claim contiguous
// vertex ranges of near-equal adjacency length, so each pays for the
// edges it scans rather than the vertices it owns. Per-row summation
// order is unchanged, so the output is byte-identical to Apply.
//
// workers <= 0 uses GOMAXPROCS but stays sequential on graphs too
// small to amortize the fan-out; workers == 1 is Apply; an explicit
// workers > 1 always shards.
func (op *Operator) ApplyParallel(dst, x, scratch []float64, workers int) {
	n := op.Dim()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if 2*op.g.NumEdges() < minParallelAdj {
			workers = 1
		}
	}
	if workers <= 1 {
		op.Apply(dst, x, scratch)
		return
	}
	if op.col != nil {
		op.col.Add(telemetry.Matvecs, 1)
		op.col.Add(telemetry.EdgesScanned, op.adjLen)
	}
	w := scratch
	if len(w) < n {
		w = make([]float64, n)
	} else {
		w = w[:n]
	}
	op.plan.Do(workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			w[v] = x[v] * op.invSqrtDeg[v]
		}
	})
	op.plan.Do(workers, func(lo, hi int) {
		op.applyRows(dst, w, lo, hi)
	})
}

// Deflate removes the v₁ component from x in place, confining
// iteration to the orthogonal complement where λ₂ is the top
// eigenvalue.
func (op *Operator) Deflate(x []float64) {
	linalg.OrthogonalizeAgainst(x, op.v1)
}

// WalkMatrix materializes the dense transition matrix P = D⁻¹A.
// Exponential in memory (n²); intended for tests and small graphs.
func WalkMatrix(g *graph.Graph) [][]float64 {
	n := g.NumNodes()
	p := make([][]float64, n)
	for v := 0; v < n; v++ {
		p[v] = make([]float64, n)
		d := float64(g.Degree(graph.NodeID(v)))
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			p[v][u] = 1 / d
		}
	}
	return p
}

// DenseSpectrum computes the full spectrum of P via a dense Jacobi
// eigensolve of the similar symmetric S. O(n³); the validation oracle
// for the sparse estimators. Eigenvalues are returned ascending.
func DenseSpectrum(g *graph.Graph) ([]float64, error) {
	op, err := NewOperator(g)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	s := linalg.NewSymDense(n)
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			s.Set(v, int(u), op.invSqrtDeg[v]*op.invSqrtDeg[u])
		}
	}
	vals, _, err := linalg.EigenSym(s, false)
	return vals, err
}

// DenseSLEM computes µ = max(|λ₂|, |λ_n|) exactly (up to Jacobi
// precision) from the dense spectrum. For tests and small graphs.
func DenseSLEM(g *graph.Graph) (float64, error) {
	vals, err := DenseSpectrum(g)
	if err != nil {
		return 0, err
	}
	n := len(vals)
	if n < 2 {
		return 0, errors.New("spectral: graph too small for SLEM")
	}
	return math.Max(math.Abs(vals[n-2]), math.Abs(vals[0])), nil
}
