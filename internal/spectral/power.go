package spectral

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"mixtime/internal/graph"
	"mixtime/internal/linalg"
	"mixtime/internal/telemetry"
)

// Estimate is the result of a SLEM computation.
type Estimate struct {
	// Mu is the second largest eigenvalue modulus max(|λ₂|, |λ_n|).
	Mu float64
	// Lambda2 and LambdaN are the second largest and the smallest
	// eigenvalues of P.
	Lambda2, LambdaN float64
	// Iterations is the number of operator applications performed.
	Iterations int
	// Iters2 and ItersN split Iterations between the λ₂ and λ_n power
	// phases — the per-phase costs the warm-start comparison in E1
	// reports. Lanczos estimates both extremes from one Krylov space,
	// so there Iters2 carries the step count and ItersN is zero.
	Iters2, ItersN int
	// Converged reports whether the requested tolerance was met.
	Converged bool
	// WarmStarted reports whether the λ₂ phase was seeded from
	// Options.Start rather than a random unit vector.
	WarmStarted bool
	// Vector2 is the (unit, S-basis) eigenvector estimate for λ₂ when
	// the method produces one; it drives the spectral sweep cut.
	Vector2 []float64
}

// Options configures a SLEM estimation.
type Options struct {
	// Tol is the absolute eigenvalue tolerance (default 1e-8).
	Tol float64
	// MaxIter caps operator applications per eigenvalue
	// (default 50_000 for power iteration, 500 for Lanczos steps).
	MaxIter int
	// Seed seeds the random starting vector (default 1).
	Seed uint64
	// Workers shards every matvec across the operator's edge-balanced
	// plan: 0 uses GOMAXPROCS on graphs large enough to amortize the
	// fan-out, 1 forces the sequential kernel, > 1 always shards.
	// Sharding preserves per-row summation order, so estimates are
	// byte-identical for any value.
	Workers int
	// Collector, if non-nil, receives the solver's telemetry: matvecs,
	// edges scanned, power/Lanczos iteration counts and restarts.
	// Counting happens at call granularity, so estimates are
	// byte-identical with or without a collector.
	Collector *telemetry.Collector
	// Start, when its length equals the operator dimension, warm-starts
	// the λ₂ estimation from this vector instead of the seeded random
	// unit vector: power iteration begins its λ₂ phase there, and
	// Lanczos uses it as the first Krylov vector. The intended seed is
	// the previous epoch's Estimate.Vector2 on an evolving graph, where
	// the eigenvector drifts slowly and most of the iteration budget
	// would be spent rediscovering it. The vector is copied, deflated
	// against v₁ and normalized; a wrong-length or numerically
	// degenerate Start silently falls back to the cold random start, so
	// results are correct (if slower) whenever the warm hint is stale.
	// The λ_n phase always cold-starts — the λ₂ vector carries no
	// information about the other end of the spectrum.
	Start []float64
}

func (o Options) withDefaults(defaultIter int) Options {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = defaultIter
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// randomUnit fills x with Gaussian noise and normalizes.
func randomUnit(x []float64, rng *rand.Rand) {
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	linalg.Normalize(x)
}

// powerExtreme runs deflated power iteration on the shifted operator
// (S + shift·I)/scale, whose spectrum is non-negative so the iterate
// cannot oscillate in sign. It returns the top eigenvalue of the
// shifted operator restricted to v₁⊥, the corresponding eigenvector,
// the iteration count, and whether the residual tolerance was met.
//
// With shift=+1, scale=2 the top restricted eigenvalue is (λ₂+1)/2;
// with shift=-1, scale=-2 (i.e. (I−S)/2) it is (1−λ_n)/2.
// The iteration checks ctx once per operator application and returns
// the wrapped ctx.Err() when cancelled.
func powerExtreme(ctx context.Context, op *Operator, shift, scale float64, start []float64, opt Options) (val float64, vec []float64, iters int, ok bool, err error) {
	n := op.Dim()
	rng := rand.New(rand.NewPCG(opt.Seed, 0x51e3))
	x := make([]float64, n)
	sx := make([]float64, n)
	scratch := make([]float64, n)
	if len(start) == n {
		copy(x, start)
	} else {
		randomUnit(x, rng)
	}
	op.Deflate(x)
	if linalg.Normalize(x) < 1e-12 {
		// A degenerate warm start (e.g. a stale vector collapsing onto
		// v₁, whose deflation residue is rounding noise still parallel
		// to v₁) must not wedge the solve: fall back to the cold start.
		// A deflated random unit vector has norm ≈ 1, so the cold path
		// never takes this branch and stays byte-identical.
		randomUnit(x, rng)
		op.Deflate(x)
		linalg.Normalize(x)
	}

	// One add per solve, whatever exit path the iteration takes.
	defer func() { opt.Collector.Add(telemetry.PowerIterations, int64(iters)) }()

	var rho float64
	for iters = 1; iters <= opt.MaxIter; iters++ {
		if cerr := ctx.Err(); cerr != nil {
			return 0, nil, iters, false, fmt.Errorf("spectral: power iteration cancelled at matvec %d: %w", iters, cerr)
		}
		op.ApplyParallel(sx, x, scratch, opt.Workers)
		// y = (S + shift I)/scale · x
		for i := range sx {
			sx[i] = (sx[i] + shift*x[i]) / scale
		}
		op.Deflate(sx)
		rho = linalg.Dot(x, sx) // Rayleigh quotient of shifted op
		// residual ‖Mx − ρx‖
		var res float64
		for i := range sx {
			d := sx[i] - rho*x[i]
			res += d * d
		}
		res = math.Sqrt(res)
		norm := linalg.Normalize(sx)
		if norm == 0 {
			// x was (numerically) entirely in the null space; the
			// restricted operator is zero in this direction.
			return rho, x, iters, true, nil
		}
		x, sx = sx, x
		if res <= opt.Tol/2 {
			return rho, x, iters, true, nil
		}
	}
	return rho, x, iters, false, nil
}

// SLEMPower estimates µ by two deflated power iterations on shifted
// operators: (S+I)/2 isolates λ₂ and (I−S)/2 isolates λ_n. Shifting
// makes the restricted spectrum non-negative, so convergence is
// monotone even when λ₂ ≈ −λ_n (near-bipartite graphs), at the cost
// of a convergence rate governed by the shifted gap. This is the
// simple, O(n)-memory method; prefer SLEMLanczos when the spectral
// gap is small (slow-mixing graphs) and memory allows.
func SLEMPower(g *graph.Graph, opt Options) (*Estimate, error) {
	return SLEMPowerContext(context.Background(), g, opt)
}

// SLEMPowerContext is SLEMPower with cancellation.
func SLEMPowerContext(ctx context.Context, g *graph.Graph, opt Options) (*Estimate, error) {
	op, err := NewOperator(g)
	if err != nil {
		return nil, err
	}
	return slemPowerOp(ctx, op, opt)
}

func slemPowerOp(ctx context.Context, op *Operator, opt Options) (*Estimate, error) {
	opt = opt.withDefaults(50_000)
	if opt.Collector != nil && op.col == nil {
		op.SetCollector(opt.Collector)
	}
	if op.Dim() < 2 {
		return nil, errors.New("spectral: graph too small for SLEM")
	}
	// λ₂ from (S+I)/2; tolerance halves because λ₂ = 2ρ − 1.
	hiOpt := opt
	hiOpt.Tol = opt.Tol / 2
	warm := len(opt.Start) == op.Dim()
	if warm {
		opt.Collector.Add(telemetry.EvolveWarmStarts, 1)
	}
	rhoHi, vec2, it1, ok1, err := powerExtreme(ctx, op, +1, 2, opt.Start, hiOpt)
	if err != nil {
		return nil, err
	}
	lambda2 := 2*rhoHi - 1

	// λ_n from (I−S)/2: top eigenvalue there is (1−λ_n)/2. v₁ has
	// eigenvalue 0 in this operator, so deflation is belt and braces.
	loOpt := opt
	loOpt.Tol = opt.Tol / 2
	loOpt.Seed = opt.Seed + 1
	rhoLo, _, it2, ok2, err := powerExtreme(ctx, op, -1, -2, nil, loOpt)
	if err != nil {
		return nil, err
	}
	lambdaN := 1 - 2*rhoLo

	return &Estimate{
		Mu:          math.Max(math.Abs(lambda2), math.Abs(lambdaN)),
		Lambda2:     lambda2,
		LambdaN:     lambdaN,
		Iterations:  it1 + it2,
		Iters2:      it1,
		ItersN:      it2,
		Converged:   ok1 && ok2,
		WarmStarted: warm,
		Vector2:     vec2,
	}, nil
}
