package spectral

import "math"

// MixingLowerBound returns the Sinclair lower bound on the mixing
// time, T(ε) ≥ µ/(2(1−µ)) · ln(1/2ε) — the bound the paper plots in
// Figures 1, 2, 5, 6 and 7. The result is in walk steps (not rounded).
// µ must lie in [0, 1); µ ≥ 1 yields +Inf (the chain never mixes).
func MixingLowerBound(mu, eps float64) float64 {
	if mu >= 1 {
		return math.Inf(1)
	}
	if mu <= 0 || eps >= 0.5 {
		return 0
	}
	return mu / (2 * (1 - mu)) * math.Log(1/(2*eps))
}

// MixingUpperBound returns the Sinclair upper bound
// T(ε) ≤ (ln n + ln 1/ε) / (1−µ).
func MixingUpperBound(mu, eps float64, n int) float64 {
	if mu >= 1 {
		return math.Inf(1)
	}
	return (math.Log(float64(n)) + math.Log(1/eps)) / (1 - mu)
}

// EpsilonAtWalkLength inverts the lower bound: the variation distance
// ε that the bound associates with a walk of length t,
// ε(t) = ½·exp(−2t(1−µ)/µ). This is the "Lower-bound" curve the
// paper draws against the sampled per-source distances in Figures 5
// and 7 (ε on the y axis, walk length on the x axis).
func EpsilonAtWalkLength(mu float64, t float64) float64 {
	if mu <= 0 {
		return 0
	}
	if mu >= 1 {
		return 0.5
	}
	return 0.5 * math.Exp(-2*t*(1-mu)/mu)
}

// FastMixingWalkLength returns O(log n) — the walk length the Sybil
// defense literature assumes suffices, with the conventional constant
// 1: ⌈ln n⌉. The paper's headline comparison is measured T(ε) versus
// this value.
func FastMixingWalkLength(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(n))))
}

// CheegerBounds returns the two-sided Cheeger inequality on the graph
// conductance Φ in terms of λ₂:
//
//	(1−λ₂)/2  ≤  Φ  ≤  √(2(1−λ₂)).
//
// Small spectral gap (slow mixing) certifies small conductance, i.e.
// pronounced community structure — the §5 link to Viswanath et al.'s
// community-detection view of Sybil defenses.
func CheegerBounds(lambda2 float64) (lo, hi float64) {
	gap := 1 - lambda2
	if gap < 0 {
		gap = 0
	}
	return gap / 2, math.Sqrt(2 * gap)
}
