// Kernel benchmarks for the eigensolvers and the sharded matvec,
// isolated in the spectral test binary so the bench.sh snapshot's
// hot-loop layout depends only on this package's dependencies (see
// the note in internal/markov/kernel_bench_test.go).
package spectral_test

import (
	"fmt"
	"testing"

	"mixtime/internal/datasets"
	"mixtime/internal/graph"
	"mixtime/internal/spectral"
)

// kernelGraph is the DESIGN.md §7 ablation workload (physics-2 at
// scale 0.1).
func kernelGraph() *graph.Graph {
	d, err := datasets.ByName("physics-2")
	if err != nil {
		panic(err)
	}
	return d.Generate(0.1, 1)
}

// largeKernelGraph is the facebook-A substitute at a scale whose
// adjacency (~2M entries) is well past the parallel matvec gate —
// the regime the sharded kernels exist for.
func largeKernelGraph() *graph.Graph {
	d, err := datasets.ByName("facebook-A")
	if err != nil {
		panic(err)
	}
	return d.Generate(0.05, 1)
}

func BenchmarkSLEMPower(b *testing.B) {
	g := kernelGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := spectral.SLEMPower(g, spectral.Options{Tol: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(est.Iterations), "matvecs")
		}
	}
}

func BenchmarkSLEMLanczos(b *testing.B) {
	g := kernelGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := spectral.SLEMLanczos(g, spectral.Options{Tol: 1e-6})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(est.Iterations), "matvecs")
		}
	}
}

// BenchmarkApplyParallel measures the row-sharded symmetric matvec on
// a graph large enough to clear the parallel gate.
func BenchmarkApplyParallel(b *testing.B) {
	g := largeKernelGraph()
	op, err := spectral.NewOperator(g)
	if err != nil {
		b.Fatal(err)
	}
	n := op.Dim()
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	dst := make([]float64, n)
	scratch := make([]float64, n)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				op.ApplyParallel(dst, x, scratch, workers)
			}
		})
	}
}
