package spectral

import (
	"math"
	"testing"

	"mixtime/internal/graph"
)

// csrWeights builds a CSR-aligned uniform weight slice for g.
func csrWeights(g *graph.Graph, w float64) []float64 {
	var slots int
	for v := 0; v < g.NumNodes(); v++ {
		slots += g.Degree(graph.NodeID(v))
	}
	out := make([]float64, slots)
	for i := range out {
		out[i] = w
	}
	return out
}

func TestWeightedOperatorValidation(t *testing.T) {
	g := complete(5)
	if _, err := NewWeightedOperator(&graph.Graph{}, nil); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := NewWeightedOperator(g, make([]float64, 3)); err == nil {
		t.Fatal("misaligned weights accepted")
	}
	bad := csrWeights(g, 1)
	bad[0] = -2
	if _, err := NewWeightedOperator(g, bad); err == nil {
		t.Fatal("negative weight accepted")
	}
	bad[0] = math.NaN()
	if _, err := NewWeightedOperator(g, bad); err == nil {
		t.Fatal("NaN weight accepted")
	}
}

func TestUniformWeightsMatchUnweighted(t *testing.T) {
	// Constant weights rescale away: the walk operator is identical,
	// so SLEM estimates must agree with the unweighted path.
	g := connectedRandom(40, 60, 41)
	op, err := NewWeightedOperator(g, csrWeights(g, 2.5))
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := SLEMOf(op, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SLEM(g, Options{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(weighted.Mu-plain.Mu) > 1e-7 {
		t.Fatalf("weighted µ=%v vs plain µ=%v", weighted.Mu, plain.Mu)
	}
	// Both ops expose the same stationary distribution (deg/2m).
	s := op.Strengths()
	twoM := float64(2 * g.NumEdges())
	for v := 0; v < g.NumNodes(); v++ {
		want := float64(g.Degree(graph.NodeID(v))) / twoM
		if math.Abs(s[v]-want) > 1e-12 {
			t.Fatalf("strength π[%d]=%v want %v", v, s[v], want)
		}
	}
	if op.Graph() != g {
		t.Fatal("Graph accessor")
	}
}

func TestWeightedPowerAndLanczosAgree(t *testing.T) {
	g := connectedRandom(35, 45, 43)
	// Non-uniform symmetric weights: slot weight = 1/(1+u+v).
	w := make([]float64, 0)
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			w = append(w, 1/float64(1+int(u)+v))
		}
	}
	op, err := NewWeightedOperator(g, w)
	if err != nil {
		t.Fatal(err)
	}
	pow, err := SLEMPowerOp(op, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	op2, _ := NewWeightedOperator(g, w)
	lan, err := SLEMLanczosOp(op2, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pow.Mu-lan.Mu) > 1e-6 {
		t.Fatalf("power %v vs lanczos %v", pow.Mu, lan.Mu)
	}
	// Top eigenvector of the weighted S is invariant.
	v1 := op.TopEigenvector()
	sv := make([]float64, g.NumNodes())
	op.Apply(sv, v1, nil)
	for i := range v1 {
		if math.Abs(sv[i]-v1[i]) > 1e-10 {
			t.Fatalf("S·v1 ≠ v1 at %d", i)
		}
	}
}

func TestSLEMFallbackPath(t *testing.T) {
	// Force Lanczos to fail (MaxIter 1) so SLEM exercises the power
	// fallback.
	g := complete(12)
	est, err := SLEM(g, Options{Tol: 1e-10, MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mu-1.0/11) > 1e-6 {
		t.Fatalf("fallback µ = %v, want 1/11", est.Mu)
	}
}
