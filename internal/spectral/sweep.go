package spectral

import (
	"context"
	"math"
	"sort"

	"mixtime/internal/graph"
)

// Cut describes a vertex bipartition (S, V∖S) by the membership of S
// and its conductance Φ(S) = cut(S) / min(vol(S), vol(V∖S)).
type Cut struct {
	// InS marks the members of the smaller-volume side.
	InS []bool
	// Size is the number of vertices in S.
	Size int
	// CrossEdges is the number of edges leaving S.
	CrossEdges int64
	// Conductance is Φ(S).
	Conductance float64
}

// ConductanceOf computes the conductance of the vertex set marked by
// inS. Returns +Inf for the empty or full set.
func ConductanceOf(g *graph.Graph, inS []bool) float64 {
	var volS, volAll, cross int64
	for v := 0; v < g.NumNodes(); v++ {
		d := int64(g.Degree(graph.NodeID(v)))
		volAll += d
		if !inS[v] {
			continue
		}
		volS += d
		for _, u := range g.Neighbors(graph.NodeID(v)) {
			if !inS[u] {
				cross++
			}
		}
	}
	minVol := volS
	if volAll-volS < minVol {
		minVol = volAll - volS
	}
	if minVol == 0 {
		return math.Inf(1)
	}
	return float64(cross) / float64(minVol)
}

// SweepCut performs the classical spectral sweep: order vertices by
// score[v]/√deg(v) (turning the S-basis eigenvector estimate back
// into the walk basis), then scan prefixes S_k and return the prefix
// with minimum conductance. With the λ₂ eigenvector as score, Cheeger
// guarantees Φ(S) ≤ √(2(1−λ₂)); the cut it finds exposes the
// community structure responsible for slow mixing.
func SweepCut(g *graph.Graph, score []float64) *Cut {
	n := g.NumNodes()
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	key := make([]float64, n)
	for v := 0; v < n; v++ {
		key[v] = score[v] / math.Sqrt(float64(g.Degree(graph.NodeID(v))))
	}
	sort.Slice(order, func(i, j int) bool { return key[order[i]] > key[order[j]] })

	inS := make([]bool, n)
	volAll := 2 * g.NumEdges()
	var volS, cross int64
	best := &Cut{Conductance: math.Inf(1)}
	bestK := -1
	for k := 0; k < n-1; k++ {
		v := order[k]
		d := int64(g.Degree(v))
		// Adding v flips each edge to S from crossing to internal and
		// each edge to V∖S to crossing.
		toS := int64(0)
		for _, u := range g.Neighbors(v) {
			if inS[u] {
				toS++
			}
		}
		cross += d - 2*toS
		volS += d
		inS[v] = true

		minVol := volS
		if volAll-volS < minVol {
			minVol = volAll - volS
		}
		if minVol == 0 {
			continue
		}
		phi := float64(cross) / float64(minVol)
		if phi < best.Conductance {
			best.Conductance = phi
			best.CrossEdges = cross
			best.Size = k + 1
			bestK = k
		}
	}
	best.InS = make([]bool, n)
	for k := 0; k <= bestK; k++ {
		best.InS[order[k]] = true
	}
	return best
}

// SweepConductance is a convenience wrapper: estimate the λ₂
// eigenvector by power iteration and sweep it. It returns the cut and
// the SLEM estimate used.
func SweepConductance(g *graph.Graph, opt Options) (*Cut, *Estimate, error) {
	return SweepConductanceContext(context.Background(), g, opt)
}

// SweepConductanceContext is SweepConductance with cancellation.
func SweepConductanceContext(ctx context.Context, g *graph.Graph, opt Options) (*Cut, *Estimate, error) {
	est, err := SLEMPowerContext(ctx, g, opt)
	if err != nil {
		return nil, nil, err
	}
	return SweepCut(g, est.Vector2), est, nil
}
