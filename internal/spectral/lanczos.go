package spectral

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"mixtime/internal/graph"
	"mixtime/internal/linalg"
	"mixtime/internal/telemetry"
)

// SLEMLanczos estimates µ with the symmetric Lanczos process on S,
// started orthogonal to the known top eigenvector v₁ and kept that
// way by full reorthogonalization (against v₁ and the whole Krylov
// basis — numerically mandatory, or ghost copies of λ₁ reappear).
// After k steps the extremal eigenvalues of the k×k tridiagonal
// matrix — obtained by Sturm bisection — approximate λ₂ and λ_n from
// the inside, converging far faster than power iteration when the
// spectral gap is small, which is exactly the slow-mixing regime this
// project measures.
//
// Memory is O(k·n) for the stored basis; Options.MaxIter caps k
// (default 500). The estimate converges when both extremes move less
// than Tol between consecutive steps, checked over a 3-step window.
func SLEMLanczos(g *graph.Graph, opt Options) (*Estimate, error) {
	return SLEMLanczosContext(context.Background(), g, opt)
}

// SLEMLanczosContext is SLEMLanczos with cancellation: the Lanczos
// loop checks ctx once per step (each step is an O(m) matvec plus
// reorthogonalization) and returns the wrapped ctx.Err().
func SLEMLanczosContext(ctx context.Context, g *graph.Graph, opt Options) (*Estimate, error) {
	op, err := NewOperator(g)
	if err != nil {
		return nil, err
	}
	return slemLanczosOp(ctx, op, opt)
}

func slemLanczosOp(ctx context.Context, op *Operator, opt Options) (*Estimate, error) {
	opt = opt.withDefaults(500)
	if opt.Collector != nil && op.col == nil {
		op.SetCollector(opt.Collector)
	}
	n := op.Dim()
	if n < 2 {
		return nil, errors.New("spectral: graph too small for SLEM")
	}
	maxK := opt.MaxIter
	if maxK > n-1 {
		maxK = n - 1 // Krylov space of v₁⊥ has dimension n-1
	}
	// The stored basis costs 8·k·n bytes; cap it at ~2 GiB so
	// million-node graphs don't exhaust memory (SLEM falls back to
	// the O(n)-memory power iteration when the capped run fails to
	// converge).
	if budget := int(2 << 30 / (8 * int64(n))); maxK > budget && budget >= 32 {
		maxK = budget
	}

	rng := rand.New(rand.NewPCG(opt.Seed, 0x1a9c))
	basis := make([][]float64, 0, 16)
	alpha := make([]float64, 0, 16)
	beta := make([]float64, 0, 16) // beta[i] couples basis[i], basis[i+1]

	q := make([]float64, n)
	warm := len(opt.Start) == n
	if warm {
		copy(q, opt.Start)
		opt.Collector.Add(telemetry.EvolveWarmStarts, 1)
	} else {
		randomUnit(q, rng)
	}
	op.Deflate(q)
	if linalg.Normalize(q) < 1e-12 {
		// A degenerate warm start (deflation residue parallel to v₁)
		// falls back to the cold random start; only a degenerate random
		// vector is a hard error. A deflated random unit vector has
		// norm ≈ 1, so the cold path never takes this branch.
		if !warm {
			return nil, errors.New("spectral: degenerate start vector")
		}
		warm = false
		randomUnit(q, rng)
		op.Deflate(q)
		if linalg.Normalize(q) == 0 {
			return nil, errors.New("spectral: degenerate start vector")
		}
	}
	basis = append(basis, append([]float64(nil), q...))

	w := make([]float64, n)
	scratch := make([]float64, n)
	var prevLo, prevHi float64
	stable := 0
	iters := 0
	converged := false
	// One add per solve, whatever exit path the loop takes.
	defer func() { opt.Collector.Add(telemetry.LanczosIterations, int64(iters)) }()

	for k := 0; k < maxK; k++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("spectral: Lanczos cancelled at step %d: %w", k, err)
		}
		iters++
		op.ApplyParallel(w, basis[k], scratch, opt.Workers)
		a := linalg.Dot(basis[k], w)
		alpha = append(alpha, a)

		// w ← w − a·q_k − β_{k-1}·q_{k-1}, then full reorthogonalization.
		linalg.Axpy(-a, basis[k], w)
		if k > 0 {
			linalg.Axpy(-beta[k-1], basis[k-1], w)
		}
		op.Deflate(w)
		for _, b := range basis {
			linalg.OrthogonalizeAgainst(w, b)
		}

		// Convergence check on the current tridiagonal extremes.
		tri := &linalg.Tridiag{Diag: alpha, Off: beta}
		lo, hi := tri.Extremes(opt.Tol / 10)
		if k > 0 && math.Abs(lo-prevLo) < opt.Tol && math.Abs(hi-prevHi) < opt.Tol {
			stable++
			if stable >= 3 {
				converged = true
				break
			}
		} else {
			stable = 0
		}
		prevLo, prevHi = lo, hi

		b := linalg.Norm2(w)
		if b < 1e-14 {
			// Krylov space exhausted: the tridiagonal spectrum is exact.
			converged = true
			break
		}
		beta = append(beta, b)
		linalg.Scale(w, 1/b)
		basis = append(basis, append([]float64(nil), w...))
	}

	tri := &linalg.Tridiag{Diag: alpha, Off: beta[:len(alpha)-1]}
	lambdaN, lambda2 := tri.Extremes(opt.Tol / 10)
	// Ritz vector for λ₂: the tridiagonal eigenvector for the top Ritz
	// value, combined through the stored Krylov basis. This is what the
	// evolving-graph tracker feeds back as the next epoch's Start.
	var vec2 []float64
	if y := tri.EigenvectorFor(lambda2); len(y) <= len(basis) {
		vec2 = make([]float64, n)
		for i, c := range y {
			linalg.Axpy(c, basis[i], vec2)
		}
		if linalg.Normalize(vec2) == 0 {
			vec2 = nil
		}
	}
	return &Estimate{
		Mu:          math.Max(math.Abs(lambda2), math.Abs(lambdaN)),
		Lambda2:     lambda2,
		LambdaN:     lambdaN,
		Iterations:  iters,
		Iters2:      iters,
		Converged:   converged,
		WarmStarted: warm,
		Vector2:     vec2,
	}, nil
}

// Profile returns the k largest eigenvalues of P below λ₁ = 1
// (λ₂ ≥ λ₃ ≥ … ≥ λ_{k+1}), estimated from the Lanczos tridiagonal
// with the deflated start. The count of eigenvalues near 1 is the
// spectral community count: a graph with c strong communities has
// c−1 eigenvalues close to 1, which is why slow mixing and community
// structure are the same observation (§3.2/§5 of the paper).
func Profile(g *graph.Graph, k int, opt Options) ([]float64, error) {
	op, err := NewOperator(g)
	if err != nil {
		return nil, err
	}
	opt = opt.withDefaults(500)
	if k < 1 {
		k = 1
	}
	// Interior Ritz values need a larger Krylov space than the
	// extremes; give the solver headroom.
	if opt.MaxIter < 6*k {
		opt.MaxIter = 6 * k
	}
	tri, err := lanczosTridiagonal(op, opt)
	if err != nil {
		return nil, err
	}
	dim := tri.Dim()
	if k > dim {
		k = dim
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		out[i] = tri.Eigenvalue(dim-1-i, opt.Tol/10)
	}
	return out, nil
}

// lanczosTridiagonal runs the deflated Lanczos process to completion
// (MaxIter steps or Krylov exhaustion) and returns the tridiagonal.
func lanczosTridiagonal(op *Operator, opt Options) (*linalg.Tridiag, error) {
	if opt.Collector != nil && op.col == nil {
		op.SetCollector(opt.Collector)
	}
	n := op.Dim()
	if n < 2 {
		return nil, errors.New("spectral: graph too small")
	}
	maxK := opt.MaxIter
	if maxK > n-1 {
		maxK = n - 1
	}
	// Same ~2 GiB basis budget as the SLEM path.
	if budget := int(2 << 30 / (8 * int64(n))); maxK > budget && budget >= 32 {
		maxK = budget
	}
	rng := rand.New(rand.NewPCG(opt.Seed, 0x1a9d))
	basis := make([][]float64, 0, maxK)
	alpha := make([]float64, 0, maxK)
	beta := make([]float64, 0, maxK)
	q := make([]float64, n)
	randomUnit(q, rng)
	op.Deflate(q)
	if linalg.Normalize(q) == 0 {
		return nil, errors.New("spectral: degenerate start vector")
	}
	basis = append(basis, append([]float64(nil), q...))
	w := make([]float64, n)
	scratch := make([]float64, n)
	for k := 0; k < maxK; k++ {
		op.ApplyParallel(w, basis[k], scratch, opt.Workers)
		a := linalg.Dot(basis[k], w)
		alpha = append(alpha, a)
		linalg.Axpy(-a, basis[k], w)
		if k > 0 {
			linalg.Axpy(-beta[k-1], basis[k-1], w)
		}
		op.Deflate(w)
		for _, b := range basis {
			linalg.OrthogonalizeAgainst(w, b)
		}
		bnorm := linalg.Norm2(w)
		if bnorm < 1e-14 {
			break
		}
		if k+1 < maxK {
			beta = append(beta, bnorm)
			linalg.Scale(w, 1/bnorm)
			basis = append(basis, append([]float64(nil), w...))
		}
	}
	return &linalg.Tridiag{Diag: alpha, Off: beta[:len(alpha)-1]}, nil
}

// SLEM estimates µ with the default method (Lanczos), falling back to
// power iteration if Lanczos fails to converge within its iteration
// budget. This is the entry point the experiment drivers use.
func SLEM(g *graph.Graph, opt Options) (*Estimate, error) {
	return SLEMContext(context.Background(), g, opt)
}

// SLEMContext is SLEM with cancellation: both the Lanczos attempt and
// the power fallback abort at their next iteration once ctx is done,
// and the returned error wraps ctx.Err().
func SLEMContext(ctx context.Context, g *graph.Graph, opt Options) (*Estimate, error) {
	est, err := SLEMLanczosContext(ctx, g, opt)
	if err != nil {
		return nil, err
	}
	if est.Converged {
		return est, nil
	}
	opt.Collector.Add(telemetry.Restarts, 1)
	pow, err := SLEMPowerContext(ctx, g, opt)
	if err != nil {
		// A cancelled fallback must surface rather than be swallowed
		// as an "unconverged but usable" estimate.
		if cerr := ctx.Err(); cerr != nil {
			return nil, err
		}
		return est, nil // keep the (unconverged) Lanczos estimate
	}
	if !pow.Converged {
		return est, nil
	}
	return pow, nil
}
