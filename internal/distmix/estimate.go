package distmix

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"mixtime/internal/api"
	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/telemetry"
)

// Options configures one distributed estimate. Zero or negative
// numeric fields take the canonical api defaults; Seed is never
// rewritten (zero is a valid seed, matching core.Options).
type Options struct {
	// Shards is the number of simulated workers (default
	// api.DefaultDistShards; capped at the vertex count by the plan).
	// The estimate is identical for any value — only the communication
	// accounting changes — which is the invariant the fingerprint
	// exclusion of dist_shards relies on.
	Shards int
	// WalksPerNode scales the walker population: every source launches
	// WalksPerNode × n walkers (default api.DefaultDistWalks). More
	// walks shrink the sampling noise floor — and cost proportionally
	// more messages.
	WalksPerNode int
	// MaxRounds caps the supersteps per source (default
	// api.DefaultDistRounds). A source that has not mixed by then is
	// reported incomplete with its round cap as a lower bound, matching
	// markov.MixingTime's incomplete semantics.
	MaxRounds int
	// Eps is the variation-distance threshold τ(ε) is measured at
	// (default api.DefaultEps).
	Eps float64
	// Sources is how many start vertices to sample (default
	// api.DefaultSources). Ignored when SourceList is set. Sampling
	// uses the exact derivation of core.MeasureContext — PCG(Seed,
	// 0xc0fe) into markov.SampleSources — so a distmix query and a cdf
	// query with equal seeds measure the same sources.
	Sources int
	// SourceList, when non-nil, names the start vertices explicitly
	// (the D1 driver passes the same list to the exact reference).
	SourceList []graph.NodeID
	// Seed drives the hashed walker steps and source sampling.
	Seed uint64
	// Lazy forces the lazy walk. Bipartite graphs are measured lazily
	// regardless, mirroring core.MeasureContext's chain convention so
	// estimates stay comparable with the exact answers.
	Lazy bool
	// Collector, if non-nil, receives the distmix_* communication
	// counters. Estimates are identical with or without it.
	Collector *telemetry.Collector
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = api.DefaultDistShards
	}
	if o.WalksPerNode <= 0 {
		o.WalksPerNode = api.DefaultDistWalks
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = api.DefaultDistRounds
	}
	if o.Eps <= 0 {
		o.Eps = api.DefaultEps
	}
	if o.Sources <= 0 {
		o.Sources = api.DefaultSources
	}
	return o
}

// SourceEstimate is one source's walk-distribution measurement.
type SourceEstimate struct {
	Source graph.NodeID `json:"source"`
	// Tau is the first walk length whose debiased TV estimate drops
	// below ε. When Mixed is false the source never crossed within
	// MaxRounds and Tau is the round cap (a lower bound).
	Tau   int  `json:"tau"`
	Mixed bool `json:"mixed"`
	// LocalTau is the local mixing time ζ(ε) in the Molla–Pandurangan
	// sense: the first walk length at which vertices holding ≥ 1−ε of
	// the stationary mass are individually within their pointwise
	// tolerance of π. The certificate is pointwise (stricter per
	// vertex than the aggregate TV test), so ζ tracks τ closely but
	// can land on either side of it.
	LocalTau   int  `json:"local_tau"`
	LocalMixed bool `json:"local_mixed"`
	// Rounds is the supersteps this source's engine run executed.
	Rounds int `json:"rounds"`
}

// Result is one distributed mixing-time estimate.
type Result struct {
	Eps          float64 `json:"eps"`
	WalksPerNode int     `json:"walks_per_node"`
	// Walks is the walker population per source (WalksPerNode × n).
	Walks  int `json:"walks"`
	Shards int `json:"shards"`
	// Lazy reports the measured chain (true on bipartite graphs).
	Lazy    bool             `json:"lazy"`
	Sources []SourceEstimate `json:"sources"`
	// Tau applies Definition 1 to the per-source estimates: the
	// maximum first ε-crossing over sources. Complete is false when
	// some source never crossed (Tau is then a lower bound).
	Tau      int  `json:"tau"`
	Complete bool `json:"complete"`
	// LocalTau is the worst-case local mixing time over sources.
	LocalTau      int  `json:"local_tau"`
	LocalComplete bool `json:"local_complete"`
	// NoiseFloor is the expected sampling contribution to the raw TV
	// estimate (½·Σ_v MAD of Bin(K, π_v)/K) subtracted before the ε
	// comparison — the debiasing that makes finite-walker estimates
	// track the exact propagated distance.
	NoiseFloor float64 `json:"noise_floor"`
	// Stats totals the communication accounting over every source's
	// engine run. It depends on the shard count even though the
	// estimate does not.
	Stats Stats `json:"stats"`
}

// walker is the message type: one random-walk token. The accounted
// wire size is 8 bytes (walker id + current position).
type walker struct {
	id  uint32
	pos graph.NodeID
}

const walkerBytes = 8

// partial is one shard's per-round aggregate: exact integer sums, so
// merging across any shard grouping is associative and lossless —
// the root of the shard-count invariance.
type partial struct {
	// absDev is Σ_v |2m·c_v − K·deg_v| over the shard (K·2m·TV̂ scale).
	absDev int64
	// mixedDeg is Σ deg_v over the shard's vertices whose count is
	// within the pointwise tolerance — stationary mass (×2m) already
	// locally mixed.
	mixedDeg int64
}

// EstimateMixingTime measures τ(ε) the distributed way: every sampled
// source floods the graph with K = WalksPerNode·n walk tokens, shards
// advance them one hop per superstep, and each round's exact
// per-shard visit counts are reduced into an ℓ1 distance to the
// degree-proportional stationary distribution. The walk stops at the
// first round whose debiased distance is below ε. Sources run
// sequentially (walker memory stays bounded by one population) and
// each contributes its engine run's communication accounting to the
// returned totals.
//
// Determinism: walker hops are a pure hash of (seed, source, walker,
// round) and every cross-shard reduction is integer arithmetic, so
// the estimate is bit-identical for any shard count and any
// goroutine interleaving — only Stats varies with the plan.
func EstimateMixingTime(ctx context.Context, g *graph.Graph, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := g.NumNodes()
	if n < 2 {
		return nil, errors.New("distmix: graph too small to measure")
	}
	if !graph.IsConnected(g) {
		return nil, errors.New("distmix: graph must be connected (mixing time is undefined otherwise)")
	}
	walks := opt.WalksPerNode * n
	if int64(opt.WalksPerNode)*int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("distmix: %d walks per node on %d nodes overflows the walker id space", opt.WalksPerNode, n)
	}
	lazy := opt.Lazy || graph.IsBipartite(g)

	sources := opt.SourceList
	if sources == nil {
		// The exact derivation core.MeasureContext uses, so distmix and
		// cdf queries with equal seeds measure the same source set
		// (pinned by TestSourceDerivationMatchesCore).
		rng := rand.New(rand.NewPCG(opt.Seed, 0xc0fe))
		sources = markov.SampleSources(g, opt.Sources, rng)
	}
	if len(sources) == 0 {
		return nil, errors.New("distmix: no sources")
	}

	plan := graph.NewShardPlan(g, opt.Shards)
	res := &Result{
		Eps:           opt.Eps,
		WalksPerNode:  opt.WalksPerNode,
		Walks:         walks,
		Shards:        plan.NumShards(),
		Lazy:          lazy,
		Complete:      true,
		LocalComplete: true,
	}

	// Stationary-distribution scaffolding, computed once in vertex
	// order (the only floating-point inputs; identical for every shard
	// count). devThresh[v] is the pointwise "locally mixed" tolerance
	// on the integer deviation |2m·c_v − K·deg_v|: ε·π_v of real
	// deviation plus two noise MADs, scaled by K·2m.
	twoM := 2 * g.NumEdges()
	k2m := float64(walks) * float64(twoM)
	kDeg := make([]int64, n)
	devThresh := make([]float64, n)
	var floor float64
	for v := 0; v < n; v++ {
		deg := int64(g.Degree(graph.NodeID(v)))
		kDeg[v] = int64(walks) * deg
		pi := float64(deg) / float64(twoM)
		mad := binomMAD(walks, pi)
		floor += mad / 2
		devThresh[v] = (opt.Eps*pi + 2*mad) * k2m
	}
	res.NoiseFloor = floor
	// ζ(ε) target: locally mixed vertices must hold ≥ (1−ε) of the
	// stationary mass, i.e. Σ deg over mixed vertices ≥ (1−ε)·2m.
	localTarget := (1 - opt.Eps) * float64(twoM)

	for _, src := range sources {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("distmix: cancelled: %w", err)
		}
		se, stats, err := estimateSource(ctx, g, plan, src, walks, lazy, opt, kDeg, devThresh, floor, localTarget)
		if err != nil {
			return nil, err
		}
		res.Sources = append(res.Sources, se)
		res.Stats.Add(stats)
		if se.Tau > res.Tau {
			res.Tau = se.Tau
		}
		if se.LocalTau > res.LocalTau {
			res.LocalTau = se.LocalTau
		}
		res.Complete = res.Complete && se.Mixed
		res.LocalComplete = res.LocalComplete && se.LocalMixed
	}
	return res, nil
}

// estimateSource runs one source's walker population to its ε
// crossing (or the round cap) on a fresh engine.
func estimateSource(ctx context.Context, g *graph.Graph, plan *graph.ShardPlan,
	src graph.NodeID, walks int, lazy bool, opt Options,
	kDeg []int64, devThresh []float64, floor, localTarget float64) (SourceEstimate, Stats, error) {

	eng, err := NewEngine[walker, partial](g, plan, walkerBytes, opt.Collector)
	if err != nil {
		return SourceEstimate{}, Stats{}, err
	}
	shards := eng.NumShards()
	twoM := 2 * g.NumEdges()
	runSeed := mix64(mix64(opt.Seed^0x646973746d6978) ^ uint64(src))

	// Per-shard visit counters. Counts accumulate during a round's
	// arrival phase and drain in its departure phase, so they are zero
	// between rounds and a shard only ever touches its own range.
	counts := make([][]int32, shards)
	for s := 0; s < shards; s++ {
		lo, hi := plan.Bounds(s)
		counts[s] = make([]int32, hi-lo)
	}

	// Round r's arrivals are the distribution after r−1 hops, so a
	// crossing detected at round r means τ = r−1. Observing walk
	// length MaxRounds therefore needs MaxRounds+1 rounds.
	step := func(round, shard int, inbox [][]walker, out *Outbox[walker]) partial {
		lo, hi := plan.Bounds(shard)
		c := counts[shard]
		// Arrivals: materialize this round's visit counts.
		for _, batch := range inbox {
			for _, w := range batch {
				c[w.pos-graph.NodeID(lo)]++
			}
		}
		// Aggregate: exact integer ℓ1 deviation and locally-mixed mass.
		var p partial
		for v := lo; v < hi; v++ {
			dev := twoM*int64(c[v-lo]) - kDeg[v]
			if dev < 0 {
				dev = -dev
			}
			p.absDev += dev
			if float64(dev) <= devThresh[v] {
				p.mixedDeg += int64(g.Degree(graph.NodeID(v)))
			}
		}
		// Departures: every walker hops, addressed to its next owner.
		// The hash makes the hop a pure function of (seed, walker,
		// round) — independent of which shard computes it.
		for _, batch := range inbox {
			for _, w := range batch {
				c[w.pos-graph.NodeID(lo)]--
				next := nextHop(g, w.pos, runSeed, w.id, round, lazy)
				out.Send(eng.Owner(next), walker{id: w.id, pos: next})
			}
		}
		return p
	}

	se := SourceEstimate{Source: src}
	eps := opt.Eps
	invScale := 1 / (2 * float64(walks) * float64(twoM))
	var tvDone, localDone bool
	halt := func(round int, partials []partial) bool {
		var absDev, mixedDeg int64
		for _, p := range partials {
			absDev += p.absDev
			mixedDeg += p.mixedDeg
		}
		tau := round - 1
		if !localDone && float64(mixedDeg) >= localTarget {
			se.LocalTau, se.LocalMixed, localDone = tau, true, true
		}
		if tv := float64(absDev)*invScale - floor; !tvDone && tv < eps {
			se.Tau, se.Mixed, tvDone = tau, true, true
		}
		return tvDone && localDone
	}

	initial := make([][]walker, shards)
	seedShard := eng.Owner(src)
	pop := make([]walker, walks)
	for i := range pop {
		pop[i] = walker{id: uint32(i), pos: src}
	}
	initial[seedShard] = pop

	stats, err := eng.Run(ctx, opt.MaxRounds+1, initial, step, halt)
	if err != nil {
		return SourceEstimate{}, Stats{}, err
	}
	se.Rounds = stats.Rounds
	if !se.Mixed {
		se.Tau = opt.MaxRounds // lower bound, like markov.MixingTime
	}
	if !se.LocalMixed {
		se.LocalTau = opt.MaxRounds
	}
	return se, stats, nil
}

// nextHop advances one walker: a lazy coin (when measuring the lazy
// chain) and a uniform neighbor choice, both derived from one
// avalanche hash of (run seed, walker id, round). No shared RNG state
// means no cross-shard coordination and bit-identical walks under any
// partitioning.
func nextHop(g *graph.Graph, v graph.NodeID, runSeed uint64, id uint32, round int, lazy bool) graph.NodeID {
	h := mix64(runSeed + uint64(id)*0x9e3779b97f4a7c15 + uint64(round)*0xd1b54a32d192ed03)
	if lazy {
		if h&1 == 1 {
			return v
		}
		h >>= 1
	}
	adj := g.Neighbors(v)
	return adj[(h>>1)%uint64(len(adj))]
}

// mix64 is the splitmix64 finalizer — a full-avalanche bijection used
// as a counter-mode RNG over (seed, walker, round).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// binomMAD is the exact mean absolute deviation of Bin(k, p)/k around
// p, by De Moivre's closed form E|X−kp| = 2ν(1−p)·P(X=ν) with
// ν = ⌊kp⌋+1. It is the per-vertex sampling noise a finite walker
// population adds to the ℓ1 distance; summed over vertices it gives
// the debiasing floor.
func binomMAD(k int, p float64) float64 {
	if p <= 0 || p >= 1 || k <= 0 {
		return 0
	}
	nu := math.Floor(float64(k)*p) + 1
	if nu > float64(k) {
		nu = float64(k)
	}
	lg := lchoose(k, nu) + nu*math.Log(p) + (float64(k)-nu)*math.Log1p(-p)
	return 2 * nu * (1 - p) * math.Exp(lg) / float64(k)
}

// lchoose is log C(n, k) via Lgamma.
func lchoose(n int, k float64) float64 {
	a, _ := math.Lgamma(float64(n) + 1)
	b, _ := math.Lgamma(k + 1)
	c, _ := math.Lgamma(float64(n) - k + 1)
	return a - b - c
}
