package distmix

import (
	"context"
	"testing"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

// tokenEngine builds a trivial ring-of-shards engine: one token
// circulates, each shard forwards it to the next shard, and the
// partial is how many tokens the shard saw this round.
func tokenEngine(t *testing.T, shards int, col *telemetry.Collector) (*Engine[int, int], [][]int) {
	t.Helper()
	g := ring(2 * shards)
	plan := graph.NewShardPlan(g, shards)
	if plan.NumShards() != shards {
		t.Fatalf("plan has %d shards, want %d", plan.NumShards(), shards)
	}
	eng, err := NewEngine[int, int](g, plan, 4, col)
	if err != nil {
		t.Fatal(err)
	}
	initial := make([][]int, shards)
	initial[0] = []int{0}
	return eng, initial
}

func forward(shards int) Step[int, int] {
	return func(round, shard int, inbox [][]int, out *Outbox[int]) int {
		seen := 0
		for _, batch := range inbox {
			for range batch {
				seen++
				out.Send((shard+1)%shards, round)
			}
		}
		return seen
	}
}

func TestEngineBarrierAndAccounting(t *testing.T) {
	col := telemetry.New()
	eng, initial := tokenEngine(t, 4, col)
	rounds := 0
	st, err := eng.Run(context.Background(), 6, initial, forward(4),
		func(round int, partials []int) bool {
			rounds++
			total := 0
			for _, p := range partials {
				total += p
			}
			if total != 1 {
				t.Fatalf("round %d saw %d tokens, want 1", round, total)
			}
			return false
		})
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 6 || st.Rounds != 6 {
		t.Fatalf("rounds = %d/%d, want 6", rounds, st.Rounds)
	}
	// One token forwarded per round, always to a different shard.
	if st.Messages != 6 || st.OffShardMessages != 6 {
		t.Fatalf("messages = %d off %d, want 6/6", st.Messages, st.OffShardMessages)
	}
	if st.OffShardBytes != 24 || st.OnShardBytes != 0 {
		t.Fatalf("bytes = on %d off %d, want 0/24", st.OnShardBytes, st.OffShardBytes)
	}
	if st.Halted {
		t.Fatal("run reported halted without a halt")
	}
	snap := col.Snapshot()
	if snap.Get(telemetry.DistRounds) != 6 || snap.Get(telemetry.DistOffShardMessages) != 6 {
		t.Fatalf("telemetry rounds/offshard = %d/%d, want 6/6",
			snap.Get(telemetry.DistRounds), snap.Get(telemetry.DistOffShardMessages))
	}
}

func TestEngineSingleShardKeepsTrafficLocal(t *testing.T) {
	eng, initial := tokenEngine(t, 1, nil)
	st, err := eng.Run(context.Background(), 3, initial, forward(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Messages != 3 || st.OffShardMessages != 0 {
		t.Fatalf("messages = %d off %d, want 3/0", st.Messages, st.OffShardMessages)
	}
	if st.OnShardBytes != 12 || st.OffShardBytes != 0 {
		t.Fatalf("bytes = on %d off %d, want 12/0", st.OnShardBytes, st.OffShardBytes)
	}
}

func TestEngineHaltStopsEarly(t *testing.T) {
	eng, initial := tokenEngine(t, 4, nil)
	st, err := eng.Run(context.Background(), 100, initial, forward(4),
		func(round int, partials []int) bool { return round == 5 })
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted || st.Rounds != 5 {
		t.Fatalf("halted=%v rounds=%d, want halted at 5", st.Halted, st.Rounds)
	}
}

func TestEngineCancellation(t *testing.T) {
	eng, initial := tokenEngine(t, 4, nil)
	ctx, cancel := context.WithCancel(context.Background())
	st, err := eng.Run(ctx, 1000, initial, forward(4),
		func(round int, partials []int) bool {
			if round == 3 {
				cancel()
			}
			return false
		})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if st.Rounds != 3 {
		t.Fatalf("rounds = %d, want 3 (cancellation checked at the next superstep)", st.Rounds)
	}
}

func TestEngineRejectsBadRounds(t *testing.T) {
	eng, initial := tokenEngine(t, 2, nil)
	if _, err := eng.Run(context.Background(), 0, initial, forward(2), nil); err == nil {
		t.Fatal("maxRounds 0 accepted")
	}
}
