// Package distmix estimates mixing times the way a distributed system
// would: no global eigensolve, no dense distribution vectors — just
// random-walk tokens hopping between graph partitions, with
// convergence detected from per-partition visit statistics. It follows
// Molla & Pandurangan's distributed mixing-time line of work: each
// node learns how mixed the walk is from local walk counts alone, and
// the only global operations are a per-round barrier and an
// O(shards)-sized reduction.
//
// The package simulates the distributed execution on one machine so
// the estimates can be cross-validated against the exact spectral and
// propagation answers the rest of the repository computes (experiments
// D1/D2). The existing edge-balanced graph.ShardPlan partitions play
// the workers, rounds are bulk-synchronous supersteps, and every
// walker hop that crosses a shard boundary is accounted as an
// off-shard message through internal/telemetry — the cost a real
// deployment would put on the wire.
//
// The two layers:
//
//   - Engine (this file): a generic superstep runner — per-shard
//     worker goroutines, double-buffered per-shard mailboxes, a round
//     barrier, context cancellation between rounds, and communication
//     accounting (rounds, messages, bytes on/off shard).
//   - EstimateMixingTime (estimate.go): the walk-distribution and
//     local mixing-time estimators built on the engine.
package distmix

import (
	"context"
	"fmt"
	"sync"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// Stats is the communication accounting of one engine run — the cost
// model of the simulated distributed system. Message counts are exact
// and deterministic for a deterministic step function; they grow with
// the shard count even though the estimate itself does not, which is
// the accuracy-vs-communication axis experiment D2 sweeps.
type Stats struct {
	// Rounds is the number of supersteps executed.
	Rounds int `json:"rounds"`
	// Messages counts every delivered message, local or not.
	Messages int64 `json:"messages"`
	// OffShardMessages counts messages whose sender and receiver live
	// on different shards — wire traffic in a real deployment.
	OffShardMessages int64 `json:"offshard_messages"`
	// OnShardBytes and OffShardBytes are the accounted payload volumes
	// (message count × the engine's per-message size).
	OnShardBytes  int64 `json:"onshard_bytes"`
	OffShardBytes int64 `json:"offshard_bytes"`
	// Halted reports that the halt predicate stopped the run before
	// the round budget ran out.
	Halted bool `json:"halted"`
}

// Add accumulates another run's accounting (used when one logical
// estimate runs the engine once per source).
func (s *Stats) Add(o Stats) {
	s.Rounds += o.Rounds
	s.Messages += o.Messages
	s.OffShardMessages += o.OffShardMessages
	s.OnShardBytes += o.OnShardBytes
	s.OffShardBytes += o.OffShardBytes
	s.Halted = s.Halted || o.Halted
}

// Outbox collects one shard's outgoing messages during a superstep.
// It is only valid inside the Step call that received it.
type Outbox[M any] struct {
	bufs [][]M // dst-shard indexed
}

// Send queues m for delivery to shard dst at the next superstep.
func (o *Outbox[M]) Send(dst int, m M) { o.bufs[dst] = append(o.bufs[dst], m) }

// Step is one shard's work for one superstep: consume the messages
// delivered this round (inbox[src] holds the batch sent by shard src
// last round, nil batches possible), queue next-round messages on out,
// and return the shard's partial aggregate for the round. Steps run
// concurrently across shards; a step may touch only its own shard's
// state.
type Step[M, P any] func(round, shard int, inbox [][]M, out *Outbox[M]) P

// Halt is the coordinator's per-round convergence test, called at the
// barrier with every shard's partial. Returning true ends the run —
// the distributed analogue of an O(shards) converge-cast.
type Halt[P any] func(round int, partials []P) bool

// Engine is a bulk-synchronous message-passing simulator over a
// graph.ShardPlan: shards are workers, rounds are supersteps. Workers
// are persistent goroutines released round-by-round through a barrier;
// mailboxes are double-buffered src×dst slices so a round's sends
// never race its receives and steady-state rounds allocate nothing.
// An Engine is single-run: construct, Run once, discard.
type Engine[M, P any] struct {
	plan   *graph.ShardPlan
	owner  []int32 // vertex -> owning shard
	shards int
	// msgBytes is the accounted wire size of one message.
	msgBytes int
	col      *telemetry.Collector

	cur, nxt [][][]M // [src][dst] message buffers; cur receives this round's sends
	inview   [][][]M // [dst][src] transposed view of last round's sends
	partials []P
}

// NewEngine builds an engine over the plan's shards. msgBytes is the
// accounted payload size of one message (for the byte counters); col
// may be nil.
func NewEngine[M, P any](g *graph.Graph, plan *graph.ShardPlan, msgBytes int, col *telemetry.Collector) (*Engine[M, P], error) {
	shards := plan.NumShards()
	if shards < 1 {
		return nil, fmt.Errorf("distmix: plan has no shards")
	}
	owner := make([]int32, g.NumNodes())
	for s := 0; s < shards; s++ {
		lo, hi := plan.Bounds(s)
		for v := lo; v < hi; v++ {
			owner[v] = int32(s)
		}
	}
	e := &Engine[M, P]{
		plan:     plan,
		owner:    owner,
		shards:   shards,
		msgBytes: msgBytes,
		col:      col,
		cur:      make([][][]M, shards),
		nxt:      make([][][]M, shards),
		inview:   make([][][]M, shards),
		partials: make([]P, shards),
	}
	for s := 0; s < shards; s++ {
		e.cur[s] = make([][]M, shards)
		e.nxt[s] = make([][]M, shards)
		e.inview[s] = make([][]M, shards)
	}
	return e, nil
}

// NumShards returns the worker count.
func (e *Engine[M, P]) NumShards() int { return e.shards }

// Owner returns the shard that owns vertex v — the routing table every
// step uses to address its sends.
func (e *Engine[M, P]) Owner(v graph.NodeID) int { return int(e.owner[v]) }

// Run executes up to maxRounds supersteps. initial[s] seeds shard s's
// first inbox (nil entries fine; seeding is not accounted as
// traffic). Each round: the barrier releases every worker with the
// messages addressed to it last round, workers run step concurrently,
// the coordinator accounts the round's sends, delivers them, and asks
// halt whether to stop. Cancellation is checked between rounds — the
// natural superstep boundary — so a cancelled context aborts within
// one round.
func (e *Engine[M, P]) Run(ctx context.Context, maxRounds int, initial [][]M, step Step[M, P], halt Halt[P]) (Stats, error) {
	if maxRounds < 1 {
		return Stats{}, fmt.Errorf("distmix: maxRounds %d must be positive", maxRounds)
	}
	// Seed round 1's inboxes: present initial[s] as a one-batch inbox.
	seed := make([][][]M, e.shards)
	for s := 0; s < e.shards; s++ {
		if s < len(initial) && len(initial[s]) > 0 {
			seed[s] = [][]M{initial[s]}
		}
	}

	start := make([]chan int, e.shards)
	done := make(chan int, e.shards)
	var wg sync.WaitGroup
	for s := 0; s < e.shards; s++ {
		start[s] = make(chan int, 1)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for round := range start[s] {
				inbox := seed[s]
				if round > 1 {
					inbox = e.inview[s]
				}
				out := Outbox[M]{bufs: e.cur[s]}
				e.partials[s] = step(round, s, inbox, &out)
				done <- s
			}
		}(s)
	}
	release := func() {
		for s := 0; s < e.shards; s++ {
			close(start[s])
		}
		wg.Wait()
	}

	var st Stats
	var err error
	for round := 1; round <= maxRounds; round++ {
		if cerr := ctx.Err(); cerr != nil {
			err = fmt.Errorf("distmix: cancelled at round %d: %w", round, cerr)
			break
		}
		for s := 0; s < e.shards; s++ {
			start[s] <- round
		}
		for i := 0; i < e.shards; i++ {
			<-done // barrier: all sends buffered, all partials written
		}
		st.Rounds++
		var msgs, off, onBytes, offBytes int64
		for src := 0; src < e.shards; src++ {
			for dst := 0; dst < e.shards; dst++ {
				n := int64(len(e.cur[src][dst]))
				if n == 0 {
					continue
				}
				msgs += n
				if src != dst {
					off += n
					offBytes += n * int64(e.msgBytes)
				} else {
					onBytes += n * int64(e.msgBytes)
				}
			}
		}
		st.Messages += msgs
		st.OffShardMessages += off
		st.OnShardBytes += onBytes
		st.OffShardBytes += offBytes
		e.col.Add(telemetry.DistRounds, 1)
		e.col.Add(telemetry.DistMessages, msgs)
		e.col.Add(telemetry.DistOffShardMessages, off)
		e.col.Add(telemetry.DistOnShardBytes, onBytes)
		e.col.Add(telemetry.DistOffShardBytes, offBytes)

		if halt != nil && halt(round, e.partials) {
			st.Halted = true
			break
		}
		// Deliver: next round's inbox for dst is the transposed view of
		// this round's sends; the other buffer set becomes the new (empty)
		// outboxes. Reslicing to :0 keeps capacity, so steady-state
		// rounds reuse the same backing arrays.
		for dst := 0; dst < e.shards; dst++ {
			for src := 0; src < e.shards; src++ {
				e.inview[dst][src] = e.cur[src][dst]
				e.nxt[dst][src] = e.nxt[dst][src][:0]
			}
		}
		e.cur, e.nxt = e.nxt, e.cur
	}
	release()
	return st, err
}
