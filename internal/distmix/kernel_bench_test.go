// Kernel benchmark for the distributed walker flood, isolated in the
// distmix test binary for layout-stable bench.sh snapshots (see the
// note in internal/markov/kernel_bench_test.go).
package distmix_test

import (
	"context"
	"testing"

	"mixtime/internal/datasets"
	"mixtime/internal/distmix"
	"mixtime/internal/graph"
)

// BenchmarkDistMixEstimate measures the distributed walker-flood
// kernel (superstep engine + per-shard aggregation) at a fixed round
// budget on the DESIGN.md §7 ablation workload: ε is set unreachably
// small so every iteration performs the same superstep work
// regardless of how fast the graph mixes.
func BenchmarkDistMixEstimate(b *testing.B) {
	d, err := datasets.ByName("physics-2")
	if err != nil {
		b.Fatal(err)
	}
	g := d.Generate(0.1, 1)
	opt := distmix.Options{
		Shards:       8,
		WalksPerNode: 16,
		MaxRounds:    64,
		Eps:          1e-12,
		SourceList:   []graph.NodeID{0},
		Seed:         1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := distmix.EstimateMixingTime(context.Background(), g, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.Stats.Messages), "messages")
		}
	}
}
