package distmix

import (
	"context"
	"math"
	"math/rand/v2"
	"reflect"
	"testing"

	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/telemetry"
)

func connectedRandom(n int, extra int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 17))
	b := graph.NewBuilder(0)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(rng.IntN(i)), graph.NodeID(i))
	}
	for k := 0; k < extra; k++ {
		b.AddEdge(graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n)))
	}
	return b.Build()
}

// estimateTolerance is the documented cross-validation tolerance of
// DESIGN.md §11: the walk-distribution estimate must land within 35%
// of the exact propagated τ(ε), or 3 steps for small τ.
func estimateTolerance(exact int) int {
	tol := int(math.Ceil(0.35 * float64(exact)))
	if tol < 3 {
		tol = 3
	}
	return tol
}

func TestEstimateMatchesExactPropagation(t *testing.T) {
	g := connectedRandom(200, 400, 5)
	sources := []graph.NodeID{3, 57, 120, 199}
	opt := Options{
		Shards:       5,
		WalksPerNode: 64,
		MaxRounds:    300,
		Eps:          0.1,
		SourceList:   sources,
		Seed:         1,
	}
	res, err := EstimateMixingTime(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("estimate incomplete within %d rounds", opt.MaxRounds)
	}

	chain, err := markov.New(g)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for i, src := range sources {
		tr, ok := chain.TraceUntil(src, opt.Eps, opt.MaxRounds)
		if !ok {
			t.Fatalf("exact trace from %d did not mix", src)
		}
		te, _ := tr.MixingTime(opt.Eps)
		if te > exact {
			exact = te
		}
		se := res.Sources[i]
		if diff := abs(se.Tau - te); diff > estimateTolerance(te) {
			t.Errorf("source %d: estimated τ %d vs exact %d (tolerance %d)",
				src, se.Tau, te, estimateTolerance(te))
		}
		// The local certificate is pointwise, so ζ lands near τ but not
		// necessarily below it; hold it to the same tolerance band.
		if !se.LocalMixed {
			t.Errorf("source %d: local mixing never certified", src)
		} else if diff := abs(se.LocalTau - te); diff > estimateTolerance(te) {
			t.Errorf("source %d: local τ %d vs exact τ %d (tolerance %d)",
				src, se.LocalTau, te, estimateTolerance(te))
		}
	}
	if diff := abs(res.Tau - exact); diff > estimateTolerance(exact) {
		t.Errorf("worst-case τ̂ %d vs exact %d (tolerance %d)", res.Tau, exact, estimateTolerance(exact))
	}
}

func TestEstimateShardCountInvariance(t *testing.T) {
	g := connectedRandom(150, 250, 7)
	base := Options{
		WalksPerNode: 32,
		MaxRounds:    200,
		Eps:          0.1,
		Sources:      3,
		Seed:         42,
	}
	var ref *Result
	for _, shards := range []int{1, 3, 7, 16} {
		opt := base
		opt.Shards = shards
		res, err := EstimateMixingTime(context.Background(), g, opt)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Tau != ref.Tau || res.LocalTau != ref.LocalTau ||
			res.Complete != ref.Complete || res.NoiseFloor != ref.NoiseFloor {
			t.Fatalf("shards=%d changed the estimate: τ %d vs %d, ζ %d vs %d",
				shards, res.Tau, ref.Tau, res.LocalTau, ref.LocalTau)
		}
		if !reflect.DeepEqual(res.Sources, ref.Sources) {
			t.Fatalf("shards=%d changed per-source estimates:\n%+v\nvs\n%+v",
				shards, res.Sources, ref.Sources)
		}
		if shards > 1 && res.Stats.OffShardMessages == 0 {
			t.Fatalf("shards=%d reported zero off-shard messages", shards)
		}
	}
}

func TestEstimateDeterministicForFixedSeed(t *testing.T) {
	g := connectedRandom(120, 200, 11)
	opt := Options{Shards: 4, WalksPerNode: 16, MaxRounds: 200, Eps: 0.1, Sources: 2, Seed: 9}
	a, err := EstimateMixingTime(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateMixingTime(context.Background(), g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs disagree:\n%+v\nvs\n%+v", a, b)
	}
}

func TestSourceDerivationMatchesCore(t *testing.T) {
	// The estimator promises its sampled sources equal the ones
	// core.MeasureContext draws for the same seed, so distmix and cdf
	// queries measure the same vertices. Pin the shared derivation.
	g := connectedRandom(100, 150, 3)
	rng := rand.New(rand.NewPCG(7, 0xc0fe))
	want := markov.SampleSources(g, 5, rng)
	res, err := EstimateMixingTime(context.Background(), g, Options{
		WalksPerNode: 4, MaxRounds: 50, Sources: 5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != len(want) {
		t.Fatalf("sampled %d sources, want %d", len(res.Sources), len(want))
	}
	for i, se := range res.Sources {
		if se.Source != want[i] {
			t.Fatalf("source %d = %d, want %d", i, se.Source, want[i])
		}
	}
}

func TestEstimateBipartiteUsesLazyChain(t *testing.T) {
	g := ring(12) // even ring: bipartite, plain walk periodic
	res, err := EstimateMixingTime(context.Background(), g, Options{
		WalksPerNode: 256, MaxRounds: 400, Eps: 0.25, SourceList: []graph.NodeID{0}, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Lazy {
		t.Fatal("bipartite graph not measured lazily")
	}
	if !res.Complete {
		t.Fatal("lazy ring walk never mixed — periodicity leak?")
	}
}

func TestEstimateTelemetry(t *testing.T) {
	g := connectedRandom(80, 120, 2)
	col := telemetry.New()
	res, err := EstimateMixingTime(context.Background(), g, Options{
		Shards: 4, WalksPerNode: 8, MaxRounds: 100, Sources: 2, Seed: 1, Collector: col,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if got := snap.Get(telemetry.DistRounds); got != int64(res.Stats.Rounds) {
		t.Fatalf("distmix_rounds = %d, stats say %d", got, res.Stats.Rounds)
	}
	if snap.Get(telemetry.DistOffShardMessages) == 0 {
		t.Fatal("no off-shard messages recorded — message passing never crossed a boundary")
	}
	if got := snap.Get(telemetry.DistMessages); got != res.Stats.Messages {
		t.Fatalf("distmix_messages = %d, stats say %d", got, res.Stats.Messages)
	}
}

func TestEstimateRejectsDegenerate(t *testing.T) {
	if _, err := EstimateMixingTime(context.Background(), &graph.Graph{}, Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	b := graph.NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3) // second component
	if _, err := EstimateMixingTime(context.Background(), b.Build(), Options{}); err == nil {
		t.Fatal("disconnected graph accepted")
	}
}

func TestEstimateCancellation(t *testing.T) {
	g := connectedRandom(100, 150, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EstimateMixingTime(ctx, g, Options{Sources: 2}); err == nil {
		t.Fatal("cancelled estimate returned no error")
	}
}

func TestBinomMADExact(t *testing.T) {
	// Cross-check De Moivre's closed form against direct enumeration.
	for _, tc := range []struct {
		k int
		p float64
	}{{10, 0.3}, {25, 0.5}, {40, 0.05}, {7, 0.9}} {
		var mean float64
		kp := float64(tc.k) * tc.p
		for i := 0; i <= tc.k; i++ {
			lg := lchoose(tc.k, float64(i)) + float64(i)*math.Log(tc.p) +
				float64(tc.k-i)*math.Log1p(-tc.p)
			mean += math.Abs(float64(i)-kp) * math.Exp(lg)
		}
		want := mean / float64(tc.k)
		got := binomMAD(tc.k, tc.p)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("binomMAD(%d, %v) = %v, want %v", tc.k, tc.p, got, want)
		}
	}
	if binomMAD(10, 0) != 0 || binomMAD(10, 1) != 0 {
		t.Fatal("degenerate p must have zero MAD")
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
