// Package gen generates graphs: deterministic reference topologies
// with known spectra (cycles, cliques, hypercubes, barbells) used to
// validate the spectral machinery, and the random social-graph models
// (Barabási–Albert, Watts–Strogatz, Erdős–Rényi, power-law
// configuration, planted partition, relaxed caveman) that stand in for
// the paper's proprietary datasets.
//
// Every generator takes an explicit *rand.Rand so experiments are
// reproducible from a seed; none touch global state.
package gen

import "mixtime/internal/graph"

// Ring returns the cycle C_n.
func Ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

// Path returns the path graph P_n.
func Path(n int) *graph.Graph {
	if n <= 0 {
		return &graph.Graph{}
	}
	b := graph.NewBuilder(n - 1)
	b.AddNode(graph.NodeID(n - 1))
	for i := 0; i+1 < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID(i+1))
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *graph.Graph {
	b := graph.NewBuilder(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return b.Build()
}

// Star returns the star K_{1,leaves} with the hub at node 0.
func Star(leaves int) *graph.Graph {
	b := graph.NewBuilder(leaves)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, graph.NodeID(i))
	}
	return b.Build()
}

// Grid returns the rows×cols 2-D lattice.
func Grid(rows, cols int) *graph.Graph {
	b := graph.NewBuilder(2 * rows * cols)
	id := func(r, c int) graph.NodeID { return graph.NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Build()
}

// Hypercube returns the d-dimensional hypercube Q_d with 2^d nodes.
// Its walk spectrum is {(d−2k)/d}; bipartite for every d.
func Hypercube(d int) *graph.Graph {
	n := 1 << d
	b := graph.NewBuilder(n * d / 2)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if v < w {
				b.AddEdge(graph.NodeID(v), graph.NodeID(w))
			}
		}
	}
	return b.Build()
}

// Barbell joins two K_k cliques by a single bridge edge — the
// canonical slow-mixing topology (conductance Θ(1/k²)).
func Barbell(k int) *graph.Graph {
	b := graph.NewBuilder(k * (k - 1))
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			b.AddEdge(graph.NodeID(k+i), graph.NodeID(k+j))
		}
	}
	b.AddEdge(0, graph.NodeID(k))
	return b.Build()
}

// Lollipop attaches a path of length tail to a K_k clique.
func Lollipop(k, tail int) *graph.Graph {
	b := graph.NewBuilder(k*(k-1)/2 + tail)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	prev := graph.NodeID(k - 1)
	for i := 0; i < tail; i++ {
		next := graph.NodeID(k + i)
		b.AddEdge(prev, next)
		prev = next
	}
	return b.Build()
}
