package gen

import (
	"math"
	"math/rand/v2"

	"mixtime/internal/graph"
)

// ErdosRenyi samples G(n, p) with geometric edge skipping, O(n + m)
// expected time regardless of p, so sparse million-node graphs are
// cheap.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *graph.Graph {
	if n <= 0 {
		return &graph.Graph{}
	}
	b := graph.NewBuilder(int(p * float64(n) * float64(n-1) / 2))
	b.AddNode(graph.NodeID(n - 1))
	if p <= 0 {
		return b.Build()
	}
	if p >= 1 {
		return Complete(n)
	}
	// Enumerate the n(n-1)/2 pairs lexicographically and jump between
	// successes with geometric gaps.
	logq := math.Log1p(-p)
	v, w := 1, -1
	for v < n {
		gap := int(math.Log(1-rng.Float64())/logq) + 1
		w += gap
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			b.AddEdge(graph.NodeID(v), graph.NodeID(w))
		}
	}
	return b.Build()
}

// ErdosRenyiM samples G(n, m): exactly m distinct edges uniformly at
// random.
func ErdosRenyiM(n int, m int64, rng *rand.Rand) *graph.Graph {
	if n <= 0 {
		return &graph.Graph{}
	}
	b := graph.NewBuilder(int(m))
	b.AddNode(graph.NodeID(n - 1))
	seen := make(map[uint64]bool, m)
	max := int64(n) * int64(n-1) / 2
	if m > max {
		m = max
	}
	for int64(len(seen)) < m {
		u := graph.NodeID(rng.IntN(n))
		v := graph.NodeID(rng.IntN(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// RandomRegular samples an (approximately) d-regular graph by the
// pairing model: d stubs per node matched uniformly; self-loops and
// duplicate pairs are dropped, so a few nodes may fall short of
// degree d. For d ≥ 3 the result is connected w.h.p.
func RandomRegular(n, d int, rng *rand.Rand) *graph.Graph {
	if n <= 0 || d < 0 {
		return &graph.Graph{}
	}
	stubs := make([]graph.NodeID, 0, n*d)
	for v := 0; v < n; v++ {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(n * d / 2)
	b.AddNode(graph.NodeID(n - 1))
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdge(stubs[i], stubs[i+1])
	}
	return b.Build()
}

// WattsStrogatz samples the small-world model: a ring lattice where
// every node connects to its k nearest neighbours on each side, with
// each edge rewired to a uniform endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *rand.Rand) *graph.Graph {
	if n <= 0 {
		return &graph.Graph{}
	}
	b := graph.NewBuilder(n * k)
	b.AddNode(graph.NodeID(n - 1))
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			w := (v + j) % n
			if beta > 0 && rng.Float64() < beta {
				w = rng.IntN(n)
				for w == v {
					w = rng.IntN(n)
				}
			}
			b.AddEdge(graph.NodeID(v), graph.NodeID(w))
		}
	}
	return b.Build()
}

// BarabasiAlbert samples the preferential-attachment model: starting
// from a small seed clique, each new node attaches k edges to existing
// nodes with probability proportional to their current degree. The
// result is connected with a power-law degree tail — the standard
// stand-in for fast-mixing online social graphs.
func BarabasiAlbert(n, k int, rng *rand.Rand) *graph.Graph {
	if n <= 0 {
		return &graph.Graph{}
	}
	if k < 1 {
		k = 1
	}
	seed := k + 1
	if seed > n {
		seed = n
	}
	b := graph.NewBuilder(n * k)
	b.AddNode(graph.NodeID(n - 1))
	// repeated holds every edge endpoint once per incidence, so
	// sampling a uniform element is degree-proportional sampling.
	repeated := make([]graph.NodeID, 0, 2*n*k)
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
			repeated = append(repeated, graph.NodeID(i), graph.NodeID(j))
		}
	}
	seen := make(map[graph.NodeID]bool, k)
	targets := make([]graph.NodeID, 0, k)
	for v := seed; v < n; v++ {
		clear(seen)
		targets = targets[:0]
		for len(targets) < k && len(targets) < v {
			t := repeated[rng.IntN(len(repeated))]
			if !seen[t] {
				seen[t] = true
				targets = append(targets, t)
			}
		}
		for _, t := range targets {
			b.AddEdge(graph.NodeID(v), t)
			repeated = append(repeated, graph.NodeID(v), t)
		}
	}
	return b.Build()
}

// PowerLawDegrees samples n degrees from a discrete power law
// P(d) ∝ d^(−gamma) on [minDeg, maxDeg], adjusting the last entry so
// the total is even (a graphical requirement for pairing).
func PowerLawDegrees(n int, gamma float64, minDeg, maxDeg int, rng *rand.Rand) []int {
	// Inverse-CDF sampling on the continuous Pareto, then floor.
	degrees := make([]int, n)
	a := 1 - gamma
	lo := math.Pow(float64(minDeg), a)
	hi := math.Pow(float64(maxDeg)+1, a)
	sum := 0
	for i := range degrees {
		u := rng.Float64()
		d := int(math.Pow(lo+u*(hi-lo), 1/a))
		if d < minDeg {
			d = minDeg
		}
		if d > maxDeg {
			d = maxDeg
		}
		degrees[i] = d
		sum += d
	}
	if sum%2 == 1 {
		degrees[n-1]++
	}
	return degrees
}

// ConfigurationModel samples a graph with (approximately) the given
// degree sequence by uniform stub matching; self-loops and multi-edges
// are dropped, slightly deflating the realized degrees of heavy nodes.
func ConfigurationModel(degrees []int, rng *rand.Rand) *graph.Graph {
	var total int
	for _, d := range degrees {
		total += d
	}
	stubs := make([]graph.NodeID, 0, total)
	for v, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	b := graph.NewBuilder(total / 2)
	if len(degrees) > 0 {
		b.AddNode(graph.NodeID(len(degrees) - 1))
	}
	for i := 0; i+1 < len(stubs); i += 2 {
		b.AddEdge(stubs[i], stubs[i+1])
	}
	return b.Build()
}
