package gen

import (
	"math"
	"math/rand/v2"

	"mixtime/internal/graph"
)

// PlantedPartition samples the stochastic block model with k equal
// communities of size size: intra-community edges with probability
// pIn, inter-community with pOut. Conductance between blocks — and
// hence the mixing time — is controlled by the pOut/pIn ratio, which
// is how the slow-mixing dataset substitutes are calibrated. Runs in
// O(n + m) expected time via geometric skipping.
func PlantedPartition(k, size int, pIn, pOut float64, rng *rand.Rand) *graph.Graph {
	if k <= 0 || size <= 0 {
		return &graph.Graph{}
	}
	n := k * size
	b := graph.NewBuilder(int(pIn*float64(k)*float64(size*size)/2) + 16)
	b.AddNode(graph.NodeID(n - 1))

	// Intra-block: k independent G(size, pIn) copies, offset.
	for c := 0; c < k; c++ {
		base := graph.NodeID(c * size)
		samplePairs(size, pIn, rng, func(u, v int) {
			b.AddEdge(base+graph.NodeID(u), base+graph.NodeID(v))
		})
	}
	// Inter-block: for each ordered block pair (c1 < c2), a size×size
	// bipartite G(p) via skipping over the size² grid.
	for c1 := 0; c1 < k; c1++ {
		for c2 := c1 + 1; c2 < k; c2++ {
			base1 := graph.NodeID(c1 * size)
			base2 := graph.NodeID(c2 * size)
			sampleGrid(size, size, pOut, rng, func(u, v int) {
				b.AddEdge(base1+graph.NodeID(u), base2+graph.NodeID(v))
			})
		}
	}
	return b.Build()
}

// samplePairs visits each unordered pair {u,v} of [0,n) independently
// with probability p, in O(1 + p·n²/2) expected time.
func samplePairs(n int, p float64, rng *rand.Rand, visit func(u, v int)) {
	if p <= 0 {
		return
	}
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				visit(u, v)
			}
		}
		return
	}
	logq := math.Log1p(-p)
	v, w := 1, -1
	for v < n {
		gap := int(math.Log(1-rng.Float64())/logq) + 1
		w += gap
		for w >= v && v < n {
			w -= v
			v++
		}
		if v < n {
			visit(v, w)
		}
	}
}

// sampleGrid visits each cell of an a×b grid independently with
// probability p, in O(1 + p·a·b) expected time.
func sampleGrid(a, b int, p float64, rng *rand.Rand, visit func(i, j int)) {
	if p <= 0 {
		return
	}
	total := int64(a) * int64(b)
	if p >= 1 {
		for i := 0; i < a; i++ {
			for j := 0; j < b; j++ {
				visit(i, j)
			}
		}
		return
	}
	logq := math.Log1p(-p)
	idx := int64(-1)
	for {
		gap := int64(math.Log(1-rng.Float64())/logq) + 1
		idx += gap
		if idx >= total {
			return
		}
		visit(int(idx/int64(b)), int(idx%int64(b)))
	}
}

// RelaxedCaveman samples the relaxed caveman model: cliques of size
// cliqueSize arranged so that each edge is rewired to a random node
// elsewhere with probability rewire. Low rewire probabilities yield
// strong community structure and very slow mixing — the profile of
// the paper's co-authorship (Physics, DBLP) graphs.
func RelaxedCaveman(numCliques, cliqueSize int, rewire float64, rng *rand.Rand) *graph.Graph {
	if numCliques <= 0 || cliqueSize <= 0 {
		return &graph.Graph{}
	}
	n := numCliques * cliqueSize
	b := graph.NewBuilder(numCliques * cliqueSize * (cliqueSize - 1) / 2)
	b.AddNode(graph.NodeID(n - 1))
	for c := 0; c < numCliques; c++ {
		base := c * cliqueSize
		for i := 0; i < cliqueSize; i++ {
			for j := i + 1; j < cliqueSize; j++ {
				u, v := base+i, base+j
				if rng.Float64() < rewire {
					v = rng.IntN(n)
					for v == u {
						v = rng.IntN(n)
					}
				}
				b.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	// Tie consecutive cliques together so the graph is connected even
	// for rewire = 0 (one edge per adjacent clique pair).
	for c := 0; c+1 < numCliques; c++ {
		u := c*cliqueSize + rng.IntN(cliqueSize)
		v := (c+1)*cliqueSize + rng.IntN(cliqueSize)
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build()
}

// CommunityBA builds k Barabási–Albert communities of size size and
// attachment kAttach, then adds bridges random inter-community edges.
// It models online social graphs with mild community structure
// (Slashdot, Epinion): locally expander-like, globally bottlenecked.
func CommunityBA(k, size, kAttach int, bridges int, rng *rand.Rand) *graph.Graph {
	if k <= 0 || size <= 0 {
		return &graph.Graph{}
	}
	n := k * size
	b := graph.NewBuilder(n*kAttach + bridges)
	b.AddNode(graph.NodeID(n - 1))
	for c := 0; c < k; c++ {
		base := graph.NodeID(c * size)
		community := BarabasiAlbert(size, kAttach, rng)
		community.Edges(func(u, v graph.NodeID) bool {
			b.AddEdge(base+u, base+v)
			return true
		})
	}
	for i := 0; i < bridges; i++ {
		c1 := rng.IntN(k)
		c2 := rng.IntN(k)
		for c2 == c1 {
			c2 = rng.IntN(k)
		}
		u := graph.NodeID(c1*size + rng.IntN(size))
		v := graph.NodeID(c2*size + rng.IntN(size))
		b.AddEdge(u, v)
	}
	return b.Build()
}

// WithPendants attaches extra degree-1 nodes to g: each new node links
// to one uniformly random existing node. DBLP-style graphs have long
// low-degree fringes; these pendants are what the SybilGuard-style
// trimming of Figure 6 removes.
func WithPendants(g *graph.Graph, pendants int, rng *rand.Rand) *graph.Graph {
	if g.NumNodes() == 0 || pendants <= 0 {
		return g
	}
	n := g.NumNodes()
	b := graph.NewBuilder(int(g.NumEdges()) + pendants)
	g.Edges(func(u, v graph.NodeID) bool {
		b.AddEdge(u, v)
		return true
	})
	for i := 0; i < pendants; i++ {
		b.AddEdge(graph.NodeID(n+i), graph.NodeID(rng.IntN(n)))
	}
	return b.Build()
}

// WithChains attaches chains (paths) of the given length to g, each
// anchored at a uniformly random existing node. Trimming to min
// degree 2 cascades from each chain's degree-1 tip and removes the
// whole chain.
func WithChains(g *graph.Graph, chains, length int, rng *rand.Rand) *graph.Graph {
	if g.NumNodes() == 0 || chains <= 0 || length <= 0 {
		return g
	}
	n := g.NumNodes()
	b := graph.NewBuilder(int(g.NumEdges()) + chains*length)
	g.Edges(func(u, v graph.NodeID) bool {
		b.AddEdge(u, v)
		return true
	})
	next := n
	for i := 0; i < chains; i++ {
		prev := graph.NodeID(rng.IntN(n))
		for j := 0; j < length; j++ {
			b.AddEdge(prev, graph.NodeID(next))
			prev = graph.NodeID(next)
			next++
		}
	}
	return b.Build()
}

// WithCliques attaches count cliques of size size to g, each joined
// to a uniformly random existing node by a single edge. A pendant
// K_s clique survives trimming up to min degree s−1 and disappears at
// min degree s (its members have degree s−1, except the anchor link),
// so a mix of clique sizes reproduces the gradual size reduction the
// paper reports when trimming DBLP at levels 1→5 (Figure 6).
func WithCliques(g *graph.Graph, count, size int, rng *rand.Rand) *graph.Graph {
	if g.NumNodes() == 0 || count <= 0 || size <= 0 {
		return g
	}
	n := g.NumNodes()
	b := graph.NewBuilder(int(g.NumEdges()) + count*size*(size-1)/2)
	g.Edges(func(u, v graph.NodeID) bool {
		b.AddEdge(u, v)
		return true
	})
	next := n
	for i := 0; i < count; i++ {
		for a := 0; a < size; a++ {
			for c := a + 1; c < size; c++ {
				b.AddEdge(graph.NodeID(next+a), graph.NodeID(next+c))
			}
		}
		b.AddEdge(graph.NodeID(next), graph.NodeID(rng.IntN(n)))
		next += size
	}
	return b.Build()
}
