package gen

import (
	"math"
	"math/rand/v2"

	"mixtime/internal/graph"
)

// ForestFire samples the forest-fire model of Leskovec, Kleinberg &
// Faloutsos (KDD 2005) — the paper the Table-1 datasets cite for
// their densification behaviour. Each new node picks a random
// ambassador, links to it, then "burns" outward: from each burned
// node it links to a geometrically distributed number of that node's
// neighbors (mean p/(1−p)), recursively. Produces heavy-tailed,
// densifying, community-rich graphs.
func ForestFire(n int, p float64, rng *rand.Rand) *graph.Graph {
	if n <= 0 {
		return &graph.Graph{}
	}
	if p < 0 {
		p = 0
	}
	if p > 0.95 {
		p = 0.95
	}
	b := graph.NewBuilder(2 * n)
	adj := make([][]graph.NodeID, n) // running adjacency for burning
	link := func(u, v graph.NodeID) {
		b.AddEdge(u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	b.AddNode(graph.NodeID(n - 1))
	if n < 2 {
		return b.Build()
	}
	link(0, 1)
	burned := make([]bool, n)
	var queue []graph.NodeID
	for v := 2; v < n; v++ {
		ambassador := graph.NodeID(rng.IntN(v))
		// Burn breadth-first from the ambassador.
		for i := range burned[:v] {
			burned[i] = false
		}
		queue = append(queue[:0], ambassador)
		burned[ambassador] = true
		linked := 0
		const maxLinks = 40 // keeps expected degree bounded at high p
		for len(queue) > 0 && linked < maxLinks {
			cur := queue[0]
			queue = queue[1:]
			link(graph.NodeID(v), cur)
			linked++
			// Geometric(1-p) out-burn count.
			x := 0
			for rng.Float64() < p {
				x++
			}
			for _, w := range adj[cur] {
				if x == 0 {
					break
				}
				if int(w) < v && !burned[w] {
					burned[w] = true
					queue = append(queue, w)
					x--
				}
			}
		}
	}
	return b.Build()
}

// Kleinberg samples Kleinberg's navigable small-world: a side×side
// torus lattice plus one long-range contact per node chosen with
// probability ∝ dist^(−r). r=2 is the navigable sweet spot.
func Kleinberg(side int, r float64, rng *rand.Rand) *graph.Graph {
	n := side * side
	b := graph.NewBuilder(3 * n)
	id := func(x, y int) graph.NodeID {
		return graph.NodeID(((x+side)%side)*side + (y+side)%side)
	}
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			b.AddEdge(id(x, y), id(x+1, y))
			b.AddEdge(id(x, y), id(x, y+1))
		}
	}
	// Long-range contacts by rejection sampling on the lattice
	// distance distribution.
	maxDist := side // torus L1 diameter
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for {
				dx := rng.IntN(2*maxDist+1) - maxDist
				dy := rng.IntN(2*maxDist+1) - maxDist
				d := abs(dx) + abs(dy)
				if d == 0 || d > maxDist {
					continue
				}
				if rng.Float64() < math.Pow(float64(d), -r) {
					b.AddEdge(id(x, y), id(x+dx, y+dy))
					break
				}
			}
		}
	}
	return b.Build()
}

func abs(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// HolmeKim samples the Holme–Kim model: preferential attachment with
// a triad-formation step (probability pt after each PA link), giving
// BA's heavy tail plus tunable clustering — closer to measured online
// social graphs than plain BA.
func HolmeKim(n, k int, pt float64, rng *rand.Rand) *graph.Graph {
	if n <= 0 {
		return &graph.Graph{}
	}
	if k < 1 {
		k = 1
	}
	seed := k + 1
	if seed > n {
		seed = n
	}
	b := graph.NewBuilder(n * k)
	b.AddNode(graph.NodeID(n - 1))
	repeated := make([]graph.NodeID, 0, 2*n*k)
	adj := make([][]graph.NodeID, n)
	link := func(u, v graph.NodeID) {
		b.AddEdge(u, v)
		repeated = append(repeated, u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for i := 0; i < seed; i++ {
		for j := i + 1; j < seed; j++ {
			link(graph.NodeID(i), graph.NodeID(j))
		}
	}
	seen := make(map[graph.NodeID]bool, k)
	for v := seed; v < n; v++ {
		clear(seen)
		var last graph.NodeID
		hasLast := false
		for added := 0; added < k && added < v; added++ {
			var t graph.NodeID
			// Triad step: link to a neighbor of the previous target.
			if hasLast && pt > 0 && rng.Float64() < pt && len(adj[last]) > 0 {
				t = adj[last][rng.IntN(len(adj[last]))]
			} else {
				t = repeated[rng.IntN(len(repeated))]
			}
			if t == graph.NodeID(v) || seen[t] {
				// Fall back to preferential choice on collision.
				t = repeated[rng.IntN(len(repeated))]
				if t == graph.NodeID(v) || seen[t] {
					continue
				}
			}
			seen[t] = true
			link(graph.NodeID(v), t)
			last, hasLast = t, true
		}
	}
	return b.Build()
}
