package gen

import (
	"fmt"
	"math"

	"mixtime/internal/fastrand"
	"mixtime/internal/graph"
)

// RingER streams the edges of a "ringer" graph — a k-regular ring
// lattice (each node linked to its k/2 nearest neighbors on each
// side) overlaid with Erdős–Rényi shortcut edges of probability p, a
// Newman–Watts-style small world. Unlike the materialized generators
// in this package it never holds the edge list: edges are produced on
// the fly in ascending lexicographic (u, v) order with u < v, exactly
// the contract of graphio.EdgeStream (the return type is structurally
// identical), so graphio.WriteMIXGStreamed can counting-sort them
// straight into an on-disk CSR. O(1) memory per call; a 10M-node
// graph streams without ever existing in RAM.
//
// Replayability comes from counter-mode seeding: node u's shortcut
// draws use a private PCG keyed by (seed, u), so replaying the stream
// — or resuming it at any node — regenerates identical edges.
// Shortcuts are drawn by geometric gap-skipping over the candidate
// interval (u+k/2, wrap-start), which excludes every lattice edge by
// construction, so no dedup pass is needed.
func RingER(n uint64, k int, p float64, seed uint64) func(emit func(u, v graph.NodeID) error) error {
	k2 := uint64(k / 2)
	return func(emit func(u, v graph.NodeID) error) error {
		if n > uint64(^graph.NodeID(0)) {
			return fmt.Errorf("gen: RingER node count %d exceeds NodeID range", n)
		}
		if k2 == 0 || n <= 2*k2 {
			return fmt.Errorf("gen: RingER needs 2 ≤ k and n > k (got n=%d k=%d)", n, k)
		}
		if p < 0 || p >= 1 {
			return fmt.Errorf("gen: RingER shortcut probability %v outside [0, 1)", p)
		}
		// Precomputed reciprocal of ln(1-p) for geometric skipping.
		var invLog1p float64
		if p > 0 {
			invLog1p = 1 / math.Log1p(-p)
		}
		for u := uint64(0); u < n; u++ {
			// Lattice edges forward of u: v ∈ [u+1, u+k2].
			for v := u + 1; v <= u+k2 && v < n; v++ {
				if err := emit(graph.NodeID(u), graph.NodeID(v)); err != nil {
					return err
				}
			}
			// Wrap-around lattice partners of u (only for u < k2) sit
			// at the top of the ID range; shortcuts may not collide
			// with them, so the candidate interval ends where they
			// begin.
			wrapStart := n
			if u < k2 {
				wrapStart = n - (k2 - u)
			}
			if p > 0 {
				pr := fastrand.New(splitmix64(seed) ^ splitmix64(u+0x9e3779b9))
				// Geometric gap-skipping: successive shortcut targets
				// in (u+k2, wrapStart), ascending by construction.
				v := u + k2
				for {
					// 1-Float64 ∈ (0, 1], so Log is finite and the
					// gap is ≥ 1.
					gap := uint64(math.Log(1-pr.Float64())*invLog1p) + 1
					if v+gap >= wrapStart || v+gap < v {
						break
					}
					v += gap
					if err := emit(graph.NodeID(u), graph.NodeID(v)); err != nil {
						return err
					}
				}
			}
			for v := wrapStart; v < n; v++ {
				if err := emit(graph.NodeID(u), graph.NodeID(v)); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// splitmix64 is the standard 64-bit mixing finalizer, used to derive
// independent per-node shortcut streams from one seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
