package gen

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mixtime/internal/graph"
	"mixtime/internal/spectral"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0xabcd)) }

func validate(t *testing.T, g *graph.Graph) {
	t.Helper()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTopologies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		n    int
		m    int64
	}{
		{"ring", Ring(7), 7, 7},
		{"path", Path(5), 5, 4},
		{"complete", Complete(6), 6, 15},
		{"star", Star(4), 5, 4},
		{"grid", Grid(3, 4), 12, 17},
		{"hypercube", Hypercube(4), 16, 32},
		{"barbell", Barbell(5), 10, 21},
		{"lollipop", Lollipop(4, 3), 7, 9},
	}
	for _, c := range cases {
		validate(t, c.g)
		if c.g.NumNodes() != c.n || c.g.NumEdges() != c.m {
			t.Errorf("%s: n=%d m=%d, want n=%d m=%d",
				c.name, c.g.NumNodes(), c.g.NumEdges(), c.n, c.m)
		}
		if !graph.IsConnected(c.g) {
			t.Errorf("%s disconnected", c.name)
		}
	}
}

func TestHypercubeSpectrum(t *testing.T) {
	// Q_3 walk eigenvalues: (3-2k)/3 for k=0..3.
	vals, err := spectral.DenseSpectrum(Hypercube(3))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1.0 / 3, 1.0 / 3, 1}
	idx := []int{0, 1, 5, 7} // multiplicities 1,3,3,1
	for i, w := range want {
		if math.Abs(vals[idx[i]]-w) > 1e-10 {
			t.Fatalf("Q3 spectrum %v, want %v at sorted pos %d", vals, w, idx[i])
		}
	}
}

func TestErdosRenyiEdgeCount(t *testing.T) {
	n, p := 500, 0.02
	g := ErdosRenyi(n, p, rng(1))
	validate(t, g)
	want := p * float64(n) * float64(n-1) / 2
	got := float64(g.NumEdges())
	if math.Abs(got-want) > 4*math.Sqrt(want) {
		t.Fatalf("G(%d,%v): m=%v, want ≈%v", n, p, got, want)
	}
	if g.NumNodes() != n {
		t.Fatalf("n = %d", g.NumNodes())
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	if g := ErdosRenyi(10, 0, rng(2)); g.NumEdges() != 0 || g.NumNodes() != 10 {
		t.Fatalf("G(10,0): %v", g)
	}
	if g := ErdosRenyi(6, 1, rng(2)); g.NumEdges() != 15 {
		t.Fatalf("G(6,1): %v", g)
	}
}

func TestErdosRenyiM(t *testing.T) {
	g := ErdosRenyiM(100, 300, rng(3))
	validate(t, g)
	if g.NumEdges() != 300 {
		t.Fatalf("m = %d, want 300", g.NumEdges())
	}
	// Request more edges than possible: clamps to the complete graph.
	g = ErdosRenyiM(5, 100, rng(3))
	if g.NumEdges() != 10 {
		t.Fatalf("overfull m = %d, want 10", g.NumEdges())
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(200, 6, rng(4))
	validate(t, g)
	if g.NumNodes() != 200 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// Stub matching drops a few collisions; degrees are ≈ 6.
	if got := g.AvgDegree(); got < 5.5 || got > 6.0 {
		t.Fatalf("avg degree %v", got)
	}
	if g.MaxDegree() > 6 {
		t.Fatalf("max degree %d > 6", g.MaxDegree())
	}
	if !graph.IsConnected(g) {
		t.Fatal("6-regular 200-node graph disconnected")
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(300, 3, 0.1, rng(5))
	validate(t, g)
	if g.NumNodes() != 300 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// Each node initiates 3 edges; rewiring can merge a few.
	if m := g.NumEdges(); m < 850 || m > 900 {
		t.Fatalf("m = %d, want ≈900", m)
	}
	// beta=0 is the deterministic ring lattice.
	lattice := WattsStrogatz(50, 2, 0, rng(5))
	if lattice.NumEdges() != 100 {
		t.Fatalf("lattice m = %d", lattice.NumEdges())
	}
	for v := 0; v < 50; v++ {
		if lattice.Degree(graph.NodeID(v)) != 4 {
			t.Fatalf("lattice degree %d at %d", lattice.Degree(graph.NodeID(v)), v)
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(2000, 5, rng(6))
	validate(t, g)
	if g.NumNodes() != 2000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !graph.IsConnected(g) {
		t.Fatal("BA graph disconnected")
	}
	// m ≈ (n - seed)·k + seed·(seed-1)/2.
	if m := g.NumEdges(); m < 9500 || m > 10100 {
		t.Fatalf("m = %d", m)
	}
	// Preferential attachment must produce a heavy tail: the max
	// degree far exceeds the mean.
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Fatalf("max degree %d vs avg %v — no heavy tail", g.MaxDegree(), g.AvgDegree())
	}
	if g.MinDegree() < 5 {
		t.Fatalf("min degree %d < k", g.MinDegree())
	}
}

func TestPowerLawDegrees(t *testing.T) {
	deg := PowerLawDegrees(5000, 2.5, 2, 100, rng(7))
	sum := 0
	minD, maxD := deg[0], deg[0]
	for _, d := range deg {
		sum += d
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if sum%2 != 0 {
		t.Fatal("odd degree sum")
	}
	if minD < 2 || maxD > 101 {
		t.Fatalf("degree range [%d,%d]", minD, maxD)
	}
	// Power law with γ=2.5, min 2: most mass at small degrees.
	small := 0
	for _, d := range deg {
		if d <= 4 {
			small++
		}
	}
	if float64(small)/float64(len(deg)) < 0.6 {
		t.Fatalf("only %d/%d small degrees — not heavy-tailed shape", small, len(deg))
	}
}

func TestConfigurationModel(t *testing.T) {
	deg := PowerLawDegrees(2000, 2.3, 2, 80, rng(8))
	g := ConfigurationModel(deg, rng(9))
	validate(t, g)
	if g.NumNodes() != 2000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// Collisions deflate slightly; realized edge total close to half
	// the stub count.
	var want int
	for _, d := range deg {
		want += d
	}
	if m := int(g.NumEdges()); m < want/2-want/20 || m > want/2 {
		t.Fatalf("m = %d, want ≈%d", m, want/2)
	}
}

func TestPlantedPartitionStructure(t *testing.T) {
	k, size := 4, 100
	g := PlantedPartition(k, size, 0.2, 0.005, rng(10))
	validate(t, g)
	if g.NumNodes() != k*size {
		t.Fatalf("n = %d", g.NumNodes())
	}
	// Count intra vs inter edges: intra should dominate.
	var intra, inter int64
	g.Edges(func(u, v graph.NodeID) bool {
		if int(u)/size == int(v)/size {
			intra++
		} else {
			inter++
		}
		return true
	})
	wantIntra := 0.2 * float64(k) * float64(size*(size-1)/2)
	wantInter := 0.005 * float64(k*(k-1)/2) * float64(size*size)
	if math.Abs(float64(intra)-wantIntra) > 5*math.Sqrt(wantIntra) {
		t.Fatalf("intra = %d, want ≈%v", intra, wantIntra)
	}
	if math.Abs(float64(inter)-wantInter) > 5*math.Sqrt(wantInter) {
		t.Fatalf("inter = %d, want ≈%v", inter, wantInter)
	}
}

func TestPlantedPartitionMixesSlowerWithWeakerBridges(t *testing.T) {
	strong := PlantedPartition(2, 150, 0.2, 0.02, rng(11))
	weak := PlantedPartition(2, 150, 0.2, 0.001, rng(11))
	muStrong, err := spectral.SLEMLanczos(strong, spectral.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	muWeak, err := spectral.SLEMLanczos(weak, spectral.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if muWeak.Mu <= muStrong.Mu {
		t.Fatalf("weak bridges µ=%v not slower than strong µ=%v", muWeak.Mu, muStrong.Mu)
	}
}

func TestRelaxedCaveman(t *testing.T) {
	g := RelaxedCaveman(20, 10, 0.05, rng(12))
	validate(t, g)
	if g.NumNodes() != 200 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !graph.IsConnected(g) {
		t.Fatal("caveman disconnected despite clique chaining")
	}
	// Strong community structure: slow mixing relative to an ER graph
	// of the same size/density.
	muCave, err := spectral.SLEMLanczos(g, spectral.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	er := ErdosRenyiM(200, g.NumEdges(), rng(13))
	erLCC, _ := graph.LargestComponent(er)
	muER, err := spectral.SLEMLanczos(erLCC, spectral.Options{Tol: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if muCave.Mu <= muER.Mu {
		t.Fatalf("caveman µ=%v not slower than ER µ=%v", muCave.Mu, muER.Mu)
	}
}

func TestCommunityBA(t *testing.T) {
	g := CommunityBA(5, 200, 4, 40, rng(14))
	validate(t, g)
	if g.NumNodes() != 1000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	lcc, _ := graph.LargestComponent(g)
	if lcc.NumNodes() < 990 {
		t.Fatalf("LCC only %d nodes", lcc.NumNodes())
	}
}

func TestWithPendantsAndChains(t *testing.T) {
	base := Complete(10)
	withP := WithPendants(base, 30, rng(15))
	validate(t, withP)
	if withP.NumNodes() != 40 || withP.NumEdges() != 45+30 {
		t.Fatalf("pendants: %v", withP)
	}
	if withP.MinDegree() != 1 {
		t.Fatalf("pendant degree %d", withP.MinDegree())
	}
	// Trimming to minDeg 2 removes exactly the pendants.
	core, _ := graph.Trim(withP, 2)
	if core.NumNodes() != 10 {
		t.Fatalf("trim left %d nodes", core.NumNodes())
	}

	withC := WithChains(base, 5, 3, rng(16))
	validate(t, withC)
	if withC.NumNodes() != 25 || withC.NumEdges() != 45+15 {
		t.Fatalf("chains: %v", withC)
	}
	// Trimming to min degree 2 cascades through each chain from its
	// degree-1 tip and removes the chains entirely (k-core semantics).
	g1, _ := graph.Trim(withC, 2)
	if g1.NumNodes() != 10 {
		t.Fatalf("after level-2 trim: %d nodes", g1.NumNodes())
	}
}

// Property: every random generator yields a structurally valid graph.
func TestQuickGeneratorsValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		gs := []*graph.Graph{
			ErdosRenyi(50+int(seed%50), 0.05, r),
			ErdosRenyiM(60, 120, r),
			RandomRegular(40, 4, r),
			WattsStrogatz(60, 2, 0.2, r),
			BarabasiAlbert(80, 3, r),
			ConfigurationModel(PowerLawDegrees(70, 2.4, 2, 20, r), r),
			PlantedPartition(3, 25, 0.3, 0.02, r),
			RelaxedCaveman(6, 8, 0.1, r),
			CommunityBA(3, 30, 2, 6, r),
		}
		for _, g := range gs {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestDegenerateInputs: every generator must handle n ≤ 0 and n = 1
// gracefully (the NodeID arithmetic must not wrap to 2³²-node
// graphs, and no rng.IntN(0) panics).
func TestDegenerateInputs(t *testing.T) {
	r := rng(99)
	zeroCases := map[string]*graph.Graph{
		"path0":     Path(0),
		"er0":       ErdosRenyi(0, 0.5, r),
		"erm0":      ErdosRenyiM(0, 10, r),
		"regular0":  RandomRegular(0, 3, r),
		"ws0":       WattsStrogatz(0, 2, 0.1, r),
		"ba0":       BarabasiAlbert(0, 3, r),
		"ff0":       ForestFire(0, 0.3, r),
		"sbm0":      PlantedPartition(0, 10, 0.5, 0.1, r),
		"caveman0":  RelaxedCaveman(0, 5, 0.1, r),
		"cba0":      CommunityBA(0, 10, 2, 3, r),
		"kleinberg": Kleinberg(0, 2, r),
		"hk0":       HolmeKim(0, 3, 0.5, r),
		"config0":   ConfigurationModel(nil, r),
	}
	for name, g := range zeroCases {
		if g.NumNodes() != 0 || g.NumEdges() != 0 {
			t.Errorf("%s: n=%d m=%d, want empty", name, g.NumNodes(), g.NumEdges())
		}
	}
	// n = 1: a single node, no edges, no panic.
	for name, g := range map[string]*graph.Graph{
		"path1": Path(1),
		"er1":   ErdosRenyi(1, 0.5, r),
		"ba1":   BarabasiAlbert(1, 3, r),
		"ff1":   ForestFire(1, 0.3, r),
	} {
		if g.NumNodes() != 1 || g.NumEdges() != 0 {
			t.Errorf("%s: n=%d m=%d, want lone node", name, g.NumNodes(), g.NumEdges())
		}
	}
	// Augmenters on empty / zero-count inputs return the input.
	empty := &graph.Graph{}
	if WithPendants(empty, 5, r) != empty {
		t.Error("WithPendants on empty graph")
	}
	base := Complete(4)
	if WithChains(base, 0, 3, r) != base || WithCliques(base, 2, 0, r) != base {
		t.Error("zero-count augmenters should return the input graph")
	}
}

func TestGeneratorsDeterministicFromSeed(t *testing.T) {
	a := BarabasiAlbert(500, 4, rng(77))
	b := BarabasiAlbert(500, 4, rng(77))
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge counts: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	same := true
	a.Edges(func(u, v graph.NodeID) bool {
		if !b.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	if !same {
		t.Fatal("same seed produced different graphs")
	}
}

func BenchmarkBarabasiAlbert100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		BarabasiAlbert(100_000, 5, rng(uint64(i)))
	}
}

func BenchmarkPlantedPartition100k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		PlantedPartition(10, 10_000, 0.002, 0.00001, rng(uint64(i)))
	}
}
