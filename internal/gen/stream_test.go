package gen

import (
	"testing"

	"mixtime/internal/graph"
)

// collect plays a stream into an edge list, asserting lex order as it
// goes — the invariant the streaming MIXG writer depends on.
func collect(t *testing.T, n uint64, stream func(func(u, v graph.NodeID) error) error) []graph.Edge {
	t.Helper()
	var edges []graph.Edge
	var lastU, lastV graph.NodeID
	first := true
	err := stream(func(u, v graph.NodeID) error {
		if u >= v {
			t.Fatalf("edge {%d,%d} not ordered u<v", u, v)
		}
		if uint64(v) >= n {
			t.Fatalf("edge {%d,%d} out of range", u, v)
		}
		if !first && (u < lastU || (u == lastU && v <= lastV)) {
			t.Fatalf("edge {%d,%d} after {%d,%d} breaks lex order", u, v, lastU, lastV)
		}
		first, lastU, lastV = false, u, v
		edges = append(edges, graph.Edge{U: u, V: v})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return edges
}

func TestRingERStreamStructure(t *testing.T) {
	const n, k = 300, 6
	const p = 0.01
	edges := collect(t, n, RingER(n, k, p, 42))
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	// The ring lattice is fully present: every node has its k nearest
	// neighbors, so min degree ≥ k.
	if g.MinDegree() < k {
		t.Errorf("min degree %d below lattice degree %d", g.MinDegree(), k)
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			w := graph.NodeID((v + j) % n)
			if !g.HasEdge(graph.NodeID(v), w) {
				t.Fatalf("lattice edge {%d,%d} missing", v, w)
			}
		}
	}
	// Shortcut count is near p × candidate volume (loose 4σ-ish band).
	lattice := int64(n * k / 2)
	shortcuts := g.NumEdges() - lattice
	expect := p * float64(n) * float64(n-2*(k/2)-1) / 2
	if shortcuts < int64(expect/2) || shortcuts > int64(expect*2) {
		t.Errorf("shortcut count %d far from expectation %.0f", shortcuts, expect)
	}
}

func TestRingERStreamReplayable(t *testing.T) {
	const n = 500
	s := RingER(n, 8, 0.02, 7)
	a := collect(t, n, s)
	b := collect(t, n, s)
	if len(a) != len(b) {
		t.Fatalf("replay produced %d edges, first pass %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at edge %d: %v vs %v", i, a[i], b[i])
		}
	}
	// Distinct seeds produce distinct shortcut sets.
	c := collect(t, n, RingER(n, 8, 0.02, 8))
	samePrefix := len(a) == len(c)
	if samePrefix {
		for i := range a {
			if a[i] != c[i] {
				samePrefix = false
				break
			}
		}
	}
	if samePrefix {
		t.Error("seeds 7 and 8 produced identical streams")
	}
}

func TestRingERStreamRejectsBadParams(t *testing.T) {
	noop := func(u, v graph.NodeID) error { return nil }
	for name, s := range map[string]func(func(u, v graph.NodeID) error) error{
		"k-too-small": RingER(10, 1, 0.1, 1),
		"n-too-small": RingER(6, 6, 0.1, 1),
		"p-negative":  RingER(10, 2, -0.5, 1),
		"p-one":       RingER(10, 2, 1.0, 1),
	} {
		if err := s(noop); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// p = 0 is valid: a pure lattice.
	edges := collect(t, 12, RingER(12, 4, 0, 1))
	if len(edges) != 12*2 {
		t.Errorf("pure lattice: got %d edges, want %d", len(edges), 24)
	}
}
