package gen

import (
	"testing"
	"testing/quick"

	"mixtime/internal/graph"
	"mixtime/internal/metrics"
)

func TestForestFire(t *testing.T) {
	g := ForestFire(2000, 0.35, rng(21))
	validate(t, g)
	if g.NumNodes() != 2000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !graph.IsConnected(g) {
		t.Fatal("forest fire disconnected (every node links its ambassador)")
	}
	// Burning creates triangles: clustering well above an ER graph of
	// the same density.
	er := ErdosRenyiM(2000, g.NumEdges(), rng(22))
	if metrics.AverageClustering(g) < 3*metrics.AverageClustering(er) {
		t.Fatalf("forest fire clustering %v vs ER %v",
			metrics.AverageClustering(g), metrics.AverageClustering(er))
	}
	// Higher burn probability densifies.
	dense := ForestFire(2000, 0.5, rng(23))
	if dense.NumEdges() <= g.NumEdges() {
		t.Fatalf("p=0.5 edges %d not above p=0.35 edges %d", dense.NumEdges(), g.NumEdges())
	}
}

func TestForestFireDegenerate(t *testing.T) {
	if g := ForestFire(1, 0.3, rng(24)); g.NumNodes() != 1 {
		t.Fatalf("n=1: %v", g)
	}
	g := ForestFire(50, 0, rng(25)) // p=0: pure ambassador tree
	validate(t, g)
	if g.NumEdges() != 49 {
		t.Fatalf("p=0 edges %d, want tree 49", g.NumEdges())
	}
	// p clamps at 0.95 without hanging.
	g = ForestFire(100, 0.99, rng(26))
	validate(t, g)
}

func TestKleinberg(t *testing.T) {
	g := Kleinberg(20, 2, rng(27))
	validate(t, g)
	if g.NumNodes() != 400 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	if !graph.IsConnected(g) {
		t.Fatal("kleinberg disconnected")
	}
	// Torus lattice gives 2n edges; one long link per node adds up to
	// n more (duplicates possible).
	if m := g.NumEdges(); m < 2*400+200 || m > 3*400 {
		t.Fatalf("m = %d", m)
	}
	// Long-range links shrink the diameter versus the bare torus:
	// mean path should be small.
	if d := metrics.SampledPathLength(g, 30, rng(28)); d > 12 {
		t.Fatalf("mean path %v — no small-world effect", d)
	}
}

func TestHolmeKim(t *testing.T) {
	g := HolmeKim(2000, 4, 0.7, rng(29))
	validate(t, g)
	if g.NumNodes() != 2000 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	lcc, _ := graph.LargestComponent(g)
	if lcc.NumNodes() < 1990 {
		t.Fatalf("LCC %d", lcc.NumNodes())
	}
	// Triad formation buys clustering over plain BA at equal k.
	ba := BarabasiAlbert(2000, 4, rng(30))
	if metrics.AverageClustering(g) < 2*metrics.AverageClustering(ba) {
		t.Fatalf("HK clustering %v vs BA %v",
			metrics.AverageClustering(g), metrics.AverageClustering(ba))
	}
	// Still heavy-tailed.
	if g.MaxDegree() < 4*int(g.AvgDegree()) {
		t.Fatalf("max degree %d vs avg %v", g.MaxDegree(), g.AvgDegree())
	}
}

func TestQuickNewModelsValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng(seed)
		for _, g := range []*graph.Graph{
			ForestFire(100+int(seed%100), 0.3, r),
			Kleinberg(8+int(seed%5), 2, r),
			HolmeKim(120, 3, 0.5, r),
		} {
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
