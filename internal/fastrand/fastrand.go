// Package fastrand provides the inlined PCG32 generator the walk
// kernels sample neighbors with. math/rand/v2's *rand.Rand costs an
// interface dispatch (Source.Uint64) plus a 128-bit PCG step per
// draw; at tens of millions of walker moves per second that dispatch
// is the single hottest instruction sequence in a Monte-Carlo trace.
// PCG here is the 64-bit-state, 32-bit-output PCG-XSH-RR variant: a
// value type with no interfaces, small enough that the compiler keeps
// the state in a register across the bounded-draw fast path.
//
// Two draw primitives cover the kernels:
//
//   - Uint32 is one LCG multiply plus an xorshift-rotate.
//   - Uint32n is Lemire's multiply-shift bounded draw: one 32×32→64
//     multiply in the common case, with the rejection loop only
//     entered on the (p < n/2³²) biased residue — branch-predicted
//     away for the degree ranges a social graph has.
//
// Seeding discipline: every public API that used to take a
// *math/rand/v2.Rand still does; hot loops derive their private PCG
// from that stream via FromRand (one Uint64 draw). Results remain a
// pure function of the caller's seed, but the derived stream differs
// from the pre-PCG one — golden values were re-pinned in the PR that
// introduced this package (see OPTIMIZATIONS.md).
//
// Source adapts a PCG to rand/v2's Source interface for
// compatibility call-sites that genuinely need a *rand.Rand (Shuffle,
// Float64 tails, ExpFloat64); NewRand builds one.
package fastrand

import "math/rand/v2"

// PCG is a PCG-XSH-RR 64/32 generator. The zero value is a valid
// (seed-0) generator; prefer New or FromRand. PCG is a value type:
// copy it to fork a stream (the copies then evolve independently).
type PCG struct {
	state uint64
}

// mul and inc are the standard PCG64 LCG constants.
const (
	mul = 6364136223846793005
	inc = 1442695040888963407
)

// New returns a PCG seeded from seed. The seed is mixed through one
// LCG advance so that small consecutive seeds (0, 1, 2, ...) do not
// produce correlated first outputs.
func New(seed uint64) PCG {
	p := PCG{state: 2*seed + 1}
	p.Uint32()
	return p
}

// FromRand derives a PCG from one Uint64 draw of rng — the bridge
// every public *rand.Rand API uses to hand its hot loop a
// devirtualized generator while remaining a pure function of the
// caller's seed.
func FromRand(rng *rand.Rand) PCG {
	return New(rng.Uint64())
}

// Uint32 returns the next 32-bit output.
func (p *PCG) Uint32() uint32 {
	old := p.state
	p.state = old*mul + inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns two Uint32 draws packed high-to-low.
func (p *PCG) Uint64() uint64 {
	hi := uint64(p.Uint32())
	lo := uint64(p.Uint32())
	return hi<<32 | lo
}

// Uint32n returns a uniform value in [0, n) by Lemire's multiply-shift
// method; n must be positive. The fast path is a single multiply — the
// rejection loop runs only when the low product word lands in the
// biased residue, probability n/2³², so for graph degrees it is
// essentially never taken.
func (p *PCG) Uint32n(n uint32) uint32 {
	x := p.Uint32()
	m := uint64(x) * uint64(n)
	if l := uint32(m); l < n {
		t := -n % n // (2³² − n) mod n, the biased-residue bound
		for l < t {
			x = p.Uint32()
			m = uint64(x) * uint64(n)
			l = uint32(m)
		}
	}
	return uint32(m >> 32)
}

// IntN returns a uniform int in [0, n); n must be in (0, 2³²).
func (p *PCG) IntN(n int) int {
	return int(p.Uint32n(uint32(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (p *PCG) Float64() float64 {
	return float64(p.Uint64()>>11) / (1 << 53)
}

// Coin returns a fair boolean — one Uint32 draw, bit 0.
func (p *PCG) Coin() bool {
	return p.Uint32()&1 == 0
}

// Source adapts a PCG to math/rand/v2's Source interface. Use it only
// at compatibility call-sites; hot loops should hold the PCG directly.
type Source struct {
	pcg PCG
}

// Uint64 implements rand.Source.
func (s *Source) Uint64() uint64 { return s.pcg.Uint64() }

// NewRand returns a *rand.Rand drawing from a PCG seeded with seed,
// for call-sites that need the full rand.Rand surface (Shuffle,
// Perm, ExpFloat64) on top of the same generator family.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(&Source{pcg: New(seed)})
}
