package fastrand

import (
	"math/rand/v2"
	"testing"
)

// TestGoldenStream pins the PCG output stream for seed 1. These
// values are load-bearing: every kernel that derives its neighbors
// from a PCG (MCTrace, walk.Random/Endpoint/Tail) is reproducible
// only while this stream is stable. Changing the constants or the
// seeding path must fail here first, not in an experiment artifact.
func TestGoldenStream(t *testing.T) {
	p := New(1)
	want := []uint32{0x33ed7ce0, 0xf3193d19, 0xe6e1fb00, 0xcd027776, 0xb7d959f3, 0x13c2773e}
	for i, w := range want {
		if got := p.Uint32(); got != w {
			t.Fatalf("Uint32 draw %d = %#x, want %#x", i, got, w)
		}
	}
}

// TestSeedsDecorrelated checks the New mixing step: adjacent seeds
// must not share their first output (the raw exemplar PCG without the
// warm-up draw fails this for small seeds).
func TestSeedsDecorrelated(t *testing.T) {
	seen := map[uint32]uint64{}
	for seed := uint64(0); seed < 64; seed++ {
		p := New(seed)
		v := p.Uint32()
		if prev, dup := seen[v]; dup {
			t.Fatalf("seeds %d and %d share first output %#x", prev, seed, v)
		}
		seen[v] = seed
	}
}

// TestUint32nRange draws across a spread of bounds, including the
// degenerate n=1 and near-2³² bounds that stress the Lemire residue
// path, and checks every value is in range.
func TestUint32nRange(t *testing.T) {
	p := New(7)
	for _, n := range []uint32{1, 2, 3, 7, 100, 1 << 16, 1<<31 + 1, ^uint32(0)} {
		for i := 0; i < 1000; i++ {
			if v := p.Uint32n(n); v >= n {
				t.Fatalf("Uint32n(%d) = %d out of range", n, v)
			}
		}
	}
}

// TestUint32nUniform is a coarse chi-square-free uniformity check:
// over many draws each of k buckets must land within 10% of the
// expected count. It guards against the classic modulo-bias mistake
// reappearing.
func TestUint32nUniform(t *testing.T) {
	p := New(42)
	const k, draws = 8, 800_000
	var counts [k]int
	for i := 0; i < draws; i++ {
		counts[p.Uint32n(k)]++
	}
	want := draws / k
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d: %d draws, want ~%d", b, c, want)
		}
	}
}

// TestFromRandDeterministic: the derived PCG is a pure function of
// the parent rng's state.
func TestFromRandDeterministic(t *testing.T) {
	a := FromRand(rand.New(rand.NewPCG(5, 6)))
	b := FromRand(rand.New(rand.NewPCG(5, 6)))
	for i := 0; i < 16; i++ {
		if x, y := a.Uint32(), b.Uint32(); x != y {
			t.Fatalf("draw %d: %#x != %#x", i, x, y)
		}
	}
}

// TestSourceAdapter: NewRand's stream is the PCG's Uint64 stream.
func TestSourceAdapter(t *testing.T) {
	r := NewRand(9)
	p := New(9)
	for i := 0; i < 8; i++ {
		if got, want := r.Uint64(), p.Uint64(); got != want {
			t.Fatalf("adapter draw %d = %#x, want %#x", i, got, want)
		}
	}
}

// TestFloat64Range guards the 53-bit mantissa scaling.
func TestFloat64Range(t *testing.T) {
	p := New(3)
	for i := 0; i < 10_000; i++ {
		if f := p.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func BenchmarkUint32n(b *testing.B) {
	p := New(1)
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink += p.Uint32n(37)
	}
	_ = sink
}

func BenchmarkRandV2IntN(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.IntN(37)
	}
	_ = sink
}
