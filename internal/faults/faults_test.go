package faults

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestParseRejectsGarbage pins the spec grammar's error surface.
func TestParseRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"panic",
		"panic=",
		"panic=2",       // probability out of range
		"panic=-0.5",    //
		"panic=0.5:-3",  // negative cap
		"latency=syrup", // not a duration
		"latency=-5ms",
		"seed=banana",
		"chaos=1", // unknown key
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted garbage", spec)
		}
	}
	good := []string{
		"seed=7",
		"panic=1",
		"panic=0.25:3,error=0.1",
		"latency=40ms",
		"latency=40ms:0.5",
		"seed=7,panic=1:4,latency=40ms",
		" seed=1 , error=1:2 ",
	}
	for _, spec := range good {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q): %v", spec, err)
		}
	}
}

// TestNilInjectorIsInert pins the zero-cost disarmed path.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Inject(context.Background()); err != nil {
		t.Fatalf("nil injector injected: %v", err)
	}
	if p, e, d := in.Counts(); p+e+d != 0 {
		t.Fatalf("nil injector counts = %d/%d/%d", p, e, d)
	}
	if got := in.String(); got != "faults: disarmed" {
		t.Fatalf("nil injector String() = %q", got)
	}
}

// TestCappedAlwaysFire pins the determinism contract the chaos smoke
// leans on: probability 1 with a cap fires exactly that many times,
// first, regardless of anything else in the spec.
func TestCappedAlwaysFire(t *testing.T) {
	in, err := Parse("seed=7,panic=1:3,error=1:2")
	if err != nil {
		t.Fatal(err)
	}
	var outcomes []string
	for i := 0; i < 8; i++ {
		func() {
			defer func() {
				if v := recover(); v != nil {
					outcomes = append(outcomes, "panic")
					if !strings.Contains(v.(string), "injected solve panic") {
						t.Errorf("panic value %v lacks the marker", v)
					}
				}
			}()
			if err := in.Inject(context.Background()); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Errorf("injected error %v is not ErrInjected", err)
				}
				outcomes = append(outcomes, "error")
				return
			}
			outcomes = append(outcomes, "none")
		}()
	}
	want := []string{"panic", "panic", "panic", "error", "error", "none", "none", "none"}
	if got := strings.Join(outcomes, ","); got != strings.Join(want, ",") {
		t.Fatalf("outcome sequence = %s, want %s", got, strings.Join(want, ","))
	}
	if p, e, _ := in.Counts(); p != 3 || e != 2 {
		t.Fatalf("counts = %d panics / %d errors, want 3/2", p, e)
	}
}

// TestSeededSequenceIsReproducible: two injectors with the same seed
// make identical probabilistic decisions; a different seed diverges
// (with overwhelming probability over 200 draws).
func TestSeededSequenceIsReproducible(t *testing.T) {
	run := func(spec string) string {
		in, err := Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for i := 0; i < 200; i++ {
			_, act := in.draw()
			b.WriteByte("nep"[act])
		}
		return b.String()
	}
	a := run("seed=11,error=0.3")
	if b := run("seed=11,error=0.3"); a != b {
		t.Fatal("same seed produced different sequences")
	}
	if c := run("seed=12,error=0.3"); a == c {
		t.Fatal("different seeds produced identical sequences")
	}
	if !strings.Contains(a, "e") || !strings.Contains(a, "n") {
		t.Fatalf("p=0.3 sequence is degenerate: %s", a)
	}
}

// TestLatencyHonorsContext: the injected sleep aborts when the solve
// context dies, returning its error instead of stalling shutdown.
func TestLatencyHonorsContext(t *testing.T) {
	in, err := Parse("latency=10s")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	t0 := time.Now()
	if err := in.Inject(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(t0) > 5*time.Second {
		t.Fatal("injected latency ignored the dying context")
	}
	if _, _, d := in.Counts(); d != 1 {
		t.Fatalf("delays = %d, want 1", d)
	}
}
