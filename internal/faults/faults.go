// Package faults is the deterministic fault-injection layer behind
// `mixtimed -inject`: a seeded injector that can delay a solve, fail
// it with a transient error, or panic inside it, so the daemon's
// containment paths (recover barrier, load shedding, client retry)
// are exercisable on demand and testable byte-for-byte.
//
// Determinism contract: all randomness comes from one seeded PCG
// stream consumed under a mutex, so the k-th Inject call draws the
// k-th value of the stream regardless of which goroutine issues it.
// A probability of 1 consumes no randomness at all — `panic=1:4`
// means "the first four solves panic, then the injector disarms",
// which is the fully deterministic shape the chaos smoke relies on.
package faults

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected marks a fault-injected transient error: the solve did
// not run, and an identical retry may succeed. The service layer
// reports it like any other solve failure; clients classify it as
// retryable by status, not by unwrapping this sentinel.
var ErrInjected = errors.New("faults: injected transient error")

// Injector decides, per solve, whether to inject a fault. Construct
// with Parse; a nil *Injector is valid and injects nothing, which is
// how the un-instrumented daemon pays zero cost.
type Injector struct {
	seed     uint64
	panicP   float64
	panicCap int64 // remaining panics; -1 = unlimited
	errP     float64
	errCap   int64 // remaining errors; -1 = unlimited
	latency  time.Duration
	latencyP float64

	mu  sync.Mutex
	rng *rand.Rand

	panics atomic.Int64
	errs   atomic.Int64
	delays atomic.Int64
}

// Parse builds an injector from a comma-separated spec of k=v fields:
//
//	seed=N           PCG seed for the probability draws (default 1)
//	panic=P[:N]      panic inside the solve with probability P,
//	                 at most N times (omitted N = unlimited)
//	error=P[:N]      fail the solve with ErrInjected, same shape
//	latency=D[:P]    sleep D before the solve with probability P
//	                 (omitted P = always)
//
// Example: "seed=7,panic=1:4,latency=40ms" — the first four solves
// panic, and every solve stalls 40ms first.
func Parse(spec string) (*Injector, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("faults: empty injection spec")
	}
	in := &Injector{seed: 1, panicCap: -1, errCap: -1, latencyP: 1}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok || v == "" {
			return nil, fmt.Errorf("faults: field %q is not key=value", field)
		}
		switch k {
		case "seed":
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faults: seed %q: %w", v, err)
			}
			in.seed = seed
		case "panic":
			p, cap, err := parseProbCap(v)
			if err != nil {
				return nil, fmt.Errorf("faults: panic %q: %w", v, err)
			}
			in.panicP, in.panicCap = p, cap
		case "error":
			p, cap, err := parseProbCap(v)
			if err != nil {
				return nil, fmt.Errorf("faults: error %q: %w", v, err)
			}
			in.errP, in.errCap = p, cap
		case "latency":
			durStr, probStr, hasProb := strings.Cut(v, ":")
			d, err := time.ParseDuration(durStr)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("faults: latency %q: bad duration", v)
			}
			in.latency = d
			if hasProb {
				p, err := parseProb(probStr)
				if err != nil {
					return nil, fmt.Errorf("faults: latency %q: %w", v, err)
				}
				in.latencyP = p
			}
		default:
			return nil, fmt.Errorf("faults: unknown field %q (want seed, panic, error or latency)", k)
		}
	}
	in.rng = rand.New(rand.NewPCG(in.seed, 0xfa17))
	return in, nil
}

// parseProbCap parses "P" or "P:N".
func parseProbCap(v string) (float64, int64, error) {
	probStr, capStr, hasCap := strings.Cut(v, ":")
	p, err := parseProb(probStr)
	if err != nil {
		return 0, 0, err
	}
	n := int64(-1)
	if hasCap {
		n, err = strconv.ParseInt(capStr, 10, 64)
		if err != nil || n < 0 {
			return 0, 0, fmt.Errorf("bad cap %q", capStr)
		}
	}
	return p, n, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil || p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %q not in [0, 1]", s)
	}
	return p, nil
}

// action is what one Inject call resolved to, beyond an optional
// sleep.
type action int

const (
	actNone action = iota
	actError
	actPanic
)

// draw resolves the injected behavior for one solve. Draws are
// serialized so the decision sequence is a pure function of the seed.
// Panic is checked before error (the severer fault wins the slot);
// a probability of exactly 1 short-circuits without consuming
// randomness so capped always-fire specs stay schedule-independent.
func (in *Injector) draw() (sleep bool, act action) {
	in.mu.Lock()
	defer in.mu.Unlock()
	hit := func(p float64) bool {
		if p <= 0 {
			return false
		}
		return p >= 1 || in.rng.Float64() < p
	}
	if in.latency > 0 && hit(in.latencyP) {
		sleep = true
	}
	if in.panicCap != 0 && hit(in.panicP) {
		if in.panicCap > 0 {
			in.panicCap--
		}
		return sleep, actPanic
	}
	if in.errCap != 0 && hit(in.errP) {
		if in.errCap > 0 {
			in.errCap--
		}
		return sleep, actError
	}
	return sleep, actNone
}

// Inject applies at most one fault for the calling solve: an optional
// context-aware sleep, then either a transient error return or a
// panic. A nil injector injects nothing. The caller is expected to
// run under a recover barrier — that barrier is exactly what the
// panic mode exists to prove.
func (in *Injector) Inject(ctx context.Context) error {
	if in == nil {
		return nil
	}
	sleep, act := in.draw()
	if sleep {
		in.delays.Add(1)
		t := time.NewTimer(in.latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	switch act {
	case actError:
		return fmt.Errorf("%w #%d", ErrInjected, in.errs.Add(1))
	case actPanic:
		panic(fmt.Sprintf("faults: injected solve panic #%d", in.panics.Add(1)))
	}
	return nil
}

// Counts reports how many faults of each kind have fired.
func (in *Injector) Counts() (panics, errors, delays int64) {
	if in == nil {
		return 0, 0, 0
	}
	return in.panics.Load(), in.errs.Load(), in.delays.Load()
}

// String renders the armed configuration for startup logs.
func (in *Injector) String() string {
	if in == nil {
		return "faults: disarmed"
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("seed=%d", in.seed))
	if in.panicP > 0 && in.panicCap != 0 {
		parts = append(parts, fmt.Sprintf("panic=%v:%s", in.panicP, capString(in.panicCap)))
	}
	if in.errP > 0 && in.errCap != 0 {
		parts = append(parts, fmt.Sprintf("error=%v:%s", in.errP, capString(in.errCap)))
	}
	if in.latency > 0 && in.latencyP > 0 {
		parts = append(parts, fmt.Sprintf("latency=%v:%v", in.latency, in.latencyP))
	}
	return strings.Join(parts, ",")
}

func capString(c int64) string {
	if c < 0 {
		return "∞"
	}
	return strconv.FormatInt(c, 10)
}
