// Package community implements community detection — label
// propagation and Louvain modularity optimization — together with the
// modularity measure. The paper's §2/§5 cite Viswanath et al.'s
// finding that random-walk Sybil defenses are, at their core,
// community detectors around the verifier, and that slow mixing *is*
// community structure; this package makes the comparison executable.
package community

import (
	"math/rand/v2"

	"mixtime/internal/graph"
)

// Labels assigns every vertex a community id in [0, k).
type Labels []int32

// NumCommunities returns the number of distinct communities.
func (l Labels) NumCommunities() int {
	seen := map[int32]bool{}
	for _, c := range l {
		seen[c] = true
	}
	return len(seen)
}

// Normalize relabels communities to the contiguous range [0, k) in
// first-appearance order and returns k.
func (l Labels) Normalize() int {
	remap := map[int32]int32{}
	for i, c := range l {
		nc, ok := remap[c]
		if !ok {
			nc = int32(len(remap))
			remap[c] = nc
		}
		l[i] = nc
	}
	return len(remap)
}

// CommunityOf returns the member set of v's community.
func CommunityOf(l Labels, v graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	for u, c := range l {
		if c == l[v] {
			out = append(out, graph.NodeID(u))
		}
	}
	return out
}

// Modularity returns Newman's modularity Q ∈ [−0.5, 1) of the
// labeling: the fraction of edges inside communities minus the
// expectation under the degree-preserving null model.
func Modularity(g *graph.Graph, l Labels) float64 {
	m2 := float64(2 * g.NumEdges())
	if m2 == 0 {
		return 0
	}
	inside := map[int32]float64{} // 2×edges within community c
	degSum := map[int32]float64{}
	for v := 0; v < g.NumNodes(); v++ {
		c := l[v]
		degSum[c] += float64(g.Degree(graph.NodeID(v)))
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			if l[w] == c {
				inside[c]++
			}
		}
	}
	var q float64
	for c, in := range inside {
		q += in/m2 - (degSum[c]/m2)*(degSum[c]/m2)
	}
	// Communities with no internal edges still contribute the null
	// term.
	for c, d := range degSum {
		if _, ok := inside[c]; !ok {
			q -= (d / m2) * (d / m2)
		}
	}
	return q
}

// LabelPropagation runs asynchronous label propagation: every node
// repeatedly adopts the most frequent label among its neighbors
// (ties broken randomly), until a sweep changes nothing or maxSweeps
// elapse. Fast and parameter-free; communities are whatever the graph
// agrees on.
func LabelPropagation(g *graph.Graph, maxSweeps int, rng *rand.Rand) Labels {
	n := g.NumNodes()
	labels := make(Labels, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	if maxSweeps <= 0 {
		maxSweeps = 100
	}
	order := make([]graph.NodeID, n)
	for i := range order {
		order[i] = graph.NodeID(i)
	}
	counts := map[int32]int{}
	var best []int32
	for sweep := 0; sweep < maxSweeps; sweep++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := false
		for _, v := range order {
			adj := g.Neighbors(v)
			if len(adj) == 0 {
				continue
			}
			clear(counts)
			for _, w := range adj {
				counts[labels[w]]++
			}
			max := 0
			best = best[:0]
			for c, k := range counts {
				if k > max {
					max = k
					best = best[:0]
				}
				if k == max {
					best = append(best, c)
				}
			}
			pick := best[0]
			if len(best) > 1 {
				// Deterministic tie-break under a seeded rng: pick the
				// smallest among the tied labels unless rng moves us,
				// keeping runs reproducible.
				min := best[0]
				for _, c := range best[1:] {
					if c < min {
						min = c
					}
				}
				pick = min
				if rng.IntN(4) == 0 {
					pick = best[rng.IntN(len(best))]
				}
			}
			if pick != labels[v] {
				labels[v] = pick
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	labels.Normalize()
	return labels
}
