package community

import (
	"math/rand/v2"

	"mixtime/internal/graph"
)

// Louvain runs the Louvain method: greedy local modularity moves
// followed by community aggregation, repeated until modularity stops
// improving. Returns the flat labeling of the original vertices.
func Louvain(g *graph.Graph, rng *rand.Rand) Labels {
	n := g.NumNodes()
	labels := make(Labels, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	if n == 0 {
		return labels
	}

	// Working multigraph: weighted adjacency with self-loops for
	// aggregated internal edges.
	type wgraph struct {
		adj  []map[int32]float64
		self []float64 // 2×internal weight
		deg  []float64 // weighted degree incl. self-loops
		m2   float64
	}
	cur := &wgraph{
		adj:  make([]map[int32]float64, n),
		self: make([]float64, n),
		deg:  make([]float64, n),
	}
	for v := 0; v < n; v++ {
		cur.adj[v] = make(map[int32]float64, g.Degree(graph.NodeID(v)))
		for _, w := range g.Neighbors(graph.NodeID(v)) {
			cur.adj[v][int32(w)] = 1
		}
		cur.deg[v] = float64(g.Degree(graph.NodeID(v)))
		cur.m2 += cur.deg[v]
	}
	if cur.m2 == 0 {
		return labels
	}

	// membership maps original vertices to current-level nodes.
	membership := make([]int32, n)
	for i := range membership {
		membership[i] = int32(i)
	}

	for level := 0; level < 32; level++ {
		k := len(cur.adj)
		comm := make([]int32, k)
		commDeg := make([]float64, k) // Σ deg of community members
		for i := 0; i < k; i++ {
			comm[i] = int32(i)
			commDeg[i] = cur.deg[i]
		}

		// Phase 1: local moving.
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		improvedAny := false
		for pass := 0; pass < 64; pass++ {
			rng.Shuffle(k, func(i, j int) { order[i], order[j] = order[j], order[i] })
			moved := false
			for _, v := range order {
				cv := comm[v]
				// Weights from v to each neighboring community.
				toComm := map[int32]float64{}
				for u, w := range cur.adj[v] {
					toComm[comm[u]] += w
				}
				commDeg[cv] -= cur.deg[v]
				bestC := cv
				bestGain := toComm[cv] - commDeg[cv]*cur.deg[v]/cur.m2
				for c, w := range toComm {
					if c == cv {
						continue
					}
					gain := w - commDeg[c]*cur.deg[v]/cur.m2
					if gain > bestGain+1e-12 {
						bestGain = gain
						bestC = c
					}
				}
				commDeg[bestC] += cur.deg[v]
				if bestC != cv {
					comm[v] = bestC
					moved = true
					improvedAny = true
				}
			}
			if !moved {
				break
			}
		}
		if !improvedAny {
			break
		}

		// Relabel communities densely.
		remap := map[int32]int32{}
		for _, c := range comm {
			if _, ok := remap[c]; !ok {
				remap[c] = int32(len(remap))
			}
		}
		nk := len(remap)
		for v := range comm {
			comm[v] = remap[comm[v]]
		}
		for i := range membership {
			membership[i] = comm[membership[i]]
		}

		// Phase 2: aggregate.
		next := &wgraph{
			adj:  make([]map[int32]float64, nk),
			self: make([]float64, nk),
			deg:  make([]float64, nk),
			m2:   cur.m2,
		}
		for i := range next.adj {
			next.adj[i] = map[int32]float64{}
		}
		for v := 0; v < k; v++ {
			cv := comm[v]
			next.self[cv] += cur.self[v]
			next.deg[cv] += cur.deg[v]
			for u, w := range cur.adj[v] {
				cu := comm[int(u)]
				if cu == cv {
					next.self[cv] += w // each internal edge seen twice
				} else {
					next.adj[cv][cu] += w
				}
			}
		}
		if nk == k {
			break // no aggregation happened; fixed point
		}
		cur = next
	}

	copy(labels, membership)
	labels.Normalize()
	return labels
}
