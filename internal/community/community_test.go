package community

import (
	"math"
	"math/rand/v2"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0xc0)) }

func TestLabelsHelpers(t *testing.T) {
	l := Labels{5, 5, 9, 5, 2}
	if l.NumCommunities() != 3 {
		t.Fatalf("%d communities", l.NumCommunities())
	}
	k := l.Normalize()
	if k != 3 || l[0] != 0 || l[2] != 1 || l[4] != 2 {
		t.Fatalf("normalized %v (k=%d)", l, k)
	}
	members := CommunityOf(l, 0)
	if len(members) != 3 {
		t.Fatalf("community of 0: %v", members)
	}
}

func TestModularityKnownValues(t *testing.T) {
	// Two disjoint triangles joined by nothing: labeling by triangle
	// has Q = 1 - 2·(1/2)² = 0.5.
	b := graph.NewBuilder(0)
	for _, base := range []graph.NodeID{0, 3} {
		b.AddEdge(base, base+1)
		b.AddEdge(base+1, base+2)
		b.AddEdge(base+2, base)
	}
	g := b.Build()
	q := Modularity(g, Labels{0, 0, 0, 1, 1, 1})
	if math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("Q = %v, want 0.5", q)
	}
	// All-in-one labeling: Q = 0.
	if q := Modularity(g, Labels{0, 0, 0, 0, 0, 0}); math.Abs(q) > 1e-12 {
		t.Fatalf("single-community Q = %v", q)
	}
	// Singleton labeling on K4: strictly negative.
	k4 := gen.Complete(4)
	if q := Modularity(k4, Labels{0, 1, 2, 3}); q >= 0 {
		t.Fatalf("singleton Q = %v", q)
	}
}

func TestLabelPropagationFindsPlantedCommunities(t *testing.T) {
	g := gen.PlantedPartition(4, 50, 0.3, 0.002, rng(1))
	lcc, orig := graph.LargestComponent(g)
	labels := LabelPropagation(lcc, 100, rng(2))
	q := Modularity(lcc, labels)
	if q < 0.5 {
		t.Fatalf("LPA modularity %v on strongly planted partition", q)
	}
	// Nodes from the same planted block should mostly share labels.
	agree, total := 0, 0
	for i := 0; i < lcc.NumNodes(); i++ {
		for j := i + 1; j < i+10 && j < lcc.NumNodes(); j++ {
			if int(orig[i])/50 == int(orig[j])/50 {
				total++
				if labels[i] == labels[j] {
					agree++
				}
			}
		}
	}
	if total > 0 && float64(agree)/float64(total) < 0.8 {
		t.Fatalf("within-block agreement %v", float64(agree)/float64(total))
	}
}

func TestLouvainFindsPlantedCommunities(t *testing.T) {
	g := gen.PlantedPartition(4, 50, 0.3, 0.002, rng(3))
	lcc, _ := graph.LargestComponent(g)
	labels := Louvain(lcc, rng(4))
	q := Modularity(lcc, labels)
	if q < 0.6 {
		t.Fatalf("Louvain modularity %v", q)
	}
	k := labels.NumCommunities()
	if k < 3 || k > 12 {
		t.Fatalf("Louvain found %d communities, planted 4", k)
	}
}

func TestLouvainBeatsTrivialLabelings(t *testing.T) {
	g := gen.RelaxedCaveman(10, 8, 0.1, rng(5))
	lcc, _ := graph.LargestComponent(g)
	labels := Louvain(lcc, rng(6))
	q := Modularity(lcc, labels)
	single := make(Labels, lcc.NumNodes())
	if q <= Modularity(lcc, single) {
		t.Fatalf("Louvain Q=%v no better than single community", q)
	}
	singletons := make(Labels, lcc.NumNodes())
	for i := range singletons {
		singletons[i] = int32(i)
	}
	if q <= Modularity(lcc, singletons) {
		t.Fatalf("Louvain Q=%v no better than singletons", q)
	}
}

func TestLouvainOnCliqueIsOneCommunity(t *testing.T) {
	labels := Louvain(gen.Complete(12), rng(7))
	if labels.NumCommunities() != 1 {
		t.Fatalf("K12 split into %d communities", labels.NumCommunities())
	}
}

func TestDetectorsOnEmptyAndTinyGraphs(t *testing.T) {
	empty := &graph.Graph{}
	if l := Louvain(empty, rng(8)); len(l) != 0 {
		t.Fatal("empty Louvain labels")
	}
	if l := LabelPropagation(empty, 10, rng(8)); len(l) != 0 {
		t.Fatal("empty LPA labels")
	}
	edge := gen.Path(2)
	l := Louvain(edge, rng(9))
	if len(l) != 2 {
		t.Fatalf("path labels %v", l)
	}
}

func TestFastMixingGraphHasLowModularity(t *testing.T) {
	// The spectral story in reverse: an expander-like BA graph should
	// admit only weak communities compared to the caveman graph.
	ba := gen.BarabasiAlbert(400, 5, rng(10))
	cave, _ := graph.LargestComponent(gen.RelaxedCaveman(50, 8, 0.05, rng(11)))
	qBA := Modularity(ba, Louvain(ba, rng(12)))
	qCave := Modularity(cave, Louvain(cave, rng(13)))
	if qBA >= qCave {
		t.Fatalf("BA Q=%v not below caveman Q=%v", qBA, qCave)
	}
	if qCave < 0.7 {
		t.Fatalf("caveman Q=%v unexpectedly low", qCave)
	}
}
