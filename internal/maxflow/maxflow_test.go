package maxflow

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMaxFlowClassic(t *testing.T) {
	// The textbook 6-node example with max flow 23.
	nw := NewNetwork(6)
	nw.AddEdge(0, 1, 16)
	nw.AddEdge(0, 2, 13)
	nw.AddEdge(1, 2, 10)
	nw.AddEdge(2, 1, 4)
	nw.AddEdge(1, 3, 12)
	nw.AddEdge(3, 2, 9)
	nw.AddEdge(2, 4, 14)
	nw.AddEdge(4, 3, 7)
	nw.AddEdge(3, 5, 20)
	nw.AddEdge(4, 5, 4)
	f, err := nw.MaxFlow(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if f != 23 {
		t.Fatalf("flow = %d, want 23", f)
	}
}

func TestMaxFlowSimplePath(t *testing.T) {
	nw := NewNetwork(3)
	nw.AddEdge(0, 1, 5)
	nw.AddEdge(1, 2, 3)
	f, err := nw.MaxFlow(0, 2)
	if err != nil || f != 3 {
		t.Fatalf("flow %d err %v", f, err)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 5)
	nw.AddEdge(2, 3, 5)
	f, err := nw.MaxFlow(0, 3)
	if err != nil || f != 0 {
		t.Fatalf("flow %d err %v", f, err)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	nw := NewNetwork(2)
	if _, err := nw.MaxFlow(0, 0); err == nil {
		t.Fatal("s==t accepted")
	}
	if _, err := nw.MaxFlow(-1, 1); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := nw.MaxFlow(0, 5); err == nil {
		t.Fatal("out-of-range sink accepted")
	}
}

func TestUndirectedEdgeFlow(t *testing.T) {
	// A ring of undirected unit edges: two disjoint paths s→t.
	nw := NewNetwork(4)
	nw.AddUndirectedEdge(0, 1, 1)
	nw.AddUndirectedEdge(1, 2, 1)
	nw.AddUndirectedEdge(2, 3, 1)
	nw.AddUndirectedEdge(3, 0, 1)
	f, err := nw.MaxFlow(0, 2)
	if err != nil || f != 2 {
		t.Fatalf("ring flow %d err %v", f, err)
	}
}

func TestBipartiteMatchingViaFlow(t *testing.T) {
	// 3×3 bipartite: left {1,2,3}, right {4,5,6}, source 0, sink 7.
	// Perfect matching exists.
	nw := NewNetwork(8)
	for l := 1; l <= 3; l++ {
		nw.AddEdge(0, l, 1)
		nw.AddEdge(l+3, 7, 1)
	}
	nw.AddEdge(1, 4, 1)
	nw.AddEdge(1, 5, 1)
	nw.AddEdge(2, 5, 1)
	nw.AddEdge(3, 5, 1)
	nw.AddEdge(3, 6, 1)
	f, err := nw.MaxFlow(0, 7)
	if err != nil || f != 3 {
		t.Fatalf("matching %d err %v", f, err)
	}
}

func TestMinCutSide(t *testing.T) {
	// Bottleneck edge 1→2 with capacity 1: cut separates {0,1}.
	nw := NewNetwork(4)
	nw.AddEdge(0, 1, 10)
	nw.AddEdge(1, 2, 1)
	nw.AddEdge(2, 3, 10)
	f, err := nw.MaxFlow(0, 3)
	if err != nil || f != 1 {
		t.Fatalf("flow %d err %v", f, err)
	}
	side := nw.MinCutSide(0)
	if !side[0] || !side[1] || side[2] || side[3] {
		t.Fatalf("cut side %v", side)
	}
}

// Property: max flow equals the capacity of the min cut it certifies,
// and never exceeds the source's outgoing capacity.
func TestQuickMaxFlowMinCut(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0xf10))
		n := 6 + int(seed%10)
		type arc struct {
			u, v int
			c    int64
		}
		var arcs []arc
		nw := NewNetwork(n)
		var srcCap int64
		for k := 0; k < 3*n; k++ {
			u, v := rng.IntN(n), rng.IntN(n)
			if u == v {
				continue
			}
			c := int64(1 + rng.IntN(9))
			nw.AddEdge(u, v, c)
			arcs = append(arcs, arc{u, v, c})
			if u == 0 {
				srcCap += c
			}
		}
		flow, err := nw.MaxFlow(0, n-1)
		if err != nil {
			return false
		}
		if flow > srcCap {
			return false
		}
		// Cut capacity across (S, V∖S) must equal the flow.
		side := nw.MinCutSide(0)
		if side[n-1] {
			return false // sink must be separated
		}
		var cut int64
		for _, a := range arcs {
			if side[a.u] && !side[a.v] {
				cut += a.c
			}
		}
		return cut == flow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
