// Package maxflow implements Dinic's maximum-flow algorithm on unit-
// and integer-capacity networks. It is the substrate for SumUp (Tran
// et al., NSDI 2009), the vote-collection Sybil defense the paper
// cites: SumUp bounds bogus votes by the max-flow between voters and
// a vote collector, so reproducing it requires a real flow solver.
//
// Build a Network with NewNetwork/AddEdge (AddUndirectedEdge for the
// social-graph case, where capacity applies in both directions), then
// call MaxFlow once per (s, t) pair; per-edge flows are readable
// afterwards via Flow and the s-side of a minimum cut via MinCutSide.
// Dinic's runs in O(V²E) generally and O(E√V) on the unit-capacity
// networks SumUp's ticket envelope produces; the level-graph BFS and
// blocking-flow DFS are iterative, so deep networks cannot overflow
// the goroutine stack.
package maxflow

import (
	"errors"
	"math"
)

// Network is a directed flow network under construction. Nodes are
// dense integers [0, n).
type Network struct {
	n     int
	heads [][]int32 // per node, indices into edges
	edges []edge
}

type edge struct {
	to  int32
	cap int64
	// rev is the index of the reverse edge in edges.
	rev int32
}

// NewNetwork creates a network with n nodes.
func NewNetwork(n int) *Network {
	return &Network{n: n, heads: make([][]int32, n)}
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return nw.n }

// AddEdge adds a directed edge u→v with the given capacity (and the
// implicit residual reverse edge of capacity 0). It returns the edge
// handle for later inspection via ResidualCap/Flow.
func (nw *Network) AddEdge(u, v int, capacity int64) int {
	idx := len(nw.edges)
	nw.heads[u] = append(nw.heads[u], int32(idx))
	nw.edges = append(nw.edges, edge{to: int32(v), cap: capacity, rev: int32(idx + 1)})
	nw.heads[v] = append(nw.heads[v], int32(idx+1))
	nw.edges = append(nw.edges, edge{to: int32(u), cap: 0, rev: int32(idx)})
	return idx
}

// ResidualCap returns the remaining capacity of the edge handle.
func (nw *Network) ResidualCap(idx int) int64 { return nw.edges[idx].cap }

// Flow returns the flow pushed through the edge handle (its reverse
// residual).
func (nw *Network) Flow(idx int) int64 { return nw.edges[nw.edges[idx].rev].cap }

// AddUndirectedEdge adds capacity in both directions (two directed
// edges each acting as the other's residual).
func (nw *Network) AddUndirectedEdge(u, v int, capacity int64) {
	nw.heads[u] = append(nw.heads[u], int32(len(nw.edges)))
	nw.edges = append(nw.edges, edge{to: int32(v), cap: capacity, rev: int32(len(nw.edges) + 1)})
	nw.heads[v] = append(nw.heads[v], int32(len(nw.edges)))
	nw.edges = append(nw.edges, edge{to: int32(u), cap: capacity, rev: int32(len(nw.edges) - 1)})
}

// MaxFlow computes the maximum s→t flow by Dinic's algorithm:
// repeated BFS level graphs with blocking flows found by scaled DFS.
// The Network retains the residual state afterwards; call Reset or
// rebuild to reuse. Returns an error for invalid endpoints.
func (nw *Network) MaxFlow(s, t int) (int64, error) {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n {
		return 0, errors.New("maxflow: endpoint out of range")
	}
	if s == t {
		return 0, errors.New("maxflow: source equals sink")
	}
	level := make([]int32, nw.n)
	iter := make([]int, nw.n)
	queue := make([]int32, 0, nw.n)

	bfs := func() bool {
		for i := range level {
			level[i] = -1
		}
		queue = queue[:0]
		queue = append(queue, int32(s))
		level[s] = 0
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, ei := range nw.heads[v] {
				e := &nw.edges[ei]
				if e.cap > 0 && level[e.to] < 0 {
					level[e.to] = level[v] + 1
					queue = append(queue, e.to)
				}
			}
		}
		return level[t] >= 0
	}

	var dfs func(v int, f int64) int64
	dfs = func(v int, f int64) int64 {
		if v == t {
			return f
		}
		for ; iter[v] < len(nw.heads[v]); iter[v]++ {
			ei := nw.heads[v][iter[v]]
			e := &nw.edges[ei]
			if e.cap <= 0 || level[e.to] != level[v]+1 {
				continue
			}
			d := dfs(int(e.to), min64(f, e.cap))
			if d > 0 {
				e.cap -= d
				nw.edges[e.rev].cap += d
				return d
			}
		}
		return 0
	}

	var flow int64
	for bfs() {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := dfs(s, math.MaxInt64)
			if f == 0 {
				break
			}
			flow += f
		}
	}
	return flow, nil
}

// MinCutSide returns the source side of a minimum s-t cut after
// MaxFlow has run: the nodes reachable from s in the residual graph.
func (nw *Network) MinCutSide(s int) []bool {
	side := make([]bool, nw.n)
	queue := []int32{int32(s)}
	side[s] = true
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, ei := range nw.heads[v] {
			e := &nw.edges[ei]
			if e.cap > 0 && !side[e.to] {
				side[e.to] = true
				queue = append(queue, e.to)
			}
		}
	}
	return side
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
