package runner

import (
	"time"

	"mixtime/internal/api"
	"mixtime/internal/telemetry"
)

// Canonical experiment defaults. The single source of truth now lives
// in internal/api (the versioned wire schema shares them with the
// daemon and the load generator); these aliases remain so existing
// callers keep compiling.
//
// Deprecated: read the api.Default* constants directly.
const (
	DefaultScale       = api.DefaultScale
	DefaultSeed        = api.DefaultSeed
	DefaultSources     = api.DefaultSources
	DefaultMaxWalk     = api.DefaultMaxWalk
	DefaultSpectralTol = api.DefaultSpectralTol
	DefaultBlockSize   = api.DefaultBlockSize
)

// Config scales and seeds an experiment run. It is the uniform
// configuration every registered experiment receives; drivers with
// extra knobs (protocol parameters, sweep overrides) embed it in
// their extended config and fill the rest with defaults.
type Config struct {
	// Scale multiplies every dataset's node count (default
	// DefaultScale: the million-node graphs become 10k — the paper's
	// measurements used a cluster; see EXPERIMENTS.md for the recorded
	// scale per run).
	Scale float64
	// Seed makes runs deterministic. Zero is a valid seed: defaults
	// never overwrite it (use DefaultConfig for the conventional
	// seed 1). Experiments derive all their random streams from Seed
	// alone, so results are independent of scheduling order.
	Seed uint64
	// Sources is the number of start vertices for direct measurements
	// (default DefaultSources; the paper uses 1000 on large graphs and
	// all vertices on the physics graphs).
	Sources int
	// MaxWalk caps propagated walk lengths (default DefaultMaxWalk,
	// the paper's longest probe).
	MaxWalk int
	// SpectralTol is the SLEM tolerance (default DefaultSpectralTol).
	SpectralTol float64
	// BlockSize is the number of source distributions propagated per
	// blocked CSR pass (default DefaultBlockSize); 1 degenerates to
	// per-source matvecs. Traces are byte-identical for any value.
	BlockSize int
	// Workers bounds the kernel parallelism inside one experiment:
	// blocked-trace fan-out and row-sharded matvecs (0 = GOMAXPROCS on
	// graphs large enough to amortize it, 1 = sequential). Output is
	// byte-identical for any value; combined with Runner.Jobs > 1 the
	// pools can oversubscribe the cores, which wastes nothing but
	// scheduling.
	Workers int
	// MaxAttempts is each experiment's attempt budget: a failing
	// experiment (panic, per-attempt timeout, transient error) is
	// retried until it succeeds or the budget is spent. 0 and 1 both
	// mean a single attempt, i.e. no retries; fatal failures (run
	// cancellation, errors marked runner.Fatal) never retry. Retries
	// re-run the driver from the same Config, so a retried success is
	// byte-identical to a first-attempt success.
	MaxAttempts int
	// RetryBackoff is the sleep before the second attempt; it doubles
	// for each further retry and aborts early when the run is
	// cancelled. Zero retries immediately.
	RetryBackoff time.Duration
	// PerExperimentTimeout bounds each attempt with a derived
	// context.WithTimeout. The deadline fails only that attempt
	// (classified retryable), never the whole run. Zero means no
	// per-attempt deadline.
	PerExperimentTimeout time.Duration
	// Collector, if non-nil, turns kernel telemetry on: drivers thread
	// it into the markov and spectral hot paths, which count edges
	// scanned, matvecs, SpMM blocks, solver iterations and restarts
	// into it. The Runner gives each experiment a child collector and
	// merges the children here, so per-experiment snapshots appear in
	// ExperimentReport.Telemetry while this collector accumulates the
	// whole run. Telemetry never changes experiment output: results
	// are byte-identical with or without a collector.
	Collector *telemetry.Collector
}

// DefaultConfig returns the canonical configuration, including the
// conventional Seed 1. This is the only place the default seed is
// applied; WithDefaults leaves Seed untouched.
func DefaultConfig() Config {
	return Config{
		Scale:       DefaultScale,
		Seed:        DefaultSeed,
		Sources:     DefaultSources,
		MaxWalk:     DefaultMaxWalk,
		SpectralTol: DefaultSpectralTol,
		BlockSize:   DefaultBlockSize,
	}
}

// WithDefaults fills unset (zero or negative) fields with the
// canonical defaults. Seed is deliberately left alone: zero is a
// usable seed, not a sentinel.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = DefaultScale
	}
	if c.Sources <= 0 {
		c.Sources = DefaultSources
	}
	if c.MaxWalk <= 0 {
		c.MaxWalk = DefaultMaxWalk
	}
	if c.SpectralTol <= 0 {
		c.SpectralTol = DefaultSpectralTol
	}
	if c.BlockSize <= 0 {
		c.BlockSize = DefaultBlockSize
	}
	// Workers is deliberately left alone: 0 means "GOMAXPROCS where it
	// pays off", which is the default behaviour.
	return c
}

// ConfigFromParams bridges the wire-schema parameter surface into the
// runner's Config: the shared knobs copy over, the runner-only ones
// (retries, timeouts, collector) stay zero for the caller to fill.
// Params is the boundary type; Config stays the internal carrier the
// drivers consume.
func ConfigFromParams(p api.Params) Config {
	p = p.WithDefaults()
	return Config{
		Scale:       p.Scale,
		Seed:        p.Seed,
		Sources:     p.Sources,
		MaxWalk:     p.MaxWalk,
		SpectralTol: p.SpectralTol,
		BlockSize:   p.BlockSize,
		Workers:     p.Workers,
	}
}
