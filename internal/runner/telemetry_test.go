package runner

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"mixtime/internal/telemetry"
)

// instrumentedRun returns a RunFunc that bumps the run's collector —
// standing in for a driver whose kernels count edges and matvecs.
func instrumentedRun(out string, matvecs, edges int64) RunFunc {
	return func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		if cfg.Collector != nil {
			cfg.Collector.Add(telemetry.Matvecs, matvecs)
			cfg.Collector.Add(telemetry.EdgesScanned, edges)
		}
		return textResult(out), nil
	}
}

// TestRunnerChildCollectorsMergeIntoParent verifies the attribution
// scheme: each experiment gets a fresh child collector (so parallel
// experiments don't blur together), its snapshot lands on the
// experiment report and a KindTelemetry event, and the run-wide
// parent holds the merged totals.
func TestRunnerChildCollectorsMergeIntoParent(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "A", Run: instrumentedRun("a", 10, 1000)})
	reg.MustRegister(Def{ID: "B", Run: instrumentedRun("b", 32, 4096)})

	var events []Event
	obs := ObserverFunc(func(e Event) {
		if e.Kind == KindTelemetry {
			events = append(events, e)
		}
	})
	parent := telemetry.New()
	r := &Runner{Registry: reg, Jobs: 2, Observer: obs}
	rp, err := r.Run(context.Background(), Config{Collector: parent})
	if err != nil {
		t.Fatal(err)
	}

	perID := map[string]*telemetry.Snapshot{}
	for _, e := range rp.Experiments {
		if e.Telemetry == nil {
			t.Fatalf("%s: no telemetry snapshot on report", e.ID)
		}
		perID[e.ID] = e.Telemetry
	}
	if got := perID["A"].Get(telemetry.Matvecs); got != 10 {
		t.Errorf("A matvecs = %d, want 10", got)
	}
	if got := perID["B"].Get(telemetry.EdgesScanned); got != 4096 {
		t.Errorf("B edges = %d, want 4096", got)
	}

	merged := parent.Snapshot()
	if got := merged.Get(telemetry.Matvecs); got != 42 {
		t.Errorf("merged matvecs = %d, want 42", got)
	}
	if got := merged.Get(telemetry.EdgesScanned); got != 5096 {
		t.Errorf("merged edges = %d, want 5096", got)
	}

	if len(events) != 2 {
		t.Fatalf("KindTelemetry events = %d, want 2", len(events))
	}
	for _, e := range events {
		if e.Telemetry == nil || e.Experiment == "" {
			t.Errorf("telemetry event not stamped/filled: %+v", e)
		}
	}
}

// TestRunnerNoCollectorMeansNoTelemetry pins the opt-in contract: an
// uninstrumented run carries no snapshots and emits no telemetry
// events.
func TestRunnerNoCollectorMeansNoTelemetry(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "A", Run: instrumentedRun("a", 10, 1000)})
	var telemetryEvents int
	obs := ObserverFunc(func(e Event) {
		if e.Kind == KindTelemetry {
			telemetryEvents++
		}
	})
	r := &Runner{Registry: reg, Observer: obs}
	rp, err := r.Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Experiments[0].Telemetry != nil {
		t.Error("uninstrumented run grew a telemetry snapshot")
	}
	if telemetryEvents != 0 {
		t.Errorf("uninstrumented run emitted %d telemetry events", telemetryEvents)
	}
}

// TestTelemetrySnapshotEmissionDeterministic checks the Result-shaped
// emission of a populated snapshot: rendering CSV and JSON twice
// yields byte-identical output, and JSON round-trips.
func TestTelemetrySnapshotEmissionDeterministic(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "A", Run: instrumentedRun("a", 7, 700)})
	parent := telemetry.New()
	r := &Runner{Registry: reg}
	rp, err := r.Run(context.Background(), Config{Collector: parent})
	if err != nil {
		t.Fatal(err)
	}
	snap := rp.Experiments[0].Telemetry
	for _, emit := range []struct {
		name string
		f    func(w *bytes.Buffer) error
	}{
		{"csv", func(w *bytes.Buffer) error { return snap.CSV(w) }},
		{"json", func(w *bytes.Buffer) error { return snap.JSON(w) }},
	} {
		var b1, b2 bytes.Buffer
		if err := emit.f(&b1); err != nil {
			t.Fatal(err)
		}
		if err := emit.f(&b2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s emission not deterministic:\n%s\nvs\n%s", emit.name, b1.String(), b2.String())
		}
	}
}

// TestTelemetryTable checks the run-wide counter table: one row per
// instrumented experiment plus a sum row.
func TestTelemetryTable(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "A", Run: instrumentedRun("a", 10, 1000)})
	reg.MustRegister(Def{ID: "B", Run: instrumentedRun("b", 32, 4096)})
	parent := telemetry.New()
	r := &Runner{Registry: reg}
	rp, err := r.Run(context.Background(), Config{Collector: parent})
	if err != nil {
		t.Fatal(err)
	}
	table := rp.TelemetryTable()
	for _, want := range []string{"id", "matvecs", "A", "B", "sum", "5096", "42"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	if rpEmpty := (&Report{}).TelemetryTable(); rpEmpty != "" {
		t.Errorf("empty report should render an empty table, got %q", rpEmpty)
	}
}
