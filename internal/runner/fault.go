package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// PanicError is a driver panic converted into an ordinary error by
// the runner's per-attempt recover. It keeps the process (and the
// sibling experiments on other workers) alive while preserving the
// panic value and the goroutine stack for the report.
type PanicError struct {
	// Experiment is the registry ID of the panicking experiment.
	Experiment string
	// Value is the value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack, captured inside the
	// deferred recover.
	Stack []byte
}

// Error summarizes the panic; the stack is available separately so
// one-line summaries stay one line.
func (e *PanicError) Error() string {
	return fmt.Sprintf("panic in %s: %v", e.Experiment, e.Value)
}

// FailureClass classifies one attempt's failure for the retry loop.
type FailureClass int

const (
	// ClassRetryable failures (panics, per-attempt timeouts, transient
	// driver errors) are eligible for another attempt while the retry
	// budget lasts.
	ClassRetryable FailureClass = iota
	// ClassFatal failures (run cancellation, validation errors marked
	// with Fatal) stop the attempt loop immediately.
	ClassFatal
)

// String names the class for logs and summaries.
func (c FailureClass) String() string {
	if c == ClassFatal {
		return "fatal"
	}
	return "retryable"
}

// fatalError marks an error as not worth retrying.
type fatalError struct{ err error }

func (e *fatalError) Error() string { return e.err.Error() }
func (e *fatalError) Unwrap() error { return e.err }

// Fatal marks err as fatal: the attempt loop will not retry it.
// Drivers wrap validation errors (bad config, unknown dataset) this
// way, since re-running cannot fix them. A nil err stays nil.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return &fatalError{err: err}
}

// ClassifyFailure classifies an attempt failure. Run cancellation
// (context.Canceled) and errors marked with Fatal are fatal; panics,
// per-attempt deadline hits and everything else (transient I/O, a
// truncated download) are retryable.
func ClassifyFailure(err error) FailureClass {
	var fe *fatalError
	if errors.Is(err, context.Canceled) || errors.As(err, &fe) {
		return ClassFatal
	}
	return ClassRetryable
}

// safeRun executes one attempt of run under recover, converting a
// driver panic into a *PanicError instead of crashing the process.
func safeRun(ctx context.Context, id string, run RunFunc, cfg Config, obs Observer) (res Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res = nil
			err = &PanicError{Experiment: id, Value: v, Stack: debug.Stack()}
		}
	}()
	return run(ctx, cfg, obs)
}

// runAttempts drives one experiment through its retry/deadline
// budget: up to cfg.MaxAttempts attempts, each under a derived
// per-attempt deadline (cfg.PerExperimentTimeout), with exponential
// context-aware backoff (cfg.RetryBackoff doubling per retry) in
// between. It returns the first success or the last failure, plus
// the number of attempts consumed.
func (r *Runner) runAttempts(ctx context.Context, d Def, cfg Config, obs Observer) (Result, error, int) {
	run := d.Run
	if r.WrapRun != nil {
		run = r.WrapRun(d, run)
	}
	attempts := cfg.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	tried := 0
	for attempt := 1; attempt <= attempts; attempt++ {
		tried = attempt
		// Drop the failed attempt's partial counters so a retried
		// success reports the same telemetry as a first-attempt success.
		if attempt > 1 {
			cfg.Collector.Reset()
		}
		actx, cancel := ctx, context.CancelFunc(func() {})
		if cfg.PerExperimentTimeout > 0 {
			actx, cancel = context.WithTimeout(ctx, cfg.PerExperimentTimeout)
		}
		t0 := time.Now()
		res, err := safeRun(actx, d.ID, run, cfg, obs)
		cancel()
		if err == nil {
			return res, nil, attempt
		}
		// A deadline hit on the attempt context while the run context is
		// healthy is a per-experiment timeout, not a cancellation.
		if errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil && cfg.PerExperimentTimeout > 0 {
			err = fmt.Errorf("attempt %d timed out after %v: %w",
				attempt, cfg.PerExperimentTimeout, err)
		}
		lastErr = err
		class := ClassifyFailure(err)
		Emit(obs, Event{Kind: KindAttemptFailed, Experiment: d.ID,
			Attempt: attempt, Elapsed: time.Since(t0), Err: err})
		if class == ClassFatal || attempt == attempts || ctx.Err() != nil {
			break
		}
		backoff := cfg.RetryBackoff << (attempt - 1)
		Emit(obs, Event{Kind: KindRetrying, Experiment: d.ID,
			Attempt: attempt + 1, Elapsed: backoff, Err: err})
		if !sleepCtx(ctx, backoff) {
			break
		}
	}
	return nil, lastErr, tried
}

// sleepCtx sleeps for d unless ctx is cancelled first; it reports
// whether the full sleep elapsed. A non-positive d returns true
// immediately.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
