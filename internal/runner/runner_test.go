package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
)

// textResult is a trivial Result for fake experiments.
type textResult string

func (t textResult) Render() string         { return string(t) }
func (t textResult) CSV(w io.Writer) error  { _, err := io.WriteString(w, string(t)+"\n"); return err }
func (t textResult) JSON(w io.Writer) error { _, err := fmt.Fprintf(w, "%q\n", string(t)); return err }

func okRun(out string) RunFunc {
	return func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		return textResult(out), nil
	}
}

func TestRegistryRejectsDuplicatesAndEmpties(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(Def{ID: "", Run: okRun("x")}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if err := reg.Register(Def{ID: "T1"}); err == nil {
		t.Fatal("nil Run accepted")
	}
	if err := reg.Register(Def{ID: "T1", Name: "table1", Run: okRun("a")}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(Def{ID: "t1", Name: "other", Run: okRun("b")}); err == nil {
		t.Fatal("case-insensitive duplicate ID accepted")
	}
	if err := reg.Register(Def{ID: "F9", Name: "TABLE1", Run: okRun("c")}); err == nil {
		t.Fatal("name colliding with earlier name accepted")
	}
}

func TestRegistryResolveIsCaseInsensitive(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "F3", Name: "fig3", Run: okRun("x")})
	for _, key := range []string{"F3", "f3", "FIG3", "fig3", " f3 "} {
		if _, ok := reg.Resolve(key); !ok {
			t.Errorf("Resolve(%q) failed", key)
		}
	}
	if _, ok := reg.Resolve("nope"); ok {
		t.Error("Resolve of unknown key succeeded")
	}
}

func TestRegistryOrderIsRegistrationOrder(t *testing.T) {
	reg := NewRegistry()
	for _, id := range []string{"T1", "F2", "F1"} {
		reg.MustRegister(Def{ID: id, Run: okRun(id)})
	}
	got := reg.IDs()
	want := []string{"T1", "F2", "F1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", got, want)
		}
	}
	for i, d := range reg.Defs() {
		if d.ID != want[i] {
			t.Fatalf("Defs()[%d].ID = %s, want %s", i, d.ID, want[i])
		}
	}
}

func TestRunnerSchedulesAndReportsInRequestOrder(t *testing.T) {
	reg := NewRegistry()
	for _, id := range []string{"A", "B", "C", "D"} {
		reg.MustRegister(Def{ID: id, Run: okRun("result-" + id)})
	}
	r := &Runner{Registry: reg, Jobs: 3}
	report, err := r.Run(context.Background(), Config{}, "C", "A", "D")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Experiments) != 3 {
		t.Fatalf("got %d experiments, want 3", len(report.Experiments))
	}
	for i, want := range []string{"C", "A", "D"} {
		e := report.Experiments[i]
		if e.ID != want {
			t.Errorf("report[%d].ID = %s, want %s", i, e.ID, want)
		}
		if e.Err != nil || e.Result == nil {
			t.Errorf("report[%d] = err %v, result %v", i, e.Err, e.Result)
		} else if got := e.Result.Render(); got != "result-"+want {
			t.Errorf("report[%d].Render() = %q", i, got)
		}
	}
	if report.Jobs != 3 {
		t.Errorf("report.Jobs = %d, want 3", report.Jobs)
	}
}

func TestRunnerUnknownKey(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "T1", Run: okRun("x")})
	r := &Runner{Registry: reg}
	if _, err := r.Run(context.Background(), Config{}, "bogus"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunnerJoinsExperimentErrors(t *testing.T) {
	boom := errors.New("boom")
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "OK", Run: okRun("fine")})
	reg.MustRegister(Def{ID: "BAD", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		return nil, boom
	}})
	r := &Runner{Registry: reg, Jobs: 2}
	report, err := r.Run(context.Background(), Config{})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrap of boom", err)
	}
	if report == nil || report.Experiments[0].Err != nil || report.Experiments[1].Err == nil {
		t.Fatalf("report did not isolate the failure: %+v", report)
	}
}

func TestRunnerPreCancelledContextSkipsEverything(t *testing.T) {
	ran := false
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "A", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		ran = true
		return textResult("x"), nil
	}})
	reg.MustRegister(Def{ID: "B", Run: okRun("y")})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Runner{Registry: reg, Jobs: 2}
	report, err := r.Run(ctx, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
	if ran {
		t.Error("experiment body ran despite pre-cancelled context")
	}
	for _, e := range report.Experiments {
		if !e.Skipped || !errors.Is(e.Err, context.Canceled) {
			t.Errorf("%s: Skipped=%v Err=%v, want skipped with Canceled", e.ID, e.Skipped, e.Err)
		}
	}
}

func TestRunnerMidRunCancellationSkipsRemainder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "FIRST", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		cancel() // cancel the run from inside the first experiment
		return textResult("done"), nil
	}})
	reg.MustRegister(Def{ID: "SECOND", Run: okRun("never")})
	r := &Runner{Registry: reg, Jobs: 1}
	report, err := r.Run(ctx, Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
	if e := report.Experiments[0]; e.Skipped || e.Err != nil {
		t.Errorf("first experiment should have completed: %+v", e)
	}
	if e := report.Experiments[1]; !e.Skipped {
		t.Errorf("second experiment should be skipped: %+v", e)
	}
	if !strings.Contains(err.Error(), "1 of 2") {
		t.Errorf("err = %v, want completion count 1 of 2", err)
	}
}

func TestRunnerObserverEventsAreStampedAndSerialized(t *testing.T) {
	reg := NewRegistry()
	for _, id := range []string{"A", "B", "C"} {
		id := id
		reg.MustRegister(Def{ID: id, Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
			// Deliberately leave Experiment empty: the runner stamps it.
			Emit(obs, Event{Kind: KindDatasetDone, Dataset: "ds-" + id, Done: 1, Total: 1})
			return textResult(id), nil
		}})
	}
	var mu sync.Mutex
	events := map[EventKind][]Event{}
	obs := ObserverFunc(func(e Event) {
		// The runner guarantees serialized delivery; the mutex here only
		// guards against a runner bug breaking that promise.
		mu.Lock()
		defer mu.Unlock()
		events[e.Kind] = append(events[e.Kind], e)
	})
	r := &Runner{Registry: reg, Jobs: 3, Observer: obs}
	if _, err := r.Run(context.Background(), Config{}); err != nil {
		t.Fatal(err)
	}
	if n := len(events[KindRunStarted]); n != 1 {
		t.Errorf("run-started events = %d, want 1", n)
	}
	if n := len(events[KindRunFinished]); n != 1 {
		t.Errorf("run-finished events = %d, want 1", n)
	}
	if n := len(events[KindExperimentStarted]); n != 3 {
		t.Errorf("experiment-started events = %d, want 3", n)
	}
	if n := len(events[KindExperimentFinished]); n != 3 {
		t.Errorf("experiment-finished events = %d, want 3", n)
	}
	for _, e := range events[KindDatasetDone] {
		if e.Experiment == "" {
			t.Errorf("dataset event not stamped with experiment ID: %+v", e)
		}
		if want := "ds-" + e.Experiment; e.Dataset != want {
			t.Errorf("event %+v: dataset = %q, want %q", e, e.Dataset, want)
		}
	}
}

func TestConfigWithDefaultsLeavesSeedAlone(t *testing.T) {
	got := Config{}.WithDefaults()
	want := Config{
		Scale:       DefaultScale,
		Seed:        0, // zero is a valid seed, not a sentinel
		Sources:     DefaultSources,
		MaxWalk:     DefaultMaxWalk,
		SpectralTol: DefaultSpectralTol,
		BlockSize:   DefaultBlockSize,
		Workers:     0, // zero means auto, not a sentinel to rewrite
	}
	if got != want {
		t.Errorf("Config{}.WithDefaults() = %+v, want %+v", got, want)
	}
	if s := DefaultConfig().Seed; s != DefaultSeed {
		t.Errorf("DefaultConfig().Seed = %d, want %d", s, DefaultSeed)
	}
	// Explicit settings survive.
	cfg := Config{Scale: 0.5, Seed: 42, Sources: 7, MaxWalk: 9, SpectralTol: 1e-3,
		BlockSize: 16, Workers: 3}
	if got := cfg.WithDefaults(); got != cfg {
		t.Errorf("WithDefaults rewrote explicit fields: %+v", got)
	}
}
