package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
)

// Pool is a context-aware bounded-concurrency gate: at most Size
// holders at once, acquisition aborting when the caller's context
// dies instead of queueing forever. The experiment Runner bounds a
// batch with its Jobs worker loop; Pool is the same discipline
// packaged for open-ended callers — the mixtimed service schedules
// every query solve through one, so a traffic burst degrades into an
// orderly queue with deadline-respecting waiters rather than a
// thundering herd of goroutines.
type Pool struct {
	slots chan struct{}
	inUse atomic.Int64
}

// NewPool returns a pool with n slots (n <= 0 means GOMAXPROCS).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{slots: make(chan struct{}, n)}
}

// Size returns the slot bound.
func (p *Pool) Size() int { return cap(p.slots) }

// InUse returns the number of currently held slots.
func (p *Pool) InUse() int { return int(p.inUse.Load()) }

// Acquire blocks until a slot frees or ctx dies; the caller must
// Release exactly once per successful Acquire.
func (p *Pool) Acquire(ctx context.Context) error {
	select {
	case p.slots <- struct{}{}:
		p.inUse.Add(1)
		return nil
	case <-ctx.Done():
		return fmt.Errorf("runner: pool acquire: %w", ctx.Err())
	}
}

// TryAcquire takes a slot without blocking; false means the pool is
// saturated.
func (p *Pool) TryAcquire() bool {
	select {
	case p.slots <- struct{}{}:
		p.inUse.Add(1)
		return true
	default:
		return false
	}
}

// Release frees a slot taken by Acquire or TryAcquire.
func (p *Pool) Release() {
	p.inUse.Add(-1)
	<-p.slots
}

// Do runs fn while holding a slot, propagating the acquisition error
// when the pool could not be entered.
func (p *Pool) Do(ctx context.Context, fn func() error) error {
	if err := p.Acquire(ctx); err != nil {
		return err
	}
	defer p.Release()
	return fn()
}
