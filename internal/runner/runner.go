// Package runner turns the per-figure experiment drivers into one
// schedulable, cancellable, observable unit. Every artifact of the
// paper's evaluation registers into a Registry under its DESIGN.md §5
// ID (T1, F1–F8, X1–X7) behind the uniform contract
//
//	Run(ctx context.Context, cfg Config, obs Observer) (Result, error)
//
// and the Runner schedules any subset across a bounded worker pool.
// Experiments derive every random stream from Config.Seed alone, so a
// parallel run renders byte-identically to a sequential one; context
// cancellation is threaded through the long loops (trace propagation,
// power/Lanczos iteration), so a cancelled run stops promptly instead
// of finishing the figure it was on.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mixtime/internal/telemetry"
)

// Result is a finished experiment's artifact: renderable text plus
// uniform machine-readable emission.
type Result interface {
	// Render returns the artifact as the text table / ASCII chart the
	// paper shows.
	Render() string
	// CSV writes the raw rows as CSV.
	CSV(w io.Writer) error
	// JSON writes the raw rows as indented JSON.
	JSON(w io.Writer) error
}

// RunFunc is the uniform experiment entry point.
type RunFunc func(ctx context.Context, cfg Config, obs Observer) (Result, error)

// Def describes one registered experiment.
type Def struct {
	// ID is the DESIGN.md §5 artifact ID ("T1", "F3", "X7").
	ID string
	// Name is the legacy cmd/paperfigs artifact name ("table1",
	// "fig3", "whanau-lookup"); Resolve accepts either.
	Name string
	// Title is a one-line description for listings and summaries.
	Title string
	// Run executes the experiment.
	Run RunFunc
}

// Registry holds experiment definitions in registration order.
type Registry struct {
	mu    sync.RWMutex
	order []string        // IDs in registration order
	byKey map[string]*Def // lowercase ID and Name → def
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: map[string]*Def{}}
}

// Register adds d; it fails on a missing ID or Run, or when the ID or
// Name collides with an earlier registration — together with the
// completeness test this guarantees every artifact is registered
// exactly once.
func (r *Registry) Register(d Def) error {
	if d.ID == "" || d.Run == nil {
		return errors.New("runner: Def needs an ID and a Run func")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := []string{strings.ToLower(d.ID)}
	if d.Name != "" && !strings.EqualFold(d.Name, d.ID) {
		keys = append(keys, strings.ToLower(d.Name))
	}
	for _, k := range keys {
		if _, dup := r.byKey[k]; dup {
			return fmt.Errorf("runner: %q already registered", k)
		}
	}
	def := d
	for _, k := range keys {
		r.byKey[k] = &def
	}
	r.order = append(r.order, d.ID)
	return nil
}

// MustRegister is Register, panicking on error (for init-time use).
func (r *Registry) MustRegister(d Def) {
	if err := r.Register(d); err != nil {
		panic(err)
	}
}

// Resolve looks an experiment up by ID or legacy name,
// case-insensitively.
func (r *Registry) Resolve(key string) (Def, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.byKey[strings.ToLower(strings.TrimSpace(key))]
	if !ok {
		return Def{}, false
	}
	return *d, true
}

// IDs returns the registered IDs in registration order.
func (r *Registry) IDs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Defs returns the definitions in registration order.
func (r *Registry) Defs() []Def {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Def, 0, len(r.order))
	for _, id := range r.order {
		out = append(out, *r.byKey[strings.ToLower(id)])
	}
	return out
}

// defaultRegistry is populated by internal/experiments at init time.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Register adds d to the default registry.
func Register(d Def) error { return defaultRegistry.Register(d) }

// MustRegister adds d to the default registry, panicking on error.
func MustRegister(d Def) { defaultRegistry.MustRegister(d) }

// ExperimentReport is one experiment's outcome within a run.
type ExperimentReport struct {
	ID      string
	Name    string
	Title   string
	Result  Result // nil on error or skip
	Err     error  // non-nil on failure; wraps ctx.Err() when skipped
	Elapsed time.Duration
	// Skipped reports the experiment never started because the run was
	// cancelled first.
	Skipped bool
	// Attempts is the number of attempts consumed (1 for an untroubled
	// run; up to Config.MaxAttempts when retries fired). Zero when the
	// experiment was skipped or resumed from a checkpoint.
	Attempts int
	// Resumed reports the result was replayed from a checkpoint
	// instead of re-running the driver.
	Resumed bool
	// Telemetry is the experiment's counter snapshot when the run was
	// instrumented (Config.Collector non-nil), nil otherwise. Each
	// experiment records into its own child collector, so these stay
	// attributable under parallel scheduling.
	Telemetry *telemetry.Snapshot
}

// Report is a completed (or cancelled) run.
type Report struct {
	// Experiments are in request order, regardless of which worker
	// finished first.
	Experiments []ExperimentReport
	// Wall is the whole run's wall time.
	Wall time.Duration
	// Jobs is the worker-pool size used.
	Jobs int
}

// Summary renders the per-experiment timing table the run ends with.
func (rp *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "run summary: %d experiments, %d jobs, %.1fs wall\n",
		len(rp.Experiments), rp.Jobs, rp.Wall.Seconds())
	width := 2
	for _, e := range rp.Experiments {
		if len(e.ID) > width {
			width = len(e.ID)
		}
	}
	for _, e := range rp.Experiments {
		status := "ok"
		switch {
		case e.Skipped:
			status = "skipped (cancelled)"
		case e.Err != nil:
			status = "error: " + e.Err.Error()
		case e.Resumed:
			status = "ok (resumed from checkpoint)"
		case e.Attempts > 1:
			status = fmt.Sprintf("ok (attempt %d)", e.Attempts)
		}
		fmt.Fprintf(&b, "  %-*s  %8.2fs  %s\n", width, e.ID, e.Elapsed.Seconds(), status)
	}
	return b.String()
}

// TelemetryTable renders the per-experiment kernel counters of an
// instrumented run as an aligned text table (empty string when the
// run carried no collector). It reports the deterministic counters
// only — wall times live in Summary and the per-snapshot timers.
func (rp *Report) TelemetryTable() string {
	cols := []struct {
		head string
		ctr  telemetry.Counter
	}{
		{"edges", telemetry.EdgesScanned},
		{"matvecs", telemetry.Matvecs},
		{"spmm", telemetry.SpMMBlocks},
		{"src-steps", telemetry.SourceSteps},
		{"power", telemetry.PowerIterations},
		{"lanczos", telemetry.LanczosIterations},
		{"restarts", telemetry.Restarts},
		{"traces", telemetry.TracesCompleted},
	}
	any := false
	for _, e := range rp.Experiments {
		if e.Telemetry != nil {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	idW := 2
	for _, e := range rp.Experiments {
		if len(e.ID) > idW {
			idW = len(e.ID)
		}
	}
	fmt.Fprintf(&b, "%-*s", idW, "id")
	for _, c := range cols {
		fmt.Fprintf(&b, "  %12s", c.head)
	}
	b.WriteByte('\n')
	total := telemetry.New()
	for _, e := range rp.Experiments {
		if e.Telemetry == nil {
			continue
		}
		fmt.Fprintf(&b, "%-*s", idW, e.ID)
		for _, c := range cols {
			fmt.Fprintf(&b, "  %12d", e.Telemetry.Get(c.ctr))
		}
		b.WriteByte('\n')
		total.Merge(*e.Telemetry)
	}
	snap := total.Snapshot()
	fmt.Fprintf(&b, "%-*s", idW, "sum")
	for _, c := range cols {
		fmt.Fprintf(&b, "  %12d", snap.Get(c.ctr))
	}
	b.WriteByte('\n')
	return b.String()
}

// CheckpointEntry is a previously completed experiment restored from
// a Checkpointer: a byte-replayable Result plus the recorded wall
// time and (if the original run was instrumented) telemetry.
type CheckpointEntry struct {
	Result    Result
	Elapsed   time.Duration
	Telemetry *telemetry.Snapshot
}

// Checkpointer persists completed experiments across process runs so
// a killed run restarts where it died. internal/checkpoint provides
// the file-backed implementation; the runner only needs lookups to
// replay prior results and saves after each success. Implementations
// must be safe for concurrent use by the worker pool.
type Checkpointer interface {
	// Lookup returns the replayable entry for an experiment previously
	// completed under an equivalent Config, or false when the
	// experiment must (re)run.
	Lookup(id string, cfg Config) (CheckpointEntry, bool)
	// Save persists a completed experiment's report.
	Save(id string, cfg Config, rep *ExperimentReport) error
}

// Runner schedules registered experiments over a worker pool.
type Runner struct {
	// Registry to draw experiments from; nil means Default().
	Registry *Registry
	// Jobs bounds the number of experiments in flight (<= 0 means
	// GOMAXPROCS). Independent experiments run in parallel; output is
	// byte-identical to a sequential run because every experiment
	// seeds its own random streams from Config.Seed.
	Jobs int
	// Observer receives progress events. It need not be thread-safe:
	// the runner serializes deliveries.
	Observer Observer
	// Checkpoint, if non-nil, persists each completed experiment and
	// replays matching prior completions instead of re-running them
	// (see internal/checkpoint).
	Checkpoint Checkpointer
	// WrapRun, if non-nil, wraps every experiment's Run function
	// before the attempt loop executes it. It exists for fault
	// injection — tests and the hidden paperfigs -inject flag use it
	// to provoke panics, hangs and transient failures deterministically
	// — and must not be used to change healthy experiment output.
	WrapRun func(Def, RunFunc) RunFunc
}

// Run executes the named experiments (all registered ones when keys
// is empty) under cfg and returns the per-experiment report. The
// returned error wraps ctx.Err() when the run was cancelled, and
// joins the per-experiment failures otherwise; the report is returned
// in both cases so partial results stay inspectable.
func (r *Runner) Run(ctx context.Context, cfg Config, keys ...string) (*Report, error) {
	reg := r.Registry
	if reg == nil {
		reg = Default()
	}
	var defs []Def
	if len(keys) == 0 {
		defs = reg.Defs()
	} else {
		for _, k := range keys {
			d, ok := reg.Resolve(k)
			if !ok {
				return nil, fmt.Errorf("runner: unknown experiment %q (known: %s)",
					k, strings.Join(reg.IDs(), ", "))
			}
			defs = append(defs, d)
		}
	}
	if len(defs) == 0 {
		return nil, errors.New("runner: no experiments registered")
	}
	cfg = cfg.WithDefaults()

	jobs := r.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(defs) {
		jobs = len(defs)
	}

	obs := &lockedObserver{inner: r.Observer}
	reports := make([]ExperimentReport, len(defs))
	start := time.Now()
	Emit(obs, Event{Kind: KindRunStarted, Total: len(defs)})

	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(defs) {
					return
				}
				d := defs[i]
				rep := &reports[i]
				rep.ID, rep.Name, rep.Title = d.ID, d.Name, d.Title
				if err := ctx.Err(); err != nil {
					rep.Skipped = true
					rep.Err = fmt.Errorf("runner: %s skipped: %w", d.ID, err)
					continue
				}
				// A matching checkpoint replays the prior result byte-for-
				// byte instead of re-running the driver.
				if r.Checkpoint != nil {
					if entry, ok := r.Checkpoint.Lookup(d.ID, cfg); ok {
						rep.Result, rep.Elapsed, rep.Resumed = entry.Result, entry.Elapsed, true
						Emit(obs, Event{Kind: KindExperimentResumed, Experiment: d.ID,
							Elapsed: entry.Elapsed})
						if cfg.Collector != nil && entry.Telemetry != nil {
							rep.Telemetry = entry.Telemetry
							cfg.Collector.Merge(*entry.Telemetry)
							Emit(obs, Event{Kind: KindTelemetry, Experiment: d.ID,
								Telemetry: entry.Telemetry})
						}
						continue
					}
				}
				// Instrumented runs give each experiment a child collector,
				// merged into the run-wide one after the experiment returns;
				// drivers still see a single cfg.Collector either way.
				cfgi := cfg
				if cfg.Collector != nil {
					cfgi.Collector = telemetry.New()
				}
				t0 := time.Now()
				Emit(obs, Event{Kind: KindExperimentStarted, Experiment: d.ID})
				res, err, attempts := r.runAttempts(ctx, d, cfgi, stampedObserver{inner: obs, id: d.ID})
				rep.Result, rep.Err, rep.Attempts = res, err, attempts
				rep.Elapsed = time.Since(t0)
				Emit(obs, Event{Kind: KindExperimentFinished, Experiment: d.ID,
					Elapsed: rep.Elapsed, Err: err})
				if cfg.Collector != nil {
					snap := cfgi.Collector.Snapshot()
					rep.Telemetry = &snap
					cfg.Collector.Merge(snap)
					Emit(obs, Event{Kind: KindTelemetry, Experiment: d.ID, Telemetry: &snap})
				}
				if r.Checkpoint != nil && err == nil {
					if serr := r.Checkpoint.Save(d.ID, cfg, rep); serr != nil {
						Emit(obs, Event{Kind: KindCheckpointFailed, Experiment: d.ID, Err: serr})
					}
				}
			}
		}()
	}
	wg.Wait()

	report := &Report{Experiments: reports, Wall: time.Since(start), Jobs: jobs}
	Emit(obs, Event{Kind: KindRunFinished, Total: len(defs), Elapsed: report.Wall})
	if err := ctx.Err(); err != nil {
		done := 0
		for _, e := range reports {
			if e.Err == nil && !e.Skipped {
				done++
			}
		}
		return report, fmt.Errorf("runner: cancelled after %d of %d experiments: %w",
			done, len(defs), err)
	}
	var errs []error
	for _, e := range reports {
		if e.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", e.ID, e.Err))
		}
	}
	if len(errs) > 0 {
		return report, errors.Join(errs...)
	}
	return report, nil
}

// SortedIDs returns the registry IDs sorted lexicographically —
// convenient for stable listings in CLI help output.
func SortedIDs(reg *Registry) []string {
	ids := reg.IDs()
	sort.Strings(ids)
	return ids
}
