package runner

import (
	"sync"
	"time"

	"mixtime/internal/telemetry"
)

// EventKind classifies a progress event.
type EventKind int

const (
	// KindRunStarted opens a run; Total carries the experiment count.
	KindRunStarted EventKind = iota
	// KindRunFinished closes a run; Elapsed is the wall time.
	KindRunFinished
	// KindExperimentStarted fires when a worker picks an experiment up.
	KindExperimentStarted
	// KindExperimentFinished fires when an experiment returns; Err is
	// its error (nil on success) and Elapsed its wall time.
	KindExperimentFinished
	// KindDatasetDone fires when a driver finishes one dataset (or
	// dataset-sized unit of work); Done/Total count datasets and
	// Iterations carries stage iteration counters (e.g. SLEM matvecs).
	KindDatasetDone
	// KindStageProgress reports fine-grained progress inside a stage,
	// e.g. sources completed during trace propagation.
	KindStageProgress
	// KindTelemetry fires after an instrumented experiment finishes
	// (Config.Collector non-nil); Telemetry carries that experiment's
	// counter snapshot.
	KindTelemetry
	// KindAttemptFailed fires when one attempt of an experiment fails;
	// Attempt is the 1-based attempt number, Err the failure and
	// Elapsed the attempt's wall time. The experiment may still
	// succeed on a later attempt.
	KindAttemptFailed
	// KindRetrying fires before a backoff sleep; Attempt is the
	// upcoming attempt number and Elapsed the backoff about to be
	// slept.
	KindRetrying
	// KindExperimentResumed fires when a checkpointed result is
	// replayed instead of re-running the experiment.
	KindExperimentResumed
	// KindCheckpointFailed fires when persisting a completed
	// experiment fails; the run itself stays successful, but the
	// experiment will re-run on resume.
	KindCheckpointFailed
)

// String names the kind for logs.
func (k EventKind) String() string {
	switch k {
	case KindRunStarted:
		return "run-started"
	case KindRunFinished:
		return "run-finished"
	case KindExperimentStarted:
		return "experiment-started"
	case KindExperimentFinished:
		return "experiment-finished"
	case KindDatasetDone:
		return "dataset-done"
	case KindStageProgress:
		return "stage-progress"
	case KindTelemetry:
		return "telemetry"
	case KindAttemptFailed:
		return "attempt-failed"
	case KindRetrying:
		return "retrying"
	case KindExperimentResumed:
		return "experiment-resumed"
	case KindCheckpointFailed:
		return "checkpoint-failed"
	default:
		return "unknown"
	}
}

// Event is one structured progress notification. Fields beyond Kind
// are filled as applicable; the runner stamps Experiment with the
// registry ID, so drivers only report what they know locally.
type Event struct {
	Kind EventKind
	// Experiment is the registry ID (e.g. "F3").
	Experiment string
	// Dataset names the dataset the event concerns, if any.
	Dataset string
	// Stage names the driver stage ("spectral", "sampling", ...).
	Stage string
	// Done/Total count completed units (datasets, sources, ...).
	Done, Total int
	// Iterations carries iteration counters (e.g. SLEM matvecs).
	Iterations int
	// Attempt is the 1-based attempt number on KindAttemptFailed (the
	// attempt that failed) and KindRetrying (the attempt about to
	// start) events.
	Attempt int
	// Elapsed is the wall time of the finished unit, when measured.
	Elapsed time.Duration
	// Err is the failure attached to a finished experiment or run.
	Err error
	// Telemetry is the experiment's counter snapshot on KindTelemetry
	// events (nil otherwise).
	Telemetry *telemetry.Snapshot
}

// Observer receives progress events. Implementations used with the
// runner need not be safe for concurrent use: the runner serializes
// deliveries from its worker pool.
type Observer interface {
	OnEvent(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// OnEvent calls f.
func (f ObserverFunc) OnEvent(e Event) { f(e) }

// Emit delivers e to obs if obs is non-nil. Drivers call this so a
// nil observer means "no observability" without nil checks anywhere.
func Emit(obs Observer, e Event) {
	if obs != nil {
		obs.OnEvent(e)
	}
}

// lockedObserver serializes deliveries from concurrent workers onto a
// possibly non-thread-safe user observer.
type lockedObserver struct {
	mu    sync.Mutex
	inner Observer
}

func (l *lockedObserver) OnEvent(e Event) {
	if l.inner == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.inner.OnEvent(e)
}

// stampedObserver fills Event.Experiment with the registry ID before
// forwarding, so driver code stays ID-agnostic.
type stampedObserver struct {
	inner Observer
	id    string
}

func (s stampedObserver) OnEvent(e Event) {
	if e.Experiment == "" {
		e.Experiment = s.id
	}
	s.inner.OnEvent(e)
}
