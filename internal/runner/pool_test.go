package runner

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolBound proves no more than Size holders run at once even
// under heavy goroutine pressure.
func TestPoolBound(t *testing.T) {
	const slots, workers = 3, 40
	p := NewPool(slots)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			if err := p.Do(context.Background(), func() error {
				cur := inFlight.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				inFlight.Add(-1)
				return nil
			}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if got := peak.Load(); got > slots {
		t.Errorf("observed %d concurrent holders, pool bound is %d", got, slots)
	}
	if p.InUse() != 0 {
		t.Errorf("InUse = %d after all work done, want 0", p.InUse())
	}
}

// TestPoolAcquireCancellation proves a waiter blocked on a saturated
// pool aborts when its context dies, without corrupting the slot
// accounting.
func TestPoolAcquireCancellation(t *testing.T) {
	p := NewPool(1)
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Acquire(ctx); err == nil {
		t.Fatal("Acquire on a saturated pool returned nil under a dead context")
	}
	p.Release()
	// The slot released by the holder must be acquirable again.
	if err := p.Acquire(context.Background()); err != nil {
		t.Fatalf("pool unusable after a cancelled waiter: %v", err)
	}
	p.Release()
}

func TestPoolDefaultsAndTry(t *testing.T) {
	if NewPool(0).Size() <= 0 {
		t.Error("NewPool(0) must default to a positive size")
	}
	p := NewPool(1)
	if !p.TryAcquire() {
		t.Fatal("TryAcquire on an empty pool failed")
	}
	if p.TryAcquire() {
		t.Fatal("TryAcquire on a full pool succeeded")
	}
	p.Release()
}
