package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// collectEvents returns an observer appending every event to the
// returned slice. The runner serializes deliveries, so no lock is
// needed as long as the slice is only read after Run returns.
func collectEvents() (*[]Event, Observer) {
	var events []Event
	return &events, ObserverFunc(func(e Event) { events = append(events, e) })
}

func kinds(events []Event, k EventKind) []Event {
	var out []Event
	for _, e := range events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

func TestPanicIsolatedWithStack(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "BOOM", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		panic("injected panic")
	}})
	reg.MustRegister(Def{ID: "OK1", Run: okRun("fine-1")})
	reg.MustRegister(Def{ID: "OK2", Run: okRun("fine-2")})

	r := &Runner{Registry: reg, Jobs: 3}
	report, err := r.Run(context.Background(), Config{})
	if err == nil {
		t.Fatal("run with panicking experiment reported success")
	}
	boom := report.Experiments[0]
	var pe *PanicError
	if !errors.As(boom.Err, &pe) {
		t.Fatalf("BOOM.Err = %v, want *PanicError", boom.Err)
	}
	if pe.Experiment != "BOOM" || pe.Value != "injected panic" {
		t.Errorf("PanicError = %+v", pe)
	}
	if !strings.Contains(string(pe.Stack), "fault_test") {
		t.Errorf("stack does not name the panic site:\n%s", pe.Stack)
	}
	// Sibling experiments completed normally.
	for _, e := range report.Experiments[1:] {
		if e.Err != nil || e.Skipped || e.Result == nil {
			t.Errorf("%s did not survive sibling panic: %+v", e.ID, e)
		}
	}
}

// TestPanicDoesNotPerturbSiblingOutput pins the acceptance criterion:
// sibling artifacts of a panicking experiment are byte-identical to a
// clean run's.
func TestPanicDoesNotPerturbSiblingOutput(t *testing.T) {
	render := func(report *Report, skip string) string {
		var b strings.Builder
		for _, e := range report.Experiments {
			if e.ID == skip {
				continue
			}
			if e.Result == nil {
				t.Fatalf("%s has no result", e.ID)
			}
			fmt.Fprintf(&b, "== %s ==\n%s\n", e.ID, e.Result.Render())
		}
		return b.String()
	}

	build := func(panicky bool) *Registry {
		reg := NewRegistry()
		reg.MustRegister(Def{ID: "A", Run: okRun("alpha")})
		reg.MustRegister(Def{ID: "MID", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
			if panicky {
				panic("mid-run panic")
			}
			return textResult("mid"), nil
		}})
		reg.MustRegister(Def{ID: "B", Run: okRun("beta")})
		return reg
	}

	clean, err := (&Runner{Registry: build(false), Jobs: 2}).Run(context.Background(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := (&Runner{Registry: build(true), Jobs: 2}).Run(context.Background(), Config{})
	if err == nil {
		t.Fatal("faulty run reported success")
	}
	if got, want := render(faulty, "MID"), render(clean, "MID"); got != want {
		t.Errorf("sibling artifacts diverged:\n got %q\nwant %q", got, want)
	}
}

func TestRetrySucceedsOnSecondAttempt(t *testing.T) {
	var calls atomic.Int32
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "FLAKY", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		if calls.Add(1) == 1 {
			return nil, errors.New("transient failure")
		}
		return textResult("recovered"), nil
	}})
	events, obs := collectEvents()
	r := &Runner{Registry: reg, Observer: obs}
	cfg := Config{MaxAttempts: 3, RetryBackoff: time.Millisecond}
	report, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := report.Experiments[0]
	if e.Attempts != 2 || e.Err != nil || e.Result.Render() != "recovered" {
		t.Fatalf("report = %+v, want success on attempt 2", e)
	}
	failed := kinds(*events, KindAttemptFailed)
	if len(failed) != 1 || failed[0].Attempt != 1 || failed[0].Err == nil {
		t.Errorf("attempt-failed events = %+v, want one for attempt 1", failed)
	}
	retrying := kinds(*events, KindRetrying)
	if len(retrying) != 1 || retrying[0].Attempt != 2 || retrying[0].Elapsed != time.Millisecond {
		t.Errorf("retrying events = %+v, want one for attempt 2 with 1ms backoff", retrying)
	}
	if !strings.Contains(report.Summary(), "ok (attempt 2)") {
		t.Errorf("Summary does not show the attempt trail:\n%s", report.Summary())
	}
}

func TestRetryBackoffDoublesAndPanicsRetry(t *testing.T) {
	var calls atomic.Int32
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "P", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		if calls.Add(1) < 3 {
			panic("flaky panic")
		}
		return textResult("third time lucky"), nil
	}})
	events, obs := collectEvents()
	r := &Runner{Registry: reg, Observer: obs}
	cfg := Config{MaxAttempts: 3, RetryBackoff: time.Millisecond}
	report, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := report.Experiments[0].Attempts; got != 3 {
		t.Fatalf("Attempts = %d, want 3", got)
	}
	retrying := kinds(*events, KindRetrying)
	if len(retrying) != 2 {
		t.Fatalf("retrying events = %d, want 2", len(retrying))
	}
	if retrying[0].Elapsed != time.Millisecond || retrying[1].Elapsed != 2*time.Millisecond {
		t.Errorf("backoffs = %v, %v; want 1ms then 2ms (exponential)",
			retrying[0].Elapsed, retrying[1].Elapsed)
	}
}

func TestRetriesExhaustedReportsLastError(t *testing.T) {
	var calls atomic.Int32
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "DOOMED", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		return nil, fmt.Errorf("failure %d", calls.Add(1))
	}})
	r := &Runner{Registry: reg}
	report, err := r.Run(context.Background(), Config{MaxAttempts: 3})
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	e := report.Experiments[0]
	if e.Attempts != 3 || e.Err == nil || !strings.Contains(e.Err.Error(), "failure 3") {
		t.Fatalf("report = %+v, want last error after 3 attempts", e)
	}
}

func TestFatalErrorNotRetried(t *testing.T) {
	var calls atomic.Int32
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "BAD", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		calls.Add(1)
		return nil, Fatal(errors.New("bad config"))
	}})
	r := &Runner{Registry: reg}
	report, _ := r.Run(context.Background(), Config{MaxAttempts: 5, RetryBackoff: time.Millisecond})
	if n := calls.Load(); n != 1 {
		t.Errorf("fatal error retried: %d calls", n)
	}
	if report.Experiments[0].Attempts != 1 {
		t.Errorf("Attempts = %d, want 1", report.Experiments[0].Attempts)
	}
}

func TestPerExperimentTimeoutDoesNotCancelRun(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "HUNG", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		<-ctx.Done() // a hung driver that at least honors cancellation
		return nil, ctx.Err()
	}})
	reg.MustRegister(Def{ID: "AFTER", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		// Scheduled after HUNG's deadline fired (Jobs: 1): succeeding
		// here proves the timeout killed the attempt, not the run.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return textResult("still running"), nil
	}})
	r := &Runner{Registry: reg, Jobs: 1}
	cfg := Config{PerExperimentTimeout: 10 * time.Millisecond}
	report, err := r.Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("timed-out experiment reported success")
	}
	hung := report.Experiments[0]
	if !errors.Is(hung.Err, context.DeadlineExceeded) {
		t.Errorf("HUNG.Err = %v, want DeadlineExceeded", hung.Err)
	}
	if !strings.Contains(hung.Err.Error(), "timed out") {
		t.Errorf("HUNG.Err = %v, want per-attempt timeout wrapping", hung.Err)
	}
	after := report.Experiments[1]
	if after.Err != nil || after.Skipped {
		t.Errorf("AFTER was dragged down by HUNG's deadline: %+v", after)
	}
}

func TestTimeoutRetriesUntilBudgetSpent(t *testing.T) {
	var calls atomic.Int32
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "H", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return textResult("ok"), nil
	}})
	r := &Runner{Registry: reg}
	cfg := Config{MaxAttempts: 2, PerExperimentTimeout: 10 * time.Millisecond}
	report, err := r.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("timeout on attempt 1 not retried: %v", err)
	}
	if report.Experiments[0].Attempts != 2 {
		t.Errorf("Attempts = %d, want 2", report.Experiments[0].Attempts)
	}
}

func TestRunCancellationIsFatalDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int32
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "C", Run: func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
		calls.Add(1)
		cancel() // the run dies while this experiment is failing
		return nil, errors.New("transient")
	}})
	r := &Runner{Registry: reg}
	cfg := Config{MaxAttempts: 5, RetryBackoff: time.Hour}
	start := time.Now()
	_, err := r.Run(ctx, cfg)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("backoff ignored cancellation: took %v", elapsed)
	}
	if err == nil {
		t.Fatal("cancelled run reported success")
	}
	if n := calls.Load(); n != 1 {
		t.Errorf("experiment attempted %d times under a cancelled run", n)
	}
}

func TestClassifyFailure(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want FailureClass
	}{
		{"plain error", errors.New("x"), ClassRetryable},
		{"panic", &PanicError{Experiment: "T1", Value: "v"}, ClassRetryable},
		{"deadline", context.DeadlineExceeded, ClassRetryable},
		{"wrapped deadline", fmt.Errorf("t: %w", context.DeadlineExceeded), ClassRetryable},
		{"cancelled", context.Canceled, ClassFatal},
		{"wrapped cancelled", fmt.Errorf("c: %w", context.Canceled), ClassFatal},
		{"fatal-marked", Fatal(errors.New("validation")), ClassFatal},
		{"wrapped fatal", fmt.Errorf("f: %w", Fatal(errors.New("v"))), ClassFatal},
	}
	for _, c := range cases {
		if got := ClassifyFailure(c.err); got != c.want {
			t.Errorf("ClassifyFailure(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	if Fatal(nil) != nil {
		t.Error("Fatal(nil) != nil")
	}
	if !errors.Is(Fatal(context.DeadlineExceeded), context.DeadlineExceeded) {
		t.Error("Fatal does not unwrap")
	}
}

func TestWrapRunHookInjectsFaults(t *testing.T) {
	reg := NewRegistry()
	reg.MustRegister(Def{ID: "T", Run: okRun("real")})
	var first atomic.Bool
	first.Store(true)
	r := &Runner{Registry: reg, WrapRun: func(d Def, run RunFunc) RunFunc {
		return func(ctx context.Context, cfg Config, obs Observer) (Result, error) {
			if first.CompareAndSwap(true, false) {
				panic("injected by WrapRun")
			}
			return run(ctx, cfg, obs)
		}
	}}
	report, err := r.Run(context.Background(), Config{MaxAttempts: 2})
	if err != nil {
		t.Fatal(err)
	}
	e := report.Experiments[0]
	if e.Attempts != 2 || e.Result.Render() != "real" {
		t.Fatalf("report = %+v, want real result on attempt 2", e)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k, want := range map[EventKind]string{
		KindAttemptFailed:     "attempt-failed",
		KindRetrying:          "retrying",
		KindExperimentResumed: "experiment-resumed",
		KindCheckpointFailed:  "checkpoint-failed",
		EventKind(99):         "unknown",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
