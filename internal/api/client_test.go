package api

// Client resilience tests: backoff honoring Retry-After, the retry
// budget, hedged queries cancelling the loser, non-idempotent mutate
// retry rules, and loud body-limit detection.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// queryServer builds a test daemon whose /v1/query handler is h.
func queryServer(t *testing.T, h http.HandlerFunc) *Client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", h)
	mux.HandleFunc("/v1/mutate", h)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)
	c.BaseBackoff = time.Millisecond
	return c
}

func writeResp(w http.ResponseWriter, status int, resp any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// TestRetryRecoversFromTransient: a couple of 500s followed by a 200
// succeed transparently under MaxRetries.
func TestRetryRecoversFromTransient(t *testing.T) {
	var calls atomic.Int64
	c := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			writeResp(w, http.StatusInternalServerError, &Response{Error: "transient"})
			return
		}
		writeResp(w, http.StatusOK, &Response{Op: OpSLEM, SLEM: &SLEMResult{Mu: 0.5}})
	})
	c.MaxRetries = 4
	resp, err := c.Query(context.Background(), Request{Op: OpSLEM, Graph: "g"})
	if err != nil || resp.SLEM == nil {
		t.Fatalf("resp=%+v err=%v, want a recovered success", resp, err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("calls = %d, want 3", got)
	}
	if m := c.Metrics(); m.Retries != 2 {
		t.Fatalf("metrics.Retries = %d, want 2", m.Retries)
	}
}

// TestRetryHonorsRetryAfter: the server's Retry-After hint stretches
// the wait beyond the (tiny) computed backoff.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	c := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeResp(w, http.StatusTooManyRequests, &Response{Error: "shed"})
			return
		}
		writeResp(w, http.StatusOK, &Response{Op: OpSLEM})
	})
	c.MaxRetries = 1
	t0 := time.Now()
	if _, err := c.Query(context.Background(), Request{Op: OpSLEM, Graph: "g"}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < 900*time.Millisecond {
		t.Fatalf("retry fired after %v, want >= ~1s per the Retry-After hint", elapsed)
	}
	if m := c.Metrics(); m.Sheds != 1 || m.Retries != 1 {
		t.Fatalf("metrics = %+v, want 1 shed / 1 retry", m)
	}
}

// TestRetryBudgetBoundsTotalAttempts: the client-wide budget stops
// retrying a daemon that is down for good.
func TestRetryBudgetBoundsTotalAttempts(t *testing.T) {
	var calls atomic.Int64
	c := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeResp(w, http.StatusServiceUnavailable, &Response{Error: "down"})
	})
	c.MaxRetries = 50
	c.RetryBudget = 3
	_, err := c.Query(context.Background(), Request{Op: OpSLEM, Graph: "g"})
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
	if got := calls.Load(); got != 4 { // 1 initial + 3 budgeted retries
		t.Fatalf("calls = %d, want 4", got)
	}
}

// TestNonRetryableStatusFailsFast: a 400 is the caller's bug, not a
// transient — no retries, and the decodable envelope still comes back.
func TestNonRetryableStatusFailsFast(t *testing.T) {
	var calls atomic.Int64
	c := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeResp(w, http.StatusBadRequest, &Response{Error: "bad op"})
	})
	c.MaxRetries = 5
	resp, err := c.Query(context.Background(), Request{Op: OpSLEM, Graph: "g"})
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("err = %v, want a 400", err)
	}
	if resp == nil || resp.Error != "bad op" {
		t.Fatalf("error envelope lost in the retry path: %+v", resp)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (400 is not retryable)", got)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.StatusCode != 400 {
		t.Fatalf("err %v is not a StatusError with code 400", err)
	}
}

// TestMutateRetriesOnlyNotApplied: mutations retry 429 (provably not
// applied) but never a 500 (the batch may have landed).
func TestMutateRetriesOnlyNotApplied(t *testing.T) {
	var calls atomic.Int64
	c := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			writeResp(w, http.StatusTooManyRequests, &MutateResponse{Error: "shed"})
			return
		}
		writeResp(w, http.StatusOK, &MutateResponse{Graph: "g", Inserted: 1})
	})
	c.MaxRetries = 3
	resp, err := c.Mutate(context.Background(), MutateRequest{Graph: "g", Grow: 1})
	if err != nil || resp.Inserted != 1 {
		t.Fatalf("resp=%+v err=%v, want a retried success", resp, err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2", got)
	}

	calls.Store(0)
	c2 := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeResp(w, http.StatusInternalServerError, &MutateResponse{Error: "boom"})
	})
	c2.MaxRetries = 3
	if _, err := c2.Mutate(context.Background(), MutateRequest{Graph: "g", Grow: 1}); err == nil {
		t.Fatal("500 mutate did not fail")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (a 5xx mutate must not be re-applied)", got)
	}
}

// TestHedgeCancelsLoser: a stalled primary loses to the hedge, whose
// answer is returned while the primary's request context is
// cancelled.
func TestHedgeCancelsLoser(t *testing.T) {
	var calls atomic.Int64
	primaryCancelled := make(chan struct{})
	c := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// The primary: stall until the client gives up on us. The
			// body must be drained first — the server only propagates a
			// client disconnect into r.Context() once it owns the
			// connection again.
			io.Copy(io.Discard, r.Body) //nolint:errcheck
			<-r.Context().Done()
			close(primaryCancelled)
			return
		}
		writeResp(w, http.StatusOK, &Response{Op: OpSLEM, SLEM: &SLEMResult{Mu: 0.25}})
	})
	c.HedgeDelay = 30 * time.Millisecond
	resp, err := c.Query(context.Background(), Request{Op: OpSLEM, Graph: "g"})
	if err != nil || resp.SLEM == nil || resp.SLEM.Mu != 0.25 {
		t.Fatalf("resp=%+v err=%v, want the hedge's answer", resp, err)
	}
	if m := c.Metrics(); m.Hedges != 1 || m.HedgeWins != 1 {
		t.Fatalf("metrics = %+v, want 1 hedge / 1 win", m)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(10 * time.Second):
		t.Fatal("losing primary was never cancelled")
	}
}

// TestHedgeNotUsedWhenFastEnough: a prompt answer never launches the
// duplicate.
func TestHedgeNotUsedWhenFastEnough(t *testing.T) {
	var calls atomic.Int64
	c := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeResp(w, http.StatusOK, &Response{Op: OpSLEM})
	})
	c.HedgeDelay = 5 * time.Second
	if _, err := c.Query(context.Background(), Request{Op: OpSLEM, Graph: "g"}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (no hedge for a fast answer)", got)
	}
	if m := c.Metrics(); m.Hedges != 0 {
		t.Fatalf("metrics.Hedges = %d, want 0", m.Hedges)
	}
}

// TestBodyLimitIsLoud: a response larger than the client limit is an
// explicit error naming the limit, never a silently truncated decode.
func TestBodyLimitIsLoud(t *testing.T) {
	c := queryServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"op":"slem","error":"`)) //nolint:errcheck
		pad := strings.Repeat("x", 4096)
		w.Write([]byte(pad + `"}`)) //nolint:errcheck
	})
	c.MaxQueryBody = 1024
	_, err := c.Query(context.Background(), Request{Op: OpSLEM, Graph: "g"})
	if err == nil || !strings.Contains(err.Error(), "1024-byte client limit") {
		t.Fatalf("err = %v, want a loud limit violation", err)
	}
}

// TestParseRetryAfter covers both header forms.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Fatalf("delta-seconds: %v, want 3s", d)
	}
	future := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 80*time.Second || d > 91*time.Second {
		t.Fatalf("http-date: %v, want ~90s", d)
	}
	for _, h := range []string{"", "soon", "-4"} {
		if d := parseRetryAfter(h); d != 0 {
			t.Fatalf("parseRetryAfter(%q) = %v, want 0", h, d)
		}
	}
}
