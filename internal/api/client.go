package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Default response-body limits. Large enough for any real payload
// (a full-mesh CDF over a scaled Table-1 graph is tens of MB at
// most); small enough that a misbehaving endpoint cannot balloon the
// client. A body that hits the limit is an explicit error, never a
// silent truncation.
const (
	DefaultMaxQueryBody  = 64 << 20
	DefaultMaxMutateBody = 16 << 20
)

// StatusError is a server-reported failure: the daemon answered with
// a non-2xx status and (usually) a decodable error envelope. It
// carries the status code and any Retry-After hint so callers — the
// retry loop here, the mixload report — can classify without string
// matching.
type StatusError struct {
	// StatusCode is the HTTP status, e.g. 429.
	StatusCode int
	// Status is the full status line, e.g. "429 Too Many Requests".
	Status string
	// Msg is the server's error message (or the status text when the
	// envelope carried none).
	Msg string
	// RetryAfter is the parsed Retry-After hint, 0 when absent.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string { return fmt.Sprintf("api: %s: %s", e.Status, e.Msg) }

// IsShed reports whether err is a 429 admission-control rejection:
// the daemon was overloaded and never started the work. Sheds are
// expected under deliberate overload and are worth counting apart
// from real failures.
func IsShed(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.StatusCode == http.StatusTooManyRequests
}

// ClientMetrics is a snapshot of the client's resilience counters.
type ClientMetrics struct {
	// Retries is how many attempts were re-issued after a retryable
	// failure.
	Retries int64
	// Sheds is how many 429 responses were received (each is also a
	// retry when budget remains).
	Sheds int64
	// Hedges is how many hedge requests were launched.
	Hedges int64
	// HedgeWins is how many of those finished before the primary.
	HedgeWins int64
}

// Client is the SDK the mixload generator (and tests) use to talk to
// a mixtimed daemon. The zero value is not usable; construct with
// NewClient. Resilience is opt-in: with MaxRetries zero the client
// behaves like a plain one-shot HTTP caller.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// HTTPClient is the transport; NewClient installs a default with
	// sane timeouts.
	HTTPClient *http.Client

	// MaxRetries caps re-issues per Query/Mutate call (0 = no
	// retries). Query retries transport errors and retryable statuses
	// (429/500/502/503/504); Mutate, being non-idempotent, retries
	// only statuses that guarantee the batch was not applied (429 and
	// 503).
	MaxRetries int
	// BaseBackoff seeds the exponential backoff between retries
	// (0 = 100ms). Each retry doubles it, capped at MaxBackoff, with
	// ±50% jitter; a server Retry-After hint overrides the computed
	// wait when larger.
	BaseBackoff time.Duration
	// MaxBackoff caps a single backoff sleep (0 = 5s).
	MaxBackoff time.Duration
	// RetryBudget caps total retries across the client's lifetime
	// (0 = unlimited). Shared across goroutines: a daemon that is
	// truly down stops costing attempts once the budget drains.
	RetryBudget int64
	// HedgeDelay, when positive, arms hedged queries: if an attempt
	// has not answered within this delay, a duplicate is issued and
	// the first response wins (the loser is cancelled). Only Query
	// hedges — it is idempotent and the daemon's singleflight collapses
	// duplicate solves, so a hedge is cheap when the answer is cached
	// and harmless when it is not.
	HedgeDelay time.Duration
	// MaxQueryBody / MaxMutateBody bound response bodies
	// (0 = the package defaults).
	MaxQueryBody  int64
	MaxMutateBody int64

	retries   atomic.Int64
	sheds     atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	budget    atomic.Int64 // retries spent against RetryBudget
}

// NewClient returns a client for the daemon at baseURL ("host:port"
// is accepted and gets the scheme prepended).
func NewClient(baseURL string) *Client {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// Metrics snapshots the resilience counters.
func (c *Client) Metrics() ClientMetrics {
	return ClientMetrics{
		Retries:   c.retries.Load(),
		Sheds:     c.sheds.Load(),
		Hedges:    c.hedges.Load(),
		HedgeWins: c.hedgeWins.Load(),
	}
}

// Query posts req to /v1/query and decodes the response. A non-2xx
// status with a decodable Response body returns that response along
// with a *StatusError carrying its Error field, so callers can
// distinguish server-reported failures from transport ones.
//
// With MaxRetries set, transport errors and retryable statuses are
// re-issued under exponential backoff with jitter, honoring any
// Retry-After hint the server sent. With HedgeDelay set, a slow
// attempt races a duplicate and the first answer wins.
func (c *Client) Query(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("api: marshal request: %w", err)
	}
	var resp *Response
	err = c.withRetries(ctx, queryRetryable, func() error {
		var aerr error
		resp, aerr = c.queryAttempt(ctx, body)
		return aerr
	})
	return resp, err
}

// queryAttempt issues one (possibly hedged) query.
func (c *Client) queryAttempt(ctx context.Context, body []byte) (*Response, error) {
	if c.HedgeDelay <= 0 {
		return c.queryOnce(ctx, body)
	}
	type result struct {
		resp  *Response
		err   error
		hedge bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser once the winner returns
	results := make(chan result, 2)
	issue := func(hedge bool) {
		go func() {
			resp, err := c.queryOnce(hctx, body)
			results <- result{resp, err, hedge}
		}()
	}
	issue(false)
	launched := 1
	timer := time.NewTimer(c.HedgeDelay)
	defer timer.Stop()
	var firstFailure *result
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				c.hedges.Add(1)
				issue(true)
				launched++
			}
		case r := <-results:
			if r.err == nil {
				if r.hedge {
					c.hedgeWins.Add(1)
				}
				return r.resp, nil
			}
			if launched == 1 {
				// Sole attempt failed before the hedge was due: fail now,
				// the retry loop (if armed) takes over.
				return r.resp, r.err
			}
			if firstFailure == nil {
				firstFailure = &r
				continue // the other attempt may still succeed
			}
			// Both failed; report the primary's error.
			if r.hedge {
				r = *firstFailure
			}
			return r.resp, r.err
		}
	}
}

// queryOnce is a single wire round trip.
func (c *Client) queryOnce(ctx context.Context, body []byte) (*Response, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	defer hres.Body.Close()
	raw, err := readLimited(hres.Body, limitOr(c.MaxQueryBody, DefaultMaxQueryBody))
	if err != nil {
		return nil, fmt.Errorf("api: read response: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("api: status %d, undecodable body: %w", hres.StatusCode, err)
	}
	if hres.StatusCode != http.StatusOK {
		return &resp, statusError(hres, resp.Error)
	}
	return &resp, nil
}

// Mutate posts req to /v1/mutate and decodes the response, with the
// same error contract as Query. Mutations are not idempotent, so with
// MaxRetries set only rejections that provably did not apply the
// batch — 429 (shed) and 503 (draining) — are retried; transport
// errors and 5xx surprises surface immediately rather than risk a
// double apply.
func (c *Client) Mutate(ctx context.Context, req MutateRequest) (*MutateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("api: marshal mutate request: %w", err)
	}
	var resp *MutateResponse
	err = c.withRetries(ctx, mutateRetryable, func() error {
		var aerr error
		resp, aerr = c.mutateOnce(ctx, body)
		return aerr
	})
	return resp, err
}

func (c *Client) mutateOnce(ctx context.Context, body []byte) (*MutateResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/mutate", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	defer hres.Body.Close()
	raw, err := readLimited(hres.Body, limitOr(c.MaxMutateBody, DefaultMaxMutateBody))
	if err != nil {
		return nil, fmt.Errorf("api: read mutate response: %w", err)
	}
	var resp MutateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("api: status %d, undecodable body: %w", hres.StatusCode, err)
	}
	if hres.StatusCode != http.StatusOK {
		return &resp, statusError(hres, resp.Error)
	}
	return &resp, nil
}

// withRetries runs attempt, re-issuing retryable failures under
// backoff until success, a terminal error, retry/budget exhaustion,
// or ctx death.
func (c *Client) withRetries(ctx context.Context, retryable func(error) bool, attempt func() error) error {
	base := c.BaseBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxB := c.MaxBackoff
	if maxB <= 0 {
		maxB = 5 * time.Second
	}
	for try := 0; ; try++ {
		err := attempt()
		if err == nil {
			return nil
		}
		if IsShed(err) {
			c.sheds.Add(1)
		}
		if try >= c.MaxRetries || ctx.Err() != nil || !retryable(err) {
			return err
		}
		if c.RetryBudget > 0 && c.budget.Add(1) > c.RetryBudget {
			return fmt.Errorf("api: retry budget exhausted: %w", err)
		}
		// Exponential backoff with ±50% jitter; a larger server hint
		// wins (the daemon knows when it expects to drain).
		wait := maxB
		if try < 20 { // base<<try overflows long before this
			wait = min(base<<try, maxB)
		}
		wait = time.Duration(float64(wait) * (0.5 + rand.Float64()))
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > wait {
			wait = se.RetryAfter
		}
		c.retries.Add(1)
		select {
		case <-ctx.Done():
			return err
		case <-time.After(wait):
		}
	}
}

// queryRetryable: transport errors and the transient statuses.
// Queries are idempotent (and deduplicated server-side), so retrying
// is always safe.
func queryRetryable(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return true // transport error
	}
	switch se.StatusCode {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// mutateRetryable: only statuses that guarantee the batch was never
// applied.
func mutateRetryable(err error) bool {
	var se *StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.StatusCode == http.StatusTooManyRequests ||
		se.StatusCode == http.StatusServiceUnavailable
}

// statusError builds the typed error for a non-2xx response.
func statusError(hres *http.Response, msg string) *StatusError {
	if msg == "" {
		msg = http.StatusText(hres.StatusCode)
	}
	return &StatusError{
		StatusCode: hres.StatusCode,
		Status:     hres.Status,
		Msg:        msg,
		RetryAfter: parseRetryAfter(hres.Header.Get("Retry-After")),
	}
}

// parseRetryAfter handles both Retry-After forms: delta-seconds and
// an HTTP date. Unparseable or absent values are 0 (no hint).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// readLimited reads the whole body up to limit bytes, failing loudly
// when the limit is hit instead of silently handing back a truncated
// (and undecodable-or-worse) prefix.
func readLimited(r io.Reader, limit int64) ([]byte, error) {
	raw, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(raw)) > limit {
		return nil, fmt.Errorf("response exceeds the %d-byte client limit", limit)
	}
	return raw, nil
}

func limitOr(v, def int64) int64 {
	if v > 0 {
		return v
	}
	return def
}

// Graphs fetches the daemon's registry listing.
func (c *Client) Graphs(ctx context.Context) (*GraphsResponse, error) {
	var out GraphsResponse
	if err := c.getJSON(ctx, "/v1/graphs", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the daemon's counter snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.getJSON(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports whether the daemon answers its health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	hres, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("api: healthz: %s", hres.Status)
	}
	return nil
}

// WaitReady polls /healthz until the daemon answers, the interval
// elapsing between attempts, or ctx expires.
func (c *Client) WaitReady(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("api: daemon not ready: %w", ctx.Err())
		case <-time.After(interval):
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	hres, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		io.Copy(io.Discard, hres.Body)
		return fmt.Errorf("api: %s: %s", path, hres.Status)
	}
	if err := json.NewDecoder(hres.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decode %s: %w", path, err)
	}
	return nil
}
