package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the minimal SDK the mixload generator (and tests) use to
// talk to a mixtimed daemon. The zero value is not usable; construct
// with NewClient.
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:7411".
	BaseURL string
	// HTTPClient is the transport; NewClient installs a default with
	// sane timeouts.
	HTTPClient *http.Client
}

// NewClient returns a client for the daemon at baseURL ("host:port"
// is accepted and gets the scheme prepended).
func NewClient(baseURL string) *Client {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	return &Client{
		BaseURL:    strings.TrimRight(baseURL, "/"),
		HTTPClient: &http.Client{Timeout: 5 * time.Minute},
	}
}

// Query posts req to /v1/query and decodes the response. A non-2xx
// status with a decodable Response body returns that response along
// with an error carrying its Error field, so callers can distinguish
// server-reported failures from transport ones.
func (c *Client) Query(ctx context.Context, req Request) (*Response, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("api: marshal request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/query", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hres.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("api: read response: %w", err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("api: status %d, undecodable body: %w", hres.StatusCode, err)
	}
	if hres.StatusCode != http.StatusOK {
		msg := resp.Error
		if msg == "" {
			msg = http.StatusText(hres.StatusCode)
		}
		return &resp, fmt.Errorf("api: %s: %s", hres.Status, msg)
	}
	return &resp, nil
}

// Mutate posts req to /v1/mutate and decodes the response, with the
// same error contract as Query: a server-reported failure comes back
// as both a decodable response and an error.
func (c *Client) Mutate(ctx context.Context, req MutateRequest) (*MutateResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("api: marshal mutate request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.BaseURL+"/v1/mutate", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	hres, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("api: %w", err)
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hres.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("api: read mutate response: %w", err)
	}
	var resp MutateResponse
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, fmt.Errorf("api: status %d, undecodable body: %w", hres.StatusCode, err)
	}
	if hres.StatusCode != http.StatusOK {
		msg := resp.Error
		if msg == "" {
			msg = http.StatusText(hres.StatusCode)
		}
		return &resp, fmt.Errorf("api: %s: %s", hres.Status, msg)
	}
	return &resp, nil
}

// Graphs fetches the daemon's registry listing.
func (c *Client) Graphs(ctx context.Context) (*GraphsResponse, error) {
	var out GraphsResponse
	if err := c.getJSON(ctx, "/v1/graphs", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Stats fetches the daemon's counter snapshot.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var out StatsResponse
	if err := c.getJSON(ctx, "/stats", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz reports whether the daemon answers its health endpoint.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	hres, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	io.Copy(io.Discard, hres.Body)
	hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return fmt.Errorf("api: healthz: %s", hres.Status)
	}
	return nil
}

// WaitReady polls /healthz until the daemon answers, the interval
// elapsing between attempts, or ctx expires.
func (c *Client) WaitReady(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	for {
		if err := c.Healthz(ctx); err == nil {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("api: daemon not ready: %w", ctx.Err())
		case <-time.After(interval):
		}
	}
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	hres, err := c.HTTPClient.Do(hreq)
	if err != nil {
		return fmt.Errorf("api: %w", err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		io.Copy(io.Discard, hres.Body)
		return fmt.Errorf("api: %s: %s", path, hres.Status)
	}
	if err := json.NewDecoder(hres.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decode %s: %w", path, err)
	}
	return nil
}
