package api

import (
	"fmt"
	"strings"
)

// The canonical experiment and query defaults. Every layer that used
// to carry its own copy (core.Options, runner.Config, the CLI flag
// defaults) now reads this single set; runner re-exports them as
// deprecated aliases for older callers.
//
// The values follow the evaluation harness: Scale 0.01 turns the
// paper's million-node graphs into ~10k-node substitutes, Sources 200
// approximates the paper's 1000-source sampling at reproduction
// scale, MaxWalk 500 is the paper's longest probe, SpectralTol 1e-7
// resolves µ to more digits than Table 1 reports, and Eps 0.1 is the
// variation-distance threshold the paper's headline numbers quote.
const (
	// DefaultScale multiplies every dataset's node count.
	DefaultScale = 0.01
	// DefaultSeed is the conventional seed constructors start from. It
	// is applied only by constructors (Defaults, runner.DefaultConfig,
	// core.DefaultOptions): a zero Seed set explicitly on a Params is a
	// valid seed and is never rewritten.
	DefaultSeed = 1
	// DefaultSources is the number of sampled start vertices for
	// direct measurements.
	DefaultSources = 200
	// DefaultMaxWalk caps propagated walk lengths (and doubles as the
	// SybilLimit route length W for admission queries).
	DefaultMaxWalk = 500
	// DefaultSpectralTol is the SLEM eigenvalue tolerance.
	DefaultSpectralTol = 1e-7
	// DefaultBlockSize is the number of source distributions a blocked
	// trace propagation (SpMM) serves per CSR pass: eight doubles per
	// source fills one 64-byte cache line, amortizing every adjacency
	// index load across a full line of right-hand sides.
	DefaultBlockSize = 8
	// DefaultEps is the variation-distance threshold ε for per-source
	// mixing-time CDF queries.
	DefaultEps = 0.1
	// DefaultDistShards is the simulated worker count for distributed
	// (distmix) estimates. Like Workers it never changes the output —
	// only the communication accounting — so it is excluded from
	// result fingerprints.
	DefaultDistShards = 8
	// DefaultDistWalks is the walker population per graph node a
	// distmix estimate launches from each source: 64 walks per node
	// puts the sampling noise floor a factor below DefaultEps, so the
	// debiased ℓ1 estimate tracks the exact propagated distance.
	DefaultDistWalks = 64
	// DefaultDistRounds caps the supersteps per distmix source; it
	// matches DefaultMaxWalk because a superstep advances every walk
	// one step.
	DefaultDistRounds = DefaultMaxWalk
)

// Method names a SLEM solver.
const (
	MethodLanczos = "lanczos"
	MethodPower   = "power"
)

// DefaultEpsList is the ε grid bounds queries sweep when the request
// does not name one.
func DefaultEpsList() []float64 { return []float64{0.25, 0.1, 0.01} }

// Params is the single validated parameter surface shared by the
// mixtimed daemon, the mixload client, and cmd/paperfigs flag
// parsing. It replaces the three overlapping knob surfaces
// (core.Options, spectral.Options, runner.Config) at every process
// boundary; those structs survive as internal carriers that the
// bridging helpers (runner.ConfigFromParams and the service query
// layer) fill from a Params.
//
// JSON names are part of the versioned wire schema: they are stable,
// snake_case, and pinned by TestParamsWireNames.
type Params struct {
	// Scale multiplies every dataset's node count when a graph is
	// generated from the Table-1 registry (default DefaultScale).
	// Loaded snapshot graphs ignore it.
	Scale float64 `json:"scale,omitempty"`
	// Seed makes runs deterministic. Zero is a valid seed: defaults
	// never overwrite it (use Defaults for the conventional seed 1).
	Seed uint64 `json:"seed"`
	// Sources is the number of start vertices for direct measurements
	// and the suspect-sample size for admission queries (default
	// DefaultSources).
	Sources int `json:"sources,omitempty"`
	// MaxWalk caps propagated walk lengths; admission queries use it
	// as the SybilLimit route length W (default DefaultMaxWalk).
	MaxWalk int `json:"max_walk,omitempty"`
	// SpectralTol is the SLEM tolerance (default DefaultSpectralTol).
	SpectralTol float64 `json:"spectral_tol,omitempty"`
	// BlockSize is the number of source distributions propagated per
	// blocked CSR pass (default DefaultBlockSize). Output is
	// byte-identical for any value, so it is excluded from result
	// fingerprints.
	BlockSize int `json:"block_size,omitempty"`
	// Workers bounds kernel parallelism (0 = auto, 1 = sequential).
	// Output is byte-identical for any value, so it is excluded from
	// result fingerprints.
	Workers int `json:"workers,omitempty"`
	// Method selects the SLEM solver for slem queries: MethodLanczos
	// (default) or MethodPower.
	Method string `json:"method,omitempty"`
	// Eps is the variation-distance threshold for cdf queries
	// (default DefaultEps).
	Eps float64 `json:"eps,omitempty"`
	// EpsList is the ε grid for bounds queries (default
	// DefaultEpsList).
	EpsList []float64 `json:"eps_list,omitempty"`
	// DistShards is the simulated worker count for distmix queries
	// (default DefaultDistShards). The estimate is bit-identical for
	// any value — only the reported communication cost moves — so it
	// is excluded from result fingerprints like Workers and BlockSize.
	DistShards int `json:"dist_shards,omitempty"`
	// DistWalks is the distmix walker population per graph node
	// (default DefaultDistWalks). It changes the estimate's noise
	// floor, hence the output, hence the fingerprint.
	DistWalks int `json:"dist_walks,omitempty"`
	// DistRounds caps supersteps per distmix source (default
	// DefaultDistRounds). Output-determining, fingerprinted.
	DistRounds int `json:"dist_rounds,omitempty"`
}

// Defaults returns the canonical parameters, including the
// conventional Seed 1. This constructor is the only place the default
// seed is applied; WithDefaults leaves Seed untouched.
func Defaults() Params {
	return Params{
		Scale:       DefaultScale,
		Seed:        DefaultSeed,
		Sources:     DefaultSources,
		MaxWalk:     DefaultMaxWalk,
		SpectralTol: DefaultSpectralTol,
		BlockSize:   DefaultBlockSize,
		Method:      MethodLanczos,
		Eps:         DefaultEps,
		DistShards:  DefaultDistShards,
		DistWalks:   DefaultDistWalks,
		DistRounds:  DefaultDistRounds,
	}
}

// WithDefaults fills unset (zero or negative) fields with the
// canonical defaults. Seed is deliberately left alone: zero is a
// usable seed, not a sentinel. Workers stays zero ("auto").
func (p Params) WithDefaults() Params {
	if p.Scale <= 0 {
		p.Scale = DefaultScale
	}
	if p.Sources <= 0 {
		p.Sources = DefaultSources
	}
	if p.MaxWalk <= 0 {
		p.MaxWalk = DefaultMaxWalk
	}
	if p.SpectralTol <= 0 {
		p.SpectralTol = DefaultSpectralTol
	}
	if p.BlockSize <= 0 {
		p.BlockSize = DefaultBlockSize
	}
	if p.Method == "" {
		p.Method = MethodLanczos
	}
	if p.Eps <= 0 {
		p.Eps = DefaultEps
	}
	if len(p.EpsList) == 0 {
		p.EpsList = DefaultEpsList()
	}
	if p.DistShards <= 0 {
		p.DistShards = DefaultDistShards
	}
	if p.DistWalks <= 0 {
		p.DistWalks = DefaultDistWalks
	}
	if p.DistRounds <= 0 {
		p.DistRounds = DefaultDistRounds
	}
	return p
}

// Validate reports the first invalid field. It accepts unset (zero)
// fields — WithDefaults fills those — and rejects values that no
// layer could interpret: negative knobs, ε outside (0, 1), an unknown
// solver name.
func (p Params) Validate() error {
	if p.Scale < 0 {
		return fmt.Errorf("api: scale %v must be positive", p.Scale)
	}
	if p.Sources < 0 {
		return fmt.Errorf("api: sources %d must be positive", p.Sources)
	}
	if p.MaxWalk < 0 {
		return fmt.Errorf("api: max_walk %d must be positive", p.MaxWalk)
	}
	if p.SpectralTol < 0 {
		return fmt.Errorf("api: spectral_tol %v must be positive", p.SpectralTol)
	}
	if p.BlockSize < 0 {
		return fmt.Errorf("api: block_size %d must be positive", p.BlockSize)
	}
	if p.Workers < 0 {
		return fmt.Errorf("api: workers %d must be non-negative", p.Workers)
	}
	switch p.Method {
	case "", MethodLanczos, MethodPower:
	default:
		return fmt.Errorf("api: unknown method %q (want %s or %s)",
			p.Method, MethodLanczos, MethodPower)
	}
	if p.Eps < 0 || p.Eps >= 1 {
		return fmt.Errorf("api: eps %v must be in (0, 1)", p.Eps)
	}
	for _, e := range p.EpsList {
		if e <= 0 || e >= 1 {
			return fmt.Errorf("api: eps_list entry %v must be in (0, 1)", e)
		}
	}
	if p.DistShards < 0 {
		return fmt.Errorf("api: dist_shards %d must be positive", p.DistShards)
	}
	if p.DistWalks < 0 {
		return fmt.Errorf("api: dist_walks %d must be positive", p.DistWalks)
	}
	if p.DistRounds < 0 {
		return fmt.Errorf("api: dist_rounds %d must be positive", p.DistRounds)
	}
	return nil
}

// Canon renders the output-determining parameters as a canonical
// string — the Params contribution to a result fingerprint. Workers,
// BlockSize and DistShards are deliberately excluded: every kernel
// guarantees byte-identical output for any value (DistShards only
// moves the reported communication diagnostics), so two requests
// differing only there must share one cached result.
func (p Params) Canon() string {
	p = p.WithDefaults()
	eps := make([]string, len(p.EpsList))
	for i, e := range p.EpsList {
		eps[i] = fmt.Sprintf("%v", e)
	}
	return fmt.Sprintf("scale=%v|seed=%d|sources=%d|maxwalk=%d|tol=%v|method=%s|eps=%v|epslist=%s|distwalks=%d|distrounds=%d",
		p.Scale, p.Seed, p.Sources, p.MaxWalk, p.SpectralTol, p.Method, p.Eps,
		strings.Join(eps, ","), p.DistWalks, p.DistRounds)
}
