// Package api defines the versioned wire schema of the mixtimed
// service: the Request/Response envelope of the unified query
// endpoint, the typed result payloads (SLEM estimates, Sinclair
// bounds, per-source mixing-time CDFs, SybilLimit admission), the
// Document envelope that makes daemon experiment responses and
// `paperfigs -json` artifacts the same JSON documents, and the single
// validated Params surface every boundary shares.
//
// The package is the one source of truth for the protocol: the daemon
// handlers (internal/service), the mixload client SDK (Client here),
// and cmd/paperfigs flag parsing all consume these types, so the
// three historically separate knob surfaces (core.Options,
// spectral.Options, runner.Config) agree by construction at the wire.
//
// Versioning: every document carries SchemaVersion. Field names are
// stable snake_case and pinned by golden tests; additive evolution
// bumps nothing, renames and semantic changes bump SchemaVersion.
package api

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"mixtime/internal/telemetry"
)

// SchemaVersion is the wire-schema generation of every document this
// package defines. Bumped on renames or semantic changes, never on
// additive ones.
const SchemaVersion = 1

// The query operations the unified endpoint serves.
const (
	// OpSLEM estimates the second largest eigenvalue modulus of the
	// graph's random walk (Lanczos or power per Params.Method).
	OpSLEM = "slem"
	// OpBounds computes the Sinclair mixing-time bounds over
	// Params.EpsList from a SLEM estimate.
	OpBounds = "bounds"
	// OpCDF samples per-source variation-distance traces and returns
	// the CDF of per-source mixing times at Params.Eps.
	OpCDF = "cdf"
	// OpAdmission runs SybilLimit with route length Params.MaxWalk
	// over a sampled suspect set and reports the admission rate.
	OpAdmission = "admission"
	// OpDistMix runs the simulated distributed mixing-time estimator
	// (internal/distmix): hashed random-walk tokens over ShardPlan
	// partitions, converging on τ(ε) and the local mixing time without
	// a spectral solve, with communication accounting in the payload.
	OpDistMix = "distmix"
	// OpExperiment runs a registered paper experiment (T1, F1–F8,
	// X1–X7, D1–D2) and returns its Document — the same JSON
	// `paperfigs -json` writes.
	OpExperiment = "experiment"
)

// Ops lists the operations in a stable order (for listings and load
// mixes).
func Ops() []string {
	return []string{OpSLEM, OpBounds, OpCDF, OpAdmission, OpDistMix, OpExperiment}
}

// Request is the body of POST /v1/query.
type Request struct {
	// SchemaVersion is the client's schema generation; zero is
	// accepted and read as "current".
	SchemaVersion int `json:"schema_version,omitempty"`
	// Op selects the operation (Op* constants).
	Op string `json:"op"`
	// Graph names a registry entry (snapshot file stem or dataset
	// name). Required for every op but OpExperiment.
	Graph string `json:"graph,omitempty"`
	// Experiment is the registered experiment ID or legacy name for
	// OpExperiment ("T1", "fig8", …).
	Experiment string `json:"experiment,omitempty"`
	// Params carries the knobs; unset fields take the canonical
	// defaults.
	Params Params `json:"params"`
	// TimeoutMS, when positive, bounds this request with a deadline
	// the handler propagates into the solve (capped by the server's
	// own limit).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Validate checks the envelope and the embedded Params.
func (r Request) Validate() error {
	if r.SchemaVersion != 0 && r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("api: unsupported schema_version %d (server speaks %d)",
			r.SchemaVersion, SchemaVersion)
	}
	switch r.Op {
	case OpSLEM, OpBounds, OpCDF, OpAdmission, OpDistMix:
		if r.Graph == "" {
			return fmt.Errorf("api: op %q needs a graph", r.Op)
		}
	case OpExperiment:
		if r.Experiment == "" {
			return fmt.Errorf("api: op %q needs an experiment ID", r.Op)
		}
	case "":
		return fmt.Errorf("api: missing op (want one of %v)", Ops())
	default:
		return fmt.Errorf("api: unknown op %q (want one of %v)", r.Op, Ops())
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("api: timeout_ms %d must be non-negative", r.TimeoutMS)
	}
	return r.Params.Validate()
}

// Response is the body of every /v1/query answer. Exactly one result
// field matching Op is set on success; Error is set instead on
// failure.
type Response struct {
	SchemaVersion int    `json:"schema_version"`
	Op            string `json:"op"`
	Graph         string `json:"graph,omitempty"`
	Experiment    string `json:"experiment,omitempty"`
	// Fingerprint is the sha256 cache key of (graph identity,
	// output-determining knobs) — equal requests share it.
	Fingerprint string `json:"fingerprint,omitempty"`
	// CacheHit reports the result was served from the completed-result
	// cache without waiting on a solve.
	CacheHit bool `json:"cache_hit"`
	// ElapsedNS is the server-side time spent answering this request.
	ElapsedNS int64 `json:"elapsed_ns"`
	// Error is the failure message (the only field set besides the
	// envelope on errors).
	Error string `json:"error,omitempty"`

	SLEM      *SLEMResult      `json:"slem,omitempty"`
	Bounds    *BoundsResult    `json:"bounds,omitempty"`
	CDF       *CDFResult       `json:"cdf,omitempty"`
	Admission *AdmissionResult `json:"admission,omitempty"`
	DistMix   *DistMixResult   `json:"distmix,omitempty"`
	// Document is the experiment artifact for OpExperiment —
	// byte-for-byte the document `paperfigs -json` writes.
	Document json.RawMessage `json:"document,omitempty"`
}

// SLEMResult is the spectral estimate payload.
type SLEMResult struct {
	Mu         float64 `json:"mu"`
	Lambda2    float64 `json:"lambda2"`
	LambdaN    float64 `json:"lambda_n"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Method     string  `json:"method"`
	// Nodes and Edges describe the measured component (after LCC
	// extraction).
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
}

// BoundRow is one ε of a Sinclair bound sweep.
type BoundRow struct {
	Eps   float64 `json:"eps"`
	Lower float64 `json:"lower"`
	Upper float64 `json:"upper"`
}

// BoundsResult is the bounds payload: the SLEM it derives from plus
// the per-ε rows.
type BoundsResult struct {
	SLEM SLEMResult `json:"slem"`
	Rows []BoundRow `json:"rows"`
	// LogN is ⌈ln n⌉, the fast-mixing yardstick the Sybil-defense
	// literature assumes.
	LogN int `json:"log_n"`
}

// CDFPoint is one step of a per-source mixing-time CDF.
type CDFPoint struct {
	// T is a walk length at which at least one more source first
	// crossed ε.
	T int `json:"t"`
	// Frac is the fraction of sources mixed by T.
	Frac float64 `json:"frac"`
}

// CDFResult is the per-source mixing-time CDF payload.
type CDFResult struct {
	Eps     float64 `json:"eps"`
	Sources int     `json:"sources"`
	MaxWalk int     `json:"max_walk"`
	// Nodes and Edges describe the measured component.
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
	// SampledT is Definition 1's mixing time: the maximum first
	// crossing over sources. Complete is false when some source never
	// reached ε within MaxWalk (SampledT is then a lower bound).
	SampledT int  `json:"sampled_t"`
	Complete bool `json:"complete"`
	// AvgT is the mean first crossing over sources that mixed.
	AvgT   float64    `json:"avg_t"`
	Points []CDFPoint `json:"points"`
}

// DistMixResult is the distributed mixing-time estimate payload.
// Tau/LocalTau and their completeness flags are deterministic for a
// fixed (seed, walks, rounds) and independent of dist_shards; the
// communication fields (Rounds through OffShardBytes) are diagnostics
// of the solve that produced the result — a cache hit replays the
// original solve's accounting, which is why dist_shards is excluded
// from fingerprints.
type DistMixResult struct {
	Eps float64 `json:"eps"`
	// Sources is the sampled source count; Walks is the walker
	// population per source (WalksPerNode × Nodes).
	Sources      int  `json:"sources"`
	WalksPerNode int  `json:"walks_per_node"`
	Walks        int  `json:"walks"`
	Shards       int  `json:"shards"`
	MaxRounds    int  `json:"max_rounds"`
	Lazy         bool `json:"lazy"`
	// Tau is the distributed estimate of Definition 1's T(ε): the max
	// over sources of the first debiased ℓ1 crossing. Complete is
	// false when some source never crossed within MaxRounds (Tau is
	// then a lower bound).
	Tau      int  `json:"tau"`
	Complete bool `json:"complete"`
	// LocalTau is the worst-case local mixing time ζ(ε): walks mix
	// over ≥ 1−ε of the stationary mass pointwise.
	LocalTau      int  `json:"local_tau"`
	LocalComplete bool `json:"local_complete"`
	// NoiseFloor is the sampling-bias floor subtracted from the raw
	// ℓ1 distance before the ε comparison.
	NoiseFloor float64 `json:"noise_floor"`
	// Communication accounting totals over every source's run.
	Rounds           int   `json:"rounds"`
	Messages         int64 `json:"messages"`
	OffShardMessages int64 `json:"offshard_messages"`
	OnShardBytes     int64 `json:"onshard_bytes"`
	OffShardBytes    int64 `json:"offshard_bytes"`
	// Nodes and Edges describe the measured component.
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
}

// AdmissionResult is the SybilLimit admission payload.
type AdmissionResult struct {
	// Verifier is the sampled verifier node.
	Verifier int64 `json:"verifier"`
	// Suspects is the sampled suspect count.
	Suspects int `json:"suspects"`
	Accepted int `json:"accepted"`
	// AcceptRate = Accepted/Suspects.
	AcceptRate float64 `json:"accept_rate"`
	// NoIntersection and BalanceRejected split the rejections.
	NoIntersection  int `json:"no_intersection"`
	BalanceRejected int `json:"balance_rejected"`
	// R and W echo the effective protocol parameters (W is the
	// requested MaxWalk).
	R int `json:"r"`
	W int `json:"w"`
	// Nodes and Edges describe the measured component.
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
}

// Document is the schema-versioned envelope around one experiment's
// raw rows. `paperfigs -json` writes exactly this for every artifact
// file, and OpExperiment responses embed the same document, so the
// two are field-for-field interchangeable.
type Document struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Name          string `json:"name,omitempty"`
	Title         string `json:"title,omitempty"`
	Rows          any    `json:"rows"`
}

// GraphInfo describes one registry entry of a running daemon.
type GraphInfo struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int64  `json:"edges"`
	// Hash is the content identity of the loaded component — the graph
	// part of every fingerprint. Mutable graphs stamp it with the
	// current mutation epoch ("<sha256>@v<version>"), so every epoch
	// fingerprints differently and stale cache entries can never serve
	// a post-mutation query.
	Hash string `json:"hash"`
	// Origin says where the graph came from: "file:<path>" or
	// "dataset:<name>:<scale>".
	Origin string `json:"origin"`
	// Mutable reports the graph accepts POST /v1/mutate; Version is its
	// current mutation epoch (0 until the first mutation).
	Mutable bool   `json:"mutable,omitempty"`
	Version uint64 `json:"version,omitempty"`
}

// maxNodeID is the largest node ID the CSR representation can address
// (graph.MaxNodes, restated here so the wire schema stays free of
// internal imports).
const maxNodeID = 1<<32 - 2

// EdgeSpec is one undirected edge of a mutation request. Order of the
// endpoints is irrelevant; self-loops are ignored server-side.
type EdgeSpec struct {
	U int64 `json:"u"`
	V int64 `json:"v"`
}

// MutateRequest is the body of POST /v1/mutate: one atomic mutation
// batch against a registered mutable graph. Inserts may reference node
// IDs beyond the current range, growing the graph; deletes of absent
// edges are no-ops; an edge in both lists is deleted (delete wins).
// Applying any batch — even an all-no-op one — bumps the graph's
// version and evicts every cached result computed against earlier
// epochs.
type MutateRequest struct {
	SchemaVersion int    `json:"schema_version,omitempty"`
	Graph         string `json:"graph"`
	// Insert and Delete are explicit edge batches.
	Insert []EdgeSpec `json:"insert,omitempty"`
	Delete []EdgeSpec `json:"delete,omitempty"`
	// Grow, when positive, additionally inserts this many uniformly
	// sampled absent edges, server-side — the growth trajectory of
	// experiment E1 driven over the wire. On dense graphs the sampler
	// may come back short; the response's Inserted count is the truth.
	Grow int `json:"grow,omitempty"`
	// Seed seeds the Grow sampling; 0 derives a seed from the current
	// version, so repeated unseeded grows still differ per epoch.
	Seed uint64 `json:"seed,omitempty"`
}

// Validate checks the mutation envelope.
func (r MutateRequest) Validate() error {
	if r.SchemaVersion != 0 && r.SchemaVersion != SchemaVersion {
		return fmt.Errorf("api: unsupported schema_version %d (server speaks %d)",
			r.SchemaVersion, SchemaVersion)
	}
	if r.Graph == "" {
		return fmt.Errorf("api: mutate needs a graph")
	}
	if r.Grow < 0 {
		return fmt.Errorf("api: grow %d must be non-negative", r.Grow)
	}
	if len(r.Insert) == 0 && len(r.Delete) == 0 && r.Grow == 0 {
		return fmt.Errorf("api: empty mutation (want insert, delete or grow)")
	}
	for _, e := range append(append([]EdgeSpec(nil), r.Insert...), r.Delete...) {
		if e.U < 0 || e.V < 0 || e.U > maxNodeID || e.V > maxNodeID {
			return fmt.Errorf("api: edge {%d,%d} out of node-ID range [0,%d]", e.U, e.V, int64(maxNodeID))
		}
	}
	return nil
}

// MutateResponse is the body of every /v1/mutate answer.
type MutateResponse struct {
	SchemaVersion int    `json:"schema_version"`
	Graph         string `json:"graph,omitempty"`
	// Version is the epoch the batch produced; Inserted and Deleted
	// count the edges that actually changed the graph.
	Version  uint64 `json:"version"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
	// Nodes and Edges describe the new epoch (before LCC extraction).
	Nodes int   `json:"nodes"`
	Edges int64 `json:"edges"`
	// Hash is the version-stamped content identity subsequent query
	// fingerprints are keyed by.
	Hash string `json:"hash,omitempty"`
	// Evicted counts the cached results this mutation invalidated.
	Evicted   int    `json:"evicted"`
	ElapsedNS int64  `json:"elapsed_ns"`
	Error     string `json:"error,omitempty"`
}

// GraphsResponse is the body of GET /v1/graphs.
type GraphsResponse struct {
	SchemaVersion int         `json:"schema_version"`
	Graphs        []GraphInfo `json:"graphs"`
}

// StatsResponse is the body of GET /stats: service counters (served
// from the internal/telemetry collector) plus the kernel counters the
// solves accumulated.
type StatsResponse struct {
	SchemaVersion int   `json:"schema_version"`
	UptimeNS      int64 `json:"uptime_ns"`
	Pool          int   `json:"pool"`
	Graphs        int   `json:"graphs"`
	CacheEntries  int   `json:"cache_entries"`
	// QueueDepth is the instantaneous number of solves waiting for a
	// pool slot (the admission-control wait-queue, DESIGN.md §14).
	QueueDepth int `json:"queue_depth"`
	// Telemetry carries the full counter snapshot; the service_*
	// counters (requests, cache hits/misses, singleflight joins,
	// solves, errors) live beside the kernel counters the solves
	// incremented.
	Telemetry telemetry.Snapshot `json:"telemetry"`
}

// Fingerprint canonically hashes everything a query result depends
// on: the schema generation, the op, the graph's content identity (or
// the experiment ID), and the output-determining Params (see
// Params.Canon for what is deliberately excluded). This generalizes
// internal/checkpoint's fingerprint discipline from crash-resume to
// request dedup: equal fingerprints may share one solve, different
// fingerprints never collide on a cache entry.
func Fingerprint(req Request, graphHash string) string {
	canon := fmt.Sprintf("v%d|op=%s|graph=%s|exp=%s|%s",
		SchemaVersion, req.Op, graphHash, req.Experiment, req.Params.Canon())
	sum := sha256.Sum256([]byte(canon))
	return hex.EncodeToString(sum[:])
}
