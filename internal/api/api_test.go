package api

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParamsDefaults(t *testing.T) {
	p := Defaults()
	if p.Seed != DefaultSeed {
		t.Errorf("Defaults().Seed = %d, want %d", p.Seed, DefaultSeed)
	}
	if p.Sources != DefaultSources || p.MaxWalk != DefaultMaxWalk ||
		p.SpectralTol != DefaultSpectralTol || p.Scale != DefaultScale {
		t.Errorf("Defaults() = %+v, want the canonical constants", p)
	}
	if p.DistShards != DefaultDistShards || p.DistWalks != DefaultDistWalks ||
		p.DistRounds != DefaultDistRounds {
		t.Errorf("Defaults() dist knobs = %d/%d/%d, want %d/%d/%d",
			p.DistShards, p.DistWalks, p.DistRounds,
			DefaultDistShards, DefaultDistWalks, DefaultDistRounds)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Defaults().Validate() = %v", err)
	}
}

func TestParamsWithDefaultsKeepsSeed(t *testing.T) {
	p := Params{Seed: 0}.WithDefaults()
	if p.Seed != 0 {
		t.Errorf("WithDefaults rewrote the zero seed to %d", p.Seed)
	}
	if p.Sources != DefaultSources {
		t.Errorf("Sources = %d, want default %d", p.Sources, DefaultSources)
	}
	if p.Workers != 0 {
		t.Errorf("Workers = %d, want 0 (auto)", p.Workers)
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Scale: -1},
		{Sources: -5},
		{MaxWalk: -1},
		{SpectralTol: -1e-9},
		{Method: "qr"},
		{Eps: 1.5},
		{EpsList: []float64{0.1, 2}},
		{Workers: -2},
		{DistShards: -1},
		{DistWalks: -8},
		{DistRounds: -3},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero Params must validate (defaults fill it): %v", err)
	}
}

func TestRequestValidate(t *testing.T) {
	good := Request{Op: OpSLEM, Graph: "physics-1"}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []Request{
		{},
		{Op: "spectrum", Graph: "g"},
		{Op: OpSLEM},
		{Op: OpExperiment},
		{Op: OpSLEM, Graph: "g", SchemaVersion: 99},
		{Op: OpSLEM, Graph: "g", TimeoutMS: -1},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", r)
		}
	}
	if err := (Request{Op: OpExperiment, Experiment: "T1"}).Validate(); err != nil {
		t.Errorf("experiment request needs no graph: %v", err)
	}
}

// TestParamsWireNames pins the stable snake_case JSON names of the
// versioned schema: renaming any of these is a schema break and must
// bump SchemaVersion.
func TestParamsWireNames(t *testing.T) {
	req := Request{
		SchemaVersion: SchemaVersion,
		Op:            OpCDF,
		Graph:         "physics-1",
		Params: Params{
			Scale: 0.01, Seed: 7, Sources: 10, MaxWalk: 50,
			SpectralTol: 1e-7, BlockSize: 8, Workers: 2,
			Method: MethodPower, Eps: 0.1, EpsList: []float64{0.25},
			DistShards: 4, DistWalks: 32, DistRounds: 100,
		},
		TimeoutMS: 1000,
	}
	raw, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"schema_version"`, `"op"`, `"graph"`, `"params"`, `"timeout_ms"`,
		`"scale"`, `"seed"`, `"sources"`, `"max_walk"`, `"spectral_tol"`,
		`"block_size"`, `"workers"`, `"method"`, `"eps"`, `"eps_list"`,
		`"dist_shards"`, `"dist_walks"`, `"dist_rounds"`,
	} {
		if !strings.Contains(string(raw), key) {
			t.Errorf("wire document missing stable key %s:\n%s", key, raw)
		}
	}
}

func TestFingerprint(t *testing.T) {
	base := Request{Op: OpSLEM, Graph: "g", Params: Params{Seed: 1}}
	fp := Fingerprint(base, "hashA")

	if got := Fingerprint(base, "hashA"); got != fp {
		t.Error("fingerprint is not deterministic")
	}
	// Workers and BlockSize are byte-identity knobs: they must share
	// the fingerprint so concurrent variants dedup onto one solve.
	ident := base
	ident.Params.Workers = 4
	ident.Params.BlockSize = 16
	if got := Fingerprint(ident, "hashA"); got != fp {
		t.Error("workers/block_size changed the fingerprint; they are byte-identity knobs")
	}
	// DistShards is a layout knob with the same contract: the distmix
	// estimate is shard-count invariant, so shard count must dedup too.
	ident = base
	ident.Params.DistShards = 32
	if got := Fingerprint(ident, "hashA"); got != fp {
		t.Error("dist_shards changed the fingerprint; the estimate is shard-count invariant")
	}
	// Everything output-determining must change it.
	for name, req := range map[string]Request{
		"op":          {Op: OpBounds, Graph: "g", Params: Params{Seed: 1}},
		"seed":        {Op: OpSLEM, Graph: "g", Params: Params{Seed: 2}},
		"sources":     {Op: OpSLEM, Graph: "g", Params: Params{Seed: 1, Sources: 7}},
		"method":      {Op: OpSLEM, Graph: "g", Params: Params{Seed: 1, Method: MethodPower}},
		"dist_walks":  {Op: OpSLEM, Graph: "g", Params: Params{Seed: 1, DistWalks: 128}},
		"dist_rounds": {Op: OpSLEM, Graph: "g", Params: Params{Seed: 1, DistRounds: 77}},
	} {
		if got := Fingerprint(req, "hashA"); got == fp {
			t.Errorf("varying %s kept the fingerprint", name)
		}
	}
	if got := Fingerprint(base, "hashB"); got == fp {
		t.Error("graph hash does not reach the fingerprint")
	}
}
