// Package centrality computes the node-centrality measures the
// paper's related work builds on: betweenness (Quercia & Hailes'
// Sybil defense [19] and Daly & Haahr's DTN routing [2] both rank by
// it), closeness, degree, and PageRank. Betweenness uses Brandes'
// algorithm; PageRank is damped power iteration on the walk operator
// this library is all about.
package centrality

import (
	"math"
	"math/rand/v2"

	"mixtime/internal/graph"
)

// Betweenness returns the (unnormalized) shortest-path betweenness of
// every vertex by Brandes' algorithm: one BFS + dependency
// accumulation per source, O(n·m) total. Each unordered pair
// contributes once.
func Betweenness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n == 0 {
		return bc
	}
	sigma := make([]float64, n) // shortest-path counts
	dist := make([]int32, n)
	delta := make([]float64, n)
	order := make([]graph.NodeID, 0, n)
	preds := make([][]graph.NodeID, n)

	for s := 0; s < n; s++ {
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		sigma[s] = 1
		dist[s] = 0
		order = append(order, graph.NodeID(s))
		for head := 0; head < len(order); head++ {
			v := order[head]
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					order = append(order, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Accumulate dependencies in reverse BFS order.
		for i := len(order) - 1; i > 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			bc[w] += delta[w]
		}
	}
	// Each pair counted from both endpoints → halve.
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}

// SampledBetweenness estimates betweenness from k random pivot
// sources (Brandes–Pich), scaled to the full-source estimate.
func SampledBetweenness(g *graph.Graph, k int, rng *rand.Rand) []float64 {
	n := g.NumNodes()
	bc := make([]float64, n)
	if n == 0 || k <= 0 {
		return bc
	}
	if k > n {
		k = n
	}
	sigma := make([]float64, n)
	dist := make([]int32, n)
	delta := make([]float64, n)
	order := make([]graph.NodeID, 0, n)
	preds := make([][]graph.NodeID, n)
	for pivot := 0; pivot < k; pivot++ {
		s := rng.IntN(n)
		for i := 0; i < n; i++ {
			sigma[i] = 0
			dist[i] = -1
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		sigma[s] = 1
		dist[s] = 0
		order = append(order, graph.NodeID(s))
		for head := 0; head < len(order); head++ {
			v := order[head]
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					order = append(order, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		for i := len(order) - 1; i > 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			bc[w] += delta[w]
		}
	}
	scale := float64(n) / float64(k) / 2
	for i := range bc {
		bc[i] *= scale
	}
	return bc
}

// Closeness returns the closeness centrality of every vertex:
// (reachable−1) / Σ distances, 0 for isolated vertices. O(n·m).
func Closeness(g *graph.Graph) []float64 {
	n := g.NumNodes()
	cc := make([]float64, n)
	for s := 0; s < n; s++ {
		var sum, reach float64
		graph.BFS(g, graph.NodeID(s), func(_ graph.NodeID, depth int) bool {
			sum += float64(depth)
			reach++
			return true
		})
		if sum > 0 {
			cc[s] = (reach - 1) / sum
		}
	}
	return cc
}

// PageRank returns the damped PageRank vector (damping d, tolerance
// tol on the L1 update, both defaulted when ≤ 0). On an undirected
// graph PageRank with d→1 approaches the stationary distribution
// deg/2m; the damping teleport is what keeps it distinct.
func PageRank(g *graph.Graph, d, tol float64, maxIter int) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	if d <= 0 || d >= 1 {
		d = 0.85
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	p := make([]float64, n)
	q := make([]float64, n)
	for i := range p {
		p[i] = 1 / float64(n)
	}
	base := (1 - d) / float64(n)
	for iter := 0; iter < maxIter; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if g.Degree(graph.NodeID(v)) == 0 {
				dangling += p[v]
			}
		}
		for v := range q {
			q[v] = base + d*dangling/float64(n)
		}
		for v := 0; v < n; v++ {
			deg := g.Degree(graph.NodeID(v))
			if deg == 0 {
				continue
			}
			share := d * p[v] / float64(deg)
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				q[w] += share
			}
		}
		var diff float64
		for i := range p {
			diff += math.Abs(q[i] - p[i])
		}
		p, q = q, p
		if diff < tol {
			break
		}
	}
	return p
}

// PersonalizedPageRank returns the PageRank vector with teleport
// concentrated at source — random-walk-with-restart "connectivity to
// the trusted node". Viswanath et al. showed that random-walk Sybil
// defenses reduce to ranking by exactly this kind of score; the
// defense-comparison experiment uses it as the ranking core.
func PersonalizedPageRank(g *graph.Graph, source graph.NodeID, d, tol float64, maxIter int) []float64 {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	if d <= 0 || d >= 1 {
		d = 0.85
	}
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 1000
	}
	p := make([]float64, n)
	q := make([]float64, n)
	p[source] = 1
	for iter := 0; iter < maxIter; iter++ {
		var dangling float64
		for v := 0; v < n; v++ {
			if g.Degree(graph.NodeID(v)) == 0 {
				dangling += p[v]
			}
		}
		for v := range q {
			q[v] = 0
		}
		q[source] = (1 - d) + d*dangling
		for v := 0; v < n; v++ {
			deg := g.Degree(graph.NodeID(v))
			if deg == 0 {
				continue
			}
			share := d * p[v] / float64(deg)
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				q[w] += share
			}
		}
		var diff float64
		for i := range p {
			diff += math.Abs(q[i] - p[i])
		}
		p, q = q, p
		if diff < tol {
			break
		}
	}
	return p
}

// Top returns the indices of the k largest entries of scores,
// descending.
func Top(scores []float64, k int) []graph.NodeID {
	type pair struct {
		v graph.NodeID
		s float64
	}
	all := make([]pair, len(scores))
	for i, s := range scores {
		all[i] = pair{graph.NodeID(i), s}
	}
	// Partial selection sort is fine for the small k this is used
	// with.
	if k > len(all) {
		k = len(all)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].s > all[best].s {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
	}
	out := make([]graph.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].v
	}
	return out
}
