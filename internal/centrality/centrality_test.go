package centrality

import (
	"math"
	"math/rand/v2"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0xce)) }

func TestBetweennessStar(t *testing.T) {
	// Star K_{1,4}: hub lies on every leaf pair's path: C(4,2)=6;
	// leaves 0.
	bc := Betweenness(gen.Star(4))
	if math.Abs(bc[0]-6) > 1e-9 {
		t.Fatalf("hub betweenness %v, want 6", bc[0])
	}
	for v := 1; v <= 4; v++ {
		if bc[v] != 0 {
			t.Fatalf("leaf %d betweenness %v", v, bc[v])
		}
	}
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3-4: bc(2)=4 ({0,1}×{3,4}), bc(1)=3 ({0}×{2,3,4}).
	bc := Betweenness(gen.Path(5))
	want := []float64{0, 3, 4, 3, 0}
	for i := range want {
		if math.Abs(bc[i]-want[i]) > 1e-9 {
			t.Fatalf("bc = %v, want %v", bc, want)
		}
	}
}

func TestBetweennessCompleteIsZero(t *testing.T) {
	for _, v := range Betweenness(gen.Complete(6)) {
		if v != 0 {
			t.Fatalf("K6 betweenness %v", v)
		}
	}
}

func TestBetweennessBridge(t *testing.T) {
	// Barbell: the two bridge endpoints dominate.
	g := gen.Barbell(6)
	bc := Betweenness(g)
	top := Top(bc, 2)
	hasLeft, hasRight := false, false
	for _, v := range top {
		if v == 0 {
			hasLeft = true
		}
		if v == 6 {
			hasRight = true
		}
	}
	if !hasLeft || !hasRight {
		t.Fatalf("bridge endpoints not top-2: %v", top)
	}
}

func TestSampledBetweennessApproximates(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng(1))
	exact := Betweenness(g)
	approx := SampledBetweenness(g, 200, rng(2)) // all pivots, sampled with replacement
	// Rank correlation proxy: the exact top node should be near the
	// top of the approximation.
	topExact := Top(exact, 1)[0]
	topSet := Top(approx, 10)
	found := false
	for _, v := range topSet {
		if v == topExact {
			found = true
		}
	}
	if !found {
		t.Fatalf("exact top node %d missing from sampled top-10 %v", topExact, topSet)
	}
	if z := SampledBetweenness(g, 0, rng(3)); z[0] != 0 {
		t.Fatal("k=0 sample not zero")
	}
}

func TestCloseness(t *testing.T) {
	// Path 0-1-2: closeness(1) = 2/2 = 1, ends = 2/3.
	cc := Closeness(gen.Path(3))
	if math.Abs(cc[1]-1) > 1e-12 || math.Abs(cc[0]-2.0/3) > 1e-12 {
		t.Fatalf("closeness %v", cc)
	}
	// Isolated vertex: 0.
	b := graph.NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddNode(2)
	if cc := Closeness(b.Build()); cc[2] != 0 {
		t.Fatalf("isolated closeness %v", cc[2])
	}
}

func TestPageRankUniformOnRegular(t *testing.T) {
	// On a regular graph PageRank is exactly uniform.
	pr := PageRank(gen.Ring(10), 0.85, 1e-12, 0)
	for _, p := range pr {
		if math.Abs(p-0.1) > 1e-9 {
			t.Fatalf("ring PageRank %v", pr)
		}
	}
}

func TestPageRankSumsToOneAndFavorsHubs(t *testing.T) {
	g := gen.Star(9)
	pr := PageRank(g, 0.85, 1e-12, 0)
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PageRank sums to %v", sum)
	}
	if Top(pr, 1)[0] != 0 {
		t.Fatal("hub not top-ranked")
	}
	if pr[0] < 4*pr[1] {
		t.Fatalf("hub %v vs leaf %v", pr[0], pr[1])
	}
}

func TestPageRankHandlesDangling(t *testing.T) {
	b := graph.NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddNode(2) // isolated: dangling mass redistributes
	pr := PageRank(b.Build(), 0.85, 1e-12, 0)
	var sum float64
	for _, p := range pr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("dangling PageRank sums to %v", sum)
	}
	if pr[2] <= 0 {
		t.Fatal("isolated node got zero rank")
	}
}

func TestPersonalizedPageRank(t *testing.T) {
	// Mass concentrates near the restart node and decays with
	// distance on a path.
	g := gen.Path(7)
	ppr := PersonalizedPageRank(g, 0, 0.85, 1e-12, 0)
	var sum float64
	for _, p := range ppr {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PPR sums to %v", sum)
	}
	// Endpoint 0 funnels all its mass through node 1, so the peak sits
	// at index 1; beyond it the score decays with distance.
	for i := 2; i < len(ppr); i++ {
		if ppr[i] > ppr[i-1]+1e-12 {
			t.Fatalf("PPR not decaying along path: %v", ppr)
		}
	}
	if ppr[0] < ppr[2] {
		t.Fatalf("restart node below distance-2 node: %v", ppr)
	}
	// Barbell: restart in the left clique keeps most mass there.
	bb := gen.Barbell(8)
	ppr = PersonalizedPageRank(bb, 1, 0.9, 1e-12, 0)
	var left, right float64
	for v := 0; v < 8; v++ {
		left += ppr[v]
		right += ppr[v+8]
	}
	if left < 3*right {
		t.Fatalf("barbell PPR left %v vs right %v", left, right)
	}
}

func TestTop(t *testing.T) {
	got := Top([]float64{0.1, 0.9, 0.5}, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Top = %v", got)
	}
	if len(Top([]float64{1}, 5)) != 1 {
		t.Fatal("k clamp")
	}
}

func TestBetweennessEmpty(t *testing.T) {
	if bc := Betweenness(&graph.Graph{}); len(bc) != 0 {
		t.Fatal("empty betweenness")
	}
}
