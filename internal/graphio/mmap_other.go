//go:build !linux

package graphio

import (
	"errors"
	"os"
)

// mmapSupported: no memory mapping off linux — OpenMIXGMapped and the
// streaming writer fall back to their portable streamed paths.
const mmapSupported = false

var errNoMmap = errors.New("graphio: memory mapping unsupported on this platform")

func mmapRead(f *os.File, size int64) ([]byte, error)  { return nil, errNoMmap }
func mmapWrite(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }
func munmap(b []byte) error                            { return nil }
