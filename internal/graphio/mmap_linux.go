//go:build linux

package graphio

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this platform has the memory-mapped
// loading fast path; elsewhere the callers fall back to streamed
// reads.
const mmapSupported = true

// mmapRead maps size bytes of f read-only and shared.
func mmapRead(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// mmapWrite maps size bytes of f read-write and shared — the
// streaming writer's scatter target. The file must already be
// truncated to size.
func mmapWrite(f *os.File, size int64) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
}

// munmap releases a mapping created by mmapRead or mmapWrite.
func munmap(b []byte) error { return syscall.Munmap(b) }
