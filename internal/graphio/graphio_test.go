package graphio

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"mixtime/internal/digraph"
	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func sameGraph(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	same := true
	a.Edges(func(u, v graph.NodeID) bool {
		if !b.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	return same
}

func TestReadEdgeListBasics(t *testing.T) {
	in := `# SNAP-style comment
% matrix-market-style comment

0	1
1 2
2	0
1	2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("-1 2\n")); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := gen.BarabasiAlbert(300, 3, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, back) {
		t.Fatal("edge-list round trip lost edges")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := gen.ErdosRenyi(500, 0.01, rng)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := readBinary(&buf, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, back) {
		t.Fatal("binary round trip lost edges")
	}
}

// writeBinaryV1 emits the legacy edge-pair format so the v1 read path
// keeps test coverage now that WriteBinary produces v2.
func writeBinaryV1(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := make([]byte, 20)
	binary.LittleEndian.PutUint32(hdr[0:], 1)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var werr error
	buf := make([]byte, 8)
	g.Edges(func(u, v graph.NodeID) bool {
		binary.LittleEndian.PutUint32(buf[0:], u)
		binary.LittleEndian.PutUint32(buf[4:], v)
		if _, err := bw.Write(buf); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

func TestBinaryV1LegacyStillReadable(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	g := gen.ErdosRenyi(300, 0.02, rng)
	var buf bytes.Buffer
	if err := writeBinaryV1(&buf, g); err != nil {
		t.Fatal(err)
	}
	size := int64(buf.Len())
	back, err := readBinary(bytes.NewReader(buf.Bytes()), size)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, back) {
		t.Fatal("v1 round trip lost edges")
	}
	// Truncating the payload fails cleanly.
	if _, err := readBinary(bytes.NewReader(buf.Bytes()[:buf.Len()-3]), -1); err == nil {
		t.Fatal("truncated v1 stream accepted")
	}
	// A known size exposes an inflated edge count before allocation.
	inflated := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint64(inflated[16:], 1<<40)
	if _, err := readBinary(bytes.NewReader(inflated), size); err == nil ||
		!strings.Contains(err.Error(), "bytes") {
		t.Fatalf("inflated v1 edge count accepted: %v", err)
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := gen.Ring(10)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncate mid-payload.
	if _, err := readBinary(bytes.NewReader(data[:len(data)-3]), -1); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Corrupt magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := readBinary(bytes.NewReader(bad), -1); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt version.
	bad = append([]byte(nil), data...)
	bad[4] = 9
	if _, err := readBinary(bytes.NewReader(bad), -1); err == nil {
		t.Fatal("bad version accepted")
	}
	// Node count past the load limit is rejected up front.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(bad[8:], MaxLoadNodes+1)
	if _, err := readBinary(bytes.NewReader(bad), -1); err == nil ||
		!strings.Contains(err.Error(), "load limit") {
		t.Fatalf("oversized node count accepted: %v", err)
	}
	// Declared counts larger than the file can hold fail before
	// allocation when the size is known.
	bad = append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(bad[16:], 1<<40)
	if _, err := readBinary(bytes.NewReader(bad), int64(len(bad))); err == nil ||
		!strings.Contains(err.Error(), "bytes") {
		t.Fatalf("inflated edge count accepted: %v", err)
	}
}

func TestBinaryRejectsBadCSROffsets(t *testing.T) {
	g := gen.Ring(10) // n=10, m=10, degree 2 everywhere
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	corrupt := func(mutate func(b []byte)) error {
		b := append([]byte(nil), data...)
		mutate(b)
		_, err := readBinary(bytes.NewReader(b), int64(len(b)))
		return err
	}
	offsetAt := func(b []byte, i int) []byte { return b[binHeaderLen+8*i:] }
	// Non-monotone: offsets[3] below offsets[2].
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint64(offsetAt(b, 3), 1)
	}); err == nil || !strings.Contains(err.Error(), "non-monotone") {
		t.Fatalf("non-monotone offsets: %v", err)
	}
	// First offset nonzero.
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint64(offsetAt(b, 0), 2)
	}); err == nil || !strings.Contains(err.Error(), "start at") {
		t.Fatalf("nonzero first offset: %v", err)
	}
	// An offset past the adjacency length.
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint64(offsetAt(b, 5), 1<<30)
	}); err == nil || !strings.Contains(err.Error(), "exceeds adjacency") {
		t.Fatalf("out-of-range offset: %v", err)
	}
	// Final offset short of the adjacency length.
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint64(offsetAt(b, 10), 18)
	}); err == nil || !strings.Contains(err.Error(), "end at") {
		t.Fatalf("short final offset: %v", err)
	}
	// An adjacency entry out of node range — caught by CSR validation.
	if err := corrupt(func(b []byte) {
		binary.LittleEndian.PutUint32(b[binHeaderLen+8*11:], 99)
	}); err == nil || !strings.Contains(err.Error(), "invalid CSR") {
		t.Fatalf("out-of-range neighbor: %v", err)
	}
}

func TestReadEdgeListRejectsOversizedIDs(t *testing.T) {
	defer func(old uint64) { MaxLoadNodes = old }(MaxLoadNodes)
	MaxLoadNodes = 100
	if _, err := ReadEdgeList(strings.NewReader("0 100\n")); err == nil ||
		!strings.Contains(err.Error(), "load limit") {
		t.Fatalf("oversized endpoint accepted: %v", err)
	}
	if _, err := ReadEdgeList(strings.NewReader("# nodes: 101\n")); err == nil ||
		!strings.Contains(err.Error(), "load limit") {
		t.Fatalf("oversized directive accepted: %v", err)
	}
	if _, err := ReadArcList(strings.NewReader("0 100\n")); err == nil ||
		!strings.Contains(err.Error(), "load limit") {
		t.Fatalf("oversized arc endpoint accepted: %v", err)
	}
	if _, err := ReadArcList(strings.NewReader("# nodes: 101\n")); err == nil ||
		!strings.Contains(err.Error(), "load limit") {
		t.Fatalf("oversized arc directive accepted: %v", err)
	}
	// IDs at the cap boundary still load.
	if g, err := ReadEdgeList(strings.NewReader("0 99\n")); err != nil || g.NumNodes() != 100 {
		t.Fatalf("boundary ID rejected: %v", err)
	}
}

func TestFileRoundTripAllFormats(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(7, 8))
	g := gen.WattsStrogatz(200, 3, 0.2, rng)
	for _, name := range []string{"g.txt", "g.txt.gz", "g.mixg", "g.mixg.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !sameGraph(g, back) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestEdgeListPreservesTrailingIsolatedNodes(t *testing.T) {
	b := NewTestBuilderWithIsolated()
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() {
		t.Fatalf("round trip n = %d, want %d", back.NumNodes(), g.NumNodes())
	}
}

// NewTestBuilderWithIsolated builds {0-1} plus isolated trailing
// nodes 2..4.
func NewTestBuilderWithIsolated() *graph.Builder {
	b := graph.NewBuilder(1)
	b.AddEdge(0, 1)
	b.AddNode(4)
	return b
}

func TestDirectedRoundTrip(t *testing.T) {
	b := digraph.NewBuilder(0)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(2, 0)
	b.AddArc(0, 2)
	b.AddNode(5) // trailing isolated
	dg := b.Build()
	var buf bytes.Buffer
	if err := WriteArcList(&buf, dg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArcList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 6 || back.NumArcs() != 4 {
		t.Fatalf("round trip %v", back)
	}
	if !back.HasArc(0, 2) || !back.HasArc(2, 0) || back.HasArc(1, 0) {
		t.Fatal("arc directions lost")
	}
}

func TestLoadDirectedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arcs.txt.gz")
	b := digraph.NewBuilder(0)
	b.AddArc(3, 7)
	b.AddArc(7, 3)
	b.AddArc(1, 2)
	dg := b.Build()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if err := WriteArcList(zw, dg); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDirectedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumArcs() != 3 || !back.HasArc(3, 7) {
		t.Fatalf("loaded %v", back)
	}
	if _, err := LoadDirectedFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadArcListErrors(t *testing.T) {
	if _, err := ReadArcList(strings.NewReader("1\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ReadArcList(strings.NewReader("# nodes: x\n")); err == nil {
		t.Fatal("bad directive accepted")
	}
}

// Property: every generated graph survives both round trips intact.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		g := gen.ErdosRenyiM(80, 150, rng)
		var txt, bin bytes.Buffer
		if WriteEdgeList(&txt, g) != nil || WriteBinary(&bin, g) != nil {
			return false
		}
		fromTxt, err1 := ReadEdgeList(&txt)
		fromBin, err2 := readBinary(&bin, -1)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameGraph(g, fromTxt) && sameGraph(g, fromBin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
