package graphio

import (
	"bytes"
	"compress/gzip"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"mixtime/internal/digraph"
	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func sameGraph(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	same := true
	a.Edges(func(u, v graph.NodeID) bool {
		if !b.HasEdge(u, v) {
			same = false
			return false
		}
		return true
	})
	return same
}

func TestReadEdgeListBasics(t *testing.T) {
	in := `# SNAP-style comment
% matrix-market-style comment

0	1
1 2
2	0
1	2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("got %v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(strings.NewReader("0\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
	if _, err := ReadEdgeList(strings.NewReader("-1 2\n")); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	g := gen.BarabasiAlbert(300, 3, rng)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, back) {
		t.Fatal("edge-list round trip lost edges")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	g := gen.ErdosRenyi(500, 0.01, rng)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := readBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, back) {
		t.Fatal("binary round trip lost edges")
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g := gen.Ring(10)
	_ = rng
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncate mid-edge.
	if _, err := readBinary(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Corrupt magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := readBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt version.
	bad = append([]byte(nil), data...)
	bad[4] = 9
	if _, err := readBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestFileRoundTripAllFormats(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewPCG(7, 8))
	g := gen.WattsStrogatz(200, 3, 0.2, rng)
	for _, name := range []string{"g.txt", "g.txt.gz", "g.mixg", "g.mixg.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: save: %v", name, err)
		}
		back, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if !sameGraph(g, back) {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestEdgeListPreservesTrailingIsolatedNodes(t *testing.T) {
	b := NewTestBuilderWithIsolated()
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() {
		t.Fatalf("round trip n = %d, want %d", back.NumNodes(), g.NumNodes())
	}
}

// NewTestBuilderWithIsolated builds {0-1} plus isolated trailing
// nodes 2..4.
func NewTestBuilderWithIsolated() *graph.Builder {
	b := graph.NewBuilder(1)
	b.AddEdge(0, 1)
	b.AddNode(4)
	return b
}

func TestDirectedRoundTrip(t *testing.T) {
	b := digraph.NewBuilder(0)
	b.AddArc(0, 1)
	b.AddArc(1, 2)
	b.AddArc(2, 0)
	b.AddArc(0, 2)
	b.AddNode(5) // trailing isolated
	dg := b.Build()
	var buf bytes.Buffer
	if err := WriteArcList(&buf, dg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArcList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 6 || back.NumArcs() != 4 {
		t.Fatalf("round trip %v", back)
	}
	if !back.HasArc(0, 2) || !back.HasArc(2, 0) || back.HasArc(1, 0) {
		t.Fatal("arc directions lost")
	}
}

func TestLoadDirectedFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arcs.txt.gz")
	b := digraph.NewBuilder(0)
	b.AddArc(3, 7)
	b.AddArc(7, 3)
	b.AddArc(1, 2)
	dg := b.Build()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if err := WriteArcList(zw, dg); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := LoadDirectedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumArcs() != 3 || !back.HasArc(3, 7) {
		t.Fatalf("loaded %v", back)
	}
	if _, err := LoadDirectedFile(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestReadArcListErrors(t *testing.T) {
	if _, err := ReadArcList(strings.NewReader("1\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := ReadArcList(strings.NewReader("# nodes: x\n")); err == nil {
		t.Fatal("bad directive accepted")
	}
}

// Property: every generated graph survives both round trips intact.
func TestQuickRoundTrips(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		g := gen.ErdosRenyiM(80, 150, rng)
		var txt, bin bytes.Buffer
		if WriteEdgeList(&txt, g) != nil || WriteBinary(&bin, g) != nil {
			return false
		}
		fromTxt, err1 := ReadEdgeList(&txt)
		fromBin, err2 := readBinary(&bin)
		if err1 != nil || err2 != nil {
			return false
		}
		return sameGraph(g, fromTxt) && sameGraph(g, fromBin)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
