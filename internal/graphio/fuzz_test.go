package graphio

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"mixtime/internal/gen"
)

// The fuzz targets assert the hardening contract: no input — however
// corrupt — makes a reader panic or allocate past MaxLoadNodes; they
// either return a graph or a wrapped error. `go test -run=Fuzz`
// executes the seed corpus below on every CI run (wired into
// scripts/check.sh); `go test -fuzz=FuzzReadMIXG ./internal/graphio`
// explores further.

// fuzzCap lowers the load limit so a fuzzer-invented header cannot
// make the harness itself run out of memory.
func fuzzCap(f *testing.F) {
	old := MaxLoadNodes
	MaxLoadNodes = 1 << 16
	f.Cleanup(func() { MaxLoadNodes = old })
}

func FuzzReadEdgeList(f *testing.F) {
	fuzzCap(f)
	f.Add([]byte("# nodes: 5\n0\t1\n1 2\n2\t0\n"))
	f.Add([]byte("% comment\n\n3 4\n4 3\n"))
	f.Add([]byte("0 1\n1\n"))
	f.Add([]byte("# nodes: 999999999999\n"))
	f.Add([]byte("a b\n"))
	f.Add([]byte("4294967295 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err == nil && g == nil {
			t.Fatal("nil graph without error")
		}
	})
}

func FuzzReadArcList(f *testing.F) {
	fuzzCap(f)
	f.Add([]byte("# nodes: 4\n0\t1\n1 2\n2\t0\n"))
	f.Add([]byte("0 1\n-1 2\n"))
	f.Add([]byte("# nodes: x\n"))
	f.Add([]byte("7 7\n7 7\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadArcList(bytes.NewReader(data))
		if err == nil && g == nil {
			t.Fatal("nil graph without error")
		}
	})
}

func FuzzReadMIXG(f *testing.F) {
	fuzzCap(f)
	// Valid v2 and v1 snapshots seed the structured corpus.
	var v2 bytes.Buffer
	if err := WriteBinary(&v2, gen.Ring(8)); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	var v1 bytes.Buffer
	if err := writeBinaryV1(&v1, gen.Ring(8)); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	// Truncated header, bad magic, absurd counts.
	f.Add([]byte("MIXG"))
	f.Add([]byte("XXXX00000000000000000000"))
	huge := make([]byte, binHeaderLen)
	copy(huge, binMagic)
	binary.LittleEndian.PutUint32(huge[4:], 2)
	binary.LittleEndian.PutUint64(huge[8:], 1<<60)
	binary.LittleEndian.PutUint64(huge[16:], 1<<60)
	f.Add(huge)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Exercise both the size-known path (as LoadFile uses for
		// uncompressed files) and the unknown-size stream path.
		for _, size := range []int64{int64(len(data)), -1} {
			g, err := readBinary(bytes.NewReader(data), size)
			if err == nil && g == nil {
				t.Fatal("nil graph without error")
			}
			if err == nil {
				if verr := g.Validate(); verr != nil {
					t.Fatalf("reader accepted an invalid graph: %v", verr)
				}
			}
		}
		// The mmap loader must uphold the same contract on the same
		// bytes (it may additionally fall through to the edge-list
		// parser for non-binary input, which is fine — valid or error).
		path := filepath.Join(t.TempDir(), "fuzz.mixg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		mg, err := OpenMIXGMapped(path)
		if err == nil {
			if mg == nil || mg.Graph == nil {
				t.Fatal("mapped loader returned nil graph without error")
			}
			if verr := mg.Validate(); verr != nil {
				t.Fatalf("mapped loader accepted an invalid graph: %v", verr)
			}
			if err := mg.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		}
	})
}
