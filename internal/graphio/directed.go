package graphio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mixtime/internal/digraph"
)

// ReadArcList parses an edge-list stream as a directed graph — the
// native form of the SNAP crawls (wiki-vote, Slashdot, Epinion)
// before the paper's symmetrization step. Comment lines ('#', '%')
// are ignored; each data line is "from to".
func ReadArcList(r io.Reader) (*digraph.DiGraph, error) {
	b := digraph.NewBuilder(1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			if rest, ok := strings.CutPrefix(line, "# nodes:"); ok {
				n, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graphio: line %d: bad nodes directive: %v", lineNo, err)
				}
				if n > 0 {
					if err := checkNodeID(lineNo, n-1); err != nil {
						return nil, err
					}
					b.AddNode(digraph.NodeID(n - 1))
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graphio: line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		if err := checkNodeID(lineNo, u); err != nil {
			return nil, err
		}
		if err := checkNodeID(lineNo, v); err != nil {
			return nil, err
		}
		b.AddArc(digraph.NodeID(u), digraph.NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return b.Build(), nil
}

// WriteArcList writes the digraph as "from\tto" lines.
func WriteArcList(w io.Writer, g *digraph.DiGraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes: %d\n", g.NumNodes())
	fmt.Fprintf(bw, "# directed arcs: %d\n", g.NumArcs())
	for v := 0; v < g.NumNodes(); v++ {
		for _, u := range g.Out(digraph.NodeID(v)) {
			if _, err := fmt.Fprintf(bw, "%d\t%d\n", v, u); err != nil {
				return fmt.Errorf("graphio: %w", err)
			}
		}
	}
	return bw.Flush()
}

// LoadDirectedFile reads a directed edge-list file (".gz"
// transparently decompressed).
func LoadDirectedFile(path string) (*digraph.DiGraph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		defer zr.Close()
		r = zr
	}
	return ReadArcList(r)
}
