// Package graphio reads and writes graphs. Two formats are
// supported:
//
//   - Edge-list text, compatible with the SNAP dataset files the
//     paper's public datasets ship as: one "u<sep>v" pair per line,
//     '#' or '%' comment lines ignored, whitespace- or tab-separated,
//     directed duplicates tolerated (the builder symmetrizes). Files
//     ending in .gz are transparently (de)compressed.
//
//   - A compact binary CSR snapshot ("MIXG" format) for fast reload
//     of large generated graphs.
package graphio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mixtime/internal/graph"
)

// ReadEdgeList parses an edge-list stream into a graph.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	b := graph.NewBuilder(1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			// "# nodes: N" is this package's directive preserving
			// trailing isolated vertices, which bare edge lists cannot
			// express; other comments (SNAP headers) are skipped.
			if rest, ok := strings.CutPrefix(line, "# nodes:"); ok {
				n, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graphio: line %d: bad nodes directive: %v", lineNo, err)
				}
				if n > 0 {
					b.AddNode(graph.NodeID(n - 1))
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graphio: line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as "u\tv" lines, one per undirected
// edge, preceded by a "# nodes:" directive so trailing isolated
// vertices survive the round trip.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes: %d\n", g.NumNodes())
	fmt.Fprintf(bw, "# undirected edges: %d\n", g.NumEdges())
	var werr error
	g.Edges(func(u, v graph.NodeID) bool {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return fmt.Errorf("graphio: %w", werr)
	}
	return bw.Flush()
}

// LoadFile reads a graph from path. ".gz" suffixes are decompressed;
// a "MIXG" magic selects the binary format, anything else parses as
// edge-list text.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		defer zr.Close()
		r = zr
	}
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(4)
	if err == nil && string(magic) == binMagic {
		return readBinary(br)
	}
	return ReadEdgeList(br)
}

// SaveFile writes a graph to path: binary if the name ends in .mixg
// (optionally .mixg.gz), edge-list text otherwise (optionally .gz).
func SaveFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		zw = gzip.NewWriter(f)
		defer zw.Close()
		w = zw
	}
	name := strings.TrimSuffix(path, ".gz")
	if strings.HasSuffix(name, ".mixg") {
		err = WriteBinary(w, g)
	} else {
		err = WriteEdgeList(w, g)
	}
	if err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

const binMagic = "MIXG"

// WriteBinary writes the compact binary snapshot: magic, version,
// node count, edge count, then each undirected edge as two uint32s.
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := make([]byte, 20)
	binary.LittleEndian.PutUint32(hdr[0:], 1) // version
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var werr error
	buf := make([]byte, 8)
	g.Edges(func(u, v graph.NodeID) bool {
		binary.LittleEndian.PutUint32(buf[0:], u)
		binary.LittleEndian.PutUint32(buf[4:], v)
		if _, err := bw.Write(buf); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

func readBinary(r io.Reader) (*graph.Graph, error) {
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("graphio: short binary header: %w", err)
	}
	if string(hdr[:4]) != binMagic {
		return nil, fmt.Errorf("graphio: bad magic %q", hdr[:4])
	}
	if ver := binary.LittleEndian.Uint32(hdr[4:]); ver != 1 {
		return nil, fmt.Errorf("graphio: unsupported version %d", ver)
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	m := binary.LittleEndian.Uint64(hdr[16:])
	if n > graph.MaxNodes {
		return nil, fmt.Errorf("graphio: node count %d too large", n)
	}
	b := graph.NewBuilder(int(m))
	if n > 0 {
		b.AddNode(graph.NodeID(n - 1))
	}
	buf := make([]byte, 8)
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("graphio: truncated at edge %d: %w", i, err)
		}
		u := binary.LittleEndian.Uint32(buf[0:])
		v := binary.LittleEndian.Uint32(buf[4:])
		if uint64(u) >= n || uint64(v) >= n {
			return nil, fmt.Errorf("graphio: edge %d endpoint out of range", i)
		}
		b.AddEdge(u, v)
	}
	return b.Build(), nil
}
