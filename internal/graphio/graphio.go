// Package graphio reads and writes graphs. Two formats are
// supported:
//
//   - Edge-list text, compatible with the SNAP dataset files the
//     paper's public datasets ship as: one "u<sep>v" pair per line,
//     '#' or '%' comment lines ignored, whitespace- or tab-separated,
//     directed duplicates tolerated (the builder symmetrizes). Files
//     ending in .gz are transparently (de)compressed.
//
//   - A compact binary CSR snapshot ("MIXG" format) for fast reload
//     of large generated graphs. Version 2 stores the CSR arrays
//     directly (offsets + symmetrized adjacency), so loading skips
//     the builder's sort entirely; version 1 (edge pairs) is still
//     read for old snapshots.
//
// All readers are hardened against corrupt or truncated input:
// declared node/edge counts are sanity-capped against the file size
// (when known) and against MaxLoadNodes before anything is
// allocated, payloads are read incrementally so truncation fails
// fast, and every malformed input returns a wrapped error — readers
// never panic (fuzz-verified; see fuzz_test.go).
package graphio

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mixtime/internal/graph"
)

// DefaultMaxLoadNodes bounds the node count any reader accepts:
// 2^28 (~268M) nodes covers every dataset of the paper's evaluation
// at full scale with two orders of magnitude of headroom, while a
// corrupt header declaring billions of vertices is rejected before
// the CSR arrays it implies are allocated.
const DefaultMaxLoadNodes = 1 << 28

// MaxLoadNodes is the node-count cap the readers enforce on untrusted
// input (node directives, edge endpoints, binary headers). Raise it
// before loading a genuinely larger graph; the fuzz targets lower it.
// It guards allocation size, not correctness: graphs under the cap
// load identically for any setting above their node count.
var MaxLoadNodes uint64 = DefaultMaxLoadNodes

// checkNodeID rejects node IDs at or above MaxLoadNodes.
func checkNodeID(lineNo int, id uint64) error {
	if id >= MaxLoadNodes {
		return fmt.Errorf("graphio: line %d: node %d exceeds load limit %d (raise graphio.MaxLoadNodes for larger graphs)",
			lineNo, id, MaxLoadNodes)
	}
	return nil
}

// ReadEdgeList parses an edge-list stream into a graph.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	b := graph.NewBuilder(1024)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			// "# nodes: N" is this package's directive preserving
			// trailing isolated vertices, which bare edge lists cannot
			// express; other comments (SNAP headers) are skipped.
			if rest, ok := strings.CutPrefix(line, "# nodes:"); ok {
				n, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 32)
				if err != nil {
					return nil, fmt.Errorf("graphio: line %d: bad nodes directive: %v", lineNo, err)
				}
				if n > 0 {
					if err := checkNodeID(lineNo, n-1); err != nil {
						return nil, err
					}
					b.AddNode(graph.NodeID(n - 1))
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graphio: line %d: want 2 fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		if err := checkNodeID(lineNo, u); err != nil {
			return nil, err
		}
		if err := checkNodeID(lineNo, v); err != nil {
			return nil, err
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return b.Build(), nil
}

// WriteEdgeList writes the graph as "u\tv" lines, one per undirected
// edge, preceded by a "# nodes:" directive so trailing isolated
// vertices survive the round trip.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# nodes: %d\n", g.NumNodes())
	fmt.Fprintf(bw, "# undirected edges: %d\n", g.NumEdges())
	var werr error
	g.Edges(func(u, v graph.NodeID) bool {
		if _, err := fmt.Fprintf(bw, "%d\t%d\n", u, v); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return fmt.Errorf("graphio: %w", werr)
	}
	return bw.Flush()
}

// LoadFile reads a graph from path. ".gz" suffixes are decompressed;
// a "MIXG" magic selects the binary format, anything else parses as
// edge-list text. For uncompressed binary files the file size bounds
// the declared node/edge counts before any allocation.
func LoadFile(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	size := int64(-1) // unknown (compressed) by default
	if strings.HasSuffix(path, ".gz") {
		zr, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
		defer zr.Close()
		r = zr
	} else if st, err := f.Stat(); err == nil {
		size = st.Size()
	}
	br := bufio.NewReaderSize(r, 1<<20)
	magic, err := br.Peek(4)
	if err == nil && string(magic) == binMagic {
		return readBinary(br, size)
	}
	return ReadEdgeList(br)
}

// SaveFile writes a graph to path: binary if the name ends in .mixg
// (optionally .mixg.gz), edge-list text otherwise (optionally .gz).
func SaveFile(path string, g *graph.Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var w io.Writer = f
	var zw *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		zw = gzip.NewWriter(f)
		defer zw.Close()
		w = zw
	}
	name := strings.TrimSuffix(path, ".gz")
	if strings.HasSuffix(name, ".mixg") {
		err = WriteBinary(w, g)
	} else {
		err = WriteEdgeList(w, g)
	}
	if err != nil {
		return err
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			return err
		}
	}
	return f.Close()
}

const (
	binMagic = "MIXG"
	// binHeaderLen is the fixed prefix every MIXG version shares:
	// 4-byte magic, u32 version, u64 node count, u64 edge count.
	binHeaderLen = 24
	// chunkEntries is the incremental-read granularity for binary
	// payload arrays: corrupt headers fail at the first short read
	// instead of after one giant up-front allocation.
	chunkEntries = 1 << 16
)

// WriteBinary writes the compact binary CSR snapshot (version 2):
// the shared header, then the n+1 CSR offsets as uint64s, then the
// 2m symmetrized adjacency entries as uint32s. Loading a v2 snapshot
// validates and adopts the arrays directly — no re-sorting — so
// large generated graphs reload in O(m).
func WriteBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	hdr := make([]byte, binHeaderLen-4)
	binary.LittleEndian.PutUint32(hdr[0:], 2) // version
	binary.LittleEndian.PutUint64(hdr[4:], uint64(g.NumNodes()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	offsets, neighbors := g.AppendCSR(nil, nil)
	var buf [8]byte
	for _, off := range offsets {
		binary.LittleEndian.PutUint64(buf[:], uint64(off))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, v := range neighbors {
		binary.LittleEndian.PutUint32(buf[:4], v)
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// readBinary reads a MIXG snapshot (version 1 or 2). size is the
// total input length in bytes when known, or negative when it is not
// (compressed or streamed input); a known size caps the declared
// counts before anything is allocated.
func readBinary(r io.Reader, size int64) (*graph.Graph, error) {
	hdr := make([]byte, binHeaderLen)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("graphio: short binary header: %w", err)
	}
	if string(hdr[:4]) != binMagic {
		return nil, fmt.Errorf("graphio: bad magic %q", hdr[:4])
	}
	ver := binary.LittleEndian.Uint32(hdr[4:])
	n := binary.LittleEndian.Uint64(hdr[8:])
	m := binary.LittleEndian.Uint64(hdr[16:])
	if n > MaxLoadNodes {
		return nil, fmt.Errorf("graphio: node count %d exceeds load limit %d (raise graphio.MaxLoadNodes for larger graphs)",
			n, MaxLoadNodes)
	}
	switch ver {
	case 1:
		return readBinaryV1(r, n, m, size)
	case 2:
		return readBinaryV2(r, n, m, size)
	default:
		return nil, fmt.Errorf("graphio: unsupported version %d", ver)
	}
}

// readBinaryV1 reads the legacy payload: m undirected edges as uint32
// pairs, rebuilt through the Builder.
func readBinaryV1(r io.Reader, n, m uint64, size int64) (*graph.Graph, error) {
	if size >= 0 {
		if max := uint64(size-binHeaderLen) / 8; size < binHeaderLen || m > max {
			return nil, fmt.Errorf("graphio: edge count %d needs %d bytes, file has %d",
				m, binHeaderLen+8*m, size)
		}
	}
	b := graph.NewBuilder(int(min(m, chunkEntries)))
	if n > 0 {
		b.AddNode(graph.NodeID(n - 1))
	}
	buf := make([]byte, 8)
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("graphio: truncated at edge %d: %w", i, err)
		}
		u := binary.LittleEndian.Uint32(buf[0:])
		v := binary.LittleEndian.Uint32(buf[4:])
		if uint64(u) >= n || uint64(v) >= n {
			return nil, fmt.Errorf("graphio: edge %d endpoint out of range", i)
		}
		b.AddEdge(u, v)
	}
	return b.Build(), nil
}

// readBinaryV2 reads the CSR payload: n+1 uint64 offsets then 2m
// uint32 adjacency entries, validated (monotone offsets, sorted
// in-range symmetric adjacency) and adopted without rebuilding. The
// offsets are narrowed to the graph's compact uint32 form as they
// stream past (the adjacency length is bounded by 2m < 2³² for every
// graph this package's node cap admits), so the load allocates
// exactly the arrays the graph keeps — no widening copy.
func readBinaryV2(r io.Reader, n, m uint64, size int64) (*graph.Graph, error) {
	nOff, nAdj := graph.CSRSizes(int64(n), int64(m))
	if size >= 0 {
		need := int64(binHeaderLen) + 8*nOff + 4*nAdj
		if need > size {
			return nil, fmt.Errorf("graphio: CSR of %d nodes / %d edges needs %d bytes, file has %d",
				n, m, need, size)
		}
	}
	if uint64(nAdj) > uint64(^uint32(0)) {
		return nil, fmt.Errorf("graphio: adjacency length %d exceeds the uint32 CSR form", nAdj)
	}
	offsets := make([]uint32, 0, min(uint64(nOff), chunkEntries))
	buf := make([]byte, 8*chunkEntries)
	for read := int64(0); read < nOff; {
		batch := min(nOff-read, chunkEntries)
		if _, err := io.ReadFull(r, buf[:8*batch]); err != nil {
			return nil, fmt.Errorf("graphio: truncated at offset %d of %d: %w", read, nOff, err)
		}
		for i := int64(0); i < batch; i++ {
			off := binary.LittleEndian.Uint64(buf[8*i:])
			switch {
			case off > uint64(nAdj):
				return nil, fmt.Errorf("graphio: CSR offset %d of node %d exceeds adjacency length %d",
					off, read+i, nAdj)
			case len(offsets) == 0 && off != 0:
				return nil, fmt.Errorf("graphio: CSR offsets start at %d, want 0", off)
			case len(offsets) > 0 && uint32(off) < offsets[len(offsets)-1]:
				return nil, fmt.Errorf("graphio: non-monotone CSR offsets at node %d (%d after %d)",
					read+i, off, offsets[len(offsets)-1])
			}
			offsets = append(offsets, uint32(off))
		}
		read += batch
	}
	if last := int64(offsets[len(offsets)-1]); last != nAdj {
		return nil, fmt.Errorf("graphio: CSR offsets end at %d, want adjacency length %d", last, nAdj)
	}
	neighbors := make([]graph.NodeID, 0, min(uint64(nAdj), chunkEntries))
	for read := int64(0); read < nAdj; {
		batch := min(nAdj-read, chunkEntries)
		if _, err := io.ReadFull(r, buf[:4*batch]); err != nil {
			return nil, fmt.Errorf("graphio: truncated at adjacency entry %d of %d: %w", read, nAdj, err)
		}
		for i := int64(0); i < batch; i++ {
			neighbors = append(neighbors, binary.LittleEndian.Uint32(buf[4*i:]))
		}
		read += batch
	}
	g, err := graph.FromCSR32(offsets, neighbors)
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}
