package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"unsafe"

	"mixtime/internal/graph"
)

// hostLittleEndian reports whether the CPU stores multi-byte integers
// little-endian — the MIXG on-disk order. Only then can the mapped
// adjacency bytes be reinterpreted as a []graph.NodeID in place; on a
// big-endian host OpenMIXGMapped silently falls back to the streamed
// reader.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// MappedGraph is a graph whose adjacency array is backed directly by
// a memory-mapped MIXG file: the kernel pages neighbor lists in on
// first touch and may evict them under pressure, so a 10M-node graph
// "loads" in the time it takes to read the n+1 offsets.
//
// Lifecycle rules: the embedded Graph (and every slice handed out
// through it, including Adjacency and Neighbors) is valid only until
// Close; touching it afterwards faults. The mapping is read-only —
// writing through Adjacency segfaults rather than corrupting the
// file. When the fallback path loaded the graph into the heap
// (compressed input, v1 snapshots, non-linux, big-endian hosts),
// Close is a no-op and the Graph lives as long as any reference.
type MappedGraph struct {
	*graph.Graph
	data []byte
}

// Mapped reports whether the graph is actually file-backed (false
// when a fallback loaded it into the heap).
func (mg *MappedGraph) Close() error {
	if mg.data == nil {
		return nil
	}
	data := mg.data
	mg.data = nil
	mg.Graph = nil
	return munmap(data)
}

// Mapped reports whether the adjacency is file-backed.
func (mg *MappedGraph) Mapped() bool { return mg.data != nil }

// OpenMIXGMapped opens an uncompressed MIXG v2 snapshot with its
// adjacency array memory-mapped in place. The n+1 uint64 offsets are
// narrowed into a fresh uint32 array (O(n) heap — the price of
// halving every later CSR pass), the adjacency is the mapped file
// bytes themselves (they start at byte 24+8(n+1), which is 4-aligned,
// and graph.NodeID is a little-endian-compatible uint32), and the
// same structural validation as ReadMIXG runs before the graph is
// returned. Inputs the mapping cannot serve — gzip, v1 snapshots,
// edge-list text, big-endian hosts, platforms without mmap — fall
// back to LoadFile transparently; check Mapped when the distinction
// matters.
func OpenMIXGMapped(path string) (*MappedGraph, error) {
	mg, err := openMapped(path)
	if mg != nil || err != nil {
		return mg, err
	}
	// Structured fallback: anything mmap can't serve loads heap-backed.
	g, err := LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &MappedGraph{Graph: g}, nil
}

// openMapped is the mmap fast path. A (nil, nil) return means "not
// mappable, fall back"; a non-nil error with nil graph is fatal.
func openMapped(path string) (*MappedGraph, error) {
	if !mmapSupported || !hostLittleEndian {
		return nil, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	hdr := make([]byte, binHeaderLen)
	if n, err := f.ReadAt(hdr, 0); err != nil || n < binHeaderLen {
		return nil, nil // too short for a MIXG header: edge list or corrupt; fall back
	}
	if string(hdr[:4]) != binMagic {
		return nil, nil // not binary: edge-list text (or gzip); fall back
	}
	ver := binary.LittleEndian.Uint32(hdr[4:])
	if ver != 2 {
		return nil, nil // v1 rebuilds through the Builder; fall back
	}
	n := binary.LittleEndian.Uint64(hdr[8:])
	m := binary.LittleEndian.Uint64(hdr[16:])
	if n > MaxLoadNodes {
		return nil, fmt.Errorf("graphio: node count %d exceeds load limit %d (raise graphio.MaxLoadNodes for larger graphs)",
			n, MaxLoadNodes)
	}
	nOff, nAdj := graph.CSRSizes(int64(n), int64(m))
	need := int64(binHeaderLen) + 8*nOff + 4*nAdj
	if need > size {
		return nil, fmt.Errorf("graphio: CSR of %d nodes / %d edges needs %d bytes, file has %d",
			n, m, need, size)
	}
	if uint64(nAdj) > uint64(^uint32(0)) {
		return nil, fmt.Errorf("graphio: adjacency length %d exceeds the uint32 CSR form", nAdj)
	}
	data, err := mmapRead(f, size)
	if err != nil {
		return nil, fmt.Errorf("graphio: mmap %s: %w", path, err)
	}
	g, err := adoptMapped(data, nOff, nAdj)
	if err != nil {
		munmap(data)
		return nil, err
	}
	return &MappedGraph{Graph: g, data: data}, nil
}

// adoptMapped builds the graph over a mapped v2 payload: offsets
// narrowed out of the file, adjacency aliased in place.
func adoptMapped(data []byte, nOff, nAdj int64) (*graph.Graph, error) {
	offsets := make([]uint32, nOff)
	offBytes := data[binHeaderLen:]
	for i := int64(0); i < nOff; i++ {
		off := binary.LittleEndian.Uint64(offBytes[8*i:])
		if off > uint64(nAdj) {
			return nil, fmt.Errorf("graphio: CSR offset %d of node %d exceeds adjacency length %d",
				off, i, nAdj)
		}
		offsets[i] = uint32(off)
	}
	var neighbors []graph.NodeID
	if nAdj > 0 {
		adjOff := int64(binHeaderLen) + 8*nOff // 24+8(n+1): 4-aligned
		neighbors = unsafe.Slice((*graph.NodeID)(unsafe.Pointer(&data[adjOff])), nAdj)
	}
	g, err := graph.FromCSR32(offsets, neighbors)
	if err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return g, nil
}

// EdgeStream produces each undirected edge of a graph exactly once as
// an ordered (u, v) pair with u < v, in ascending lexicographic
// order, by calling emit. It must be replayable: the streaming writer
// runs it twice (degree-count pass, placement pass) and requires
// identical output both times. emit's error aborts the stream.
type EdgeStream func(emit func(u, v graph.NodeID) error) error

// WriteMIXGStreamed writes a MIXG v2 snapshot of an n-node graph at
// path from a replayable lex-ordered edge stream, without ever
// materializing the edge list or adjacency in RAM: pass 1 counts
// degrees (O(n) heap), then the header and offsets stream out through
// a buffered writer, and pass 2 scatter-places both directions of
// each edge into the memory-mapped adjacency region of the output
// file — lex order makes every node's arrivals ascending, so the
// placed lists are sorted and the file is byte-identical to
// WriteBinary of the same graph. Platforms without mmap fall back to
// an in-RAM adjacency array (correct, not O(n)).
//
// The stream is validated as it plays: out-of-range endpoints,
// self-loops, unordered or duplicate pairs, and pass-2 output that
// diverges from pass 1 all abort with an error (the file is removed).
func WriteMIXGStreamed(path string, n uint64, stream EdgeStream) error {
	if n > MaxLoadNodes {
		return fmt.Errorf("graphio: node count %d exceeds load limit %d", n, MaxLoadNodes)
	}
	deg := make([]uint32, n)
	var m int64
	var lastU, lastV graph.NodeID
	first := true
	err := stream(func(u, v graph.NodeID) error {
		if uint64(u) >= n || uint64(v) >= n {
			return fmt.Errorf("graphio: stream edge {%d,%d} out of range for n=%d", u, v, n)
		}
		if u >= v {
			return fmt.Errorf("graphio: stream edge {%d,%d} not ordered u<v", u, v)
		}
		if !first && (u < lastU || (u == lastU && v <= lastV)) {
			return fmt.Errorf("graphio: stream edge {%d,%d} after {%d,%d} breaks lex order", u, v, lastU, lastV)
		}
		first, lastU, lastV = false, u, v
		deg[u]++
		deg[v]++
		m++
		return nil
	})
	if err != nil {
		return err
	}
	nOff, nAdj := graph.CSRSizes(int64(n), m)
	if uint64(nAdj) > uint64(^uint32(0)) {
		return fmt.Errorf("graphio: adjacency length %d exceeds the uint32 CSR form", nAdj)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	abort := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}

	// Header and offsets stream sequentially.
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return abort(err)
	}
	var b8 [8]byte
	binary.LittleEndian.PutUint32(b8[:4], 2)
	if _, err := bw.Write(b8[:4]); err != nil {
		return abort(err)
	}
	binary.LittleEndian.PutUint64(b8[:], n)
	if _, err := bw.Write(b8[:]); err != nil {
		return abort(err)
	}
	binary.LittleEndian.PutUint64(b8[:], uint64(m))
	if _, err := bw.Write(b8[:]); err != nil {
		return abort(err)
	}
	// cursor[v] doubles as the running CSR offset: prefix sums now,
	// per-placement increments in pass 2.
	cursor := deg
	var sum uint64
	for v := uint64(0); v < n; v++ {
		d := uint64(cursor[v])
		cursor[v] = uint32(sum)
		binary.LittleEndian.PutUint64(b8[:], sum)
		if _, err := bw.Write(b8[:]); err != nil {
			return abort(err)
		}
		sum += d
	}
	binary.LittleEndian.PutUint64(b8[:], sum)
	if _, err := bw.Write(b8[:]); err != nil {
		return abort(err)
	}
	if err := bw.Flush(); err != nil {
		return abort(err)
	}

	total := int64(binHeaderLen) + 8*nOff + 4*nAdj
	if err := f.Truncate(total); err != nil {
		return abort(err)
	}
	adjOff := int64(binHeaderLen) + 8*nOff

	var adj []graph.NodeID // the scatter target, file-backed when mmap works
	var mapped []byte
	if mmapSupported && hostLittleEndian && nAdj > 0 {
		mapped, err = mmapWrite(f, total)
		if err != nil {
			return abort(fmt.Errorf("graphio: mmap for write: %w", err))
		}
		adj = unsafe.Slice((*graph.NodeID)(unsafe.Pointer(&mapped[adjOff])), nAdj)
	} else if nAdj > 0 {
		adj = make([]graph.NodeID, nAdj)
	}

	// Pass 2: counting-sort placement. Arrivals at any node x are its
	// smaller neighbors in ascending u, then its larger neighbors in
	// ascending v — sorted, because the stream is lex-ordered.
	var replayed int64
	err = stream(func(u, v graph.NodeID) error {
		if replayed++; replayed > m {
			return fmt.Errorf("graphio: stream replay produced more than %d edges", m)
		}
		if uint64(u) >= n || uint64(v) >= n || u >= v {
			return fmt.Errorf("graphio: stream replay emitted invalid edge {%d,%d}", u, v)
		}
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
		return nil
	})
	if err == nil && replayed != m {
		err = fmt.Errorf("graphio: stream replay produced %d edges, first pass %d", replayed, m)
	}
	if err != nil {
		if mapped != nil {
			munmap(mapped)
		}
		return abort(err)
	}
	if mapped != nil {
		if err := munmap(mapped); err != nil {
			return abort(err)
		}
	} else if nAdj > 0 {
		buf := bufio.NewWriterSize(&sectionWriter{f: f, off: adjOff}, 1<<20)
		var b4 [4]byte
		for _, v := range adj {
			binary.LittleEndian.PutUint32(b4[:], uint32(v))
			if _, err := buf.Write(b4[:]); err != nil {
				return abort(err)
			}
		}
		if err := buf.Flush(); err != nil {
			return abort(err)
		}
	}
	return f.Close()
}

// sectionWriter adapts WriteAt into a sequential Writer starting at
// off — the non-mmap fallback's adjacency sink.
type sectionWriter struct {
	f   *os.File
	off int64
}

func (s *sectionWriter) Write(p []byte) (int, error) {
	k, err := s.f.WriteAt(p, s.off)
	s.off += int64(k)
	return k, err
}
