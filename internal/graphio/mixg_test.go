package graphio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

// graphStream adapts a materialized graph into the replayable
// lex-ordered EdgeStream the streaming writer requires (Edges already
// iterates u ascending with sorted neighbors).
func graphStream(g *graph.Graph) EdgeStream {
	return func(emit func(u, v graph.NodeID) error) error {
		var err error
		g.Edges(func(u, v graph.NodeID) bool {
			err = emit(u, v)
			return err == nil
		})
		return err
	}
}

// equalCSR asserts two graphs have identical CSR content.
func equalCSR(t *testing.T, want, got *graph.Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("shape mismatch: want %v, got %v", want, got)
	}
	var wb, gb bytes.Buffer
	if err := WriteBinary(&wb, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&gb, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb.Bytes(), gb.Bytes()) {
		t.Fatal("CSR content differs between loaders")
	}
}

func parityGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	return map[string]*graph.Graph{
		"ring":      gen.Ring(17),
		"star":      gen.Star(9),
		"complete":  gen.Complete(6),
		"singleton": gen.Ring(1),
		"ws": gen.WattsStrogatz(200, 6, 0.3,
			rand.New(rand.NewPCG(11, 11))),
	}
}

func TestOpenMIXGMappedParityV2(t *testing.T) {
	dir := t.TempDir()
	for name, g := range parityGraphs(t) {
		path := filepath.Join(dir, name+".mixg")
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		inRAM, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: LoadFile: %v", name, err)
		}
		mg, err := OpenMIXGMapped(path)
		if err != nil {
			t.Fatalf("%s: OpenMIXGMapped: %v", name, err)
		}
		if mmapSupported && hostLittleEndian && !mg.Mapped() {
			t.Errorf("%s: expected a file-backed mapping on this platform", name)
		}
		equalCSR(t, inRAM, mg.Graph)
		equalCSR(t, g, mg.Graph)
		if err := mg.Close(); err != nil {
			t.Fatalf("%s: Close: %v", name, err)
		}
		if err := mg.Close(); err != nil { // idempotent
			t.Fatalf("%s: second Close: %v", name, err)
		}
	}
}

func TestOpenMIXGMappedFallbacks(t *testing.T) {
	g := gen.Ring(12)
	dir := t.TempDir()

	// v1 snapshots rebuild through the Builder.
	v1 := filepath.Join(dir, "old.mixg")
	var buf bytes.Buffer
	if err := writeBinaryV1(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v1, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// gzip goes through the streamed reader, edge lists through the
	// text parser.
	gz := filepath.Join(dir, "ring.mixg.gz")
	if err := SaveFile(gz, g); err != nil {
		t.Fatal(err)
	}
	txt := filepath.Join(dir, "ring.txt")
	if err := SaveFile(txt, g); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{v1, gz, txt} {
		mg, err := OpenMIXGMapped(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if mg.Mapped() {
			t.Errorf("%s: fallback input unexpectedly mapped", path)
		}
		equalCSR(t, g, mg.Graph)
		if err := mg.Close(); err != nil {
			t.Fatalf("%s: Close on fallback: %v", path, err)
		}
	}
}

func TestOpenMIXGMappedHonorsMaxLoadNodes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.mixg")
	if err := SaveFile(path, gen.Ring(64)); err != nil {
		t.Fatal(err)
	}
	old := MaxLoadNodes
	MaxLoadNodes = 16
	defer func() { MaxLoadNodes = old }()
	if _, err := OpenMIXGMapped(path); err == nil {
		t.Fatal("expected load-limit error")
	}
}

func TestOpenMIXGMappedRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.Ring(16)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	dir := t.TempDir()
	write := func(name string, data []byte) string {
		p := filepath.Join(dir, name+".mixg")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	cases := map[string][]byte{}
	// Truncations at every structural boundary.
	for _, cut := range []int{len(good) - 1, len(good) / 2, binHeaderLen + 4, binHeaderLen, 3} {
		cases[fmt.Sprintf("truncated-%d", cut)] = append([]byte(nil), good[:cut]...)
	}
	// Header lies: edge count inflated past the file.
	lying := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(lying[16:], 1<<40)
	cases["lying-edge-count"] = lying
	// Non-monotone offsets break CSR validation.
	broken := append([]byte(nil), good...)
	binary.LittleEndian.PutUint64(broken[binHeaderLen+8:], 1<<30)
	cases["broken-offset"] = broken
	// Adjacency out of node range.
	badAdj := append([]byte(nil), good...)
	adjOff := binHeaderLen + 8*17
	binary.LittleEndian.PutUint32(badAdj[adjOff:], 9999)
	cases["bad-neighbor"] = badAdj

	for name, data := range cases {
		path := write(name, data)
		mg, err := OpenMIXGMapped(path)
		if err == nil {
			// A short truncation can degrade to the edge-list parser
			// fallback; that must still yield a valid graph.
			if verr := mg.Graph.Validate(); verr != nil {
				t.Errorf("%s: accepted invalid graph: %v", name, verr)
			}
			mg.Close()
			continue
		}
	}
	// The full-size corrupt cases must fail identically to LoadFile.
	for _, name := range []string{"lying-edge-count", "broken-offset", "bad-neighbor"} {
		path := filepath.Join(dir, name+".mixg")
		_, merr := OpenMIXGMapped(path)
		_, lerr := LoadFile(path)
		if (merr == nil) != (lerr == nil) {
			t.Errorf("%s: mapped err=%v but LoadFile err=%v", name, merr, lerr)
		}
		if merr == nil {
			t.Errorf("%s: corrupt snapshot accepted", name)
		}
	}
}

func TestWriteMIXGStreamedByteIdentical(t *testing.T) {
	dir := t.TempDir()
	for name, g := range parityGraphs(t) {
		var want bytes.Buffer
		if err := WriteBinary(&want, g); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name+".mixg")
		if err := WriteMIXGStreamed(path, uint64(g.NumNodes()), graphStream(g)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got) {
			t.Fatalf("%s: streamed file differs from WriteBinary (%d vs %d bytes)",
				name, want.Len(), len(got))
		}
		// And it round-trips through both loaders.
		mg, err := OpenMIXGMapped(path)
		if err != nil {
			t.Fatalf("%s: reload: %v", name, err)
		}
		equalCSR(t, g, mg.Graph)
		mg.Close()
	}
}

func TestWriteMIXGStreamedRejectsBadStreams(t *testing.T) {
	dir := t.TempDir()
	path := func(name string) string { return filepath.Join(dir, name+".mixg") }
	lit := func(edges ...[2]graph.NodeID) EdgeStream {
		return func(emit func(u, v graph.NodeID) error) error {
			for _, e := range edges {
				if err := emit(e[0], e[1]); err != nil {
					return err
				}
			}
			return nil
		}
	}
	cases := map[string]struct {
		n      uint64
		stream EdgeStream
	}{
		"out-of-range": {3, lit([2]graph.NodeID{0, 5})},
		"self-loop":    {3, lit([2]graph.NodeID{1, 1})},
		"unordered":    {3, lit([2]graph.NodeID{2, 1})},
		"duplicate":    {3, lit([2]graph.NodeID{0, 1}, [2]graph.NodeID{0, 1})},
		"lex-broken":   {4, lit([2]graph.NodeID{1, 2}, [2]graph.NodeID{0, 3})},
	}
	for name, tc := range cases {
		if err := WriteMIXGStreamed(path(name), tc.n, tc.stream); err == nil {
			t.Errorf("%s: expected error", name)
		}
		if _, err := os.Stat(path(name)); !os.IsNotExist(err) {
			t.Errorf("%s: failed write left the file behind", name)
		}
	}

	// Non-replayable stream: second pass emits a different edge set.
	calls := 0
	flaky := func(emit func(u, v graph.NodeID) error) error {
		calls++
		if calls == 1 {
			if err := emit(0, 1); err != nil {
				return err
			}
			return emit(1, 2)
		}
		return emit(0, 1)
	}
	if err := WriteMIXGStreamed(path("flaky"), 3, EdgeStream(flaky)); err == nil {
		t.Error("non-replayable stream accepted")
	}

	old := MaxLoadNodes
	MaxLoadNodes = 8
	if err := WriteMIXGStreamed(path("toobig"), 9, lit()); err == nil {
		t.Error("expected load-limit error")
	}
	MaxLoadNodes = old
}

func TestWriteMIXGStreamedRingER(t *testing.T) {
	// End-to-end: the generator's stream, counting-sorted to disk,
	// is byte-identical to materializing the same edges in RAM and
	// writing them — so 10M-node generation needs no edge list.
	const n, k = 4096, 6
	stream := EdgeStream(gen.RingER(n, k, 0.002, 99))
	path := filepath.Join(t.TempDir(), "ringer.mixg")
	if err := WriteMIXGStreamed(path, n, stream); err != nil {
		t.Fatal(err)
	}
	var edges []graph.Edge
	if err := stream(func(u, v graph.NodeID) error {
		edges = append(edges, graph.Edge{U: u, V: v})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteBinary(&want, g); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got) {
		t.Fatal("streamed RingER file differs from materialized WriteBinary")
	}
	mg, err := OpenMIXGMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	equalCSR(t, g, mg.Graph)
	mg.Close()
}

func TestWriteMIXGStreamedEmptyAndIsolated(t *testing.T) {
	// Zero edges, trailing isolated nodes: offsets all zero, no
	// adjacency bytes.
	path := filepath.Join(t.TempDir(), "empty.mixg")
	none := func(emit func(u, v graph.NodeID) error) error { return nil }
	if err := WriteMIXGStreamed(path, 5, EdgeStream(none)); err != nil {
		t.Fatal(err)
	}
	g, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 5 || g.NumEdges() != 0 {
		t.Fatalf("got %v, want 5 nodes / 0 edges", g)
	}
}
