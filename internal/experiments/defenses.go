package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"

	"mixtime/internal/centrality"
	"mixtime/internal/community"
	"mixtime/internal/datasets"
	"mixtime/internal/gen"
	"mixtime/internal/graph"
	"mixtime/internal/runner"
	"mixtime/internal/sybil"
	"mixtime/internal/textplot"
	"mixtime/internal/whanau"
)

// auc returns the probability that a uniformly random honest node
// outranks a uniformly random sybil under the scores (ties count ½) —
// the ranking-quality metric of Viswanath et al.'s defense analysis.
func auc(scores []float64, isSybil func(graph.NodeID) bool) float64 {
	type item struct {
		score float64
		syb   bool
	}
	items := make([]item, len(scores))
	var nh, ns float64
	for v, s := range scores {
		syb := isSybil(graph.NodeID(v))
		items[v] = item{s, syb}
		if syb {
			ns++
		} else {
			nh++
		}
	}
	if nh == 0 || ns == 0 {
		return 0.5
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score < items[j].score })
	// Rank-sum with midranks for ties.
	var rankSumHonest float64
	i := 0
	for i < len(items) {
		j := i
		for j < len(items) && items[j].score == items[i].score {
			j++
		}
		mid := float64(i+j+1) / 2 // average 1-based rank of the tie group
		for k := i; k < j; k++ {
			if !items[k].syb {
				rankSumHonest += mid
			}
		}
		i = j
	}
	return (rankSumHonest - nh*(nh+1)/2) / (nh * ns)
}

// DefenseRow scores one defense's ranking quality under an attack.
type DefenseRow struct {
	Dataset string
	Defense string
	// AUC: probability an honest node outranks a sybil (1 = perfect,
	// 0.5 = blind).
	AUC float64
	// HonestMean / SybilMean: average score per class (scores are
	// defense-specific; only their ordering matters).
	HonestMean, SybilMean float64
}

// DefenseComparisonConfig parameterizes the comparison.
type DefenseComparisonConfig struct {
	Config
	// Nodes caps the honest region (default 500).
	Nodes int
	// SybilNodes sizes the sybil region (default Nodes/5).
	SybilNodes int
	// AttackEdges is g (default 5).
	AttackEdges int
	// W is the walk length every walk-based defense uses
	// (default 10 — the SybilLimit-era assumption).
	W int
	// Datasets are the honest regions (default facebook-A and
	// physics-1).
	Datasets []string
}

func (c DefenseComparisonConfig) withDefaults() DefenseComparisonConfig {
	c.Config = c.Config.WithDefaults()
	if c.Nodes <= 0 {
		c.Nodes = 500
	}
	if c.SybilNodes <= 0 {
		c.SybilNodes = c.Nodes / 5
	}
	if c.AttackEdges <= 0 {
		c.AttackEdges = 5
	}
	if c.W <= 0 {
		c.W = 10
	}
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"facebook-A", "physics-1"}
	}
	return c
}

// DefenseComparison runs the Viswanath-style head-to-head: under the
// same attack, rank every node by (a) SybilLimit admission, (b)
// SybilInfer marginals, (c) personalized PageRank from the verifier
// (the "connectivity to the trusted node" core Viswanath et al.
// distilled), (d) SybilRank's early-terminated trust propagation, and
// (e) sharing the verifier's Louvain community — and compare AUCs. The paper's §2 reports their conclusion that the
// defenses are community detectors at heart; the AUC table makes the
// equivalence measurable.
func DefenseComparison(cfg DefenseComparisonConfig) ([]DefenseRow, error) {
	return DefenseComparisonContext(context.Background(), cfg, nil)
}

// DefenseComparisonContext is DefenseComparison with cancellation and
// progress: ctx is checked per dataset and each finished dataset
// reports as a KindDatasetDone.
func DefenseComparisonContext(ctx context.Context, cfg DefenseComparisonConfig, obs runner.Observer) ([]DefenseRow, error) {
	cfg = cfg.withDefaults()
	var rows []DefenseRow
	for di, name := range cfg.Datasets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: defense comparison cancelled before %s: %w", name, err)
		}
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		honest := d.Generate(cfg.Scale, cfg.Seed)
		if honest.NumNodes() > cfg.Nodes {
			rng := rand.New(rand.NewPCG(cfg.Seed, 0xdc1))
			sub, _ := graph.BFSSubgraph(honest, graph.NodeID(rng.IntN(honest.NumNodes())), cfg.Nodes)
			honest, _ = graph.LargestComponent(sub)
		}
		rng := rand.New(rand.NewPCG(cfg.Seed, 0xdc2))
		region := gen.BarabasiAlbert(cfg.SybilNodes, 4, rng)
		attack := sybil.NewAttack(honest, region, cfg.AttackEdges, rng)
		g := attack.Combined
		verifier := graph.NodeID(0)
		n := g.NumNodes()

		add := func(defense string, scores []float64) {
			row := DefenseRow{Dataset: name, Defense: defense,
				AUC: auc(scores, attack.IsSybil)}
			var hN, sN float64
			for v, s := range scores {
				if attack.IsSybil(graph.NodeID(v)) {
					row.SybilMean += s
					sN++
				} else {
					row.HonestMean += s
					hN++
				}
			}
			row.HonestMean /= hN
			row.SybilMean /= sN
			rows = append(rows, row)
		}

		// SybilLimit: binary admission score.
		p, err := sybil.NewProtocol(g, sybil.Config{W: cfg.W, R0: 3, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sybillimit: %w", name, err)
		}
		res := p.Verify(verifier, sybil.AllHonest(g, verifier))
		slScore := make([]float64, n)
		slScore[verifier] = 1
		for i, s := range res.Suspects {
			if res.Accepted[i] {
				slScore[s] = 1
			}
		}
		add("sybillimit", slScore)

		// SybilInfer marginals.
		inf, err := sybil.SybilInfer(g, sybil.InferConfig{
			WalksPerNode: 20, W: cfg.W, Samples: 120, Burn: 120, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sybilinfer: %w", name, err)
		}
		add("sybilinfer", inf.HonestProb)

		// Personalized PageRank from the verifier.
		add("ppr", centrality.PersonalizedPageRank(g, verifier, 0.85, 1e-10, 0))

		// SybilRank: early-terminated trust propagation from the
		// verifier (⌈log₂ n⌉ iterations).
		sr, err := sybil.SybilRank(g, []graph.NodeID{verifier}, 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sybilrank: %w", name, err)
		}
		add("sybilrank", sr)

		// Louvain community shared with the verifier.
		labels := community.Louvain(g, rand.New(rand.NewPCG(cfg.Seed, 0xdc3)))
		cScore := make([]float64, n)
		for v := range cScore {
			if labels[v] == labels[verifier] {
				cScore[v] = 1
			}
		}
		add("community", cScore)
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Done: di + 1, Total: len(cfg.Datasets)})
	}
	return rows, nil
}

// RenderDefenseComparison formats the AUC table.
func RenderDefenseComparison(rows []DefenseRow) string {
	header := []string{"dataset", "defense", "AUC", "honest mean", "sybil mean"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.Defense,
			fmt.Sprintf("%.3f", r.AUC),
			fmt.Sprintf("%.4f", r.HonestMean),
			fmt.Sprintf("%.4f", r.SybilMean),
		})
	}
	return "Defense comparison under one attack (Viswanath-style ranking AUC)\n" +
		textplot.Table(header, cells)
}

// WhanauRow2 reports Whānau lookup success at one walk length on one
// dataset.
type WhanauRow2 struct {
	Dataset string
	W       int
	Success float64
}

// WhanauLookup sweeps the table-building walk length and measures
// lookup success — the system-level consequence of the §2 critique:
// Whānau needs walks at the (real) mixing time, not at the assumed
// O(log n).
func WhanauLookup(cfg Config) ([]WhanauRow2, error) {
	return WhanauLookupContext(context.Background(), cfg, nil)
}

// WhanauLookupContext is WhanauLookup with cancellation and progress.
func WhanauLookupContext(ctx context.Context, cfg Config, obs runner.Observer) ([]WhanauRow2, error) {
	cfg = cfg.WithDefaults()
	walks := []int{1, 2, 4, 8, 16, 32, 64}
	names := []string{"facebook-A", "physics-1"}
	var rows []WhanauRow2
	for di, name := range names {
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		if g.NumNodes() > 1200 {
			rng := rand.New(rand.NewPCG(cfg.Seed, 0x3aa))
			sub, _ := graph.BFSSubgraph(g, graph.NodeID(rng.IntN(g.NumNodes())), 1200)
			g, _ = graph.LargestComponent(sub)
		}
		for _, w := range walks {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: whanau lookup cancelled at %s w=%d: %w", name, w, err)
			}
			dht, err := whanau.Build(g, whanau.Config{W: w, Seed: cfg.Seed})
			if err != nil {
				return nil, fmt.Errorf("experiments: whanau %s w=%d: %w", name, w, err)
			}
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(w)))
			rows = append(rows, WhanauRow2{
				Dataset: name,
				W:       w,
				Success: dht.SuccessRate(400, rng),
			})
		}
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Done: di + 1, Total: len(names)})
	}
	return rows, nil
}

// RenderWhanauLookup formats the lookup sweep.
func RenderWhanauLookup(rows []WhanauRow2) string {
	header := []string{"dataset", "w", "lookup success"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, fmt.Sprintf("%d", r.W), fmt.Sprintf("%.3f", r.Success),
		})
	}
	return "Whānau lookup success vs table-building walk length\n" +
		textplot.Table(header, cells)
}
