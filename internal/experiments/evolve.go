package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"strconv"

	"mixtime/internal/api"
	"mixtime/internal/datasets"
	"mixtime/internal/evolve"
	"mixtime/internal/graph"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/sybil"
	"mixtime/internal/textplot"
)

// e1Epochs is the number of growth epochs E1 observes; each epoch
// accretes e1 per-epoch edges (n/4), so the trajectory runs from
// average degree 3 (ring + n/2 chords) to ~9 — the regime where
// "The Evolution of the Mixing Rate" predicts the mixing rate falls
// fastest.
const e1Epochs = 12

// EvolveGrowthRow is one epoch of experiment E1: the SLEM/mixing-time
// trajectory of a random graph growing edge by edge, with the
// warm-start vs cold-start iteration counts as the accuracy/cost
// column (both solves run at the identical tolerance; MuGap shows the
// answers agree).
type EvolveGrowthRow struct {
	Epoch   int     `json:"epoch"`
	Version uint64  `json:"version"`
	Nodes   int     `json:"nodes"`
	Edges   int64   `json:"edges"`
	AvgDeg  float64 `json:"avg_deg"`
	Mu      float64 `json:"mu"`
	Lambda2 float64 `json:"lambda2"`
	// Converged reports the warm solve; WarmStarted is false only on
	// epoch 0 (no previous eigenvector exists yet).
	Converged   bool `json:"converged"`
	WarmStarted bool `json:"warm_started"`
	// WarmIters and ColdIters are the λ₂-phase power iteration counts
	// of the warm solve and the cold control at equal tolerance; MuGap
	// is |warm µ − cold µ|, the equal-accuracy evidence.
	WarmIters int     `json:"warm_iters"`
	ColdIters int     `json:"cold_iters"`
	MuGap     float64 `json:"mu_gap"`
	LowerT    float64 `json:"lower_t"`
	UpperT    float64 `json:"upper_t"`
}

// e1Base is the epoch-0 graph: a ring on n nodes plus n/2 random
// chords — connected by construction at average degree 3, the sparse
// starting point of the growth trajectory.
func e1Base(n int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 0xe101))
	b := graph.NewBuilder(n + n/2)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	for added := 0; added < n/2; added++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
	}
	return b.Build()
}

// EvolveGrowth is experiment E1 without cancellation/progress.
func EvolveGrowth(cfg Config) ([]EvolveGrowthRow, error) {
	return EvolveGrowthContext(context.Background(), cfg, nil)
}

// EvolveGrowthContext is experiment E1: grow a random graph edge by
// edge through the evolve mutation API and track the SLEM trajectory
// with warm-started power iteration, running a cold-start control at
// the same tolerance each epoch so the warm/cold iteration columns
// are an equal-accuracy cost comparison. The qualitative trajectory —
// µ falling monotonically-in-trend as random edges accrete —
// reproduces "The Evolution of the Mixing Rate" (Fountoulakis et al.).
func EvolveGrowthContext(ctx context.Context, cfg Config, obs runner.Observer) ([]EvolveGrowthRow, error) {
	cfg = cfg.WithDefaults()
	n := int(100_000 * cfg.Scale)
	if n < 200 {
		n = 200
	}
	perEpoch := n / 4

	mg := evolve.NewMutable(e1Base(n, cfg.Seed))
	tr := evolve.NewTracker(mg, evolve.Options{
		Tol:         cfg.SpectralTol,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		Eps:         api.DefaultEps,
		CompareCold: true,
		Collector:   cfg.Collector,
	})
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xe1))

	rows := make([]EvolveGrowthRow, 0, e1Epochs)
	for e := 0; e < e1Epochs; e++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: evolve-growth cancelled at epoch %d: %w", e, err)
		}
		if e > 0 {
			g, _ := mg.Snapshot()
			if _, err := mg.Apply(evolve.GrowRandom(g, perEpoch, rng)); err != nil {
				return nil, fmt.Errorf("experiments: evolve-growth epoch %d: %w", e, err)
			}
		}
		s, err := tr.Observe(ctx)
		if err != nil {
			return nil, fmt.Errorf("experiments: evolve-growth: %w", err)
		}
		gap := s.Mu - s.ColdMu
		if gap < 0 {
			gap = -gap
		}
		rows = append(rows, EvolveGrowthRow{
			Epoch:       s.Epoch,
			Version:     uint64(s.Version),
			Nodes:       s.Nodes,
			Edges:       s.Edges,
			AvgDeg:      2 * float64(s.Edges) / float64(s.Nodes),
			Mu:          s.Mu,
			Lambda2:     s.Lambda2,
			Converged:   s.Converged,
			WarmStarted: s.WarmStarted,
			WarmIters:   s.WarmIters,
			ColdIters:   s.ColdIters,
			MuGap:       gap,
			LowerT:      s.LowerT,
			UpperT:      s.UpperT,
		})
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: "evolve-growth",
			Stage: "epoch", Done: e + 1, Total: e1Epochs, Iterations: s.WarmIters})
	}
	return rows, nil
}

// RenderEvolveGrowth formats the E1 trajectory table.
func RenderEvolveGrowth(rows []EvolveGrowthRow) string {
	header := []string{"epoch", "edges", "avg deg", "µ", "warm it", "cold it", "saved", "lower T", "upper T"}
	var cells [][]string
	for _, r := range rows {
		saved := "-"
		if r.WarmStarted && r.ColdIters > 0 {
			saved = fmt.Sprintf("%.0f%%", 100*(1-float64(r.WarmIters)/float64(r.ColdIters)))
		}
		cells = append(cells, []string{
			d(r.Epoch), strconv.FormatInt(r.Edges, 10), fmt.Sprintf("%.2f", r.AvgDeg),
			fmt.Sprintf("%.6f", r.Mu), d(r.WarmIters), d(r.ColdIters), saved,
			fmt.Sprintf("%.1f", r.LowerT), fmt.Sprintf("%.1f", r.UpperT),
		})
	}
	return "E1: mixing-rate evolution under edge accretion (warm vs cold start at equal tolerance)\n" +
		textplot.Table(header, cells)
}

// EvolveGrowthCSV writes the E1 rows.
func EvolveGrowthCSV(w io.Writer, rows []EvolveGrowthRow) error {
	header := []string{"epoch", "version", "nodes", "edges", "avg_deg", "mu", "lambda2",
		"converged", "warm_started", "warm_iters", "cold_iters", "mu_gap", "lower_t", "upper_t"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			d(r.Epoch), strconv.FormatUint(r.Version, 10), d(r.Nodes),
			strconv.FormatInt(r.Edges, 10), f(r.AvgDeg), f(r.Mu), f(r.Lambda2),
			strconv.FormatBool(r.Converged), strconv.FormatBool(r.WarmStarted),
			d(r.WarmIters), d(r.ColdIters), f(r.MuGap), f(r.LowerT), f(r.UpperT),
		})
	}
	return writeCSV(w, header, out)
}

// EvolveAttackRow is one epoch of experiment E2: the mixing-time
// degradation of a Table-1 graph as Sybil attack edges accrete onto a
// parasitic copy of itself. Mu is the combined graph's SLEM (warm
// chain); HonestMu is the honest region's baseline, constant across
// the trajectory — the gap between them is the degradation the
// paper's §5 argument predicts a sparse attack cut must cause.
type EvolveAttackRow struct {
	Dataset     string  `json:"dataset"`
	Epoch       int     `json:"epoch"`
	HonestNodes int     `json:"honest_nodes"`
	Nodes       int     `json:"nodes"`
	Edges       int64   `json:"edges"`
	AttackEdges int     `json:"attack_edges"`
	Mu          float64 `json:"mu"`
	HonestMu    float64 `json:"honest_mu"`
	Converged   bool    `json:"converged"`
	WarmStarted bool    `json:"warm_started"`
	WarmIters   int     `json:"warm_iters"`
	LowerT      float64 `json:"lower_t"`
	UpperT      float64 `json:"upper_t"`
}

// EvolveAttack is experiment E2 without cancellation/progress.
func EvolveAttack(cfg Config) ([]EvolveAttackRow, error) {
	return EvolveAttackContext(context.Background(), cfg, nil)
}

// EvolveAttackContext is experiment E2: wire a Sybil copy of each
// d2Datasets graph onto its honest region with a single attack edge,
// then let attack edges accrete through evolve.AttackEdges in doubling
// batches, observing the SLEM/mixing-time trajectory with the
// warm-started tracker after every accretion epoch. With one attack
// edge the combined graph is a near-disconnected two-community graph
// (µ ≈ 1, mixing time enormous vs the honest baseline); each doubling
// widens the cut and walks the degradation back toward the baseline.
func EvolveAttackContext(ctx context.Context, cfg Config, obs runner.Observer) ([]EvolveAttackRow, error) {
	cfg = cfg.WithDefaults()
	var rows []EvolveAttackRow
	for di, name := range d2Datasets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: evolve-attack cancelled before %s: %w", name, err)
		}
		ds, err := datasets.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: evolve-attack: %w", err)
		}
		honest, _ := graph.LargestComponent(ds.Generate(cfg.Scale, cfg.Seed))
		base, err := spectral.SLEMContext(ctx, honest, spectral.Options{
			Tol: cfg.SpectralTol, Seed: cfg.Seed, Workers: cfg.Workers,
			Collector: cfg.Collector})
		if err != nil {
			return nil, fmt.Errorf("experiments: evolve-attack %s baseline: %w", name, err)
		}

		// The attack region is a relabeled copy of the honest graph —
		// the strongest parasite (§5): identical mixing properties, so
		// every slowdown is attributable to the cut, not the region.
		rng := rand.New(rand.NewPCG(cfg.Seed, 0xa77c+uint64(di)))
		atk := sybil.NewAttack(honest, honest, 1, rng)
		mg := evolve.NewMutable(atk.Combined)
		tr := evolve.NewTracker(mg, evolve.Options{
			Tol:       cfg.SpectralTol,
			Seed:      cfg.Seed,
			Workers:   cfg.Workers,
			Eps:       api.DefaultEps,
			Collector: cfg.Collector,
		})

		// Doubling accretion targets 1, 2, 4, … up to ~an eighth of the
		// honest edge count: beyond that the cut stops being sparse and
		// the trajectory flattens onto the baseline.
		maxAttack := int(honest.NumEdges() / 8)
		if maxAttack < 16 {
			maxAttack = 16
		}
		var targets []int
		for t := 1; t <= maxAttack; t *= 2 {
			targets = append(targets, t)
		}

		current := atk.AttackEdges
		for ei, target := range targets {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: evolve-attack cancelled at %s epoch %d: %w", name, ei, err)
			}
			if k := target - current; k > 0 {
				g, _ := mg.Snapshot()
				res, err := mg.Apply(evolve.AttackEdges(g, honest.NumNodes(), k, rng))
				if err != nil {
					return nil, fmt.Errorf("experiments: evolve-attack %s epoch %d: %w", name, ei, err)
				}
				current += res.Inserted
			}
			s, err := tr.Observe(ctx)
			if err != nil {
				return nil, fmt.Errorf("experiments: evolve-attack %s: %w", name, err)
			}
			rows = append(rows, EvolveAttackRow{
				Dataset:     name,
				Epoch:       s.Epoch,
				HonestNodes: honest.NumNodes(),
				Nodes:       s.Nodes,
				Edges:       s.Edges,
				AttackEdges: current,
				Mu:          s.Mu,
				HonestMu:    base.Mu,
				Converged:   s.Converged,
				WarmStarted: s.WarmStarted,
				WarmIters:   s.WarmIters,
				LowerT:      s.LowerT,
				UpperT:      s.UpperT,
			})
			runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
				Stage: "attack-epoch", Done: ei + 1, Total: len(targets), Iterations: s.WarmIters})
		}
	}
	return rows, nil
}

// RenderEvolveAttack formats the E2 degradation table.
func RenderEvolveAttack(rows []EvolveAttackRow) string {
	header := []string{"dataset", "g", "µ", "µ honest", "lower T", "upper T", "warm it"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, d(r.AttackEdges), fmt.Sprintf("%.6f", r.Mu),
			fmt.Sprintf("%.6f", r.HonestMu), fmt.Sprintf("%.1f", r.LowerT),
			fmt.Sprintf("%.1f", r.UpperT), d(r.WarmIters),
		})
	}
	return "E2: mixing-time degradation as Sybil attack edges accrete (g doubles per epoch)\n" +
		textplot.Table(header, cells)
}

// EvolveAttackCSV writes the E2 rows.
func EvolveAttackCSV(w io.Writer, rows []EvolveAttackRow) error {
	header := []string{"dataset", "epoch", "honest_nodes", "nodes", "edges", "attack_edges",
		"mu", "honest_mu", "converged", "warm_started", "warm_iters", "lower_t", "upper_t"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, d(r.Epoch), d(r.HonestNodes), d(r.Nodes),
			strconv.FormatInt(r.Edges, 10), d(r.AttackEdges), f(r.Mu), f(r.HonestMu),
			strconv.FormatBool(r.Converged), strconv.FormatBool(r.WarmStarted),
			d(r.WarmIters), f(r.LowerT), f(r.UpperT),
		})
	}
	return writeCSV(w, header, out)
}
