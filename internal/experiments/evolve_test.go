package experiments

import (
	"testing"
)

// evolveTestConfig is small enough for CI: E1 runs at the 200-node
// floor, E2 on miniature dataset scales.
func evolveTestConfig() Config {
	return Config{Scale: 0.001, Seed: 1, SpectralTol: 1e-7}
}

// TestEvolveGrowthTrajectory pins the E1 acceptance criteria: the
// trajectory qualitatively reproduces "The Evolution of the Mixing
// Rate" (µ falls as random edges accrete), and warm-started power
// iteration converges in measurably fewer λ₂ iterations than the
// cold-start control at the same tolerance, with both solves agreeing
// on the answer.
func TestEvolveGrowthTrajectory(t *testing.T) {
	rows, err := EvolveGrowth(evolveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != e1Epochs {
		t.Fatalf("E1 produced %d epochs, want %d", len(rows), e1Epochs)
	}
	if rows[0].WarmStarted {
		t.Fatal("epoch 0 cannot warm-start")
	}
	warmSum, coldSum := 0, 0
	for i, r := range rows {
		if i > 0 {
			if !r.WarmStarted {
				t.Fatalf("epoch %d not warm-started", r.Epoch)
			}
			if r.Edges <= rows[i-1].Edges {
				t.Fatalf("epoch %d did not grow: %d → %d edges", r.Epoch, rows[i-1].Edges, r.Edges)
			}
			warmSum += r.WarmIters
			coldSum += r.ColdIters
		}
		if !r.Converged {
			t.Fatalf("epoch %d did not converge", r.Epoch)
		}
		// Equal accuracy: warm and cold answers agree well inside the
		// tolerance both ran at.
		if r.MuGap > 1e-6 {
			t.Fatalf("epoch %d: warm/cold µ gap %g exceeds 1e-6", r.Epoch, r.MuGap)
		}
	}
	// The Evolution-of-the-Mixing-Rate qualitative shape: densifying a
	// sparse random graph accelerates mixing.
	first, last := rows[0], rows[len(rows)-1]
	if last.Mu >= first.Mu {
		t.Fatalf("µ did not fall as the graph grew: %v → %v", first.Mu, last.Mu)
	}
	if last.UpperT >= first.UpperT {
		t.Fatalf("mixing-time upper bound did not fall: %v → %v", first.UpperT, last.UpperT)
	}
	// The warm-start cost pin (ISSUE acceptance): across the
	// trajectory, warm starts are measurably cheaper than cold.
	if warmSum >= coldSum {
		t.Fatalf("warm start saved nothing: %d warm vs %d cold λ₂ iterations", warmSum, coldSum)
	}
	t.Logf("E1 warm/cold λ₂ iterations: %d vs %d (%.0f%% saved)",
		warmSum, coldSum, 100*(1-float64(warmSum)/float64(coldSum)))
}

// TestEvolveAttackDegradation checks the E2 shape: a single attack
// edge leaves the combined graph barely connected (µ near 1, far above
// the honest baseline) and accreting attack edges walks µ back down
// toward the baseline.
func TestEvolveAttackDegradation(t *testing.T) {
	rows, err := EvolveAttack(evolveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	byDS := map[string][]EvolveAttackRow{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	if len(byDS) != len(d2Datasets) {
		t.Fatalf("E2 covered %d datasets, want %d", len(byDS), len(d2Datasets))
	}
	for ds, rs := range byDS {
		if len(rs) < 3 {
			t.Fatalf("%s: only %d epochs", ds, len(rs))
		}
		first, last := rs[0], rs[len(rs)-1]
		if first.AttackEdges != 1 {
			t.Fatalf("%s: first epoch has %d attack edges, want 1", ds, first.AttackEdges)
		}
		for i := 1; i < len(rs); i++ {
			if rs[i].AttackEdges <= rs[i-1].AttackEdges {
				t.Fatalf("%s: attack edges did not accrete: %d → %d",
					ds, rs[i-1].AttackEdges, rs[i].AttackEdges)
			}
			if !rs[i].WarmStarted {
				t.Fatalf("%s epoch %d not warm-started", ds, rs[i].Epoch)
			}
		}
		// Degradation: the sparse cut slows mixing far below the honest
		// baseline, and accretion repairs it.
		if first.Mu <= first.HonestMu {
			t.Fatalf("%s: one attack edge did not degrade mixing: µ %v vs honest %v",
				ds, first.Mu, first.HonestMu)
		}
		if last.Mu >= first.Mu {
			t.Fatalf("%s: µ did not recover as attack edges accreted: %v → %v",
				ds, first.Mu, last.Mu)
		}
	}
}
