package experiments

import (
	"context"
	"fmt"

	"mixtime/internal/core"
	"mixtime/internal/datasets"
	"mixtime/internal/markov"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/stats"
	"mixtime/internal/textplot"
)

// physicsNames are the co-authorship graphs Figures 3–5 brute-force.
var physicsNames = []string{"physics-1", "physics-2", "physics-3"}

// DistanceCDF holds, for one dataset and one probe walk length, the
// per-source variation distances whose CDF the paper plots.
type DistanceCDF struct {
	Dataset   string
	W         int
	Distances []float64
}

// measurePhysics runs the shared propagation pass for one physics
// dataset: traces from up to cfg.Sources vertices (every vertex when
// the scaled graph is small enough — the paper's brute force). Source
// completions stream to obs as KindStageProgress events.
func measurePhysics(ctx context.Context, name string, cfg Config, obs runner.Observer) (*core.Measurement, error) {
	d, err := datasets.ByName(name)
	if err != nil {
		return nil, err
	}
	g := d.Generate(cfg.Scale, cfg.Seed)
	var progress func(stage string, done, total int)
	if obs != nil {
		progress = func(stage string, done, total int) {
			runner.Emit(obs, runner.Event{Kind: runner.KindStageProgress,
				Dataset: name, Stage: stage, Done: done, Total: total})
		}
	}
	return core.MeasureContext(ctx, g, core.Options{
		Sources:     cfg.Sources,
		MaxWalk:     cfg.MaxWalk,
		SpectralTol: cfg.SpectralTol,
		Seed:        cfg.Seed,
		Workers:     cfg.Workers,
		BlockSize:   cfg.BlockSize,
		Progress:    progress,
		Collector:   cfg.Collector,
	})
}

// distanceCDFs extracts the probe-walk CDFs from a measurement.
func distanceCDFs(name string, m *core.Measurement, walks []int) []DistanceCDF {
	out := make([]DistanceCDF, 0, len(walks))
	for _, w := range walks {
		out = append(out, DistanceCDF{Dataset: name, W: w, Distances: m.DistancesAt(w)})
	}
	return out
}

// physicsCDFs is the shared Figure 3/4 loop over the named datasets.
func physicsCDFs(ctx context.Context, names []string, walks []int, cfg Config, obs runner.Observer) ([]DistanceCDF, error) {
	cfg = cfg.WithDefaults()
	var rows []DistanceCDF
	for i, name := range names {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: cancelled before %s: %w", name, err)
		}
		m, err := measurePhysics(ctx, name, cfg, obs)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		rows = append(rows, distanceCDFs(name, m, walks)...)
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Done: i + 1, Total: len(names)})
	}
	return rows, nil
}

// Figure3 reproduces the short-walk CDFs (w ∈ {1,5,10,20,40}) of the
// three physics co-authorship graphs.
func Figure3(cfg Config) ([]DistanceCDF, error) {
	return Figure3Context(context.Background(), cfg, nil)
}

// Figure3Context is Figure3 with cancellation and progress.
func Figure3Context(ctx context.Context, cfg Config, obs runner.Observer) ([]DistanceCDF, error) {
	return physicsCDFs(ctx, physicsNames, probeWalksShort, cfg, obs)
}

// Figure4 reproduces the long-walk CDFs (w ∈ {80..500}) for
// physics-2 and physics-3.
func Figure4(cfg Config) ([]DistanceCDF, error) {
	return Figure4Context(context.Background(), cfg, nil)
}

// Figure4Context is Figure4 with cancellation and progress.
func Figure4Context(ctx context.Context, cfg Config, obs runner.Observer) ([]DistanceCDF, error) {
	return physicsCDFs(ctx, physicsNames[1:], probeWalksLong, cfg, obs)
}

// RenderDistanceCDFs draws one dataset's CDFs (one series per walk
// length): x = variation distance, y = fraction of sources.
func RenderDistanceCDFs(title string, rows []DistanceCDF) string {
	var series []textplot.Series
	for _, r := range rows {
		xs, ys := stats.NewCDF(r.Distances).Points(64)
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("w=%d", r.W),
			X:    xs,
			Y:    ys,
		})
	}
	return textplot.Chart(textplot.Options{
		Title:  title,
		XLabel: "total variation distance",
		YLabel: "CDF",
	}, series...)
}

// Fig5Curve compares, for one physics dataset, the sampled mixing
// behaviour with the SLEM lower bound: for each walk length, the mean
// per-source distance, the 99.9th-percentile (worst-case) distance,
// and the distance the Sinclair bound associates with that walk
// length.
type Fig5Curve struct {
	Dataset  string
	Mu       float64
	W        []int
	MeanTV   []float64
	Q999TV   []float64
	BoundEps []float64
}

// Figure5 reproduces the lower-bound-vs-sampling comparison for the
// three physics graphs.
func Figure5(cfg Config) ([]Fig5Curve, error) {
	return Figure5Context(context.Background(), cfg, nil)
}

// Figure5Context is Figure5 with cancellation and progress.
func Figure5Context(ctx context.Context, cfg Config, obs runner.Observer) ([]Fig5Curve, error) {
	cfg = cfg.WithDefaults()
	walks := append(append([]int{}, probeWalksShort...), probeWalksLong...)
	var out []Fig5Curve
	for i, name := range physicsNames {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: figure5 cancelled before %s: %w", name, err)
		}
		m, err := measurePhysics(ctx, name, cfg, obs)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		c := Fig5Curve{Dataset: name, Mu: m.Mu(), W: walks}
		for _, w := range walks {
			d := m.DistancesAt(w)
			c.MeanTV = append(c.MeanTV, stats.Summarize(d).Mean)
			c.Q999TV = append(c.Q999TV, stats.NewCDF(d).Quantile(0.999))
			c.BoundEps = append(c.BoundEps, spectral.EpsilonAtWalkLength(m.Mu(), float64(w)))
		}
		out = append(out, c)
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Done: i + 1, Total: len(physicsNames)})
	}
	return out, nil
}

// RenderFig5 draws one dataset's Figure-5 panel.
func RenderFig5(c Fig5Curve) string {
	xs := make([]float64, len(c.W))
	for i, w := range c.W {
		xs[i] = float64(w)
	}
	return textplot.Chart(textplot.Options{
		Title:  fmt.Sprintf("Figure 5 (%s): lower bound vs sampled mixing (µ=%.5f)", c.Dataset, c.Mu),
		XLabel: "walk length",
		YLabel: "ε",
		LogY:   true,
	},
		textplot.Series{Name: "top 99.9% sampled", X: xs, Y: c.Q999TV},
		textplot.Series{Name: "mean sampled", X: xs, Y: c.MeanTV},
		textplot.Series{Name: "SLEM lower bound", X: xs, Y: c.BoundEps},
	)
}

// traceMeanAtWalks is shared by Figure 6: pointwise mean distance at
// the probe walk lengths.
func traceMeanAtWalks(traces []*markov.Trace, walks []int) []float64 {
	out := make([]float64, len(walks))
	for i, w := range walks {
		out[i] = stats.Summarize(markov.DistancesAt(traces, w)).Mean
	}
	return out
}
