package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

// parse reads back a CSV emission and returns header + rows.
func parse(t *testing.T, buf *bytes.Buffer) ([]string, [][]string) {
	t.Helper()
	all, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("empty CSV")
	}
	return all[0], all[1:]
}

func TestTable1CSV(t *testing.T) {
	rows := []Table1Row{{Name: "wiki-vote", Kind: "online", PaperNodes: 7066,
		PaperEdges: 100736, PaperMu: 0.899, Nodes: 200, Edges: 2730, Mu: 0.9077, Converged: true}}
	var buf bytes.Buffer
	if err := Table1CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	header, data := parse(t, &buf)
	if header[0] != "dataset" || len(data) != 1 || data[0][0] != "wiki-vote" {
		t.Fatalf("header %v data %v", header, data)
	}
	if data[0][8] != "true" {
		t.Fatalf("converged column %v", data[0])
	}
}

func TestBoundCurvesCSVLongForm(t *testing.T) {
	curves := []BoundCurve{{Dataset: "a", Mu: 0.9, Eps: []float64{0.1, 0.01}, T: []float64{5, 10}}}
	var buf bytes.Buffer
	if err := BoundCurvesCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	_, data := parse(t, &buf)
	if len(data) != 2 || data[1][3] != "10" {
		t.Fatalf("data %v", data)
	}
}

func TestDistanceCDFsCSV(t *testing.T) {
	rows := []DistanceCDF{{Dataset: "p1", W: 5, Distances: []float64{0.5, 0.25}}}
	var buf bytes.Buffer
	if err := DistanceCDFsCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	_, data := parse(t, &buf)
	if len(data) != 2 || data[0][1] != "5" || data[1][3] != "0.25" {
		t.Fatalf("data %v", data)
	}
}

func TestRemainingCSVEmitters(t *testing.T) {
	// One smoke row through each emitter, checking parseability and
	// row counts.
	cases := []struct {
		name string
		emit func(*bytes.Buffer) error
		rows int
	}{
		{"fig5", func(b *bytes.Buffer) error {
			return Fig5CSV(b, []Fig5Curve{{Dataset: "x", Mu: 0.9, W: []int{1, 2},
				MeanTV: []float64{0.5, 0.4}, Q999TV: []float64{0.6, 0.5}, BoundEps: []float64{0.3, 0.2}}})
		}, 2},
		{"fig6", func(b *bytes.Buffer) error {
			return Fig6CSV(b, []Fig6Row{{Level: 1, Nodes: 10, Edges: 20, Mu: 0.9,
				Eps: []float64{0.1}, BoundT: []float64{3}, W: []int{5}, MeanTV: []float64{0.2}}})
		}, 2},
		{"fig7", func(b *bytes.Buffer) error {
			return Fig7CSV(b, []Fig7Panel{{Dataset: "x", SampleSize: 100, Nodes: 90, Mu: 0.8,
				W: []int{1}, Top10: []float64{0.1}, Med20: []float64{0.2}, Low10: []float64{0.3},
				BoundEps: []float64{0.4}}})
		}, 1},
		{"fig8", func(b *bytes.Buffer) error {
			return Fig8CSV(b, []Fig8Curve{{Dataset: "x", Nodes: 10, Edges: 20, R: 5,
				W: []int{1, 2}, Accept: []float64{0.1, 0.9}}})
		}, 2},
		{"attack", func(b *bytes.Buffer) error {
			return SybilAttackCSV(b, []SybilAttackRow{{W: 2, HonestRate: 0.9, SybilRate: 0.1,
				EscapedTails: 1, R: 10, SybilsPerEdge: 0.5, EscapesPerEdge: 0.1}})
		}, 1},
		{"conductance", func(b *bytes.Buffer) error {
			return ConductanceCSV(b, []ConductanceRow{{Dataset: "x", Lambda2: 0.9,
				CheegerLo: 0.05, SweepPhi: 0.06, CheegerHi: 0.4, SweepNodes: 3}})
		}, 1},
		{"whanau", func(b *bytes.Buffer) error {
			return WhanauCSV(b, []WhanauRow{{Dataset: "x", W: 80, MeanEdgeTV: 0.5,
				MaxEdgeTV: 0.6, MeanSeparation: 0.9}})
		}, 1},
		{"trust", func(b *bytes.Buffer) error {
			return TrustCSV(b, []TrustRow{{Dataset: "x", Kind: "trust", MuUniform: 0.9,
				MuJaccard: 0.95, MuHesitant: 0.95, T10Uniform: 10, T10Jaccard: 20, T10Hesitant: 20}})
		}, 1},
		{"detection", func(b *bytes.Buffer) error {
			return DetectionCSV(b, []DetectionRow{{Dataset: "x", W: 5, HonestMean: 0.9,
				SybilMean: 0.1, Gap: 0.8, FalseReject: 1, FalseAccept: 2}})
		}, 1},
		{"defenses", func(b *bytes.Buffer) error {
			return DefenseComparisonCSV(b, []DefenseRow{{Dataset: "x", Defense: "ppr",
				AUC: 0.99, HonestMean: 0.5, SybilMean: 0.1}})
		}, 1},
		{"whanau-lookup", func(b *bytes.Buffer) error {
			return WhanauLookupCSV(b, []WhanauRow2{{Dataset: "x", W: 8, Success: 0.7}})
		}, 1},
	}
	for _, c := range cases {
		var buf bytes.Buffer
		if err := c.emit(&buf); err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		header, data := parse(t, &buf)
		if len(data) != c.rows {
			t.Fatalf("%s: %d rows, want %d", c.name, len(data), c.rows)
		}
		if len(header) == 0 || strings.TrimSpace(header[0]) == "" {
			t.Fatalf("%s: empty header", c.name)
		}
		for _, row := range data {
			if len(row) != len(header) {
				t.Fatalf("%s: ragged row %v vs header %v", c.name, row, header)
			}
		}
	}
}
