package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"mixtime/internal/datasets"
	"mixtime/internal/gen"
	"mixtime/internal/graph"
	"mixtime/internal/runner"
	"mixtime/internal/sybil"
	"mixtime/internal/textplot"
)

// DetectionRow measures SybilInfer's detection quality on one honest
// region at one trace walk length: the gap between the mean posterior
// honest-probability of honest nodes and of sybil nodes (0 = blind,
// 1 = perfect separation), plus a threshold classification at 0.5.
type DetectionRow struct {
	Dataset string
	W       int
	// HonestMean/SybilMean: average marginal per class.
	HonestMean, SybilMean float64
	// Gap = HonestMean − SybilMean.
	Gap float64
	// FalseReject: honest nodes classified sybil at threshold 0.5;
	// FalseAccept: sybils classified honest.
	FalseReject, FalseAccept int
}

// DetectionConfig parameterizes the experiment.
type DetectionConfig struct {
	Config
	// Nodes caps the honest region (default 600).
	Nodes int
	// SybilNodes sizes the sybil region (default Nodes/5).
	SybilNodes int
	// AttackEdges is g (default 4).
	AttackEdges int
	// Walks overrides the trace walk lengths (default 1×, 2×, 4×,
	// 8× of ⌈ln n⌉).
	Walks []int
	// Datasets overrides the honest regions (default facebook-A and
	// physics-1 — the fast/slow contrast).
	Datasets []string
}

func (c DetectionConfig) withDefaults() DetectionConfig {
	c.Config = c.Config.WithDefaults()
	if c.Nodes <= 0 {
		c.Nodes = 600
	}
	if c.SybilNodes <= 0 {
		c.SybilNodes = c.Nodes / 5
	}
	if c.AttackEdges <= 0 {
		c.AttackEdges = 4
	}
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"facebook-A", "physics-1"}
	}
	return c
}

// Detection runs SybilInfer across trace walk lengths on fast- and
// slow-mixing honest regions. The paper's implication made concrete:
// with the O(log n) traces the protocol assumes, detection on the
// slow trust graph is far weaker than on the fast online graph, and
// it recovers only as the walks approach the real mixing time.
func Detection(cfg DetectionConfig) ([]DetectionRow, error) {
	return DetectionContext(context.Background(), cfg, nil)
}

// DetectionContext is Detection with cancellation and progress: ctx
// is checked per (dataset, walk length) and each finished dataset
// reports as a KindDatasetDone.
func DetectionContext(ctx context.Context, cfg DetectionConfig, obs runner.Observer) ([]DetectionRow, error) {
	cfg = cfg.withDefaults()
	var rows []DetectionRow
	for di, name := range cfg.Datasets {
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		honest := d.Generate(cfg.Scale, cfg.Seed)
		if honest.NumNodes() > cfg.Nodes {
			rng := rand.New(rand.NewPCG(cfg.Seed, 0xde7))
			sub, _ := graph.BFSSubgraph(honest, graph.NodeID(rng.IntN(honest.NumNodes())), cfg.Nodes)
			honest, _ = graph.LargestComponent(sub)
		}
		rng := rand.New(rand.NewPCG(cfg.Seed, 0xde8))
		region := gen.BarabasiAlbert(cfg.SybilNodes, 4, rng)
		attack := sybil.NewAttack(honest, region, cfg.AttackEdges, rng)

		walks := cfg.Walks
		if len(walks) == 0 {
			base := int(math.Ceil(math.Log(float64(attack.Combined.NumNodes()))))
			walks = []int{base, 2 * base, 4 * base, 8 * base}
		}
		for _, w := range walks {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: detection cancelled at %s w=%d: %w", name, w, err)
			}
			res, err := sybil.SybilInfer(attack.Combined, sybil.InferConfig{
				WalksPerNode: 15,
				W:            w,
				Samples:      80,
				Burn:         40,
				Seed:         cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: detection %s w=%d: %w", name, w, err)
			}
			row := DetectionRow{Dataset: name, W: w}
			var hN, sN int
			for v, p := range res.HonestProb {
				if attack.IsSybil(graph.NodeID(v)) {
					row.SybilMean += p
					sN++
					if p >= 0.5 {
						row.FalseAccept++
					}
				} else {
					row.HonestMean += p
					hN++
					if p < 0.5 {
						row.FalseReject++
					}
				}
			}
			row.HonestMean /= float64(hN)
			row.SybilMean /= float64(sN)
			row.Gap = row.HonestMean - row.SybilMean
			rows = append(rows, row)
		}
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Done: di + 1, Total: len(cfg.Datasets)})
	}
	return rows, nil
}

// RenderDetection formats the experiment.
func RenderDetection(rows []DetectionRow) string {
	header := []string{"dataset", "w", "honest mean", "sybil mean", "gap", "false rej", "false acc"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, fmt.Sprintf("%d", r.W),
			fmt.Sprintf("%.3f", r.HonestMean),
			fmt.Sprintf("%.3f", r.SybilMean),
			fmt.Sprintf("%.3f", r.Gap),
			fmt.Sprintf("%d", r.FalseReject),
			fmt.Sprintf("%d", r.FalseAccept),
		})
	}
	return "SybilInfer detection vs trace walk length (fast vs slow honest region)\n" +
		textplot.Table(header, cells)
}
