package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mixtime/internal/runner"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestDocumentSchemaGolden pins the versioned JSON document schema:
// envelope keys, row field names, and the deterministic values of a
// seeded run. Any drift — a renamed field, a reordered envelope, a
// changed default — fails against the golden until the schema bump is
// deliberate (regenerate with `go test -run DocumentSchemaGolden
// -update ./internal/experiments`). `paperfigs -json` files and
// mixtimed OpExperiment responses both emit exactly this document.
func TestDocumentSchemaGolden(t *testing.T) {
	def, ok := runner.Default().Resolve("X3")
	if !ok {
		t.Fatal("Resolve(X3) failed")
	}
	res, err := def.Run(context.Background(), tiny, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "document_x3.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("document schema drifted from golden %s\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}
