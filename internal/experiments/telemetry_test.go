package experiments

import (
	"bytes"
	"context"
	"testing"

	"mixtime/internal/runner"
	"mixtime/internal/telemetry"
)

// TestInstrumentedRunsAreByteIdentical is the acceptance test for the
// telemetry overhead contract: running registered drivers with a
// collector must change nothing about the artifacts — Render, CSV and
// JSON are byte-identical to the uninstrumented run — while the
// collector actually observes kernel work.
func TestInstrumentedRunsAreByteIdentical(t *testing.T) {
	ctx := context.Background()
	// One spectral-heavy, one sampling-heavy, one composite driver.
	for _, id := range []string{"T1", "F3", "X3"} {
		def, ok := runner.Default().Resolve(id)
		if !ok {
			t.Fatalf("%s not registered", id)
		}
		plain, err := def.Run(ctx, tiny, nil)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		col := telemetry.New()
		cfg := tiny
		cfg.Collector = col
		instr, err := def.Run(ctx, cfg, nil)
		if err != nil {
			t.Fatalf("%s instrumented: %v", id, err)
		}

		if a, b := plain.Render(), instr.Render(); a != b {
			t.Errorf("%s: Render differs with a collector installed", id)
		}
		var pc, ic, pj, ij bytes.Buffer
		if err := plain.CSV(&pc); err != nil {
			t.Fatal(err)
		}
		if err := instr.CSV(&ic); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pc.Bytes(), ic.Bytes()) {
			t.Errorf("%s: CSV differs with a collector installed", id)
		}
		if err := plain.JSON(&pj); err != nil {
			t.Fatal(err)
		}
		if err := instr.JSON(&ij); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pj.Bytes(), ij.Bytes()) {
			t.Errorf("%s: JSON differs with a collector installed", id)
		}

		snap := col.Snapshot()
		if snap.IsZero() {
			t.Errorf("%s: collector observed no kernel work", id)
		}
		if snap.Get(telemetry.EdgesScanned) == 0 {
			t.Errorf("%s: no edges counted", id)
		}
	}
}
