package experiments

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"mixtime/internal/telemetry"
)

// distTolerance mirrors DESIGN.md §11: the distributed estimate must
// land within 35% of the exact propagated τ, or 3 steps for small τ.
func distTolerance(exact int) int {
	tol := int(math.Ceil(0.35 * float64(exact)))
	if tol < 3 {
		tol = 3
	}
	return tol
}

func TestDistMixValidation(t *testing.T) {
	cfg := tiny
	col := telemetry.New()
	cfg.Collector = col
	rows, err := DistMixValidation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows, want one per Table-1 dataset", len(rows))
	}
	for _, r := range rows {
		if r.Sources == 0 || r.Sources > d1MaxSources {
			t.Errorf("%s: %d sources, want 1..%d", r.Dataset, r.Sources, d1MaxSources)
		}
		diff := r.TauEst - r.TauExact
		if diff < 0 {
			diff = -diff
		}
		if diff > distTolerance(r.TauExact) {
			t.Errorf("%s: τ̂ %d vs exact %d exceeds tolerance %d",
				r.Dataset, r.TauEst, r.TauExact, distTolerance(r.TauExact))
		}
		if r.Shards > 1 && r.OffShardMessages == 0 {
			t.Errorf("%s: no off-shard traffic across %d shards", r.Dataset, r.Shards)
		}
		if r.Rounds <= 0 || r.Messages <= 0 {
			t.Errorf("%s: empty communication accounting: %+v", r.Dataset, r)
		}
	}
	if col.Snapshot().Get(telemetry.DistOffShardMessages) == 0 {
		t.Fatal("collector saw no off-shard messages")
	}
	out := RenderDistMix(rows)
	if !strings.Contains(out, "wiki-vote") || !strings.Contains(out, "off-shard") {
		t.Fatal("render incomplete")
	}
	var buf bytes.Buffer
	if err := DistMixCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(rows)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(rows)+1)
	}
}

func TestDistMixValidationDeterminism(t *testing.T) {
	a, err := DistMixValidation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistMixValidation(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical D1 runs disagree")
	}
}

func TestDistMixTradeoff(t *testing.T) {
	rows, err := DistMixTradeoff(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// 3 walk counts × 3 shard counts + 2 truncation rows, per dataset.
	want := len(d2Datasets) * (3*3 + 2)
	if len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	// Index the full-budget sweep per dataset to check the axes.
	type key struct {
		ds            string
		walks, shards int
	}
	byCfg := map[key]TradeoffRow{}
	for _, r := range rows {
		if r.MaxRounds == tiny.MaxWalk {
			byCfg[key{r.Dataset, r.Walks, r.Shards}] = r
		}
	}
	for _, ds := range d2Datasets {
		// Shard axis: same walker count → identical estimate, more
		// off-shard traffic than one-ish shards.
		for _, walks := range []int{4, 16, 64} {
			ref := byCfg[key{ds, walks, 2}]
			for _, shards := range []int{8, 32} {
				r := byCfg[key{ds, walks, shards}]
				if r.TauEst != ref.TauEst || r.NoiseFloor != ref.NoiseFloor {
					t.Errorf("%s walks=%d: shards %d changed τ̂ %d→%d",
						ds, walks, shards, ref.TauEst, r.TauEst)
				}
			}
		}
		// Walker axis: more walkers → lower noise floor.
		lo, hi := byCfg[key{ds, 4, 8}], byCfg[key{ds, 64, 8}]
		if hi.NoiseFloor >= lo.NoiseFloor {
			t.Errorf("%s: noise floor did not shrink with walkers: %v vs %v",
				ds, hi.NoiseFloor, lo.NoiseFloor)
		}
		if hi.Messages <= lo.Messages {
			t.Errorf("%s: message bill did not grow with walkers", ds)
		}
	}
	// Truncation rows cap the estimate at their budget.
	for _, r := range rows {
		if r.MaxRounds < tiny.MaxWalk && r.TauEst > r.MaxRounds {
			t.Errorf("%s: τ̂ %d exceeds round budget %d", r.Dataset, r.TauEst, r.MaxRounds)
		}
	}
	out := RenderDistMixTradeoff(rows)
	if !strings.Contains(out, "physics-1") || !strings.Contains(out, "budget") {
		t.Fatal("render incomplete")
	}
	var buf bytes.Buffer
	if err := DistMixTradeoffCSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(rows)+1 {
		t.Fatalf("CSV has %d lines, want %d", lines, len(rows)+1)
	}
}
