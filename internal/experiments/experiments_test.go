package experiments

import (
	"math"
	"strings"
	"testing"

	"mixtime/internal/graph"
)

// tiny is a fast configuration for tests: minimum dataset sizes,
// few sources, short walks.
var tiny = Config{Scale: 0.0002, Seed: 1, Sources: 25, MaxWalk: 120, SpectralTol: 1e-6}

func TestTable1(t *testing.T) {
	rows, err := Table1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("%d rows, want 15", len(rows))
	}
	for _, r := range rows {
		if r.Mu <= 0 || r.Mu > 1 {
			t.Errorf("%s: µ = %v", r.Name, r.Mu)
		}
		if r.Nodes < 100 || r.Edges < 100 {
			t.Errorf("%s: degenerate substitute n=%d m=%d", r.Name, r.Nodes, r.Edges)
		}
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "wiki-vote") || !strings.Contains(out, "livejournal-B") {
		t.Fatal("render incomplete")
	}
}

func TestFigure1And2(t *testing.T) {
	small, err := Figure1(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(small) != 9 {
		t.Fatalf("%d small curves, want 9", len(small))
	}
	large, err := Figure2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(large) != 6 {
		t.Fatalf("%d large curves, want 6", len(large))
	}
	for _, c := range append(small, large...) {
		if len(c.T) != len(c.Eps) {
			t.Fatalf("%s: ragged curve", c.Dataset)
		}
		// The bound grows as ε shrinks.
		for i := 1; i < len(c.T); i++ {
			if c.T[i] < c.T[i-1] {
				t.Fatalf("%s: bound not monotone", c.Dataset)
			}
		}
	}
	out := RenderBoundCurves("Figure 1", small)
	if !strings.Contains(out, "Figure 1") || !strings.Contains(out, "physics-1") {
		t.Fatal("render incomplete")
	}
}

func TestFigure3And4(t *testing.T) {
	rows3, err := Figure3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets × 5 walk lengths.
	if len(rows3) != 15 {
		t.Fatalf("%d figure-3 rows", len(rows3))
	}
	for _, r := range rows3 {
		if len(r.Distances) != tiny.Sources {
			t.Fatalf("%s w=%d: %d samples", r.Dataset, r.W, len(r.Distances))
		}
		for _, d := range r.Distances {
			if d < 0 || d > 1 {
				t.Fatalf("%s w=%d: distance %v", r.Dataset, r.W, d)
			}
		}
	}
	rows4, err := Figure4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// 2 datasets × 6 walk lengths.
	if len(rows4) != 12 {
		t.Fatalf("%d figure-4 rows", len(rows4))
	}
	out := RenderDistanceCDFs("Figure 3 (physics-1)", rows3[:5])
	if !strings.Contains(out, "w=40") {
		t.Fatal("render incomplete")
	}
}

func TestFigure5(t *testing.T) {
	curves, err := Figure5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("%d curves", len(curves))
	}
	for _, c := range curves {
		if len(c.MeanTV) != len(c.W) || len(c.Q999TV) != len(c.W) || len(c.BoundEps) != len(c.W) {
			t.Fatalf("%s: ragged", c.Dataset)
		}
		for i := range c.W {
			// The worst case dominates the mean.
			if c.Q999TV[i] < c.MeanTV[i]-1e-9 {
				t.Fatalf("%s: q999 %v < mean %v at w=%d", c.Dataset, c.Q999TV[i], c.MeanTV[i], c.W[i])
			}
		}
	}
	if out := RenderFig5(curves[0]); !strings.Contains(out, "lower bound") {
		t.Fatal("render incomplete")
	}
}

func TestFigure6(t *testing.T) {
	cfg := tiny
	cfg.Scale = 0.002 // the DBLP substitute needs headroom for 5 trim levels
	rows, err := Figure6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d trim levels", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Nodes > rows[i-1].Nodes {
			t.Fatalf("trimming grew the graph: level %d %d > level %d %d",
				rows[i].Level, rows[i].Nodes, rows[i-1].Level, rows[i-1].Nodes)
		}
	}
	// The paper's finding: trimming improves (reduces) µ overall.
	if rows[4].Mu >= rows[0].Mu {
		t.Fatalf("trim level 5 µ=%v not better than level 1 µ=%v", rows[4].Mu, rows[0].Mu)
	}
	// And costs substantial graph size.
	if float64(rows[4].Nodes) > 0.8*float64(rows[0].Nodes) {
		t.Fatalf("trimming removed too little: %d -> %d", rows[0].Nodes, rows[4].Nodes)
	}
	if out := RenderFig6(rows); !strings.Contains(out, "DBLP 5") {
		t.Fatal("render incomplete")
	}
}

func TestFigure7(t *testing.T) {
	cfg := tiny
	cfg.Scale = 0.001
	panels, err := Figure7(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 datasets × 3 sizes.
	if len(panels) != 12 {
		t.Fatalf("%d panels", len(panels))
	}
	for _, p := range panels {
		if p.Nodes < 50 {
			t.Fatalf("%s/%d: %d nodes", p.Dataset, p.SampleSize, p.Nodes)
		}
		for i := range p.W {
			if p.Top10[i] > p.Med20[i]+1e-9 || p.Med20[i] > p.Low10[i]+1e-9 {
				t.Fatalf("%s: bands out of order at w=%d", p.Dataset, p.W[i])
			}
		}
	}
	if out := RenderFig7Panel(panels[0]); !strings.Contains(out, "Figure 7") {
		t.Fatal("render incomplete")
	}
}

func TestFigure8(t *testing.T) {
	cfg := Fig8Config{Config: tiny, Nodes: 350, R0: 3, Walks: []int{1, 6, 14}}
	curves, err := Figure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 5 {
		t.Fatalf("%d curves", len(curves))
	}
	byName := map[string]Fig8Curve{}
	for _, c := range curves {
		byName[c.Dataset] = c
		if len(c.Accept) != 3 {
			t.Fatalf("%s: %d points", c.Dataset, len(c.Accept))
		}
		// Longer walks admit (weakly) more, modulo small noise.
		if c.Accept[2] < c.Accept[0]-0.1 {
			t.Fatalf("%s: admission fell with longer walks: %v", c.Dataset, c.Accept)
		}
	}
	// The paper's Figure-8 shape: the fast-mixing graph admits most
	// honest nodes by w=14 while the slow trust graphs lag behind —
	// short SybilLimit walks deny service on them.
	fb := byName["facebook-A"].Accept[2]
	if fb < 0.7 {
		t.Fatalf("facebook-A admits only %v at w=14", fb)
	}
	if slow := byName["physics-3"].Accept[2]; slow > fb {
		t.Fatalf("slow-mixing physics-3 (%v) outpaced facebook-A (%v)", slow, fb)
	}
	if out := RenderFig8(curves); !strings.Contains(out, "Figure 8") {
		t.Fatal("render incomplete")
	}
}

func TestSybilAttack(t *testing.T) {
	cfg := SybilAttackConfig{Config: tiny, Nodes: 300, SybilNodes: 80,
		AttackEdges: 5, R0: 2, Walks: []int{2, 8, 16}}
	rows, err := SybilAttack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Longer walks escape more.
	if rows[2].EscapedTails < rows[0].EscapedTails {
		t.Fatalf("escapes not increasing: %+v", rows)
	}
	for _, r := range rows {
		if r.SybilRate > r.HonestRate+0.1 {
			t.Fatalf("w=%d: sybil rate %v above honest %v", r.W, r.SybilRate, r.HonestRate)
		}
		if math.IsNaN(r.EscapesPerEdge) {
			t.Fatal("NaN escapes per edge")
		}
	}
	if out := RenderSybilAttack(rows); !strings.Contains(out, "escaped tails") {
		t.Fatal("render incomplete")
	}
}

func TestWhanau(t *testing.T) {
	rows, err := Whanau(tiny)
	if err != nil {
		t.Fatal(err)
	}
	// 3 datasets × 6 walk lengths.
	if len(rows) != 18 {
		t.Fatalf("%d rows", len(rows))
	}
	byDS := map[string][]WhanauRow{}
	for _, r := range rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
		if r.MeanEdgeTV < 0 || r.MeanEdgeTV > 1+1e-9 {
			t.Fatalf("%s w=%d: edge TV %v", r.Dataset, r.W, r.MeanEdgeTV)
		}
		if r.MaxEdgeTV < r.MeanEdgeTV-1e-9 {
			t.Fatalf("%s w=%d: max %v below mean %v", r.Dataset, r.W, r.MaxEdgeTV, r.MeanEdgeTV)
		}
		// Separation distance dominates TV distance.
		if r.MeanSeparation < r.MeanEdgeTV-1e-9 {
			t.Fatalf("%s w=%d: separation %v < TV %v", r.Dataset, r.W, r.MeanSeparation, r.MeanEdgeTV)
		}
	}
	for ds, rs := range byDS {
		// Tail distributions approach uniform as w grows.
		if rs[len(rs)-1].MeanEdgeTV > rs[0].MeanEdgeTV {
			t.Fatalf("%s: edge TV grew with walk length: %v", ds, rs)
		}
	}
	// The paper's §2 point: at w=80 the slow graphs are still far from
	// uniform while the fast one is close.
	var fb80, phys80 float64
	for _, r := range rows {
		if r.W == 80 && r.Dataset == "facebook" {
			fb80 = r.MeanEdgeTV
		}
		if r.W == 80 && r.Dataset == "physics-1" {
			phys80 = r.MeanEdgeTV
		}
	}
	if phys80 <= fb80 {
		t.Fatalf("physics-1 TV@80 %v not worse than facebook %v", phys80, fb80)
	}
	if out := RenderWhanau(rows); !strings.Contains(out, "separation") {
		t.Fatal("render incomplete")
	}
}

func TestAUC(t *testing.T) {
	isSybil := func(v graph.NodeID) bool { return v >= 2 }
	// Perfect separation: honest {0,1} score high.
	if got := auc([]float64{0.9, 0.8, 0.1, 0.2}, isSybil); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Inverted.
	if got := auc([]float64{0.1, 0.2, 0.9, 0.8}, isSybil); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All tied: 0.5.
	if got := auc([]float64{1, 1, 1, 1}, isSybil); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
	// One class empty: defined as 0.5.
	if got := auc([]float64{1, 2}, func(graph.NodeID) bool { return false }); got != 0.5 {
		t.Fatalf("degenerate AUC = %v", got)
	}
}

func TestDefenseComparison(t *testing.T) {
	// A single attack edge: the sparse-cut regime where every defense
	// has a fighting chance (SybilLimit's guarantee is ~g·w accepted
	// sybils, so large g with few sybils legitimately saturates it).
	cfg := DefenseComparisonConfig{Config: tiny, Nodes: 220, SybilNodes: 50,
		AttackEdges: 1, W: 10, Datasets: []string{"facebook-A"}}
	rows, err := DefenseComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5 defenses", len(rows))
	}
	for _, r := range rows {
		if r.AUC < 0 || r.AUC > 1 {
			t.Fatalf("%s AUC %v", r.Defense, r.AUC)
		}
		// PPR and community ranking must clearly beat coin flipping on
		// a fast graph with a sparse cut. The binary SybilLimit score
		// and the Bayesian marginals are allowed to be weaker here:
		// the honest substitute itself has community structure, whose
		// internal cuts depress exactly these defenses (the Viswanath
		// observation the experiment exists to exhibit).
		floor := 0.6
		if r.Defense == "sybillimit" || r.Defense == "sybilinfer" {
			floor = 0.5
		}
		if r.AUC < floor {
			t.Fatalf("%s AUC %v below %v", r.Defense, r.AUC, floor)
		}
	}
	if out := RenderDefenseComparison(rows); !strings.Contains(out, "ppr") {
		t.Fatal("render incomplete")
	}
}

func TestWhanauLookup(t *testing.T) {
	rows, err := WhanauLookup(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 { // 2 datasets × 7 walk lengths
		t.Fatalf("%d rows", len(rows))
	}
	byDS := map[string][]WhanauRow2{}
	for _, r := range rows {
		if r.Success < 0 || r.Success > 1 {
			t.Fatalf("success %v", r.Success)
		}
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for ds, rs := range byDS {
		if rs[len(rs)-1].Success < rs[0].Success {
			t.Fatalf("%s: success fell with longer walks: %v", ds, rs)
		}
	}
	if out := RenderWhanauLookup(rows); !strings.Contains(out, "lookup") {
		t.Fatal("render incomplete")
	}
}

func TestDetection(t *testing.T) {
	cfg := DetectionConfig{Config: tiny, Nodes: 250, SybilNodes: 60,
		AttackEdges: 3, Walks: []int{4, 12}, Datasets: []string{"facebook-A"}}
	rows, err := Detection(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.HonestMean < 0 || r.HonestMean > 1 || r.SybilMean < 0 || r.SybilMean > 1 {
			t.Fatalf("means out of range: %+v", r)
		}
		if r.Gap != r.HonestMean-r.SybilMean {
			t.Fatalf("gap inconsistent: %+v", r)
		}
	}
	// On the fast-mixing honest region a modest walk already separates.
	if rows[1].Gap < 0.2 {
		t.Fatalf("w=12 gap %v on fast graph", rows[1].Gap)
	}
	if out := RenderDetection(rows); !strings.Contains(out, "gap") {
		t.Fatal("render incomplete")
	}
}

func TestTrustModels(t *testing.T) {
	rows, err := TrustModels(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Hesitation slows the walk by the affine eigenvalue map.
		if r.MuHesitant <= r.MuUniform {
			t.Fatalf("%s: hesitant µ=%v not above plain µ=%v", r.Dataset, r.MuHesitant, r.MuUniform)
		}
		if r.T10Hesitant < r.T10Uniform {
			t.Fatalf("%s: hesitant bound below plain", r.Dataset)
		}
		if r.MuJaccard <= 0 || r.MuJaccard > 1 {
			t.Fatalf("%s: jaccard µ=%v", r.Dataset, r.MuJaccard)
		}
	}
	// On the strict-trust physics graph, similarity weighting slows
	// mixing (bridges are down-weighted).
	for _, r := range rows {
		if r.Dataset == "physics-1" && r.MuJaccard <= r.MuUniform {
			t.Fatalf("physics-1: jaccard µ=%v not above plain µ=%v", r.MuJaccard, r.MuUniform)
		}
	}
	if out := RenderTrust(rows); !strings.Contains(out, "hesitant") {
		t.Fatal("render incomplete")
	}
}

func TestConductance(t *testing.T) {
	rows, err := Conductance(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.SweepPhi < r.CheegerLo-1e-6 || r.SweepPhi > r.CheegerHi+1e-6 {
			t.Errorf("%s: sweep Φ=%v outside Cheeger [%v, %v]",
				r.Dataset, r.SweepPhi, r.CheegerLo, r.CheegerHi)
		}
	}
	if out := RenderConductance(rows); !strings.Contains(out, "Cheeger") {
		t.Fatal("render incomplete")
	}
}
