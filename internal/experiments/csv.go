package experiments

import (
	"encoding/csv"
	"io"
	"strconv"
)

// The CSV emitters below give every artifact a machine-readable form,
// so the paper's figures can be re-plotted with any tool. Each writes
// a header row followed by data rows.

func writeCSV(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
func d(v int) string     { return strconv.Itoa(v) }

// Table1CSV writes the Table-1 rows.
func Table1CSV(w io.Writer, rows []Table1Row) error {
	header := []string{"dataset", "kind", "paper_nodes", "paper_edges", "paper_mu", "nodes", "edges", "mu", "converged"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Name, string(r.Kind), d(r.PaperNodes), strconv.FormatInt(r.PaperEdges, 10),
			f(r.PaperMu), d(r.Nodes), strconv.FormatInt(r.Edges, 10), f(r.Mu),
			strconv.FormatBool(r.Converged),
		})
	}
	return writeCSV(w, header, out)
}

// BoundCurvesCSV writes Figure 1/2 curves in long form.
func BoundCurvesCSV(w io.Writer, curves []BoundCurve) error {
	header := []string{"dataset", "mu", "epsilon", "lower_bound_T"}
	var out [][]string
	for _, c := range curves {
		for i := range c.Eps {
			out = append(out, []string{c.Dataset, f(c.Mu), f(c.Eps[i]), f(c.T[i])})
		}
	}
	return writeCSV(w, header, out)
}

// DistanceCDFsCSV writes Figure 3/4 samples in long form.
func DistanceCDFsCSV(w io.Writer, rows []DistanceCDF) error {
	header := []string{"dataset", "w", "source_index", "tv_distance"}
	var out [][]string
	for _, r := range rows {
		for i, dist := range r.Distances {
			out = append(out, []string{r.Dataset, d(r.W), d(i), f(dist)})
		}
	}
	return writeCSV(w, header, out)
}

// Fig5CSV writes the Figure-5 comparison curves.
func Fig5CSV(w io.Writer, curves []Fig5Curve) error {
	header := []string{"dataset", "mu", "w", "mean_tv", "q999_tv", "bound_eps"}
	var out [][]string
	for _, c := range curves {
		for i := range c.W {
			out = append(out, []string{
				c.Dataset, f(c.Mu), d(c.W[i]), f(c.MeanTV[i]), f(c.Q999TV[i]), f(c.BoundEps[i]),
			})
		}
	}
	return writeCSV(w, header, out)
}

// Fig6CSV writes the trimming rows: one line per (level, w) plus the
// bound grid in a second section distinguished by the "series"
// column.
func Fig6CSV(w io.Writer, rows []Fig6Row) error {
	header := []string{"level", "nodes", "edges", "mu", "series", "x", "y"}
	var out [][]string
	for _, r := range rows {
		for i := range r.Eps {
			out = append(out, []string{
				d(r.Level), d(r.Nodes), strconv.FormatInt(r.Edges, 10), f(r.Mu),
				"bound", f(r.BoundT[i]), f(r.Eps[i]),
			})
		}
		for i := range r.W {
			out = append(out, []string{
				d(r.Level), d(r.Nodes), strconv.FormatInt(r.Edges, 10), f(r.Mu),
				"mean_tv", d(r.W[i]), f(r.MeanTV[i]),
			})
		}
	}
	return writeCSV(w, header, out)
}

// Fig7CSV writes the twelve panels in long form.
func Fig7CSV(w io.Writer, panels []Fig7Panel) error {
	header := []string{"dataset", "sample_size", "nodes", "mu", "w", "top10", "med20", "low10", "bound_eps"}
	var out [][]string
	for _, p := range panels {
		for i := range p.W {
			out = append(out, []string{
				p.Dataset, d(p.SampleSize), d(p.Nodes), f(p.Mu), d(p.W[i]),
				f(p.Top10[i]), f(p.Med20[i]), f(p.Low10[i]), f(p.BoundEps[i]),
			})
		}
	}
	return writeCSV(w, header, out)
}

// Fig8CSV writes the admission curves.
func Fig8CSV(w io.Writer, curves []Fig8Curve) error {
	header := []string{"dataset", "nodes", "edges", "r", "w", "accept_rate"}
	var out [][]string
	for _, c := range curves {
		for i := range c.W {
			out = append(out, []string{
				c.Dataset, d(c.Nodes), strconv.FormatInt(c.Edges, 10), d(c.R),
				d(c.W[i]), f(c.Accept[i]),
			})
		}
	}
	return writeCSV(w, header, out)
}

// SybilAttackCSV writes the attack sweep.
func SybilAttackCSV(w io.Writer, rows []SybilAttackRow) error {
	header := []string{"w", "honest_rate", "sybil_rate", "escaped_tails", "r", "sybils_per_edge", "escapes_per_edge"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			d(r.W), f(r.HonestRate), f(r.SybilRate), d(r.EscapedTails), d(r.R),
			f(r.SybilsPerEdge), f(r.EscapesPerEdge),
		})
	}
	return writeCSV(w, header, out)
}

// ConductanceCSV writes the Cheeger/sweep table.
func ConductanceCSV(w io.Writer, rows []ConductanceRow) error {
	header := []string{"dataset", "lambda2", "cheeger_lo", "sweep_phi", "cheeger_hi", "cut_size"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, f(r.Lambda2), f(r.CheegerLo), f(r.SweepPhi), f(r.CheegerHi), d(r.SweepNodes),
		})
	}
	return writeCSV(w, header, out)
}

// WhanauCSV writes the tail-distribution check.
func WhanauCSV(w io.Writer, rows []WhanauRow) error {
	header := []string{"dataset", "w", "mean_edge_tv", "max_edge_tv", "mean_separation"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, d(r.W), f(r.MeanEdgeTV), f(r.MaxEdgeTV), f(r.MeanSeparation),
		})
	}
	return writeCSV(w, header, out)
}

// TrustCSV writes the trust-model comparison.
func TrustCSV(w io.Writer, rows []TrustRow) error {
	header := []string{"dataset", "kind", "mu_uniform", "mu_jaccard", "mu_hesitant", "t10_uniform", "t10_jaccard", "t10_hesitant"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, string(r.Kind), f(r.MuUniform), f(r.MuJaccard), f(r.MuHesitant),
			f(r.T10Uniform), f(r.T10Jaccard), f(r.T10Hesitant),
		})
	}
	return writeCSV(w, header, out)
}

// DetectionCSV writes the SybilInfer detection sweep.
func DetectionCSV(w io.Writer, rows []DetectionRow) error {
	header := []string{"dataset", "w", "honest_mean", "sybil_mean", "gap", "false_reject", "false_accept"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, d(r.W), f(r.HonestMean), f(r.SybilMean), f(r.Gap),
			d(r.FalseReject), d(r.FalseAccept),
		})
	}
	return writeCSV(w, header, out)
}

// DefenseComparisonCSV writes the ranking AUC table.
func DefenseComparisonCSV(w io.Writer, rows []DefenseRow) error {
	header := []string{"dataset", "defense", "auc", "honest_mean", "sybil_mean"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, r.Defense, f(r.AUC), f(r.HonestMean), f(r.SybilMean),
		})
	}
	return writeCSV(w, header, out)
}

// WhanauLookupCSV writes the lookup-success sweep.
func WhanauLookupCSV(w io.Writer, rows []WhanauRow2) error {
	header := []string{"dataset", "w", "success_rate"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Dataset, d(r.W), f(r.Success)})
	}
	return writeCSV(w, header, out)
}
