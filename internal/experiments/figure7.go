package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"mixtime/internal/datasets"
	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/stats"
	"mixtime/internal/textplot"
)

// fig7Datasets are the four large graphs the paper BFS-samples at
// 10K, 100K and 1000K nodes.
var fig7Datasets = []string{"facebook-A", "facebook-B", "livejournal-A", "livejournal-B"}

// fig7PaperSizes are the paper's sample sizes; the run scales them by
// Config.Scale.
var fig7PaperSizes = []int{10_000, 100_000, 1_000_000}

// Fig7Panel is one of the twelve panels of Figure 7: a dataset at a
// sample size, with the sampled percentile bands of the per-source
// distance at each walk length against the SLEM lower-bound curve.
type Fig7Panel struct {
	Dataset    string
	SampleSize int // requested (scaled) sample size
	Nodes      int // realized size after BFS + LCC
	Mu         float64
	W          []int
	Top10      []float64 // mean of the fastest 10% of sources
	Med20      []float64 // mean of the middle 20%
	Low10      []float64 // mean of the slowest 10%
	BoundEps   []float64 // ε from the Sinclair bound at each w
}

// Figure7 reproduces the sampling-versus-lower-bound comparison. Each
// large dataset substitute is generated at full run scale, then
// BFS-sampled (as the paper does, noting BFS can only bias the sample
// toward faster mixing) at the three scaled sizes.
func Figure7(cfg Config) ([]Fig7Panel, error) {
	return Figure7Context(context.Background(), cfg, nil)
}

// Figure7Context is Figure7 with cancellation and progress: ctx is
// checked before every (dataset, sample size) panel and threaded into
// the SLEM and trace propagation; each finished panel reports as a
// KindDatasetDone.
func Figure7Context(ctx context.Context, cfg Config, obs runner.Observer) ([]Fig7Panel, error) {
	cfg = cfg.WithDefaults()
	walks := append(append([]int{}, probeWalksShort...), probeWalksLong...)
	totalPanels := len(fig7Datasets) * len(fig7PaperSizes)
	var panels []Fig7Panel
	for _, name := range fig7Datasets {
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		full := d.Generate(cfg.Scale, cfg.Seed)
		rng := rand.New(rand.NewPCG(cfg.Seed, 0xf167))
		for _, paperSize := range fig7PaperSizes {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: figure7 cancelled before %s/%d: %w", name, paperSize, err)
			}
			size := int(float64(paperSize) * cfg.Scale)
			if size < 100 {
				size = 100
			}
			if size > full.NumNodes() {
				size = full.NumNodes()
			}
			start := graph.NodeID(rng.IntN(full.NumNodes()))
			sub, _ := graph.BFSSubgraph(full, start, size)
			sub, _ = graph.LargestComponent(sub)

			est, err := spectral.SLEMContext(ctx, sub, spectral.Options{
				Tol: cfg.SpectralTol, Seed: cfg.Seed, Workers: cfg.Workers,
				Collector: cfg.Collector})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%d: %w", name, paperSize, err)
			}
			chain, err := markov.New(sub, markov.WithCollector(cfg.Collector))
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%d: %w", name, paperSize, err)
			}
			sources := markov.SampleSources(sub, cfg.Sources, rng)
			traces, err := chain.TraceSampleBlockedContext(ctx, sources, cfg.MaxWalk, cfg.BlockSize, cfg.Workers, nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s/%d: %w", name, paperSize, err)
			}

			p := Fig7Panel{
				Dataset:    name,
				SampleSize: size,
				Nodes:      sub.NumNodes(),
				Mu:         est.Mu,
				W:          walks,
			}
			for _, w := range walks {
				b := stats.PercentileBands(markov.DistancesAt(traces, w))
				p.Top10 = append(p.Top10, b.Top10)
				p.Med20 = append(p.Med20, b.Median20)
				p.Low10 = append(p.Low10, b.Low10)
				p.BoundEps = append(p.BoundEps, spectral.EpsilonAtWalkLength(est.Mu, float64(w)))
			}
			panels = append(panels, p)
			runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone,
				Dataset: fmt.Sprintf("%s/%d", name, paperSize),
				Done:    len(panels), Total: totalPanels, Iterations: est.Iterations})
		}
	}
	return panels, nil
}

// RenderFig7Panel draws one panel.
func RenderFig7Panel(p Fig7Panel) string {
	xs := make([]float64, len(p.W))
	for i, w := range p.W {
		xs[i] = float64(w)
	}
	return textplot.Chart(textplot.Options{
		Title: fmt.Sprintf("Figure 7 (%s, %d nodes): sampling vs lower bound (µ=%.5f)",
			p.Dataset, p.Nodes, p.Mu),
		XLabel: "walk length",
		YLabel: "ε",
		LogY:   true,
	},
		textplot.Series{Name: "top 10% (fastest sources)", X: xs, Y: p.Top10},
		textplot.Series{Name: "median 20%", X: xs, Y: p.Med20},
		textplot.Series{Name: "lowest 10% (slowest sources)", X: xs, Y: p.Low10},
		textplot.Series{Name: "SLEM lower bound", X: xs, Y: p.BoundEps},
	)
}
