package experiments

import (
	"context"
	"fmt"

	"mixtime/internal/datasets"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/textplot"
	"mixtime/internal/trust"
)

// TrustRow measures what incorporating trust into the walk costs in
// mixing time on one dataset — the paper's concluding future-work
// direction ("cost models that consider the different mixing times of
// social graphs and their relation to the trust model"). Each row
// compares the plain walk's µ with two trust-modulated walks:
// similarity weighting (walks prefer embedded strong ties) and
// hesitation (per-hop reluctance, α = 0.5).
type TrustRow struct {
	Dataset string
	Kind    datasets.Kind
	// MuUniform, MuJaccard, MuHesitant: SLEM of the plain, the
	// similarity-weighted, and the α=0.5 hesitant walk.
	MuUniform, MuJaccard, MuHesitant float64
	// T10Uniform, T10Jaccard, T10Hesitant: the Sinclair lower bound
	// on T(0.1) implied by each µ.
	T10Uniform, T10Jaccard, T10Hesitant float64
}

// trustDatasets span the trust spectrum: loose online, interaction,
// strict co-authorship.
var trustDatasets = []string{"wiki-vote", "facebook", "enron", "physics-1", "physics-3"}

// TrustModels runs the trust-cost experiment.
func TrustModels(cfg Config) ([]TrustRow, error) {
	return TrustModelsContext(context.Background(), cfg, nil)
}

// TrustModelsContext is TrustModels with cancellation and progress:
// ctx is checked per dataset and threaded into each weighted SLEM,
// and each finished dataset reports as a KindDatasetDone.
func TrustModelsContext(ctx context.Context, cfg Config, obs runner.Observer) ([]TrustRow, error) {
	cfg = cfg.WithDefaults()
	opt := spectral.Options{Tol: cfg.SpectralTol, Seed: cfg.Seed, Collector: cfg.Collector}
	var rows []TrustRow
	for i, name := range trustDatasets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: trust models cancelled before %s: %w", name, err)
		}
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		row := TrustRow{Dataset: name, Kind: d.Kind}

		uni, err := trust.NewChain(g, trust.UniformWeights(g), 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		jac, err := trust.NewChain(g, trust.JaccardWeights(g), 0)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		hes, err := trust.NewChain(g, trust.UniformWeights(g), 0.5)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		for _, c := range []struct {
			chain *trust.Chain
			mu    *float64
			t10   *float64
		}{
			{uni, &row.MuUniform, &row.T10Uniform},
			{jac, &row.MuJaccard, &row.T10Jaccard},
			{hes, &row.MuHesitant, &row.T10Hesitant},
		} {
			est, err := c.chain.SLEMContext(ctx, opt)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", name, err)
			}
			*c.mu = est.Mu
			*c.t10 = spectral.MixingLowerBound(est.Mu, 0.1)
		}
		rows = append(rows, row)
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Done: i + 1, Total: len(trustDatasets)})
	}
	return rows, nil
}

// RenderTrust formats the trust experiment as a table.
func RenderTrust(rows []TrustRow) string {
	header := []string{"dataset", "kind", "µ plain", "µ jaccard", "µ hesitant", "T(0.1) plain", "jaccard", "hesitant"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, string(r.Kind),
			fmt.Sprintf("%.5f", r.MuUniform),
			fmt.Sprintf("%.5f", r.MuJaccard),
			fmt.Sprintf("%.5f", r.MuHesitant),
			fmt.Sprintf("%.0f", r.T10Uniform),
			fmt.Sprintf("%.0f", r.T10Jaccard),
			fmt.Sprintf("%.0f", r.T10Hesitant),
		})
	}
	return "Trust-modulated walks: stricter trust ⇒ slower mixing (future-work model)\n" +
		textplot.Table(header, cells)
}
