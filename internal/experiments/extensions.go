package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"mixtime/internal/datasets"
	"mixtime/internal/gen"
	"mixtime/internal/graph"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/sybil"
	"mixtime/internal/textplot"
)

// SybilAttackRow quantifies the §5 trade-off at one walk length:
// longer walks admit more honest nodes but leak more verifier tails
// into the sybil region (each escaped tail is adversary-controlled).
type SybilAttackRow struct {
	W              int
	HonestRate     float64
	SybilRate      float64
	EscapedTails   int
	R              int
	SybilsPerEdge  float64 // protocol-following sybil admissions per attack edge
	EscapesPerEdge float64 // escaped tails per attack edge
}

// SybilAttackConfig parameterizes the attack experiment.
type SybilAttackConfig struct {
	Config
	// Dataset names the honest region (default "facebook-A").
	Dataset string
	// Nodes caps the honest region (default 1500).
	Nodes int
	// SybilNodes sizes the sybil region (default Nodes/4).
	SybilNodes int
	// AttackEdges is g (default 10).
	AttackEdges int
	// R0 is the SybilLimit multiplier (default 3).
	R0 float64
	// Walks is the sweep (default fig8Walks).
	Walks []int
}

func (c SybilAttackConfig) withDefaults() SybilAttackConfig {
	c.Config = c.Config.WithDefaults()
	if c.Dataset == "" {
		c.Dataset = "facebook-A"
	}
	if c.Nodes <= 0 {
		c.Nodes = 1500
	}
	if c.SybilNodes <= 0 {
		c.SybilNodes = c.Nodes / 4
	}
	if c.AttackEdges <= 0 {
		c.AttackEdges = 10
	}
	if c.R0 <= 0 {
		c.R0 = 3
	}
	if len(c.Walks) == 0 {
		c.Walks = fig8Walks
	}
	return c
}

// SybilAttack runs the extension experiment: SybilLimit under attack
// across walk lengths, reporting the escape-based sybil bound the
// paper's discussion derives (accepted sybils ≈ t·g as long as
// g < n/w).
func SybilAttack(cfg SybilAttackConfig) ([]SybilAttackRow, error) {
	return SybilAttackContext(context.Background(), cfg, nil)
}

// SybilAttackContext is SybilAttack with cancellation and progress:
// ctx is checked per walk length and each finished walk length
// reports as a KindStageProgress.
func SybilAttackContext(ctx context.Context, cfg SybilAttackConfig, obs runner.Observer) ([]SybilAttackRow, error) {
	cfg = cfg.withDefaults()
	d, err := datasets.ByName(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	honest := d.Generate(cfg.Scale, cfg.Seed)
	if honest.NumNodes() > cfg.Nodes {
		rng := rand.New(rand.NewPCG(cfg.Seed, 0xa77))
		sub, _ := graph.BFSSubgraph(honest, graph.NodeID(rng.IntN(honest.NumNodes())), cfg.Nodes)
		honest, _ = graph.LargestComponent(sub)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5b1))
	sybilRegion := gen.BarabasiAlbert(cfg.SybilNodes, 3, rng)
	attack := sybil.NewAttack(honest, sybilRegion, cfg.AttackEdges, rng)

	var rows []SybilAttackRow
	for i, w := range cfg.Walks {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: attack cancelled at w=%d: %w", w, err)
		}
		out, err := sybil.RunAttack(attack, 0, sybil.Config{W: w, R0: cfg.R0, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: attack w=%d: %w", w, err)
		}
		runner.Emit(obs, runner.Event{Kind: runner.KindStageProgress, Dataset: cfg.Dataset,
			Stage: "walks", Done: i + 1, Total: len(cfg.Walks)})
		rows = append(rows, SybilAttackRow{
			W:              w,
			HonestRate:     float64(out.HonestAccepted) / float64(out.HonestTotal),
			SybilRate:      float64(out.SybilAccepted) / float64(out.SybilTotal),
			EscapedTails:   out.EscapedTails,
			R:              out.R,
			SybilsPerEdge:  float64(out.SybilAccepted) / float64(cfg.AttackEdges),
			EscapesPerEdge: float64(out.EscapedTails) / float64(cfg.AttackEdges),
		})
	}
	return rows, nil
}

// RenderSybilAttack formats the attack sweep as a table.
func RenderSybilAttack(rows []SybilAttackRow) string {
	header := []string{"w", "honest %", "sybil %", "escaped tails", "escapes/g", "sybils/g"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.W),
			fmt.Sprintf("%.1f", 100*r.HonestRate),
			fmt.Sprintf("%.1f", 100*r.SybilRate),
			fmt.Sprintf("%d/%d", r.EscapedTails, r.R),
			fmt.Sprintf("%.2f", r.EscapesPerEdge),
			fmt.Sprintf("%.2f", r.SybilsPerEdge),
		})
	}
	return "SybilLimit under attack: longer walks trade honest admission for tail escapes\n" +
		textplot.Table(header, cells)
}

// ConductanceRow links a dataset's mixing to its community structure:
// the Cheeger interval implied by λ₂ and the conductance of the best
// spectral sweep cut (the Viswanath-et-al. connection of §5).
type ConductanceRow struct {
	Dataset    string
	Lambda2    float64
	CheegerLo  float64
	CheegerHi  float64
	SweepPhi   float64
	SweepNodes int
}

// Conductance runs the community-structure extension over the small
// datasets.
func Conductance(cfg Config) ([]ConductanceRow, error) {
	return ConductanceContext(context.Background(), cfg, nil)
}

// ConductanceContext is Conductance with cancellation and progress.
func ConductanceContext(ctx context.Context, cfg Config, obs runner.Observer) ([]ConductanceRow, error) {
	cfg = cfg.WithDefaults()
	small := datasets.Small()
	var rows []ConductanceRow
	for i, d := range small {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: conductance cancelled before %s: %w", d.Name, err)
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		cut, est, err := spectral.SweepConductanceContext(ctx, g, spectral.Options{
			Tol: cfg.SpectralTol, Seed: cfg.Seed, Workers: cfg.Workers,
			Collector: cfg.Collector})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		lo, hi := spectral.CheegerBounds(est.Lambda2)
		rows = append(rows, ConductanceRow{
			Dataset:    d.Name,
			Lambda2:    est.Lambda2,
			CheegerLo:  lo,
			CheegerHi:  hi,
			SweepPhi:   cut.Conductance,
			SweepNodes: cut.Size,
		})
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: d.Name,
			Done: i + 1, Total: len(small), Iterations: est.Iterations})
	}
	return rows, nil
}

// RenderConductance formats the conductance table.
func RenderConductance(rows []ConductanceRow) string {
	header := []string{"dataset", "λ2", "Cheeger lo", "sweep Φ", "Cheeger hi", "cut size"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset,
			fmt.Sprintf("%.5f", r.Lambda2),
			fmt.Sprintf("%.5f", r.CheegerLo),
			fmt.Sprintf("%.5f", r.SweepPhi),
			fmt.Sprintf("%.5f", r.CheegerHi),
			fmt.Sprintf("%d", r.SweepNodes),
		})
	}
	return "Conductance: slow mixing certifies community structure (Cheeger)\n" +
		textplot.Table(header, cells)
}
