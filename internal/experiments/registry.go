package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"mixtime/internal/api"
	"mixtime/internal/runner"
)

// artifact adapts a driver's typed rows to runner.Result: rendering
// and CSV delegate to the artifact-specific closures, JSON emits the
// rows inside the versioned api.Document envelope (schema_version,
// id, name, title, rows) so that a `paperfigs -json` file and a
// mixtimed OpExperiment response are the same document. The id/name/
// title fields are stamped by the registration wrapper, so the
// per-experiment closures stay envelope-unaware.
type artifact struct {
	id, name, title string
	rows            any
	render          func() string
	csv             func(io.Writer) error
}

func (a *artifact) Render() string        { return a.render() }
func (a *artifact) CSV(w io.Writer) error { return a.csv(w) }
func (a *artifact) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(api.Document{
		SchemaVersion: api.SchemaVersion,
		ID:            a.id,
		Name:          a.name,
		Title:         a.title,
		Rows:          a.rows,
	})
}

// stampArtifact wraps a Def's Run so the artifact it returns knows
// its registry identity — what the JSON envelope reports.
func stampArtifact(d runner.Def) runner.RunFunc {
	inner := d.Run
	return func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
		res, err := inner(ctx, cfg, obs)
		if a, ok := res.(*artifact); ok && a != nil {
			a.id, a.name, a.title = d.ID, d.Name, d.Title
		}
		return res, err
	}
}

// RenderCDFGroups draws one chart per dataset from a long-form CDF
// row set (the Figure 3/4 layout).
func RenderCDFGroups(figure string, rows []DistanceCDF, order []string) string {
	var b strings.Builder
	for _, ds := range order {
		var sub []DistanceCDF
		for _, r := range rows {
			if r.Dataset == ds {
				sub = append(sub, r)
			}
		}
		b.WriteString(RenderDistanceCDFs(
			fmt.Sprintf("%s (%s): CDF of variation distance", figure, ds), sub))
		b.WriteByte('\n')
	}
	return b.String()
}

// init registers every artifact of the paper's evaluation into the
// default runner registry under its DESIGN.md §5 ID. The legacy
// cmd/paperfigs names are kept as aliases, so both `-only T1` and
// `-only table1` resolve.
func init() {
	reg := []runner.Def{
		{ID: "T1", Name: "table1",
			Title: "Table 1: datasets, their properties and their second largest eigenvalues",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := Table1Context(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderTable1(rows) },
					csv:    func(w io.Writer) error { return Table1CSV(w, rows) }}, nil
			}},
		{ID: "F1", Name: "fig1",
			Title: "Figure 1: lower bound of the mixing time — small datasets",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				curves, err := Figure1Context(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: curves,
					render: func() string {
						return RenderBoundCurves("Figure 1: lower bound of the mixing time — small datasets", curves)
					},
					csv: func(w io.Writer) error { return BoundCurvesCSV(w, curves) }}, nil
			}},
		{ID: "F2", Name: "fig2",
			Title: "Figure 2: lower bound of the mixing time — large datasets",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				curves, err := Figure2Context(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: curves,
					render: func() string {
						return RenderBoundCurves("Figure 2: lower bound of the mixing time — large datasets", curves)
					},
					csv: func(w io.Writer) error { return BoundCurvesCSV(w, curves) }}, nil
			}},
		{ID: "F3", Name: "fig3",
			Title: "Figure 3: CDF of variation distance, short walks, physics graphs",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := Figure3Context(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string {
						return RenderCDFGroups("Figure 3", rows, []string{"physics-1", "physics-2", "physics-3"})
					},
					csv: func(w io.Writer) error { return DistanceCDFsCSV(w, rows) }}, nil
			}},
		{ID: "F4", Name: "fig4",
			Title: "Figure 4: CDF of variation distance, long walks, physics graphs",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := Figure4Context(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string {
						return RenderCDFGroups("Figure 4", rows, []string{"physics-2", "physics-3"})
					},
					csv: func(w io.Writer) error { return DistanceCDFsCSV(w, rows) }}, nil
			}},
		{ID: "F5", Name: "fig5",
			Title: "Figure 5: lower bound vs sampled mixing, physics graphs",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				curves, err := Figure5Context(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: curves,
					render: func() string {
						var b strings.Builder
						for _, c := range curves {
							b.WriteString(RenderFig5(c))
							b.WriteByte('\n')
						}
						return b.String()
					},
					csv: func(w io.Writer) error { return Fig5CSV(w, curves) }}, nil
			}},
		{ID: "F6", Name: "fig6",
			Title: "Figure 6: effect of degree-trimming on DBLP",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := Figure6Context(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderFig6(rows) },
					csv:    func(w io.Writer) error { return Fig6CSV(w, rows) }}, nil
			}},
		{ID: "F7", Name: "fig7",
			Title: "Figure 7: sampling vs lower bound on BFS samples of the large graphs",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				panels, err := Figure7Context(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: panels,
					render: func() string {
						var b strings.Builder
						for _, p := range panels {
							b.WriteString(RenderFig7Panel(p))
							b.WriteByte('\n')
						}
						return b.String()
					},
					csv: func(w io.Writer) error { return Fig7CSV(w, panels) }}, nil
			}},
		{ID: "F8", Name: "fig8",
			Title: "Figure 8: SybilLimit admission rate vs random walk length",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				curves, err := Figure8Context(ctx, Fig8Config{Config: cfg}, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: curves,
					render: func() string { return RenderFig8(curves) },
					csv:    func(w io.Writer) error { return Fig8CSV(w, curves) }}, nil
			}},
		{ID: "X1", Name: "attack",
			Title: "SybilLimit under attack: honest admission vs tail escapes",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := SybilAttackContext(ctx, SybilAttackConfig{Config: cfg}, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderSybilAttack(rows) },
					csv:    func(w io.Writer) error { return SybilAttackCSV(w, rows) }}, nil
			}},
		{ID: "X2", Name: "conductance",
			Title: "Conductance: Cheeger bounds and spectral sweep cuts",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := ConductanceContext(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderConductance(rows) },
					csv:    func(w io.Writer) error { return ConductanceCSV(w, rows) }}, nil
			}},
		{ID: "X3", Name: "whanau",
			Title: "Whānau check: walk-tail edge distributions vs uniform",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := WhanauContext(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderWhanau(rows) },
					csv:    func(w io.Writer) error { return WhanauCSV(w, rows) }}, nil
			}},
		{ID: "X4", Name: "trust",
			Title: "Trust-modulated walks: mixing cost of trust models",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := TrustModelsContext(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderTrust(rows) },
					csv:    func(w io.Writer) error { return TrustCSV(w, rows) }}, nil
			}},
		{ID: "X5", Name: "detection",
			Title: "SybilInfer detection vs trace walk length",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := DetectionContext(ctx, DetectionConfig{Config: cfg}, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderDetection(rows) },
					csv:    func(w io.Writer) error { return DetectionCSV(w, rows) }}, nil
			}},
		{ID: "X6", Name: "defenses",
			Title: "Defense comparison: ranking AUC under one attack",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := DefenseComparisonContext(ctx, DefenseComparisonConfig{Config: cfg}, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderDefenseComparison(rows) },
					csv:    func(w io.Writer) error { return DefenseComparisonCSV(w, rows) }}, nil
			}},
		{ID: "D1", Name: "distmix",
			Title: "Distributed estimates vs exact mixing time on every dataset",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := DistMixValidationContext(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderDistMix(rows) },
					csv:    func(w io.Writer) error { return DistMixCSV(w, rows) }}, nil
			}},
		{ID: "D2", Name: "distmix-tradeoff",
			Title: "Distributed estimation: accuracy vs communication sweep",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := DistMixTradeoffContext(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderDistMixTradeoff(rows) },
					csv:    func(w io.Writer) error { return DistMixTradeoffCSV(w, rows) }}, nil
			}},
		{ID: "X7", Name: "whanau-lookup",
			Title: "Whānau lookup success vs table-building walk length",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := WhanauLookupContext(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderWhanauLookup(rows) },
					csv:    func(w io.Writer) error { return WhanauLookupCSV(w, rows) }}, nil
			}},
		{ID: "E1", Name: "evolve-growth",
			Title: "Mixing-rate evolution under edge accretion: warm vs cold spectral starts",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := EvolveGrowthContext(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderEvolveGrowth(rows) },
					csv:    func(w io.Writer) error { return EvolveGrowthCSV(w, rows) }}, nil
			}},
		{ID: "E2", Name: "evolve-attack",
			Title: "Mixing-time degradation as Sybil attack edges accrete",
			Run: func(ctx context.Context, cfg Config, obs runner.Observer) (runner.Result, error) {
				rows, err := EvolveAttackContext(ctx, cfg, obs)
				if err != nil {
					return nil, err
				}
				return &artifact{rows: rows,
					render: func() string { return RenderEvolveAttack(rows) },
					csv:    func(w io.Writer) error { return EvolveAttackCSV(w, rows) }}, nil
			}},
	}
	for _, d := range reg {
		d.Run = stampArtifact(d)
		runner.MustRegister(d)
	}
}
