package experiments

import (
	"fmt"

	"mixtime/internal/datasets"
	"mixtime/internal/spectral"
	"mixtime/internal/textplot"
)

// BoundCurve is one dataset's Sinclair lower-bound curve: the walk
// length T required (per the SLEM bound) to reach each variation
// distance ε — the content of Figures 1 and 2.
type BoundCurve struct {
	Dataset string
	Mu      float64
	Eps     []float64
	T       []float64
}

// boundCurves measures the given datasets and derives their bound
// curves.
func boundCurves(ds []datasets.Dataset, cfg Config) ([]BoundCurve, error) {
	cfg = cfg.withDefaults()
	grid := epsGrid()
	var out []BoundCurve
	for _, d := range ds {
		g := d.Generate(cfg.Scale, cfg.Seed)
		est, err := spectral.SLEM(g, spectral.Options{Tol: cfg.SpectralTol, Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		c := BoundCurve{Dataset: d.Name, Mu: est.Mu, Eps: grid, T: make([]float64, len(grid))}
		for i, eps := range grid {
			c.T[i] = spectral.MixingLowerBound(est.Mu, eps)
		}
		out = append(out, c)
	}
	return out, nil
}

// Figure1 computes the lower-bound mixing-time curves for the small
// datasets (wiki-vote, Slashdot 1/2, Facebook, Physics 1–3, Enron,
// Epinion).
func Figure1(cfg Config) ([]BoundCurve, error) {
	return boundCurves(datasets.Small(), cfg)
}

// Figure2 computes the curves for the large datasets (DBLP,
// Facebook A/B, Livejournal A/B, Youtube).
func Figure2(cfg Config) ([]BoundCurve, error) {
	return boundCurves(datasets.Large(), cfg)
}

// RenderBoundCurves draws the curves as an ASCII chart, ε (log)
// against the bound walk length, mirroring the paper's axes.
func RenderBoundCurves(title string, curves []BoundCurve) string {
	series := make([]textplot.Series, len(curves))
	for i, c := range curves {
		series[i] = textplot.Series{
			Name: fmt.Sprintf("%s (µ=%.4f)", c.Dataset, c.Mu),
			X:    c.T,
			Y:    c.Eps,
		}
	}
	return textplot.Chart(textplot.Options{
		Title:  title,
		XLabel: "lower bound of mixing time (walk length)",
		YLabel: "ε",
		LogY:   true,
	}, series...)
}
