package experiments

import (
	"context"
	"fmt"

	"mixtime/internal/datasets"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/textplot"
)

// BoundCurve is one dataset's Sinclair lower-bound curve: the walk
// length T required (per the SLEM bound) to reach each variation
// distance ε — the content of Figures 1 and 2.
type BoundCurve struct {
	Dataset string
	Mu      float64
	Eps     []float64
	T       []float64
}

// boundCurves measures the given datasets and derives their bound
// curves, checking ctx between datasets and reporting each finished
// one to obs.
func boundCurves(ctx context.Context, ds []datasets.Dataset, cfg Config, obs runner.Observer) ([]BoundCurve, error) {
	cfg = cfg.WithDefaults()
	grid := epsGrid()
	var out []BoundCurve
	for i, d := range ds {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: bound curves cancelled before %s: %w", d.Name, err)
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		est, err := spectral.SLEMContext(ctx, g, spectral.Options{
			Tol: cfg.SpectralTol, Seed: cfg.Seed, Workers: cfg.Workers,
			Collector: cfg.Collector})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		c := BoundCurve{Dataset: d.Name, Mu: est.Mu, Eps: grid, T: make([]float64, len(grid))}
		for i, eps := range grid {
			c.T[i] = spectral.MixingLowerBound(est.Mu, eps)
		}
		out = append(out, c)
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: d.Name,
			Stage: "spectral", Done: i + 1, Total: len(ds), Iterations: est.Iterations})
	}
	return out, nil
}

// Figure1 computes the lower-bound mixing-time curves for the small
// datasets (wiki-vote, Slashdot 1/2, Facebook, Physics 1–3, Enron,
// Epinion).
func Figure1(cfg Config) ([]BoundCurve, error) {
	return Figure1Context(context.Background(), cfg, nil)
}

// Figure1Context is Figure1 with cancellation and progress.
func Figure1Context(ctx context.Context, cfg Config, obs runner.Observer) ([]BoundCurve, error) {
	return boundCurves(ctx, datasets.Small(), cfg, obs)
}

// Figure2 computes the curves for the large datasets (DBLP,
// Facebook A/B, Livejournal A/B, Youtube).
func Figure2(cfg Config) ([]BoundCurve, error) {
	return Figure2Context(context.Background(), cfg, nil)
}

// Figure2Context is Figure2 with cancellation and progress.
func Figure2Context(ctx context.Context, cfg Config, obs runner.Observer) ([]BoundCurve, error) {
	return boundCurves(ctx, datasets.Large(), cfg, obs)
}

// RenderBoundCurves draws the curves as an ASCII chart, ε (log)
// against the bound walk length, mirroring the paper's axes.
func RenderBoundCurves(title string, curves []BoundCurve) string {
	series := make([]textplot.Series, len(curves))
	for i, c := range curves {
		series[i] = textplot.Series{
			Name: fmt.Sprintf("%s (µ=%.4f)", c.Dataset, c.Mu),
			X:    c.T,
			Y:    c.Eps,
		}
	}
	return textplot.Chart(textplot.Options{
		Title:  title,
		XLabel: "lower bound of mixing time (walk length)",
		YLabel: "ε",
		LogY:   true,
	}, series...)
}
