package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"
	"strconv"

	"mixtime/internal/api"
	"mixtime/internal/datasets"
	"mixtime/internal/distmix"
	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/textplot"
)

// d1MaxSources caps the per-dataset source sample of the distributed
// cross-validation: every source costs a full walker flood plus an
// exact propagation reference, so D1 trades source coverage for
// dataset coverage (all fifteen Table-1 graphs). The cap keeps the
// default-scale run in paperfigs territory; raise cfg.Sources below
// the cap to shrink it further.
const d1MaxSources = 8

// DistMixRow is one dataset of experiment D1: the distributed
// walk-distribution estimate beside the exact propagated τ(ε) on the
// same source set, with the communication bill that bought it.
type DistMixRow struct {
	Dataset string        `json:"dataset"`
	Kind    datasets.Kind `json:"kind"`
	Nodes   int           `json:"nodes"`
	Edges   int64         `json:"edges"`
	// Mu is the exact SLEM (the paper's spectral measurement) for
	// reference against both mixing times.
	Mu      float64 `json:"mu"`
	Sources int     `json:"sources"`
	Walks   int     `json:"walks_per_node"`
	Shards  int     `json:"shards"`
	// TauExact is Definition 1 applied to exact propagation over the
	// same sources; TauEst is the distributed estimate. Incomplete
	// values are lower bounds at the walk cap.
	TauExact      int     `json:"tau_exact"`
	ExactComplete bool    `json:"exact_complete"`
	TauEst        int     `json:"tau_est"`
	EstComplete   bool    `json:"est_complete"`
	LocalTau      int     `json:"local_tau"`
	RelErr        float64 `json:"rel_err"`
	// Communication accounting of the estimate (totaled over sources).
	Rounds           int   `json:"rounds"`
	Messages         int64 `json:"messages"`
	OffShardMessages int64 `json:"offshard_messages"`
	OffShardBytes    int64 `json:"offshard_bytes"`
}

// distMixSources draws the source set both the estimator and the
// exact reference measure — the derivation core.MeasureContext uses,
// truncated to the D1 budget.
func distMixSources(g *graph.Graph, cfg Config) []graph.NodeID {
	k := cfg.Sources
	if k > d1MaxSources {
		k = d1MaxSources
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xc0fe))
	return markov.SampleSources(g, k, rng)
}

// exactTau propagates the exact distribution from every source on the
// comparison chain (lazy iff bipartite, like every other measurement)
// and applies Definition 1. Incomplete sources contribute the walk cap
// as a lower bound, mirroring markov.MixingTime.
func exactTau(ctx context.Context, g *graph.Graph, sources []graph.NodeID, eps float64, cfg Config) (int, bool, error) {
	var opts []markov.Option
	if graph.IsBipartite(g) {
		opts = append(opts, markov.Lazy())
	}
	if cfg.Collector != nil {
		opts = append(opts, markov.WithCollector(cfg.Collector))
	}
	chain, err := markov.New(g, opts...)
	if err != nil {
		return 0, false, err
	}
	tau, complete := 0, true
	for _, s := range sources {
		if err := ctx.Err(); err != nil {
			return 0, false, err
		}
		tr, ok := chain.TraceUntil(s, eps, cfg.MaxWalk)
		t := len(tr.TV)
		if ok {
			t, _ = tr.MixingTime(eps)
		} else {
			complete = false
		}
		if t > tau {
			tau = t
		}
	}
	return tau, complete, nil
}

func relErr(est, exact int) float64 {
	if exact == 0 {
		return 0
	}
	d := float64(est - exact)
	if d < 0 {
		d = -d
	}
	return d / float64(exact)
}

// DistMixValidation is experiment D1 without cancellation/progress.
func DistMixValidation(cfg Config) ([]DistMixRow, error) {
	return DistMixValidationContext(context.Background(), cfg, nil)
}

// DistMixValidationContext is experiment D1: on every Table-1 dataset,
// run the simulated distributed estimator (walker floods over
// ShardPlan partitions) and the exact propagated reference on the same
// sampled sources, and report both mixing times, their relative error,
// and the communication cost of the distributed answer. DESIGN.md §11
// documents the tolerance the relative-error column is held to.
func DistMixValidationContext(ctx context.Context, cfg Config, obs runner.Observer) ([]DistMixRow, error) {
	cfg = cfg.WithDefaults()
	eps := api.DefaultEps
	all := datasets.All()
	var rows []DistMixRow
	for i, d := range all {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: distmix cancelled before %s: %w", d.Name, err)
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		est, err := spectral.SLEMContext(ctx, g, spectral.Options{
			Tol: cfg.SpectralTol, Seed: cfg.Seed, Workers: cfg.Workers,
			Collector: cfg.Collector})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		sources := distMixSources(g, cfg)
		texact, exactOK, err := exactTau(ctx, g, sources, eps, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		res, err := distmix.EstimateMixingTime(ctx, g, distmix.Options{
			Shards:       api.DefaultDistShards,
			WalksPerNode: api.DefaultDistWalks,
			MaxRounds:    cfg.MaxWalk,
			Eps:          eps,
			SourceList:   sources,
			Seed:         cfg.Seed,
			Collector:    cfg.Collector,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		rows = append(rows, DistMixRow{
			Dataset:          d.Name,
			Kind:             d.Kind,
			Nodes:            g.NumNodes(),
			Edges:            g.NumEdges(),
			Mu:               est.Mu,
			Sources:          len(sources),
			Walks:            res.WalksPerNode,
			Shards:           res.Shards,
			TauExact:         texact,
			ExactComplete:    exactOK,
			TauEst:           res.Tau,
			EstComplete:      res.Complete,
			LocalTau:         res.LocalTau,
			RelErr:           relErr(res.Tau, texact),
			Rounds:           res.Stats.Rounds,
			Messages:         res.Stats.Messages,
			OffShardMessages: res.Stats.OffShardMessages,
			OffShardBytes:    res.Stats.OffShardBytes,
		})
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: d.Name,
			Stage: "distmix", Done: i + 1, Total: len(all), Iterations: res.Stats.Rounds})
	}
	return rows, nil
}

// RenderDistMix formats the D1 cross-validation table.
func RenderDistMix(rows []DistMixRow) string {
	header := []string{"dataset", "n", "µ", "τ exact", "τ̂ dist", "ζ̂ local", "rel err", "rounds", "msgs", "off-shard"}
	var cells [][]string
	for _, r := range rows {
		te := strconv.Itoa(r.TauExact)
		if !r.ExactComplete {
			te = ">" + te
		}
		td := strconv.Itoa(r.TauEst)
		if !r.EstComplete {
			td = ">" + td
		}
		cells = append(cells, []string{
			r.Dataset, strconv.Itoa(r.Nodes), fmt.Sprintf("%.4f", r.Mu),
			te, td, strconv.Itoa(r.LocalTau), fmt.Sprintf("%.2f", r.RelErr),
			strconv.Itoa(r.Rounds), strconv.FormatInt(r.Messages, 10),
			strconv.FormatInt(r.OffShardMessages, 10),
		})
	}
	return "D1: distributed walk estimates vs exact propagation (every Table-1 dataset)\n" +
		textplot.Table(header, cells)
}

// DistMixCSV writes the D1 rows.
func DistMixCSV(w io.Writer, rows []DistMixRow) error {
	header := []string{"dataset", "kind", "nodes", "edges", "mu", "sources", "walks_per_node",
		"shards", "tau_exact", "exact_complete", "tau_est", "est_complete", "local_tau",
		"rel_err", "rounds", "messages", "offshard_messages", "offshard_bytes"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, string(r.Kind), d(r.Nodes), strconv.FormatInt(r.Edges, 10), f(r.Mu),
			d(r.Sources), d(r.Walks), d(r.Shards), d(r.TauExact),
			strconv.FormatBool(r.ExactComplete), d(r.TauEst),
			strconv.FormatBool(r.EstComplete), d(r.LocalTau), f(r.RelErr), d(r.Rounds),
			strconv.FormatInt(r.Messages, 10), strconv.FormatInt(r.OffShardMessages, 10),
			strconv.FormatInt(r.OffShardBytes, 10),
		})
	}
	return writeCSV(w, header, out)
}

// d2Datasets are the tradeoff sweep's graphs: one slow mixer (the
// paper's hardest small graph) and one fast online graph, so the
// sweep shows both regimes.
var d2Datasets = []string{"physics-1", "wiki-vote"}

// TradeoffRow is one configuration of experiment D2: accuracy and
// communication cost of the distributed estimate as walker count,
// shard count, and the round budget move.
type TradeoffRow struct {
	Dataset string `json:"dataset"`
	Nodes   int    `json:"nodes"`
	Walks   int    `json:"walks_per_node"`
	Shards  int    `json:"shards"`
	// MaxRounds is the superstep budget of this configuration.
	MaxRounds   int     `json:"max_rounds"`
	TauExact    int     `json:"tau_exact"`
	TauEst      int     `json:"tau_est"`
	EstComplete bool    `json:"est_complete"`
	RelErr      float64 `json:"rel_err"`
	// NoiseFloor shows why accuracy moves with the walker count.
	NoiseFloor       float64 `json:"noise_floor"`
	Rounds           int     `json:"rounds"`
	Messages         int64   `json:"messages"`
	OffShardMessages int64   `json:"offshard_messages"`
	OffShardBytes    int64   `json:"offshard_bytes"`
}

// DistMixTradeoff is experiment D2 without cancellation/progress.
func DistMixTradeoff(cfg Config) ([]TradeoffRow, error) {
	return DistMixTradeoffContext(context.Background(), cfg, nil)
}

// DistMixTradeoffContext is experiment D2: sweep the distributed
// estimator's walker count and shard count (and a truncated round
// budget) on a slow and a fast mixer, reporting accuracy against the
// exact answer beside the message bill. The shard axis moves only the
// off-shard traffic — never the estimate — which the rows exhibit
// directly; the walker axis trades messages for noise floor.
func DistMixTradeoffContext(ctx context.Context, cfg Config, obs runner.Observer) ([]TradeoffRow, error) {
	cfg = cfg.WithDefaults()
	eps := api.DefaultEps
	walksSweep := []int{4, 16, 64}
	shardSweep := []int{2, 8, 32}
	var rows []TradeoffRow
	for i, name := range d2Datasets {
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, fmt.Errorf("experiments: distmix tradeoff: %w", err)
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		sources := distMixSources(g, cfg)
		texact, _, err := exactTau(ctx, g, sources, eps, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		run := func(walks, shards, maxRounds int) error {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("experiments: distmix tradeoff cancelled at %s: %w", name, err)
			}
			res, err := distmix.EstimateMixingTime(ctx, g, distmix.Options{
				Shards:       shards,
				WalksPerNode: walks,
				MaxRounds:    maxRounds,
				Eps:          eps,
				SourceList:   sources,
				Seed:         cfg.Seed,
				Collector:    cfg.Collector,
			})
			if err != nil {
				return fmt.Errorf("experiments: %s: %w", name, err)
			}
			rows = append(rows, TradeoffRow{
				Dataset:          name,
				Nodes:            g.NumNodes(),
				Walks:            walks,
				Shards:           res.Shards,
				MaxRounds:        maxRounds,
				TauExact:         texact,
				TauEst:           res.Tau,
				EstComplete:      res.Complete,
				RelErr:           relErr(res.Tau, texact),
				NoiseFloor:       res.NoiseFloor,
				Rounds:           res.Stats.Rounds,
				Messages:         res.Stats.Messages,
				OffShardMessages: res.Stats.OffShardMessages,
				OffShardBytes:    res.Stats.OffShardBytes,
			})
			return nil
		}
		for _, walks := range walksSweep {
			for _, shards := range shardSweep {
				if err := run(walks, shards, cfg.MaxWalk); err != nil {
					return nil, err
				}
			}
		}
		// The truncation axis: a round budget below τ turns the estimate
		// into a visible lower bound.
		for _, budget := range []int{cfg.MaxWalk / 8, cfg.MaxWalk / 2} {
			if budget < 1 {
				budget = 1
			}
			if err := run(api.DefaultDistWalks, api.DefaultDistShards, budget); err != nil {
				return nil, err
			}
		}
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Stage: "distmix", Done: i + 1, Total: len(d2Datasets)})
	}
	return rows, nil
}

// RenderDistMixTradeoff formats the D2 sweep.
func RenderDistMixTradeoff(rows []TradeoffRow) string {
	header := []string{"dataset", "walks/node", "shards", "budget", "τ exact", "τ̂", "rel err", "floor", "msgs", "off-shard"}
	var cells [][]string
	for _, r := range rows {
		td := strconv.Itoa(r.TauEst)
		if !r.EstComplete {
			td = ">" + td
		}
		cells = append(cells, []string{
			r.Dataset, strconv.Itoa(r.Walks), strconv.Itoa(r.Shards),
			strconv.Itoa(r.MaxRounds), strconv.Itoa(r.TauExact), td,
			fmt.Sprintf("%.2f", r.RelErr), fmt.Sprintf("%.3f", r.NoiseFloor),
			strconv.FormatInt(r.Messages, 10), strconv.FormatInt(r.OffShardMessages, 10),
		})
	}
	return "D2: accuracy vs communication — walker, shard and round-budget sweep\n" +
		textplot.Table(header, cells)
}

// DistMixTradeoffCSV writes the D2 rows.
func DistMixTradeoffCSV(w io.Writer, rows []TradeoffRow) error {
	header := []string{"dataset", "nodes", "walks_per_node", "shards", "max_rounds",
		"tau_exact", "tau_est", "est_complete", "rel_err", "noise_floor", "rounds",
		"messages", "offshard_messages", "offshard_bytes"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Dataset, d(r.Nodes), d(r.Walks), d(r.Shards), d(r.MaxRounds),
			d(r.TauExact), d(r.TauEst), strconv.FormatBool(r.EstComplete),
			f(r.RelErr), f(r.NoiseFloor), d(r.Rounds),
			strconv.FormatInt(r.Messages, 10), strconv.FormatInt(r.OffShardMessages, 10),
			strconv.FormatInt(r.OffShardBytes, 10),
		})
	}
	return writeCSV(w, header, out)
}
