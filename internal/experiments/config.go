// Package experiments contains one driver per table and figure of the
// paper's evaluation, each returning typed rows that cmd/paperfigs
// renders and bench_test.go wraps as benchmarks. Every driver accepts
// the same Config so the whole evaluation scales from a quick smoke
// run to (hardware permitting) the paper's full sizes.
package experiments

import "math"

// Config scales and seeds an experiment run.
type Config struct {
	// Scale multiplies every dataset's node count (default 0.01: the
	// million-node graphs become 10k — the paper's measurements used
	// a cluster; see EXPERIMENTS.md for the recorded scale per run).
	Scale float64
	// Seed makes runs deterministic (default 1).
	Seed uint64
	// Sources is the number of start vertices for direct
	// measurements (default 200; the paper uses 1000 on large graphs
	// and all vertices on the physics graphs).
	Sources int
	// MaxWalk caps propagated walk lengths (default 500, the paper's
	// longest probe).
	MaxWalk int
	// SpectralTol is the SLEM tolerance (default 1e-7).
	SpectralTol float64
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.01
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Sources <= 0 {
		c.Sources = 200
	}
	if c.MaxWalk <= 0 {
		c.MaxWalk = 500
	}
	if c.SpectralTol <= 0 {
		c.SpectralTol = 1e-7
	}
	return c
}

// epsGrid is the variation-distance grid the bound figures sweep,
// from 0.25 down to 1e-4 (the paper's axes).
func epsGrid() []float64 {
	const k = 13
	out := make([]float64, k)
	hi, lo := 0.25, 1e-4
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = hi * math.Exp(-ratio*float64(i)/float64(k-1))
	}
	return out
}

// probeWalksShort are Figure 3's walk lengths, probeWalksLong
// Figure 4's.
var (
	probeWalksShort = []int{1, 5, 10, 20, 40}
	probeWalksLong  = []int{80, 100, 200, 300, 400, 500}
)
