// Package experiments contains one driver per table and figure of the
// paper's evaluation, each returning typed rows that cmd/paperfigs
// renders and bench_test.go wraps as benchmarks. Every driver accepts
// the same Config so the whole evaluation scales from a quick smoke
// run to (hardware permitting) the paper's full sizes.
//
// Each artifact also registers (in registry.go) into the
// internal/runner registry under its DESIGN.md §5 ID behind the
// uniform Run(ctx, cfg, obs) contract; cmd/paperfigs schedules the
// registered experiments instead of calling the drivers directly.
package experiments

import (
	"math"

	"mixtime/internal/runner"
)

// Config scales and seeds an experiment run. It is an alias for
// runner.Config — the canonical definition lives there so the runner,
// the drivers and core share one set of defaults (see
// runner.DefaultScale and friends).
type Config = runner.Config

// epsGrid is the variation-distance grid the bound figures sweep,
// from 0.25 down to 1e-4 (the paper's axes).
func epsGrid() []float64 {
	const k = 13
	out := make([]float64, k)
	hi, lo := 0.25, 1e-4
	ratio := math.Log(hi / lo)
	for i := range out {
		out[i] = hi * math.Exp(-ratio*float64(i)/float64(k-1))
	}
	return out
}

// probeWalksShort are Figure 3's walk lengths, probeWalksLong
// Figure 4's.
var (
	probeWalksShort = []int{1, 5, 10, 20, 40}
	probeWalksLong  = []int{80, 100, 200, 300, 400, 500}
)
