package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"mixtime/internal/datasets"
	"mixtime/internal/graph"
	"mixtime/internal/runner"
	"mixtime/internal/sybil"
	"mixtime/internal/textplot"
)

// fig8Walks is the walk-length sweep for the SybilLimit experiment.
var fig8Walks = []int{1, 2, 3, 4, 6, 8, 10, 15, 20, 30}

// Fig8Curve is one dataset's SybilLimit admission curve: the fraction
// of honest nodes a trusted verifier admits at each walk length w,
// with no attacker present (SybilLimit bounds sybil admissions by
// attack edges, so the no-attacker run isolates the utility cost of
// slow mixing — the paper's point).
type Fig8Curve struct {
	Dataset string
	Nodes   int
	Edges   int64
	R       int
	W       []int
	Accept  []float64
}

// Fig8Config extends the shared Config with the protocol knobs.
type Fig8Config struct {
	Config
	// Nodes caps each graph via BFS sampling (default 2000; the
	// paper uses 10,000-node samples).
	Nodes int
	// R0 is SybilLimit's route-count multiplier (default 3 here for
	// runtime; the SybilLimit paper suggests 4).
	R0 float64
	// Walks overrides the walk-length sweep.
	Walks []int
}

func (c Fig8Config) withDefaults() Fig8Config {
	c.Config = c.Config.WithDefaults()
	if c.Nodes <= 0 {
		c.Nodes = 2000
	}
	if c.R0 <= 0 {
		c.R0 = 3
	}
	if len(c.Walks) == 0 {
		c.Walks = fig8Walks
	}
	return c
}

// fig8Datasets mirror the paper: the three physics graphs plus
// 10K-node samples of Facebook A and Slashdot 1.
var fig8Datasets = []string{"physics-1", "physics-2", "physics-3", "facebook-A", "slashdot-1"}

// Figure8 reproduces the SybilLimit admission experiment.
func Figure8(cfg Fig8Config) ([]Fig8Curve, error) {
	return Figure8Context(context.Background(), cfg, nil)
}

// Figure8Context is Figure8 with cancellation and progress: ctx is
// checked per dataset and per walk length, and each finished dataset
// reports as a KindDatasetDone.
func Figure8Context(ctx context.Context, cfg Fig8Config, obs runner.Observer) ([]Fig8Curve, error) {
	cfg = cfg.withDefaults()
	var curves []Fig8Curve
	for i, name := range fig8Datasets {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: figure8 cancelled before %s: %w", name, err)
		}
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		if g.NumNodes() > cfg.Nodes {
			rng := rand.New(rand.NewPCG(cfg.Seed, 0xf8))
			sub, _ := graph.BFSSubgraph(g, graph.NodeID(rng.IntN(g.NumNodes())), cfg.Nodes)
			g, _ = graph.LargestComponent(sub)
		}
		curve := Fig8Curve{Dataset: name, Nodes: g.NumNodes(), Edges: g.NumEdges(), W: cfg.Walks}
		verifier := graph.NodeID(0)
		suspects := sybil.AllHonest(g, verifier)
		for _, w := range cfg.Walks {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: figure8 cancelled at %s w=%d: %w", name, w, err)
			}
			p, err := sybil.NewProtocol(g, sybil.Config{
				W:    w,
				R0:   cfg.R0,
				Seed: cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s w=%d: %w", name, w, err)
			}
			res := p.Verify(verifier, suspects)
			curve.R = res.R
			curve.Accept = append(curve.Accept, res.AcceptRate())
		}
		curves = append(curves, curve)
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Done: i + 1, Total: len(fig8Datasets)})
	}
	return curves, nil
}

// RenderFig8 draws the admission-rate chart.
func RenderFig8(curves []Fig8Curve) string {
	var series []textplot.Series
	for _, c := range curves {
		xs := make([]float64, len(c.W))
		ys := make([]float64, len(c.W))
		for i, w := range c.W {
			xs[i] = float64(w)
			ys[i] = 100 * c.Accept[i]
		}
		series = append(series, textplot.Series{
			Name: fmt.Sprintf("%s (n=%d, r=%d)", c.Dataset, c.Nodes, c.R),
			X:    xs,
			Y:    ys,
		})
	}
	return textplot.Chart(textplot.Options{
		Title:  "Figure 8: SybilLimit admission rate vs random walk length",
		XLabel: "random walk length w",
		YLabel: "accepted %",
	}, series...)
}
