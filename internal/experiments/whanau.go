package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"mixtime/internal/datasets"
	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/runner"
	"mixtime/internal/stats"
	"mixtime/internal/textplot"
)

// WhanauRow evaluates the evidence Whānau [12] offered for fast
// mixing: after a walk of length w, how close is the distribution of
// the walk's tail edge to uniform over the 2m directed edges? The
// paper's §2 argues the published convergence was loose (LiveJournal
// far from uniform at w=80) and that the tail distributions were
// never related to the stationary distribution in variation distance;
// this experiment computes those distances exactly: the tail-edge
// distribution from source s is q(u→v) = p_{w−1}(u)/deg(u), so its
// TV distance to uniform and its separation distance follow from the
// node distribution in O(n).
type WhanauRow struct {
	Dataset string
	W       int
	// MeanEdgeTV / MaxEdgeTV: total variation distance between the
	// tail-edge distribution and uniform over directed edges,
	// averaged / maximized over sources.
	MeanEdgeTV, MaxEdgeTV float64
	// MeanSeparation is the separation distance max_e(1 − q(e)·2m)
	// averaged over sources — the metric [12] actually used.
	MeanSeparation float64
}

// whanauWalks are the probe lengths, bracketing the w≈80 Whānau
// reports.
var whanauWalks = []int{10, 20, 40, 80, 160, 320}

// whanauDatasets: a fast online graph and the slow graphs the paper
// calls out.
var whanauDatasets = []string{"facebook", "physics-1", "livejournal-A"}

// Whanau runs the tail-distribution experiment.
func Whanau(cfg Config) ([]WhanauRow, error) {
	return WhanauContext(context.Background(), cfg, nil)
}

// WhanauContext is Whanau with cancellation and progress: ctx is
// checked per source inside the propagation loop (each source costs
// maxW steps) and each finished dataset reports as a KindDatasetDone.
func WhanauContext(ctx context.Context, cfg Config, obs runner.Observer) ([]WhanauRow, error) {
	cfg = cfg.WithDefaults()
	var rows []WhanauRow
	for di, name := range whanauDatasets {
		d, err := datasets.ByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		chain, err := markov.New(g, markov.WithCollector(cfg.Collector))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", name, err)
		}
		rng := rand.New(rand.NewPCG(cfg.Seed, 0x77a0))
		sources := markov.SampleSources(g, min(cfg.Sources, 100), rng)

		maxW := whanauWalks[len(whanauWalks)-1]
		// For each source propagate once, reading tail metrics at the
		// probe lengths.
		type acc struct {
			tv  []float64
			sep []float64
		}
		perW := make(map[int]*acc, len(whanauWalks))
		for _, w := range whanauWalks {
			perW[w] = &acc{}
		}
		n := g.NumNodes()
		p := make([]float64, n)
		q := make([]float64, n)
		scratch := make([]float64, n)
		for si, s := range sources {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("experiments: whanau cancelled at %s source %d: %w", name, si, err)
			}
			for i := range p {
				p[i] = 0
			}
			p[s] = 1
			for t := 1; t <= maxW; t++ {
				// After this step, p is the node distribution at t−1
				// steps... propagate then read: tail of a length-t walk
				// uses the node distribution after t−1 steps.
				if t > 1 {
					chain.Step(q, p, scratch)
					p, q = q, p
				}
				if a, ok := perW[t]; ok {
					tv, sep := tailEdgeDistances(g, p)
					a.tv = append(a.tv, tv)
					a.sep = append(a.sep, sep)
				}
			}
		}
		for _, w := range whanauWalks {
			a := perW[w]
			sum := stats.Summarize(a.tv)
			rows = append(rows, WhanauRow{
				Dataset:        name,
				W:              w,
				MeanEdgeTV:     sum.Mean,
				MaxEdgeTV:      sum.Max,
				MeanSeparation: stats.Summarize(a.sep).Mean,
			})
		}
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: name,
			Done: di + 1, Total: len(whanauDatasets)})
	}
	return rows, nil
}

// tailEdgeDistances computes, from the node distribution p after w−1
// steps, the TV distance of the length-w tail-edge distribution to
// uniform over directed edges, and its separation distance.
func tailEdgeDistances(g *graph.Graph, p []float64) (tv, sep float64) {
	twoM := float64(2 * g.NumEdges())
	for v := 0; v < g.NumNodes(); v++ {
		deg := float64(g.Degree(graph.NodeID(v)))
		perEdge := p[v] / deg // probability of each of v's out tails
		diff := perEdge - 1/twoM
		if diff < 0 {
			tv -= deg * diff
		} else {
			tv += deg * diff
		}
		if s := 1 - perEdge*twoM; s > sep {
			sep = s
		}
	}
	return tv / 2, sep
}

// RenderWhanau formats the experiment as a table.
func RenderWhanau(rows []WhanauRow) string {
	header := []string{"dataset", "w", "mean edge-TV", "max edge-TV", "mean separation"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, fmt.Sprintf("%d", r.W),
			fmt.Sprintf("%.4f", r.MeanEdgeTV),
			fmt.Sprintf("%.4f", r.MaxEdgeTV),
			fmt.Sprintf("%.4f", r.MeanSeparation),
		})
	}
	return "Whānau check: distance of walk-tail edge distribution from uniform (paper §2)\n" +
		textplot.Table(header, cells)
}
