package experiments

import (
	"context"
	"fmt"
	"math/rand/v2"

	"mixtime/internal/datasets"
	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/textplot"
)

// Fig6Row is one trim level of the DBLP trimming experiment: "DBLP x"
// in the paper means minimum degree x after iterative removal of
// lower-degree nodes. The row carries both panels: (a) the SLEM
// lower-bound curve and (b) the average sampled distance per walk
// length.
type Fig6Row struct {
	Level int // minimum degree after trimming
	Nodes int
	Edges int64
	Mu    float64
	// Panel (a): bound walk length per ε of the shared grid.
	Eps    []float64
	BoundT []float64
	// Panel (b): mean sampled distance at each probe walk length.
	W      []int
	MeanTV []float64
}

// Figure6 reproduces the trimming experiment: generate the DBLP
// substitute, trim it to minimum degree 1..5, and measure each level
// both ways. The paper's headline: trimming sharply improves mixing
// but DBLP 5 keeps only ~24% of DBLP 1's nodes — utility traded for
// speed.
func Figure6(cfg Config) ([]Fig6Row, error) {
	return Figure6Context(context.Background(), cfg, nil)
}

// Figure6Context is Figure6 with cancellation and progress: ctx is
// checked between trim levels (and inside each level's SLEM and trace
// propagation), and each finished level reports as a KindDatasetDone.
func Figure6Context(ctx context.Context, cfg Config, obs runner.Observer) ([]Fig6Row, error) {
	cfg = cfg.WithDefaults()
	d, err := datasets.ByName("dblp")
	if err != nil {
		return nil, err
	}
	full := d.Generate(cfg.Scale, cfg.Seed)
	grid := epsGrid()
	walks := append(append([]int{}, probeWalksShort...), probeWalksLong...)

	var rows []Fig6Row
	for level := 1; level <= 5; level++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: figure6 cancelled before trim level %d: %w", level, err)
		}
		trimmed, _ := graph.Trim(full, level)
		lcc, _ := graph.LargestComponent(trimmed)
		if lcc.NumNodes() < 10 {
			return nil, fmt.Errorf("experiments: trim level %d leaves %d nodes at scale %v",
				level, lcc.NumNodes(), cfg.Scale)
		}
		est, err := spectral.SLEMContext(ctx, lcc, spectral.Options{
			Tol: cfg.SpectralTol, Seed: cfg.Seed, Workers: cfg.Workers,
			Collector: cfg.Collector})
		if err != nil {
			return nil, fmt.Errorf("experiments: dblp-%d: %w", level, err)
		}
		row := Fig6Row{
			Level: level,
			Nodes: lcc.NumNodes(),
			Edges: lcc.NumEdges(),
			Mu:    est.Mu,
			Eps:   grid,
			W:     walks,
		}
		for _, eps := range grid {
			row.BoundT = append(row.BoundT, spectral.MixingLowerBound(est.Mu, eps))
		}
		chain, err := markov.New(lcc, markov.WithCollector(cfg.Collector))
		if err != nil {
			return nil, fmt.Errorf("experiments: dblp-%d: %w", level, err)
		}
		rng := rand.New(rand.NewPCG(cfg.Seed, uint64(level)))
		sources := markov.SampleSources(lcc, cfg.Sources, rng)
		traces, err := chain.TraceSampleBlockedContext(ctx, sources, cfg.MaxWalk, cfg.BlockSize, cfg.Workers, nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: dblp-%d: %w", level, err)
		}
		row.MeanTV = traceMeanAtWalks(traces, walks)
		rows = append(rows, row)
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone,
			Dataset: fmt.Sprintf("dblp-%d", level), Done: level, Total: 5,
			Iterations: est.Iterations})
	}
	return rows, nil
}

// RenderFig6 draws both panels and the size table.
func RenderFig6(rows []Fig6Row) string {
	var boundSeries, meanSeries []textplot.Series
	var cells [][]string
	for _, r := range rows {
		name := fmt.Sprintf("DBLP %d", r.Level)
		boundSeries = append(boundSeries, textplot.Series{
			Name: name, X: r.BoundT, Y: r.Eps,
		})
		xs := make([]float64, len(r.W))
		for i, w := range r.W {
			xs[i] = float64(w)
		}
		meanSeries = append(meanSeries, textplot.Series{
			Name: name, X: xs, Y: r.MeanTV,
		})
		cells = append(cells, []string{
			name, fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.Edges),
			fmt.Sprintf("%.5f", r.Mu),
		})
	}
	out := textplot.Table([]string{"level", "nodes", "edges", "µ"}, cells)
	out += "\n" + textplot.Chart(textplot.Options{
		Title:  "Figure 6(a): lower bound vs trim level",
		XLabel: "lower bound of mixing time",
		YLabel: "ε",
		LogY:   true,
	}, boundSeries...)
	out += "\n" + textplot.Chart(textplot.Options{
		Title:  "Figure 6(b): average sampled distance vs trim level",
		XLabel: "walk length",
		YLabel: "mean ε",
		LogY:   true,
	}, meanSeries...)
	return out
}
