package experiments

import (
	"context"
	"fmt"

	"mixtime/internal/datasets"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/textplot"
)

// Table1Row reproduces one row of Table 1: the dataset, its paper
// metadata, and the measured properties of the synthetic substitute.
type Table1Row struct {
	Name       string
	Kind       datasets.Kind
	PaperNodes int
	PaperEdges int64
	PaperMu    float64
	// Nodes/Edges/Mu are measured on the substitute at the run scale.
	Nodes int
	Edges int64
	Mu    float64
	// Converged reports whether the SLEM estimate met tolerance.
	Converged bool
}

// Table1 regenerates Table 1 at the configured scale: every dataset
// substitute is generated, its largest component extracted, and its
// SLEM measured.
func Table1(cfg Config) ([]Table1Row, error) {
	return Table1Context(context.Background(), cfg, nil)
}

// Table1Context is Table1 with cancellation and progress: ctx is
// checked between datasets and threaded into each SLEM estimation,
// and obs receives one KindDatasetDone per dataset.
func Table1Context(ctx context.Context, cfg Config, obs runner.Observer) ([]Table1Row, error) {
	cfg = cfg.WithDefaults()
	all := datasets.All()
	var rows []Table1Row
	for i, d := range all {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: table1 cancelled before %s: %w", d.Name, err)
		}
		g := d.Generate(cfg.Scale, cfg.Seed)
		est, err := spectral.SLEMContext(ctx, g, spectral.Options{
			Tol: cfg.SpectralTol, Seed: cfg.Seed, Workers: cfg.Workers,
			Collector: cfg.Collector})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.Name, err)
		}
		rows = append(rows, Table1Row{
			Name:       d.Name,
			Kind:       d.Kind,
			PaperNodes: d.PaperNodes,
			PaperEdges: d.PaperEdges,
			PaperMu:    d.PaperMu,
			Nodes:      g.NumNodes(),
			Edges:      g.NumEdges(),
			Mu:         est.Mu,
			Converged:  est.Converged,
		})
		runner.Emit(obs, runner.Event{Kind: runner.KindDatasetDone, Dataset: d.Name,
			Stage: "spectral", Done: i + 1, Total: len(all), Iterations: est.Iterations})
	}
	return rows, nil
}

// RenderTable1 formats the rows like the paper's Table 1, paper
// columns beside measured ones.
func RenderTable1(rows []Table1Row) string {
	header := []string{"dataset", "kind", "paper n", "paper m", "paper µ", "n", "m", "µ"}
	var cells [][]string
	for _, r := range rows {
		mu := fmt.Sprintf("%.4f", r.Mu)
		if !r.Converged {
			mu += "*"
		}
		cells = append(cells, []string{
			r.Name, string(r.Kind),
			fmt.Sprintf("%d", r.PaperNodes), fmt.Sprintf("%d", r.PaperEdges),
			fmt.Sprintf("%.4f", r.PaperMu),
			fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.Edges), mu,
		})
	}
	return "Table 1: datasets, their properties and their second largest eigenvalues\n" +
		textplot.Table(header, cells)
}
