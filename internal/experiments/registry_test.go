package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"mixtime/internal/api"
	"mixtime/internal/runner"
)

// designIDs is the DESIGN.md §5 artifact inventory. The registry must
// carry exactly these, each once.
var designIDs = map[string]string{
	"T1": "table1",
	"F1": "fig1", "F2": "fig2", "F3": "fig3", "F4": "fig4",
	"F5": "fig5", "F6": "fig6", "F7": "fig7", "F8": "fig8",
	"X1": "attack", "X2": "conductance", "X3": "whanau", "X4": "trust",
	"X5": "detection", "X6": "defenses", "X7": "whanau-lookup",
	"D1": "distmix", "D2": "distmix-tradeoff",
	"E1": "evolve-growth", "E2": "evolve-attack",
}

func TestRegistryCompleteness(t *testing.T) {
	reg := runner.Default()
	ids := reg.IDs()
	if len(ids) != len(designIDs) {
		t.Fatalf("registry has %d experiments, want %d: %v", len(ids), len(designIDs), ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("ID %s registered more than once", id)
		}
		seen[id] = true
		legacy, ok := designIDs[id]
		if !ok {
			t.Errorf("ID %s is not in DESIGN.md §5", id)
			continue
		}
		byID, ok := reg.Resolve(id)
		if !ok {
			t.Errorf("Resolve(%s) failed", id)
			continue
		}
		byName, ok := reg.Resolve(legacy)
		if !ok {
			t.Errorf("legacy name %q does not resolve", legacy)
			continue
		}
		if byName.ID != byID.ID {
			t.Errorf("Resolve(%q).ID = %s, want %s", legacy, byName.ID, id)
		}
		if byID.Title == "" {
			t.Errorf("%s has no title", id)
		}
	}
	for id := range designIDs {
		if !seen[id] {
			t.Errorf("DESIGN.md §5 artifact %s is not registered", id)
		}
	}
}

// TestRegistryDeterminism checks the runner's core output guarantee:
// a parallel run renders byte-identically to a sequential one, because
// every experiment derives its randomness from Config.Seed alone.
func TestRegistryDeterminism(t *testing.T) {
	subset := []string{"T1", "X3"}
	render := func(jobs int) string {
		r := &runner.Runner{Jobs: jobs}
		report, err := r.Run(context.Background(), tiny, subset...)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, e := range report.Experiments {
			b.WriteString(e.ID)
			b.WriteByte('\n')
			b.WriteString(e.Result.Render())
		}
		return b.String()
	}
	seq := render(1)
	par := render(2)
	if seq != par {
		t.Errorf("parallel output differs from sequential\n-- jobs=1 --\n%s\n-- jobs=2 --\n%s", seq, par)
	}
}

// TestRegistryKernelKnobDeterminism checks the PR 3 kernel guarantee
// end-to-end: the blocked propagation and sharded matvec preserve
// per-row summation order, so any BlockSize/Workers combination
// renders byte-identically. F3 exercises the trace path, T1 the
// spectral path.
func TestRegistryKernelKnobDeterminism(t *testing.T) {
	subset := []string{"T1", "F3"}
	render := func(blockSize, workers int) string {
		cfg := tiny
		cfg.BlockSize = blockSize
		cfg.Workers = workers
		r := &runner.Runner{Jobs: 1}
		report, err := r.Run(context.Background(), cfg, subset...)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, e := range report.Experiments {
			b.WriteString(e.ID)
			b.WriteByte('\n')
			b.WriteString(e.Result.Render())
		}
		return b.String()
	}
	base := render(1, 1) // per-source sequential reference
	for _, knobs := range [][2]int{{0, 0}, {4, 1}, {8, 2}, {16, 4}, {3, 3}} {
		if got := render(knobs[0], knobs[1]); got != base {
			t.Errorf("BlockSize=%d Workers=%d renders differently from sequential",
				knobs[0], knobs[1])
		}
	}
}

// TestRegistryCancellation drives a real registered experiment with a
// pre-cancelled context: the driver must notice and surface an error
// wrapping context.Canceled instead of computing the artifact.
func TestRegistryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []string{"T1", "X3", "X4"} {
		def, ok := runner.Default().Resolve(id)
		if !ok {
			t.Fatalf("Resolve(%s) failed", id)
		}
		res, err := def.Run(ctx, tiny, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want wrap of context.Canceled", id, err)
		}
		if res != nil {
			t.Errorf("%s: got a result from a cancelled run", id)
		}
	}
}

// TestArtifactEmission checks the Result contract on a real artifact:
// Render is non-empty, CSV has a header row, and JSON is well-formed.
func TestArtifactEmission(t *testing.T) {
	def, ok := runner.Default().Resolve("X3")
	if !ok {
		t.Fatal("Resolve(X3) failed")
	}
	res, err := def.Run(context.Background(), tiny, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Render() == "" {
		t.Error("Render() is empty")
	}
	var csv bytes.Buffer
	if err := res.CSV(&csv); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Split(strings.TrimSpace(csv.String()), "\n"); len(lines) < 2 {
		t.Errorf("CSV has %d lines, want header + rows:\n%s", len(lines), csv.String())
	}
	var js bytes.Buffer
	if err := res.JSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		SchemaVersion int         `json:"schema_version"`
		ID            string      `json:"id"`
		Name          string      `json:"name"`
		Rows          []WhanauRow `json:"rows"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Errorf("JSON does not round-trip: %v", err)
	} else {
		if doc.SchemaVersion != api.SchemaVersion {
			t.Errorf("schema_version = %d, want %d", doc.SchemaVersion, api.SchemaVersion)
		}
		if doc.ID != "X3" || doc.Name != "whanau" {
			t.Errorf("envelope identity = %q/%q, want X3/whanau", doc.ID, doc.Name)
		}
		if len(doc.Rows) == 0 {
			t.Error("JSON decoded to zero rows")
		}
	}
}
