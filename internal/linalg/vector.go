// Package linalg provides the small amount of numerical linear algebra
// the project needs, implemented from scratch on the standard library:
// dense vector primitives, a dense symmetric (Jacobi) eigensolver used
// to cross-validate sparse methods, and Sturm-sequence bisection for
// the eigenvalues of symmetric tridiagonal matrices produced by the
// Lanczos process.
package linalg

import "math"

// Dot returns the inner product of x and y. The slices must have equal
// length.
func Dot(x, y []float64) float64 {
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Norm1 returns the L1 norm of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// NormInf returns the maximum absolute entry of x.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Scale multiplies x by a in place.
func Scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

// Normalize scales x to unit Euclidean norm in place and returns the
// original norm. A zero vector is left unchanged.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	Scale(x, 1/n)
	return n
}

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i, v := range x {
		y[i] += a * v
	}
}

// Sub computes dst = x - y.
func Sub(dst, x, y []float64) {
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Sum returns the sum of the entries of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Fill sets every entry of x to a.
func Fill(x []float64, a float64) {
	for i := range x {
		x[i] = a
	}
}

// OrthogonalizeAgainst removes from x its component along the unit
// vector q: x -= (q·x) q.
func OrthogonalizeAgainst(x, q []float64) {
	Axpy(-Dot(q, x), q, x)
}
