package linalg

import "math"

// Tridiag is a symmetric tridiagonal matrix: Diag has length k and
// Off has length k-1 (Off[i] couples rows i and i+1). Lanczos reduces
// the sparse symmetric walk operator to this form; its eigenvalues
// approximate the extremal eigenvalues of the original operator.
type Tridiag struct {
	Diag []float64
	Off  []float64
}

// Dim returns the matrix dimension.
func (t *Tridiag) Dim() int { return len(t.Diag) }

// gershgorinBounds returns an interval certain to contain all
// eigenvalues.
func (t *Tridiag) gershgorinBounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range t.Diag {
		r := 0.0
		if i > 0 {
			r += math.Abs(t.Off[i-1])
		}
		if i < len(t.Off) {
			r += math.Abs(t.Off[i])
		}
		if t.Diag[i]-r < lo {
			lo = t.Diag[i] - r
		}
		if t.Diag[i]+r > hi {
			hi = t.Diag[i] + r
		}
	}
	return lo, hi
}

// CountBelow returns the number of eigenvalues strictly less than x,
// via the Sturm sequence of leading principal minors evaluated with
// the stable recurrence d_i = (a_i - x) - b_{i-1}² / d_{i-1}.
func (t *Tridiag) CountBelow(x float64) int {
	count := 0
	d := 1.0
	for i := range t.Diag {
		if i == 0 {
			d = t.Diag[0] - x
		} else {
			if d == 0 {
				d = 1e-300 // perturb to avoid division by zero
			}
			d = (t.Diag[i] - x) - t.Off[i-1]*t.Off[i-1]/d
		}
		if d < 0 {
			count++
		}
	}
	return count
}

// Eigenvalue returns the i-th smallest eigenvalue (0-based) to within
// tol, by bisection on the Sturm count. tol <= 0 defaults to 1e-12
// relative to the spectral range.
func (t *Tridiag) Eigenvalue(i int, tol float64) float64 {
	lo, hi := t.gershgorinBounds()
	if tol <= 0 {
		tol = 1e-12 * math.Max(1, hi-lo)
	}
	// Invariant: count(lo) <= i < count(hi).
	lo -= tol
	hi += tol
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		if t.CountBelow(mid) <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// Eigenvalues returns all eigenvalues in ascending order, each to
// within tol.
func (t *Tridiag) Eigenvalues(tol float64) []float64 {
	k := t.Dim()
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		vals[i] = t.Eigenvalue(i, tol)
	}
	return vals
}

// Extremes returns the smallest and largest eigenvalues.
func (t *Tridiag) Extremes(tol float64) (min, max float64) {
	k := t.Dim()
	return t.Eigenvalue(0, tol), t.Eigenvalue(k-1, tol)
}

// EigenvectorFor returns a unit eigenvector for the eigenvalue of the
// tridiagonal closest to theta, by inverse iteration: each step solves
// the nearly singular system (T − θI)y = x, which amplifies the
// wanted eigenvector component by 1/dist(θ, λ) relative to every
// other. With theta accurate to working precision (the bisection
// output), a handful of O(k) solves converge; Lanczos combines the
// result through its stored basis to recover the Ritz vector.
func (t *Tridiag) EigenvectorFor(theta float64) []float64 {
	k := t.Dim()
	x := make([]float64, k)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(k))
	}
	y := make([]float64, k)
	for iter := 0; iter < 4; iter++ {
		t.solveShifted(theta, x, y)
		norm := Norm2(y)
		if norm == 0 || math.IsInf(norm, 0) || math.IsNaN(norm) {
			break
		}
		Scale(y, 1/norm)
		aligned := math.Abs(math.Abs(Dot(x, y))-1) < 1e-13
		copy(x, y)
		if aligned {
			break
		}
	}
	return x
}

// solveShifted solves (T − θI)y = b by Gaussian elimination with
// partial pivoting on the tridiagonal band (fill-in is one extra
// superdiagonal). Exact zero pivots — θ hitting an eigenvalue of a
// leading principal submatrix — are perturbed, which is the standard
// inverse-iteration safeguard: the solution direction is what matters,
// not its magnitude.
func (t *Tridiag) solveShifted(theta float64, b, y []float64) {
	k := t.Dim()
	// Band storage: d = main diagonal, e = first superdiagonal,
	// f = second superdiagonal (created by row swaps).
	d := make([]float64, k)
	e := make([]float64, k)
	f := make([]float64, k)
	copy(y, b)
	for i := 0; i < k; i++ {
		d[i] = t.Diag[i] - theta
		if i < k-1 {
			e[i] = t.Off[i]
		}
	}
	sub := make([]float64, k) // subdiagonal entries still to eliminate
	for i := 0; i < k-1; i++ {
		sub[i+1] = t.Off[i]
	}
	for i := 0; i < k-1; i++ {
		if math.Abs(sub[i+1]) > math.Abs(d[i]) {
			d[i], sub[i+1] = sub[i+1], d[i]
			e[i], d[i+1] = d[i+1], e[i]
			f[i], e[i+1] = e[i+1], f[i]
			y[i], y[i+1] = y[i+1], y[i]
		}
		if d[i] == 0 {
			d[i] = 1e-300
		}
		m := sub[i+1] / d[i]
		d[i+1] -= m * e[i]
		e[i+1] -= m * f[i]
		y[i+1] -= m * y[i]
	}
	if d[k-1] == 0 {
		d[k-1] = 1e-300
	}
	// Back substitution over the three stored bands.
	for i := k - 1; i >= 0; i-- {
		s := y[i]
		if i+1 < k {
			s -= e[i] * y[i+1]
		}
		if i+2 < k {
			s -= f[i] * y[i+2]
		}
		y[i] = s / d[i]
	}
}
