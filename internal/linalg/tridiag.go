package linalg

import "math"

// Tridiag is a symmetric tridiagonal matrix: Diag has length k and
// Off has length k-1 (Off[i] couples rows i and i+1). Lanczos reduces
// the sparse symmetric walk operator to this form; its eigenvalues
// approximate the extremal eigenvalues of the original operator.
type Tridiag struct {
	Diag []float64
	Off  []float64
}

// Dim returns the matrix dimension.
func (t *Tridiag) Dim() int { return len(t.Diag) }

// gershgorinBounds returns an interval certain to contain all
// eigenvalues.
func (t *Tridiag) gershgorinBounds() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := range t.Diag {
		r := 0.0
		if i > 0 {
			r += math.Abs(t.Off[i-1])
		}
		if i < len(t.Off) {
			r += math.Abs(t.Off[i])
		}
		if t.Diag[i]-r < lo {
			lo = t.Diag[i] - r
		}
		if t.Diag[i]+r > hi {
			hi = t.Diag[i] + r
		}
	}
	return lo, hi
}

// CountBelow returns the number of eigenvalues strictly less than x,
// via the Sturm sequence of leading principal minors evaluated with
// the stable recurrence d_i = (a_i - x) - b_{i-1}² / d_{i-1}.
func (t *Tridiag) CountBelow(x float64) int {
	count := 0
	d := 1.0
	for i := range t.Diag {
		if i == 0 {
			d = t.Diag[0] - x
		} else {
			if d == 0 {
				d = 1e-300 // perturb to avoid division by zero
			}
			d = (t.Diag[i] - x) - t.Off[i-1]*t.Off[i-1]/d
		}
		if d < 0 {
			count++
		}
	}
	return count
}

// Eigenvalue returns the i-th smallest eigenvalue (0-based) to within
// tol, by bisection on the Sturm count. tol <= 0 defaults to 1e-12
// relative to the spectral range.
func (t *Tridiag) Eigenvalue(i int, tol float64) float64 {
	lo, hi := t.gershgorinBounds()
	if tol <= 0 {
		tol = 1e-12 * math.Max(1, hi-lo)
	}
	// Invariant: count(lo) <= i < count(hi).
	lo -= tol
	hi += tol
	for hi-lo > tol {
		mid := lo + (hi-lo)/2
		if t.CountBelow(mid) <= i {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// Eigenvalues returns all eigenvalues in ascending order, each to
// within tol.
func (t *Tridiag) Eigenvalues(tol float64) []float64 {
	k := t.Dim()
	vals := make([]float64, k)
	for i := 0; i < k; i++ {
		vals[i] = t.Eigenvalue(i, tol)
	}
	return vals
}

// Extremes returns the smallest and largest eigenvalues.
func (t *Tridiag) Extremes(tol float64) (min, max float64) {
	k := t.Dim()
	return t.Eigenvalue(0, tol), t.Eigenvalue(k-1, tol)
}
