package linalg

import (
	"fmt"
	"math"
	"sort"
)

// SymDense is a dense symmetric matrix stored fully (both triangles)
// in row-major order. It exists to cross-validate the sparse spectral
// code on small graphs, where an O(n³) eigensolve is cheap.
type SymDense struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j]
}

// NewSymDense allocates an n×n zero matrix.
func NewSymDense(n int) *SymDense {
	return &SymDense{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (a *SymDense) At(i, j int) float64 { return a.Data[i*a.N+j] }

// Set sets elements (i, j) and (j, i).
func (a *SymDense) Set(i, j int, v float64) {
	a.Data[i*a.N+j] = v
	a.Data[j*a.N+i] = v
}

// offDiagNorm returns the Frobenius norm of the strictly upper
// triangle.
func (a *SymDense) offDiagNorm() float64 {
	var s float64
	for i := 0; i < a.N; i++ {
		for j := i + 1; j < a.N; j++ {
			v := a.At(i, j)
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// EigenSym computes all eigenvalues (ascending) and, if vectors is
// true, an orthonormal matrix of eigenvectors (column k corresponds to
// eigenvalue k) using the cyclic Jacobi rotation method. The input
// matrix is not modified. Jacobi is slow but essentially exact for the
// matrix sizes (n ≲ 500) it is used at, which is what a validation
// oracle should be.
func EigenSym(a *SymDense, vectors bool) (vals []float64, vecs *SymDense, err error) {
	n := a.N
	if n == 0 {
		return nil, nil, nil
	}
	// Verify symmetry up to roundoff; the algorithm assumes it.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d := math.Abs(a.At(i, j) - a.At(j, i)); d > 1e-12 {
				return nil, nil, fmt.Errorf("linalg: matrix not symmetric at (%d,%d): |Δ|=%g", i, j, d)
			}
		}
	}
	w := &SymDense{N: n, Data: append([]float64(nil), a.Data...)}
	var v *SymDense
	if vectors {
		v = NewSymDense(n)
		for i := 0; i < n; i++ {
			v.Data[i*n+i] = 1
		}
	}

	const maxSweeps = 100
	tol := 1e-14 * (1 + w.offDiagNorm())
	for sweep := 0; sweep < maxSweeps; sweep++ {
		if w.offDiagNorm() <= tol {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= tol/float64(n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation J(p,q,θ)ᵀ W J(p,q,θ).
				for k := 0; k < n; k++ {
					akp, akq := w.At(k, p), w.At(k, q)
					w.Data[k*n+p] = c*akp - s*akq
					w.Data[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := w.At(p, k), w.At(q, k)
					w.Data[p*n+k] = c*apk - s*aqk
					w.Data[q*n+k] = s*apk + c*aqk
				}
				if vectors {
					for k := 0; k < n; k++ {
						vkp, vkq := v.At(k, p), v.At(k, q)
						v.Data[k*n+p] = c*vkp - s*vkq
						v.Data[k*n+q] = s*vkp + c*vkq
					}
				}
			}
		}
	}

	vals = make([]float64, n)
	order := make([]int, n)
	for i := range vals {
		vals[i] = w.At(i, i)
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return vals[order[i]] < vals[order[j]] })
	sorted := make([]float64, n)
	for k, idx := range order {
		sorted[k] = vals[idx]
	}
	if vectors {
		perm := NewSymDense(n)
		for k, idx := range order {
			for r := 0; r < n; r++ {
				perm.Data[r*n+k] = v.At(r, idx)
			}
		}
		vecs = perm
	}
	return sorted, vecs, nil
}
