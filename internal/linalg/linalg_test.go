package linalg

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %v", Norm2(x))
	}
	if Norm1(x) != 7 {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if NormInf([]float64{-9, 2}) != 9 {
		t.Fatal("NormInf")
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy -> %v", y)
	}
	d := make([]float64, 2)
	Sub(d, []float64{5, 5}, []float64{2, 3})
	if d[0] != 3 || d[1] != 2 {
		t.Fatalf("Sub -> %v", d)
	}
	if Sum([]float64{1, 2, 3.5}) != 6.5 {
		t.Fatal("Sum")
	}
	z := make([]float64, 3)
	Fill(z, 2)
	if z[0] != 2 || z[2] != 2 {
		t.Fatal("Fill")
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{0, 3, 4}
	n := Normalize(x)
	if n != 5 || !almostEq(Norm2(x), 1, 1e-15) {
		t.Fatalf("Normalize: n=%v x=%v", n, x)
	}
	zero := []float64{0, 0}
	if Normalize(zero) != 0 {
		t.Fatal("zero vector norm")
	}
}

func TestOrthogonalize(t *testing.T) {
	q := []float64{1, 0, 0}
	x := []float64{5, 2, 1}
	OrthogonalizeAgainst(x, q)
	if !almostEq(Dot(x, q), 0, 1e-15) {
		t.Fatalf("residual dot %v", Dot(x, q))
	}
	if x[1] != 2 || x[2] != 1 {
		t.Fatal("orthogonalization disturbed orthogonal components")
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := NewSymDense(3)
	a.Set(0, 0, 3)
	a.Set(1, 1, -1)
	a.Set(2, 2, 2)
	vals, _, err := EigenSym(a, false)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 2, 3}
	for i := range want {
		if !almostEq(vals[i], want[i], 1e-12) {
			t.Fatalf("vals = %v", vals)
		}
	}
}

func TestEigenSym2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3 with vectors (1,-1)/√2,
	// (1,1)/√2.
	a := NewSymDense(2)
	a.Set(0, 0, 2)
	a.Set(1, 1, 2)
	a.Set(0, 1, 1)
	vals, vecs, err := EigenSym(a, true)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(vals[0], 1, 1e-12) || !almostEq(vals[1], 3, 1e-12) {
		t.Fatalf("vals = %v", vals)
	}
	// Check A v = λ v for each column.
	for k := 0; k < 2; k++ {
		for r := 0; r < 2; r++ {
			av := a.At(r, 0)*vecs.At(0, k) + a.At(r, 1)*vecs.At(1, k)
			if !almostEq(av, vals[k]*vecs.At(r, k), 1e-12) {
				t.Fatalf("eigvec %d fails residual", k)
			}
		}
	}
}

func TestEigenSymRejectsAsymmetric(t *testing.T) {
	a := NewSymDense(2)
	a.Data[0*2+1] = 1 // set only one triangle
	if _, _, err := EigenSym(a, false); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

// Property: for random symmetric matrices, Jacobi eigenvalues satisfy
// trace and Frobenius identities, and eigenvectors reconstruct A.
func TestQuickEigenSym(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := 2 + int(seed%8)
		a := NewSymDense(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		vals, vecs, err := EigenSym(a, true)
		if err != nil {
			return false
		}
		var trace, frob, valSum, valSq float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			for j := 0; j < n; j++ {
				frob += a.At(i, j) * a.At(i, j)
			}
		}
		for _, v := range vals {
			valSum += v
			valSq += v * v
		}
		if !almostEq(trace, valSum, 1e-9) || !almostEq(frob, valSq, 1e-8) {
			return false
		}
		// Reconstruct A = V Λ Vᵀ.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += vecs.At(i, k) * vals[k] * vecs.At(j, k)
				}
				if !almostEq(s, a.At(i, j), 1e-9) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTridiagKnownSpectrum(t *testing.T) {
	// The k×k tridiagonal with diag 0 and offdiag 1 has eigenvalues
	// 2·cos(πj/(k+1)), j = 1..k.
	k := 9
	tr := &Tridiag{Diag: make([]float64, k), Off: make([]float64, k-1)}
	for i := range tr.Off {
		tr.Off[i] = 1
	}
	vals := tr.Eigenvalues(1e-12)
	for j := 1; j <= k; j++ {
		want := 2 * math.Cos(math.Pi*float64(k+1-j)/float64(k+1))
		if !almostEq(vals[j-1], want, 1e-10) {
			t.Fatalf("eigenvalue %d = %v, want %v", j-1, vals[j-1], want)
		}
	}
	min, max := tr.Extremes(1e-12)
	if !almostEq(min, vals[0], 1e-10) || !almostEq(max, vals[k-1], 1e-10) {
		t.Fatal("Extremes disagrees with Eigenvalues")
	}
}

func TestTridiagCountBelow(t *testing.T) {
	tr := &Tridiag{Diag: []float64{1, 2, 3}, Off: []float64{0, 0}}
	cases := []struct {
		x    float64
		want int
	}{{0.5, 0}, {1.5, 1}, {2.5, 2}, {3.5, 3}}
	for _, c := range cases {
		if got := tr.CountBelow(c.x); got != c.want {
			t.Fatalf("CountBelow(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

// Property: Sturm bisection agrees with the Jacobi oracle on random
// tridiagonal matrices.
func TestQuickTridiagVsJacobi(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 5))
		k := 2 + int(seed%10)
		tr := &Tridiag{Diag: make([]float64, k), Off: make([]float64, k-1)}
		a := NewSymDense(k)
		for i := 0; i < k; i++ {
			tr.Diag[i] = rng.NormFloat64()
			a.Set(i, i, tr.Diag[i])
		}
		for i := 0; i < k-1; i++ {
			tr.Off[i] = rng.NormFloat64()
			a.Set(i, i+1, tr.Off[i])
		}
		want, _, err := EigenSym(a, false)
		if err != nil {
			return false
		}
		got := tr.Eigenvalues(1e-11)
		for i := range want {
			if !almostEq(got[i], want[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
