package linalg

import (
	"math"
	"testing"
)

// tridiagMatvec computes y = T·x for the test assertions.
func tridiagMatvec(t *Tridiag, x []float64) []float64 {
	k := t.Dim()
	y := make([]float64, k)
	for i := 0; i < k; i++ {
		y[i] = t.Diag[i] * x[i]
		if i > 0 {
			y[i] += t.Off[i-1] * x[i-1]
		}
		if i < k-1 {
			y[i] += t.Off[i] * x[i+1]
		}
	}
	return y
}

// TestEigenvectorForKnownSpectrum uses the discrete Laplacian
// tridiagonal (diag 2, off −1), whose eigenpairs are known in closed
// form: λ_j = 2 − 2cos(jπ/(k+1)), v_j[i] ∝ sin(ij π/(k+1)).
func TestEigenvectorForKnownSpectrum(t *testing.T) {
	const k = 12
	tri := &Tridiag{Diag: make([]float64, k), Off: make([]float64, k-1)}
	for i := 0; i < k; i++ {
		tri.Diag[i] = 2
	}
	for i := 0; i < k-1; i++ {
		tri.Off[i] = -1
	}
	for _, j := range []int{1, 2, k} { // smallest, second, largest
		lambda := 2 - 2*math.Cos(float64(j)*math.Pi/float64(k+1))
		v := tri.EigenvectorFor(lambda)
		if n := Norm2(v); math.Abs(n-1) > 1e-12 {
			t.Fatalf("j=%d: eigenvector norm %v, want 1", j, n)
		}
		tv := tridiagMatvec(tri, v)
		var res float64
		for i := range tv {
			d := tv[i] - lambda*v[i]
			res += d * d
		}
		if res = math.Sqrt(res); res > 1e-10 {
			t.Fatalf("j=%d: residual ‖Tv − λv‖ = %g", j, res)
		}
	}
}

// TestEigenvectorForAgainstBisection pairs EigenvectorFor with the
// Sturm-bisection eigenvalues on a generic tridiagonal: every
// returned vector must satisfy its eigenpair residual.
func TestEigenvectorForAgainstBisection(t *testing.T) {
	tri := &Tridiag{
		Diag: []float64{0.9, 0.2, -0.4, 0.7, 0.1, -0.8, 0.3},
		Off:  []float64{0.5, 0.3, 0.6, 0.2, 0.4, 0.1},
	}
	for i := 0; i < tri.Dim(); i++ {
		lambda := tri.Eigenvalue(i, 1e-14)
		v := tri.EigenvectorFor(lambda)
		tv := tridiagMatvec(tri, v)
		var res float64
		for j := range tv {
			d := tv[j] - lambda*v[j]
			res += d * d
		}
		if res = math.Sqrt(res); res > 1e-9 {
			t.Fatalf("eigenpair %d: residual %g", i, res)
		}
	}
}

func TestEigenvectorForDimOne(t *testing.T) {
	tri := &Tridiag{Diag: []float64{0.5}}
	v := tri.EigenvectorFor(0.5)
	if len(v) != 1 || math.Abs(math.Abs(v[0])-1) > 1e-15 {
		t.Fatalf("k=1 eigenvector = %v", v)
	}
}
