package core

import (
	"math"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
	"mixtime/internal/markov"
)

func TestMeasureCompleteGraph(t *testing.T) {
	m, err := Measure(gen.Complete(30), Options{Sources: 30, MaxWalk: 40})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bipartite {
		t.Fatal("K30 reported bipartite")
	}
	if math.Abs(m.Mu()-1.0/29) > 1e-6 {
		t.Fatalf("µ = %v, want 1/29", m.Mu())
	}
	tm, ok := m.SampledMixingTime(0.01)
	if !ok || tm > 5 {
		t.Fatalf("K30 mixing time %d (ok=%v)", tm, ok)
	}
	if avg := m.AverageMixingTime(0.01); avg > float64(tm) {
		t.Fatalf("average %v exceeds worst case %d", avg, tm)
	}
	if lb := m.LowerBound(0.01); lb >= float64(tm)+1 {
		t.Fatalf("lower bound %v above measured %d", lb, tm)
	}
	if ub := m.UpperBound(0.01); float64(tm) > ub {
		t.Fatalf("measured %d above upper bound %v", tm, ub)
	}
}

func TestMeasureExtractsLCC(t *testing.T) {
	b := graph.NewBuilder(0)
	// Big component: ring of 20; small: a triangle.
	for i := 0; i < 20; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%20))
	}
	b.AddEdge(20, 21)
	b.AddEdge(21, 22)
	b.AddEdge(22, 20)
	m, err := Measure(b.Build(), Options{Sources: 5, MaxWalk: 10})
	if err != nil {
		t.Fatal(err)
	}
	if m.Graph.NumNodes() != 20 {
		t.Fatalf("measured component has %d nodes", m.Graph.NumNodes())
	}
	// Ring of 20 is bipartite → lazy chain.
	if !m.Bipartite || !m.Chain.IsLazy() {
		t.Fatal("bipartite component should use the lazy chain")
	}
	if m.Mu() >= 1 || m.Mu() <= 0 {
		t.Fatalf("lazy µ = %v", m.Mu())
	}
}

func TestMeasureKeepWholeRequiresConnected(t *testing.T) {
	b := graph.NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	if _, err := Measure(b.Build(), Options{KeepWhole: true}); err == nil {
		t.Fatal("disconnected KeepWhole accepted")
	}
	if _, err := Measure(&graph.Graph{}, Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestMeasureSkipFlags(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rngFor(1))
	m, err := Measure(g, Options{SkipSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Traces != nil {
		t.Fatal("sampling ran despite SkipSampling")
	}
	if m.SLEM == nil {
		t.Fatal("spectral skipped unexpectedly")
	}
	m2, err := Measure(g, Options{SkipSpectral: true, Sources: 10, MaxWalk: 20})
	if err != nil {
		t.Fatal(err)
	}
	if m2.SLEM != nil {
		t.Fatal("spectral ran despite SkipSpectral")
	}
	if m2.Mu() != 1 {
		t.Fatalf("skipped µ = %v, want conservative 1", m2.Mu())
	}
	if len(m2.Traces) != 10 {
		t.Fatalf("%d traces", len(m2.Traces))
	}
}

func TestMeasureBruteForceSources(t *testing.T) {
	g := gen.Complete(25)
	m, err := Measure(g, Options{Sources: 1000, MaxWalk: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Traces) != 25 {
		t.Fatalf("brute force should trace every vertex, got %d", len(m.Traces))
	}
}

func TestSlowGraphSlowerThanFastGraph(t *testing.T) {
	fast, err := Measure(gen.BarabasiAlbert(400, 6, rngFor(2)), Options{Sources: 30, MaxWalk: 400})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Measure(gen.RelaxedCaveman(40, 10, 0.02, rngFor(3)), Options{Sources: 30, MaxWalk: 400})
	if err != nil {
		t.Fatal(err)
	}
	if fast.Mu() >= slow.Mu() {
		t.Fatalf("µ ordering: fast %v vs slow %v", fast.Mu(), slow.Mu())
	}
	eps := 0.1
	ft, _ := fast.SampledMixingTime(eps)
	st, _ := slow.SampledMixingTime(eps)
	if ft >= st {
		t.Fatalf("sampled mixing: fast %d vs slow %d", ft, st)
	}
	// The headline comparison: the slow graph's mixing time exceeds
	// the O(log n) the Sybil defenses assume.
	if st <= slow.FastMixingYardstick() {
		t.Fatalf("slow graph mixed within log n = %d (t = %d)", slow.FastMixingYardstick(), st)
	}
}

func TestConductanceBoundsSane(t *testing.T) {
	m, err := Measure(gen.Barbell(12), Options{SkipSampling: true})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Conductance()
	if lo < 0 || hi > 2 || lo > hi {
		t.Fatalf("conductance bounds [%v, %v]", lo, hi)
	}
	// Barbell conductance is tiny.
	if hi > 0.5 {
		t.Fatalf("barbell conductance upper bound %v too large", hi)
	}
}

func TestDistancesAtMatchesTraces(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, rngFor(4))
	m, err := Measure(g, Options{Sources: 12, MaxWalk: 30})
	if err != nil {
		t.Fatal(err)
	}
	d := m.DistancesAt(7)
	if len(d) != 12 {
		t.Fatalf("%d distances", len(d))
	}
	want := markov.DistancesAt(m.Traces, 7)
	for i := range d {
		if d[i] != want[i] {
			t.Fatal("DistancesAt disagrees with markov aggregation")
		}
	}
}
