package core

import (
	"context"
	"errors"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/runner"
)

func TestMeasureContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := gen.BarabasiAlbert(300, 3, rngFor(1))
	m, err := MeasureContext(ctx, g, Options{Sources: 10, MaxWalk: 50})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
	if m != nil {
		t.Fatal("got a measurement from a cancelled context")
	}
	// The sampling-only path must notice too (no spectral stage to
	// absorb the cancellation).
	if _, err := MeasureContext(ctx, g, Options{SkipSpectral: true, Sources: 10, MaxWalk: 50}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sampling-only err = %v, want wrap of context.Canceled", err)
	}
}

func TestZeroSeedIsUsableAndReproducible(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rngFor(2))
	measure := func(seed uint64) *Measurement {
		m, err := Measure(g, Options{Seed: seed, Sources: 15, MaxWalk: 30})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := measure(0), measure(0)
	if len(a.Sources) != len(b.Sources) {
		t.Fatalf("source counts differ: %d vs %d", len(a.Sources), len(b.Sources))
	}
	for i := range a.Sources {
		if a.Sources[i] != b.Sources[i] {
			t.Fatalf("seed 0 is not reproducible: sources differ at %d", i)
		}
	}
	// Seed 0 must be its own stream, not silently rewritten to the
	// default seed 1.
	c := measure(1)
	same := len(a.Sources) == len(c.Sources)
	if same {
		for i := range a.Sources {
			if a.Sources[i] != c.Sources[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seed 0 sampled the same sources as seed 1 — zero seed treated as sentinel")
	}
}

func TestDefaultOptionsCarryCanonicalValues(t *testing.T) {
	o := DefaultOptions()
	if o.Sources != runner.DefaultSources || o.MaxWalk != runner.DefaultMaxWalk ||
		o.SpectralTol != runner.DefaultSpectralTol || o.Seed != runner.DefaultSeed {
		t.Fatalf("DefaultOptions() = %+v, want the runner canonical defaults", o)
	}
	// withDefaults fills everything except Seed.
	d := Options{}.withDefaults()
	if d.Sources != runner.DefaultSources || d.MaxWalk != runner.DefaultMaxWalk || d.SpectralTol != runner.DefaultSpectralTol {
		t.Fatalf("withDefaults() = %+v", d)
	}
	if d.Seed != 0 {
		t.Fatalf("withDefaults rewrote Seed to %d; zero must stay zero", d.Seed)
	}
}

func TestMeasureReportsProgress(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rngFor(3))
	stages := map[string]int{}
	_, err := Measure(g, Options{Sources: 8, MaxWalk: 20,
		Progress: func(stage string, done, total int) { stages[stage]++ }})
	if err != nil {
		t.Fatal(err)
	}
	if stages["spectral"] == 0 {
		t.Error("no spectral progress reported")
	}
	if stages["sampling"] == 0 {
		t.Error("no sampling progress reported")
	}
}
