// Package core composes the two measurement techniques of the paper
// into one high-level API: given a social graph, it extracts the
// largest connected component, estimates the SLEM µ (spectral bound,
// §3.2/Theorem 2), samples per-source variation-distance traces
// (direct measurement, §3.3/Definition 1), and reports the mixing
// time both ways, together with the Sinclair bounds and the
// fast-mixing O(log n) yardstick the Sybil-defense literature
// assumes.
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"

	"mixtime/internal/api"
	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/spectral"
	"mixtime/internal/telemetry"
)

// Options configures a measurement. The numeric defaults are the
// project-wide canonical values from internal/api (Sources 200,
// MaxWalk 500, SpectralTol 1e-7) so that core measurements, the
// experiment drivers and the service wire schema agree on what an
// unset field means.
type Options struct {
	// Sources is the number of sampled start vertices for the direct
	// measurement (default api.DefaultSources; the paper uses 1000
	// on large graphs and every vertex on small ones). Sources ≥ n
	// measures from every vertex (the brute-force mode of Figures 3–5).
	Sources int
	// MaxWalk caps the propagated walk length per source
	// (default api.DefaultMaxWalk).
	MaxWalk int
	// SpectralTol is the SLEM tolerance
	// (default api.DefaultSpectralTol).
	SpectralTol float64
	// Seed drives source sampling and the spectral start vector. Zero
	// is a usable seed, not a sentinel: Measure never rewrites it.
	// Callers that want the project default should start from
	// DefaultOptions.
	Seed uint64
	// SkipSampling disables the direct measurement (SLEM only).
	SkipSampling bool
	// SkipSpectral disables the SLEM estimation (sampling only).
	SkipSpectral bool
	// KeepWhole skips largest-component extraction; the graph must
	// already be connected.
	KeepWhole bool
	// Workers sets the kernel parallelism: blocked-trace fan-out and
	// row-sharded spectral matvecs (0 = GOMAXPROCS where the graph is
	// large enough to amortize it, 1 = sequential). Results are
	// byte-identical for any value.
	Workers int
	// BlockSize is the number of source distributions propagated per
	// blocked CSR pass (default api.DefaultBlockSize); 1 degenerates
	// to per-source matvecs. Traces are byte-identical for any value.
	BlockSize int
	// Progress, if non-nil, is called as long stages advance: stage is
	// "spectral" (done = operator iterations so far, total = 0) or
	// "sampling" (done of total sources traced). Calls are serialized.
	Progress func(stage string, done, total int)
	// Collector, if non-nil, receives kernel telemetry (edges scanned,
	// matvecs, solver iterations, trace counts) plus scoped wall-time
	// timers for the "spectral" and "sampling" stages. Measurements
	// are byte-identical with or without a collector.
	Collector *telemetry.Collector
}

// DefaultOptions returns the canonical measurement options, including
// the default Seed. This constructor is the only place the default
// seed is applied; a zero Seed set explicitly on Options stays zero.
func DefaultOptions() Options {
	return Options{
		Sources:     api.DefaultSources,
		MaxWalk:     api.DefaultMaxWalk,
		SpectralTol: api.DefaultSpectralTol,
		Seed:        api.DefaultSeed,
	}
}

func (o Options) withDefaults() Options {
	if o.Sources <= 0 {
		o.Sources = api.DefaultSources
	}
	if o.MaxWalk <= 0 {
		o.MaxWalk = api.DefaultMaxWalk
	}
	if o.SpectralTol <= 0 {
		o.SpectralTol = api.DefaultSpectralTol
	}
	if o.BlockSize <= 0 {
		o.BlockSize = api.DefaultBlockSize
	}
	// Seed is deliberately not defaulted here: 0 is a valid PCG seed
	// and rewriting it would make the zero seed unusable.
	return o
}

// Measurement is the result of measuring one graph.
type Measurement struct {
	// Graph is the measured component (after LCC extraction).
	Graph *graph.Graph
	// Chain is the measured random walk (lazy iff Bipartite).
	Chain *markov.Chain
	// Bipartite reports whether the component is bipartite, in which
	// case the plain walk is periodic and the lazy chain was measured
	// instead.
	Bipartite bool
	// SLEM is the spectral estimate (nil with SkipSpectral).
	SLEM *spectral.Estimate
	// Traces are the per-source direct measurements (nil with
	// SkipSampling).
	Traces []*markov.Trace
	// Sources are the trace start vertices.
	Sources []graph.NodeID
}

// Measure runs the full methodology on g.
func Measure(g *graph.Graph, opt Options) (*Measurement, error) {
	return MeasureContext(context.Background(), g, opt)
}

// MeasureContext is Measure with cancellation: ctx is threaded into
// the SLEM iteration and every trace propagation, so a cancelled or
// expired context aborts the measurement promptly with an error
// wrapping ctx.Err().
func MeasureContext(ctx context.Context, g *graph.Graph, opt Options) (*Measurement, error) {
	opt = opt.withDefaults()
	if g.NumNodes() == 0 {
		return nil, errors.New("core: empty graph")
	}
	component := g
	if !opt.KeepWhole {
		component, _ = graph.LargestComponent(g)
	} else if !graph.IsConnected(g) {
		return nil, errors.New("core: KeepWhole requires a connected graph (mixing time is undefined otherwise)")
	}
	if component.NumNodes() < 2 {
		return nil, errors.New("core: component too small to measure")
	}

	m := &Measurement{Graph: component}
	m.Bipartite = graph.IsBipartite(component)
	var chainOpts []markov.Option
	if m.Bipartite {
		chainOpts = append(chainOpts, markov.Lazy())
	}
	if opt.Collector != nil {
		chainOpts = append(chainOpts, markov.WithCollector(opt.Collector))
	}
	chain, err := markov.New(component, chainOpts...)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m.Chain = chain

	if !opt.SkipSpectral {
		stopSpectral := opt.Collector.Timer("spectral")
		est, err := spectral.SLEMContext(ctx, component, spectral.Options{
			Tol: opt.SpectralTol, Seed: opt.Seed, Workers: opt.Workers,
			Collector: opt.Collector})
		stopSpectral()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		if opt.Progress != nil {
			opt.Progress("spectral", est.Iterations, 0)
		}
		if m.Bipartite {
			// The measured chain is lazy; its SLEM is (1+λ₂)/2 and its
			// smallest eigenvalue is non-negative.
			est = &spectral.Estimate{
				Mu:         (1 + est.Lambda2) / 2,
				Lambda2:    (1 + est.Lambda2) / 2,
				LambdaN:    (1 + est.LambdaN) / 2,
				Iterations: est.Iterations,
				Converged:  est.Converged,
			}
		}
		m.SLEM = est
	}

	if !opt.SkipSampling {
		rng := rand.New(rand.NewPCG(opt.Seed, 0xc0fe))
		m.Sources = markov.SampleSources(component, opt.Sources, rng)
		var onTrace func(done, total int)
		if opt.Progress != nil {
			onTrace = func(done, total int) { opt.Progress("sampling", done, total) }
		}
		stopSampling := opt.Collector.Timer("sampling")
		traces, err := chain.TraceSampleBlockedContext(ctx, m.Sources, opt.MaxWalk, opt.BlockSize, opt.Workers, onTrace)
		stopSampling()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		m.Traces = traces
	}
	return m, nil
}

// Mu returns the estimated SLEM, or 1 if the spectral pass was
// skipped (the conservative value).
func (m *Measurement) Mu() float64 {
	if m.SLEM == nil {
		return 1
	}
	return m.SLEM.Mu
}

// LowerBound returns the Sinclair lower bound on T(ε) from the
// measured µ.
func (m *Measurement) LowerBound(eps float64) float64 {
	return spectral.MixingLowerBound(m.Mu(), eps)
}

// UpperBound returns the Sinclair upper bound on T(ε).
func (m *Measurement) UpperBound(eps float64) float64 {
	return spectral.MixingUpperBound(m.Mu(), eps, m.Graph.NumNodes())
}

// SampledMixingTime applies Definition 1 to the sampled traces: the
// maximum over sources of the first walk length within ε. ok is
// false if some source never reached ε within MaxWalk (t is then a
// lower bound).
func (m *Measurement) SampledMixingTime(eps float64) (t int, ok bool) {
	return markov.MixingTime(m.Traces, eps)
}

// AverageMixingTime is the mean first-crossing walk length over
// sources — the average-case quantity the paper's §5 recommends
// designs analyze instead of the worst case.
func (m *Measurement) AverageMixingTime(eps float64) float64 {
	return markov.AverageMixingTime(m.Traces, eps)
}

// DistancesAt returns the per-source variation distance after w
// steps (the Figure 3/4 CDF samples).
func (m *Measurement) DistancesAt(w int) []float64 {
	return markov.DistancesAt(m.Traces, w)
}

// FastMixingYardstick returns ⌈ln n⌉ — the walk length the defenses
// under study assume is enough.
func (m *Measurement) FastMixingYardstick() int {
	return spectral.FastMixingWalkLength(m.Graph.NumNodes())
}

// Conductance returns the Cheeger bounds on the graph conductance
// implied by the measured λ₂.
func (m *Measurement) Conductance() (lo, hi float64) {
	if m.SLEM == nil {
		return 0, 1
	}
	return spectral.CheegerBounds(m.SLEM.Lambda2)
}
