package core

import "math/rand/v2"

// rngFor returns a deterministic generator for test fixtures.
func rngFor(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x7357)) }
