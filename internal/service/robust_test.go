package service

// Robustness tests: admission control under burst, panic containment,
// crash-safe cache persistence across restarts, and the status
// mapping's edge cases (DESIGN.md §14).

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"mixtime/internal/api"
	"mixtime/internal/faults"
	"mixtime/internal/telemetry"
)

// newRobustServer builds a server with explicit overload/fault knobs.
func newRobustServer(t *testing.T, cfg Config, mutable bool) (*Server, *api.Client) {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.AddDataset("physics-1", 0.002, 1); err != nil {
		t.Fatal(err)
	}
	if cfg.Collector == nil {
		cfg.Collector = telemetry.New()
	}
	if mutable {
		if _, err := reg.MakeMutable("physics-1", cfg.Collector); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := New(ctx, reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, api.NewClient(ts.URL)
}

// waitCounter polls a telemetry counter until it reaches want.
func waitCounter(t *testing.T, col *telemetry.Collector, c telemetry.Counter, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for col.Count(c) < want {
		if time.Now().After(deadline) {
			t.Fatalf("counter %v = %d, want >= %d", c, col.Count(c), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBurstShedsWith429 is the admission-control acceptance check: a
// burst far beyond pool+queue capacity gets at most capacity admitted
// and the overflow rejected fast with 429 + Retry-After, counted as
// service_shed and NOT as service_errors.
func TestBurstShedsWith429(t *testing.T) {
	inject, err := faults.Parse("latency=300ms")
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	s, c := newRobustServer(t, Config{
		PoolSize:  1,
		MaxQueue:  1,
		Injector:  inject,
		Collector: col,
	}, false)

	const burst = 8 // 4x (pool + queue)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var okCount, shedCount int
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := tinyParams()
			p.Seed = uint64(i) // distinct fingerprints: no singleflight joins
			_, err := c.Query(context.Background(),
				api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: p})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				okCount++
			case api.IsShed(err):
				shedCount++
			default:
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if okCount+shedCount != burst {
		t.Fatalf("ok=%d shed=%d, want them to cover all %d requests", okCount, shedCount, burst)
	}
	// Capacity is pool(1)+queue(1): at least burst-2 must have been
	// shed, and someone must have gotten through.
	if shedCount < burst-2 || okCount < 1 {
		t.Fatalf("ok=%d shed=%d under a %d burst with capacity 2", okCount, shedCount, burst)
	}
	if got := col.Count(telemetry.ServiceShed); got != int64(shedCount) {
		t.Fatalf("service_shed = %d, want %d", got, shedCount)
	}
	if got := col.Count(telemetry.ServiceErrors); got != 0 {
		t.Fatalf("service_errors = %d, want 0 (sheds are not errors)", got)
	}
	if s.queueDepth.Load() != 0 {
		t.Fatalf("queue depth = %d after the burst, want 0", s.queueDepth.Load())
	}
}

// TestShedResponseCarriesRetryAfter checks the raw 429 wire shape.
func TestShedResponseCarriesRetryAfter(t *testing.T) {
	inject, err := faults.Parse("latency=500ms")
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	_, c := newRobustServer(t, Config{PoolSize: 1, MaxQueue: -1, Injector: inject, Collector: col}, false)

	// Occupy the only slot (queue disabled with MaxQueue<0), then
	// probe: the probe must shed immediately.
	go func() {
		p := tinyParams()
		p.Seed = 99
		c.Query(context.Background(), api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: p}) //nolint:errcheck
	}()
	waitCounter(t, col, telemetry.ServiceSolves, 1)

	body, _ := json.Marshal(api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()})
	hres, err := http.Post(c.BaseURL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", hres.StatusCode)
	}
	if hres.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	var resp api.Response
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil || resp.Error == "" {
		t.Fatalf("429 body not a decodable error envelope: %v / %+v", err, resp)
	}
}

// TestQueueWaitShedsSlowBurst pins the second shed trigger: a queued
// solve that cannot get a slot within MaxQueueWait is shed rather
// than parked forever.
func TestQueueWaitShedsSlowBurst(t *testing.T) {
	inject, err := faults.Parse("latency=600ms")
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	_, c := newRobustServer(t, Config{
		PoolSize:     1,
		MaxQueue:     4,
		MaxQueueWait: 30 * time.Millisecond,
		Injector:     inject,
		Collector:    col,
	}, false)

	go func() {
		p := tinyParams()
		p.Seed = 99
		c.Query(context.Background(), api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: p}) //nolint:errcheck
	}()
	waitCounter(t, col, telemetry.ServiceSolves, 1)

	p := tinyParams()
	p.Seed = 7
	t0 := time.Now()
	_, qerr := c.Query(context.Background(), api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: p})
	if !api.IsShed(qerr) {
		t.Fatalf("queued request err = %v, want a 429 shed", qerr)
	}
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("shed took %v — the queue wait did not bound it", elapsed)
	}
	if !strings.Contains(qerr.Error(), "no solve slot") {
		t.Fatalf("shed error %q does not name the queue wait", qerr)
	}
}

// TestPanicContainment is the panic-barrier acceptance check: an
// injected solve panic becomes a 500 envelope, is counted, is NOT
// cached, and the daemon keeps answering.
func TestPanicContainment(t *testing.T) {
	inject, err := faults.Parse("panic=1:1")
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	_, c := newRobustServer(t, Config{Injector: inject, Collector: col}, false)
	ctx := context.Background()
	req := api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()}

	resp, err := c.Query(ctx, req)
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("panicking solve: err = %v, want a 500", err)
	}
	if resp == nil || !strings.Contains(resp.Error, "panic") {
		t.Fatalf("500 envelope does not name the panic: %+v", resp)
	}
	if got := col.Count(telemetry.ServicePanics); got != 1 {
		t.Fatalf("service_panics = %d, want 1", got)
	}

	// The panic is not cached: the identical request re-solves (the
	// injector's cap is spent) and succeeds; the daemon survived.
	resp, err = c.Query(ctx, req)
	if err != nil {
		t.Fatalf("request after contained panic: %v", err)
	}
	if resp.CacheHit {
		t.Fatal("second request was a cache hit — the panic outcome was cached")
	}
	if resp.SLEM == nil || resp.SLEM.Mu <= 0 {
		t.Fatalf("post-panic solve returned a mangled payload: %+v", resp.SLEM)
	}
	if got := col.Count(telemetry.ServiceSolves); got != 2 {
		t.Fatalf("service_solves = %d, want 2 (panic + retry)", got)
	}
}

// TestInjectedErrorIsTransient: an injected transient error surfaces
// as a 500 and the retrying client recovers on its own.
func TestInjectedErrorIsTransient(t *testing.T) {
	inject, err := faults.Parse("error=1:2")
	if err != nil {
		t.Fatal(err)
	}
	_, c := newRobustServer(t, Config{Injector: inject}, false)
	c.MaxRetries = 4
	c.BaseBackoff = time.Millisecond
	resp, err := c.Query(context.Background(),
		api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()})
	if err != nil {
		t.Fatalf("retrying client did not recover from injected errors: %v", err)
	}
	if resp.SLEM == nil {
		t.Fatalf("recovered response lacks a payload: %+v", resp)
	}
	if m := c.Metrics(); m.Retries < 2 {
		t.Fatalf("client retries = %d, want >= 2", m.Retries)
	}
}

// TestPersistSurvivesRestart is the crash-recovery acceptance check:
// a result solved before an abrupt stop is replayed byte-identically
// by a fresh daemon over the same -cache-dir, with exactly zero new
// solves.
func TestPersistSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	req := api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()}

	col1 := telemetry.New()
	_, c1 := newRobustServer(t, Config{CacheDir: dir, Collector: col1}, false)
	first, err := c1.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	// The write-through is asynchronous with the answer; wait for it
	// before "killing" the daemon.
	waitCounter(t, col1, telemetry.ServicePersistWrites, 1)

	// A fresh registry + server over the same dir is exactly what a
	// SIGKILL + restart produces: no graceful flush ran.
	col2 := telemetry.New()
	_, c2 := newRobustServer(t, Config{CacheDir: dir, Collector: col2}, false)
	if got := col2.Count(telemetry.ServiceCacheLoaded); got != 1 {
		t.Fatalf("service_cache_loaded = %d, want 1", got)
	}
	second, err := c2.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("restarted daemon missed the persisted result")
	}
	if got := col2.Count(telemetry.ServiceSolves); got != 0 {
		t.Fatalf("service_solves after restart = %d, want exactly 0", got)
	}

	// Byte-identical modulo the per-request envelope.
	a, b := *first, *second
	a.CacheHit, b.CacheHit = false, false
	a.ElapsedNS, b.ElapsedNS = 0, 0
	ab, _ := json.Marshal(&a)
	bb, _ := json.Marshal(&b)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("replayed payload differs from the original:\n%s\nvs\n%s", ab, bb)
	}
}

// TestMutableEntriesDroppedOnReload pins the reload rule: mutation
// epochs restart at zero after a reboot, so persisted results against
// version-stamped hashes are unreplayable and must be discarded (both
// from the warm load and from disk).
func TestMutableEntriesDroppedOnReload(t *testing.T) {
	dir := t.TempDir()
	req := api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()}

	col1 := telemetry.New()
	_, c1 := newRobustServer(t, Config{CacheDir: dir, Collector: col1}, true)
	if _, err := c1.Query(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	waitCounter(t, col1, telemetry.ServicePersistWrites, 1)

	col2 := telemetry.New()
	_, c2 := newRobustServer(t, Config{CacheDir: dir, Collector: col2}, true)
	if got := col2.Count(telemetry.ServiceCacheLoaded); got != 0 {
		t.Fatalf("service_cache_loaded = %d, want 0 (stamped entries must drop)", got)
	}
	resp, err := c2.Query(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.CacheHit {
		t.Fatal("restarted daemon replayed a mutable-graph entry from a previous life")
	}
	// load deletes what it refuses; only the freshly re-solved entry's
	// file may exist once its write-through lands.
	waitCounter(t, col2, telemetry.ServicePersistWrites, 1)
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("cache dir holds %d files, want 1 (rejects deleted, re-solve persisted)", len(files))
	}
}

// TestTornPersistFileIsDiscarded: a half-written (crash-torn) cache
// file must be treated as a miss and cleaned up, never trusted.
func TestTornPersistFileIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "deadbeef.json"), []byte(`{"schema_version":1,"finge`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123456"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	newRobustServer(t, Config{CacheDir: dir, Collector: col}, false)
	if got := col.Count(telemetry.ServiceCacheLoaded); got != 0 {
		t.Fatalf("service_cache_loaded = %d, want 0", got)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 0 {
		t.Fatalf("torn/temp files survived the load: %v", left)
	}
}

// TestClientGoneIsNotAnError pins the disconnect satellite: a
// requester vanishing mid-solve is logged and counted
// (service_client_gone), not inflated into service_errors or a 504.
func TestClientGoneIsNotAnError(t *testing.T) {
	inject, err := faults.Parse("latency=400ms")
	if err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	_, c := newRobustServer(t, Config{Injector: inject, Collector: col}, false)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.Query(ctx, api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()}); err == nil {
		t.Fatal("query survived its caller's death")
	}
	waitCounter(t, col, telemetry.ServiceClientGone, 1)
	if got := col.Count(telemetry.ServiceErrors); got != 0 {
		t.Fatalf("service_errors = %d, want 0 (a gone client is not a server error)", got)
	}
}

// TestReadEndpointsRejectNonGET pins the 405 satellite across the
// read-only surface.
func TestReadEndpointsRejectNonGET(t *testing.T) {
	_, c := newRobustServer(t, Config{}, false)
	for _, path := range []string{"/v1/graphs", "/healthz", "/stats"} {
		hres, err := http.Post(c.BaseURL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		hres.Body.Close()
		if hres.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, hres.StatusCode)
		}
	}
	hres, err := http.Get(c.BaseURL + "/v1/mutate")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/mutate = %d, want 405", hres.StatusCode)
	}
}
