package service

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mixtime/internal/api"
	"mixtime/internal/telemetry"
)

// newMutableServer is newTestServer with the served graph registered
// mutable.
func newMutableServer(t *testing.T) (*Server, *api.Client) {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.AddDataset("physics-1", 0.002, 1); err != nil {
		t.Fatal(err)
	}
	col := telemetry.New()
	if _, err := reg.MakeMutable("physics-1", col); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := New(ctx, reg, Config{Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, api.NewClient(ts.URL)
}

// TestMutateEvictsCache pins the acceptance sequence end to end: a
// query misses then hits, a mutation bumps the version and evicts the
// cached result, and the repeated query misses again under a new
// version-stamped fingerprint — with exactly one additional solve.
func TestMutateEvictsCache(t *testing.T) {
	s, c := newMutableServer(t)
	ctx := context.Background()
	req := api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()}

	first, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first query reported cache_hit")
	}
	hit, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !hit.CacheHit || hit.Fingerprint != first.Fingerprint {
		t.Fatalf("pre-mutation repeat: hit=%v fp=%q want hit of %q",
			hit.CacheHit, hit.Fingerprint, first.Fingerprint)
	}
	solvesBefore := s.Collector().Count(telemetry.ServiceSolves)

	mres, err := c.Mutate(ctx, api.MutateRequest{Graph: "physics-1", Grow: 3})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Version != 1 {
		t.Fatalf("version after first mutation = %d, want 1", mres.Version)
	}
	if mres.Inserted == 0 {
		t.Fatal("grow mutation inserted nothing")
	}
	if mres.Evicted != 1 {
		t.Fatalf("mutation evicted %d cache entries, want 1", mres.Evicted)
	}
	if !strings.HasSuffix(mres.Hash, "@v1") {
		t.Fatalf("post-mutation hash %q lacks the version stamp", mres.Hash)
	}

	after, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("post-mutation query served a stale cached result")
	}
	if after.Fingerprint == first.Fingerprint {
		t.Fatal("fingerprint did not change across the mutation")
	}
	if got := s.Collector().Count(telemetry.ServiceSolves) - solvesBefore; got != 1 {
		t.Fatalf("post-mutation repeat cost %d solves, want exactly 1", got)
	}
	if got := s.Collector().Count(telemetry.ServiceMutations); got != 1 {
		t.Fatalf("service_mutations = %d, want 1", got)
	}
	if got := s.Collector().Count(telemetry.ServiceEvictions); got != 1 {
		t.Fatalf("service_evictions = %d, want 1", got)
	}

	// And the new fingerprint is cacheable in its own right.
	again, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit || again.Fingerprint != after.Fingerprint {
		t.Fatalf("post-mutation repeat: hit=%v fp=%q want hit of %q",
			again.CacheHit, again.Fingerprint, after.Fingerprint)
	}
}

// TestMutateInsertDelete exercises explicit edge batches over the
// wire, including the growth of the node range.
func TestMutateInsertDelete(t *testing.T) {
	_, c := newMutableServer(t)
	ctx := context.Background()

	gs, err := c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	n := gs.Graphs[0].Nodes

	// Attach a brand-new node by edge insertion.
	mres, err := c.Mutate(ctx, api.MutateRequest{Graph: "physics-1",
		Insert: []api.EdgeSpec{{U: 0, V: int64(n)}}})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Inserted != 1 || mres.Nodes != n+1 {
		t.Fatalf("insert grew to %d nodes (%d inserted), want %d nodes, 1 inserted",
			mres.Nodes, mres.Inserted, n+1)
	}
	// Delete it again: the node range stays, the edge goes.
	mres, err = c.Mutate(ctx, api.MutateRequest{Graph: "physics-1",
		Delete: []api.EdgeSpec{{U: 0, V: int64(n)}}})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Deleted != 1 || mres.Version != 2 {
		t.Fatalf("delete: %+v, want 1 deleted at version 2", mres)
	}
}

// TestMutateRejections covers the failure surface: immutable graphs,
// unknown graphs, empty batches, bad methods.
func TestMutateRejections(t *testing.T) {
	_, _, c := newTestServer(t) // static registry: not mutable
	ctx := context.Background()

	if _, err := c.Mutate(ctx, api.MutateRequest{Graph: "physics-1", Grow: 1}); err == nil {
		t.Fatal("mutating an immutable graph succeeded")
	} else if !strings.Contains(err.Error(), "not mutable") {
		t.Fatalf("wrong error for immutable graph: %v", err)
	}
	if _, err := c.Mutate(ctx, api.MutateRequest{Graph: "nope", Grow: 1}); err == nil {
		t.Fatal("mutating an unknown graph succeeded")
	}
	if _, err := c.Mutate(ctx, api.MutateRequest{Graph: "physics-1"}); err == nil {
		t.Fatal("empty mutation succeeded")
	}
}

// TestGraphsListsVersion checks the registry listing carries the
// mutability flag and the live version.
func TestGraphsListsVersion(t *testing.T) {
	_, c := newMutableServer(t)
	ctx := context.Background()

	gs, err := c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !gs.Graphs[0].Mutable || gs.Graphs[0].Version != 0 {
		t.Fatalf("fresh mutable listing: %+v", gs.Graphs[0])
	}
	if !strings.HasSuffix(gs.Graphs[0].Hash, "@v0") {
		t.Fatalf("mutable hash %q lacks version stamp", gs.Graphs[0].Hash)
	}
	if _, err := c.Mutate(ctx, api.MutateRequest{Graph: "physics-1", Grow: 2}); err != nil {
		t.Fatal(err)
	}
	gs, err = c.Graphs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gs.Graphs[0].Version != 1 {
		t.Fatalf("version after mutation = %d, want 1", gs.Graphs[0].Version)
	}
}

// TestConcurrentQueriesAndMutations races queries against mutations —
// under -race this is the proof that the per-epoch view freeze keeps
// solves off mutating state.
func TestConcurrentQueriesAndMutations(t *testing.T) {
	_, c := newMutableServer(t)
	ctx := context.Background()
	req := api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := c.Query(ctx, req); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, err := c.Mutate(ctx, api.MutateRequest{Graph: "physics-1", Grow: 2}); err != nil {
				t.Errorf("mutate: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}
