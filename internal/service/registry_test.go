package service

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mixtime/internal/datasets"
	"mixtime/internal/graphio"
)

func TestRegistryDatasets(t *testing.T) {
	r := NewRegistry()
	e, err := r.AddDataset("physics-1", 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e.Graph.NumNodes() < 2 || e.Hash == "" {
		t.Fatalf("implausible entry: %+v", e)
	}
	if _, err := r.AddDataset("physics-1", 0.002, 1); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := r.AddDataset("orkut-prime", 0.002, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, ok := r.Get("physics-1"); !ok {
		t.Fatal("Get missed a registered graph")
	}
	if got := len(r.List()); got != 1 {
		t.Fatalf("List len = %d, want 1", got)
	}
}

func TestRegistryHashIdentity(t *testing.T) {
	r := NewRegistry()
	a, err := r.AddDataset("physics-1", 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.AddDataset("dblp", 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash == b.Hash {
		t.Fatal("distinct graphs share a content hash")
	}
	// Same generation, different registry: the hash is a function of
	// the graph alone.
	r2 := NewRegistry()
	a2, err := r2.AddDataset("physics-1", 0.002, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != a2.Hash {
		t.Fatal("identical graphs hash differently across registries")
	}
}

func TestRegistryLoadDir(t *testing.T) {
	dir := t.TempDir()
	d, err := datasets.ByName("physics-1")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Generate(0.002, 1)
	if err := graphio.SaveFile(filepath.Join(dir, "snap.mixg"), g); err != nil {
		t.Fatal(err)
	}

	r := NewRegistry()
	n, err := r.LoadDir(dir)
	if err != nil || n != 1 {
		t.Fatalf("LoadDir = %d, %v; want 1, nil", n, err)
	}
	e, ok := r.Get("snap")
	if !ok {
		t.Fatal("stem-keyed entry missing")
	}
	if !strings.HasPrefix(e.Origin, "file:") {
		t.Fatalf("origin = %q, want file: prefix", e.Origin)
	}

	// An unreadable file fails the whole load — no half-served
	// registry.
	if err := os.WriteFile(filepath.Join(dir, "junk.txt"), []byte("not a graph\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRegistry().LoadDir(dir); err == nil {
		t.Fatal("corrupt file did not fail LoadDir")
	}
}

func TestRegistryLoadDirMapped(t *testing.T) {
	dir := t.TempDir()
	d, err := datasets.ByName("physics-1")
	if err != nil {
		t.Fatal(err)
	}
	g := d.Generate(0.002, 1)
	if err := graphio.SaveFile(filepath.Join(dir, "snap.mixg"), g); err != nil {
		t.Fatal(err)
	}
	// A gzip snapshot exercises the heap fallback inside the mapped
	// loader.
	if err := graphio.SaveFile(filepath.Join(dir, "zsnap.mixg.gz"), g); err != nil {
		t.Fatal(err)
	}

	heap := NewRegistry()
	if _, err := heap.LoadDir(dir); err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	n, err := r.LoadDirMapped(dir)
	if err != nil || n != 2 {
		t.Fatalf("LoadDirMapped = %d, %v; want 2, nil", n, err)
	}
	for _, name := range []string{"snap", "zsnap"} {
		he, _ := heap.Get(name)
		me, ok := r.Get(name)
		if !ok {
			t.Fatalf("%s missing from mapped registry", name)
		}
		// Identical hashes ⇒ the mapped path serves the same graph.
		if he.Hash != me.Hash {
			t.Fatalf("%s: mapped hash %s != heap hash %s", name, me.Hash, he.Hash)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
}
