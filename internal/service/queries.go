package service

import (
	"bytes"
	"context"
	"fmt"
	"math/rand/v2"
	"sort"

	"mixtime/internal/api"
	"mixtime/internal/core"
	"mixtime/internal/distmix"
	_ "mixtime/internal/experiments" // registers the experiment drivers for OpExperiment
	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/runner"
	"mixtime/internal/spectral"
	"mixtime/internal/sybil"
	"mixtime/internal/telemetry"
)

// solve dispatches one validated request to its op implementation.
// Every implementation derives all randomness from Params.Seed, so
// equal fingerprints really do denote interchangeable results — the
// invariant the cache replays on.
func solve(ctx context.Context, req api.Request, e *Entry, col *telemetry.Collector) (*api.Response, error) {
	resp := &api.Response{
		SchemaVersion: api.SchemaVersion,
		Op:            req.Op,
		Graph:         req.Graph,
		Experiment:    req.Experiment,
	}
	p := req.Params.WithDefaults()
	var err error
	switch req.Op {
	case api.OpSLEM:
		resp.SLEM, err = solveSLEM(ctx, p, e, col)
	case api.OpBounds:
		resp.Bounds, err = solveBounds(ctx, p, e, col)
	case api.OpCDF:
		resp.CDF, err = solveCDF(ctx, p, e, col)
	case api.OpAdmission:
		resp.Admission, err = solveAdmission(ctx, p, e)
	case api.OpDistMix:
		resp.DistMix, err = solveDistMix(ctx, p, e, col)
	case api.OpExperiment:
		resp.Document, err = solveExperiment(ctx, req.Experiment, p, col)
	default:
		err = fmt.Errorf("service: unknown op %q", req.Op)
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// estimate runs the requested SLEM solver on the entry's component.
func estimate(ctx context.Context, p api.Params, e *Entry, col *telemetry.Collector) (*spectral.Estimate, error) {
	opt := spectral.Options{
		Tol:       p.SpectralTol,
		Seed:      p.Seed,
		Workers:   p.Workers,
		Collector: col,
	}
	if p.Method == api.MethodPower {
		return spectral.SLEMPowerContext(ctx, e.Graph, opt)
	}
	return spectral.SLEMContext(ctx, e.Graph, opt)
}

func slemResult(est *spectral.Estimate, p api.Params, e *Entry) api.SLEMResult {
	return api.SLEMResult{
		Mu:         est.Mu,
		Lambda2:    est.Lambda2,
		LambdaN:    est.LambdaN,
		Iterations: est.Iterations,
		Converged:  est.Converged,
		Method:     p.Method,
		Nodes:      e.Graph.NumNodes(),
		Edges:      e.Graph.NumEdges(),
	}
}

func solveSLEM(ctx context.Context, p api.Params, e *Entry, col *telemetry.Collector) (*api.SLEMResult, error) {
	est, err := estimate(ctx, p, e, col)
	if err != nil {
		return nil, err
	}
	r := slemResult(est, p, e)
	return &r, nil
}

func solveBounds(ctx context.Context, p api.Params, e *Entry, col *telemetry.Collector) (*api.BoundsResult, error) {
	est, err := estimate(ctx, p, e, col)
	if err != nil {
		return nil, err
	}
	n := e.Graph.NumNodes()
	rows := make([]api.BoundRow, len(p.EpsList))
	for i, eps := range p.EpsList {
		rows[i] = api.BoundRow{
			Eps:   eps,
			Lower: spectral.MixingLowerBound(est.Mu, eps),
			Upper: spectral.MixingUpperBound(est.Mu, eps, n),
		}
	}
	return &api.BoundsResult{
		SLEM: slemResult(est, p, e),
		Rows: rows,
		LogN: spectral.FastMixingWalkLength(n),
	}, nil
}

func solveCDF(ctx context.Context, p api.Params, e *Entry, col *telemetry.Collector) (*api.CDFResult, error) {
	// The entry's graph is already the largest component, so KeepWhole
	// skips a redundant extraction.
	m, err := core.MeasureContext(ctx, e.Graph, core.Options{
		Sources:      p.Sources,
		MaxWalk:      p.MaxWalk,
		Seed:         p.Seed,
		SkipSpectral: true,
		KeepWhole:    true,
		Workers:      p.Workers,
		BlockSize:    p.BlockSize,
		Collector:    col,
	})
	if err != nil {
		return nil, err
	}
	sampledT, complete := markov.MixingTime(m.Traces, p.Eps)
	// First crossings of ε, per source that mixed; the CDF denominator
	// stays the full sample so an incomplete run visibly plateaus
	// below 1.
	firsts := make([]int, 0, len(m.Traces))
	for _, tr := range m.Traces {
		if t, ok := tr.MixingTime(p.Eps); ok {
			firsts = append(firsts, t)
		}
	}
	sort.Ints(firsts)
	var points []api.CDFPoint
	var avg float64
	total := len(m.Traces)
	for i, t := range firsts {
		avg += float64(t)
		if i+1 < len(firsts) && firsts[i+1] == t {
			continue
		}
		points = append(points, api.CDFPoint{T: t, Frac: float64(i+1) / float64(total)})
	}
	if len(firsts) > 0 {
		avg /= float64(len(firsts))
	}
	return &api.CDFResult{
		Eps:      p.Eps,
		Sources:  total,
		MaxWalk:  p.MaxWalk,
		Nodes:    e.Graph.NumNodes(),
		Edges:    e.Graph.NumEdges(),
		SampledT: sampledT,
		Complete: complete,
		AvgT:     avg,
		Points:   points,
	}, nil
}

// solveDistMix runs the simulated distributed estimator. The payload's
// Tau/LocalTau fields depend only on (seed, sources, eps, dist_walks,
// dist_rounds) — never on dist_shards or scheduling — which is the
// invariant that lets dist_shards stay out of the fingerprint while
// the communication diagnostics ride along as solve metadata.
func solveDistMix(ctx context.Context, p api.Params, e *Entry, col *telemetry.Collector) (*api.DistMixResult, error) {
	res, err := distmix.EstimateMixingTime(ctx, e.Graph, distmix.Options{
		Shards:       p.DistShards,
		WalksPerNode: p.DistWalks,
		MaxRounds:    p.DistRounds,
		Eps:          p.Eps,
		Sources:      p.Sources,
		Seed:         p.Seed,
		Collector:    col,
	})
	if err != nil {
		return nil, err
	}
	return &api.DistMixResult{
		Eps:              res.Eps,
		Sources:          len(res.Sources),
		WalksPerNode:     res.WalksPerNode,
		Walks:            res.Walks,
		Shards:           res.Shards,
		MaxRounds:        p.DistRounds,
		Lazy:             res.Lazy,
		Tau:              res.Tau,
		Complete:         res.Complete,
		LocalTau:         res.LocalTau,
		LocalComplete:    res.LocalComplete,
		NoiseFloor:       res.NoiseFloor,
		Rounds:           res.Stats.Rounds,
		Messages:         res.Stats.Messages,
		OffShardMessages: res.Stats.OffShardMessages,
		OnShardBytes:     res.Stats.OnShardBytes,
		OffShardBytes:    res.Stats.OffShardBytes,
		Nodes:            e.Graph.NumNodes(),
		Edges:            e.Graph.NumEdges(),
	}, nil
}

func solveAdmission(ctx context.Context, p api.Params, e *Entry) (*api.AdmissionResult, error) {
	g := e.Graph
	proto, err := sybil.NewProtocol(g, sybil.Config{W: p.MaxWalk, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	// Sample the verifier and suspect set from the request seed: same
	// seed, same admission run. Routes are the expensive part, so a
	// context check here suffices before committing to them.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(p.Seed, 0x5b11))
	verifier := graph.NodeID(rng.IntN(g.NumNodes()))
	suspects := sybil.AllHonest(g, verifier)
	rng.Shuffle(len(suspects), func(i, j int) {
		suspects[i], suspects[j] = suspects[j], suspects[i]
	})
	if len(suspects) > p.Sources {
		suspects = suspects[:p.Sources]
	}
	res := proto.Verify(verifier, suspects)
	return &api.AdmissionResult{
		Verifier:        int64(verifier),
		Suspects:        len(suspects),
		Accepted:        res.NumAccepted,
		AcceptRate:      res.AcceptRate(),
		NoIntersection:  res.NoIntersection,
		BalanceRejected: res.BalanceRejected,
		R:               proto.Config().R,
		W:               proto.Config().W,
		Nodes:           g.NumNodes(),
		Edges:           g.NumEdges(),
	}, nil
}

// solveExperiment runs one registered experiment through the same
// runner cmd/paperfigs uses and returns its JSON document verbatim —
// the acceptance invariant that a daemon experiment response and a
// `paperfigs -json` artifact are the same bytes.
func solveExperiment(ctx context.Context, id string, p api.Params, col *telemetry.Collector) ([]byte, error) {
	cfg := runner.ConfigFromParams(p)
	cfg.Collector = col
	r := &runner.Runner{Jobs: 1}
	report, err := r.Run(ctx, cfg, id)
	if err != nil {
		return nil, err
	}
	if len(report.Experiments) != 1 {
		return nil, fmt.Errorf("service: experiment %q resolved to %d runs", id, len(report.Experiments))
	}
	exp := report.Experiments[0]
	if exp.Err != nil {
		return nil, exp.Err
	}
	var buf bytes.Buffer
	if err := exp.Result.JSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// resolveExperiment canonicalizes an experiment key (ID or legacy
// name) to its registered ID, so "whanau" and "X3" share a
// fingerprint.
func resolveExperiment(key string) (string, error) {
	d, ok := runner.Default().Resolve(key)
	if !ok {
		return "", fmt.Errorf("service: unknown experiment %q", key)
	}
	return d.ID, nil
}
