package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mixtime/internal/api"
	"mixtime/internal/runner"
	"mixtime/internal/telemetry"
)

// tinyParams is a configuration small enough for unit tests yet large
// enough to exercise every solver.
func tinyParams() api.Params {
	return api.Params{
		Scale:       0.0002,
		Seed:        1,
		Sources:     25,
		MaxWalk:     120,
		SpectralTol: 1e-6,
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server, *api.Client) {
	t.Helper()
	reg := NewRegistry()
	if _, err := reg.AddDataset("physics-1", 0.002, 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	s, err := New(ctx, reg, Config{Collector: telemetry.New()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	c := api.NewClient(ts.URL)
	return s, ts, c
}

// TestQueryCacheAndStats drives the acceptance check end to end: the
// same query twice, the second served from cache with an identical
// payload and no additional solve in the /stats counters.
func TestQueryCacheAndStats(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	req := api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()}

	first, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first query reported cache_hit")
	}
	if first.SLEM == nil || first.SLEM.Mu <= 0 || first.SLEM.Mu >= 1 {
		t.Fatalf("implausible SLEM payload: %+v", first.SLEM)
	}
	second, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second identical query missed the cache")
	}
	if first.Fingerprint == "" || first.Fingerprint != second.Fingerprint {
		t.Fatalf("fingerprints differ: %q vs %q", first.Fingerprint, second.Fingerprint)
	}

	// Byte-identical modulo the per-request envelope: normalize the
	// fields that legitimately differ and compare the rest.
	a, b := *first, *second
	a.CacheHit, b.CacheHit = false, false
	a.ElapsedNS, b.ElapsedNS = 0, 0
	ab, _ := json.Marshal(&a)
	bb, _ := json.Marshal(&b)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("cache hit payload differs from the miss:\n%s\nvs\n%s", ab, bb)
	}

	stats, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	counters := stats.Telemetry.Counters
	if got := counters["service_solves"]; got != 1 {
		t.Fatalf("service_solves = %d, want 1 (repeat must not re-solve)", got)
	}
	if got := counters["service_cache_hits"]; got != 1 {
		t.Fatalf("service_cache_hits = %d, want 1", got)
	}
	if got := counters["service_requests"]; got != 2 {
		t.Fatalf("service_requests = %d, want 2", got)
	}
	if stats.Graphs != 1 || stats.CacheEntries != 1 {
		t.Fatalf("stats occupancy = %d graphs / %d entries, want 1/1",
			stats.Graphs, stats.CacheEntries)
	}
}

// TestWorkersDoNotSplitTheCache pins the fingerprint exclusion:
// requests differing only in byte-identity knobs share one solve.
func TestWorkersDoNotSplitTheCache(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	req := api.Request{Op: api.OpSLEM, Graph: "physics-1", Params: tinyParams()}
	if _, err := c.Query(ctx, req); err != nil {
		t.Fatal(err)
	}
	req.Params.Workers = 1
	req.Params.BlockSize = 16
	resp, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("workers/block_size variation split the cache")
	}
}

// TestEveryOp smoke-runs each graph op once over HTTP.
func TestEveryOp(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	for _, op := range []string{api.OpSLEM, api.OpBounds, api.OpCDF, api.OpAdmission, api.OpDistMix} {
		p := tinyParams()
		if op == api.OpCDF {
			// physics-1 mixes slowly (that is the paper's point); give
			// the traces room to cross ε.
			p.MaxWalk = 2000
			p.Eps = 0.25
		}
		if op == api.OpDistMix {
			// Same slow mixer: a matching round budget, fewer sources
			// and walkers to keep the walker flood test-sized.
			p.Eps = 0.25
			p.Sources = 5
			p.DistWalks = 16
			p.DistRounds = 2000
		}
		resp, err := c.Query(ctx, api.Request{Op: op, Graph: "physics-1", Params: p})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		switch op {
		case api.OpSLEM:
			if resp.SLEM == nil {
				t.Fatalf("%s: missing payload", op)
			}
		case api.OpBounds:
			if resp.Bounds == nil || len(resp.Bounds.Rows) != len(api.DefaultEpsList()) {
				t.Fatalf("%s: bad payload %+v", op, resp.Bounds)
			}
		case api.OpCDF:
			if resp.CDF == nil || len(resp.CDF.Points) == 0 || resp.CDF.Sources != 25 {
				t.Fatalf("%s: bad payload %+v", op, resp.CDF)
			}
		case api.OpAdmission:
			if resp.Admission == nil || resp.Admission.Suspects == 0 {
				t.Fatalf("%s: bad payload %+v", op, resp.Admission)
			}
		case api.OpDistMix:
			if resp.DistMix == nil || !resp.DistMix.Complete || resp.DistMix.Tau <= 0 {
				t.Fatalf("%s: bad payload %+v", op, resp.DistMix)
			}
			if resp.DistMix.OffShardMessages == 0 {
				t.Fatalf("%s: no off-shard traffic across %d shards",
					op, resp.DistMix.Shards)
			}
		}
	}
}

// TestDistShardsDoNotSplitTheCache pins the PR 7 fingerprint
// exclusion end to end: the distmix estimate is shard-count
// invariant, so requests differing only in dist_shards must share
// one cached solve.
func TestDistShardsDoNotSplitTheCache(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	p := tinyParams()
	p.Eps = 0.25
	p.Sources = 3
	p.DistWalks = 8
	p.DistRounds = 2000
	req := api.Request{Op: api.OpDistMix, Graph: "physics-1", Params: p}
	first, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	req.Params.DistShards = 32
	resp, err := c.Query(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Fatal("dist_shards variation split the cache")
	}
	if resp.DistMix.Tau != first.DistMix.Tau {
		t.Fatalf("cached τ %d differs from solve τ %d", resp.DistMix.Tau, first.DistMix.Tau)
	}
}

// TestExperimentMatchesPaperfigs is the schema-unification acceptance
// check: the daemon's OpExperiment response carries byte-for-byte the
// JSON document `paperfigs -json` writes for the same experiment and
// configuration.
func TestExperimentMatchesPaperfigs(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	p := tinyParams()

	resp, err := c.Query(ctx, api.Request{Op: api.OpExperiment, Experiment: "whanau", Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Experiment != "X3" {
		t.Fatalf("legacy name not canonicalized: experiment = %q, want X3", resp.Experiment)
	}

	// What cmd/paperfigs -json writes: the registered experiment run
	// through the same runner with the same bridged config.
	r := &runner.Runner{Jobs: 1}
	report, err := r.Run(ctx, runner.ConfigFromParams(p), "X3")
	if err != nil {
		t.Fatal(err)
	}
	exp := report.Experiments[0]
	if exp.Err != nil {
		t.Fatal(exp.Err)
	}
	var buf bytes.Buffer
	if err := exp.Result.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The envelope encoder re-indents the embedded document on the
	// wire, so compare the whitespace-free forms: same fields, same
	// values, same order.
	var daemon, artifact bytes.Buffer
	if err := json.Compact(&daemon, resp.Document); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&artifact, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(daemon.Bytes(), artifact.Bytes()) {
		t.Fatalf("daemon document != paperfigs -json artifact:\n--- daemon ---\n%s\n--- paperfigs ---\n%s",
			daemon.Bytes(), artifact.Bytes())
	}
}

// TestRequestValidation checks the error surface: status codes and
// decodable error envelopes.
func TestRequestValidation(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()
	cases := []struct {
		name   string
		req    api.Request
		status string
	}{
		{"missing op", api.Request{Graph: "physics-1"}, "400"},
		{"unknown op", api.Request{Op: "eigensmash", Graph: "physics-1"}, "400"},
		{"unknown graph", api.Request{Op: api.OpSLEM, Graph: "orkut-prime"}, "404"},
		{"unknown experiment", api.Request{Op: api.OpExperiment, Experiment: "F99"}, "404"},
		{"bad schema version", api.Request{SchemaVersion: 99, Op: api.OpSLEM, Graph: "physics-1"}, "400"},
	}
	for _, tc := range cases {
		resp, err := c.Query(ctx, tc.req)
		if err == nil {
			t.Fatalf("%s: no error", tc.name)
		}
		if !strings.Contains(err.Error(), tc.status) {
			t.Fatalf("%s: err = %v, want status %s", tc.name, err, tc.status)
		}
		if resp == nil || resp.Error == "" {
			t.Fatalf("%s: error body not decodable: %+v", tc.name, resp)
		}
	}

	hres, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	hres.Body.Close()
	if hres.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query = %d, want 405", hres.StatusCode)
	}
}

// TestGraphsEndpoint checks the registry listing.
func TestGraphsEndpoint(t *testing.T) {
	_, _, c := newTestServer(t)
	gs, err := c.Graphs(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(gs.Graphs) != 1 || gs.Graphs[0].Name != "physics-1" {
		t.Fatalf("graphs = %+v, want exactly physics-1", gs.Graphs)
	}
	g := gs.Graphs[0]
	if g.Hash == "" || g.Nodes < 2 || g.Edges < 1 || !strings.HasPrefix(g.Origin, "dataset:") {
		t.Fatalf("implausible listing entry: %+v", g)
	}
}

// TestDrainRejectsNewRequests checks graceful shutdown semantics:
// after Drain, health flips to 503 and queries are rejected.
func TestDrainRejectsNewRequests(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		s.Drain()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned with no requests in flight")
	}
	if err := c.Healthz(ctx); err == nil {
		t.Fatal("healthz still 200 while draining")
	}
	if _, err := c.Query(ctx, api.Request{Op: api.OpSLEM, Graph: "physics-1"}); err == nil ||
		!strings.Contains(err.Error(), "503") {
		t.Fatalf("query while draining: err = %v, want 503", err)
	}
}
