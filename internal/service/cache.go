package service

import (
	"context"
	"log"
	"sync"
	"time"

	"mixtime/internal/api"
	"mixtime/internal/telemetry"
)

// Outcomes of a cache lookup, mirrored into the service_* telemetry
// counters.
const (
	outcomeHit  = "hit"  // completed entry, answered in O(lookup)
	outcomeJoin = "join" // deduplicated onto an in-flight identical solve
	outcomeMiss = "miss" // spawned the solve
)

// cache is the fingerprint-keyed result cache with singleflight
// dedup: N concurrent identical queries trigger one solve, completed
// results replay from memory, and errors are never cached.
//
// The solve runs detached from any single requester — its context
// descends from the server lifecycle, not from the request that
// happened to arrive first — so one waiter cancelling (or timing out)
// never poisons the result the others are waiting for. Waiters are
// refcounted: when the last one abandons an in-flight solve, the
// solve itself is cancelled and the entry forgotten, so nobody pays
// for work nobody wants.
//
// With a diskStore attached, completed results are also written
// through to disk and reloaded at the next startup (warmLoad), so the
// cache survives a crash: eviction — FIFO or mutation-triggered —
// removes the persisted file along with the memory entry.
type cache struct {
	base    context.Context // server lifecycle: solves die with the daemon
	timeout time.Duration   // per-solve cap (0 = none)
	col     *telemetry.Collector
	max     int // completed entries kept; oldest evicted first

	store *diskStore // optional write-through persistence (nil = memory only)

	mu      sync.Mutex
	entries map[string]*entry
	order   []string // completed fingerprints, oldest first
}

// entry is one fingerprint's slot: in flight until done closes,
// completed (and cacheable) afterwards iff err is nil.
type entry struct {
	fp      string
	tag     string // graph name for targeted eviction ("" = untagged)
	hash    string // graph content identity for persistence validation
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int // guarded by cache.mu; meaningful only in flight
	resp    *api.Response
	err     error
}

func newCache(base context.Context, timeout time.Duration, max int, col *telemetry.Collector) *cache {
	if max <= 0 {
		max = 4096
	}
	return &cache{
		base:    base,
		timeout: timeout,
		col:     col,
		max:     max,
		entries: map[string]*entry{},
	}
}

// attachStore enables write-through persistence. Call before the
// cache serves requests (it is a construction-time decision).
func (c *cache) attachStore(s *diskStore) { c.store = s }

// warmLoad populates the cache from the attached store: every
// persisted entry keep approves becomes a completed in-memory entry,
// oldest first so FIFO eviction order survives the restart. Entries
// beyond the cache bound are dropped from disk rather than loaded.
// Returns the number of entries loaded.
func (c *cache) warmLoad(keep func(tag, hash string) bool) (int, error) {
	if c.store == nil {
		return 0, nil
	}
	list, err := c.store.load(keep)
	if err != nil {
		return 0, err
	}
	if len(list) > c.max {
		for _, pe := range list[:len(list)-c.max] {
			c.store.remove(pe.Fingerprint)
		}
		list = list[len(list)-c.max:]
	}
	done := make(chan struct{})
	close(done)
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, pe := range list {
		if _, exists := c.entries[pe.Fingerprint]; exists {
			continue
		}
		c.entries[pe.Fingerprint] = &entry{
			fp:     pe.Fingerprint,
			tag:    pe.Tag,
			hash:   pe.GraphHash,
			done:   done,
			cancel: func() {},
			resp:   pe.Response,
		}
		c.order = append(c.order, pe.Fingerprint)
		n++
	}
	return n, nil
}

// len returns the number of live entries (completed + in flight).
func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// do answers fingerprint fp: from the completed cache, by joining an
// in-flight identical solve, or by spawning solve. The returned
// outcome says which. ctx governs only this caller's wait; the solve
// owns its own lifecycle. tag names the graph the result depends on
// ("" for graph-independent queries) — evictTag invalidates by it —
// and hash is the graph's content identity, recorded so persisted
// entries can be validated against the registry on reload.
func (c *cache) do(ctx context.Context, fp, tag, hash string, solve func(context.Context) (*api.Response, error)) (*api.Response, string, error) {
	c.mu.Lock()
	if e, ok := c.entries[fp]; ok {
		select {
		case <-e.done:
			// Completed. Errors are never left in the map, so this is a
			// replayable success.
			c.mu.Unlock()
			c.col.Add(telemetry.ServiceCacheHits, 1)
			return e.resp, outcomeHit, nil
		default:
			e.waiters++
			c.mu.Unlock()
			c.col.Add(telemetry.ServiceJoins, 1)
			resp, err := c.wait(ctx, e)
			return resp, outcomeJoin, err
		}
	}
	sctx, cancel := context.WithCancel(c.base)
	if c.timeout > 0 {
		sctx, cancel = context.WithTimeout(c.base, c.timeout)
	}
	e := &entry{fp: fp, tag: tag, hash: hash, done: make(chan struct{}), cancel: cancel, waiters: 1}
	c.entries[fp] = e
	c.mu.Unlock()
	c.col.Add(telemetry.ServiceCacheMisses, 1)
	c.col.Add(telemetry.ServiceSolves, 1)
	go c.run(sctx, e, solve)
	resp, err := c.wait(ctx, e)
	return resp, outcomeMiss, err
}

// run executes the solve and commits the outcome: successes stay
// cached (with FIFO eviction, write-through to the store when one is
// attached), failures free the slot so the next identical request
// retries.
func (c *cache) run(sctx context.Context, e *entry, solve func(context.Context) (*api.Response, error)) {
	resp, err := solve(sctx)
	e.cancel()
	var evicted []string
	owned := false
	c.mu.Lock()
	e.resp, e.err = resp, err
	close(e.done)
	if err != nil {
		// Only forget the entry if it is still ours: a failed solve may
		// linger past its eviction or replacement.
		if c.entries[e.fp] == e {
			delete(c.entries, e.fp)
		}
	} else {
		owned = c.entries[e.fp] == e
		c.order = append(c.order, e.fp)
		for len(c.order) > c.max {
			old := c.order[0]
			c.order = c.order[1:]
			if oe, ok := c.entries[old]; ok && oe != e {
				delete(c.entries, old)
				evicted = append(evicted, old)
			}
		}
	}
	c.mu.Unlock()
	if c.store == nil {
		return
	}
	for _, fp := range evicted {
		c.store.remove(fp)
	}
	// Persist only results still in the map: a concurrent mutation may
	// have evicted the entry between commit and here, and re-creating
	// its file would resurrect a superseded answer. (Stamped mutable
	// entries are additionally dropped wholesale on reload.)
	if err == nil && owned {
		if perr := c.store.save(e.fp, e.tag, e.hash, resp); perr != nil {
			log.Printf("service: write-through failed: %v", perr)
		} else {
			c.col.Add(telemetry.ServicePersistWrites, 1)
		}
	}
}

// evictTag removes every completed entry tagged with the graph name —
// the cache half of the mutation rule: a bumped version changes the
// fingerprint of all future queries, and evictTag reclaims the memory
// the unreachable old-version results occupy (and their persisted
// files, when a store is attached). In-flight solves are left to
// finish (their results are keyed by the old fingerprint, so no
// post-mutation query can ever receive them); whatever they cache is
// swept by the next eviction or FIFO pressure. Returns the number of
// entries evicted.
func (c *cache) evictTag(tag string) int {
	if tag == "" {
		return 0
	}
	var evicted []string
	c.mu.Lock()
	for fp, e := range c.entries {
		if e.tag != tag {
			continue
		}
		select {
		case <-e.done:
			if e.err == nil {
				delete(c.entries, fp)
				evicted = append(evicted, fp)
			}
		default: // in flight: leave it to complete against its old key
		}
	}
	n := len(evicted)
	if n > 0 {
		keep := c.order[:0]
		for _, fp := range c.order {
			if _, ok := c.entries[fp]; ok {
				keep = append(keep, fp)
			}
		}
		c.order = keep
		c.col.Add(telemetry.ServiceEvictions, int64(n))
	}
	c.mu.Unlock()
	if c.store != nil {
		for _, fp := range evicted {
			c.store.remove(fp)
		}
	}
	return n
}

// wait blocks until the entry completes or the caller's ctx dies. A
// dying waiter decrements the refcount; the last one out cancels the
// solve and forgets the entry.
func (c *cache) wait(ctx context.Context, e *entry) (*api.Response, error) {
	select {
	case <-e.done:
		return e.resp, e.err
	case <-ctx.Done():
	}
	c.mu.Lock()
	select {
	case <-e.done:
		// Completed while we were giving up — take the result after all.
		c.mu.Unlock()
		return e.resp, e.err
	default:
	}
	e.waiters--
	if e.waiters <= 0 {
		e.cancel()
		if c.entries[e.fp] == e {
			delete(c.entries, e.fp)
		}
	}
	c.mu.Unlock()
	return nil, ctx.Err()
}
