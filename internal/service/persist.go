package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"mixtime/internal/api"
)

// diskStore is the crash-safe persistence layer behind the result
// cache: one JSON file per completed fingerprint, written with the
// temp+rename discipline internal/checkpoint established, so a kill
// mid-write leaves a miss, never a torn entry. It turns the in-memory
// cache into one that survives a SIGKILL: the daemon reloads every
// still-valid entry at startup and answers repeated queries without a
// single new solve.
type diskStore struct {
	dir string
}

// persistedEntry is the on-disk envelope around one cached response.
// GraphHash pins the graph identity the result was computed against,
// so reload can drop entries whose graph changed (or whose identity
// was version-stamped by a mutable graph — mutation epochs restart at
// zero after a reboot, making every stamped entry unreplayable).
type persistedEntry struct {
	SchemaVersion int           `json:"schema_version"`
	Fingerprint   string        `json:"fingerprint"`
	Tag           string        `json:"tag,omitempty"`
	GraphHash     string        `json:"graph_hash,omitempty"`
	SavedUnixNS   int64         `json:"saved_unix_ns"`
	Response      *api.Response `json:"response"`
}

// openDiskStore creates (if needed) and returns the store rooted at
// dir.
func openDiskStore(dir string) (*diskStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("service: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: cache dir: %w", err)
	}
	return &diskStore{dir: dir}, nil
}

func (s *diskStore) path(fp string) string {
	return filepath.Join(s.dir, fp+".json")
}

// save persists one completed response under its fingerprint. The
// entry is written to a sibling temp file and renamed into place, so
// a crash mid-save cannot leave a half-written entry that load would
// trust.
func (s *diskStore) save(fp, tag, hash string, resp *api.Response) error {
	raw, err := json.Marshal(&persistedEntry{
		SchemaVersion: api.SchemaVersion,
		Fingerprint:   fp,
		Tag:           tag,
		GraphHash:     hash,
		SavedUnixNS:   time.Now().UnixNano(),
		Response:      resp,
	})
	if err != nil {
		return fmt.Errorf("service: persist %s: %w", fp, err)
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("service: persist %s: %w", fp, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("service: persist %s: %w", fp, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("service: persist %s: %w", fp, err)
	}
	if err := os.Rename(tmp.Name(), s.path(fp)); err != nil {
		return fmt.Errorf("service: persist %s: %w", fp, err)
	}
	return nil
}

// remove deletes the persisted entry for fp, if any: the disk half of
// eviction.
func (s *diskStore) remove(fp string) {
	os.Remove(s.path(fp)) //nolint:errcheck // a missing file is already removed
}

// load reads every persisted entry, oldest first by save stamp,
// keeping only those keep approves. Rejected, torn, stale-schema and
// leftover temp files are deleted on the spot — the store never
// accumulates entries it would refuse again next boot.
func (s *diskStore) load(keep func(tag, hash string) bool) ([]*persistedEntry, error) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("service: cache dir: %w", err)
	}
	var out []*persistedEntry
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(s.dir, de.Name())
		if !strings.HasSuffix(de.Name(), ".json") {
			// Leftover temp file from a crashed save.
			os.Remove(path)
			continue
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var pe persistedEntry
		if json.Unmarshal(raw, &pe) != nil ||
			pe.SchemaVersion != api.SchemaVersion ||
			pe.Response == nil ||
			pe.Fingerprint != strings.TrimSuffix(de.Name(), ".json") ||
			(keep != nil && !keep(pe.Tag, pe.GraphHash)) {
			os.Remove(path)
			continue
		}
		out = append(out, &pe)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].SavedUnixNS < out[j].SavedUnixNS })
	return out, nil
}
