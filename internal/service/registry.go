package service

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"mixtime/internal/api"
	"mixtime/internal/datasets"
	"mixtime/internal/evolve"
	"mixtime/internal/graph"
	"mixtime/internal/graphio"
	"mixtime/internal/telemetry"
)

// Entry is one graph the daemon serves queries against: the measured
// component (LCC — mixing time is undefined on disconnected graphs),
// its content hash, and where it came from.
type Entry struct {
	Name string
	// Graph is the largest connected component of the loaded graph.
	Graph *graph.Graph
	// Hash is the sha256 content identity of the component — the graph
	// part of every query fingerprint, so the cache key survives
	// daemon restarts and renames but never aliases distinct graphs.
	// Mutable entries stamp views with "<sha256>@v<version>" instead:
	// the registration hash plus the monotone mutation epoch is a
	// content identity too (versions are never reused), without an
	// O(m) rehash per mutation.
	Hash string
	// Origin records provenance: "file:<path>" or
	// "dataset:<name>:<scale>".
	Origin string

	// mut, when non-nil, makes this a live entry: queries resolve
	// through View to a frozen per-epoch snapshot and mutations land
	// via MakeMutable's wrapper. baseHash keeps the registration-time
	// content hash the version stamp decorates.
	mut      *evolve.MutableGraph
	baseHash string

	// viewMu guards the one-deep view cache: repeated queries against
	// an unchanged epoch reuse the same LCC extraction.
	viewMu  sync.Mutex
	viewVer evolve.Version
	view    *Entry
}

// Mutable returns the live graph behind the entry, or nil for the
// (default) immutable entries.
func (e *Entry) Mutable() *evolve.MutableGraph { return e.mut }

// View resolves the entry to the immutable snapshot queries must run
// against. For static entries that is the entry itself; for mutable
// ones it is a frozen per-epoch Entry whose Graph is the current
// epoch's largest component and whose Hash carries the version stamp —
// the rule that makes every cached result evict on mutation: a new
// epoch means a new hash, a new hash means a new fingerprint, and the
// old fingerprints' entries are evicted eagerly by the mutation
// handler. The view is cached one-deep per entry, so an unchanged
// epoch pays the LCC extraction once, not per query.
func (e *Entry) View() *Entry {
	if e.mut == nil {
		return e
	}
	g, ver := e.mut.Snapshot()
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	if e.view != nil && e.viewVer == ver {
		return e.view
	}
	lcc := g
	if !graph.IsConnected(g) {
		lcc, _ = graph.LargestComponent(g)
	}
	e.view = &Entry{
		Name:   e.Name,
		Graph:  lcc,
		Hash:   fmt.Sprintf("%s@v%d", e.baseHash, ver),
		Origin: e.Origin,
	}
	e.viewVer = ver
	return e.view
}

// Info renders the entry for the /v1/graphs listing.
func (e *Entry) Info() api.GraphInfo {
	v := e.View()
	info := api.GraphInfo{
		Name:   v.Name,
		Nodes:  v.Graph.NumNodes(),
		Edges:  v.Graph.NumEdges(),
		Hash:   v.Hash,
		Origin: v.Origin,
	}
	if e.mut != nil {
		info.Mutable = true
		info.Version = uint64(e.mut.Version())
	}
	return info
}

// Registry maps names to served graphs. It is populated at daemon
// startup (snapshot dir + dataset references) and read-only
// afterwards; the lock only guards the population phase against
// concurrent tests.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	// mapped holds the file mappings backing entries loaded with
	// LoadDirMapped; Close releases them, after which those entries'
	// graphs must not be touched.
	mapped []*graphio.MappedGraph
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]*Entry{}}
}

// AddGraph registers g under name, extracting the largest component
// and hashing it. Duplicate names are rejected — a registry where
// "dblp" could mean two different graphs would poison every cached
// fingerprint downstream.
func (r *Registry) AddGraph(name, origin string, g *graph.Graph) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("service: empty graph name")
	}
	// Connected graphs are served as-is: LargestComponent would copy
	// the whole CSR, which both wastes memory and would sever a
	// memory-mapped graph from its file backing.
	lcc := g
	if !graph.IsConnected(g) {
		lcc, _ = graph.LargestComponent(g)
	}
	if lcc.NumNodes() < 2 {
		return nil, fmt.Errorf("service: graph %q: largest component too small to measure", name)
	}
	e := &Entry{Name: name, Graph: lcc, Hash: hashGraph(lcc), Origin: origin}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		return nil, fmt.Errorf("service: graph %q already registered", name)
	}
	r.entries[name] = e
	return e, nil
}

// AddDataset generates a Table-1 synthetic substitute at the given
// scale and seed and registers it under the dataset's name.
func (r *Registry) AddDataset(name string, scale float64, seed uint64) (*Entry, error) {
	d, err := datasets.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	if scale <= 0 {
		scale = api.DefaultScale
	}
	g := d.Generate(scale, seed)
	return r.AddGraph(name, fmt.Sprintf("dataset:%s:%v", name, scale), g)
}

// MakeMutable upgrades a registered entry to a live graph accepting
// POST /v1/mutate. The registered component becomes epoch 0; col (may
// be nil) receives the evolve_* churn counters. Like the rest of
// registry population this belongs to startup — call it before the
// entry serves queries.
func (r *Registry) MakeMutable(name string, col *telemetry.Collector) (*Entry, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("service: unknown graph %q", name)
	}
	if e.mut == nil {
		e.baseHash = e.Hash
		e.mut = evolve.NewMutable(e.Graph)
		e.mut.SetCollector(col)
	}
	return e, nil
}

// LoadDir registers every loadable graph file in dir (MIXG snapshots
// and edge lists, ".gz" accepted) under its file stem. Subdirectories
// and unreadable files fail the load: a daemon that silently serves
// half its registry is worse than one that refuses to start.
func (r *Registry) LoadDir(dir string) (int, error) {
	return r.loadDir(dir, false)
}

// LoadDirMapped is LoadDir with uncompressed MIXG v2 snapshots
// memory-mapped instead of read into the heap: the kernel pages
// adjacency in on demand, so a directory of multi-gigabyte snapshots
// starts serving in seconds. Mappings whose graph actually enters the
// registry stay open until Close; inputs the mapping cannot serve
// (edge lists, gzip, v1) load heap-backed exactly as LoadDir would.
// Note the registration hash still touches every edge once, faulting
// the file through page cache — startup I/O is sequential reads, not
// avoided entirely.
func (r *Registry) LoadDirMapped(dir string) (int, error) {
	return r.loadDir(dir, true)
}

func (r *Registry) loadDir(dir string, mapped bool) (int, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("service: graphs dir: %w", err)
	}
	added := 0
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(dir, de.Name())
		var g *graph.Graph
		var mg *graphio.MappedGraph
		if mapped {
			mg, err = graphio.OpenMIXGMapped(path)
			if err == nil {
				g = mg.Graph
			}
		} else {
			g, err = graphio.LoadFile(path)
		}
		if err != nil {
			return added, fmt.Errorf("service: load %s: %w", path, err)
		}
		stem := de.Name()
		for _, ext := range []string{".gz", ".mixg", ".txt", ".edges"} {
			stem = strings.TrimSuffix(stem, ext)
		}
		e, err := r.AddGraph(stem, "file:"+path, g)
		if err != nil {
			if mg != nil {
				mg.Close()
			}
			return added, err
		}
		if mg != nil && mg.Mapped() && e.Graph == mg.Graph {
			// The mapping backs a served graph: keep it open.
			r.mu.Lock()
			r.mapped = append(r.mapped, mg)
			r.mu.Unlock()
		} else if mg != nil {
			// Heap fallback, or AddGraph extracted a component copy —
			// either way the file backing is no longer referenced.
			mg.Close()
		}
		added++
	}
	return added, nil
}

// Close releases any file mappings opened by LoadDirMapped. Graphs
// they backed become invalid; call only once serving has stopped.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var first error
	for _, mg := range r.mapped {
		if err := mg.Close(); err != nil && first == nil {
			first = err
		}
	}
	r.mapped = nil
	return first
}

// Get resolves a graph name.
func (r *Registry) Get(name string) (*Entry, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	return e, ok
}

// Len returns the number of registered graphs.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.entries)
}

// List returns the registry in name order.
func (r *Registry) List() []api.GraphInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]api.GraphInfo, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e.Info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// hashGraph streams the component's node count and edge list into
// sha256. Two graphs share a hash iff they are the same labeled
// graph, which is exactly the identity the cache needs: the CSR
// arrays are a function of the edge set, so hashing edges (not the
// arrays) stays stable across storage-format changes.
func hashGraph(g *graph.Graph) string {
	h := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(g.NumNodes()))
	h.Write(buf[:])
	g.Edges(func(u, v graph.NodeID) bool {
		binary.LittleEndian.PutUint32(buf[:4], uint32(u))
		binary.LittleEndian.PutUint32(buf[4:], uint32(v))
		h.Write(buf[:])
		return true
	})
	return hex.EncodeToString(h.Sum(nil))
}
