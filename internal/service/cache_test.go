package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mixtime/internal/api"
	"mixtime/internal/telemetry"
)

// TestSingleflightCollapses checks the core dedup invariant: any
// number of concurrent identical queries trigger exactly one solve,
// and every caller sees the same bytes.
func TestSingleflightCollapses(t *testing.T) {
	col := telemetry.New()
	c := newCache(context.Background(), 0, 0, col)
	var solves atomic.Int64
	release := make(chan struct{})
	solve := func(context.Context) (*api.Response, error) {
		solves.Add(1)
		<-release
		return &api.Response{Op: api.OpSLEM, SLEM: &api.SLEMResult{Mu: 0.5}}, nil
	}

	const n = 32
	var wg sync.WaitGroup
	responses := make([]*api.Response, n)
	outcomes := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, outcome, err := c.do(context.Background(), "fp", "", "", solve)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			responses[i], outcomes[i] = resp, outcome
		}(i)
	}
	close(release)
	wg.Wait()

	if got := solves.Load(); got != 1 {
		t.Fatalf("solves = %d, want 1 (singleflight must collapse identical queries)", got)
	}
	var first []byte
	misses := 0
	for i, resp := range responses {
		b, err := json.Marshal(resp)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
		} else if !bytes.Equal(first, b) {
			t.Fatalf("caller %d saw different bytes:\n%s\nvs\n%s", i, b, first)
		}
		if outcomes[i] == outcomeMiss {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("misses = %d, want exactly 1 (the solve spawner)", misses)
	}
	if got := col.Count(telemetry.ServiceSolves); got != 1 {
		t.Fatalf("service_solves = %d, want 1", got)
	}

	// A fresh call replays from the completed cache without solving.
	resp, outcome, err := c.do(context.Background(), "fp", "", "", solve)
	if err != nil || outcome != outcomeHit {
		t.Fatalf("replay: outcome=%q err=%v, want hit", outcome, err)
	}
	if b, _ := json.Marshal(resp); !bytes.Equal(b, first) {
		t.Fatalf("cache hit bytes differ from the miss:\n%s\nvs\n%s", b, first)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("solves after replay = %d, want 1", got)
	}
}

// TestCacheErrorsNotCached checks that a failed solve frees its slot:
// the next identical request retries instead of replaying the error.
func TestCacheErrorsNotCached(t *testing.T) {
	c := newCache(context.Background(), 0, 0, telemetry.New())
	boom := errors.New("boom")
	fail := func(context.Context) (*api.Response, error) { return nil, boom }
	if _, _, err := c.do(context.Background(), "fp", "", "", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := c.len(); got != 0 {
		t.Fatalf("entries after failed solve = %d, want 0", got)
	}
	ok := func(context.Context) (*api.Response, error) {
		return &api.Response{Op: api.OpSLEM}, nil
	}
	resp, outcome, err := c.do(context.Background(), "fp", "", "", ok)
	if err != nil || resp == nil || outcome != outcomeMiss {
		t.Fatalf("retry after error: outcome=%q resp=%v err=%v, want a fresh miss", outcome, resp, err)
	}
}

// TestWaiterCancellationDoesNotPoison checks that one waiter
// abandoning an in-flight solve leaves the result intact for the
// others: the solve belongs to the server, not to any requester.
func TestWaiterCancellationDoesNotPoison(t *testing.T) {
	c := newCache(context.Background(), 0, 0, telemetry.New())
	release := make(chan struct{})
	var solves atomic.Int64
	solve := func(sctx context.Context) (*api.Response, error) {
		solves.Add(1)
		select {
		case <-release:
			return &api.Response{Op: api.OpSLEM, SLEM: &api.SLEMResult{Mu: 0.25}}, nil
		case <-sctx.Done():
			return nil, sctx.Err()
		}
	}

	// First caller spawns the solve and blocks.
	started := make(chan struct{})
	survivor := make(chan error, 1)
	go func() {
		close(started)
		resp, _, err := c.do(context.Background(), "fp", "", "", solve)
		if err == nil && (resp == nil || resp.SLEM == nil || resp.SLEM.Mu != 0.25) {
			err = errors.New("survivor got a mangled response")
		}
		survivor <- err
	}()
	<-started
	waitForEntry(t, c, "fp")

	// Second caller joins, then cancels. It must get its own ctx error
	// while the solve keeps running for the survivor.
	ctx, cancel := context.WithCancel(context.Background())
	joined := make(chan error, 1)
	go func() {
		_, outcome, err := c.do(ctx, "fp", "", "", solve)
		if outcome != outcomeJoin {
			err = errors.New("expected to join the in-flight solve, got " + outcome)
		}
		joined <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the join register
	cancel()
	if err := <-joined; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-survivor; err != nil {
		t.Fatalf("surviving waiter: %v", err)
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("solves = %d, want 1", got)
	}
}

// TestLastWaiterCancelsSolve checks the refcount edge: when the only
// waiter gives up, the solve's context dies and the entry is
// forgotten, so nobody pays for work nobody wants.
func TestLastWaiterCancelsSolve(t *testing.T) {
	c := newCache(context.Background(), 0, 0, telemetry.New())
	solveCancelled := make(chan struct{})
	solve := func(sctx context.Context) (*api.Response, error) {
		<-sctx.Done()
		close(solveCancelled)
		return nil, sctx.Err()
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.do(ctx, "fp", "", "", solve)
		done <- err
	}()
	waitForEntry(t, c, "fp")
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-solveCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("solve context was never cancelled after the last waiter left")
	}
	deadline := time.Now().Add(5 * time.Second)
	for c.len() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("entries = %d, want 0 after abandoned solve", c.len())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCacheEviction checks the FIFO bound on completed entries.
func TestCacheEviction(t *testing.T) {
	c := newCache(context.Background(), 0, 2, telemetry.New())
	ok := func(context.Context) (*api.Response, error) {
		return &api.Response{Op: api.OpSLEM}, nil
	}
	for _, fp := range []string{"a", "b", "c"} {
		if _, _, err := c.do(context.Background(), fp, "", "", ok); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.len(); got != 2 {
		t.Fatalf("entries = %d, want 2 (oldest evicted)", got)
	}
	if _, outcome, _ := c.do(context.Background(), "a", "", "", ok); outcome != outcomeMiss {
		t.Fatalf("evicted entry outcome = %q, want miss", outcome)
	}
}

// waitForEntry blocks until fp is registered in the cache (the solve
// spawner holds the lock only briefly; the test must not race it).
func waitForEntry(t *testing.T, c *cache, fp string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		_, ok := c.entries[fp]
		c.mu.Unlock()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("entry %q never appeared", fp)
		}
		time.Sleep(time.Millisecond)
	}
}
