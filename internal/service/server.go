// Package service implements the mixtimed daemon behind cmd/mixtimed:
// a graph registry (MIXG snapshots plus Table-1 synthetic
// substitutes), a bounded worker pool running the mixing-time query
// ops (SLEM, Sinclair bounds, per-source CDFs, SybilLimit admission,
// registered paper experiments), and a fingerprint-keyed result cache
// with singleflight dedup in front of it.
//
// The wire contract lives in internal/api — this package only binds
// those types to graphs, solvers and HTTP. Queries are addressed by
// the sha256 fingerprint of (graph content identity,
// output-determining knobs): identical queries share one solve and
// replay from memory afterwards, knobs that cannot change output
// (workers, block size) are excluded, and a solve belongs to the
// server lifecycle rather than to whichever request started it, so a
// cancelled waiter never poisons the shared result.
//
// The serving plane is overload-hardened (DESIGN.md §14): a bounded
// wait-queue in front of the solve pool sheds overflow with 429 +
// Retry-After instead of queueing goroutines without bound, every
// solve runs under a recover barrier so a poisoned query costs one
// 500 envelope rather than the process, and completed results can be
// written through to a crash-safe on-disk store that warm-loads at
// the next startup.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mixtime/internal/api"
	"mixtime/internal/evolve"
	"mixtime/internal/faults"
	"mixtime/internal/graph"
	"mixtime/internal/runner"
	"mixtime/internal/telemetry"
)

// Config tunes a Server.
type Config struct {
	// PoolSize bounds concurrent solves (0 = GOMAXPROCS). Cache hits
	// and singleflight joins never consume a slot — only actual work
	// queues here.
	PoolSize int
	// MaxQueue bounds how many solves may wait for a pool slot at
	// once; overflow is shed immediately with 429 + Retry-After
	// (0 = 8×pool, negative = no queue: shed whenever the pool is
	// busy).
	MaxQueue int
	// MaxQueueWait caps how long a queued solve waits for a pool slot
	// before being shed with 429 (0 = 1s).
	MaxQueueWait time.Duration
	// CacheMax bounds the completed-result cache; the oldest entries
	// are evicted first (0 = a generous default).
	CacheMax int
	// CacheDir, when set, persists completed results to disk
	// (write-through, temp+rename) and warm-loads them at startup, so
	// cached answers survive a crash or restart.
	CacheDir string
	// SolveTimeout caps any single solve regardless of the requester's
	// deadline (0 = none).
	SolveTimeout time.Duration
	// Injector, when non-nil, arms deterministic fault injection on
	// the solve path (mixtimed -inject) — the chaos switch the
	// containment paths are smoke-tested through.
	Injector *faults.Injector
	// Collector receives the service_* counters and the kernel
	// telemetry from every solve (nil = a private collector).
	Collector *telemetry.Collector
}

// errOverload marks an admission-control rejection: the request was
// shed, not failed — the client should retry after a beat.
var errOverload = errors.New("service: overloaded")

// retryAfter is the hint written on every 429/503 response. Shed
// waves drain within about a second at any realistic solve latency,
// so a finer-grained hint (the header only speaks whole seconds)
// buys nothing.
const retryAfter = "1"

// Server answers mixing-time queries over a fixed graph registry. It
// is constructed once (New), serves via Handler, and is torn down
// with Drain: new requests are rejected while in-flight ones finish.
type Server struct {
	reg       *Registry
	pool      *runner.Pool
	cache     *cache
	col       *telemetry.Collector
	inject    *faults.Injector
	queue     chan struct{}
	queueWait time.Duration
	start     time.Time

	mu         sync.Mutex
	draining   bool
	inflight   sync.WaitGroup
	active     atomic.Int64
	queueDepth atomic.Int64
}

// New builds a Server over the registry. ctx is the server lifecycle:
// when it dies, in-flight solves are cancelled (a solve belongs to
// the daemon, not to the request that happened to start it). The
// error path is the persistent cache: an unusable CacheDir refuses to
// start rather than silently serving memory-only.
func New(ctx context.Context, reg *Registry, cfg Config) (*Server, error) {
	col := cfg.Collector
	if col == nil {
		col = telemetry.New()
	}
	pool := runner.NewPool(cfg.PoolSize)
	maxQueue := cfg.MaxQueue
	if maxQueue == 0 {
		maxQueue = 8 * pool.Size()
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	queueWait := cfg.MaxQueueWait
	if queueWait <= 0 {
		queueWait = time.Second
	}
	s := &Server{
		reg:       reg,
		pool:      pool,
		cache:     newCache(ctx, cfg.SolveTimeout, cfg.CacheMax, col),
		col:       col,
		inject:    cfg.Injector,
		queue:     make(chan struct{}, maxQueue),
		queueWait: queueWait,
		start:     time.Now(),
	}
	if cfg.CacheDir != "" {
		store, err := openDiskStore(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cache.attachStore(store)
		// Reload rule: keep graph-independent results (experiments) and
		// results whose graph is still registered, immutable, and
		// content-identical. Version-stamped mutable-graph entries are
		// always dropped — mutation epochs restart at zero after a
		// reboot, so a stamp from the previous life could alias a
		// different edge set.
		n, err := s.cache.warmLoad(func(tag, hash string) bool {
			if tag == "" {
				return true
			}
			e, ok := reg.Get(tag)
			return ok && e.Mutable() == nil && e.Hash == hash
		})
		if err != nil {
			return nil, err
		}
		col.Add(telemetry.ServiceCacheLoaded, int64(n))
	}
	return s, nil
}

// Collector exposes the server's telemetry for tests and /stats.
func (s *Server) Collector() *telemetry.Collector { return s.col }

// Handler returns the daemon's HTTP surface:
//
//	POST /v1/query   — the unified query endpoint (api.Request/Response)
//	GET  /v1/graphs  — the registry listing
//	GET  /healthz    — 200 while serving, 503 while draining
//	GET  /stats      — counters, pool and cache occupancy
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/mutate", s.handleMutate)
	mux.HandleFunc("/v1/graphs", s.handleGraphs)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// Drain stops admission and waits for in-flight requests: the
// graceful half of shutdown. The HTTP listener is closed by the
// caller (http.Server.Shutdown); Drain makes the rejection explicit
// for requests racing the close.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.inflight.Wait()
}

// enter admits one request unless the server is draining.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// acquireSolveSlot is the admission gate in front of the solve pool:
// a free slot is taken immediately; otherwise the solve enters the
// bounded wait-queue and is shed (errOverload) when the queue is full
// or the queue wait expires. Shed solves fail fast — the whole point
// is that a burst beyond pool+queue capacity costs the daemon a 429
// write, not a parked goroutine.
func (s *Server) acquireSolveSlot(sctx context.Context) (release func(), err error) {
	if s.pool.TryAcquire() {
		return s.pool.Release, nil
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return nil, fmt.Errorf("%w: wait queue full (%d waiting)", errOverload, cap(s.queue))
	}
	s.col.ObserveMax(telemetry.ServiceQueueDepth, s.queueDepth.Add(1))
	defer func() {
		s.queueDepth.Add(-1)
		<-s.queue
	}()
	wctx, cancel := context.WithTimeout(sctx, s.queueWait)
	defer cancel()
	if err := s.pool.Acquire(wctx); err != nil {
		if wctx.Err() != nil && sctx.Err() == nil {
			return nil, fmt.Errorf("%w: no solve slot within %v", errOverload, s.queueWait)
		}
		return nil, err
	}
	return s.pool.Release, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "", errors.New("service: POST only"))
		return
	}
	if !s.enter() {
		w.Header().Set("Retry-After", retryAfter)
		httpError(w, http.StatusServiceUnavailable, "", errors.New("service: draining"))
		return
	}
	defer s.inflight.Done()
	s.col.Add(telemetry.ServiceRequests, 1)
	s.col.ObserveMax(telemetry.MaxInflightRequests, s.active.Add(1))
	defer s.active.Add(-1)

	started := time.Now()
	var req api.Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, req, fmt.Errorf("service: bad request body: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		s.fail(w, http.StatusBadRequest, req, err)
		return
	}

	// Resolve the target before fingerprinting so aliases collapse:
	// the graph name becomes its content hash, a legacy experiment
	// name becomes its canonical ID. Mutable graphs resolve through
	// View() to a frozen per-epoch snapshot, so the fingerprint, the
	// cache entry and the solve all see exactly one version even if
	// mutations land mid-request.
	var entry *Entry
	var graphHash, tag string
	if req.Op == api.OpExperiment {
		id, err := resolveExperiment(req.Experiment)
		if err != nil {
			s.fail(w, http.StatusNotFound, req, err)
			return
		}
		req.Experiment = id
	} else {
		e, ok := s.reg.Get(req.Graph)
		if !ok {
			s.fail(w, http.StatusNotFound, req, fmt.Errorf("service: unknown graph %q", req.Graph))
			return
		}
		entry = e.View()
		graphHash, tag = entry.Hash, entry.Name
	}
	fp := api.Fingerprint(req, graphHash)

	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}

	resp, outcome, err := s.cache.do(ctx, fp, tag, graphHash, func(sctx context.Context) (resp *api.Response, err error) {
		// The pool slot is acquired inside the solve so hits and joins
		// bypass the queue entirely; queueing is charged to the solve's
		// context, not to any single waiter.
		release, err := s.acquireSolveSlot(sctx)
		if err != nil {
			return nil, err
		}
		defer release()
		// Recover barrier: a panic anywhere below — a poisoned graph, a
		// solver bug, an injected fault — becomes an ordinary error on
		// this one entry. The cache never stores errors, so the panic is
		// not cached either: the next identical request re-solves.
		defer func() {
			if v := recover(); v != nil {
				s.col.Add(telemetry.ServicePanics, 1)
				resp = nil
				err = &runner.PanicError{Experiment: req.Op, Value: v, Stack: debug.Stack()}
				log.Printf("service: contained solve panic (op=%s fp=%.12s): %v", req.Op, fp, v)
			}
		}()
		if err := s.inject.Inject(sctx); err != nil {
			return nil, err
		}
		return solve(sctx, req, entry, s.col)
	})
	if err != nil {
		s.failQuery(w, r, req, err)
		return
	}

	// The cached *Response is shared between waiters; copy the value
	// before stamping the per-request envelope.
	out := *resp
	out.Fingerprint = fp
	out.CacheHit = outcome == outcomeHit
	out.ElapsedNS = time.Since(started).Nanoseconds()
	writeJSON(w, http.StatusOK, &out)
}

// failQuery maps a solve failure to its status and envelope:
//
//   - client gone: no envelope at all — there is nobody to answer, so
//     the disconnect is logged and counted (service_client_gone), never
//     inflated into service_errors
//   - shed (errOverload): 429 + Retry-After, counted as service_shed
//   - contained panic: 500 envelope, the panic value as the error
//   - solve deadline: 504
//   - solve cancelled by the server lifecycle (shutdown): 503 + Retry-After
//   - anything else: 500
func (s *Server) failQuery(w http.ResponseWriter, r *http.Request, req api.Request, err error) {
	var pe *runner.PanicError
	switch {
	case r.Context().Err() != nil:
		s.col.Add(telemetry.ServiceClientGone, 1)
		log.Printf("service: client gone mid-query (op=%s): %v", req.Op, err)
	case errors.Is(err, errOverload):
		s.col.Add(telemetry.ServiceShed, 1)
		w.Header().Set("Retry-After", retryAfter)
		httpError(w, http.StatusTooManyRequests, req.Op, err)
	case errors.As(err, &pe):
		s.fail(w, http.StatusInternalServerError, req, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, req, err)
	case errors.Is(err, context.Canceled):
		w.Header().Set("Retry-After", retryAfter)
		s.fail(w, http.StatusServiceUnavailable, req,
			fmt.Errorf("service: solve cancelled by shutdown: %w", err))
	default:
		s.fail(w, http.StatusInternalServerError, req, err)
	}
}

// handleMutate applies one mutation batch to a registered mutable
// graph: POST /v1/mutate with an api.MutateRequest. On success the
// graph's version bumps (exactly once per batch — evolve's contract),
// every cached result for the graph is evicted, and the response
// carries the new version-stamped hash future fingerprints will use.
// Static registry entries answer 409: mutability is a registration
// decision (mixtimed -mutable), not a request-time one.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.mutateFail(w, http.StatusMethodNotAllowed, "", errors.New("service: POST only"))
		return
	}
	if !s.enter() {
		w.Header().Set("Retry-After", retryAfter)
		s.mutateFail(w, http.StatusServiceUnavailable, "", errors.New("service: draining"))
		return
	}
	defer s.inflight.Done()
	started := time.Now()

	var req api.MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.mutateFail(w, http.StatusBadRequest, req.Graph, fmt.Errorf("service: bad mutate body: %w", err))
		return
	}
	if err := req.Validate(); err != nil {
		s.mutateFail(w, http.StatusBadRequest, req.Graph, err)
		return
	}
	e, ok := s.reg.Get(req.Graph)
	if !ok {
		s.mutateFail(w, http.StatusNotFound, req.Graph, fmt.Errorf("service: unknown graph %q", req.Graph))
		return
	}
	mut := e.Mutable()
	if mut == nil {
		s.mutateFail(w, http.StatusConflict, req.Graph,
			fmt.Errorf("service: graph %q is not mutable (register it with mixtimed -mutable)", req.Graph))
		return
	}

	var batch evolve.Batch
	for _, es := range req.Insert {
		batch.Insert = append(batch.Insert, graph.Edge{U: graph.NodeID(es.U), V: graph.NodeID(es.V)})
	}
	for _, es := range req.Delete {
		batch.Delete = append(batch.Delete, graph.Edge{U: graph.NodeID(es.U), V: graph.NodeID(es.V)})
	}
	if req.Grow > 0 {
		g, ver := mut.Snapshot()
		seed := req.Seed
		if seed == 0 {
			seed = uint64(ver) + 1
		}
		rng := rand.New(rand.NewPCG(seed, 0x6709))
		batch.Insert = append(batch.Insert, evolve.GrowRandom(g, req.Grow, rng).Insert...)
	}

	res, err := mut.Apply(batch)
	if err != nil {
		s.mutateFail(w, http.StatusBadRequest, req.Graph, err)
		return
	}
	evicted := s.cache.evictTag(e.Name)
	s.col.Add(telemetry.ServiceMutations, 1)
	writeJSON(w, http.StatusOK, &api.MutateResponse{
		SchemaVersion: api.SchemaVersion,
		Graph:         e.Name,
		Version:       uint64(res.Version),
		Inserted:      res.Inserted,
		Deleted:       res.Deleted,
		Nodes:         res.Nodes,
		Edges:         res.Edges,
		Hash:          e.View().Hash,
		Evicted:       evicted,
		ElapsedNS:     time.Since(started).Nanoseconds(),
	})
}

// mutateFail writes a mutation error envelope and counts it.
func (s *Server) mutateFail(w http.ResponseWriter, status int, name string, err error) {
	s.col.Add(telemetry.ServiceErrors, 1)
	writeJSON(w, status, &api.MutateResponse{
		SchemaVersion: api.SchemaVersion,
		Graph:         name,
		Error:         err.Error(),
	})
}

// fail writes an error envelope and counts it.
func (s *Server) fail(w http.ResponseWriter, status int, req api.Request, err error) {
	s.col.Add(telemetry.ServiceErrors, 1)
	httpError(w, status, req.Op, err)
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "", errors.New("service: GET only"))
		return
	}
	writeJSON(w, http.StatusOK, api.GraphsResponse{
		SchemaVersion: api.SchemaVersion,
		Graphs:        s.reg.List(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", retryAfter)
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "", errors.New("service: GET only"))
		return
	}
	writeJSON(w, http.StatusOK, api.StatsResponse{
		SchemaVersion: api.SchemaVersion,
		UptimeNS:      time.Since(s.start).Nanoseconds(),
		Pool:          s.pool.Size(),
		Graphs:        s.reg.Len(),
		CacheEntries:  s.cache.len(),
		QueueDepth:    int(s.queueDepth.Load()),
		Telemetry:     s.col.Snapshot(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone if this fails
}

func httpError(w http.ResponseWriter, status int, op string, err error) {
	writeJSON(w, status, api.Response{
		SchemaVersion: api.SchemaVersion,
		Op:            op,
		Error:         err.Error(),
	})
}
