package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty summary %+v", z)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1}}
	for _, cs := range cases {
		if got := c.At(cs.x); math.Abs(got-cs.want) > 1e-12 {
			t.Errorf("At(%v) = %v, want %v", cs.x, got, cs.want)
		}
	}
	if NewCDF(nil).At(1) != 0 {
		t.Fatal("empty CDF")
	}
}

func TestQuantile(t *testing.T) {
	c := NewCDF([]float64{10, 20, 30, 40})
	if c.Quantile(0) != 10 || c.Quantile(1) != 40 {
		t.Fatal("extreme quantiles")
	}
	if got := c.Quantile(0.5); got != 25 {
		t.Fatalf("median = %v", got)
	}
	if got := c.Quantile(1.0 / 3); math.Abs(got-20) > 1e-12 {
		t.Fatalf("q1/3 = %v", got)
	}
	if !math.IsNaN(NewCDF(nil).Quantile(0.5)) {
		t.Fatal("empty quantile not NaN")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4})
	xs, ys := c.Points(5)
	if len(xs) != 5 {
		t.Fatalf("%d points", len(xs))
	}
	if xs[0] != 1 || xs[4] != 5 {
		t.Fatalf("xs = %v", xs)
	}
	if ys[4] != 1 {
		t.Fatalf("ys = %v", ys)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] < xs[i-1] || ys[i] < ys[i-1] {
			t.Fatal("points not monotone")
		}
	}
	xs, _ = c.Points(100) // clamps to n
	if len(xs) != 5 {
		t.Fatalf("clamped points %d", len(xs))
	}
}

func TestPercentileBands(t *testing.T) {
	// 0..99: top10 = mean(0..9) = 4.5, low10 = mean(90..99) = 94.5,
	// median20 = mean(40..59) = 49.5.
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(i)
	}
	b := PercentileBands(vals)
	if b.Top10 != 4.5 || b.Low10 != 94.5 || b.Median20 != 49.5 {
		t.Fatalf("bands %+v", b)
	}
	// Small samples degrade without panicking.
	small := PercentileBands([]float64{3})
	if small.Top10 != 3 || small.Low10 != 3 || small.Median20 != 3 {
		t.Fatalf("single-element bands %+v", small)
	}
	if z := PercentileBands(nil); z != (Bands{}) {
		t.Fatalf("empty bands %+v", z)
	}
}

func TestBandsOrdered(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		vals := make([]float64, 5+int(seed%200))
		for i := range vals {
			vals[i] = rng.Float64()
		}
		b := PercentileBands(vals)
		return b.Top10 <= b.Median20+1e-12 && b.Median20 <= b.Low10+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-12 {
		t.Fatalf("GeoMean = %v", g)
	}
	if g := GeoMean([]float64{-1, 0}); g != 0 {
		t.Fatalf("non-positive GeoMean = %v", g)
	}
	if g := GeoMean([]float64{2, -5, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("mixed GeoMean = %v", g)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 0.1, 0.5, 0.9, 1.0}, 2)
	if h.Counts[0] != 2 || h.Counts[1] != 3 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.Min != 0 || h.Max != 1 {
		t.Fatalf("range [%v,%v]", h.Min, h.Max)
	}
	// Constant sample lands in bucket 0.
	hc := NewHistogram([]float64{2, 2, 2}, 4)
	if hc.Counts[0] != 3 {
		t.Fatalf("constant counts %v", hc.Counts)
	}
}

// Property: CDF.At is a valid CDF (monotone, 0→1) and Quantile is its
// generalized inverse.
func TestQuickCDF(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 3))
		vals := make([]float64, 1+int(seed%100))
		for i := range vals {
			vals[i] = rng.NormFloat64()
		}
		c := NewCDF(vals)
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			y := c.At(x)
			if y < prev-1e-12 {
				return false
			}
			prev = y
		}
		if c.At(sorted[len(sorted)-1]) != 1 {
			return false
		}
		// Quantile of At(x) returns something ≤ x (+ float slack).
		for _, q := range []float64{0.1, 0.5, 0.9} {
			x := c.Quantile(q)
			if c.At(x) < q-1.0/float64(len(vals))-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
