// Package stats provides the small statistical toolkit the experiment
// drivers use to aggregate per-source mixing measurements into the
// paper's figures: empirical CDFs (Figures 3–4), quantile curves
// (Figure 5's "Top 99.9%"), and percentile-band means (Figure 7's
// top-10 / median-20 / lowest-10 aggregation).
package stats

import (
	"math"
	"sort"
)

// Summary holds the moments and extremes of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes a Summary of values. An empty sample yields the
// zero Summary.
func Summarize(values []float64) Summary {
	n := len(values)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, v := range values {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(n)
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	if n > 1 {
		s.Std = math.Sqrt(ss / float64(n-1))
	}
	c := NewCDF(values)
	s.Median = c.Quantile(0.5)
	return s
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the sample.
func NewCDF(values []float64) *CDF {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns the fraction of the sample ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) with linear
// interpolation between order statistics.
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= n {
		return c.sorted[n-1]
	}
	return c.sorted[lo]*(1-frac) + c.sorted[lo+1]*frac
}

// Points returns up to k evenly spaced (value, cumulative fraction)
// pairs suitable for plotting the CDF.
func (c *CDF) Points(k int) (xs, ys []float64) {
	n := len(c.sorted)
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	xs = make([]float64, k)
	ys = make([]float64, k)
	for i := 0; i < k; i++ {
		idx := i * (n - 1) / max(k-1, 1)
		xs[i] = c.sorted[idx]
		ys[i] = float64(idx+1) / float64(n)
	}
	return xs, ys
}

// Bands is the Figure-7 aggregation of a sample of per-source
// variation distances: the mean of the best (smallest) 10%, the mean
// of the middle 20% (around the median), and the mean of the worst
// (largest) 10%.
type Bands struct {
	Top10, Median20, Low10 float64
}

// PercentileBands computes Bands. Fewer than 10 samples degrade
// gracefully: each band contains at least one element.
func PercentileBands(values []float64) Bands {
	s := append([]float64(nil), values...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return Bands{}
	}
	seg := func(lo, hi int) float64 {
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		if hi <= lo {
			hi = lo + 1
			if hi > n {
				lo, hi = n-1, n
			}
		}
		var sum float64
		for _, v := range s[lo:hi] {
			sum += v
		}
		return sum / float64(hi-lo)
	}
	tenth := n / 10
	if tenth < 1 {
		tenth = 1
	}
	mid := n / 2
	width := n / 10 // 20% total, 10% each side
	if width < 1 {
		width = 1
	}
	return Bands{
		Top10:    seg(0, tenth),
		Median20: seg(mid-width, mid+width),
		Low10:    seg(n-tenth, n),
	}
}

// GeoMean returns the geometric mean of positive values, ignoring
// non-positive entries.
func GeoMean(values []float64) float64 {
	var sum float64
	count := 0
	for _, v := range values {
		if v > 0 {
			sum += math.Log(v)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return math.Exp(sum / float64(count))
}

// Histogram bins values into k equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a k-bucket histogram of values.
func NewHistogram(values []float64, k int) *Histogram {
	h := &Histogram{Counts: make([]int, k)}
	if len(values) == 0 || k == 0 {
		return h
	}
	h.Min, h.Max = math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	span := h.Max - h.Min
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int(float64(k) * (v - h.Min) / span)
			if idx >= k {
				idx = k - 1
			}
		}
		h.Counts[idx]++
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
