// Package whanau implements the core of Whānau (Lesniewski-Laas &
// Kaashoek, NSDI 2010), the Sybil-proof DHT whose fast-mixing
// evidence the paper's §2 disputes. Whānau builds all routing state
// from random-walk samples: if walks of length w reach the
// stationary distribution, every table is a near-uniform sample of
// the network and lookups succeed in O(1) hops; if the graph mixes
// slower than w, tables are local and lookups for faraway keys fail.
// That dependence is exactly what the experiments measure.
//
// This implementation keeps the protocol's structure — ID sampling by
// walk endpoints, finger tables of walk samples, successor lists
// assembled from sampled records, one-hop lookup through the best
// finger — with a single layer (the multi-layer construction defends
// against clustering attacks, orthogonal to the mixing question).
package whanau

import (
	"errors"
	"math/rand/v2"
	"sort"

	"mixtime/internal/graph"
	"mixtime/internal/walk"
)

// Key is a position on the DHT ring.
type Key uint64

// ringDist returns the clockwise distance from a to b.
func ringDist(a, b Key) uint64 { return uint64(b - a) }

// record is a (key → owner) binding.
type record struct {
	key   Key
	owner graph.NodeID
}

// node is one participant's routing state.
type node struct {
	id         Key
	fingers    []record // walk-sampled (id, node) pairs, sorted by id
	successors []record // records following id on the ring
}

// Config parameterizes table construction.
type Config struct {
	// W is the random-walk length used for every sample — the
	// protocol's stand-in for the mixing time.
	W int
	// Fingers is the finger-table size r_f (default 2·⌈√n⌉).
	Fingers int
	// Successors is the successor-list size r_s (default 2·⌈√n⌉).
	Successors int
	// SuccessorCandidates scales how many walk samples are drawn to
	// assemble the successor list (default 4 × Successors).
	SuccessorCandidates int
	// Seed makes table construction deterministic.
	Seed uint64
}

func (c Config) withDefaults(n int) (Config, error) {
	if c.W < 1 {
		return c, errors.New("whanau: walk length W must be ≥ 1")
	}
	root := 1
	for root*root < n {
		root++
	}
	if c.Fingers <= 0 {
		c.Fingers = 2 * root
	}
	if c.Successors <= 0 {
		c.Successors = 2 * root
	}
	if c.SuccessorCandidates <= 0 {
		c.SuccessorCandidates = 4 * c.Successors
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// DHT is a built Whānau instance over a social graph.
type DHT struct {
	g     *graph.Graph
	cfg   Config
	keys  []Key // record key stored by each node
	nodes []node
}

// Build constructs the DHT: every node draws its key, then samples
// fingers and successors by random walks of length cfg.W.
func Build(g *graph.Graph, cfg Config) (*DHT, error) {
	n := g.NumNodes()
	if n < 2 || g.MinDegree() < 1 {
		return nil, errors.New("whanau: graph unsuitable (need connected component)")
	}
	cfg, err := cfg.withDefaults(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x3a0a))
	d := &DHT{g: g, cfg: cfg, keys: make([]Key, n), nodes: make([]node, n)}
	for v := range d.keys {
		d.keys[v] = Key(rng.Uint64())
	}
	for v := 0; v < n; v++ {
		nd := &d.nodes[v]
		// Layer-0 ID: the key of a random walk sample (the protocol's
		// ID sampling; using a sampled key rather than one's own makes
		// IDs distributed like the records the tables must cover).
		idOwner := walk.Endpoint(g, graph.NodeID(v), cfg.W, rng)
		nd.id = d.keys[idOwner]

		// Fingers: walk endpoints with their IDs — here their record
		// keys, since IDs are key samples.
		nd.fingers = make([]record, 0, cfg.Fingers)
		for i := 0; i < cfg.Fingers; i++ {
			e := walk.Endpoint(g, graph.NodeID(v), cfg.W, rng)
			nd.fingers = append(nd.fingers, record{key: d.keys[e], owner: e})
		}
		sort.Slice(nd.fingers, func(i, j int) bool { return nd.fingers[i].key < nd.fingers[j].key })

		// Successors: sample records and keep those closest after id.
		cand := make([]record, 0, cfg.SuccessorCandidates)
		for i := 0; i < cfg.SuccessorCandidates; i++ {
			e := walk.Endpoint(g, graph.NodeID(v), cfg.W, rng)
			cand = append(cand, record{key: d.keys[e], owner: e})
		}
		sort.Slice(cand, func(i, j int) bool {
			return ringDist(nd.id, cand[i].key) < ringDist(nd.id, cand[j].key)
		})
		if len(cand) > cfg.Successors {
			cand = cand[:cfg.Successors]
		}
		nd.successors = cand
	}
	return d, nil
}

// KeyOf returns the record key stored by v.
func (d *DHT) KeyOf(v graph.NodeID) Key { return d.keys[v] }

// Lookup routes from the source node toward target: the source tries
// its fingers in order of ring closeness to (just before) the target;
// each queried finger checks its successor list for the exact record.
// It returns the owner and the number of finger queries used, or
// ok=false if no finger's successors cover the target.
func (d *DHT) Lookup(source graph.NodeID, target Key) (owner graph.NodeID, queries int, ok bool) {
	src := &d.nodes[source]
	// Order fingers by how little they overshoot the target going
	// clockwise: the best finger is the one whose id most closely
	// precedes the target.
	type cand struct {
		dist uint64
		idx  int
	}
	cands := make([]cand, len(src.fingers))
	for i, f := range src.fingers {
		cands[i] = cand{dist: ringDist(f.key, target), idx: i}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })
	for _, c := range cands {
		queries++
		f := src.fingers[c.idx]
		for _, s := range d.nodes[f.owner].successors {
			if s.key == target {
				return s.owner, queries, true
			}
		}
	}
	return 0, queries, false
}

// SuccessRate measures the fraction of random (source, target-record)
// lookups that succeed, the headline metric tying lookup success to
// walk length.
func (d *DHT) SuccessRate(trials int, rng *rand.Rand) float64 {
	if trials <= 0 {
		return 0
	}
	n := d.g.NumNodes()
	hits := 0
	for i := 0; i < trials; i++ {
		src := graph.NodeID(rng.IntN(n))
		tgt := d.keys[rng.IntN(n)]
		if _, _, ok := d.Lookup(src, tgt); ok {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}
