package whanau

import (
	"math/rand/v2"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x3a)) }

func TestBuildValidation(t *testing.T) {
	if _, err := Build(&graph.Graph{}, Config{W: 5}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := gen.Complete(10)
	if _, err := Build(g, Config{W: 0}); err == nil {
		t.Fatal("W=0 accepted")
	}
}

func TestTableSizes(t *testing.T) {
	g := gen.Complete(100)
	d, err := Build(g, Config{W: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: 2·⌈√100⌉ = 20 fingers and successors.
	if len(d.nodes[0].fingers) != 20 || len(d.nodes[0].successors) != 20 {
		t.Fatalf("table sizes %d/%d, want 20/20",
			len(d.nodes[0].fingers), len(d.nodes[0].successors))
	}
	// Fingers sorted, successors ring-orderd after id.
	f := d.nodes[0].fingers
	for i := 1; i < len(f); i++ {
		if f[i-1].key > f[i].key {
			t.Fatal("fingers unsorted")
		}
	}
}

func TestLookupFindsOwnSample(t *testing.T) {
	// On a fast-mixing graph with ample walks, looking up a random
	// node's key from a random source succeeds with high probability.
	g := gen.BarabasiAlbert(400, 6, rng(2))
	d, err := Build(g, Config{W: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rate := d.SuccessRate(400, rng(4))
	if rate < 0.85 {
		t.Fatalf("success rate %v on fast-mixing graph", rate)
	}
	// The owner returned must actually hold the key.
	for i := 0; i < 50; i++ {
		tgt := d.KeyOf(graph.NodeID(rng(5).IntN(g.NumNodes())))
		if owner, _, ok := d.Lookup(0, tgt); ok && d.KeyOf(owner) != tgt {
			t.Fatal("lookup returned wrong owner")
		}
	}
}

func TestLookupDegradesWithShortWalks(t *testing.T) {
	// On a slow-mixing caveman graph, w=1 samples stay inside the
	// local clique, so cross-graph lookups fail far more often than
	// with long walks — the mixing-time dependence the paper probes.
	g, _ := graph.LargestComponent(gen.RelaxedCaveman(60, 8, 0.02, rng(6)))
	short, err := Build(g, Config{W: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Build(g, Config{W: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rShort := short.SuccessRate(300, rng(8))
	rLong := long.SuccessRate(300, rng(8))
	if rLong < rShort+0.2 {
		t.Fatalf("long walks (%v) not clearly better than short (%v)", rLong, rShort)
	}
}

func TestLookupDeterministicTables(t *testing.T) {
	g := gen.BarabasiAlbert(150, 4, rng(9))
	a, err := Build(g, Config{W: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Config{W: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.nodes {
		if a.nodes[v].id != b.nodes[v].id {
			t.Fatalf("node %d id differs across identical builds", v)
		}
	}
}

func TestQueriesBounded(t *testing.T) {
	g := gen.Complete(80)
	d, err := Build(g, Config{W: 2, Fingers: 9, Successors: 9, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	_, queries, _ := d.Lookup(0, 0xdeadbeef) // random target, likely miss
	if queries > 9 {
		t.Fatalf("%d queries with 9 fingers", queries)
	}
}
