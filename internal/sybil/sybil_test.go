package sybil

import (
	"math/rand/v2"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x5151)) }

func fastGraph(n int) *graph.Graph {
	g := gen.BarabasiAlbert(n, 5, rng(1))
	lcc, _ := graph.LargestComponent(g)
	return lcc
}

func TestConfigDefaults(t *testing.T) {
	g := fastGraph(500)
	p, err := NewProtocol(g, Config{W: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.Config()
	if cfg.R < 1 {
		t.Fatalf("derived R = %d", cfg.R)
	}
	// r = ceil(4·√m)
	if cfg.R0 != 4 || cfg.BalanceMult != 4 || cfg.BalanceFloor < 5 {
		t.Fatalf("defaults %+v", cfg)
	}
	if _, err := NewProtocol(g, Config{}); err == nil {
		t.Fatal("W=0 accepted")
	}
	if _, err := NewProtocol(&graph.Graph{}, Config{W: 5}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestVerifyAcceptsMostHonestOnFastGraph(t *testing.T) {
	// On a fast-mixing graph with w comfortably above the mixing
	// time, SybilLimit should admit nearly everyone.
	g := fastGraph(400)
	p, err := NewProtocol(g, Config{W: 15, R0: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Verify(0, AllHonest(g, 0))
	if rate := res.AcceptRate(); rate < 0.9 {
		t.Fatalf("accept rate %v (no-int %d, balance %d of %d)",
			rate, res.NoIntersection, res.BalanceRejected, len(res.Suspects))
	}
}

func TestVerifyRejectsWithTinyWalks(t *testing.T) {
	// With w=1 the verifier's tails live on its own edges; most
	// suspects cannot intersect.
	g := fastGraph(400)
	p, err := NewProtocol(g, Config{W: 1, R0: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Verify(0, AllHonest(g, 0))
	if rate := res.AcceptRate(); rate > 0.5 {
		t.Fatalf("accept rate %v with w=1", rate)
	}
}

func TestVerifyMonotoneInWalkLength(t *testing.T) {
	g := fastGraph(300)
	var prev float64 = -1
	for _, w := range []int{1, 4, 12} {
		p, err := NewProtocol(g, Config{W: w, R0: 2, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		rate := p.Verify(5, AllHonest(g, 5)).AcceptRate()
		if rate < prev-0.12 {
			t.Fatalf("accept rate dropped sharply with longer walks: w=%d rate=%v prev=%v", w, rate, prev)
		}
		prev = rate
	}
	if prev < 0.8 {
		t.Fatalf("final accept rate %v", prev)
	}
}

func TestVerifyDeterministic(t *testing.T) {
	g := fastGraph(200)
	cfg := Config{W: 8, R0: 2, Seed: 11}
	p1, _ := NewProtocol(g, cfg)
	p2, _ := NewProtocol(g, cfg)
	r1 := p1.Verify(0, AllHonest(g, 0))
	r2 := p2.Verify(0, AllHonest(g, 0))
	if r1.NumAccepted != r2.NumAccepted {
		t.Fatalf("non-deterministic: %d vs %d", r1.NumAccepted, r2.NumAccepted)
	}
	for i := range r1.Accepted {
		if r1.Accepted[i] != r2.Accepted[i] {
			t.Fatalf("decision %d differs", i)
		}
	}
}

func TestLazyMatchesMaterialized(t *testing.T) {
	g := fastGraph(150)
	base := Config{W: 6, R: 50, Seed: 13}
	lazyCfg := base
	lazyCfg.Lazy = true
	pm, _ := NewProtocol(g, base)
	pl, _ := NewProtocol(g, lazyCfg)
	rm := pm.Verify(2, AllHonest(g, 2))
	rl := pl.Verify(2, AllHonest(g, 2))
	if rm.NumAccepted != rl.NumAccepted {
		t.Fatalf("lazy %d vs materialized %d", rl.NumAccepted, rm.NumAccepted)
	}
}

func TestBalanceConditionCapsLoad(t *testing.T) {
	// With an artificially tiny balance budget, acceptance must be
	// bounded by R × floor even when everyone intersects.
	g := fastGraph(300)
	p, err := NewProtocol(g, Config{W: 12, R: 30, Seed: 5, BalanceFloor: 1, BalanceMult: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	res := p.Verify(0, AllHonest(g, 0))
	if res.NumAccepted > 30*1 {
		t.Fatalf("balance breached: %d accepted with R=30, floor=1", res.NumAccepted)
	}
	if res.BalanceRejected == 0 {
		t.Fatal("no balance rejections under a tiny budget")
	}
}

func TestAttackWiring(t *testing.T) {
	honest := fastGraph(200)
	sybilRegion := gen.Complete(30)
	a := NewAttack(honest, sybilRegion, 5, rng(2))
	if a.Combined.NumNodes() != honest.NumNodes()+30 {
		t.Fatalf("combined n = %d", a.Combined.NumNodes())
	}
	wantM := honest.NumEdges() + sybilRegion.NumEdges() + 5
	if a.Combined.NumEdges() < wantM-2 || a.Combined.NumEdges() > wantM {
		t.Fatalf("combined m = %d, want ≈%d", a.Combined.NumEdges(), wantM)
	}
	if a.IsSybil(0) || !a.IsSybil(graph.NodeID(honest.NumNodes())) {
		t.Fatal("IsSybil misclassifies")
	}
	if len(a.Sybils()) != 30 || len(a.HonestNodes()) != 200 {
		t.Fatal("node set sizes wrong")
	}
}

func TestRunAttackBoundsSybils(t *testing.T) {
	honest := fastGraph(300)
	sybilRegion := gen.BarabasiAlbert(100, 3, rng(3))
	a := NewAttack(honest, sybilRegion, 3, rng(4))
	out, err := RunAttack(a, 0, Config{W: 10, R0: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if out.HonestTotal != 299 || out.SybilTotal != 100 {
		t.Fatalf("totals %+v", out)
	}
	// Honest admission should far exceed sybil admission rate-wise.
	honestRate := float64(out.HonestAccepted) / float64(out.HonestTotal)
	sybilRate := float64(out.SybilAccepted) / float64(out.SybilTotal)
	if honestRate < 0.7 {
		t.Fatalf("honest rate %v", honestRate)
	}
	if sybilRate > honestRate {
		t.Fatalf("sybil rate %v exceeds honest rate %v", sybilRate, honestRate)
	}
	if out.EscapedTails < 0 || out.EscapedTails > out.R {
		t.Fatalf("escaped tails %d of R=%d", out.EscapedTails, out.R)
	}
}

func TestMoreAttackEdgesMoreEscapes(t *testing.T) {
	honest := fastGraph(300)
	sybilRegion := gen.BarabasiAlbert(100, 3, rng(5))
	few := NewAttack(honest, sybilRegion, 1, rng(6))
	many := NewAttack(honest, sybilRegion, 60, rng(6))
	cfg := Config{W: 10, R0: 2, Seed: 9}
	outFew, err := RunAttack(few, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	outMany, err := RunAttack(many, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if outMany.EscapedTails <= outFew.EscapedTails {
		t.Fatalf("escapes: g=60 %d vs g=1 %d", outMany.EscapedTails, outFew.EscapedTails)
	}
}

func TestSybilGuardBaseline(t *testing.T) {
	g := fastGraph(300)
	res, err := SybilGuard(g, 0, AllHonest(g, 0), GuardConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.W != GuardWalkLength(g.NumNodes()) {
		t.Fatalf("default W = %d", res.W)
	}
	if res.AcceptRate() < 0.5 {
		t.Fatalf("guard accept rate %v with w=%d", res.AcceptRate(), res.W)
	}
	// Short walks accept less.
	short, err := SybilGuard(g, 0, AllHonest(g, 0), GuardConfig{W: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if short.AcceptRate() >= res.AcceptRate() {
		t.Fatalf("short-walk rate %v ≥ full rate %v", short.AcceptRate(), res.AcceptRate())
	}
}

func TestGuardWalkLength(t *testing.T) {
	if GuardWalkLength(1) != 1 {
		t.Fatal("degenerate n")
	}
	// √(10000·ln 10000) ≈ 303.5 → 304.
	if got := GuardWalkLength(10_000); got != 304 {
		t.Fatalf("GuardWalkLength(1e4) = %d", got)
	}
}

func BenchmarkVerify(b *testing.B) {
	g := fastGraph(1000)
	p, err := NewProtocol(g, Config{W: 10, R0: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	suspects := AllHonest(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Verify(0, suspects)
	}
}
