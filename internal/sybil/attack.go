package sybil

import (
	"math/rand/v2"

	"mixtime/internal/graph"
	"mixtime/internal/walk"
)

// Attack is a Sybil attack scenario: an honest region and a sybil
// region joined by g attack edges. Honest nodes occupy IDs
// [0, HonestN) of the combined graph; sybil nodes the rest.
type Attack struct {
	// Combined is the whole graph the protocol runs on.
	Combined *graph.Graph
	// HonestN is the number of honest nodes.
	HonestN int
	// AttackEdges is the number of honest↔sybil edges g.
	AttackEdges int
}

// NewAttack wires a sybil region onto an honest region with g attack
// edges whose honest endpoints are chosen uniformly. The sybil graph
// is relabeled to IDs starting at honest.NumNodes().
func NewAttack(honest, sybilRegion *graph.Graph, g int, rng *rand.Rand) *Attack {
	nh := honest.NumNodes()
	b := graph.NewBuilder(int(honest.NumEdges()+sybilRegion.NumEdges()) + g)
	honest.Edges(func(u, v graph.NodeID) bool {
		b.AddEdge(u, v)
		return true
	})
	base := graph.NodeID(nh)
	sybilRegion.Edges(func(u, v graph.NodeID) bool {
		b.AddEdge(base+u, base+v)
		return true
	})
	ns := sybilRegion.NumNodes()
	for i := 0; i < g; i++ {
		hu := graph.NodeID(rng.IntN(nh))
		sv := base + graph.NodeID(rng.IntN(ns))
		b.AddEdge(hu, sv)
	}
	return &Attack{Combined: b.Build(), HonestN: nh, AttackEdges: g}
}

// IsSybil reports whether v belongs to the sybil region.
func (a *Attack) IsSybil(v graph.NodeID) bool { return int(v) >= a.HonestN }

// Sybils returns the sybil node IDs.
func (a *Attack) Sybils() []graph.NodeID {
	out := make([]graph.NodeID, 0, a.Combined.NumNodes()-a.HonestN)
	for v := a.HonestN; v < a.Combined.NumNodes(); v++ {
		out = append(out, graph.NodeID(v))
	}
	return out
}

// HonestNodes returns the honest node IDs.
func (a *Attack) HonestNodes() []graph.NodeID {
	out := make([]graph.NodeID, 0, a.HonestN)
	for v := 0; v < a.HonestN; v++ {
		out = append(out, graph.NodeID(v))
	}
	return out
}

// AttackOutcome summarizes a protocol run under attack.
type AttackOutcome struct {
	// HonestAccepted / HonestTotal: admission among honest suspects.
	HonestAccepted, HonestTotal int
	// SybilAccepted / SybilTotal: admission among protocol-following
	// sybil suspects (a lower bound on what an adversary achieves).
	SybilAccepted, SybilTotal int
	// EscapedTails is the number of the verifier's r routes that
	// entered the sybil region. Every escaped tail is adversary-
	// controlled: the balance condition caps the identities it can
	// admit, so EscapedTails×(per-tail allowance) upper-bounds the
	// sybil admissions of an optimal adversary — the t·g/w escape
	// analysis of the paper's §5.
	EscapedTails int
	// R and W echo protocol parameters.
	R, W int
}

// RunAttack executes SybilLimit from an honest verifier against every
// other node of the combined graph and classifies the outcomes. The
// verifier must be honest.
func RunAttack(a *Attack, verifier graph.NodeID, cfg Config) (*AttackOutcome, error) {
	p, err := NewProtocol(a.Combined, cfg)
	if err != nil {
		return nil, err
	}
	suspects := AllHonest(a.Combined, verifier)
	res := p.Verify(verifier, suspects)
	out := &AttackOutcome{R: res.R, W: res.W}
	for i, s := range suspects {
		if a.IsSybil(s) {
			out.SybilTotal++
			if res.Accepted[i] {
				out.SybilAccepted++
			}
		} else {
			out.HonestTotal++
			if res.Accepted[i] {
				out.HonestAccepted++
			}
		}
	}
	out.EscapedTails = p.escapedTails(a, verifier)
	return out, nil
}

// escapedTails counts verifier routes that touch the sybil region.
func (p *Protocol) escapedTails(a *Attack, verifier graph.NodeID) int {
	escaped := 0
	for i := 0; i < p.cfg.R; i++ {
		r := p.router(i)
		s := firstSlot(p.cfg.Seed^0xa5a5a5a5, i, verifier, p.g.Degree(verifier))
		traj := walk.RouteTrace(r, verifier, s, p.cfg.W)
		for _, v := range traj[1:] {
			if a.IsSybil(v) {
				escaped++
				break
			}
		}
	}
	return escaped
}
