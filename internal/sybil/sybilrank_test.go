package sybil

import (
	"math"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func TestSybilRankValidation(t *testing.T) {
	g := gen.Complete(5)
	if _, err := SybilRank(&graph.Graph{}, []graph.NodeID{0}, 0); err == nil {
		t.Fatal("empty graph accepted")
	}
	if _, err := SybilRank(g, nil, 0); err == nil {
		t.Fatal("no seeds accepted")
	}
	if _, err := SybilRank(g, []graph.NodeID{99}, 0); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestSybilRankConvergesToUniformNormalized(t *testing.T) {
	// Many iterations on a fast graph: p → deg/2m, so normalized
	// scores become constant.
	g := gen.BarabasiAlbert(300, 5, rng(21))
	scores, err := SybilRank(g, []graph.NodeID{0}, 200)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / float64(2*g.NumEdges())
	for v, s := range scores {
		if math.Abs(s-want)/want > 0.05 {
			t.Fatalf("score[%d] = %v, want ≈%v", v, s, want)
		}
	}
}

func TestSybilRankSeparatesAcrossSparseCut(t *testing.T) {
	honest := gen.BarabasiAlbert(400, 5, rng(22))
	region := gen.BarabasiAlbert(100, 5, rng(23))
	a := NewAttack(honest, region, 2, rng(24))
	scores, err := SybilRank(a.Combined, []graph.NodeID{0, 7, 21}, 0) // default log2 n
	if err != nil {
		t.Fatal(err)
	}
	var hMin float64 = math.Inf(1)
	var sMax float64
	var hSum, sSum float64
	for v, s := range scores {
		if a.IsSybil(graph.NodeID(v)) {
			sSum += s
			if s > sMax {
				sMax = s
			}
		} else {
			hSum += s
			if s < hMin {
				hMin = s
			}
		}
	}
	hMean := hSum / float64(a.HonestN)
	sMean := sSum / float64(a.Combined.NumNodes()-a.HonestN)
	if hMean < 5*sMean {
		t.Fatalf("honest mean %v not well above sybil mean %v", hMean, sMean)
	}
}

func TestSybilRankMoreIterationsLeakMoreTrust(t *testing.T) {
	// The early-termination rationale: running past log n leaks trust
	// into the sybil region.
	honest := gen.BarabasiAlbert(400, 5, rng(25))
	region := gen.BarabasiAlbert(100, 5, rng(26))
	a := NewAttack(honest, region, 3, rng(27))
	sybilMass := func(iters int) float64 {
		scores, err := SybilRank(a.Combined, []graph.NodeID{0}, iters)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for v, s := range scores {
			if a.IsSybil(graph.NodeID(v)) {
				sum += s * float64(a.Combined.Degree(graph.NodeID(v)))
			}
		}
		return sum
	}
	early := sybilMass(9) // ≈ log2 n
	late := sybilMass(400)
	if late <= early {
		t.Fatalf("late trust mass %v not above early %v", late, early)
	}
}
