package sybil

import (
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func TestSumUpValidation(t *testing.T) {
	if _, err := SumUp(&graph.Graph{}, 0, nil, SumUpConfig{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	g := gen.Complete(4)
	if _, err := SumUp(g, 99, nil, SumUpConfig{}); err == nil {
		t.Fatal("collector out of range accepted")
	}
	if _, err := SumUp(g, 0, []graph.NodeID{99}, SumUpConfig{}); err == nil {
		t.Fatal("voter out of range accepted")
	}
}

func TestSumUpCollectsHonestVotes(t *testing.T) {
	// Fast-mixing graph, all honest voters: nearly every vote should
	// reach the collector when Cmax is sized correctly.
	g := fastGraph(300)
	voters := AllHonest(g, 0)
	res, err := SumUp(g, 0, voters, SumUpConfig{Cmax: len(voters)})
	if err != nil {
		t.Fatal(err)
	}
	if res.CollectionRate() < 0.9 {
		t.Fatalf("collection rate %v (envelope %d)", res.CollectionRate(), res.EnvelopeSize)
	}
	// Collected flags must sum to NumCollected.
	count := 0
	for _, c := range res.Collected {
		if c {
			count++
		}
	}
	if count != res.NumCollected {
		t.Fatalf("flags %d vs flow %d", count, res.NumCollected)
	}
}

func TestSumUpBoundsSybilVotes(t *testing.T) {
	// A sybil region with unlimited identities behind g attack edges:
	// collected sybil votes are bounded by ~(attack edges) + slack,
	// no matter how many sybils vote.
	honest := fastGraph(300)
	sybilRegion := gen.Complete(80) // a dense sybil farm
	const gEdges = 3
	a := NewAttack(honest, sybilRegion, gEdges, rng(11))
	sybils := a.Sybils()
	res, err := SumUp(a.Combined, 0, sybils, SumUpConfig{Cmax: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Each attack edge admits at most (tickets on it + 1) votes; with
	// the collector far from the attack edges the tickets there are
	// scarce, so the bound is close to gEdges. Allow generous slack
	// for envelope overlap.
	if res.NumCollected > gEdges*4 {
		t.Fatalf("%d sybil votes collected through %d attack edges", res.NumCollected, gEdges)
	}
	if res.NumCollected == 0 {
		t.Fatal("no sybil votes at all — attack wiring broken?")
	}
}

func TestSumUpCmaxScalesCollection(t *testing.T) {
	// With a tiny Cmax the envelope throttles even honest votes;
	// raising Cmax collects more.
	g := fastGraph(400)
	voters := AllHonest(g, 0)
	small, err := SumUp(g, 0, voters, SumUpConfig{Cmax: 5})
	if err != nil {
		t.Fatal(err)
	}
	large, err := SumUp(g, 0, voters, SumUpConfig{Cmax: len(voters)})
	if err != nil {
		t.Fatal(err)
	}
	if small.NumCollected >= large.NumCollected {
		t.Fatalf("Cmax=5 collected %d, Cmax=n collected %d", small.NumCollected, large.NumCollected)
	}
	// The collector's direct capacity still bounds collection:
	// Cmax tickets + deg(collector) units.
	limit := 5 + g.Degree(0)
	if small.NumCollected > limit {
		t.Fatalf("collected %d exceeds envelope limit %d", small.NumCollected, limit)
	}
}

func TestSumUpEnvelopeGrowsWithCmax(t *testing.T) {
	g := fastGraph(400)
	voters := AllHonest(g, 0)[:50]
	a, err := SumUp(g, 0, voters, SumUpConfig{Cmax: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SumUp(g, 0, voters, SumUpConfig{Cmax: 200})
	if err != nil {
		t.Fatal(err)
	}
	if b.EnvelopeSize <= a.EnvelopeSize {
		t.Fatalf("envelope did not grow: %d vs %d", a.EnvelopeSize, b.EnvelopeSize)
	}
}
