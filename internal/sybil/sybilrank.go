package sybil

import (
	"errors"
	"math"

	"mixtime/internal/graph"
)

// SybilRank implements the ranking core of SybilRank (Cao et al.,
// NSDI 2012), the successor to the defenses the paper measures — and
// the design that makes the O(log n) mixing assumption most literal:
// trust is propagated from seed nodes by power iteration on the
// random walk and *terminated early*, after exactly O(log n)
// iterations, precisely so that trust has spread through a fast-mixing
// honest region but not yet leaked across the sparse cut into a sybil
// region. The returned scores are the degree-normalized landing
// probabilities; ranking by them separates honest from sybil nodes
// exactly to the extent the honest region mixes within the iteration
// budget — the dependence this library measures.
//
// iterations ≤ 0 defaults to ⌈log₂ n⌉ (the paper's choice).
func SybilRank(g *graph.Graph, seeds []graph.NodeID, iterations int) ([]float64, error) {
	n := g.NumNodes()
	if n < 2 || g.MinDegree() < 1 {
		return nil, errors.New("sybil: graph unsuitable for trust propagation")
	}
	if len(seeds) == 0 {
		return nil, errors.New("sybil: at least one trust seed required")
	}
	if iterations <= 0 {
		iterations = int(math.Ceil(math.Log2(float64(n))))
	}
	p := make([]float64, n)
	q := make([]float64, n)
	share := 1 / float64(len(seeds))
	for _, s := range seeds {
		if int(s) >= n {
			return nil, errors.New("sybil: seed out of range")
		}
		p[s] += share
	}
	for it := 0; it < iterations; it++ {
		for v := range q {
			q[v] = 0
		}
		for v := 0; v < n; v++ {
			out := p[v] / float64(g.Degree(graph.NodeID(v)))
			for _, w := range g.Neighbors(graph.NodeID(v)) {
				q[w] += out
			}
		}
		p, q = q, p
	}
	// Degree normalization: under full mixing p_v → deg(v)/2m, so the
	// normalized score tends to a constant for honest nodes and stays
	// near zero for nodes the trust has not reached.
	for v := 0; v < n; v++ {
		p[v] /= float64(g.Degree(graph.NodeID(v)))
	}
	return p, nil
}
