// Package sybil implements the social-network Sybil defenses whose
// assumptions the paper measures: SybilLimit (Yu et al., Oakland
// 2008) with its r = r₀√m random-route instances, tail-intersection
// and balance conditions, a SybilGuard-style single-route baseline,
// and the attack model (a sybil region wired to the honest region by
// g attack edges) used to quantify how walk length trades admission
// of honest nodes against acceptance of sybils.
package sybil

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"

	"mixtime/internal/graph"
	"mixtime/internal/walk"
)

// Config parameterizes a SybilLimit run.
type Config struct {
	// R is the number of random-route instances. If 0, it is derived
	// as ceil(R0·√m) per the SybilLimit design.
	R int
	// R0 is the multiplier for the derived R (default 4, the value
	// the SybilLimit paper suggests for >99.9% intersection).
	R0 float64
	// W is the random-route length — the protocol's stand-in for the
	// mixing time, and the knob the paper's Figure 8 sweeps.
	W int
	// Seed makes the run deterministic.
	Seed uint64
	// BalanceFloor is b₀, the minimum per-tail load allowance
	// (default 4 + ⌈log₂ r⌉).
	BalanceFloor int
	// BalanceMult is h, the multiplier on the average per-tail load
	// (default 4).
	BalanceMult float64
	// Lazy selects PRF-lazy route permutations instead of
	// materialized ones: slower per step, O(1) memory per instance.
	Lazy bool
}

func (c Config) withDefaults(m int64) (Config, error) {
	if c.W < 1 {
		return c, errors.New("sybil: route length W must be ≥ 1")
	}
	if c.R0 <= 0 {
		c.R0 = 4
	}
	if c.R == 0 {
		c.R = int(math.Ceil(c.R0 * math.Sqrt(float64(m))))
	}
	if c.R < 1 {
		return c, fmt.Errorf("sybil: invalid instance count R=%d", c.R)
	}
	if c.BalanceFloor <= 0 {
		c.BalanceFloor = 4 + int(math.Ceil(math.Log2(float64(c.R))))
	}
	if c.BalanceMult <= 0 {
		c.BalanceMult = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

// Result reports one verifier's admission decisions over a suspect
// set.
type Result struct {
	Verifier graph.NodeID
	// Accepted[i] reports the decision for Suspects[i].
	Suspects []graph.NodeID
	Accepted []bool
	// NumAccepted counts true entries of Accepted.
	NumAccepted int
	// NoIntersection counts suspects rejected because no instance had
	// a tail intersection; BalanceRejected counts suspects that
	// intersected but failed the balance condition.
	NoIntersection  int
	BalanceRejected int
	// R and W echo the effective protocol parameters.
	R, W int
}

// AcceptRate returns the fraction of suspects accepted.
func (r *Result) AcceptRate() float64 {
	if len(r.Suspects) == 0 {
		return 0
	}
	return float64(r.NumAccepted) / float64(len(r.Suspects))
}

// Protocol is a configured SybilLimit deployment on a fixed graph.
type Protocol struct {
	g   *graph.Graph
	cfg Config
}

// NewProtocol validates the configuration against the graph. The
// graph must be connected with no isolated vertices (run it on the
// largest connected component, as the paper does).
func NewProtocol(g *graph.Graph, cfg Config) (*Protocol, error) {
	if g.NumNodes() < 2 {
		return nil, errors.New("sybil: graph too small")
	}
	if g.MinDegree() < 1 {
		return nil, errors.New("sybil: graph has an isolated vertex")
	}
	cfg, err := cfg.withDefaults(g.NumEdges())
	if err != nil {
		return nil, err
	}
	return &Protocol{g: g, cfg: cfg}, nil
}

// Config returns the effective configuration (with derived defaults).
func (p *Protocol) Config() Config { return p.cfg }

// edgeKey packs a directed edge for map/compare use.
func edgeKey(e walk.DirectedEdge) uint64 {
	return uint64(e.From)<<32 | uint64(e.To)
}

// firstSlot derives the deterministic first hop a node takes in an
// instance, uniform over its edge slots.
func firstSlot(seed uint64, instance int, v graph.NodeID, deg int) int {
	x := seed ^ (uint64(instance)+1)*0x9e3779b97f4a7c15 ^ (uint64(v)+1)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 27
	return int(x % uint64(deg))
}

// router builds the route instance for one protocol instance.
func (p *Protocol) router(instance int) walk.Router {
	seed := p.cfg.Seed*0x100000001b3 + uint64(instance)
	if p.cfg.Lazy {
		return walk.NewLazy(p.g, seed)
	}
	return walk.NewInstance(p.g, seed)
}

// verifierTail computes the verifier's route tail in one instance.
// The verifier's routes use an independent first-slot stream
// (different salt), so they are uncorrelated with a suspect route
// started at the same node.
func (p *Protocol) verifierTail(instance int, verifier graph.NodeID, r walk.Router) uint64 {
	vs := firstSlot(p.cfg.Seed^0xa5a5a5a5, instance, verifier, p.g.Degree(verifier))
	return edgeKey(walk.Route(r, verifier, vs, p.cfg.W))
}

// Verify runs the full SybilLimit admission protocol. The verifier
// and every suspect perform one random route of length w in each of
// the r instances; a suspect's tail set (the last directed edges of
// its routes) must intersect the verifier's tail set — with
// r = r₀·√m both sets are ~√m uniform samples of the edge set, so
// honest pairs intersect with high probability by the birthday
// paradox, provided w reaches the mixing time. The suspect is then
// admitted only if the balance condition holds: the least-loaded
// intersecting verifier tail must stay below max(b₀, h·(A+1)/r),
// where A counts prior admissions — the mechanism that caps what an
// adversary gains from tails escaped into a sybil region.
func (p *Protocol) Verify(verifier graph.NodeID, suspects []graph.NodeID) *Result {
	res := &Result{
		Verifier: verifier,
		Suspects: suspects,
		Accepted: make([]bool, len(suspects)),
		R:        p.cfg.R,
		W:        p.cfg.W,
	}
	// Pass 1: the verifier's r tails, indexed for membership tests.
	// vTailIdx maps a tail edge to the verifier tail indices holding
	// it (several instances may share a tail edge). Route instances
	// are rebuilt per pass rather than cached: caching all r of them
	// would cost O(r·m) memory, while rebuilding is O(m) against the
	// O(n·w) routing work each instance already does.
	vTailIdx := make(map[uint64][]int32, p.cfg.R)
	for i := 0; i < p.cfg.R; i++ {
		key := p.verifierTail(i, verifier, p.router(i))
		vTailIdx[key] = append(vTailIdx[key], int32(i))
	}
	// Pass 2: per instance, compute every suspect's tail and record
	// which verifier tails it hits (across all instances).
	intersecting := make([][]int32, len(suspects))
	for i := 0; i < p.cfg.R; i++ {
		r := p.router(i)
		for j, v := range suspects {
			s := firstSlot(p.cfg.Seed, i, v, p.g.Degree(v))
			key := edgeKey(walk.Route(r, v, s, p.cfg.W))
			if hits, ok := vTailIdx[key]; ok {
				intersecting[j] = append(intersecting[j], hits...)
			}
		}
	}
	// Pass 3: sequential balance condition over the suspects in a
	// seed-determined random order (arrival order matters for load).
	order := make([]int, len(suspects))
	for i := range order {
		order[i] = i
	}
	rng := rand.New(rand.NewPCG(p.cfg.Seed, 0xba1a))
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })

	loads := make([]int, p.cfg.R)
	admitted := 0
	for _, j := range order {
		insts := intersecting[j]
		if len(insts) == 0 {
			res.NoIntersection++
			continue
		}
		best := insts[0]
		for _, i := range insts[1:] {
			if loads[i] < loads[best] {
				best = i
			}
		}
		threshold := math.Max(float64(p.cfg.BalanceFloor),
			p.cfg.BalanceMult*float64(admitted+1)/float64(p.cfg.R))
		if float64(loads[best]+1) > threshold {
			res.BalanceRejected++
			continue
		}
		loads[best]++
		admitted++
		res.Accepted[j] = true
	}
	res.NumAccepted = admitted
	return res
}

// AllHonest returns every node of the graph as the suspect set,
// excluding the verifier itself — the Figure 8 workload: how many
// honest nodes does a trusted verifier admit at walk length w?
func AllHonest(g *graph.Graph, verifier graph.NodeID) []graph.NodeID {
	out := make([]graph.NodeID, 0, g.NumNodes()-1)
	for v := 0; v < g.NumNodes(); v++ {
		if graph.NodeID(v) != verifier {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}
