package sybil

import (
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func TestSybilInferValidation(t *testing.T) {
	if _, err := SybilInfer(&graph.Graph{}, InferConfig{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	b := graph.NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddNode(2)
	if _, err := SybilInfer(b.Build(), InferConfig{}); err == nil {
		t.Fatal("isolated vertex accepted")
	}
}

func TestSybilInferDefaults(t *testing.T) {
	g := gen.BarabasiAlbert(100, 4, rng(1))
	res, err := SybilInfer(g, InferConfig{Samples: 20, Burn: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HonestProb) != 100 {
		t.Fatalf("%d marginals", len(res.HonestProb))
	}
	// W defaults to ceil(ln 100) = 5.
	if res.W != 5 {
		t.Fatalf("default W = %d", res.W)
	}
	for v, p := range res.HonestProb {
		if p < 0 || p > 1 {
			t.Fatalf("marginal[%d] = %v", v, p)
		}
	}
}

func TestSybilInferSeparatesSparseCut(t *testing.T) {
	// A fast-mixing honest region with a sybil cluster behind few
	// attack edges: the posterior should give honest nodes visibly
	// higher marginals than sybils.
	honest := gen.BarabasiAlbert(250, 5, rng(3))
	sybilRegion := gen.BarabasiAlbert(60, 5, rng(4))
	a := NewAttack(honest, sybilRegion, 3, rng(5))
	res, err := SybilInfer(a.Combined, InferConfig{
		WalksPerNode: 15, W: 8, Samples: 60, Burn: 40, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	var hSum, sSum float64
	for v, p := range res.HonestProb {
		if a.IsSybil(graph.NodeID(v)) {
			sSum += p
		} else {
			hSum += p
		}
	}
	hMean := hSum / float64(a.HonestN)
	sMean := sSum / float64(a.Combined.NumNodes()-a.HonestN)
	if hMean <= sMean+0.15 {
		t.Fatalf("no separation: honest mean %v vs sybil mean %v", hMean, sMean)
	}
}

func TestSybilInferClassify(t *testing.T) {
	res := &InferResult{HonestProb: []float64{0.9, 0.1, 0.55}}
	got := res.Classify(0.5)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("classify %v", got)
	}
}

func TestSybilInferDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, rng(7))
	cfg := InferConfig{WalksPerNode: 10, W: 5, Samples: 15, Burn: 5, Seed: 9}
	a, err := SybilInfer(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SybilInfer(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.HonestProb {
		if a.HonestProb[v] != b.HonestProb[v] {
			t.Fatalf("marginal %d differs across identical runs", v)
		}
	}
}

func TestSybilGuardFull(t *testing.T) {
	g := fastGraph(250)
	full, err := SybilGuardFull(g, 0, AllHonest(g, 0), GuardConfig{W: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if full.AcceptRate() < 0.5 {
		t.Fatalf("full-guard accept rate %v", full.AcceptRate())
	}
	// The all-routes-must-intersect condition is stricter per route
	// but uses d routes per side; with tiny walks it still rejects.
	short, err := SybilGuardFull(g, 0, AllHonest(g, 0), GuardConfig{W: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if short.AcceptRate() >= full.AcceptRate() {
		t.Fatalf("w=1 rate %v not below w=40 rate %v", short.AcceptRate(), full.AcceptRate())
	}
	if _, err := SybilGuardFull(&graph.Graph{}, 0, nil, GuardConfig{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}
