package sybil

import (
	"errors"
	"math"

	"mixtime/internal/graph"
	"mixtime/internal/walk"
)

// GuardConfig parameterizes the SybilGuard-style baseline.
type GuardConfig struct {
	// W is the route length. If 0 it defaults to the SybilGuard
	// prescription Θ(√(n·log n)).
	W int
	// Seed makes the run deterministic.
	Seed uint64
}

// GuardResult reports a SybilGuard verification sweep.
type GuardResult struct {
	Verifier    graph.NodeID
	Suspects    []graph.NodeID
	Accepted    []bool
	NumAccepted int
	W           int
}

// AcceptRate returns the fraction of suspects accepted.
func (r *GuardResult) AcceptRate() float64 {
	if len(r.Suspects) == 0 {
		return 0
	}
	return float64(r.NumAccepted) / float64(len(r.Suspects))
}

// GuardWalkLength returns SybilGuard's prescribed route length
// ⌈√(n·ln n)⌉.
func GuardWalkLength(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(math.Sqrt(float64(n) * math.Log(float64(n)))))
}

// SybilGuard runs the single-route baseline: every node performs one
// random route of length w; the verifier accepts a suspect if their
// routes intersect at a vertex. SybilGuardFull implements the
// protocol as published (one route per edge); this variant preserves
// the dependence on mixing that the paper examines, with pessimistic
// constants.
func SybilGuard(g *graph.Graph, verifier graph.NodeID, suspects []graph.NodeID, cfg GuardConfig) (*GuardResult, error) {
	if g.NumNodes() < 2 || g.MinDegree() < 1 {
		return nil, errors.New("sybil: graph unsuitable for routing")
	}
	if cfg.W == 0 {
		cfg.W = GuardWalkLength(g.NumNodes())
	}
	if cfg.W < 1 {
		return nil, errors.New("sybil: route length must be ≥ 1")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	router := walk.NewInstance(g, cfg.Seed)

	vSlot := firstSlot(cfg.Seed^0xa5a5a5a5, 0, verifier, g.Degree(verifier))
	vTraj := walk.RouteTrace(router, verifier, vSlot, cfg.W)
	onV := make(map[graph.NodeID]bool, len(vTraj))
	for _, v := range vTraj {
		onV[v] = true
	}

	res := &GuardResult{
		Verifier: verifier,
		Suspects: suspects,
		Accepted: make([]bool, len(suspects)),
		W:        cfg.W,
	}
	for i, s := range suspects {
		slot := firstSlot(cfg.Seed, 0, s, g.Degree(s))
		traj := walk.RouteTrace(router, s, slot, cfg.W)
		for _, v := range traj {
			if onV[v] {
				res.Accepted[i] = true
				res.NumAccepted++
				break
			}
		}
	}
	return res, nil
}

// SybilGuardFull runs SybilGuard as published: the verifier performs
// one random route along each of its d edges, every suspect does the
// same along each of its own edges, and the suspect is accepted if
// every verifier route intersects at least one suspect route at a
// vertex (SybilGuard's "all my routes must cross the suspect"
// condition, which its analysis needs for the √n bound).
func SybilGuardFull(g *graph.Graph, verifier graph.NodeID, suspects []graph.NodeID, cfg GuardConfig) (*GuardResult, error) {
	if g.NumNodes() < 2 || g.MinDegree() < 1 {
		return nil, errors.New("sybil: graph unsuitable for routing")
	}
	if cfg.W == 0 {
		cfg.W = GuardWalkLength(g.NumNodes())
	}
	if cfg.W < 1 {
		return nil, errors.New("sybil: route length must be ≥ 1")
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	router := walk.NewInstance(g, cfg.Seed)

	// One vertex set per verifier route (per edge slot).
	dV := g.Degree(verifier)
	vRoutes := make([]map[graph.NodeID]bool, dV)
	for slot := 0; slot < dV; slot++ {
		traj := walk.RouteTrace(router, verifier, slot, cfg.W)
		set := make(map[graph.NodeID]bool, len(traj))
		for _, v := range traj {
			set[v] = true
		}
		vRoutes[slot] = set
	}

	res := &GuardResult{
		Verifier: verifier,
		Suspects: suspects,
		Accepted: make([]bool, len(suspects)),
		W:        cfg.W,
	}
	for i, s := range suspects {
		// Union of the suspect's route vertices.
		sVerts := map[graph.NodeID]bool{}
		for slot := 0; slot < g.Degree(s); slot++ {
			for _, v := range walk.RouteTrace(router, s, slot, cfg.W) {
				sVerts[v] = true
			}
		}
		all := true
		for _, vr := range vRoutes {
			hit := false
			for v := range sVerts {
				if vr[v] {
					hit = true
					break
				}
			}
			if !hit {
				all = false
				break
			}
		}
		if all {
			res.Accepted[i] = true
			res.NumAccepted++
		}
	}
	return res, nil
}
