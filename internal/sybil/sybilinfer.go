package sybil

import (
	"errors"
	"math"
	"math/rand/v2"

	"mixtime/internal/graph"
	"mixtime/internal/walk"
)

// InferConfig parameterizes SybilInfer (Danezis & Mittal, NDSS 2009)
// — the Bayesian detection mechanism the paper lists among the
// defenses whose fast-mixing assumption it measures.
type InferConfig struct {
	// WalksPerNode is the number of trace walks each node starts
	// (default 20).
	WalksPerNode int
	// W is the trace walk length (default ⌈ln n⌉ — the fast-mixing
	// assumption embedded in the protocol; the paper's finding is
	// exactly that this is too short on real graphs).
	W int
	// Samples is the number of retained Metropolis–Hastings samples
	// (default 300); Burn is the discarded prefix (default
	// Samples/2). One sweep of n single-node proposals separates
	// consecutive samples.
	Samples, Burn int
	// Seed makes the run deterministic.
	Seed uint64
}

func (c InferConfig) withDefaults(n int) InferConfig {
	if c.WalksPerNode <= 0 {
		c.WalksPerNode = 20
	}
	if c.W <= 0 {
		c.W = int(math.Ceil(math.Log(float64(n))))
		if c.W < 1 {
			c.W = 1
		}
	}
	if c.Samples <= 0 {
		c.Samples = 300
	}
	if c.Burn <= 0 {
		c.Burn = c.Samples / 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// InferResult is the marginal posterior of SybilInfer: per node, the
// fraction of sampled honest sets containing it.
type InferResult struct {
	// HonestProb[v] estimates P(v honest | traces).
	HonestProb []float64
	// W echoes the trace walk length used.
	W int
}

// Classify returns the nodes whose honest probability is at least
// threshold.
func (r *InferResult) Classify(threshold float64) []graph.NodeID {
	var out []graph.NodeID
	for v, p := range r.HonestProb {
		if p >= threshold {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// SybilInfer runs the inference over endpoint traces of short random
// walks, following the generative model of the SybilInfer paper:
// under the hypothesis "X is the honest set", a trace walk started in
// X is fast-mixing within X, so its endpoint e ∈ X carries probability
// deg(e)/vol(X) (the stationary distribution restricted to X), while
// endpoints that escape X — and all walks started outside X — are
// adversary-controlled and modeled as uniform (1/n). The posterior
// therefore prefers sets across whose boundary few trace walks flow
// and whose internal endpoints look stationary: exactly the sparse
// honest/sybil cut. Metropolis–Hastings with single-node flips
// explores the set space; marginals average membership over retained
// samples.
//
// Detection power inherits the fast-mixing assumption the host paper
// measures: with W ≈ ln n on a slow-mixing graph, honest-region
// endpoints are far from stationary and the honest/sybil marginals
// blur.
func SybilInfer(g *graph.Graph, cfg InferConfig) (*InferResult, error) {
	n := g.NumNodes()
	if n < 2 || g.MinDegree() < 1 {
		return nil, errors.New("sybil: graph unsuitable for tracing")
	}
	cfg = cfg.withDefaults(n)
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x1f3a))

	// Traces: endpoints of WalksPerNode plain walks per node, plus a
	// reverse index of walks by endpoint.
	ends := make([][]graph.NodeID, n)
	endedAt := make([][]graph.NodeID, n) // endpoint → walk start nodes
	for v := 0; v < n; v++ {
		ends[v] = make([]graph.NodeID, cfg.WalksPerNode)
		for k := range ends[v] {
			e := walk.Endpoint(g, graph.NodeID(v), cfg.W, rng)
			ends[v][k] = e
			endedAt[e] = append(endedAt[e], graph.NodeID(v))
		}
	}
	logDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		logDeg[v] = math.Log(float64(g.Degree(graph.NodeID(v))))
	}
	logN := math.Log(float64(n))

	// State: X membership, vol(X), and for the "qualifying" walks
	// (start ∈ X and end ∈ X) the count and Σ log deg(end). Up to the
	// constant −(total walks)·log n, the log-likelihood is
	//
	//	logL = Σ_qualifying log deg(end) − N_XX·log vol(X) + N_XX·log n.
	inX := make([]bool, n)
	volX := 0.0
	var nXX int
	var sumLogDeg float64
	for v := range inX {
		inX[v] = true
		volX += float64(g.Degree(graph.NodeID(v)))
	}
	for v := 0; v < n; v++ {
		for _, e := range ends[v] {
			nXX++
			sumLogDeg += logDeg[e]
		}
	}

	logL := func() float64 {
		if nXX == 0 {
			return 0 // everything adversarial: the dropped constant
		}
		return sumLogDeg + float64(nXX)*(logN-math.Log(volX))
	}

	// flip toggles u's membership, maintaining the sufficient
	// statistics exactly (see the ordering notes: a walk from u to u
	// is counted exactly once, in the ends[u] scan).
	flip := func(u graph.NodeID) {
		if inX[u] {
			for _, e := range ends[u] {
				if inX[e] {
					nXX--
					sumLogDeg -= logDeg[e]
				}
			}
			for _, s := range endedAt[u] {
				if s != u && inX[s] {
					nXX--
					sumLogDeg -= logDeg[u]
				}
			}
			inX[u] = false
			volX -= float64(g.Degree(u))
		} else {
			inX[u] = true
			volX += float64(g.Degree(u))
			for _, s := range endedAt[u] {
				if s != u && inX[s] {
					nXX++
					sumLogDeg += logDeg[u]
				}
			}
			for _, e := range ends[u] {
				if inX[e] {
					nXX++
					sumLogDeg += logDeg[e]
				}
			}
		}
	}

	cur := logL()
	counts := make([]float64, n)
	total := cfg.Samples + cfg.Burn
	for iter := 0; iter < total; iter++ {
		for k := 0; k < n; k++ {
			u := graph.NodeID(rng.IntN(n))
			flip(u)
			prop := logL()
			if prop >= cur || rng.Float64() < math.Exp(prop-cur) {
				cur = prop
			} else {
				flip(u)
			}
		}
		if iter >= cfg.Burn {
			for v := 0; v < n; v++ {
				if inX[v] {
					counts[v]++
				}
			}
		}
	}
	res := &InferResult{HonestProb: counts, W: cfg.W}
	inv := 1 / float64(cfg.Samples)
	for v := range res.HonestProb {
		res.HonestProb[v] *= inv
	}
	return res, nil
}
