package sybil

import (
	"errors"

	"mixtime/internal/graph"
	"mixtime/internal/maxflow"
)

// SumUpConfig parameterizes SumUp (Tran et al., NSDI 2009), the
// vote-collection Sybil defense the paper cites [23]: votes flow over
// the trust graph to a collector through a capacity "envelope", so no
// more than ~1 bogus vote per attack edge can be collected regardless
// of how many sybil identities vote.
type SumUpConfig struct {
	// Cmax is the expected number of honest votes: the ticket budget
	// distributed outward from the collector that shapes the
	// envelope. If 0 it defaults to the number of voters.
	Cmax int
}

// SumUpResult reports a vote collection.
type SumUpResult struct {
	Collector graph.NodeID
	Voters    []graph.NodeID
	// Collected[i] reports whether Voters[i]'s vote reached the
	// collector; NumCollected counts them.
	Collected    []bool
	NumCollected int
	// EnvelopeSize is the number of nodes that received at least one
	// ticket (the high-capacity region around the collector).
	EnvelopeSize int
}

// CollectionRate returns the fraction of votes collected.
func (r *SumUpResult) CollectionRate() float64 {
	if len(r.Voters) == 0 {
		return 0
	}
	return float64(r.NumCollected) / float64(len(r.Voters))
}

// SumUp collects the voters' votes at the collector.
//
// Capacity assignment follows SumUp's ticket distribution: the
// collector holds Cmax tickets; at each BFS level the node's tickets
// are split evenly across its edges to the next level, and each edge's
// capacity toward the collector is (tickets carried + 1). Every other
// edge direction keeps capacity 1, so outside the envelope a single
// unit of flow per edge is all an attacker can use — bounding bogus
// votes by the number of attack edges. Collected votes are the
// maximum flow from a super-source (one unit per voter) to the
// collector.
func SumUp(g *graph.Graph, collector graph.NodeID, voters []graph.NodeID, cfg SumUpConfig) (*SumUpResult, error) {
	n := g.NumNodes()
	if n < 2 || g.MinDegree() < 1 {
		return nil, errors.New("sybil: graph unsuitable for vote collection")
	}
	if int(collector) >= n {
		return nil, errors.New("sybil: collector out of range")
	}
	if cfg.Cmax <= 0 {
		cfg.Cmax = len(voters)
	}
	if cfg.Cmax < 1 {
		cfg.Cmax = 1
	}

	// BFS levels from the collector.
	const unreached = int32(-1)
	level := make([]int32, n)
	for i := range level {
		level[i] = unreached
	}
	order := make([]graph.NodeID, 0, n)
	level[collector] = 0
	order = append(order, collector)
	for head := 0; head < len(order); head++ {
		v := order[head]
		for _, w := range g.Neighbors(v) {
			if level[w] == unreached {
				level[w] = level[v] + 1
				order = append(order, w)
			}
		}
	}

	// Ticket distribution outward in BFS order; cap[slot] is the
	// inward capacity of the directed edge (v→next level parent is
	// the inward direction; we store per outward edge the tickets it
	// carries).
	tickets := make([]int64, n)
	tickets[collector] = int64(cfg.Cmax)
	// capToward[u][i] is the capacity of the edge from neighbor
	// adj[i] of u INTO u?  Simpler: record ticket count per directed
	// edge (from, slot) using a flat map keyed by packed edge.
	carried := make(map[uint64]int64)
	pack := func(u, v graph.NodeID) uint64 { return uint64(u)<<32 | uint64(v) }
	envelope := 0
	for _, v := range order {
		if tickets[v] > 0 {
			envelope++
		}
		// Outward edges: neighbors one level further out.
		var outs []graph.NodeID
		for _, w := range g.Neighbors(v) {
			if level[w] == level[v]+1 {
				outs = append(outs, w)
			}
		}
		if len(outs) == 0 || tickets[v] == 0 {
			continue
		}
		base := tickets[v] / int64(len(outs))
		rem := tickets[v] % int64(len(outs))
		for i, w := range outs {
			t := base
			if int64(i) < rem {
				t++
			}
			carried[pack(w, v)] = t // capacity of the inward edge w→v
			tickets[w] += t
		}
	}

	// Flow network: graph nodes 0..n-1, super-source n.
	nw := maxflow.NewNetwork(n + 1)
	g.Edges(func(u, v graph.NodeID) bool {
		// Inward direction gets ticket capacity + 1; the opposite
		// direction capacity 1.
		nw.AddEdge(int(u), int(v), carried[pack(u, v)]+1)
		nw.AddEdge(int(v), int(u), carried[pack(v, u)]+1)
		return true
	})
	src := n
	voterEdges := make([]int, len(voters))
	for i, v := range voters {
		if int(v) >= n {
			return nil, errors.New("sybil: voter out of range")
		}
		voterEdges[i] = nw.AddEdge(src, int(v), 1)
	}
	flow, err := nw.MaxFlow(src, int(collector))
	if err != nil {
		return nil, err
	}
	res := &SumUpResult{
		Collector:    collector,
		Voters:       voters,
		Collected:    make([]bool, len(voters)),
		NumCollected: int(flow),
		EnvelopeSize: envelope,
	}
	for i, ei := range voterEdges {
		res.Collected[i] = nw.Flow(ei) > 0
	}
	return res, nil
}
