// Package telemetry instruments the measurement kernels with cheap,
// concurrency-safe counters and scoped wall-time timers, making the
// quantities behind the paper's evaluation — walk steps propagated,
// CSR edges scanned, matvecs, Lanczos/power iterations, restarts —
// first-class observable values. Distributed mixing-time work
// measures cost in rounds and messages; the single-node analogues
// here are edges scanned and operator applications.
//
// The design contract, relied on by the kernel benchmarks:
//
//   - A nil *Collector is a valid collector: every method nil-checks
//     its receiver and returns immediately, so uninstrumented runs
//     pay one predictable branch per kernel call and zero
//     allocations (verified by TestStepNilCollectorNoAllocs and
//     BenchmarkStepCollector).
//   - Counter updates are single atomic adds issued at kernel-call
//     granularity (once per CSR pass, never per edge), so an
//     instrumented run does not change the floating-point work and
//     its experiment output stays byte-identical.
//   - A Collector is safe for concurrent use by the sharded and
//     blocked kernels; Snapshot may race with writers and then
//     reflects some interleaving of their updates, which is exact
//     once the instrumented call has returned.
//
// Lifecycle: construct with New, hand the collector to the layers to
// be observed (runner.Config.Collector, core.Options.Collector,
// markov.WithCollector, spectral.Options.Collector), read results
// with Snapshot, and aggregate child collectors into a parent with
// Merge. The runner gives each experiment its own child collector so
// per-experiment attribution survives parallel scheduling.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one monotonic event count.
type Counter int

// The counter taxonomy. Counts are cumulative over the collector's
// lifetime; see DESIGN.md §8 for which kernel increments which.
const (
	// EdgesScanned counts CSR adjacency entries read by propagation and
	// matvec kernels (one full pass adds 2m).
	EdgesScanned Counter = iota
	// Matvecs counts single-vector operator applications: markov Step /
	// StepParallel and spectral Apply / ApplyParallel.
	Matvecs
	// SpMMBlocks counts blocked (multi-source) propagation passes.
	SpMMBlocks
	// SourceSteps counts per-source walk steps propagated: a blocked
	// pass of width B advancing one step adds B.
	SourceSteps
	// WalkerMoves counts Monte-Carlo walker transitions (MCTrace).
	WalkerMoves
	// PowerIterations counts deflated power-iteration steps.
	PowerIterations
	// LanczosIterations counts Lanczos steps.
	LanczosIterations
	// Restarts counts solver restarts: a Lanczos run failing to
	// converge and falling back to power iteration.
	Restarts
	// TracesCompleted counts finished per-source TV traces.
	TracesCompleted

	// The distmix_* counters below are the communication accounting of
	// the simulated distributed estimator (internal/distmix): its cost
	// model is rounds and messages, the quantities a real deployment
	// would pay for, so they live beside the single-node kernel
	// counters for direct comparison.

	// DistRounds counts supersteps executed by the distmix engine.
	DistRounds
	// DistMessages counts every walker message delivered between
	// supersteps, on-shard and off-shard alike.
	DistMessages
	// DistOffShardMessages counts the subset of messages that crossed a
	// shard boundary — the traffic a real cluster would put on the wire.
	DistOffShardMessages
	// DistOnShardBytes is the accounted payload volume of on-shard
	// (local) messages.
	DistOnShardBytes
	// DistOffShardBytes is the accounted payload volume of off-shard
	// (cross-worker) messages.
	DistOffShardBytes

	// The service_* counters below are incremented by the mixtimed
	// query layer (internal/service), not by the kernels; they appear
	// in /stats snapshots beside the kernel counters the solves
	// accumulate.

	// ServiceRequests counts queries accepted by the unified endpoint.
	ServiceRequests
	// ServiceCacheHits counts queries answered from a completed cache
	// entry (no waiting on a solve).
	ServiceCacheHits
	// ServiceCacheMisses counts queries that spawned a new solve.
	ServiceCacheMisses
	// ServiceJoins counts queries deduplicated onto an in-flight
	// identical solve (singleflight).
	ServiceJoins
	// ServiceSolves counts spectral/sampling solves actually executed —
	// the counter the cache acceptance check watches: a repeated
	// identical query must leave it unchanged.
	ServiceSolves
	// ServiceErrors counts queries that ended in an error (validation,
	// solve failure, or cancellation).
	ServiceErrors
	// ServiceMutations counts accepted /v1/mutate requests — each one
	// bumps a mutable graph's version and invalidates its cached
	// results.
	ServiceMutations
	// ServiceEvictions counts completed cache entries dropped because
	// the graph they were computed on mutated underneath them.
	ServiceEvictions
	// ServiceShed counts requests rejected by admission control —
	// answered 429 because the solve wait-queue was full or the queue
	// wait expired — instead of piling onto the pool.
	ServiceShed
	// ServicePanics counts solves that panicked and were contained by
	// the per-solve recover barrier: each one is a 500 envelope to the
	// requester and nothing worse.
	ServicePanics
	// ServiceClientGone counts queries whose client disconnected while
	// the request was in flight — logged and counted, never reported as
	// a service error (there is nobody left to answer).
	ServiceClientGone
	// ServicePersistWrites counts completed results written through to
	// the on-disk cache (mixtimed -cache-dir).
	ServicePersistWrites
	// ServiceCacheLoaded counts completed results warm-loaded from the
	// on-disk cache at startup — answers that survived a restart.
	ServiceCacheLoaded

	// The evolve_* counters below are incremented by the evolving-graph
	// subsystem (internal/evolve): epoch rebuilds and the edge churn
	// that caused them.

	// EvolveEpochs counts mutation batches applied to mutable graphs
	// (each one is a CSR epoch rebuild and a version bump).
	EvolveEpochs
	// EvolveEdgesInserted counts edges actually added by mutation
	// batches (duplicates and self-loops excluded).
	EvolveEdgesInserted
	// EvolveEdgesDeleted counts edges actually removed by mutation
	// batches (absent edges excluded).
	EvolveEdgesDeleted
	// EvolveWarmStarts counts spectral solves seeded from a previous
	// epoch's eigenvector instead of a random unit vector.
	EvolveWarmStarts

	numCounters
)

// counterNames are the stable machine-readable counter keys used by
// Snapshot rendering and CSV/JSON emission.
var counterNames = [numCounters]string{
	"edges_scanned",
	"matvecs",
	"spmm_blocks",
	"source_steps",
	"walker_moves",
	"power_iterations",
	"lanczos_iterations",
	"restarts",
	"traces_completed",
	"distmix_rounds",
	"distmix_messages",
	"distmix_offshard_messages",
	"distmix_onshard_bytes",
	"distmix_offshard_bytes",
	"service_requests",
	"service_cache_hits",
	"service_cache_misses",
	"service_joins",
	"service_solves",
	"service_errors",
	"service_mutations",
	"service_evictions",
	"service_shed",
	"service_panics",
	"service_client_gone",
	"service_persist_writes",
	"service_cache_loaded",
	"evolve_epochs",
	"evolve_edges_inserted",
	"evolve_edges_deleted",
	"evolve_warm_starts",
}

// String returns the counter's stable snake_case key.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "unknown"
	}
	return counterNames[c]
}

// Gauge identifies one maximum-tracking observation.
type Gauge int

const (
	// ShardImbalanceMilli is the worst observed shard-plan imbalance,
	// in thousandths: 1000·(max shard adjacency)/(mean shard
	// adjacency). 1000 is a perfectly balanced plan.
	ShardImbalanceMilli Gauge = iota
	// MaxGraphAdjacency is the largest adjacency length (2m) of any
	// instrumented graph — context for reading the edge counters.
	MaxGraphAdjacency
	// MaxInflightRequests is the peak number of service queries being
	// answered at once — how close the daemon came to its pool bound.
	MaxInflightRequests
	// ServiceQueueDepth is the peak number of solves waiting in the
	// admission queue for a pool slot — how close the daemon came to
	// shedding load.
	ServiceQueueDepth

	numGauges
)

var gaugeNames = [numGauges]string{
	"shard_imbalance_milli",
	"max_graph_adjacency",
	"max_inflight_requests",
	"service_queue_depth",
}

// String returns the gauge's stable snake_case key.
func (g Gauge) String() string {
	if g < 0 || g >= numGauges {
		return "unknown"
	}
	return gaugeNames[g]
}

// Collector accumulates counters, gauges and timers. The zero value
// is ready to use; so is a nil pointer (every method is a no-op on
// nil), which is how uninstrumented hot paths stay at full speed. Safe
// for concurrent use.
type Collector struct {
	counters [numCounters]atomic.Int64
	gauges   [numGauges]atomic.Int64

	mu     sync.Mutex
	timers map[string]*stageTimer
}

type stageTimer struct {
	nanos int64
	count int64
}

// New returns an empty collector.
func New() *Collector { return &Collector{} }

// Add increments ctr by n. No-op on a nil collector — this is the
// zero-overhead fast path the kernels rely on.
func (c *Collector) Add(ctr Counter, n int64) {
	if c == nil {
		return
	}
	c.counters[ctr].Add(n)
}

// ObserveMax raises gauge g to v if v exceeds the current value.
// No-op on a nil collector.
func (c *Collector) ObserveMax(g Gauge, v int64) {
	if c == nil {
		return
	}
	for {
		cur := c.gauges[g].Load()
		if v <= cur || c.gauges[g].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Timer starts a scoped wall-time measurement for the named stage and
// returns the function that stops it. Usage:
//
//	defer col.Timer("spectral")()
//
// Timers are for stage-granularity scopes (an SLEM estimation, a
// sampling pass), not per-edge work; on a nil collector the returned
// stop function is a shared no-op.
func (c *Collector) Timer(stage string) func() {
	if c == nil {
		return noopStop
	}
	start := time.Now()
	return func() { c.addTime(stage, time.Since(start)) }
}

var noopStop = func() {}

func (c *Collector) addTime(stage string, d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timers == nil {
		c.timers = map[string]*stageTimer{}
	}
	t := c.timers[stage]
	if t == nil {
		t = &stageTimer{}
		c.timers[stage] = t
	}
	t.nanos += int64(d)
	t.count++
}

// Count returns the current value of ctr (0 on a nil collector).
func (c *Collector) Count(ctr Counter) int64 {
	if c == nil {
		return 0
	}
	return c.counters[ctr].Load()
}

// StageTime is the accumulated wall time of one named stage.
type StageTime struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
	Count int64  `json:"count"`
}

// Snapshot is a point-in-time copy of a collector's state, suitable
// for rendering, emission and merging. Counter and gauge fields are
// deterministic for a deterministic workload; Timers carry wall times
// and are not (they are excluded from byte-identity guarantees).
type Snapshot struct {
	Counters map[string]int64 `json:"counters"`
	Gauges   map[string]int64 `json:"gauges"`
	Timers   []StageTime      `json:"timers,omitempty"`
}

// Snapshot copies the collector's current state. On a nil collector
// it returns an empty (but usable) snapshot.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Counters: make(map[string]int64, int(numCounters)),
		Gauges:   make(map[string]int64, int(numGauges)),
	}
	if c == nil {
		return s
	}
	for i := Counter(0); i < numCounters; i++ {
		if v := c.counters[i].Load(); v != 0 {
			s.Counters[i.String()] = v
		}
	}
	for i := Gauge(0); i < numGauges; i++ {
		if v := c.gauges[i].Load(); v != 0 {
			s.Gauges[i.String()] = v
		}
	}
	c.mu.Lock()
	for stage, t := range c.timers {
		s.Timers = append(s.Timers, StageTime{Stage: stage, Nanos: t.nanos, Count: t.count})
	}
	c.mu.Unlock()
	sort.Slice(s.Timers, func(i, j int) bool { return s.Timers[i].Stage < s.Timers[j].Stage })
	return s
}

// Merge folds a snapshot into the collector: counters and timers add,
// gauges take the maximum. This is how per-experiment child
// collectors aggregate into a run-wide parent. No-op on nil.
func (c *Collector) Merge(s Snapshot) {
	if c == nil {
		return
	}
	for i := Counter(0); i < numCounters; i++ {
		if v, ok := s.Counters[i.String()]; ok {
			c.counters[i].Add(v)
		}
	}
	for i := Gauge(0); i < numGauges; i++ {
		if v, ok := s.Gauges[i.String()]; ok {
			c.ObserveMax(i, v)
		}
	}
	for _, t := range s.Timers {
		c.addTime(t.Stage, time.Duration(t.Nanos))
	}
}

// Reset zeroes every counter, gauge and timer. No-op on nil.
func (c *Collector) Reset() {
	if c == nil {
		return
	}
	for i := range c.counters {
		c.counters[i].Store(0)
	}
	for i := range c.gauges {
		c.gauges[i].Store(0)
	}
	c.mu.Lock()
	c.timers = nil
	c.mu.Unlock()
}

// Get returns the named counter value from the snapshot (0 when the
// counter never fired).
func (s Snapshot) Get(ctr Counter) int64 { return s.Counters[ctr.String()] }

// GetGauge returns the named gauge value (0 when never observed).
func (s Snapshot) GetGauge(g Gauge) int64 { return s.Gauges[g.String()] }

// IsZero reports whether the snapshot recorded nothing.
func (s Snapshot) IsZero() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Timers) == 0
}

// rows returns the snapshot as ordered (key, value) pairs: counters
// in taxonomy order, then gauges, then timers by stage name. The
// stable order is what makes Render and CSV deterministic.
func (s Snapshot) rows() [][2]string {
	var out [][2]string
	for i := Counter(0); i < numCounters; i++ {
		if v, ok := s.Counters[i.String()]; ok {
			out = append(out, [2]string{i.String(), fmt.Sprintf("%d", v)})
		}
	}
	for i := Gauge(0); i < numGauges; i++ {
		if v, ok := s.Gauges[i.String()]; ok {
			out = append(out, [2]string{i.String(), fmt.Sprintf("%d", v)})
		}
	}
	for _, t := range s.Timers {
		out = append(out, [2]string{"time_" + t.Stage + "_ms",
			fmt.Sprintf("%.1f", float64(t.Nanos)/1e6)})
	}
	return out
}

// Render formats the snapshot as an aligned two-column text table.
func (s Snapshot) Render() string {
	rows := s.rows()
	if len(rows) == 0 {
		return "(no telemetry recorded)\n"
	}
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", width, r[0], r[1])
	}
	return b.String()
}

// CSV writes the snapshot as "metric,value" rows in the same stable
// order as Render.
func (s Snapshot) CSV(w io.Writer) error {
	if _, err := io.WriteString(w, "metric,value\n"); err != nil {
		return err
	}
	for _, r := range s.rows() {
		if _, err := fmt.Fprintf(w, "%s,%s\n", r[0], r[1]); err != nil {
			return err
		}
	}
	return nil
}

// JSON writes the snapshot as indented JSON. Round-trips through
// json.Unmarshal back into an equal Snapshot.
func (s Snapshot) JSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
