package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	c.Add(EdgesScanned, 10)
	c.ObserveMax(ShardImbalanceMilli, 1200)
	c.Timer("stage")()
	c.Merge(Snapshot{})
	c.Reset()
	if got := c.Count(EdgesScanned); got != 0 {
		t.Fatalf("nil collector Count = %d, want 0", got)
	}
	s := c.Snapshot()
	if !s.IsZero() {
		t.Fatalf("nil collector snapshot not zero: %+v", s)
	}
}

func TestNilCollectorAddAllocatesNothing(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(Matvecs, 1)
		c.Add(EdgesScanned, 1024)
	})
	if allocs != 0 {
		t.Fatalf("nil Collector.Add allocates %.1f objects/op, want 0", allocs)
	}
}

func TestCountersAndGauges(t *testing.T) {
	c := New()
	c.Add(Matvecs, 3)
	c.Add(Matvecs, 2)
	c.Add(EdgesScanned, 100)
	c.ObserveMax(ShardImbalanceMilli, 1100)
	c.ObserveMax(ShardImbalanceMilli, 1050) // lower: ignored
	s := c.Snapshot()
	if got := s.Get(Matvecs); got != 5 {
		t.Errorf("matvecs = %d, want 5", got)
	}
	if got := s.Get(EdgesScanned); got != 100 {
		t.Errorf("edges = %d, want 100", got)
	}
	if got := s.GetGauge(ShardImbalanceMilli); got != 1100 {
		t.Errorf("imbalance = %d, want 1100", got)
	}
	if s.Get(Restarts) != 0 {
		t.Errorf("restarts should be absent/zero")
	}
}

func TestConcurrentAdds(t *testing.T) {
	c := New()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Add(SourceSteps, 1)
				c.ObserveMax(MaxGraphAdjacency, int64(i))
			}
		}()
	}
	wg.Wait()
	if got := c.Count(SourceSteps); got != workers*per {
		t.Fatalf("source steps = %d, want %d", got, workers*per)
	}
	if got := c.Snapshot().GetGauge(MaxGraphAdjacency); got != per-1 {
		t.Fatalf("max gauge = %d, want %d", got, per-1)
	}
}

func TestTimers(t *testing.T) {
	c := New()
	stop := c.Timer("spectral")
	time.Sleep(time.Millisecond)
	stop()
	c.addTime("spectral", 5*time.Millisecond)
	c.addTime("sampling", 2*time.Millisecond)
	s := c.Snapshot()
	if len(s.Timers) != 2 {
		t.Fatalf("timers = %+v, want 2 stages", s.Timers)
	}
	// Sorted by stage name: sampling before spectral.
	if s.Timers[0].Stage != "sampling" || s.Timers[1].Stage != "spectral" {
		t.Fatalf("timer order wrong: %+v", s.Timers)
	}
	if s.Timers[1].Count != 2 || s.Timers[1].Nanos < int64(6*time.Millisecond) {
		t.Fatalf("spectral timer = %+v, want count 2 and >= 6ms", s.Timers[1])
	}
}

func TestMergeAggregates(t *testing.T) {
	child1, child2, parent := New(), New(), New()
	child1.Add(Matvecs, 10)
	child1.ObserveMax(ShardImbalanceMilli, 1500)
	child1.addTime("spectral", time.Second)
	child2.Add(Matvecs, 5)
	child2.Add(Restarts, 1)
	child2.ObserveMax(ShardImbalanceMilli, 1200)
	parent.Merge(child1.Snapshot())
	parent.Merge(child2.Snapshot())
	s := parent.Snapshot()
	if got := s.Get(Matvecs); got != 15 {
		t.Errorf("merged matvecs = %d, want 15", got)
	}
	if got := s.Get(Restarts); got != 1 {
		t.Errorf("merged restarts = %d, want 1", got)
	}
	if got := s.GetGauge(ShardImbalanceMilli); got != 1500 {
		t.Errorf("merged imbalance = %d, want max 1500", got)
	}
	if len(s.Timers) != 1 || s.Timers[0].Nanos != int64(time.Second) {
		t.Errorf("merged timers = %+v", s.Timers)
	}
}

// populated returns a snapshot with every field class filled, as an
// instrumented experiment would produce.
func populated() Snapshot {
	c := New()
	c.Add(EdgesScanned, 123456)
	c.Add(Matvecs, 789)
	c.Add(SpMMBlocks, 25)
	c.Add(SourceSteps, 10000)
	c.Add(PowerIterations, 321)
	c.Add(LanczosIterations, 55)
	c.Add(Restarts, 1)
	c.Add(TracesCompleted, 200)
	c.ObserveMax(ShardImbalanceMilli, 1037)
	c.ObserveMax(MaxGraphAdjacency, 65536)
	c.addTime("spectral", 1500*time.Millisecond)
	c.addTime("sampling", 2500*time.Millisecond)
	return c.Snapshot()
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	s := populated()
	var buf bytes.Buffer
	if err := s.JSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("JSON round trip changed snapshot:\n  in  %+v\n  out %+v", s, back)
	}
}

func TestSnapshotEmissionDeterministic(t *testing.T) {
	s := populated()
	var c1, j1 bytes.Buffer
	if err := s.CSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := s.JSON(&j1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		var c2, j2 bytes.Buffer
		if err := s.CSV(&c2); err != nil {
			t.Fatal(err)
		}
		if err := s.JSON(&j2); err != nil {
			t.Fatal(err)
		}
		if c1.String() != c2.String() {
			t.Fatalf("CSV emission nondeterministic:\n%s\nvs\n%s", c1.String(), c2.String())
		}
		if j1.String() != j2.String() {
			t.Fatalf("JSON emission nondeterministic")
		}
	}
	if s.Render() != s.Render() {
		t.Fatal("Render nondeterministic")
	}
	// Counters appear in taxonomy order, timers last.
	csv := c1.String()
	if !strings.HasPrefix(csv, "metric,value\nedges_scanned,123456\nmatvecs,789\n") {
		t.Fatalf("CSV order unexpected:\n%s", csv)
	}
	if !strings.Contains(csv, "time_sampling_ms,2500.0") {
		t.Fatalf("CSV missing timer row:\n%s", csv)
	}
}

func TestCounterAndGaugeNames(t *testing.T) {
	for i := Counter(0); i < numCounters; i++ {
		if i.String() == "unknown" || i.String() == "" {
			t.Errorf("counter %d has no name", i)
		}
	}
	for i := Gauge(0); i < numGauges; i++ {
		if i.String() == "unknown" || i.String() == "" {
			t.Errorf("gauge %d has no name", i)
		}
	}
	if Counter(-1).String() != "unknown" || Counter(numCounters).String() != "unknown" {
		t.Error("out-of-range counter should render unknown")
	}
}

func TestReset(t *testing.T) {
	c := New()
	c.Add(Matvecs, 1)
	c.ObserveMax(MaxGraphAdjacency, 5)
	c.addTime("x", time.Second)
	c.Reset()
	if s := c.Snapshot(); !s.IsZero() {
		t.Fatalf("after Reset snapshot = %+v, want zero", s)
	}
}
