package walk

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x1111)) }

func TestRandomWalkStaysOnEdges(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, rng(1))
	traj := Random(g, 0, 50, rng(2))
	if len(traj) != 51 {
		t.Fatalf("trajectory length %d", len(traj))
	}
	for i := 1; i < len(traj); i++ {
		if !g.HasEdge(traj[i-1], traj[i]) {
			t.Fatalf("step %d: %d->%d is not an edge", i, traj[i-1], traj[i])
		}
	}
}

func TestEndpointMatchesTrajectory(t *testing.T) {
	g := gen.Ring(11)
	a := Random(g, 3, 20, rng(7))
	b := Endpoint(g, 3, 20, rng(7))
	if a[len(a)-1] != b {
		t.Fatalf("trajectory end %d vs endpoint %d", a[len(a)-1], b)
	}
}

func TestTailIsEdge(t *testing.T) {
	g := gen.Complete(8)
	e := Tail(g, 0, 10, rng(3))
	if !g.HasEdge(e.From, e.To) {
		t.Fatalf("tail %v is not an edge", e)
	}
	e = Tail(g, 0, 0, rng(3)) // clamps to length 1
	if e.From != 0 {
		t.Fatalf("length-0 tail %v", e)
	}
}

func TestEndpointDistributionOnCompleteGraph(t *testing.T) {
	// On K_n, one step lands uniformly on the n-1 others.
	g := gen.Complete(6)
	counts := map[graph.NodeID]int{}
	r := rng(4)
	const N = 30_000
	for i := 0; i < N; i++ {
		counts[Endpoint(g, 0, 1, r)]++
	}
	if counts[0] != 0 {
		t.Fatal("one-step walk stayed at source on K_n")
	}
	for v := graph.NodeID(1); v < 6; v++ {
		frac := float64(counts[v]) / N
		if math.Abs(frac-0.2) > 0.02 {
			t.Fatalf("endpoint %d frequency %v, want ≈0.2", v, frac)
		}
	}
}

func TestInstanceStepBijective(t *testing.T) {
	// For each node, the map (incoming slot → outgoing slot) must be a
	// bijection: every outgoing edge used exactly once.
	g := gen.BarabasiAlbert(100, 3, rng(5))
	in := NewInstance(g, 99)
	for v := 0; v < g.NumNodes(); v++ {
		at := graph.NodeID(v)
		used := map[graph.NodeID]int{}
		for _, from := range g.Neighbors(at) {
			used[in.Step(from, at)]++
		}
		if len(used) != g.Degree(at) {
			t.Fatalf("node %d: %d distinct outputs for %d inputs", v, len(used), g.Degree(at))
		}
		for next, c := range used {
			if c != 1 {
				t.Fatalf("node %d: output %d used %d times", v, next, c)
			}
			if !g.HasEdge(at, next) {
				t.Fatalf("node %d: output %d not a neighbor", v, next)
			}
		}
	}
}

func TestLazyMatchesInstance(t *testing.T) {
	g := gen.WattsStrogatz(150, 3, 0.3, rng(6))
	seed := uint64(424242)
	mat := NewInstance(g, seed)
	lazy := NewLazy(g, seed)
	for v := 0; v < g.NumNodes(); v++ {
		at := graph.NodeID(v)
		for _, from := range g.Neighbors(at) {
			a := mat.Step(from, at)
			b := lazy.Step(from, at)
			if a != b {
				t.Fatalf("node %d from %d: materialized %d vs lazy %d", at, from, a, b)
			}
		}
	}
}

func TestRouteConvergence(t *testing.T) {
	// Two routes that traverse the same directed edge continue
	// identically afterwards.
	g := gen.BarabasiAlbert(300, 4, rng(8))
	in := NewInstance(g, 7)
	// Route A from node 0 slot 0; route B enters A's second vertex via
	// the same directed edge — suffixes must coincide.
	trajA := RouteTrace(in, 0, 0, 20)
	// B starts at trajA[1] entered from trajA[0]: simulate by stepping
	// manually from that directed edge.
	from, at := trajA[0], trajA[1]
	for i := 1; i < 20; i++ {
		from, at = at, in.Step(from, at)
		if at != trajA[i+1] {
			t.Fatalf("routes diverged at step %d: %d vs %d", i, at, trajA[i+1])
		}
	}
}

func TestRouteDeterministicPerInstance(t *testing.T) {
	g := gen.CommunityBA(3, 60, 3, 10, rng(9))
	lcc, _ := graph.LargestComponent(g)
	in1 := NewInstance(lcc, 1)
	in2 := NewInstance(lcc, 1)
	in3 := NewInstance(lcc, 2)
	tail1 := Route(in1, 5, 0, 15)
	tail2 := Route(in2, 5, 0, 15)
	if tail1 != tail2 {
		t.Fatal("same seed produced different routes")
	}
	// Different seeds should (overwhelmingly) differ somewhere.
	diff := false
	for v := 0; v < lcc.NumNodes() && !diff; v++ {
		if Route(in1, graph.NodeID(v), 0, 15) != Route(in3, graph.NodeID(v), 0, 15) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("independent instances produced identical routes everywhere")
	}
}

func TestRouteTraceOnEdges(t *testing.T) {
	g := gen.Grid(10, 10)
	in := NewInstance(g, 77)
	traj := RouteTrace(in, 0, 0, 30)
	if len(traj) != 31 {
		t.Fatalf("trace length %d", len(traj))
	}
	for i := 1; i < len(traj); i++ {
		if !g.HasEdge(traj[i-1], traj[i]) {
			t.Fatalf("trace step %d not an edge", i)
		}
	}
	tail := Route(in, 0, 0, 30)
	if tail.From != traj[29] || tail.To != traj[30] {
		t.Fatalf("tail %v vs trace end %v->%v", tail, traj[29], traj[30])
	}
}

func TestRandomRouteUsesAllFirstSlots(t *testing.T) {
	g := gen.Complete(5)
	in := NewInstance(g, 3)
	r := rng(10)
	firsts := map[graph.NodeID]bool{}
	for i := 0; i < 200; i++ {
		tr := RouteTrace(in, 0, r.IntN(g.Degree(0)), 1)
		firsts[tr[1]] = true
	}
	if len(firsts) != 4 {
		t.Fatalf("only %d distinct first hops on K5", len(firsts))
	}
	// RandomRoute returns a valid edge.
	e := RandomRoute(in, 0, 8, r)
	if !g.HasEdge(e.From, e.To) {
		t.Fatalf("random route tail %v not an edge", e)
	}
}

// Property: on any connected generated graph, every node's slot
// permutation is a bijection and routes never leave the edge set.
func TestQuickRouteInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.BarabasiAlbert(60+int(seed%60), 2, rng(seed))
		in := NewInstance(g, seed^0xdead)
		// Bijectivity at a few sampled nodes.
		r := rng(seed + 1)
		for k := 0; k < 10; k++ {
			at := graph.NodeID(r.IntN(g.NumNodes()))
			seen := map[graph.NodeID]bool{}
			for _, from := range g.Neighbors(at) {
				seen[in.Step(from, at)] = true
			}
			if len(seen) != g.Degree(at) {
				return false
			}
		}
		// Route validity.
		traj := RouteTrace(in, 0, 0, 25)
		for i := 1; i < len(traj); i++ {
			if !g.HasEdge(traj[i-1], traj[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInstanceRoutes(b *testing.B) {
	g := gen.BarabasiAlbert(10_000, 5, rng(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInstance(g, uint64(i))
		for v := 0; v < 1000; v++ {
			Route(in, graph.NodeID(v), 0, 10)
		}
	}
}

func BenchmarkLazyRoutes(b *testing.B) {
	g := gen.BarabasiAlbert(10_000, 5, rng(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewLazy(g, uint64(i))
		for v := 0; v < 1000; v++ {
			Route(l, graph.NodeID(v), 0, 10)
		}
	}
}
