// Package walk provides random walks on graphs and the "random
// route" primitive of SybilGuard/SybilLimit: per-node random
// permutations mapping incoming edge slots to outgoing edge slots, so
// routes are deterministic per instance, convergent (two routes
// entering a node along the same edge continue identically) and
// back-traceable (the slot maps are bijections).
//
// Random and Tail cover the plain-walk needs of the defenses and the
// Whānau tail-distribution experiments. Routes come in two storage
// strategies with identical outputs: materialized permutations (an
// O(m) table per instance, fastest to traverse) and PRF-lazy
// permutations derived per (node, instance) from a keyed SplitMix64,
// which cost more per step but keep memory at O(tails) — the
// trade-off measured by BenchmarkRoutePermutations and discussed in
// DESIGN.md §7. All randomness flows from caller-provided seeds, so
// defense experiments are reproducible run to run.
package walk

import (
	"math/rand/v2"

	"mixtime/internal/fastrand"
	"mixtime/internal/graph"
)

// DirectedEdge is an ordered traversal of an undirected edge.
type DirectedEdge struct {
	From, To graph.NodeID
}

// Random performs a plain random walk of the given length from start
// and returns the full vertex trajectory (length+1 vertices). The
// step loop draws from a private fastrand.PCG derived from rng (one
// Uint64), so neighbor picks are an inlined PCG32 step plus a Lemire
// bounded draw — no interface dispatch per hop. Trajectories are a
// pure function of rng's seed but differ from the pre-fastrand
// streams.
func Random(g *graph.Graph, start graph.NodeID, length int, rng *rand.Rand) []graph.NodeID {
	pr := fastrand.FromRand(rng)
	traj := make([]graph.NodeID, 0, length+1)
	traj = append(traj, start)
	cur := start
	if off := g.Offsets32(); off != nil {
		adj := g.Adjacency()
		for i := 0; i < length; i++ {
			o := off[cur]
			cur = adj[o+pr.Uint32n(off[cur+1]-o)]
			traj = append(traj, cur)
		}
		return traj
	}
	for i := 0; i < length; i++ {
		adj := g.Neighbors(cur)
		cur = adj[pr.IntN(len(adj))]
		traj = append(traj, cur)
	}
	return traj
}

// Endpoint returns the final vertex of a plain random walk of the
// given length from start. Same fastrand stream discipline as Random.
func Endpoint(g *graph.Graph, start graph.NodeID, length int, rng *rand.Rand) graph.NodeID {
	pr := fastrand.FromRand(rng)
	cur := start
	if off := g.Offsets32(); off != nil {
		adj := g.Adjacency()
		for i := 0; i < length; i++ {
			o := off[cur]
			cur = adj[o+pr.Uint32n(off[cur+1]-o)]
		}
		return cur
	}
	for i := 0; i < length; i++ {
		adj := g.Neighbors(cur)
		cur = adj[pr.IntN(len(adj))]
	}
	return cur
}

// Tail returns the last directed edge of a plain random walk of
// length ≥ 1. Same fastrand stream discipline as Random.
func Tail(g *graph.Graph, start graph.NodeID, length int, rng *rand.Rand) DirectedEdge {
	if length < 1 {
		length = 1
	}
	pr := fastrand.FromRand(rng)
	prev, cur := start, start
	if off := g.Offsets32(); off != nil {
		adj := g.Adjacency()
		for i := 0; i < length; i++ {
			o := off[cur]
			prev = cur
			cur = adj[o+pr.Uint32n(off[cur+1]-o)]
		}
		return DirectedEdge{From: prev, To: cur}
	}
	for i := 0; i < length; i++ {
		adj := g.Neighbors(cur)
		prev = cur
		cur = adj[pr.IntN(len(adj))]
	}
	return DirectedEdge{From: prev, To: cur}
}

// splitmix64 is the standard 64-bit finalizer-based PRNG step; used
// to derive independent per-(instance, node) permutation seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// smRand is a tiny splitmix64-state PRNG for in-place Fisher–Yates;
// avoids allocating a rand.Rand per node visit.
type smRand struct{ state uint64 }

func (s *smRand) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	x := s.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// intn returns a uniform value in [0, n) (n > 0) by rejection-free
// multiply-shift; bias is negligible for the degree ranges involved.
func (s *smRand) intn(n int) int {
	return int((s.next() >> 11) % uint64(n))
}

// fillPerm writes a uniform random permutation of [0, d) into dst
// using the seed.
func fillPerm(dst []uint32, d int, seed uint64) {
	for i := 0; i < d; i++ {
		dst[i] = uint32(i)
	}
	r := smRand{state: seed}
	for i := d - 1; i > 0; i-- {
		j := r.intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Router steps random routes: given the directed edge (from → at)
// just traversed, it returns the next hop out of at.
type Router interface {
	// Graph returns the routed graph.
	Graph() *graph.Graph
	// Step maps the incoming directed edge (from, at) to the next
	// vertex after at.
	Step(from, at graph.NodeID) graph.NodeID
}

// Instance is a materialized random-route instance: every node's
// permutation is precomputed, O(2m) memory, O(1) per step. Build one
// per SybilLimit instance, route all nodes, then discard.
type Instance struct {
	g    *graph.Graph
	perm []uint32 // CSR-aligned: perm over v's slots at v's offset
	off  []int64
}

// NewInstance materializes the route permutations for the given
// instance seed.
func NewInstance(g *graph.Graph, seed uint64) *Instance {
	n := g.NumNodes()
	off := make([]int64, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int64(g.Degree(graph.NodeID(v)))
	}
	perm := make([]uint32, off[n])
	for v := 0; v < n; v++ {
		d := g.Degree(graph.NodeID(v))
		fillPerm(perm[off[v]:off[v+1]], d, splitmix64(seed)^splitmix64(uint64(v)+0x5bd1))
	}
	return &Instance{g: g, perm: perm, off: off}
}

// Graph returns the routed graph.
func (in *Instance) Graph() *graph.Graph { return in.g }

// Step implements Router.
func (in *Instance) Step(from, at graph.NodeID) graph.NodeID {
	slot := in.g.EdgeSlot(at, from)
	out := in.perm[in.off[at]+int64(slot)]
	return in.g.Neighbors(at)[out]
}

// Lazy is a route instance that regenerates each node's permutation
// on demand from the PRF seed: zero persistent memory, O(deg) work
// per step. The memory/time trade-off against Instance is an ablation
// benchmark in the harness.
type Lazy struct {
	g       *graph.Graph
	seed    uint64
	scratch []uint32
}

// NewLazy creates a lazy route instance. Not safe for concurrent use
// (it reuses a scratch buffer).
func NewLazy(g *graph.Graph, seed uint64) *Lazy {
	return &Lazy{g: g, seed: seed, scratch: make([]uint32, g.MaxDegree())}
}

// Graph returns the routed graph.
func (l *Lazy) Graph() *graph.Graph { return l.g }

// Step implements Router.
func (l *Lazy) Step(from, at graph.NodeID) graph.NodeID {
	d := l.g.Degree(at)
	p := l.scratch[:d]
	fillPerm(p, d, splitmix64(l.seed)^splitmix64(uint64(at)+0x5bd1))
	slot := l.g.EdgeSlot(at, from)
	return l.g.Neighbors(at)[p[slot]]
}

// Route walks a random route of length w (w ≥ 1 edges) from start,
// taking the given first slot out of start, and returns the tail (the
// last directed edge traversed).
func Route(r Router, start graph.NodeID, firstSlot, w int) DirectedEdge {
	g := r.Graph()
	from := start
	at := g.Neighbors(start)[firstSlot]
	for i := 1; i < w; i++ {
		from, at = at, r.Step(from, at)
	}
	return DirectedEdge{From: from, To: at}
}

// RouteTrace is Route returning the full vertex trajectory
// (w+1 vertices), for tests and diagnostics.
func RouteTrace(r Router, start graph.NodeID, firstSlot, w int) []graph.NodeID {
	g := r.Graph()
	traj := make([]graph.NodeID, 0, w+1)
	from := start
	at := g.Neighbors(start)[firstSlot]
	traj = append(traj, from, at)
	for i := 1; i < w; i++ {
		from, at = at, r.Step(from, at)
		traj = append(traj, at)
	}
	return traj
}

// RandomRoute walks a route with a uniformly random first hop — the
// verifier/suspect behaviour in SybilLimit — and returns its tail.
func RandomRoute(r Router, start graph.NodeID, w int, rng *rand.Rand) DirectedEdge {
	d := r.Graph().Degree(start)
	return Route(r, start, rng.IntN(d), w)
}
