// Package metrics computes the structural statistics used to
// characterize social graphs: degree distributions, clustering
// coefficients, degree assortativity, and sampled path lengths. The
// paper's dataset taxonomy (trust vs interaction vs online graphs)
// is visible in exactly these numbers: trust graphs cluster heavily
// and assort positively, online graphs are hub-dominated and
// disassortative.
package metrics

import (
	"math"
	"math/rand/v2"
	"sort"

	"mixtime/internal/graph"
)

// DegreeStats summarizes a graph's degree sequence.
type DegreeStats struct {
	Min, Max int
	Mean     float64
	Median   float64
	// P90 and P99 are upper percentiles of the degree distribution.
	P90, P99 int
	// GiniCoefficient measures degree inequality in [0, 1): 0 for a
	// regular graph, → 1 for extreme hub domination.
	Gini float64
}

// Degrees computes DegreeStats. An empty graph yields the zero value.
func Degrees(g *graph.Graph) DegreeStats {
	n := g.NumNodes()
	if n == 0 {
		return DegreeStats{}
	}
	deg := make([]int, n)
	sum := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.NodeID(v))
		sum += deg[v]
	}
	sort.Ints(deg)
	s := DegreeStats{
		Min:  deg[0],
		Max:  deg[n-1],
		Mean: float64(sum) / float64(n),
		P90:  deg[(n-1)*90/100],
		P99:  deg[(n-1)*99/100],
	}
	if n%2 == 1 {
		s.Median = float64(deg[n/2])
	} else {
		s.Median = float64(deg[n/2-1]+deg[n/2]) / 2
	}
	// Gini over the sorted sequence: Σ(2i−n+1)·d_i / (n·Σd).
	if sum > 0 {
		var acc float64
		for i, d := range deg {
			acc += float64(2*i-n+1) * float64(d)
		}
		s.Gini = acc / (float64(n) * float64(sum))
	}
	return s
}

// LocalClustering returns the local clustering coefficient of v: the
// fraction of its neighbor pairs that are themselves connected.
// Degree < 2 yields 0.
func LocalClustering(g *graph.Graph, v graph.NodeID) float64 {
	adj := g.Neighbors(v)
	d := len(adj)
	if d < 2 {
		return 0
	}
	links := 0
	for i := 0; i < d; i++ {
		for j := i + 1; j < d; j++ {
			if g.HasEdge(adj[i], adj[j]) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(d) * float64(d-1))
}

// AverageClustering returns the mean local clustering coefficient
// (Watts–Strogatz definition) over all vertices. O(Σ d²·log d); use
// SampledClustering on large graphs.
func AverageClustering(g *graph.Graph) float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	var sum float64
	for v := 0; v < n; v++ {
		sum += LocalClustering(g, graph.NodeID(v))
	}
	return sum / float64(n)
}

// SampledClustering estimates AverageClustering from k uniformly
// sampled vertices.
func SampledClustering(g *graph.Graph, k int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n == 0 || k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	var sum float64
	for i := 0; i < k; i++ {
		sum += LocalClustering(g, graph.NodeID(rng.IntN(n)))
	}
	return sum / float64(k)
}

// GlobalClustering returns the transitivity: 3×triangles / wedges.
func GlobalClustering(g *graph.Graph) float64 {
	var triangles, wedges float64
	n := g.NumNodes()
	for v := 0; v < n; v++ {
		adj := g.Neighbors(graph.NodeID(v))
		d := len(adj)
		wedges += float64(d) * float64(d-1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(adj[i], adj[j]) {
					triangles++ // each triangle counted once per corner
				}
			}
		}
	}
	if wedges == 0 {
		return 0
	}
	return triangles / wedges
}

// Assortativity returns the Pearson correlation of degrees across
// edges (Newman's degree assortativity) in [−1, 1]. Social trust
// graphs are typically positive, crawled online graphs negative.
func Assortativity(g *graph.Graph) float64 {
	var sx, sy, sxx, syy, sxy float64
	var cnt float64
	g.Edges(func(u, v graph.NodeID) bool {
		// Count each edge in both orientations so the measure is
		// symmetric.
		du := float64(g.Degree(u))
		dv := float64(g.Degree(v))
		for _, p := range [2][2]float64{{du, dv}, {dv, du}} {
			sx += p[0]
			sy += p[1]
			sxx += p[0] * p[0]
			syy += p[1] * p[1]
			sxy += p[0] * p[1]
			cnt++
		}
		return true
	})
	if cnt == 0 {
		return 0
	}
	num := sxy/cnt - (sx/cnt)*(sy/cnt)
	den := math.Sqrt((sxx/cnt - (sx/cnt)*(sx/cnt)) * (syy/cnt - (sy/cnt)*(sy/cnt)))
	if den == 0 {
		return 0
	}
	return num / den
}

// SampledPathLength estimates the mean shortest-path length from k
// BFS sources (exact distances, sampled sources). Disconnected pairs
// are skipped.
func SampledPathLength(g *graph.Graph, k int, rng *rand.Rand) float64 {
	n := g.NumNodes()
	if n == 0 || k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	var sum, cnt float64
	for i := 0; i < k; i++ {
		src := graph.NodeID(rng.IntN(n))
		graph.BFS(g, src, func(v graph.NodeID, depth int) bool {
			if v != src {
				sum += float64(depth)
				cnt++
			}
			return true
		})
	}
	if cnt == 0 {
		return 0
	}
	return sum / cnt
}
