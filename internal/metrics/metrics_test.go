package metrics

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

func rng(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 0x3e7)) }

func TestDegreesOnKnownGraphs(t *testing.T) {
	k5 := Degrees(gen.Complete(5))
	if k5.Min != 4 || k5.Max != 4 || k5.Mean != 4 || k5.Median != 4 {
		t.Fatalf("K5 stats %+v", k5)
	}
	if math.Abs(k5.Gini) > 1e-12 {
		t.Fatalf("regular graph Gini %v", k5.Gini)
	}
	star := Degrees(gen.Star(9))
	if star.Max != 9 || star.Min != 1 {
		t.Fatalf("star stats %+v", star)
	}
	// K_{1,9} has sorted degrees [1×9, 9]: Gini = 72/(10·18) = 0.4.
	if math.Abs(star.Gini-0.4) > 1e-12 {
		t.Fatalf("star Gini %v, want 0.4", star.Gini)
	}
	if z := Degrees(&graph.Graph{}); z != (DegreeStats{}) {
		t.Fatalf("empty stats %+v", z)
	}
}

func TestClusteringOnKnownGraphs(t *testing.T) {
	// Complete graph: clustering 1 everywhere.
	if c := AverageClustering(gen.Complete(6)); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K6 clustering %v", c)
	}
	if c := GlobalClustering(gen.Complete(6)); math.Abs(c-1) > 1e-12 {
		t.Fatalf("K6 transitivity %v", c)
	}
	// Star: no triangles.
	if c := AverageClustering(gen.Star(8)); c != 0 {
		t.Fatalf("star clustering %v", c)
	}
	// Ring: neighbor pairs never adjacent for n > 4.
	if c := GlobalClustering(gen.Ring(10)); c != 0 {
		t.Fatalf("C10 transitivity %v", c)
	}
	// Triangle: every vertex clusters perfectly.
	if c := LocalClustering(gen.Complete(3), 0); c != 1 {
		t.Fatalf("triangle local %v", c)
	}
}

func TestCavemanClustersMoreThanER(t *testing.T) {
	cave := gen.RelaxedCaveman(20, 8, 0.05, rng(1))
	er := gen.ErdosRenyiM(cave.NumNodes(), cave.NumEdges(), rng(2))
	if AverageClustering(cave) <= AverageClustering(er)+0.2 {
		t.Fatalf("caveman %v vs ER %v", AverageClustering(cave), AverageClustering(er))
	}
}

func TestSampledClusteringApproximatesExact(t *testing.T) {
	g := gen.WattsStrogatz(400, 4, 0.1, rng(3))
	exact := AverageClustering(g)
	approx := SampledClustering(g, 400, rng(4)) // with replacement, full-size sample
	if math.Abs(exact-approx) > 0.08 {
		t.Fatalf("exact %v vs sampled %v", exact, approx)
	}
	if SampledClustering(g, 0, rng(4)) != 0 {
		t.Fatal("k=0 sample")
	}
}

func TestAssortativitySign(t *testing.T) {
	// Star: ends of every edge have degrees (n, 1) — perfectly
	// disassortative.
	if a := Assortativity(gen.Star(10)); a > -0.999 {
		t.Fatalf("star assortativity %v, want ≈ -1", a)
	}
	// Regular graphs have zero degree variance → define 0.
	if a := Assortativity(gen.Ring(12)); a != 0 {
		t.Fatalf("ring assortativity %v", a)
	}
	// BA graphs are mildly disassortative; caveman cliques positive-ish.
	ba := Assortativity(gen.BarabasiAlbert(2000, 3, rng(5)))
	if ba > 0.05 {
		t.Fatalf("BA assortativity %v, expected ≤ 0", ba)
	}
}

func TestAssortativityBounds(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.ErdosRenyiM(60, 120, rng(seed))
		a := Assortativity(g)
		return a >= -1-1e-9 && a <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSampledPathLength(t *testing.T) {
	// Path graph 0-1-2-3: mean distance from exhaustive sources is
	// known: pairs (ordered) distances average = 2·(3·1+2·2+1·3)/12...
	// Compute directly instead: from each source BFS sums all
	// distances; mean over ordered pairs = 10/6? Use the complete
	// graph where every distance is 1.
	if d := SampledPathLength(gen.Complete(10), 10, rng(6)); math.Abs(d-1) > 1e-12 {
		t.Fatalf("K10 mean path %v", d)
	}
	ring := SampledPathLength(gen.Ring(20), 20, rng(7))
	// C20 mean distance = (Σ_{k=1..10} min(k,20-k)·…) ≈ 5.26; just
	// check the ballpark.
	if ring < 4 || ring > 6 {
		t.Fatalf("C20 mean path %v", ring)
	}
	if SampledPathLength(&graph.Graph{}, 5, rng(8)) != 0 {
		t.Fatal("empty graph path length")
	}
}

func TestGiniMonotoneUnderHubGrowth(t *testing.T) {
	// Adding a hub to a regular structure increases inequality.
	ring := Degrees(gen.Ring(50)).Gini
	withHub := gen.WithPendants(gen.Star(50), 0, rng(9)) // star is the hub extreme
	if Degrees(withHub).Gini <= ring {
		t.Fatalf("hub Gini %v not above ring %v", Degrees(withHub).Gini, ring)
	}
}
