package evolve

import (
	"context"
	"math"
	"math/rand/v2"
	"reflect"
	"strconv"
	"testing"

	"mixtime/internal/graph"
)

// grownBase is a ring plus random chords: connected by construction,
// expander-ish enough that power iteration converges briskly, and the
// natural epoch-0 state for edge-accretion trajectories.
func grownBase(n, chords int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 0x9e1))
	b := graph.NewBuilder(n + chords)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	added := 0
	for added < chords {
		u, v := rng.IntN(n), rng.IntN(n)
		if u == v {
			continue
		}
		b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		added++
	}
	return b.Build()
}

// runTrajectory drives one warm-vs-cold growth trajectory and returns
// the per-epoch stats. Deterministic for a given seed.
func runTrajectory(t *testing.T, epochs, perEpoch int, seed uint64) []EpochStat {
	t.Helper()
	mg := NewMutable(grownBase(120, 120, seed))
	tr := NewTracker(mg, Options{Seed: seed, CompareCold: true})
	rng := rand.New(rand.NewPCG(seed, 0x77))
	ctx := context.Background()
	var stats []EpochStat
	for e := 0; e < epochs; e++ {
		if e > 0 {
			g, _ := mg.Snapshot()
			if _, err := mg.Apply(GrowRandom(g, perEpoch, rng)); err != nil {
				t.Fatal(err)
			}
		}
		s, err := tr.Observe(ctx)
		if err != nil {
			t.Fatal(err)
		}
		stats = append(stats, s)
	}
	return stats
}

// TestWarmStartFewerIterations pins the E1 acceptance criterion at
// the subsystem level: across a growth trajectory, warm-started power
// iteration converges in measurably fewer λ₂-phase iterations than
// the cold control at equal tolerance.
func TestWarmStartFewerIterations(t *testing.T) {
	stats := runTrajectory(t, 6, 25, 1)

	if stats[0].WarmStarted {
		t.Fatal("epoch 0 cannot be warm-started")
	}
	if stats[0].WarmIters != stats[0].ColdIters {
		t.Fatalf("epoch 0 warm path must equal the cold control: %d vs %d",
			stats[0].WarmIters, stats[0].ColdIters)
	}
	warmSum, coldSum := 0, 0
	for _, s := range stats[1:] {
		if !s.WarmStarted {
			t.Fatalf("epoch %d not warm-started", s.Epoch)
		}
		if !s.Converged {
			t.Fatalf("epoch %d did not converge", s.Epoch)
		}
		if d := math.Abs(s.Mu - s.ColdMu); d > 1e-6 {
			t.Fatalf("epoch %d: warm µ %v vs cold µ %v differ by %g — not equal accuracy",
				s.Epoch, s.Mu, s.ColdMu, d)
		}
		warmSum += s.WarmIters
		coldSum += s.ColdIters
	}
	if warmSum >= coldSum {
		t.Fatalf("warm start saved nothing: %d warm vs %d cold λ₂ iterations", warmSum, coldSum)
	}
}

// TestTrajectoryDeterministic is the byte-identity contract: two runs
// of the identical trajectory produce identical stats — eigenvalues,
// iteration counts, bounds, everything.
func TestTrajectoryDeterministic(t *testing.T) {
	a := runTrajectory(t, 4, 20, 7)
	b := runTrajectory(t, 4, 20, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("trajectories diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestWarmColdConvergedSLEMByteIdentical checks warm and cold answers
// agree byte-for-byte at the precision documents report (6 decimals):
// warm start changes where the iteration begins, never what it
// converges to.
func TestWarmColdConvergedSLEMByteIdentical(t *testing.T) {
	for _, s := range runTrajectory(t, 5, 25, 3)[1:] {
		warm := strconv.FormatFloat(s.Mu, 'f', 6, 64)
		cold := strconv.FormatFloat(s.ColdMu, 'f', 6, 64)
		if warm != cold {
			t.Fatalf("epoch %d: converged SLEM differs at document precision: %s vs %s",
				s.Epoch, warm, cold)
		}
	}
}

func TestTrackerLanczosMethod(t *testing.T) {
	mg := NewMutable(grownBase(100, 100, 5))
	pow := NewTracker(mg, Options{Seed: 5})
	lan := NewTracker(mg, Options{Seed: 5, Method: "lanczos"})
	ctx := context.Background()
	ps, err := pow.Observe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ls, err := lan.Observe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(ps.Mu - ls.Mu); d > 1e-6 {
		t.Fatalf("power µ %v vs Lanczos µ %v differ by %g", ps.Mu, ls.Mu, d)
	}
	// Lanczos emits a Ritz vector, so its second epoch warm-starts too.
	g, _ := mg.Snapshot()
	if _, err := mg.Apply(GrowRandom(g, 15, rand.New(rand.NewPCG(5, 9)))); err != nil {
		t.Fatal(err)
	}
	ls2, err := lan.Observe(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ls2.WarmStarted {
		t.Fatal("Lanczos epoch 1 not warm-started")
	}
}

// TestTrackerBoundsTrajectory checks the per-epoch Sinclair bounds
// move the way Evolution-of-the-Mixing-Rate predicts: accreting
// random edges shrinks µ and with it both mixing-time bounds.
func TestTrackerBoundsTrajectory(t *testing.T) {
	stats := runTrajectory(t, 6, 40, 11)
	first, last := stats[0], stats[len(stats)-1]
	if last.Mu >= first.Mu {
		t.Fatalf("µ did not shrink as the graph densified: %v → %v", first.Mu, last.Mu)
	}
	if last.UpperT >= first.UpperT {
		t.Fatalf("upper bound did not shrink: %v → %v", first.UpperT, last.UpperT)
	}
	for _, s := range stats {
		if s.LowerT < 0 || s.UpperT <= 0 || s.LowerT > s.UpperT {
			t.Fatalf("epoch %d: nonsensical bounds [%v, %v]", s.Epoch, s.LowerT, s.UpperT)
		}
	}
}
