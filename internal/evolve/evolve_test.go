package evolve

import (
	"math"
	"math/rand/v2"
	"testing"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// ringGraph builds a cycle on n nodes — connected, every degree 2.
func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

func TestApplyInsertDelete(t *testing.T) {
	mg := NewMutable(ringGraph(8))
	if v := mg.Version(); v != 0 {
		t.Fatalf("fresh version = %d, want 0", v)
	}
	res, err := mg.Apply(Batch{
		Insert: []graph.Edge{{U: 0, V: 4}, {U: 2, V: 6}},
		Delete: []graph.Edge{{U: 0, V: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 || res.Inserted != 2 || res.Deleted != 1 {
		t.Fatalf("result = %+v, want version 1, 2 inserted, 1 deleted", res)
	}
	g, ver := mg.Snapshot()
	if ver != 1 {
		t.Fatalf("snapshot version = %d, want 1", ver)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("epoch 1 invalid: %v", err)
	}
	if !g.HasEdge(0, 4) || !g.HasEdge(2, 6) || g.HasEdge(0, 1) {
		t.Fatal("batch not reflected in epoch 1")
	}
	if res.Edges != 9 {
		t.Fatalf("edges = %d, want 9 (8 ring + 2 − 1)", res.Edges)
	}
}

func TestApplyNoOpsExcludedFromCounts(t *testing.T) {
	mg := NewMutable(ringGraph(6))
	res, err := mg.Apply(Batch{
		Insert: []graph.Edge{
			{U: 0, V: 1}, // already present
			{U: 3, V: 3}, // self-loop
			{U: 1, V: 4}, // real
			{U: 4, V: 1}, // duplicate of the above (reversed)
			{U: 2, V: 5}, // deleted in the same batch: delete wins
		},
		Delete: []graph.Edge{
			{U: 2, V: 5}, // absent — a no-op delete
			{U: 3, V: 4}, // real
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 1 {
		t.Fatalf("result = %+v, want exactly 1 inserted and 1 deleted", res)
	}
	if res.Version != 1 {
		t.Fatalf("no-ops must still bump the version once: got %d", res.Version)
	}
	g, _ := mg.Snapshot()
	if g.HasEdge(2, 5) {
		t.Fatal("delete must win over insert within one batch")
	}
}

func TestApplyGrowsNodeRange(t *testing.T) {
	mg := NewMutable(ringGraph(4))
	res, err := mg.Apply(Batch{Insert: []graph.Edge{{U: 3, V: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 10 {
		t.Fatalf("nodes = %d, want 10 after inserting edge to node 9", res.Nodes)
	}
	g, _ := mg.Snapshot()
	if err := g.Validate(); err != nil {
		t.Fatalf("grown epoch invalid: %v", err)
	}
	deg := mg.Degrees()
	if len(deg) != 10 || deg[9] != 1 || deg[3] != 3 {
		t.Fatalf("degree vector not extended/updated: %v", deg)
	}
}

func TestSnapshotImmutableAcrossMutation(t *testing.T) {
	mg := NewMutable(ringGraph(5))
	old, oldVer := mg.Snapshot()
	if _, err := mg.Apply(Batch{Insert: []graph.Edge{{U: 0, V: 2}}}); err != nil {
		t.Fatal(err)
	}
	if oldVer != 0 || old.HasEdge(0, 2) || old.NumEdges() != 5 {
		t.Fatal("pre-mutation snapshot changed under the caller")
	}
	cur, ver := mg.Snapshot()
	if ver != 1 || !cur.HasEdge(0, 2) {
		t.Fatal("post-mutation snapshot missing the insert")
	}
}

// checkInvariants asserts the full consistency contract after a batch:
// CSR validity, edge count, and the delta-maintained degrees and
// stationary distribution agreeing with a from-scratch recompute.
func checkInvariants(t *testing.T, mg *MutableGraph) {
	t.Helper()
	g, _ := mg.Snapshot()
	if err := g.Validate(); err != nil {
		t.Fatalf("epoch invalid: %v", err)
	}
	if got, want := mg.NumEdges(), g.NumEdges(); got != want {
		t.Fatalf("tracked edge count %d != graph %d", got, want)
	}
	deg := mg.Degrees()
	if len(deg) != g.NumNodes() {
		t.Fatalf("degree vector length %d != %d nodes", len(deg), g.NumNodes())
	}
	for v := range deg {
		if want := g.Degree(graph.NodeID(v)); deg[v] != want {
			t.Fatalf("deg[%d] = %d, want %d", v, deg[v], want)
		}
	}
	pi := mg.Stationary()
	twoM := float64(2 * g.NumEdges())
	var sum float64
	for v := range pi {
		want := 0.0
		if twoM > 0 {
			want = float64(g.Degree(graph.NodeID(v))) / twoM
		}
		if math.Abs(pi[v]-want) > 1e-15 {
			t.Fatalf("pi[%d] = %v, want %v", v, pi[v], want)
		}
		sum += pi[v]
	}
	if twoM > 0 && math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pi sums to %v", sum)
	}
}

// applyRandomBatches drives rounds random insert/delete batches drawn
// from rng through mg, checking the full invariant set after each.
func applyRandomBatches(t *testing.T, mg *MutableGraph, rng *rand.Rand, rounds int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		n := mg.NumNodes()
		var b Batch
		for i := rng.IntN(6); i > 0; i-- {
			// Occasionally reference a node just past the range to
			// exercise growth; mostly stay inside.
			hi := n
			if rng.IntN(8) == 0 {
				hi = n + 2
			}
			b.Insert = append(b.Insert, graph.Edge{
				U: graph.NodeID(rng.IntN(hi)),
				V: graph.NodeID(rng.IntN(hi)),
			})
		}
		g, _ := mg.Snapshot()
		for i := rng.IntN(4); i > 0; i-- {
			// Bias deletes toward existing edges so they actually fire.
			u := graph.NodeID(rng.IntN(n))
			if nbrs := g.Neighbors(u); len(nbrs) > 0 && rng.IntN(3) > 0 {
				b.Delete = append(b.Delete, graph.Edge{U: u, V: nbrs[rng.IntN(len(nbrs))]})
			} else {
				b.Delete = append(b.Delete, graph.Edge{U: u, V: graph.NodeID(rng.IntN(n))})
			}
		}
		before := mg.Version()
		if _, err := mg.Apply(b); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if mg.Version() != before+1 {
			t.Fatalf("round %d: version %d → %d, want +1", r, before, mg.Version())
		}
		checkInvariants(t, mg)
	}
}

func TestFuzzedBatchesKeepCSRValid(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 1337} {
		rng := rand.New(rand.NewPCG(seed, 0xfe11))
		mg := NewMutable(ringGraph(12 + int(seed%9)))
		applyRandomBatches(t, mg, rng, 40)
	}
}

// FuzzApply is the native-fuzzing entry for the same invariants: the
// fuzzer picks the PCG seed and batch count, the invariant checks do
// the judging. `go test` runs the seed corpus; `go test -fuzz=Apply`
// explores.
func FuzzApply(f *testing.F) {
	f.Add(uint64(1), uint8(5))
	f.Add(uint64(99), uint8(20))
	f.Fuzz(func(t *testing.T, seed uint64, rounds uint8) {
		rng := rand.New(rand.NewPCG(seed, 0xfe12))
		mg := NewMutable(ringGraph(8))
		applyRandomBatches(t, mg, rng, int(rounds%32))
	})
}

func TestTelemetryCountsChurn(t *testing.T) {
	col := telemetry.New()
	mg := NewMutable(ringGraph(6))
	mg.SetCollector(col)
	if _, err := mg.Apply(Batch{
		Insert: []graph.Edge{{U: 0, V: 3}, {U: 1, V: 4}},
		Delete: []graph.Edge{{U: 2, V: 3}},
	}); err != nil {
		t.Fatal(err)
	}
	if got := col.Count(telemetry.EvolveEpochs); got != 1 {
		t.Fatalf("evolve_epochs = %d, want 1", got)
	}
	if got := col.Count(telemetry.EvolveEdgesInserted); got != 2 {
		t.Fatalf("evolve_edges_inserted = %d, want 2", got)
	}
	if got := col.Count(telemetry.EvolveEdgesDeleted); got != 1 {
		t.Fatalf("evolve_edges_deleted = %d, want 1", got)
	}
}

func TestBatchHelpers(t *testing.T) {
	g := ringGraph(20)
	rng := rand.New(rand.NewPCG(3, 0xabcd))

	grow := GrowRandom(g, 10, rng)
	if len(grow.Insert) != 10 {
		t.Fatalf("GrowRandom produced %d edges, want 10", len(grow.Insert))
	}
	seen := map[uint64]bool{}
	for _, e := range grow.Insert {
		if e.U == e.V || g.HasEdge(e.U, e.V) {
			t.Fatalf("GrowRandom produced loop or present edge {%d,%d}", e.U, e.V)
		}
		if seen[edgeKey(e.U, e.V)] {
			t.Fatalf("GrowRandom produced duplicate {%d,%d}", e.U, e.V)
		}
		seen[edgeKey(e.U, e.V)] = true
	}

	a := []graph.NodeID{0, 1, 2, 3}
	bset := []graph.NodeID{10, 11, 12, 13}
	merge := MergeCommunities(g, a, bset, 5, rng)
	if len(merge.Insert) != 5 {
		t.Fatalf("MergeCommunities produced %d edges, want 5", len(merge.Insert))
	}
	inSet := func(v graph.NodeID, s []graph.NodeID) bool {
		for _, x := range s {
			if x == v {
				return true
			}
		}
		return false
	}
	for _, e := range merge.Insert {
		if !(inSet(e.U, a) && inSet(e.V, bset)) && !(inSet(e.V, a) && inSet(e.U, bset)) {
			t.Fatalf("merge edge {%d,%d} not between the communities", e.U, e.V)
		}
	}

	atk := AttackEdges(g, 10, 6, rng)
	if len(atk.Insert) != 6 {
		t.Fatalf("AttackEdges produced %d edges, want 6", len(atk.Insert))
	}
	for _, e := range atk.Insert {
		lo, hi := e.U, e.V
		if lo > hi {
			lo, hi = hi, lo
		}
		if int(lo) >= 10 || int(hi) < 10 {
			t.Fatalf("attack edge {%d,%d} does not cross the region boundary", e.U, e.V)
		}
	}
}

func TestGrowRandomExhaustedGraph(t *testing.T) {
	// K4: no absent edge exists; the sampler must come back short
	// rather than spin.
	b := graph.NewBuilder(6)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			b.AddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	got := GrowRandom(b.Build(), 3, rand.New(rand.NewPCG(1, 2)))
	if len(got.Insert) != 0 {
		t.Fatalf("complete graph grew %d edges", len(got.Insert))
	}
}
