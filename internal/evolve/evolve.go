// Package evolve turns the repo's immutable CSR graphs into live,
// versioned ones: a mutation API (edge insert/delete batches,
// community merges, attack-edge accretion) where every applied batch
// produces a fresh valid CSR epoch under a monotone version counter,
// plus the incremental estimators that make tracking mixing time
// across epochs cheap — warm-start power iteration and Lanczos seeded
// from the previous epoch's λ₂ eigenvector, and a delta-maintained
// degree vector so the stationary distribution π_v = deg(v)/2m is
// available per epoch without rescanning the CSR.
//
// The design keeps the rest of the system untouched: a MutableGraph
// hands out immutable *graph.Graph snapshots, so every existing
// solver, kernel and experiment runs on an epoch exactly as it would
// on a loaded file. Mutation is an epoch rebuild (sort + dedup via
// graph.Builder), not an in-place CSR patch — O(m log m) per batch,
// which the batch granularity amortizes, in exchange for snapshots
// that are ordinary graphs with every Validate() invariant intact.
// Readers never block writers for longer than a pointer swap.
//
// Versioning contract: Apply bumps the version exactly once per call,
// whether or not the batch changed anything, and versions are never
// reused. Downstream caches key results by (content hash, version),
// so "stale results evict on mutation" reduces to comparing two
// integers — see internal/service for the rule's enforcement.
package evolve

import (
	"fmt"
	"sync"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// Version is the monotone epoch counter of a MutableGraph. The zero
// value names the graph as constructed; every Apply increments it.
type Version uint64

// Batch is one epoch's worth of mutations, applied atomically:
// readers observe either the previous epoch or the fully rebuilt one.
// Inserts and deletes are undirected and normalized internally;
// self-loops, duplicate inserts and deletes of absent edges are
// ignored (and excluded from the applied counts). An edge present in
// both lists is deleted: delete wins, so a batch can be replayed
// idempotently.
type Batch struct {
	Insert []graph.Edge
	Delete []graph.Edge
}

// Result reports what one Apply actually changed.
type Result struct {
	// Version is the epoch the batch produced.
	Version Version
	// Inserted and Deleted count the edges that actually changed the
	// graph (requested minus no-ops).
	Inserted, Deleted int
	// Nodes and Edges describe the new epoch.
	Nodes int
	Edges int64
}

// MutableGraph is a graph that evolves in epochs. It wraps the
// current immutable CSR behind a version counter and maintains the
// degree vector incrementally, so π is O(n) per epoch instead of an
// O(m) CSR scan. Safe for concurrent use: Apply serializes writers,
// Snapshot and the accessors never block behind a rebuild.
type MutableGraph struct {
	mu  sync.RWMutex
	g   *graph.Graph
	ver Version
	deg []int
	m   int64 // current undirected edge count
	col *telemetry.Collector
}

// NewMutable wraps g as epoch 0 of a mutable graph. g must not be
// modified by the caller afterwards (graphs are immutable everywhere
// else in this codebase, so that is the default).
func NewMutable(g *graph.Graph) *MutableGraph {
	n := g.NumNodes()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.NodeID(v))
	}
	return &MutableGraph{g: g, deg: deg, m: g.NumEdges()}
}

// SetCollector attaches a telemetry collector counting epochs and
// edge churn. Call before the graph is shared; nil (the default) is
// the uninstrumented fast path.
func (mg *MutableGraph) SetCollector(col *telemetry.Collector) { mg.col = col }

// Snapshot returns the current epoch's immutable graph and its
// version. The graph is safe to hold across future mutations — it is
// the epoch, not a view of it.
func (mg *MutableGraph) Snapshot() (*graph.Graph, Version) {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return mg.g, mg.ver
}

// Version returns the current epoch counter.
func (mg *MutableGraph) Version() Version {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return mg.ver
}

// NumNodes returns the current node-range size (including any
// isolated vertices a deletion left behind).
func (mg *MutableGraph) NumNodes() int {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return mg.g.NumNodes()
}

// NumEdges returns the current undirected edge count.
func (mg *MutableGraph) NumEdges() int64 {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return mg.m
}

// Degrees returns a copy of the delta-maintained degree vector.
func (mg *MutableGraph) Degrees() []int {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	return append([]int(nil), mg.deg...)
}

// Stationary returns the stationary distribution π_v = deg(v)/2m of
// the current epoch's random walk, computed from the delta-maintained
// degrees — no CSR scan. Isolated vertices get π = 0; on a graph with
// no edges the result is all zeros.
func (mg *MutableGraph) Stationary() []float64 {
	mg.mu.RLock()
	defer mg.mu.RUnlock()
	pi := make([]float64, len(mg.deg))
	if mg.m == 0 {
		return pi
	}
	twoM := float64(2 * mg.m)
	for v, d := range mg.deg {
		pi[v] = float64(d) / twoM
	}
	return pi
}

// Apply rebuilds the graph with the batch applied and bumps the
// version. The rebuild streams the surviving edges of the current
// epoch plus the effective inserts through graph.Builder, so the new
// epoch satisfies every CSR invariant (sorted, deduplicated,
// loop-free, symmetric) by construction. Inserts may reference node
// IDs beyond the current range, growing it; the per-graph limit is
// graph.MaxNodes.
func (mg *MutableGraph) Apply(b Batch) (Result, error) {
	del := make(map[uint64]struct{}, len(b.Delete))
	for _, e := range b.Delete {
		if e.U == e.V {
			continue
		}
		del[edgeKey(e.U, e.V)] = struct{}{}
	}

	mg.mu.Lock()
	defer mg.mu.Unlock()

	nb := graph.NewBuilder(int(mg.m) + len(b.Insert))
	// Preserve the node range even if deletion isolates its endpoints.
	if n := mg.g.NumNodes(); n > 0 {
		nb.AddNode(graph.NodeID(n - 1))
	}
	deleted := 0
	mg.g.Edges(func(u, v graph.NodeID) bool {
		if _, gone := del[edgeKey(u, v)]; gone {
			deleted++
			return true
		}
		nb.AddEdge(u, v)
		return true
	})

	inserted := 0
	for _, e := range b.Insert {
		if e.U == e.V {
			continue
		}
		if int(e.U) > graph.MaxNodes || int(e.V) > graph.MaxNodes {
			return Result{}, fmt.Errorf("evolve: edge {%d,%d} exceeds MaxNodes", e.U, e.V)
		}
		key := edgeKey(e.U, e.V)
		// One lookup serves three filters: delete-wins within the batch,
		// and (because del doubles as the batch-local seen set below)
		// duplicate inserts. Builder would dedup anyway, but the applied
		// count must reflect real change.
		if _, skip := del[key]; skip {
			continue
		}
		if int(e.U) < mg.g.NumNodes() && int(e.V) < mg.g.NumNodes() && mg.g.HasEdge(e.U, e.V) {
			continue // already present: a no-op, not an insertion
		}
		del[key] = struct{}{}
		inserted++
		nb.AddEdge(e.U, e.V)
	}

	ng := nb.Build()
	mg.g = ng
	mg.ver++
	mg.m = ng.NumEdges()
	// Delta-update the degree vector: rebuilt graphs are the source of
	// truth for counts, but the vector itself is maintained without a
	// CSR scan — recompute only the endpoints the batch touched.
	if n := ng.NumNodes(); n != len(mg.deg) {
		nd := make([]int, n)
		copy(nd, mg.deg)
		mg.deg = nd
	}
	touch := func(e graph.Edge) {
		if int(e.U) < len(mg.deg) {
			mg.deg[e.U] = ng.Degree(e.U)
		}
		if int(e.V) < len(mg.deg) {
			mg.deg[e.V] = ng.Degree(e.V)
		}
	}
	for _, e := range b.Insert {
		touch(e)
	}
	for _, e := range b.Delete {
		touch(e)
	}

	mg.col.Add(telemetry.EvolveEpochs, 1)
	mg.col.Add(telemetry.EvolveEdgesInserted, int64(inserted))
	mg.col.Add(telemetry.EvolveEdgesDeleted, int64(deleted))
	return Result{
		Version:  mg.ver,
		Inserted: inserted,
		Deleted:  deleted,
		Nodes:    ng.NumNodes(),
		Edges:    mg.m,
	}, nil
}

// edgeKey packs a normalized undirected edge into one comparable word.
func edgeKey(u, v graph.NodeID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}
