package evolve

import (
	"context"
	"fmt"

	"mixtime/internal/graph"
	"mixtime/internal/spectral"
	"mixtime/internal/telemetry"
)

// Options configures a Tracker.
type Options struct {
	// Tol is the absolute eigenvalue tolerance of every per-epoch
	// solve, warm and cold alike (default 1e-8, matching spectral).
	Tol float64
	// Seed seeds the cold random starts (default 1). Warm starts are
	// deterministic by construction — they begin at the previous
	// epoch's eigenvector.
	Seed uint64
	// Workers shards matvecs exactly as spectral.Options.Workers does.
	Workers int
	// Method selects the solver: "power" (default) or "lanczos". Both
	// accept the warm-start vector; power iteration is where the
	// per-phase iteration split makes the saving directly countable.
	Method string
	// Eps is the variation distance for the per-epoch Sinclair bounds
	// (default 0.1, the paper's headline ε).
	Eps float64
	// CompareCold additionally runs a cold-start solve per epoch and
	// reports its λ₂-phase iteration count beside the warm one — the
	// accuracy/cost column of experiment E1. The cold control is
	// discarded after measurement; trajectories always come from the
	// warm chain.
	CompareCold bool
	// Collector receives the solver and evolve_* telemetry.
	Collector *telemetry.Collector
}

// EpochStat is one epoch's observation of the mixing-time trajectory.
type EpochStat struct {
	// Epoch counts Observe calls on this tracker (0-based); Version is
	// the underlying graph's epoch counter at observation time.
	Epoch   int
	Version Version
	Nodes   int
	Edges   int64
	// Mu, Lambda2, LambdaN and Converged are the warm solve's estimate.
	Mu, Lambda2, LambdaN float64
	Converged            bool
	// WarmStarted reports whether this epoch actually reused the
	// previous eigenvector (the first epoch never does).
	WarmStarted bool
	// WarmIters is the λ₂-phase iteration count of the warm solve;
	// ColdIters is the cold control's (0 unless Options.CompareCold).
	// TotalIters is the warm solve's full count across both phases.
	WarmIters, ColdIters, TotalIters int
	// ColdMu is the cold control's µ (0 unless CompareCold): at equal
	// tolerance it agrees with Mu to within the solver tolerance, which
	// is what makes the iteration comparison an equal-accuracy one.
	ColdMu float64
	// LowerT and UpperT are the Sinclair mixing-time bounds at
	// Options.Eps for this epoch.
	LowerT, UpperT float64
}

// Tracker observes the SLEM/mixing-time trajectory of a MutableGraph
// across epochs, warm-starting each solve from the previous epoch's
// λ₂ eigenvector. The warm-start contract: the seed vector is a hint,
// never an assumption — a stale or wrong-length vector degrades to a
// cold start inside spectral, so every estimate is correct at the
// requested tolerance regardless of how far the graph drifted between
// observations.
//
// The tracked graph must stay free of isolated vertices at every
// observed epoch (delete batches that strand a vertex make the walk
// operator undefined); E1/E2 maintain that by construction.
type Tracker struct {
	mg    *MutableGraph
	opt   Options
	prev  []float64
	epoch int
}

// NewTracker builds a tracker over mg. The collector (if any) is also
// attached to mg so epoch counters and solver counters land together.
func NewTracker(mg *MutableGraph, opt Options) *Tracker {
	if opt.Eps <= 0 {
		opt.Eps = 0.1
	}
	if opt.Collector != nil {
		mg.SetCollector(opt.Collector)
	}
	return &Tracker{mg: mg, opt: opt}
}

// Observe estimates the current epoch's SLEM (warm-started when a
// previous eigenvector is available) and records the eigenvector for
// the next call. Safe to call after any number of Apply calls in
// between; each Observe measures whatever epoch is current.
func (t *Tracker) Observe(ctx context.Context) (EpochStat, error) {
	g, ver := t.mg.Snapshot()
	sopt := spectral.Options{
		Tol:       t.opt.Tol,
		Seed:      t.opt.Seed,
		Workers:   t.opt.Workers,
		Collector: t.opt.Collector,
	}
	// A grown node range keeps old IDs stable, so a shorter previous
	// vector is still a useful hint: pad the new coordinates with
	// zeros and let deflation renormalize. A longer one means the
	// graph shrank (relabeling destroyed alignment) — cold start.
	if len(t.prev) > 0 && len(t.prev) <= g.NumNodes() {
		start := make([]float64, g.NumNodes())
		copy(start, t.prev)
		sopt.Start = start
	}

	est, err := t.solve(ctx, g, sopt)
	if err != nil {
		return EpochStat{}, fmt.Errorf("evolve: epoch %d (version %d): %w", t.epoch, ver, err)
	}

	stat := EpochStat{
		Epoch:       t.epoch,
		Version:     ver,
		Nodes:       g.NumNodes(),
		Edges:       g.NumEdges(),
		Mu:          est.Mu,
		Lambda2:     est.Lambda2,
		LambdaN:     est.LambdaN,
		Converged:   est.Converged,
		WarmStarted: est.WarmStarted,
		WarmIters:   est.Iters2,
		TotalIters:  est.Iterations,
		LowerT:      spectral.MixingLowerBound(est.Mu, t.opt.Eps),
		UpperT:      spectral.MixingUpperBound(est.Mu, t.opt.Eps, g.NumNodes()),
	}
	if t.opt.CompareCold {
		copt := sopt
		copt.Start = nil
		cold, err := t.solve(ctx, g, copt)
		if err != nil {
			return EpochStat{}, fmt.Errorf("evolve: epoch %d cold control: %w", t.epoch, err)
		}
		stat.ColdIters = cold.Iters2
		stat.ColdMu = cold.Mu
	}

	t.prev = est.Vector2
	t.epoch++
	return stat, nil
}

func (t *Tracker) solve(ctx context.Context, g *graph.Graph, opt spectral.Options) (*spectral.Estimate, error) {
	if t.opt.Method == "lanczos" {
		return spectral.SLEMLanczosContext(ctx, g, opt)
	}
	return spectral.SLEMPowerContext(ctx, g, opt)
}
