package evolve

import (
	"math/rand/v2"

	"mixtime/internal/graph"
)

// maxDraws bounds rejection sampling per requested edge: on a graph
// dense enough that distinct absent pairs are hard to hit, the batch
// comes back short rather than spinning. Callers that need exactly k
// edges should check len(Batch.Insert).
const maxDraws = 200

// GrowRandom returns a batch inserting up to k distinct random edges
// absent from g, endpoints uniform over the node range — the
// edge-by-edge growth process of the Evolution-of-the-Mixing-Rate
// model (PAPERS.md), batched. Deterministic for a given rng state.
func GrowRandom(g *graph.Graph, k int, rng *rand.Rand) Batch {
	n := g.NumNodes()
	if n < 2 {
		return Batch{}
	}
	return sampleAbsent(g, k, rng, func() (graph.NodeID, graph.NodeID) {
		return graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n))
	})
}

// MergeCommunities returns a batch inserting up to k distinct random
// edges between the vertex sets a and b — the community-merge
// mutation: a few cross-community edges collapse two slow-mixing
// regions into one faster one (§5 of the paper read in reverse).
func MergeCommunities(g *graph.Graph, a, b []graph.NodeID, k int, rng *rand.Rand) Batch {
	if len(a) == 0 || len(b) == 0 {
		return Batch{}
	}
	return sampleAbsent(g, k, rng, func() (graph.NodeID, graph.NodeID) {
		return a[rng.IntN(len(a))], b[rng.IntN(len(b))]
	})
}

// AttackEdges returns a batch inserting up to k distinct random
// attack edges between the honest region [0, honestN) and the sybil
// region [honestN, n) of a combined graph — the accretion process
// experiment E2 drives: each epoch the adversary buys g more links
// into the honest region.
func AttackEdges(g *graph.Graph, honestN int, k int, rng *rand.Rand) Batch {
	n := g.NumNodes()
	if honestN < 1 || honestN >= n {
		return Batch{}
	}
	return sampleAbsent(g, k, rng, func() (graph.NodeID, graph.NodeID) {
		return graph.NodeID(rng.IntN(honestN)), graph.NodeID(honestN + rng.IntN(n-honestN))
	})
}

// sampleAbsent draws candidate endpoints from draw until it has k
// distinct edges absent from g (or the draw budget runs out).
func sampleAbsent(g *graph.Graph, k int, rng *rand.Rand, draw func() (graph.NodeID, graph.NodeID)) Batch {
	seen := make(map[uint64]struct{}, k)
	edges := make([]graph.Edge, 0, k)
	for budget := k * maxDraws; len(edges) < k && budget > 0; budget-- {
		u, v := draw()
		if u == v {
			continue
		}
		key := edgeKey(u, v)
		if _, dup := seen[key]; dup {
			continue
		}
		if g.HasEdge(u, v) {
			continue
		}
		seen[key] = struct{}{}
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	return Batch{Insert: edges}
}
