// Package markov implements the random walk on an undirected graph as
// a Markov chain: the transition operator P = D⁻¹A applied to exact
// probability distributions, the stationary distribution
// π_v = deg(v)/2m, total-variation and separation distances, and the
// direct (sampling) measurement of the mixing time from Definition 1
// of the paper:
//
//	T(ε) = max_i min{ t : ‖π − π⁽ⁱ⁾Pᵗ‖_tv < ε }.
package markov

import (
	"errors"
	"math"
	"runtime"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// minParallelAdj is the adjacency length (2m) below which the
// row-sharded kernels fall back to the sequential ones when the
// caller asks for automatic parallelism: under it a matvec costs a
// few tens of microseconds and goroutine fan-out overhead dominates.
// An explicit workers > 1 always shards.
const minParallelAdj = 1 << 15

// Chain is the random walk on a fixed graph. The zero value is not
// usable; construct with New. A Chain is immutable and safe for
// concurrent use.
type Chain struct {
	g      *graph.Graph
	invDeg []float64
	pi     []float64
	plan   *graph.ShardPlan
	adjLen int64 // 2m, the CSR entries one full pass scans
	col    *telemetry.Collector
	lazy   bool
}

// Option configures a Chain.
type Option func(*Chain)

// Lazy makes the chain lazy: P' = (I+P)/2. A lazy chain is aperiodic
// on every connected graph, including bipartite ones where the plain
// walk never converges. The stationary distribution is unchanged.
func Lazy() Option { return func(c *Chain) { c.lazy = true } }

// WithCollector attaches a telemetry collector: every propagation
// kernel then counts its matvecs, SpMM blocks, edges scanned and
// trace completions into col at kernel-call granularity (one atomic
// add per CSR pass, never per edge), so results stay byte-identical.
// A nil col — the default — keeps the hot paths on the uninstrumented
// fast path.
func WithCollector(col *telemetry.Collector) Option {
	return func(c *Chain) { c.col = col }
}

// New constructs the random-walk chain for g. It fails if the graph
// is empty or has isolated vertices (the walk is undefined there); the
// paper sidesteps both by measuring the largest connected component.
func New(g *graph.Graph, opts ...Option) (*Chain, error) {
	n := g.NumNodes()
	if n == 0 {
		return nil, errors.New("markov: empty graph")
	}
	c := &Chain{g: g}
	for _, o := range opts {
		o(c)
	}
	c.invDeg = make([]float64, n)
	c.pi = make([]float64, n)
	twoM := float64(2 * g.NumEdges())
	if twoM == 0 {
		return nil, errors.New("markov: graph has no edges")
	}
	for v := 0; v < n; v++ {
		d := g.Degree(graph.NodeID(v))
		if d == 0 {
			return nil, errors.New("markov: graph has an isolated vertex")
		}
		c.invDeg[v] = 1 / float64(d)
		c.pi[v] = float64(d) / twoM
	}
	// Edge-balanced shard plan for the row-sharded kernels, computed
	// once per chain. Oversubscribing the core count keeps workers
	// busy when shard costs drift apart.
	c.plan = graph.NewShardPlan(g, 4*runtime.GOMAXPROCS(0))
	c.adjLen = 2 * g.NumEdges()
	if c.col != nil {
		st := c.plan.Stats(g)
		c.col.ObserveMax(telemetry.ShardImbalanceMilli, int64(st.Imbalance*1000))
		c.col.ObserveMax(telemetry.MaxGraphAdjacency, c.adjLen)
	}
	return c, nil
}

// Collector returns the attached telemetry collector (nil when the
// chain is uninstrumented).
func (c *Chain) Collector() *telemetry.Collector { return c.col }

// Graph returns the underlying graph.
func (c *Chain) Graph() *graph.Graph { return c.g }

// IsLazy reports whether the chain is the lazy walk (I+P)/2.
func (c *Chain) IsLazy() bool { return c.lazy }

// NumNodes returns the number of states.
func (c *Chain) NumNodes() int { return c.g.NumNodes() }

// Stationary returns the stationary distribution π, with
// π_v = deg(v)/2m (Theorem 1). The returned slice is shared; callers
// must not modify it.
func (c *Chain) Stationary() []float64 { return c.pi }

// IsErgodic reports whether the chain converges to π from every start:
// the graph must be connected, and the walk aperiodic (non-bipartite,
// or lazy).
func (c *Chain) IsErgodic() bool {
	if !graph.IsConnected(c.g) {
		return false
	}
	return c.lazy || !graph.IsBipartite(c.g)
}

// Step computes dst = p·P for the plain walk, or p·(I+P)/2 for the
// lazy walk. dst and p must have length NumNodes and must not alias.
// scratch, if at least NumNodes long, avoids an allocation (longer
// pooled buffers are resliced, not rejected).
func (c *Chain) Step(dst, p, scratch []float64) {
	if c.col != nil {
		c.col.Add(telemetry.Matvecs, 1)
		c.col.Add(telemetry.EdgesScanned, c.adjLen)
	}
	n := c.g.NumNodes()
	w := scratch
	if len(w) < n {
		w = make([]float64, n)
	} else {
		w = w[:n]
	}
	for v := 0; v < n; v++ {
		w[v] = p[v] * c.invDeg[v]
	}
	c.stepRows(dst, p, w, 0, n)
}

// stepRows computes dst[v] for v in [lo, hi) from the pre-scaled
// w = p/deg. Rows are independent, so any partition of the vertex
// range produces bytes identical to a full sequential pass — the
// invariant StepParallel and the sharded tests rely on. The compact
// (uint32-offset) form gets a loop with the offset and adjacency
// arrays hoisted into locals — no per-row slice construction, half
// the offset bytes per row; per-row summation order is unchanged.
func (c *Chain) stepRows(dst, p, w []float64, lo, hi int) {
	if off := c.g.Offsets32(); off != nil {
		adj := c.g.Adjacency()
		if c.lazy {
			for v := lo; v < hi; v++ {
				var s float64
				for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
					s += w[adj[i]]
				}
				dst[v] = 0.5*p[v] + 0.5*s
			}
			return
		}
		for v := lo; v < hi; v++ {
			var s float64
			for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
				s += w[adj[i]]
			}
			dst[v] = s
		}
		return
	}
	if c.lazy {
		for v := lo; v < hi; v++ {
			var s float64
			for _, u := range c.g.Neighbors(graph.NodeID(v)) {
				s += w[u]
			}
			dst[v] = 0.5*p[v] + 0.5*s
		}
		return
	}
	for v := lo; v < hi; v++ {
		var s float64
		for _, u := range c.g.Neighbors(graph.NodeID(v)) {
			s += w[u]
		}
		dst[v] = s
	}
}

// StepParallel is Step with the row loop sharded across the chain's
// edge-balanced plan: workers goroutines claim contiguous vertex
// ranges whose adjacency lengths are near-equal, so each pays for the
// edges it scans rather than the vertices it owns. Per-row summation
// order is unchanged, so the output is byte-identical to Step.
//
// workers <= 0 uses GOMAXPROCS but stays sequential on graphs too
// small to amortize the fan-out; workers == 1 is Step; an explicit
// workers > 1 always shards.
func (c *Chain) StepParallel(dst, p, scratch []float64, workers int) {
	n := c.g.NumNodes()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if 2*c.g.NumEdges() < minParallelAdj {
			workers = 1
		}
	}
	if workers <= 1 {
		c.Step(dst, p, scratch)
		return
	}
	if c.col != nil {
		c.col.Add(telemetry.Matvecs, 1)
		c.col.Add(telemetry.EdgesScanned, c.adjLen)
	}
	w := scratch
	if len(w) < n {
		w = make([]float64, n)
	} else {
		w = w[:n]
	}
	c.plan.Do(workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			w[v] = p[v] * c.invDeg[v]
		}
	})
	c.plan.Do(workers, func(lo, hi int) {
		c.stepRows(dst, p, w, lo, hi)
	})
}

// Delta returns the point distribution concentrated at src (π⁽ⁱ⁾ in
// the paper's notation).
func (c *Chain) Delta(src graph.NodeID) []float64 {
	p := make([]float64, c.g.NumNodes())
	p[src] = 1
	return p
}

// Propagate advances p by t steps in place and returns it.
func (c *Chain) Propagate(p []float64, t int) []float64 {
	n := c.g.NumNodes()
	q := make([]float64, n)
	scratch := make([]float64, n)
	for i := 0; i < t; i++ {
		c.Step(q, p, scratch)
		p, q = q, p
	}
	return p
}

// TVDistance returns the total variation distance
// ½·Σ|p_v − q_v| ∈ [0, 1].
func TVDistance(p, q []float64) float64 {
	var s float64
	for i, v := range p {
		s += math.Abs(v - q[i])
	}
	return s / 2
}

// TVFromStationary returns ‖p − π‖_tv for this chain.
func (c *Chain) TVFromStationary(p []float64) float64 { return TVDistance(p, c.pi) }

// SeparationDistance returns max_v (1 − p_v/π_v), the one-sided
// distance used by Whānau's analysis. It upper-bounds TV distance.
func (c *Chain) SeparationDistance(p []float64) float64 {
	var m float64
	for v, pv := range p {
		if s := 1 - pv/c.pi[v]; s > m {
			m = s
		}
	}
	return m
}

// RelativePointwiseDistance returns max_v |p_v − π_v| / π_v — the
// distance Sinclair's original bounds are stated in. It dominates
// both the separation and (twice the) total variation distance.
func (c *Chain) RelativePointwiseDistance(p []float64) float64 {
	var m float64
	for v, pv := range p {
		if d := math.Abs(pv-c.pi[v]) / c.pi[v]; d > m {
			m = d
		}
	}
	return m
}

// KLDivergence returns D(p‖π) = Σ p_v·ln(p_v/π_v) in nats, the
// information-theoretic convergence measure. p_v = 0 terms contribute
// 0; π has full support on a chain, so the divergence is finite.
func (c *Chain) KLDivergence(p []float64) float64 {
	var s float64
	for v, pv := range p {
		if pv > 0 {
			s += pv * math.Log(pv/c.pi[v])
		}
	}
	if s < 0 {
		s = 0 // clamp float noise; KL is non-negative
	}
	return s
}
