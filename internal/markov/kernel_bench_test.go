// Kernel benchmarks for the propagation hot paths. They live in the
// markov test binary — not the repo-root one — so the snapshot
// scripts/bench.sh records depends only on this package and its
// dependencies: code growth elsewhere in the repo cannot shift the
// hot loops' binary layout and fake a regression in benchdiff.
package markov_test

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"mixtime/internal/datasets"
	"mixtime/internal/graph"
	"mixtime/internal/markov"
	"mixtime/internal/telemetry"
)

// kernelGraph is the physics-2 substitute at a scale where one CSR
// pass is a few tens of microseconds — the ablation workload of
// DESIGN.md §7.
func kernelGraph() *graph.Graph {
	d, err := datasets.ByName("physics-2")
	if err != nil {
		panic(err)
	}
	return d.Generate(0.1, 1)
}

// benchStep runs the single-distribution CSR kernel with an optional
// telemetry collector attached to the chain.
func benchStep(b *testing.B, col *telemetry.Collector) {
	g := kernelGraph()
	var opts []markov.Option
	if col != nil {
		opts = append(opts, markov.WithCollector(col))
	}
	c, err := markov.New(g, opts...)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	p := c.Delta(0)
	q := make([]float64, n)
	scratch := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(q, p, scratch)
		p, q = q, p
	}
}

// BenchmarkStep is the uninstrumented single-distribution kernel
// baseline. BenchmarkStepCollector is the identical kernel with a
// live telemetry collector; DESIGN.md §8's overhead contract says the
// pair must stay within noise of each other, because counters are
// bumped once per CSR pass, never per edge. bench.sh snapshots both,
// so benchdiff flags a drift in either.
func BenchmarkStep(b *testing.B)          { benchStep(b, nil) }
func BenchmarkStepCollector(b *testing.B) { benchStep(b, telemetry.New()) }

// BenchmarkStepBlock measures the SpMV→SpMM transformation: one
// blocked step serves B source distributions per CSR pass, so the
// per-neighbor index loads are amortized across the block. The
// ns/source metric is the per-source cost; B=1 is the sequential
// baseline it must beat.
func BenchmarkStepBlock(b *testing.B) {
	g := kernelGraph()
	c, err := markov.New(g)
	if err != nil {
		b.Fatal(err)
	}
	n := g.NumNodes()
	for _, width := range []int{1, 4, 8, 16} {
		b.Run(fmt.Sprintf("B=%d", width), func(b *testing.B) {
			p := make([]float64, n*width)
			q := make([]float64, n*width)
			scratch := make([]float64, n*width)
			for j := 0; j < width; j++ {
				p[j*width+j] = 1 // source j starts at vertex j
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.StepBlock(q, p, width, scratch)
				p, q = q, p
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(width),
				"ns/source")
		})
	}
}

// BenchmarkTraceSampleBlocked measures the full blocked trace sampler
// the experiment drivers run on, per-source, against the per-source
// sequential path (B=1).
func BenchmarkTraceSampleBlocked(b *testing.B) {
	g := kernelGraph()
	c, err := markov.New(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	sources := markov.SampleSources(g, 16, rng)
	for _, width := range []int{1, 8} {
		b.Run(fmt.Sprintf("B=%d", width), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.TraceSampleBlocked(sources, 50, width)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(sources)),
				"ns/source")
		})
	}
}

// BenchmarkMCTrace measures the Monte-Carlo walker kernel: 256
// walkers stepped through the inlined-PCG neighbor-draw loop. The
// per-op allocations are the trace and walker arrays (setup); the
// per-step path is allocation-free.
func BenchmarkMCTrace(b *testing.B) {
	g := kernelGraph()
	c, err := markov.New(g)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MCTrace(0, 50, 256, rng)
	}
}

func BenchmarkPropagationExact(b *testing.B) {
	g := kernelGraph()
	c, err := markov.New(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.TraceFrom(0, 100)
	}
}
