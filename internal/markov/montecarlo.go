package markov

import (
	"math/rand/v2"

	"mixtime/internal/fastrand"
	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// MCTrace estimates the TV-distance curve from src by simulating
// walks random walks for maxT steps and comparing the empirical
// endpoint distribution with π after every step. It is the
// Monte-Carlo alternative to exact propagation: each step costs
// O(walks) — the endpoint counts and the TV sum are maintained
// incrementally as walkers move, after an O(n) setup — so it is
// cheaper per step than exact propagation's O(m) on huge graphs, but
// noisy: the TV estimate is biased upward by sampling error of order
// √(n/walks), so exact propagation is the method of record (and what
// the paper uses). Kept as an ablation and as a cross-check.
//
// The walker loop draws from a private fastrand.PCG derived from rng
// (one Uint64), so moves cost an inlined PCG32 step and a Lemire
// bounded draw instead of an interface dispatch per neighbor pick.
// Results are still a pure function of rng's seed, but the stream
// differs from the pre-fastrand one.
func (c *Chain) MCTrace(src graph.NodeID, maxT, walks int, rng *rand.Rand) *Trace {
	pr := fastrand.FromRand(rng)
	n := c.g.NumNodes()
	pos := make([]graph.NodeID, walks)
	for i := range pos {
		pos[i] = src
	}
	invWalks := 1 / float64(walks)
	// counts holds the walker count per vertex, term the vertex's
	// |counts/walks − π| contribution, and sum the running Σ term — so
	// a walker moving a→b only recomputes the two affected terms.
	counts := make([]float64, n)
	counts[src] = float64(walks)
	term := make([]float64, n)
	var sum float64
	for v := 0; v < n; v++ {
		d := counts[v]*invWalks - c.pi[v]
		if d < 0 {
			d = -d
		}
		term[v] = d
		sum += d
	}
	tv := make([]float64, maxT)
	off := c.g.Offsets32()
	adj := c.g.Adjacency()
	var moves int64 // batched into the collector after the loop
	for t := 0; t < maxT; t++ {
		for i, v := range pos {
			if c.lazy && pr.Coin() {
				continue
			}
			moves++
			var u graph.NodeID
			if off != nil {
				o := off[v]
				u = adj[o+pr.Uint32n(off[v+1]-o)]
			} else {
				nb := c.g.Neighbors(v)
				u = nb[pr.IntN(len(nb))]
			}
			pos[i] = u
			sum -= term[v] + term[u]
			counts[v]--
			counts[u]++
			dv := counts[v]*invWalks - c.pi[v]
			if dv < 0 {
				dv = -dv
			}
			du := counts[u]*invWalks - c.pi[u]
			if du < 0 {
				du = -du
			}
			term[v], term[u] = dv, du
			sum += dv + du
		}
		if sum < 0 {
			sum = 0 // clamp float noise from incremental updates
		}
		tv[t] = sum / 2
	}
	if c.col != nil {
		c.col.Add(telemetry.WalkerMoves, moves)
		c.col.Add(telemetry.TracesCompleted, 1)
	}
	return &Trace{Source: src, TV: tv}
}

// SampleSources draws k vertices uniformly at random (with
// replacement if k exceeds n) for use as trace sources.
func SampleSources(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	n := g.NumNodes()
	if k >= n {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(i)
		}
		return out
	}
	out := make([]graph.NodeID, 0, k)
	seen := make(map[graph.NodeID]bool, k)
	for len(out) < k {
		v := graph.NodeID(rng.IntN(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
