package markov

import (
	"math/rand/v2"

	"mixtime/internal/graph"
)

// MCTrace estimates the TV-distance curve from src by simulating
// walks random walks for maxT steps and comparing the empirical
// endpoint distribution with π after every step. It is the
// Monte-Carlo alternative to exact propagation: cheaper per step on
// huge graphs (O(walks) vs O(m)) but noisy — the TV estimate is biased
// upward by sampling error of order √(n/walks), so exact propagation
// is the method of record (and what the paper uses). Kept as an
// ablation and as a cross-check.
func (c *Chain) MCTrace(src graph.NodeID, maxT, walks int, rng *rand.Rand) *Trace {
	n := c.g.NumNodes()
	pos := make([]graph.NodeID, walks)
	for i := range pos {
		pos[i] = src
	}
	counts := make([]float64, n)
	tv := make([]float64, maxT)
	invWalks := 1 / float64(walks)
	for t := 0; t < maxT; t++ {
		for i, v := range pos {
			if c.lazy && rng.IntN(2) == 0 {
				continue
			}
			adj := c.g.Neighbors(v)
			pos[i] = adj[rng.IntN(len(adj))]
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, v := range pos {
			counts[v]++
		}
		var s float64
		for v := 0; v < n; v++ {
			d := counts[v]*invWalks - c.pi[v]
			if d < 0 {
				d = -d
			}
			s += d
		}
		tv[t] = s / 2
	}
	return &Trace{Source: src, TV: tv}
}

// SampleSources draws k vertices uniformly at random (with
// replacement if k exceeds n) for use as trace sources.
func SampleSources(g *graph.Graph, k int, rng *rand.Rand) []graph.NodeID {
	n := g.NumNodes()
	if k >= n {
		out := make([]graph.NodeID, n)
		for i := range out {
			out[i] = graph.NodeID(i)
		}
		return out
	}
	out := make([]graph.NodeID, 0, k)
	seen := make(map[graph.NodeID]bool, k)
	for len(out) < k {
		v := graph.NodeID(rng.IntN(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
