package markov

import (
	"testing"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// TestStepNilCollectorNoAllocs pins the zero-overhead contract: a
// chain built without WithCollector must take the nil-check fast path
// in Step and allocate nothing per call.
func TestStepNilCollectorNoAllocs(t *testing.T) {
	g := connectedRandom(2_000, 8_000, 1)
	c := mustChain(t, g)
	p := c.Delta(0)
	q := make([]float64, g.NumNodes())
	scratch := make([]float64, g.NumNodes())
	allocs := testing.AllocsPerRun(100, func() {
		c.Step(q, p, scratch)
		p, q = q, p
	})
	if allocs != 0 {
		t.Fatalf("Step with nil collector allocated %.1f objects/op, want 0", allocs)
	}
}

// TestStepCollectorByteIdentity verifies that instrumentation never
// perturbs the numerics: the same step sequence with and without a
// collector yields bit-identical distributions, and the collector
// counts one matvec (2m scanned adjacency slots) per Step.
func TestStepCollectorByteIdentity(t *testing.T) {
	g := connectedRandom(500, 2_000, 7)
	plain := mustChain(t, g)
	col := telemetry.New()
	instr := mustChain(t, g, WithCollector(col))

	n := g.NumNodes()
	p1, p2 := plain.Delta(3), instr.Delta(3)
	q1, q2 := make([]float64, n), make([]float64, n)
	s1, s2 := make([]float64, n), make([]float64, n)
	const steps = 25
	for i := 0; i < steps; i++ {
		plain.Step(q1, p1, s1)
		instr.Step(q2, p2, s2)
		for v := range q1 {
			if q1[v] != q2[v] {
				t.Fatalf("step %d vertex %d: %v != %v (instrumentation changed output)", i, v, q1[v], q2[v])
			}
		}
		p1, q1 = q1, p1
		p2, q2 = q2, p2
	}

	snap := col.Snapshot()
	if got := snap.Get(telemetry.Matvecs); got != steps {
		t.Errorf("matvecs = %d, want %d", got, steps)
	}
	wantEdges := int64(steps) * 2 * g.NumEdges()
	if got := snap.Get(telemetry.EdgesScanned); got != wantEdges {
		t.Errorf("edges_scanned = %d, want %d", got, wantEdges)
	}
	if snap.GetGauge(telemetry.MaxGraphAdjacency) != 2*g.NumEdges() {
		t.Errorf("max_graph_adjacency = %d, want %d", snap.GetGauge(telemetry.MaxGraphAdjacency), 2*g.NumEdges())
	}
}

// TestTraceCollectorCounts checks trace-level counters: a full trace
// records its per-source steps and completion, and the blocked path
// counts SpMM block passes instead of per-source matvecs.
func TestTraceCollectorCounts(t *testing.T) {
	g := connectedRandom(200, 800, 3)
	col := telemetry.New()
	c := mustChain(t, g, WithCollector(col))

	const maxT = 12
	c.TraceFrom(0, maxT)
	snap := col.Snapshot()
	if got := snap.Get(telemetry.SourceSteps); got != maxT {
		t.Errorf("source_steps after one trace = %d, want %d", got, maxT)
	}
	if got := snap.Get(telemetry.TracesCompleted); got != 1 {
		t.Errorf("traces_completed = %d, want 1", got)
	}

	col.Reset()
	sources := []graph.NodeID{0, 1, 2, 3}
	c.TraceSampleBlocked(sources, maxT, len(sources))
	snap = col.Snapshot()
	if got := snap.Get(telemetry.SpMMBlocks); got != maxT {
		t.Errorf("spmm_blocks = %d, want %d (one blocked pass per step)", got, maxT)
	}
	if got := snap.Get(telemetry.TracesCompleted); got != int64(len(sources)) {
		t.Errorf("traces_completed = %d, want %d", got, len(sources))
	}
	if got := snap.Get(telemetry.SourceSteps); got != int64(maxT*len(sources)) {
		t.Errorf("source_steps = %d, want %d", got, maxT*len(sources))
	}
}
