//go:build amd64

package markov

import "mixtime/internal/graph"

// useAVX2 gates the hand-written AVX2 SpMM kernels in block_amd64.s.
// It is a variable, not a constant, so the byte-identity tests can
// force the pure-Go path and compare outputs bit for bit; nothing
// else may write it after init.
var useAVX2 = detectAVX2()

// detectAVX2 performs the full OS-aware feature dance: the CPU must
// report OSXSAVE+AVX (CPUID.1:ECX), the OS must have enabled XMM+YMM
// state saving (XCR0 bits 1 and 2 via XGETBV), and the CPU must
// report AVX2 (CPUID.7.0:EBX bit 5). Checking the CPUID bit alone is
// not enough: without the XCR0 check a kernel that does not
// context-switch YMM state would corrupt registers across preemption.
func detectAVX2() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, cx, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avxBit = 1 << 28
	if cx&osxsave == 0 || cx&avxBit == 0 {
		return false
	}
	if eax, _ := xgetbv(); eax&6 != 6 {
		return false
	}
	_, bx, _, _ := cpuidex(7, 0)
	return bx&(1<<5) != 0
}

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (extended control register 0).
func xgetbv() (eax, edx uint32)

// stepRows8AVX advances an 8-column group of a strideBytes-wide block
// for rows [lo, hi): lane j of the YMM accumulators is column j, so
// each column sums its CSR neighbors in exactly the sequential
// kernel's order and the output is byte-identical to the pure-Go
// stepBlockRows8/8s kernels. dst, p and w must already be offset to
// the group's base column; strideBytes is the full block row stride
// in bytes (width*8).
//
//go:noescape
func stepRows8AVX(dst, p, w []float64, off []uint32, adj []graph.NodeID, strideBytes, lo, hi int, lazy bool)

// stepRows4AVX is stepRows8AVX for a 4-column group (one YMM
// register per row).
//
//go:noescape
func stepRows4AVX(dst, p, w []float64, off []uint32, adj []graph.NodeID, strideBytes, lo, hi int, lazy bool)

// blockTV8AVX accumulates, for each of the 8 columns of the n×8
// row-major p, Σ_v |p[v][j] − pi[v]| into tv[j] (the caller halves).
// Lane j is column j and rows are scanned in ascending order, so the
// per-column summation order matches the scalar blockTV.
//
//go:noescape
func blockTV8AVX(p, pi []float64, n int, tv *[8]float64)

// scale8AVX computes w[v][j] = p[v][j] * inv[v] over an n×8 row-major
// block — the width-8 prescale pass.
//
//go:noescape
func scale8AVX(w, p, inv []float64, n int)
