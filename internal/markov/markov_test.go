package markov

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"mixtime/internal/graph"
)

func ring(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(graph.NodeID(i), graph.NodeID((i+1)%n))
	}
	return b.Build()
}

func complete(n int) *graph.Graph {
	b := graph.NewBuilder(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.NodeID(i), graph.NodeID(j))
		}
	}
	return b.Build()
}

func connectedRandom(n int, extra int, seed uint64) *graph.Graph {
	rng := rand.New(rand.NewPCG(seed, 17))
	b := graph.NewBuilder(0)
	for i := 1; i < n; i++ {
		b.AddEdge(graph.NodeID(rng.IntN(i)), graph.NodeID(i)) // random tree
	}
	for k := 0; k < extra; k++ {
		b.AddEdge(graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n)))
	}
	g := b.Build()
	return g
}

func mustChain(t *testing.T, g *graph.Graph, opts ...Option) *Chain {
	t.Helper()
	c, err := New(g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsDegenerate(t *testing.T) {
	if _, err := New(&graph.Graph{}); err == nil {
		t.Fatal("empty graph accepted")
	}
	b := graph.NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddNode(2) // isolated
	if _, err := New(b.Build()); err == nil {
		t.Fatal("isolated vertex accepted")
	}
}

func TestStationaryDistribution(t *testing.T) {
	g := connectedRandom(50, 80, 3)
	c := mustChain(t, g)
	pi := c.Stationary()
	var sum float64
	twoM := float64(2 * g.NumEdges())
	for v, p := range pi {
		sum += p
		want := float64(g.Degree(graph.NodeID(v))) / twoM
		if math.Abs(p-want) > 1e-15 {
			t.Fatalf("pi[%d] = %v, want %v", v, p, want)
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("pi sums to %v", sum)
	}
}

func TestStationaryIsInvariant(t *testing.T) {
	for _, lazyOpt := range [][]Option{nil, {Lazy()}} {
		g := connectedRandom(60, 100, 9)
		c := mustChain(t, g, lazyOpt...)
		pi := append([]float64(nil), c.Stationary()...)
		q := make([]float64, len(pi))
		c.Step(q, pi, nil)
		if d := TVDistance(q, c.Stationary()); d > 1e-14 {
			t.Fatalf("lazy=%v: ‖πP − π‖ = %g", c.IsLazy(), d)
		}
	}
}

func TestStepPreservesMass(t *testing.T) {
	g := connectedRandom(40, 60, 5)
	c := mustChain(t, g)
	p := c.Delta(7)
	p = c.Propagate(p, 25)
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("mass after 25 steps = %v", sum)
	}
}

func TestCompleteGraphOneStepTV(t *testing.T) {
	// On K_n the point mass spreads uniformly over the n-1 neighbors
	// in one step; TV to the uniform π is exactly 1/n.
	n := 10
	c := mustChain(t, complete(n))
	tr := c.TraceFrom(0, 3)
	if got, want := tr.DistanceAt(1), 1/float64(n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("TV after 1 step = %v, want %v", got, want)
	}
	// K_n mixes essentially instantly; by step 3 distance is tiny.
	if tr.DistanceAt(3) > 1e-2 {
		t.Fatalf("K10 TV after 3 steps = %v", tr.DistanceAt(3))
	}
}

func TestBipartiteNeverMixesWithoutLaziness(t *testing.T) {
	g := ring(8) // even cycle: bipartite
	c := mustChain(t, g)
	if c.IsErgodic() {
		t.Fatal("plain walk on even cycle reported ergodic")
	}
	tr := c.TraceFrom(0, 200)
	if tr.DistanceAt(200) < 0.4 {
		t.Fatalf("bipartite TV fell to %v", tr.DistanceAt(200))
	}
	lazy := mustChain(t, g, Lazy())
	if !lazy.IsErgodic() {
		t.Fatal("lazy walk on even cycle reported non-ergodic")
	}
	ltr := lazy.TraceFrom(0, 400)
	if ltr.DistanceAt(400) > 1e-3 {
		t.Fatalf("lazy TV after 400 steps = %v", ltr.DistanceAt(400))
	}
}

func TestTVDistanceProperties(t *testing.T) {
	p := []float64{1, 0, 0}
	q := []float64{0, 0.5, 0.5}
	if d := TVDistance(p, q); d != 1 {
		t.Fatalf("disjoint TV = %v", d)
	}
	if d := TVDistance(p, p); d != 0 {
		t.Fatalf("self TV = %v", d)
	}
}

func TestSeparationDominatesTV(t *testing.T) {
	g := connectedRandom(40, 50, 11)
	c := mustChain(t, g)
	p := c.Propagate(c.Delta(0), 5)
	sep := c.SeparationDistance(p)
	tv := c.TVFromStationary(p)
	if sep < tv-1e-12 {
		t.Fatalf("separation %v < TV %v", sep, tv)
	}
	if s := c.SeparationDistance(c.Stationary()); math.Abs(s) > 1e-12 {
		t.Fatalf("separation of π = %v", s)
	}
}

func TestDistanceHierarchy(t *testing.T) {
	// RPD ≥ separation ≥ TV for any distribution, and all vanish at π.
	g := connectedRandom(60, 90, 13)
	c := mustChain(t, g)
	p := c.Propagate(c.Delta(3), 4)
	rpd := c.RelativePointwiseDistance(p)
	sep := c.SeparationDistance(p)
	tv := c.TVFromStationary(p)
	if rpd < sep-1e-12 || sep < tv-1e-12 {
		t.Fatalf("hierarchy violated: rpd=%v sep=%v tv=%v", rpd, sep, tv)
	}
	if d := c.RelativePointwiseDistance(c.Stationary()); d > 1e-12 {
		t.Fatalf("RPD(π) = %v", d)
	}
	if d := c.KLDivergence(c.Stationary()); d > 1e-12 {
		t.Fatalf("KL(π) = %v", d)
	}
}

func TestKLDivergence(t *testing.T) {
	g := complete(4) // uniform π = 1/4
	c := mustChain(t, g)
	// Point mass: KL = ln(1/π_v) = ln 4.
	if d := c.KLDivergence(c.Delta(0)); math.Abs(d-math.Log(4)) > 1e-12 {
		t.Fatalf("KL(δ) = %v, want ln 4", d)
	}
	// KL decreases as the walk mixes.
	p5 := c.Propagate(c.Delta(0), 5)
	if c.KLDivergence(p5) >= math.Log(4) {
		t.Fatal("KL did not decrease")
	}
}

func TestTraceUntil(t *testing.T) {
	c := mustChain(t, complete(20))
	tr, ok := c.TraceUntil(0, 1e-6, 100)
	if !ok {
		t.Fatal("K20 did not mix to 1e-6 in 100 steps")
	}
	if last := tr.TV[len(tr.TV)-1]; last >= 1e-6 {
		t.Fatalf("final distance %v", last)
	}
	_, ok = c.TraceUntil(0, 0, 5) // eps=0 unreachable
	if ok {
		t.Fatal("reached eps=0")
	}
}

func TestMixingTimeDefinition(t *testing.T) {
	traces := []*Trace{
		{Source: 0, TV: []float64{0.5, 0.2, 0.05}},
		{Source: 1, TV: []float64{0.6, 0.4, 0.09}},
	}
	tm, ok := MixingTime(traces, 0.1)
	if !ok || tm != 3 {
		t.Fatalf("MixingTime = %d,%v want 3,true", tm, ok)
	}
	tm, ok = MixingTime(traces, 0.3)
	if !ok || tm != 3 {
		t.Fatalf("MixingTime(0.3) = %d,%v want 3,true", tm, ok)
	}
	_, ok = MixingTime(traces, 0.01)
	if ok {
		t.Fatal("unreachable eps reported ok")
	}
	avg := AverageMixingTime(traces, 0.3)
	if avg != 2.5 { // source 0 reaches at t=2, source 1 at t=3
		t.Fatalf("avg = %v", avg)
	}
}

func TestMaxAndMeanTrace(t *testing.T) {
	traces := []*Trace{
		{TV: []float64{0.4, 0.1}},
		{TV: []float64{0.2, 0.3}},
	}
	mx := MaxTrace(traces)
	if mx[0] != 0.4 || mx[1] != 0.3 {
		t.Fatalf("MaxTrace = %v", mx)
	}
	mn := MeanTrace(traces)
	if math.Abs(mn[0]-0.3) > 1e-15 || math.Abs(mn[1]-0.2) > 1e-15 {
		t.Fatalf("MeanTrace = %v", mn)
	}
	if MaxTrace(nil) != nil || MeanTrace(nil) != nil {
		t.Fatal("empty trace aggregation not nil")
	}
}

func TestDistancesAt(t *testing.T) {
	traces := []*Trace{{TV: []float64{0.4, 0.1}}, {TV: []float64{0.2}}}
	d := DistancesAt(traces, 2)
	if d[0] != 0.1 || d[1] != 0.2 { // second trace clamps to last value
		t.Fatalf("DistancesAt = %v", d)
	}
	d0 := DistancesAt(traces, 0)
	if d0[0] != 1 {
		t.Fatalf("DistancesAt(0) = %v", d0)
	}
}

func TestEpsilonGrid(t *testing.T) {
	grid := EpsilonGrid(1e-4, 0.25, 10)
	if len(grid) != 10 {
		t.Fatalf("len = %d", len(grid))
	}
	if math.Abs(grid[0]-0.25) > 1e-12 || math.Abs(grid[9]-1e-4) > 1e-12 {
		t.Fatalf("endpoints %v %v", grid[0], grid[9])
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] >= grid[i-1] {
			t.Fatal("grid not decreasing")
		}
	}
	if g := EpsilonGrid(0, 0.1, 5); len(g) != 1 {
		t.Fatalf("degenerate grid %v", g)
	}
}

// Property: TV distance to π never increases along the walk (the
// transition operator is a contraction for any initial distribution).
func TestQuickTVMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		g := connectedRandom(30+int(seed%40), 60, seed)
		c, err := New(g, Lazy())
		if err != nil {
			return false
		}
		tr := c.TraceFrom(graph.NodeID(seed%uint64(g.NumNodes())), 60)
		for i := 1; i < len(tr.TV); i++ {
			if tr.TV[i] > tr.TV[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: exact propagation and Monte-Carlo estimation agree to
// within sampling error on a fast-mixing graph.
func TestMCTraceApproximatesExact(t *testing.T) {
	g := complete(12)
	c := mustChain(t, g)
	rng := rand.New(rand.NewPCG(42, 43))
	exact := c.TraceFrom(0, 8)
	mc := c.MCTrace(0, 8, 40_000, rng)
	for i := range exact.TV {
		if diff := math.Abs(exact.TV[i] - mc.TV[i]); diff > 0.05 {
			t.Fatalf("step %d: exact %v vs MC %v", i+1, exact.TV[i], mc.TV[i])
		}
	}
}

func TestMCTraceLazy(t *testing.T) {
	g := ring(8)
	c := mustChain(t, g, Lazy())
	rng := rand.New(rand.NewPCG(7, 8))
	mc := c.MCTrace(0, 300, 20_000, rng)
	if final := mc.TV[len(mc.TV)-1]; final > 0.1 {
		t.Fatalf("lazy MC walk did not mix: TV = %v", final)
	}
}

func TestSampleSources(t *testing.T) {
	g := complete(10)
	rng := rand.New(rand.NewPCG(1, 1))
	s := SampleSources(g, 5, rng)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	seen := map[graph.NodeID]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate source")
		}
		seen[v] = true
	}
	all := SampleSources(g, 100, rng)
	if len(all) != 10 {
		t.Fatalf("oversample len = %d", len(all))
	}
}

func TestTraceSampleParallelMatchesSequential(t *testing.T) {
	g := connectedRandom(200, 300, 21)
	c := mustChain(t, g)
	sources := []graph.NodeID{0, 5, 9, 40, 77, 123, 199}
	seq := c.TraceSample(sources, 30)
	for _, workers := range []int{0, 1, 2, 4, 16} {
		par := c.TraceSampleParallel(sources, 30, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d traces", workers, len(par))
		}
		for i := range seq {
			if par[i].Source != seq[i].Source {
				t.Fatalf("workers=%d: trace %d source mismatch", workers, i)
			}
			for s := range seq[i].TV {
				if par[i].TV[s] != seq[i].TV[s] {
					t.Fatalf("workers=%d: trace %d step %d: %v vs %v",
						workers, i, s, par[i].TV[s], seq[i].TV[s])
				}
			}
		}
	}
}

func TestTraceAllParallel(t *testing.T) {
	g := complete(30)
	c := mustChain(t, g)
	traces := c.TraceAllParallel(10, 4)
	if len(traces) != 30 {
		t.Fatalf("%d traces", len(traces))
	}
	for i, tr := range traces {
		if tr == nil || tr.Source != graph.NodeID(i) {
			t.Fatalf("trace %d wrong", i)
		}
	}
}

func BenchmarkStep10k(b *testing.B) {
	g := connectedRandom(10_000, 40_000, 1)
	c, err := New(g)
	if err != nil {
		b.Fatal(err)
	}
	p := c.Delta(0)
	q := make([]float64, g.NumNodes())
	scratch := make([]float64, g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(q, p, scratch)
		p, q = q, p
	}
}
