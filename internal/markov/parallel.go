package markov

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mixtime/internal/graph"
)

// TraceSampleParallel is TraceSample fanned out over a worker pool.
// A Chain is immutable, so traces from different sources are
// independent; each worker owns its propagation buffers. workers ≤ 0
// uses GOMAXPROCS. Results are in source order, identical to the
// sequential ones.
func (c *Chain) TraceSampleParallel(sources []graph.NodeID, maxT, workers int) []*Trace {
	traces, _ := c.TraceSampleParallelContext(context.Background(), sources, maxT, workers, nil)
	return traces
}

// TraceSampleParallelContext is TraceSampleParallel with cancellation
// and progress reporting. The pool stops claiming sources once ctx is
// done and the in-flight propagations abort at their next step; the
// error then wraps ctx.Err(). onTrace, if non-nil, is called after
// each completed trace with (completed, total) — calls are serialized
// and monotonic, so observers can report "sources completed" counters
// without their own locking.
func (c *Chain) TraceSampleParallelContext(ctx context.Context, sources []graph.NodeID, maxT, workers int, onTrace func(done, total int)) ([]*Trace, error) {
	total := len(sources)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > total {
		workers = total
	}
	if workers <= 1 {
		traces := make([]*Trace, total)
		for i, s := range sources {
			tr, err := c.TraceFromContext(ctx, s, maxT)
			if err != nil {
				return nil, err
			}
			traces[i] = tr
			if onTrace != nil {
				onTrace(i+1, total)
			}
		}
		return traces, nil
	}
	traces := make([]*Trace, total)
	var (
		next atomic.Int64 // lock-free source claiming
		done int
		mu   sync.Mutex // serializes done/onTrace only
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= total || ctx.Err() != nil {
					return
				}
				tr, err := c.TraceFromContext(ctx, sources[i], maxT)
				if err != nil {
					return // ctx cancelled; surfaced after Wait
				}
				traces[i] = tr
				mu.Lock()
				done++
				if onTrace != nil {
					onTrace(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("markov: trace sampling cancelled after %d of %d sources: %w", done, total, err)
	}
	return traces, nil
}

// TraceAllParallel is TraceAll over the worker pool.
func (c *Chain) TraceAllParallel(maxT, workers int) []*Trace {
	n := c.g.NumNodes()
	sources := make([]graph.NodeID, n)
	for i := range sources {
		sources[i] = graph.NodeID(i)
	}
	return c.TraceSampleParallel(sources, maxT, workers)
}
