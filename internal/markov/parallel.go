package markov

import (
	"runtime"
	"sync"

	"mixtime/internal/graph"
)

// TraceSampleParallel is TraceSample fanned out over a worker pool.
// A Chain is immutable, so traces from different sources are
// independent; each worker owns its propagation buffers. workers ≤ 0
// uses GOMAXPROCS. Results are in source order, identical to the
// sequential ones.
func (c *Chain) TraceSampleParallel(sources []graph.NodeID, maxT, workers int) []*Trace {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sources) {
		workers = len(sources)
	}
	if workers <= 1 {
		return c.TraceSample(sources, maxT)
	}
	traces := make([]*Trace, len(sources))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(sources) {
					return
				}
				traces[i] = c.TraceFrom(sources[i], maxT)
			}
		}()
	}
	wg.Wait()
	return traces
}

// TraceAllParallel is TraceAll over the worker pool.
func (c *Chain) TraceAllParallel(maxT, workers int) []*Trace {
	n := c.g.NumNodes()
	sources := make([]graph.NodeID, n)
	for i := range sources {
		sources[i] = graph.NodeID(i)
	}
	return c.TraceSampleParallel(sources, maxT, workers)
}
