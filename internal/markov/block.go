package markov

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// DefaultBlockSize is the number of source distributions a blocked
// propagation serves per CSR pass when the caller does not choose a
// width. Eight doubles-per-source fills one 64-byte cache line, so
// every adjacency index loaded during the pass is amortized across a
// full line of right-hand sides.
const DefaultBlockSize = 8

// StepBlock advances width distributions by one walk step in a single
// pass over the CSR adjacency — the SpMV→SpMM transformation. dst and
// p are flat row-major n×width buffers: entry (v, j) of distribution
// j lives at p[v*width+j], so the per-neighbor loads the sequential
// Step pays once per source are paid once per block. scratch, if at
// least n*width long, avoids an allocation.
//
// Each column accumulates its row sums in the same neighbor order as
// Step, so column j of dst is byte-identical to running Step on
// column j alone.
func (c *Chain) StepBlock(dst, p []float64, width int, scratch []float64) {
	n := c.g.NumNodes()
	if width == 1 {
		c.Step(dst[:n], p[:n], scratch)
		return
	}
	if c.col != nil {
		c.col.Add(telemetry.SpMMBlocks, 1)
		c.col.Add(telemetry.EdgesScanned, int64(blockPasses(width))*c.adjLen)
	}
	size := n * width
	w := scratch
	if len(w) < size {
		w = make([]float64, size)
	} else {
		w = w[:size]
	}
	if width == 8 && useAVX2 {
		scale8AVX(w, p, c.invDeg, n)
	} else {
		for v := 0; v < n; v++ {
			inv := c.invDeg[v]
			row := p[v*width : (v+1)*width]
			out := w[v*width : (v+1)*width]
			for j, x := range row {
				out[j] = x * inv
			}
		}
	}
	c.stepBlockRows(dst, p, w, width, 0, n)
}

// blockPasses returns how many CSR passes one blocked step of the
// given width costs after register-group decomposition: a group of 8
// columns per pass, then a 4-group, a 2-group and a 1-group for the
// tail. The telemetry EdgesScanned counter multiplies by this so the
// observed edge traffic matches what the kernel really does.
func blockPasses(width int) int {
	passes := width / 8
	for rem := width % 8; rem > 0; rem &= rem - 1 {
		passes++
	}
	return passes
}

// stepBlockRows computes the blocked rows [lo, hi) from the
// pre-scaled w = p/deg. Like stepRows, rows are independent and each
// column's summation order matches the sequential kernel.
//
// Widths decompose into register-accumulator column groups: 8-column
// groups first (one cache line of float64 per source row), then a
// 4-, 2- and 1-column group for the tail, each group scanning the
// CSR once with its partial sums held entirely in registers. A
// memory-resident accumulator row (the pre-PR8 generic kernel) pays
// a per-neighbor inner loop over the row and was ~4× slower per
// source at width 4 than the width-8 register kernel; per-group
// passes trade a little extra index traffic for register residency
// and win at every width ≥ 2. Column j still sums its neighbors in
// CSR order regardless of grouping, so every decomposition is
// byte-identical to running the sequential Step on column j alone.
func (c *Chain) stepBlockRows(dst, p, w []float64, width, lo, hi int) {
	off := c.g.Offsets32()
	if off == nil {
		c.stepBlockRowsWide(dst, p, w, width, lo, hi)
		return
	}
	adj := c.g.Adjacency()
	switch width {
	case 8: // the DefaultBlockSize fast path, constant stride
		if useAVX2 {
			stepRows8AVX(dst, p, w, off, adj, 64, lo, hi, c.lazy)
			return
		}
		c.stepBlockRows8(dst, p, w, lo, hi, off, adj)
		return
	case 4:
		if useAVX2 {
			stepRows4AVX(dst, p, w, off, adj, 32, lo, hi, c.lazy)
			return
		}
		c.stepBlockRows4(dst, p, w, lo, hi, off, adj)
		return
	}
	base := 0
	for rem := width; rem > 0; {
		switch {
		case rem >= 8:
			if useAVX2 {
				stepRows8AVX(dst[base:], p[base:], w[base:], off, adj, width*8, lo, hi, c.lazy)
			} else {
				c.stepBlockRows8s(dst, p, w, width, base, lo, hi, off, adj)
			}
			base, rem = base+8, rem-8
		case rem >= 4:
			if useAVX2 {
				stepRows4AVX(dst[base:], p[base:], w[base:], off, adj, width*8, lo, hi, c.lazy)
			} else {
				c.stepBlockRows4s(dst, p, w, width, base, lo, hi, off, adj)
			}
			base, rem = base+4, rem-4
		case rem >= 2:
			c.stepBlockRows2s(dst, p, w, width, base, lo, hi, off, adj)
			base, rem = base+2, rem-2
		default:
			c.stepBlockRows1s(dst, p, w, width, base, lo, hi, off, adj)
			base, rem = base+1, rem-1
		}
	}
}

// stepBlockRowsWide is the memory-accumulator fallback for graphs on
// the int64 offset form (≥ 4B adjacency entries) — correctness only;
// blocked propagation at that scale runs through the sharded kernels.
func (c *Chain) stepBlockRowsWide(dst, p, w []float64, width, lo, hi int) {
	for v := lo; v < hi; v++ {
		out := dst[v*width : (v+1)*width]
		for j := range out {
			out[j] = 0
		}
		for _, u := range c.g.Neighbors(graph.NodeID(v)) {
			col := w[int(u)*width : int(u)*width+width]
			for j, x := range col {
				out[j] += x
			}
		}
		if c.lazy {
			row := p[v*width : (v+1)*width]
			for j := range out {
				out[j] = 0.5*row[j] + 0.5*out[j]
			}
		}
	}
}

// stepBlockRows8 is the width-8 register kernel (one cache line of
// float64): the eight column accumulators live in registers instead
// of a memory-resident out row, and the slice-to-array conversions
// pay one bounds check per neighbor instead of eight.
func (c *Chain) stepBlockRows8(dst, p, w []float64, lo, hi int, off []uint32, adj []graph.NodeID) {
	for v := lo; v < hi; v++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
			col := (*[8]float64)(w[int(adj[i])*8:])
			s0 += col[0]
			s1 += col[1]
			s2 += col[2]
			s3 += col[3]
			s4 += col[4]
			s5 += col[5]
			s6 += col[6]
			s7 += col[7]
		}
		out := (*[8]float64)(dst[v*8:])
		if c.lazy {
			row := (*[8]float64)(p[v*8:])
			out[0] = 0.5*row[0] + 0.5*s0
			out[1] = 0.5*row[1] + 0.5*s1
			out[2] = 0.5*row[2] + 0.5*s2
			out[3] = 0.5*row[3] + 0.5*s3
			out[4] = 0.5*row[4] + 0.5*s4
			out[5] = 0.5*row[5] + 0.5*s5
			out[6] = 0.5*row[6] + 0.5*s6
			out[7] = 0.5*row[7] + 0.5*s7
		} else {
			out[0], out[1], out[2], out[3] = s0, s1, s2, s3
			out[4], out[5], out[6], out[7] = s4, s5, s6, s7
		}
	}
}

// stepBlockRows4 is the width-4 register kernel (half a cache line):
// four register accumulators, constant stride.
func (c *Chain) stepBlockRows4(dst, p, w []float64, lo, hi int, off []uint32, adj []graph.NodeID) {
	for v := lo; v < hi; v++ {
		var s0, s1, s2, s3 float64
		for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
			col := (*[4]float64)(w[int(adj[i])*4:])
			s0 += col[0]
			s1 += col[1]
			s2 += col[2]
			s3 += col[3]
		}
		out := (*[4]float64)(dst[v*4:])
		if c.lazy {
			row := (*[4]float64)(p[v*4:])
			out[0] = 0.5*row[0] + 0.5*s0
			out[1] = 0.5*row[1] + 0.5*s1
			out[2] = 0.5*row[2] + 0.5*s2
			out[3] = 0.5*row[3] + 0.5*s3
		} else {
			out[0], out[1], out[2], out[3] = s0, s1, s2, s3
		}
	}
}

// stepBlockRows8s advances columns [base, base+8) of a width-stride
// block — the strided twin of stepBlockRows8 composite widths chain.
func (c *Chain) stepBlockRows8s(dst, p, w []float64, stride, base, lo, hi int, off []uint32, adj []graph.NodeID) {
	for v := lo; v < hi; v++ {
		var s0, s1, s2, s3, s4, s5, s6, s7 float64
		for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
			col := (*[8]float64)(w[int(adj[i])*stride+base:])
			s0 += col[0]
			s1 += col[1]
			s2 += col[2]
			s3 += col[3]
			s4 += col[4]
			s5 += col[5]
			s6 += col[6]
			s7 += col[7]
		}
		out := (*[8]float64)(dst[v*stride+base:])
		if c.lazy {
			row := (*[8]float64)(p[v*stride+base:])
			out[0] = 0.5*row[0] + 0.5*s0
			out[1] = 0.5*row[1] + 0.5*s1
			out[2] = 0.5*row[2] + 0.5*s2
			out[3] = 0.5*row[3] + 0.5*s3
			out[4] = 0.5*row[4] + 0.5*s4
			out[5] = 0.5*row[5] + 0.5*s5
			out[6] = 0.5*row[6] + 0.5*s6
			out[7] = 0.5*row[7] + 0.5*s7
		} else {
			out[0], out[1], out[2], out[3] = s0, s1, s2, s3
			out[4], out[5], out[6], out[7] = s4, s5, s6, s7
		}
	}
}

// stepBlockRows4s advances columns [base, base+4) of a width-stride
// block.
func (c *Chain) stepBlockRows4s(dst, p, w []float64, stride, base, lo, hi int, off []uint32, adj []graph.NodeID) {
	for v := lo; v < hi; v++ {
		var s0, s1, s2, s3 float64
		for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
			col := (*[4]float64)(w[int(adj[i])*stride+base:])
			s0 += col[0]
			s1 += col[1]
			s2 += col[2]
			s3 += col[3]
		}
		out := (*[4]float64)(dst[v*stride+base:])
		if c.lazy {
			row := (*[4]float64)(p[v*stride+base:])
			out[0] = 0.5*row[0] + 0.5*s0
			out[1] = 0.5*row[1] + 0.5*s1
			out[2] = 0.5*row[2] + 0.5*s2
			out[3] = 0.5*row[3] + 0.5*s3
		} else {
			out[0], out[1], out[2], out[3] = s0, s1, s2, s3
		}
	}
}

// stepBlockRows2s advances columns [base, base+2) of a width-stride
// block.
func (c *Chain) stepBlockRows2s(dst, p, w []float64, stride, base, lo, hi int, off []uint32, adj []graph.NodeID) {
	for v := lo; v < hi; v++ {
		var s0, s1 float64
		for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
			col := (*[2]float64)(w[int(adj[i])*stride+base:])
			s0 += col[0]
			s1 += col[1]
		}
		out := (*[2]float64)(dst[v*stride+base:])
		if c.lazy {
			row := (*[2]float64)(p[v*stride+base:])
			out[0] = 0.5*row[0] + 0.5*s0
			out[1] = 0.5*row[1] + 0.5*s1
		} else {
			out[0], out[1] = s0, s1
		}
	}
}

// stepBlockRows1s advances the single column base of a width-stride
// block — the last resort of the tail decomposition.
func (c *Chain) stepBlockRows1s(dst, p, w []float64, stride, base, lo, hi int, off []uint32, adj []graph.NodeID) {
	for v := lo; v < hi; v++ {
		var s float64
		for i, end := int(off[v]), int(off[v+1]); i < end; i++ {
			s += w[int(adj[i])*stride+base]
		}
		if c.lazy {
			dst[v*stride+base] = 0.5*p[v*stride+base] + 0.5*s
		} else {
			dst[v*stride+base] = s
		}
	}
}

// blockTV writes, for each of the width columns of p, the total
// variation distance to π into tv[:width]. One row-major pass serves
// every column; per-column accumulation order matches TVDistance.
func (c *Chain) blockTV(p []float64, width int, tv []float64) {
	tv = tv[:width]
	if width == 8 && useAVX2 {
		blockTV8AVX(p, c.pi, len(c.pi), (*[8]float64)(tv))
		for j := range tv {
			tv[j] /= 2
		}
		return
	}
	if width == 1 { // flat accumulation, no per-row slices
		var s float64
		for v, pv := range c.pi {
			d := p[v] - pv
			if d < 0 {
				d = -d
			}
			s += d
		}
		tv[0] = s / 2
		return
	}
	for j := range tv {
		tv[j] = 0
	}
	for v, pv := range c.pi {
		row := p[v*width : (v+1)*width]
		for j, x := range row {
			d := x - pv
			if d < 0 {
				d = -d
			}
			tv[j] += d
		}
	}
	for j := range tv {
		tv[j] /= 2
	}
}

// blockBuffers is one worker's reusable propagation state: two
// n×width distribution buffers, the scaling scratch, and the
// per-column TV accumulator.
type blockBuffers struct {
	p, q, w, tv []float64
}

func newBlockBuffers(n, width int) *blockBuffers {
	return &blockBuffers{
		p:  make([]float64, n*width),
		q:  make([]float64, n*width),
		w:  make([]float64, n*width),
		tv: make([]float64, width),
	}
}

// traceBlock propagates the given sources together as one block of
// width len(sources), recording each column's TV curve after every
// step. buf must have capacity for at least that width.
func (c *Chain) traceBlock(ctx context.Context, sources []graph.NodeID, maxT int, buf *blockBuffers) ([]*Trace, error) {
	n := c.g.NumNodes()
	width := len(sources)
	p := buf.p[:n*width]
	q := buf.q[:n*width]
	for i := range p {
		p[i] = 0
	}
	traces := make([]*Trace, width)
	for j, s := range sources {
		p[int(s)*width+j] = 1
		traces[j] = &Trace{Source: s, TV: make([]float64, maxT)}
	}
	for t := 0; t < maxT; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("markov: blocked trace (%d sources) cancelled at step %d: %w", width, t, err)
		}
		c.StepBlock(q, p, width, buf.w)
		p, q = q, p
		c.blockTV(p, width, buf.tv)
		for j := range traces {
			traces[j].TV[t] = buf.tv[j]
		}
	}
	if c.col != nil {
		c.col.Add(telemetry.SourceSteps, int64(maxT)*int64(width))
		c.col.Add(telemetry.TracesCompleted, int64(width))
	}
	return traces, nil
}

// TraceBlock runs TraceFrom for all the given sources in one blocked
// pass: every step scans the adjacency once and advances all
// len(sources) distributions. The traces are byte-identical to
// per-source TraceFrom runs.
func (c *Chain) TraceBlock(sources []graph.NodeID, maxT int) []*Trace {
	traces, _ := c.traceBlock(context.Background(), sources, maxT,
		newBlockBuffers(c.g.NumNodes(), len(sources)))
	return traces
}

// TraceSampleBlocked is TraceSample computed blockSize sources at a
// time (DefaultBlockSize when blockSize <= 0); results are in source
// order and byte-identical to the sequential ones.
func (c *Chain) TraceSampleBlocked(sources []graph.NodeID, maxT, blockSize int) []*Trace {
	traces, _ := c.TraceSampleBlockedContext(context.Background(), sources, maxT, blockSize, 1, nil)
	return traces
}

// TraceSampleBlockedContext is the blocked, cancellable, observable
// trace sampler the experiment drivers run on: sources are cut into
// blocks of blockSize (DefaultBlockSize when <= 0), each block
// propagates through StepBlock, and workers goroutines claim blocks
// from an atomic counter (workers <= 0 uses GOMAXPROCS). Every trace
// is byte-identical to a sequential TraceFrom, for any blockSize and
// any workers.
//
// The pool stops claiming blocks once ctx is done and in-flight
// blocks abort at their next step; the error then wraps ctx.Err().
// onTrace, if non-nil, is called after each completed block with the
// cumulative (done, total) source counts — calls are serialized and
// monotonic, matching the TraceSampleParallelContext contract.
func (c *Chain) TraceSampleBlockedContext(ctx context.Context, sources []graph.NodeID, maxT, blockSize, workers int, onTrace func(done, total int)) ([]*Trace, error) {
	total := len(sources)
	if total == 0 {
		return []*Trace{}, nil
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if blockSize > total {
		blockSize = total
	}
	blocks := (total + blockSize - 1) / blockSize
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > blocks {
		workers = blocks
	}
	n := c.g.NumNodes()
	traces := make([]*Trace, total)

	if workers <= 1 {
		buf := newBlockBuffers(n, blockSize)
		for b := 0; b < blocks; b++ {
			lo := b * blockSize
			hi := lo + blockSize
			if hi > total {
				hi = total
			}
			trs, err := c.traceBlock(ctx, sources[lo:hi], maxT, buf)
			if err != nil {
				return nil, fmt.Errorf("markov: blocked trace sampling cancelled after %d of %d sources: %w", lo, total, err)
			}
			copy(traces[lo:hi], trs)
			if onTrace != nil {
				onTrace(hi, total)
			}
		}
		return traces, nil
	}

	var (
		next atomic.Int64
		mu   sync.Mutex
		done int
		wg   sync.WaitGroup
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			buf := newBlockBuffers(n, blockSize)
			for {
				b := int(next.Add(1) - 1)
				if b >= blocks || ctx.Err() != nil {
					return
				}
				lo := b * blockSize
				hi := lo + blockSize
				if hi > total {
					hi = total
				}
				trs, err := c.traceBlock(ctx, sources[lo:hi], maxT, buf)
				if err != nil {
					return // ctx cancelled; surfaced after Wait
				}
				copy(traces[lo:hi], trs)
				mu.Lock()
				done += hi - lo
				if onTrace != nil {
					onTrace(done, total)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("markov: blocked trace sampling cancelled after %d of %d sources: %w", done, total, err)
	}
	return traces, nil
}
