// AVX2 kernels for the blocked propagation hot path.
//
// The byte-identity argument (see block.go): lane j of a YMM register
// is column j of the block, rows are visited in ascending order and
// each column's neighbor sums accumulate in CSR order, so these
// kernels produce exactly the bits the pure-Go register kernels (and
// the sequential Step, column by column) produce. The only float ops
// are adds and multiplies by broadcast scalars, both commutative, so
// operand order differences between Go and VEX encodings cannot
// change results.

#include "textflag.h"

DATA half<>+0(SB)/8, $0x3FE0000000000000 // 0.5
GLOBL half<>(SB), RODATA, $8

DATA absmask<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
GLOBL absmask<>(SB), RODATA, $8

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func stepRows8AVX(dst, p, w []float64, off []uint32, adj []graph.NodeID, strideBytes, lo, hi int, lazy bool)
//
// Register plan: DI/R15 walk the dst/p rows, SI holds the w base
// (neighbor gathers are scattered, so no walking pointer), R8/R9 the
// offset/adjacency bases, R13 the row stride in bytes, R10 the row
// counter against R11, R12 the lazy flag. Y0/Y1 are the 8 column
// accumulators, Y15 the broadcast 0.5.
TEXT ·stepRows8AVX(SB), NOSPLIT, $0-145
	MOVQ dst_base+0(FP), DI
	MOVQ p_base+24(FP), R15
	MOVQ w_base+48(FP), SI
	MOVQ off_base+72(FP), R8
	MOVQ adj_base+96(FP), R9
	MOVQ strideBytes+120(FP), R13
	MOVQ lo+128(FP), R10
	MOVQ hi+136(FP), R11
	MOVBLZX lazy+144(FP), R12
	MOVQ R10, DX
	IMULQ R13, DX
	ADDQ DX, DI
	ADDQ DX, R15
	VBROADCASTSD half<>(SB), Y15

row8:
	CMPQ R10, R11
	JGE  done8
	MOVL (R8)(R10*4), AX  // i = off[v]
	MOVL 4(R8)(R10*4), BX // end = off[v+1]
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	CMPQ AX, BX
	JGE  epi8

edge8:
	MOVL (R9)(AX*4), DX // u = adj[i]
	IMULQ R13, DX       // byte offset of w row u
	VADDPD (SI)(DX*1), Y0, Y0
	VADDPD 32(SI)(DX*1), Y1, Y1
	INCQ AX
	CMPQ AX, BX
	JL   edge8

epi8:
	TESTB R12, R12
	JZ   store8
	VMOVUPD (R15), Y2 // lazy: out = 0.5*p_row + 0.5*s
	VMOVUPD 32(R15), Y3
	VMULPD Y15, Y0, Y0
	VMULPD Y15, Y1, Y1
	VMULPD Y15, Y2, Y2
	VMULPD Y15, Y3, Y3
	VADDPD Y2, Y0, Y0
	VADDPD Y3, Y1, Y1

store8:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ R13, DI
	ADDQ R13, R15
	INCQ R10
	JMP  row8

done8:
	VZEROUPPER
	RET

// func stepRows4AVX(dst, p, w []float64, off []uint32, adj []graph.NodeID, strideBytes, lo, hi int, lazy bool)
//
// The 4-column twin: one YMM accumulator, 32-byte rows.
TEXT ·stepRows4AVX(SB), NOSPLIT, $0-145
	MOVQ dst_base+0(FP), DI
	MOVQ p_base+24(FP), R15
	MOVQ w_base+48(FP), SI
	MOVQ off_base+72(FP), R8
	MOVQ adj_base+96(FP), R9
	MOVQ strideBytes+120(FP), R13
	MOVQ lo+128(FP), R10
	MOVQ hi+136(FP), R11
	MOVBLZX lazy+144(FP), R12
	MOVQ R10, DX
	IMULQ R13, DX
	ADDQ DX, DI
	ADDQ DX, R15
	VBROADCASTSD half<>(SB), Y15

row4:
	CMPQ R10, R11
	JGE  done4
	MOVL (R8)(R10*4), AX
	MOVL 4(R8)(R10*4), BX
	VXORPD Y0, Y0, Y0
	CMPQ AX, BX
	JGE  epi4

edge4:
	MOVL (R9)(AX*4), DX
	IMULQ R13, DX
	VADDPD (SI)(DX*1), Y0, Y0
	INCQ AX
	CMPQ AX, BX
	JL   edge4

epi4:
	TESTB R12, R12
	JZ   store4
	VMOVUPD (R15), Y2
	VMULPD Y15, Y0, Y0
	VMULPD Y15, Y2, Y2
	VADDPD Y2, Y0, Y0

store4:
	VMOVUPD Y0, (DI)
	ADDQ R13, DI
	ADDQ R13, R15
	INCQ R10
	JMP  row4

done4:
	VZEROUPPER
	RET

// func blockTV8AVX(p, pi []float64, n int, tv *[8]float64)
TEXT ·blockTV8AVX(SB), NOSPLIT, $0-64
	MOVQ p_base+0(FP), SI
	MOVQ pi_base+24(FP), R8
	MOVQ n+48(FP), CX
	MOVQ tv+56(FP), DI
	VBROADCASTSD absmask<>(SB), Y14
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1

tvloop:
	TESTQ CX, CX
	JZ   tvdone
	VBROADCASTSD (R8), Y2 // π_v
	VMOVUPD (SI), Y3
	VMOVUPD 32(SI), Y4
	VSUBPD Y2, Y3, Y3     // p_row − π_v
	VSUBPD Y2, Y4, Y4
	VANDPD Y14, Y3, Y3    // |·|
	VANDPD Y14, Y4, Y4
	VADDPD Y3, Y0, Y0
	VADDPD Y4, Y1, Y1
	ADDQ $8, R8
	ADDQ $64, SI
	DECQ CX
	JMP  tvloop

tvdone:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET

// func scale8AVX(w, p, inv []float64, n int)
TEXT ·scale8AVX(SB), NOSPLIT, $0-80
	MOVQ w_base+0(FP), DI
	MOVQ p_base+24(FP), SI
	MOVQ inv_base+48(FP), R8
	MOVQ n+72(FP), CX

scloop:
	TESTQ CX, CX
	JZ   scdone
	VBROADCASTSD (R8), Y2 // 1/deg(v)
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y1
	VMULPD Y2, Y0, Y0
	VMULPD Y2, Y1, Y1
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	ADDQ $8, R8
	ADDQ $64, SI
	ADDQ $64, DI
	DECQ CX
	JMP  scloop

scdone:
	VZEROUPPER
	RET
