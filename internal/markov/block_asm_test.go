package markov

import (
	"math/rand/v2"
	"testing"

	"mixtime/internal/gen"
)

// TestAVXKernelsBitIdentical runs StepBlock and blockTV with the AVX2
// kernels enabled and disabled and demands bit-for-bit identical
// outputs at every width the dispatcher special-cases (constant
// strides 8 and 4, composite 16, and the tail decompositions), lazy
// and plain. Skipped where the CPU lacks AVX2 — there the pure-Go
// kernels are the only implementation.
func TestAVXKernelsBitIdentical(t *testing.T) {
	if !useAVX2 {
		t.Skip("AVX2 unavailable; pure-Go kernels are the only path")
	}
	g := gen.WattsStrogatz(257, 6, 0.3, rand.New(rand.NewPCG(7, 7)))
	rng := rand.New(rand.NewPCG(11, 13))
	n := g.NumNodes()
	for _, lazy := range []bool{false, true} {
		var opts []Option
		if lazy {
			opts = append(opts, Lazy())
		}
		c, err := New(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for _, width := range []int{4, 5, 7, 8, 12, 16} {
			p := make([]float64, n*width)
			for i := range p {
				p[i] = rng.Float64()
			}
			qAsm := make([]float64, n*width)
			qGo := make([]float64, n*width)
			scratch := make([]float64, n*width)
			tvAsm := make([]float64, width)
			tvGo := make([]float64, width)

			useAVX2 = true
			c.StepBlock(qAsm, p, width, scratch)
			c.blockTV(qAsm, width, tvAsm)
			useAVX2 = false
			c.StepBlock(qGo, p, width, scratch)
			c.blockTV(qGo, width, tvGo)
			useAVX2 = true

			for i := range qAsm {
				if qAsm[i] != qGo[i] {
					t.Fatalf("lazy=%v width=%d: StepBlock diverges at %d: asm %x go %x",
						lazy, width, i, qAsm[i], qGo[i])
				}
			}
			for j := range tvAsm {
				if tvAsm[j] != tvGo[j] {
					t.Fatalf("lazy=%v width=%d: blockTV diverges at col %d: asm %x go %x",
						lazy, width, j, tvAsm[j], tvGo[j])
				}
			}
		}
	}
}

// TestAVXStepBlockMatchesSequential pins the deeper contract: with the
// asm kernels live, every column of a blocked step equals the bits a
// sequential Step produces for that column alone.
func TestAVXStepBlockMatchesSequential(t *testing.T) {
	if !useAVX2 {
		t.Skip("AVX2 unavailable")
	}
	g := gen.WattsStrogatz(123, 4, 0.2, rand.New(rand.NewPCG(3, 3)))
	n := g.NumNodes()
	rng := rand.New(rand.NewPCG(5, 17))
	for _, lazy := range []bool{false, true} {
		var opts []Option
		if lazy {
			opts = append(opts, Lazy())
		}
		c, err := New(g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		const width = 8
		p := make([]float64, n*width)
		for i := range p {
			p[i] = rng.Float64()
		}
		q := make([]float64, n*width)
		c.StepBlock(q, p, width, nil)
		col := make([]float64, n)
		out := make([]float64, n)
		for j := 0; j < width; j++ {
			for v := 0; v < n; v++ {
				col[v] = p[v*width+j]
			}
			c.Step(out, col, nil)
			for v := 0; v < n; v++ {
				if out[v] != q[v*width+j] {
					t.Fatalf("lazy=%v col %d row %d: blocked %x sequential %x",
						lazy, j, v, q[v*width+j], out[v])
				}
			}
		}
	}
}
