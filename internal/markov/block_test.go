package markov

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"mixtime/internal/gen"
	"mixtime/internal/graph"
)

// blockFixtures are the graphs the blocked kernels must match the
// sequential ones on bit-for-bit: an Erdős–Rényi graph (uniform
// degrees) and a relaxed caveman graph (community structure with the
// skewed degree mix the shard plan exists for).
func blockFixtures(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	erg, _ := graph.LargestComponent(gen.ErdosRenyi(300, 0.03, rand.New(rand.NewPCG(5, 6))))
	cave, _ := graph.LargestComponent(gen.RelaxedCaveman(12, 10, 0.1, rand.New(rand.NewPCG(7, 8))))
	return map[string]*graph.Graph{"erdos-renyi": erg, "caveman": cave}
}

// mustEqualTraces fails unless the two trace sets are byte-identical.
func mustEqualTraces(t *testing.T, label string, got, want []*Trace) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d traces, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].Source != want[i].Source {
			t.Fatalf("%s: trace %d source %d, want %d", label, i, got[i].Source, want[i].Source)
		}
		if len(got[i].TV) != len(want[i].TV) {
			t.Fatalf("%s: trace %d has %d steps, want %d", label, i, len(got[i].TV), len(want[i].TV))
		}
		for s := range want[i].TV {
			if got[i].TV[s] != want[i].TV[s] {
				t.Fatalf("%s: trace %d step %d: %v, want %v (not byte-identical)",
					label, i, s, got[i].TV[s], want[i].TV[s])
			}
		}
	}
}

func TestStepBlockMatchesStep(t *testing.T) {
	for name, g := range blockFixtures(t) {
		for _, lazyOpt := range [][]Option{nil, {Lazy()}} {
			c := mustChain(t, g, lazyOpt...)
			n := g.NumNodes()
			for _, width := range []int{1, 2, 3, 8} {
				// Block columns are independent point masses spread a few
				// steps so the inputs are dense.
				cols := make([][]float64, width)
				for j := range cols {
					cols[j] = c.Propagate(c.Delta(graph.NodeID((j*13)%n)), j%3)
				}
				p := make([]float64, n*width)
				for j, col := range cols {
					for v, x := range col {
						p[v*width+j] = x
					}
				}
				dst := make([]float64, n*width)
				c.StepBlock(dst, p, width, nil)
				for j, col := range cols {
					want := make([]float64, n)
					c.Step(want, col, nil)
					for v := 0; v < n; v++ {
						if dst[v*width+j] != want[v] {
							t.Fatalf("%s lazy=%v width=%d: col %d row %d: %v, want %v",
								name, c.IsLazy(), width, j, v, dst[v*width+j], want[v])
						}
					}
				}
			}
		}
	}
}

func TestTraceBlockMatchesTraceFrom(t *testing.T) {
	for name, g := range blockFixtures(t) {
		c := mustChain(t, g, Lazy())
		sources := []graph.NodeID{0, 3, graph.NodeID(g.NumNodes() - 1)}
		got := c.TraceBlock(sources, 20)
		want := make([]*Trace, len(sources))
		for i, s := range sources {
			want[i] = c.TraceFrom(s, 20)
		}
		mustEqualTraces(t, name, got, want)
	}
}

func TestTraceSampleBlockedMatchesSequential(t *testing.T) {
	for name, g := range blockFixtures(t) {
		c := mustChain(t, g)
		// Seven sources: odd tails for every block size below, and the
		// degenerate blockSize=1 path.
		n := g.NumNodes()
		sources := []graph.NodeID{0, 2, 5, graph.NodeID(n / 3), graph.NodeID(n / 2),
			graph.NodeID(n - 2), graph.NodeID(n - 1)}
		want := c.TraceSample(sources, 25)
		for _, blockSize := range []int{0, 1, 2, 3, 8, 16} {
			for _, workers := range []int{0, 1, 2, 4} {
				got, err := c.TraceSampleBlockedContext(context.Background(),
					sources, 25, blockSize, workers, nil)
				if err != nil {
					t.Fatalf("%s B=%d workers=%d: %v", name, blockSize, workers, err)
				}
				mustEqualTraces(t, name, got, want)
			}
		}
	}
}

func TestTraceSampleBlockedProgress(t *testing.T) {
	g := complete(20)
	c := mustChain(t, g)
	sources := []graph.NodeID{0, 1, 2, 3, 4, 5, 6} // blocks of 3: 3+3+1
	var dones []int
	_, err := c.TraceSampleBlockedContext(context.Background(), sources, 5, 3, 1,
		func(done, total int) {
			if total != len(sources) {
				t.Fatalf("total = %d", total)
			}
			dones = append(dones, done)
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != 3 || dones[0] != 3 || dones[1] != 6 || dones[2] != 7 {
		t.Fatalf("progress = %v, want [3 6 7]", dones)
	}
}

func TestTraceSampleBlockedCancellation(t *testing.T) {
	g := complete(30)
	c := mustChain(t, g)
	sources := make([]graph.NodeID, 12)
	for i := range sources {
		sources[i] = graph.NodeID(i)
	}

	// Already-cancelled context: no block survives its first step.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.TraceSampleBlockedContext(ctx, sources, 50, 4, 1, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled err = %v", err)
	}
	if _, err := c.TraceSampleBlockedContext(ctx, sources, 50, 4, 3, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled parallel err = %v", err)
	}

	// Cancel mid-run, from the progress callback after the first block:
	// later blocks must abort and the error must wrap ctx.Err().
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	_, err := c.TraceSampleBlockedContext(ctx2, sources, 50, 4, 1,
		func(done, total int) { cancel2() })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run err = %v", err)
	}
}

func TestTraceSampleBlockedEmptySources(t *testing.T) {
	c := mustChain(t, complete(5))
	got, err := c.TraceSampleBlockedContext(context.Background(), nil, 10, 8, 2, nil)
	if err != nil || got == nil || len(got) != 0 {
		t.Fatalf("empty sources = %v, %v", got, err)
	}
}

func TestStepParallelMatchesStep(t *testing.T) {
	for name, g := range blockFixtures(t) {
		for _, lazyOpt := range [][]Option{nil, {Lazy()}} {
			c := mustChain(t, g, lazyOpt...)
			n := g.NumNodes()
			p := c.Propagate(c.Delta(0), 2)
			want := make([]float64, n)
			c.Step(want, p, nil)
			for _, workers := range []int{0, 1, 2, 4} {
				got := make([]float64, n)
				c.StepParallel(got, p, nil, workers)
				for v := range want {
					if got[v] != want[v] {
						t.Fatalf("%s lazy=%v workers=%d: row %d: %v, want %v (not byte-identical)",
							name, c.IsLazy(), workers, v, got[v], want[v])
					}
				}
			}
		}
	}
}

// Step must accept an oversized scratch by reslicing (no allocation)
// and fall back to allocating when scratch is too short — both paths
// must produce the same result.
func TestStepScratchSizes(t *testing.T) {
	g := connectedRandom(50, 80, 3)
	c := mustChain(t, g)
	n := g.NumNodes()
	p := c.Propagate(c.Delta(0), 3)
	want := make([]float64, n)
	c.Step(want, p, make([]float64, n))
	for _, size := range []int{0, n - 1, n + 17} {
		got := make([]float64, n)
		c.Step(got, p, make([]float64, size))
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("scratch len %d: row %d differs", size, v)
			}
		}
	}
	// Oversized blocked scratch reslices too.
	width := 4
	pb := make([]float64, n*width)
	for j := 0; j < width; j++ {
		for v, x := range p {
			pb[v*width+j] = x
		}
	}
	dst := make([]float64, n*width)
	c.StepBlock(dst, pb, width, make([]float64, n*width+9))
	for j := 0; j < width; j++ {
		for v := 0; v < n; v++ {
			if dst[v*width+j] != want[v] {
				t.Fatalf("blocked oversized scratch: col %d row %d differs", j, v)
			}
		}
	}
}
