package markov

import (
	"context"
	"fmt"
	"math"

	"mixtime/internal/graph"
	"mixtime/internal/telemetry"
)

// Trace records, for one source vertex, the total-variation distance
// to the stationary distribution after every walk length 1..len(TV).
// TV[t-1] is the distance after t steps. One propagation pass serves
// every ε and every probe walk length, which is how a single
// brute-force sweep feeds Figures 1–7 of the paper.
type Trace struct {
	Source graph.NodeID
	TV     []float64
}

// DistanceAt returns ‖π⁽ˢ⁾Pᵗ − π‖_tv for 1 <= t <= len(TV); t beyond
// the trace returns the last recorded value, t <= 0 returns 1 (the
// distance of a point mass in the worst case is ~1).
func (tr *Trace) DistanceAt(t int) float64 {
	if len(tr.TV) == 0 || t <= 0 {
		return 1
	}
	if t > len(tr.TV) {
		t = len(tr.TV)
	}
	return tr.TV[t-1]
}

// MixingTime returns the smallest walk length t with TV[t] < eps, or
// (0, false) if the trace never gets that close.
func (tr *Trace) MixingTime(eps float64) (int, bool) {
	for t, d := range tr.TV {
		if d < eps {
			return t + 1, true
		}
	}
	return 0, false
}

// TraceFrom propagates the point distribution at src for maxT steps
// and records the TV distance after every step.
func (c *Chain) TraceFrom(src graph.NodeID, maxT int) *Trace {
	tr, _ := c.TraceFromContext(context.Background(), src, maxT)
	return tr
}

// TraceFromContext is TraceFrom with cancellation: the propagation
// loop checks ctx every step (each step is O(m), so the check is
// free) and returns the wrapped ctx.Err() when cancelled.
func (c *Chain) TraceFromContext(ctx context.Context, src graph.NodeID, maxT int) (*Trace, error) {
	n := c.g.NumNodes()
	p := c.Delta(src)
	q := make([]float64, n)
	scratch := make([]float64, n)
	tv := make([]float64, maxT)
	for t := 0; t < maxT; t++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("markov: trace from %d cancelled at step %d: %w", src, t, err)
		}
		c.Step(q, p, scratch)
		p, q = q, p
		tv[t] = TVDistance(p, c.pi)
	}
	if c.col != nil {
		c.col.Add(telemetry.SourceSteps, int64(maxT))
		c.col.Add(telemetry.TracesCompleted, 1)
	}
	return &Trace{Source: src, TV: tv}, nil
}

// TraceUntil propagates from src until the TV distance drops below
// eps or maxT steps elapse, returning the (possibly shorter) trace and
// whether eps was reached.
func (c *Chain) TraceUntil(src graph.NodeID, eps float64, maxT int) (*Trace, bool) {
	n := c.g.NumNodes()
	p := c.Delta(src)
	q := make([]float64, n)
	scratch := make([]float64, n)
	tv := make([]float64, 0, 64)
	for t := 0; t < maxT; t++ {
		c.Step(q, p, scratch)
		p, q = q, p
		d := TVDistance(p, c.pi)
		tv = append(tv, d)
		if d < eps {
			c.traceDone(len(tv))
			return &Trace{Source: src, TV: tv}, true
		}
	}
	c.traceDone(len(tv))
	return &Trace{Source: src, TV: tv}, false
}

// traceDone records one finished trace of the given length.
func (c *Chain) traceDone(steps int) {
	if c.col != nil {
		c.col.Add(telemetry.SourceSteps, int64(steps))
		c.col.Add(telemetry.TracesCompleted, 1)
	}
}

// TraceAll runs TraceFrom for every vertex — the brute-force
// measurement the paper applies to the physics co-authorship graphs
// (Figures 3–5). Cost is O(n·maxT·m); use only on small graphs.
func (c *Chain) TraceAll(maxT int) []*Trace {
	n := c.g.NumNodes()
	traces := make([]*Trace, n)
	for v := 0; v < n; v++ {
		traces[v] = c.TraceFrom(graph.NodeID(v), maxT)
	}
	return traces
}

// TraceSample runs TraceFrom for each of the given sources (the
// paper's 1000-source sampling for large graphs).
func (c *Chain) TraceSample(sources []graph.NodeID, maxT int) []*Trace {
	traces := make([]*Trace, len(sources))
	for i, s := range sources {
		traces[i] = c.TraceFrom(s, maxT)
	}
	return traces
}

// MixingTime implements Definition 1 exactly over the given traces:
// the maximum over sources of the minimal walk length reaching TV
// distance < eps. ok is false if any source fails to reach eps within
// its trace, in which case t is a lower bound (the trace length).
func MixingTime(traces []*Trace, eps float64) (t int, ok bool) {
	ok = true
	for _, tr := range traces {
		ti, reached := tr.MixingTime(eps)
		if !reached {
			ok = false
			ti = len(tr.TV)
		}
		if ti > t {
			t = ti
		}
	}
	return t, ok
}

// AverageMixingTime returns the mean over sources of the minimal walk
// length reaching eps; sources that never reach eps count as the trace
// length (so the value is a lower bound on the true average). The
// paper's §5 argues Sybil-defense analyses should use this average
// case rather than the worst case.
func AverageMixingTime(traces []*Trace, eps float64) float64 {
	if len(traces) == 0 {
		return 0
	}
	var sum float64
	for _, tr := range traces {
		ti, reached := tr.MixingTime(eps)
		if !reached {
			ti = len(tr.TV)
		}
		sum += float64(ti)
	}
	return sum / float64(len(traces))
}

// DistancesAt returns, for each trace, the TV distance after walk
// length w — the per-source samples behind the CDFs of Figures 3–4.
func DistancesAt(traces []*Trace, w int) []float64 {
	out := make([]float64, len(traces))
	for i, tr := range traces {
		out[i] = tr.DistanceAt(w)
	}
	return out
}

// MaxTrace returns the pointwise maximum of the traces' TV curves —
// the worst-case distance profile max_i ‖π⁽ⁱ⁾Pᵗ − π‖_tv whose first
// crossing of ε is T(ε).
func MaxTrace(traces []*Trace) []float64 {
	if len(traces) == 0 {
		return nil
	}
	maxLen := 0
	for _, tr := range traces {
		if len(tr.TV) > maxLen {
			maxLen = len(tr.TV)
		}
	}
	out := make([]float64, maxLen)
	for _, tr := range traces {
		for t := 0; t < maxLen; t++ {
			if d := tr.DistanceAt(t + 1); d > out[t] {
				out[t] = d
			}
		}
	}
	return out
}

// MeanTrace returns the pointwise mean of the traces' TV curves (the
// "average mixing" curves of Figure 6b).
func MeanTrace(traces []*Trace) []float64 {
	if len(traces) == 0 {
		return nil
	}
	maxLen := 0
	for _, tr := range traces {
		if len(tr.TV) > maxLen {
			maxLen = len(tr.TV)
		}
	}
	out := make([]float64, maxLen)
	for _, tr := range traces {
		for t := 0; t < maxLen; t++ {
			out[t] += tr.DistanceAt(t + 1)
		}
	}
	inv := 1 / float64(len(traces))
	for t := range out {
		out[t] *= inv
	}
	return out
}

// EpsilonGrid returns a logarithmically spaced grid of k variation
// distances from hi down to lo, suitable for the ε axes of the
// paper's figures.
func EpsilonGrid(lo, hi float64, k int) []float64 {
	if k < 2 || lo <= 0 || hi <= lo {
		return []float64{hi}
	}
	out := make([]float64, k)
	ratio := math.Log(hi / lo)
	for i := 0; i < k; i++ {
		out[i] = hi * math.Exp(-ratio*float64(i)/float64(k-1))
	}
	return out
}
