//go:build !amd64

package markov

import "mixtime/internal/graph"

// useAVX2 is always false off amd64; the pure-Go register kernels in
// block.go carry the blocked propagation.
var useAVX2 = false

func stepRows8AVX(dst, p, w []float64, off []uint32, adj []graph.NodeID, strideBytes, lo, hi int, lazy bool) {
	panic("markov: AVX2 kernel called on non-amd64")
}

func stepRows4AVX(dst, p, w []float64, off []uint32, adj []graph.NodeID, strideBytes, lo, hi int, lazy bool) {
	panic("markov: AVX2 kernel called on non-amd64")
}

func blockTV8AVX(p, pi []float64, n int, tv *[8]float64) {
	panic("markov: AVX2 kernel called on non-amd64")
}

func scale8AVX(w, p, inv []float64, n int) {
	panic("markov: AVX2 kernel called on non-amd64")
}
