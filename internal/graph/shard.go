package graph

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ShardPlan partitions the vertex range [0, n) of a graph into
// contiguous shards balanced by CSR edge count: each shard's total
// adjacency length (Σ degree) is as close to equal as contiguity
// allows. Row-sharded kernels (parallel matvec, blocked propagation)
// split work along these boundaries so a worker's cost is
// proportional to the edges it touches, not the vertices it owns —
// on power-law social graphs a vertex-balanced split can leave one
// worker with most of the edges.
//
// A plan is computed once per graph (binary searches over the CSR
// offsets, O(shards·log n)) and is immutable and safe for concurrent
// use.
type ShardPlan struct {
	bounds []int // len shards+1; shard i covers vertices [bounds[i], bounds[i+1])
}

// NewShardPlan cuts g into at most shards contiguous vertex ranges of
// near-equal adjacency length. shards < 1 is treated as 1; plans never
// have more shards than vertices. Shards can be empty on extremely
// skewed graphs (a single vertex holding more than 1/shards of all
// edges); Do skips them.
func NewShardPlan(g *Graph, shards int) *ShardPlan {
	n := g.NumNodes()
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	if n == 0 {
		return &ShardPlan{bounds: []int{0}}
	}
	total := g.offsetAt(n)
	bounds := make([]int, shards+1)
	for i := 1; i < shards; i++ {
		target := total * int64(i) / int64(shards)
		// Smallest v with offsets[v] >= target; clamp to keep bounds
		// non-decreasing.
		v := sort.Search(n, func(v int) bool { return g.offsetAt(v) >= target })
		if v < bounds[i-1] {
			v = bounds[i-1]
		}
		bounds[i] = v
	}
	bounds[shards] = n
	return &ShardPlan{bounds: bounds}
}

// NumShards returns the number of shards in the plan.
func (p *ShardPlan) NumShards() int { return len(p.bounds) - 1 }

// Bounds returns the vertex range [lo, hi) of shard i.
func (p *ShardPlan) Bounds(i int) (lo, hi int) { return p.bounds[i], p.bounds[i+1] }

// Do runs fn once per non-empty shard, fanned out over up to workers
// goroutines that claim shards from an atomic counter (so a straggler
// shard does not idle the other workers). workers <= 1 runs the
// shards inline on the calling goroutine. Do returns when every shard
// has been processed; fn must be safe to call concurrently but may
// assume no two calls share a vertex.
func (p *ShardPlan) Do(workers int, fn func(lo, hi int)) {
	shards := p.NumShards()
	if workers > shards {
		workers = shards
	}
	if workers <= 1 {
		for i := 0; i < shards; i++ {
			if lo, hi := p.Bounds(i); lo < hi {
				fn(lo, hi)
			}
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= shards {
					return
				}
				if lo, hi := p.Bounds(i); lo < hi {
					fn(lo, hi)
				}
			}
		}()
	}
	wg.Wait()
}

// ShardStats summarizes how evenly a plan splits a graph's adjacency
// — the telemetry behind the "shard imbalance" gauge. A perfectly
// balanced plan has Imbalance 1.0; power-law graphs with one huge hub
// can push it well above that because shards are contiguous.
type ShardStats struct {
	// Shards is the number of non-empty shards.
	Shards int
	// MinAdj and MaxAdj are the smallest and largest shard adjacency
	// lengths (Σ degree over the shard's vertices).
	MinAdj, MaxAdj int64
	// MeanAdj is the mean adjacency length over non-empty shards.
	MeanAdj float64
	// Imbalance is MaxAdj / MeanAdj (1.0 = perfectly balanced).
	Imbalance float64
}

// Stats measures the plan's adjacency balance against g (the graph it
// was built from).
func (p *ShardPlan) Stats(g *Graph) ShardStats {
	var st ShardStats
	for i := 0; i < p.NumShards(); i++ {
		lo, hi := p.Bounds(i)
		if lo >= hi {
			continue
		}
		adj := g.offsetAt(hi) - g.offsetAt(lo)
		if st.Shards == 0 || adj < st.MinAdj {
			st.MinAdj = adj
		}
		if adj > st.MaxAdj {
			st.MaxAdj = adj
		}
		st.Shards++
		st.MeanAdj += float64(adj)
	}
	if st.Shards > 0 {
		st.MeanAdj /= float64(st.Shards)
		if st.MeanAdj > 0 {
			st.Imbalance = float64(st.MaxAdj) / st.MeanAdj
		}
	}
	return st
}

// AdjacencyOffset returns the CSR slot index of the first neighbor of
// v — the index into CSR-aligned parallel arrays (edge weights) where
// v's adjacency begins. AdjacencyOffset(v+1) − AdjacencyOffset(v) is
// Degree(v).
func (g *Graph) AdjacencyOffset(v NodeID) int64 { return g.offsetAt(int(v)) }
