package graph

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// shardTestGraph builds a connected graph with a deliberately skewed
// degree profile: a hub wired to everything plus a random tree.
func shardTestGraph(n int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 99))
	b := NewBuilder(0)
	for i := 1; i < n; i++ {
		b.AddEdge(NodeID(rng.IntN(i)), NodeID(i))
	}
	for i := 1; i < n; i++ {
		b.AddEdge(0, NodeID(i)) // hub
	}
	return b.Build()
}

func TestShardPlanCoversAllVertices(t *testing.T) {
	g := shardTestGraph(137, 3)
	for _, shards := range []int{1, 2, 3, 7, 16, 137, 1000} {
		p := NewShardPlan(g, shards)
		if p.NumShards() < 1 {
			t.Fatalf("shards=%d: plan has %d shards", shards, p.NumShards())
		}
		next := 0
		for i := 0; i < p.NumShards(); i++ {
			lo, hi := p.Bounds(i)
			if lo != next {
				t.Fatalf("shards=%d: shard %d starts at %d, want %d", shards, i, lo, next)
			}
			if hi < lo {
				t.Fatalf("shards=%d: shard %d is [%d, %d)", shards, i, lo, hi)
			}
			next = hi
		}
		if next != g.NumNodes() {
			t.Fatalf("shards=%d: plan ends at %d, want %d", shards, next, g.NumNodes())
		}
	}
}

func TestShardPlanBalancesEdges(t *testing.T) {
	// On a uniform-degree graph every shard should hold close to
	// total/shards adjacency entries.
	n := 400
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%n)) // ring: degree 2 everywhere
	}
	g := b.Build()
	shards := 8
	p := NewShardPlan(g, shards)
	total := 2 * int(g.NumEdges())
	ideal := total / shards
	for i := 0; i < p.NumShards(); i++ {
		lo, hi := p.Bounds(i)
		var adj int
		for v := lo; v < hi; v++ {
			adj += g.Degree(NodeID(v))
		}
		// Contiguity can misplace at most one vertex's adjacency (here
		// degree 2) per boundary.
		if adj < ideal-4 || adj > ideal+4 {
			t.Fatalf("shard %d holds %d adjacency entries, want ≈%d", i, adj, ideal)
		}
	}
}

func TestShardPlanSkewedHub(t *testing.T) {
	// A hub with more than 1/shards of all edges forces empty shards;
	// the plan must stay valid and Do must still cover every vertex.
	g := shardTestGraph(100, 7)
	p := NewShardPlan(g, 10)
	covered := make([]bool, g.NumNodes())
	p.Do(1, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			covered[v] = true
		}
	})
	for v, ok := range covered {
		if !ok {
			t.Fatalf("vertex %d not covered", v)
		}
	}
}

func TestShardPlanDoParallel(t *testing.T) {
	g := shardTestGraph(211, 11)
	p := NewShardPlan(g, 16)
	for _, workers := range []int{2, 4, 32} {
		var mu sync.Mutex
		count := make([]int, g.NumNodes())
		p.Do(workers, func(lo, hi int) {
			mu.Lock()
			defer mu.Unlock()
			for v := lo; v < hi; v++ {
				count[v]++
			}
		})
		for v, c := range count {
			if c != 1 {
				t.Fatalf("workers=%d: vertex %d visited %d times", workers, v, c)
			}
		}
	}
}

func TestShardPlanWorkersExceedShards(t *testing.T) {
	// Do clamps workers to the shard count; a tiny plan under a huge
	// worker fan-out must still visit every vertex exactly once and
	// return (no goroutine waits on a shard that never comes).
	g := shardTestGraph(50, 17)
	p := NewShardPlan(g, 2)
	var mu sync.Mutex
	count := make([]int, g.NumNodes())
	p.Do(64, func(lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		for v := lo; v < hi; v++ {
			count[v]++
		}
	})
	for v, c := range count {
		if c != 1 {
			t.Fatalf("vertex %d visited %d times", v, c)
		}
	}
}

func TestShardPlanZeroEdgeGraph(t *testing.T) {
	// All-isolated vertices: every CSR offset is zero, so every cut
	// target lands at 0 and all adjacency-balanced shards collapse to
	// the front. The plan must stay well-formed and cover [0, n).
	b := NewBuilder(0)
	b.AddNode(29)
	g := b.Build()
	if g.NumNodes() != 30 || g.NumEdges() != 0 {
		t.Fatalf("builder produced n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	p := NewShardPlan(g, 4)
	covered := make([]bool, g.NumNodes())
	p.Do(4, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			covered[v] = true
		}
	})
	for v, ok := range covered {
		if !ok {
			t.Fatalf("vertex %d not covered", v)
		}
	}
}

func TestShardPlanMoreShardsThanVertices(t *testing.T) {
	// Plans never exceed one shard per vertex: shards clamp to n. The
	// skewed degree profile still permits empty shards and multi-vertex
	// shards — only the count and the cover are guaranteed.
	g := shardTestGraph(5, 23)
	p := NewShardPlan(g, 64)
	if p.NumShards() != g.NumNodes() {
		t.Fatalf("plan has %d shards, want %d (clamped to n)", p.NumShards(), g.NumNodes())
	}
	count := make([]int, g.NumNodes())
	p.Do(1, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			count[v]++
		}
	})
	for v, c := range count {
		if c != 1 {
			t.Fatalf("vertex %d visited %d times", v, c)
		}
	}
}

func TestShardPlanEmptyGraph(t *testing.T) {
	p := NewShardPlan(&Graph{}, 4)
	if p.NumShards() != 0 {
		// A zero-vertex plan has a single [0,0) bound pair at most; Do
		// must simply not call fn.
		for i := 0; i < p.NumShards(); i++ {
			if lo, hi := p.Bounds(i); lo != hi {
				t.Fatalf("empty graph shard [%d, %d)", lo, hi)
			}
		}
	}
	called := false
	p.Do(4, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Do called fn on empty graph")
	}
}

func TestAdjacencyOffset(t *testing.T) {
	g := shardTestGraph(60, 13)
	if g.AdjacencyOffset(0) != 0 {
		t.Fatalf("offset(0) = %d", g.AdjacencyOffset(0))
	}
	for v := 0; v < g.NumNodes()-1; v++ {
		d := g.AdjacencyOffset(NodeID(v+1)) - g.AdjacencyOffset(NodeID(v))
		if int(d) != g.Degree(NodeID(v)) {
			t.Fatalf("offset delta at %d = %d, want degree %d", v, d, g.Degree(NodeID(v)))
		}
	}
}

func TestShardStats(t *testing.T) {
	g := shardTestGraph(500, 5)
	total := int64(2) * g.NumEdges()

	// One shard holds everything: Min = Max = Mean = 2m, Imbalance 1.
	one := NewShardPlan(g, 1).Stats(g)
	if one.Shards != 1 || one.MinAdj != total || one.MaxAdj != total {
		t.Fatalf("1-shard stats = %+v, want all adjacency (%d) in one shard", one, total)
	}
	if one.Imbalance != 1 {
		t.Errorf("1-shard imbalance = %v, want 1", one.Imbalance)
	}

	// Multiple shards must partition the adjacency exactly and keep
	// the invariants Min ≤ Mean ≤ Max and Imbalance = Max/Mean ≥ 1.
	for _, shards := range []int{2, 4, 8, 16} {
		st := NewShardPlan(g, shards).Stats(g)
		if sum := int64(st.MeanAdj*float64(st.Shards) + 0.5); sum != total {
			t.Errorf("shards=%d: adjacency sums to %d, want %d", shards, sum, total)
		}
		if float64(st.MinAdj) > st.MeanAdj || st.MeanAdj > float64(st.MaxAdj) {
			t.Errorf("shards=%d: min %d ≤ mean %.1f ≤ max %d violated",
				shards, st.MinAdj, st.MeanAdj, st.MaxAdj)
		}
		if st.Imbalance < 1 {
			t.Errorf("shards=%d: imbalance %v < 1", shards, st.Imbalance)
		}
	}

	// An empty plan yields zero stats rather than dividing by zero.
	empty := NewShardPlan(&Graph{}, 4).Stats(&Graph{})
	if empty.Shards != 0 || empty.Imbalance != 0 {
		t.Errorf("empty-graph stats = %+v, want zeros", empty)
	}
}
