package graph

// BFS visits nodes in breadth-first order from start, calling fn with
// each node and its depth. Traversal stops early if fn returns false.
func BFS(g *Graph, start NodeID, fn func(v NodeID, depth int) bool) {
	n := g.NumNodes()
	if n == 0 {
		return
	}
	seen := make([]bool, n)
	type item struct {
		v     NodeID
		depth int
	}
	queue := make([]item, 0, 64)
	queue = append(queue, item{start, 0})
	seen[start] = true
	for head := 0; head < len(queue); head++ {
		it := queue[head]
		if !fn(it.v, it.depth) {
			return
		}
		for _, w := range g.Neighbors(it.v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, item{w, it.depth + 1})
			}
		}
	}
}

// BFSSample returns the first k nodes reached by a breadth-first
// search from start (fewer if start's component is smaller). This is
// the sampling procedure the paper uses to cut 10K/100K/1000K-node
// subgraphs out of the million-node datasets; the paper notes BFS may
// bias the sample toward faster mixing, which only strengthens its
// slow-mixing conclusion.
func BFSSample(g *Graph, start NodeID, k int) []NodeID {
	nodes := make([]NodeID, 0, k)
	BFS(g, start, func(v NodeID, _ int) bool {
		nodes = append(nodes, v)
		return len(nodes) < k
	})
	return nodes
}

// BFSSubgraph BFS-samples k nodes from start and returns the induced
// subgraph together with the new-to-original ID mapping.
func BFSSubgraph(g *Graph, start NodeID, k int) (*Graph, []NodeID) {
	return Subgraph(g, BFSSample(g, start, k))
}

// Eccentricity returns the greatest BFS depth reachable from v within
// its component.
func Eccentricity(g *Graph, v NodeID) int {
	max := 0
	BFS(g, v, func(_ NodeID, depth int) bool {
		if depth > max {
			max = depth
		}
		return true
	})
	return max
}

// Diameter returns an exact diameter for the (connected) graph by
// running a BFS from every node. Intended for small graphs and tests;
// cost is O(n·m).
func Diameter(g *Graph) int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if e := Eccentricity(g, NodeID(v)); e > max {
			max = e
		}
	}
	return max
}
