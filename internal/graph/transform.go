package graph

// Subgraph returns the subgraph induced by nodes, relabeled to the
// contiguous range [0, len(nodes)). The second return value maps new
// node IDs back to the original IDs (it is a copy of nodes with
// duplicates removed, in first-seen order).
func Subgraph(g *Graph, nodes []NodeID) (*Graph, []NodeID) {
	const absent = ^NodeID(0)
	remap := make([]NodeID, g.NumNodes())
	for i := range remap {
		remap[i] = absent
	}
	orig := make([]NodeID, 0, len(nodes))
	for _, v := range nodes {
		if remap[v] == absent {
			remap[v] = NodeID(len(orig))
			orig = append(orig, v)
		}
	}
	b := NewBuilder(0)
	if len(orig) > 0 {
		b.AddNode(NodeID(len(orig) - 1))
	}
	for newU, oldU := range orig {
		for _, oldV := range g.Neighbors(oldU) {
			if newV := remap[oldV]; newV != absent && NodeID(newU) < newV {
				b.AddEdge(NodeID(newU), newV)
			}
		}
	}
	return b.Build(), orig
}

// ConnectedComponents labels every node with a component index in
// [0, k) and returns the labels together with the size of each
// component. Empty graphs yield (nil, nil).
func ConnectedComponents(g *Graph) (labels []int32, sizes []int64) {
	n := g.NumNodes()
	if n == 0 {
		return nil, nil
	}
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var queue []NodeID
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		comp := int32(len(sizes))
		size := int64(0)
		queue = append(queue[:0], NodeID(start))
		labels[start] = comp
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, w := range g.Neighbors(v) {
				if labels[w] == -1 {
					labels[w] = comp
					queue = append(queue, w)
				}
			}
		}
		sizes = append(sizes, size)
	}
	return labels, sizes
}

// IsConnected reports whether the graph is connected. Graphs with at
// most one node are connected.
func IsConnected(g *Graph) bool {
	_, sizes := ConnectedComponents(g)
	return len(sizes) <= 1
}

// LargestComponent extracts the largest connected component, relabeled
// to [0, k). The mixing time is undefined for disconnected graphs, so
// the paper measures the largest component of every dataset. The
// second return value maps new IDs to original IDs.
func LargestComponent(g *Graph) (*Graph, []NodeID) {
	labels, sizes := ConnectedComponents(g)
	if len(sizes) == 0 {
		return &Graph{}, nil
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	nodes := make([]NodeID, 0, sizes[best])
	for v, l := range labels {
		if l == int32(best) {
			nodes = append(nodes, NodeID(v))
		}
	}
	return Subgraph(g, nodes)
}

// Trim iteratively removes every node of degree < minDeg until the
// remaining graph has minimum degree >= minDeg (the (minDeg)-core),
// then relabels. This is the preprocessing SybilGuard/SybilLimit apply
// to speed up mixing; Figure 6 of the paper measures its effect on
// DBLP. The second return value maps new IDs to original IDs. The
// result may be empty.
func Trim(g *Graph, minDeg int) (*Graph, []NodeID) {
	n := g.NumNodes()
	deg := make([]int, n)
	removed := make([]bool, n)
	var queue []NodeID
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(NodeID(v))
		if deg[v] < minDeg {
			removed[v] = true
			queue = append(queue, NodeID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(v) {
			if removed[w] {
				continue
			}
			deg[w]--
			if deg[w] < minDeg {
				removed[w] = true
				queue = append(queue, w)
			}
		}
	}
	nodes := make([]NodeID, 0, n)
	for v := 0; v < n; v++ {
		if !removed[v] {
			nodes = append(nodes, NodeID(v))
		}
	}
	return Subgraph(g, nodes)
}

// Coreness returns each node's core number: the largest k such that
// the node survives in the k-core (Trim to min degree k). Computed in
// O(m) by the Batagelj–Zaveršnik bucket peeling. Trim levels and
// coreness agree: Trim(g, k) keeps exactly the nodes with
// coreness ≥ k.
func Coreness(g *Graph) []int {
	n := g.NumNodes()
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(NodeID(v))
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int, n)   // node → position in order
	order := make([]int, n) // sorted by current degree
	cursor := make([]int, maxDeg+1)
	copy(cursor, binStart[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = cursor[deg[v]]
		order[pos[v]] = v
		cursor[deg[v]]++
	}
	start := make([]int, maxDeg+1)
	copy(start, binStart[:maxDeg+1])

	for i := 0; i < n; i++ {
		v := order[i]
		core[v] = deg[v]
		for _, w := range g.Neighbors(NodeID(v)) {
			if deg[w] > deg[v] {
				// Move w to the front of its degree bucket, then
				// decrement its degree.
				dw := deg[w]
				pw := pos[w]
				pFront := start[dw]
				u := order[pFront]
				if u != int(w) {
					order[pw], order[pFront] = u, int(w)
					pos[u], pos[w] = pw, pFront
				}
				start[dw]++
				deg[w]--
			}
		}
	}
	return core
}

// IsBipartite reports whether the graph is bipartite. A connected
// bipartite graph has a periodic random walk (SLEM = 1) and never
// mixes; callers should use the lazy chain on such graphs.
func IsBipartite(g *Graph) bool {
	n := g.NumNodes()
	color := make([]int8, n) // 0 unseen, 1 / 2 sides
	var queue []NodeID
	for start := 0; start < n; start++ {
		if color[start] != 0 {
			continue
		}
		color[start] = 1
		queue = append(queue[:0], NodeID(start))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range g.Neighbors(v) {
				switch color[w] {
				case 0:
					color[w] = 3 - color[v]
					queue = append(queue, w)
				case color[v]:
					return false
				}
			}
		}
	}
	return true
}
