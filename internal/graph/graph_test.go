package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// ring returns the cycle C_n.
func ring(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(NodeID(i), NodeID((i+1)%n))
	}
	return b.Build()
}

// complete returns K_n.
func complete(n int) *Graph {
	b := NewBuilder(n * (n - 1) / 2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(NodeID(i), NodeID(j))
		}
	}
	return b.Build()
}

// randomGraph returns a G(n, p) sample from a fixed-seed generator.
func randomGraph(n int, p float64, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, 0xfeed))
	b := NewBuilder(0)
	b.AddNode(NodeID(n - 1))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(NodeID(i), NodeID(j))
			}
		}
	}
	return b.Build()
}

func TestEmptyGraph(t *testing.T) {
	g := (&Builder{}).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("empty graph invalid: %v", err)
	}
	if !IsConnected(g) {
		// Degenerate convention: the empty graph is connected.
		t.Fatal("empty graph reported disconnected")
	}
}

func TestBuilderDedupAndLoops(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self-loop: dropped
	b.AddNode(3)    // isolated node
	g := b.Build()
	if g.NumNodes() != 4 {
		t.Fatalf("n = %d, want 4", g.NumNodes())
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m = %d, want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 || g.Degree(3) != 0 {
		t.Fatal("self-loop or phantom edge survived")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestHasEdgeAndSlot(t *testing.T) {
	g := ring(5)
	for i := 0; i < 5; i++ {
		u, v := NodeID(i), NodeID((i+1)%5)
		if !g.HasEdge(u, v) || !g.HasEdge(v, u) {
			t.Fatalf("ring edge {%d,%d} missing", u, v)
		}
	}
	if g.HasEdge(0, 2) {
		t.Fatal("non-edge {0,2} reported present")
	}
	if got := g.EdgeSlot(0, 1); got < 0 || g.Neighbors(0)[got] != 1 {
		t.Fatalf("EdgeSlot(0,1) = %d", got)
	}
	if got := g.EdgeSlot(0, 3); got != -1 {
		t.Fatalf("EdgeSlot(0,3) = %d, want -1", got)
	}
}

func TestDegreeStats(t *testing.T) {
	g := complete(6)
	if g.MinDegree() != 5 || g.MaxDegree() != 5 {
		t.Fatalf("K6 degrees min=%d max=%d", g.MinDegree(), g.MaxDegree())
	}
	if got := g.AvgDegree(); got != 5 {
		t.Fatalf("K6 avg degree = %v", got)
	}
}

func TestEdgesIteration(t *testing.T) {
	g := complete(5)
	count := 0
	g.Edges(func(u, v NodeID) bool {
		if u >= v {
			t.Fatalf("edge iteration yielded u=%d >= v=%d", u, v)
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("K5 yielded %d edges, want 10", count)
	}
	count = 0
	g.Edges(func(u, v NodeID) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop yielded %d edges", count)
	}
}

func TestFromEdgesRangeCheck(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	g, err := FromEdges(4, []Edge{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("got %v", g)
	}
}

func TestFromAdjacency(t *testing.T) {
	g := FromAdjacency([][]NodeID{{1, 2}, {0}, {0}, {}})
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("got %v", g)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	b.AddNode(5)
	g := b.Build()
	labels, sizes := ConnectedComponents(g)
	if len(sizes) != 3 {
		t.Fatalf("%d components, want 3", len(sizes))
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("triangle component split")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Fatal("pair component wrong")
	}
	if IsConnected(g) {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestLargestComponent(t *testing.T) {
	b := NewBuilder(0)
	// component A: path of 4 nodes; component B: triangle.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 4)
	g := b.Build()
	lcc, orig := LargestComponent(g)
	if lcc.NumNodes() != 4 {
		t.Fatalf("LCC has %d nodes, want 4", lcc.NumNodes())
	}
	if len(orig) != 4 || orig[0] != 0 {
		t.Fatalf("orig mapping %v", orig)
	}
	if !IsConnected(lcc) {
		t.Fatal("LCC not connected")
	}
}

func TestSubgraphMapping(t *testing.T) {
	g := complete(6)
	sub, orig := Subgraph(g, []NodeID{5, 1, 3, 1}) // duplicate 1 tolerated
	if sub.NumNodes() != 3 {
		t.Fatalf("n = %d, want 3", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("m = %d, want 3 (triangle)", sub.NumEdges())
	}
	want := []NodeID{5, 1, 3}
	for i, v := range want {
		if orig[i] != v {
			t.Fatalf("orig = %v, want %v", orig, want)
		}
	}
}

func TestTrimToCore(t *testing.T) {
	// Triangle with a pendant path attached: trimming to minDeg 2
	// must remove the whole path (cascade), keeping the triangle.
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()
	core, orig := Trim(g, 2)
	if core.NumNodes() != 3 {
		t.Fatalf("2-core has %d nodes, want 3 (got map %v)", core.NumNodes(), orig)
	}
	if core.MinDegree() < 2 {
		t.Fatalf("2-core min degree %d", core.MinDegree())
	}
	// Trimming harder than the densest part empties the graph.
	empty, _ := Trim(g, 3)
	if empty.NumNodes() != 0 {
		t.Fatalf("3-core of a triangle+path has %d nodes", empty.NumNodes())
	}
}

func TestTrimPreservesWhenAlreadyCore(t *testing.T) {
	g := complete(5)
	core, _ := Trim(g, 3)
	if core.NumNodes() != 5 || core.NumEdges() != 10 {
		t.Fatalf("K5 trimmed to %v", core)
	}
}

func TestCorenessKnown(t *testing.T) {
	// Triangle with pendant path: triangle nodes core 2, path core 1.
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	core := Coreness(g)
	want := []int{2, 2, 2, 1, 1}
	for v, w := range want {
		if core[v] != w {
			t.Fatalf("coreness = %v, want %v", core, want)
		}
	}
	// K5: all coreness 4.
	for _, c := range Coreness(complete(5)) {
		if c != 4 {
			t.Fatalf("K5 coreness %d", c)
		}
	}
	if len(Coreness(&Graph{})) != 0 {
		t.Fatal("empty coreness")
	}
}

// Property: Trim(g,k) keeps exactly the nodes with coreness ≥ k.
func TestQuickCorenessMatchesTrim(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomGraph(70, 0.05, seed)
		core := Coreness(g)
		for k := 1; k <= 4; k++ {
			trimmed, orig := Trim(g, k)
			kept := map[NodeID]bool{}
			for _, v := range orig {
				kept[v] = true
			}
			_ = trimmed
			for v := 0; v < g.NumNodes(); v++ {
				if kept[NodeID(v)] != (core[v] >= k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIsBipartite(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"even ring", ring(6), true},
		{"odd ring", ring(7), false},
		{"K4", complete(4), false},
		{"single edge", FromAdjacency([][]NodeID{{1}, {0}}), true},
		{"empty", &Graph{}, true},
	}
	for _, c := range cases {
		if got := IsBipartite(c.g); got != c.want {
			t.Errorf("%s: IsBipartite = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBFSOrder(t *testing.T) {
	// Star: center 0 with leaves 1..4. BFS from 0 visits 0 at depth 0,
	// leaves at depth 1.
	b := NewBuilder(0)
	for i := 1; i <= 4; i++ {
		b.AddEdge(0, NodeID(i))
	}
	g := b.Build()
	depths := map[NodeID]int{}
	BFS(g, 0, func(v NodeID, d int) bool { depths[v] = d; return true })
	if depths[0] != 0 {
		t.Fatal("root depth != 0")
	}
	for i := 1; i <= 4; i++ {
		if depths[NodeID(i)] != 1 {
			t.Fatalf("leaf %d at depth %d", i, depths[NodeID(i)])
		}
	}
}

func TestBFSSampleSizeAndConnectivity(t *testing.T) {
	g := randomGraph(200, 0.05, 7)
	lcc, _ := LargestComponent(g)
	for _, k := range []int{1, 10, 50, lcc.NumNodes(), lcc.NumNodes() + 100} {
		sub, _ := BFSSubgraph(lcc, 0, k)
		wantN := k
		if wantN > lcc.NumNodes() {
			wantN = lcc.NumNodes()
		}
		if sub.NumNodes() != wantN {
			t.Fatalf("BFS sample k=%d: n=%d want %d", k, sub.NumNodes(), wantN)
		}
		if !IsConnected(sub) {
			t.Fatalf("BFS sample k=%d disconnected", k)
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	// Path 0-1-2-3: diameter 3; eccentricity of an end is 3, middle 2.
	b := NewBuilder(0)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	if e := Eccentricity(g, 0); e != 3 {
		t.Fatalf("ecc(0) = %d", e)
	}
	if e := Eccentricity(g, 1); e != 2 {
		t.Fatalf("ecc(1) = %d", e)
	}
	if d := Diameter(g); d != 3 {
		t.Fatalf("diameter = %d", d)
	}
	if d := Diameter(complete(8)); d != 1 {
		t.Fatalf("K8 diameter = %d", d)
	}
	if d := Diameter(ring(10)); d != 5 {
		t.Fatalf("C10 diameter = %d", d)
	}
}

// Property: any graph built from a random edge list validates, has
// symmetric adjacency, and degree sum equal to 2m.
func TestQuickBuildInvariants(t *testing.T) {
	f := func(raw []uint16) bool {
		b := NewBuilder(0)
		for i := 0; i+1 < len(raw); i += 2 {
			b.AddEdge(NodeID(raw[i]%512), NodeID(raw[i+1]%512))
		}
		g := b.Build()
		if err := g.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		var degSum int64
		for v := 0; v < g.NumNodes(); v++ {
			degSum += int64(g.Degree(NodeID(v)))
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: component sizes sum to n, and LCC size equals the max.
func TestQuickComponents(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := 20 + int(seed%100)
		b := NewBuilder(0)
		b.AddNode(NodeID(n - 1))
		for i := 0; i < n; i++ {
			b.AddEdge(NodeID(rng.IntN(n)), NodeID(rng.IntN(n)))
		}
		g := b.Build()
		_, sizes := ConnectedComponents(g)
		var total int64
		var max int64
		for _, s := range sizes {
			total += s
			if s > max {
				max = s
			}
		}
		if total != int64(g.NumNodes()) {
			return false
		}
		lcc, _ := LargestComponent(g)
		return int64(lcc.NumNodes()) == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Trim output always has min degree >= k or is empty, and
// never gains edges.
func TestQuickTrim(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		k := int(kRaw%5) + 1
		g := randomGraph(80, 0.04, seed)
		core, orig := Trim(g, k)
		if core.NumNodes() == 0 {
			return true
		}
		if core.MinDegree() < k {
			return false
		}
		if core.NumEdges() > g.NumEdges() {
			return false
		}
		// Every surviving edge must exist in the original graph.
		ok := true
		core.Edges(func(u, v NodeID) bool {
			if !g.HasEdge(orig[u], orig[v]) {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild100k(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	edges := make([]Edge, 100_000)
	for i := range edges {
		edges[i] = Edge{NodeID(rng.IntN(20_000)), NodeID(rng.IntN(20_000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl := NewBuilder(len(edges))
		for _, e := range edges {
			bl.AddEdge(e.U, e.V)
		}
		_ = bl.Build()
	}
}
