package graph

import (
	"testing"
)

// TestCompactOffsetsChosen: every realistically sized graph must land
// on the uint32 offset form — that is the whole bandwidth win.
func TestCompactOffsetsChosen(t *testing.T) {
	g := ring(10)
	if g.Offsets32() == nil {
		t.Fatal("builder graph did not use compact offsets")
	}
	if g.Offsets64() != nil {
		t.Fatal("compact graph also carries wide offsets")
	}
	if len(g.Offsets32()) != g.NumNodes()+1 {
		t.Fatalf("offsets length %d, want %d", len(g.Offsets32()), g.NumNodes()+1)
	}
	back, err := FromCSR(g.AppendCSR(nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if back.Offsets32() == nil {
		t.Fatal("FromCSR did not compact offsets")
	}
}

// TestFromCSR32Adopts: the compact constructor must retain the exact
// arrays (zero-copy loading is its contract).
func TestFromCSR32Adopts(t *testing.T) {
	off := []uint32{0, 1, 2}
	adj := []NodeID{1, 0}
	g, err := FromCSR32(off, adj)
	if err != nil {
		t.Fatal(err)
	}
	if &g.Offsets32()[0] != &off[0] || &g.Adjacency()[0] != &adj[0] {
		t.Fatal("FromCSR32 copied its arrays")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 || g.Degree(0) != 1 {
		t.Fatalf("adopted graph wrong shape: %v", g)
	}
}

// TestFromCSR32RejectsInvalid mirrors the FromCSR hardening for the
// compact path.
func TestFromCSR32RejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		off  []uint32
		adj  []NodeID
	}{
		{"no offsets with neighbors", nil, []NodeID{1}},
		{"bounds mismatch", []uint32{0, 1}, nil},
		{"non-monotone", []uint32{0, 2, 1, 2}, []NodeID{1, 2}},
		{"self loop", []uint32{0, 1}, []NodeID{0}},
		{"asymmetric", []uint32{0, 1, 1}, []NodeID{1}},
	}
	for _, c := range cases {
		if _, err := FromCSR32(c.off, c.adj); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

// TestFromCSRRejectsNegativeOffset: widening conversions must not
// smuggle a negative offset into the compact form.
func TestFromCSRRejectsNegativeOffset(t *testing.T) {
	if _, err := FromCSR([]int64{0, -1, 2}, []NodeID{1, 0}); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// wide returns g rebuilt on the int64 offset path, as a 4B+-edge
// graph would be stored, so the fallback code paths stay tested
// without a 16 GiB fixture.
func wide(g *Graph) *Graph {
	n := g.NumNodes()
	off := make([]int64, n+1)
	for v := 0; v <= n; v++ {
		off[v] = g.offsetAt(v)
	}
	return &Graph{off64: off, neighbors: g.Adjacency()}
}

// TestWideOffsetsAgree runs the accessor surface on the wide twin of
// a compact graph and demands identical answers everywhere.
func TestWideOffsetsAgree(t *testing.T) {
	g := ring(50)
	w := wide(g)
	if w.Offsets32() != nil || w.Offsets64() == nil {
		t.Fatal("wide twin not on the int64 path")
	}
	if err := w.Validate(); err != nil {
		t.Fatalf("wide twin invalid: %v", err)
	}
	if w.NumNodes() != g.NumNodes() || w.NumEdges() != g.NumEdges() {
		t.Fatal("shape mismatch")
	}
	for v := 0; v < g.NumNodes(); v++ {
		id := NodeID(v)
		if w.Degree(id) != g.Degree(id) || w.AdjacencyOffset(id) != g.AdjacencyOffset(id) {
			t.Fatalf("node %d: degree/offset mismatch", v)
		}
		cadj, wadj := g.Neighbors(id), w.Neighbors(id)
		for i := range cadj {
			if cadj[i] != wadj[i] {
				t.Fatalf("node %d neighbor %d mismatch", v, i)
			}
		}
	}
	cp, wp := NewShardPlan(g, 4), NewShardPlan(w, 4)
	for i := 0; i < cp.NumShards(); i++ {
		clo, chi := cp.Bounds(i)
		wlo, whi := wp.Bounds(i)
		if clo != wlo || chi != whi {
			t.Fatalf("shard %d bounds differ: [%d,%d) vs [%d,%d)", i, clo, chi, wlo, whi)
		}
	}
}
