// Package graph provides a compact, immutable undirected graph in
// compressed sparse row (CSR) form, together with the structural
// transformations used throughout the mixing-time measurement
// methodology: largest-connected-component extraction, low-degree
// trimming, BFS sampling, and induced subgraphs.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected;
// directed inputs are symmetrized at build time, matching the
// preprocessing used by the paper and by the Sybil-defense literature
// it measures.
package graph

import (
	"fmt"
	"math"
)

// NodeID identifies a vertex. Vertices of a Graph with n nodes are the
// contiguous range [0, n).
type NodeID = uint32

// MaxNodes is the largest node count a Graph supports.
const MaxNodes = math.MaxUint32 - 1

// Graph is an immutable simple undirected graph in CSR form. The zero
// value is an empty graph. All methods are safe for concurrent use.
type Graph struct {
	offsets   []int64 // len n+1; offsets[v]..offsets[v+1] indexes neighbors
	neighbors []NodeID
}

// NumNodes returns the number of vertices n.
func (g *Graph) NumNodes() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges m. Each edge {u,v}
// is counted once.
func (g *Graph) NumEdges() int64 { return int64(len(g.neighbors)) / 2 }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v NodeID) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the adjacency list of v, sorted ascending. The
// returned slice aliases the graph's internal storage and must not be
// modified.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge {u, v} is present, by binary search
// over u's (sorted) adjacency list.
func (g *Graph) HasEdge(u, v NodeID) bool {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == v
}

// EdgeSlot returns the index of v within u's adjacency list, or -1 if
// {u,v} is not an edge. Edge slots are the per-node "pin numbers" used
// by random-route permutations in SybilGuard/SybilLimit.
func (g *Graph) EdgeSlot(u, v NodeID) int {
	adj := g.Neighbors(u)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(adj) && adj[lo] == v {
		return lo
	}
	return -1
}

// MinDegree returns the smallest degree in the graph, or 0 for an
// empty graph.
func (g *Graph) MinDegree() int {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	min := g.Degree(0)
	for v := 1; v < n; v++ {
		if d := g.Degree(NodeID(v)); d < min {
			min = d
		}
	}
	return min
}

// MaxDegree returns the largest degree in the graph, or 0 for an empty
// graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.NumNodes(); v++ {
		if d := g.Degree(NodeID(v)); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean degree 2m/n, or 0 for an empty graph.
func (g *Graph) AvgDegree() float64 {
	n := g.NumNodes()
	if n == 0 {
		return 0
	}
	return float64(2*g.NumEdges()) / float64(n)
}

// Edges calls fn once for every undirected edge {u, v} with u < v.
// Iteration stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v NodeID) bool) {
	for u := 0; u < g.NumNodes(); u++ {
		for _, v := range g.Neighbors(NodeID(u)) {
			if NodeID(u) < v {
				if !fn(NodeID(u), v) {
					return
				}
			}
		}
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.NumNodes(), g.NumEdges())
}

// Validate checks the structural invariants of the CSR representation:
// sorted, deduplicated, loop-free and symmetric adjacency. It is
// intended for tests and for validating externally constructed graphs.
func (g *Graph) Validate() error {
	n := g.NumNodes()
	if n == 0 {
		if len(g.neighbors) != 0 {
			return fmt.Errorf("graph: empty offsets with %d neighbors", len(g.neighbors))
		}
		return nil
	}
	if g.offsets[0] != 0 || g.offsets[n] != int64(len(g.neighbors)) {
		return fmt.Errorf("graph: offset bounds [%d,%d] do not match %d neighbors",
			g.offsets[0], g.offsets[n], len(g.neighbors))
	}
	// All offsets must be monotone before any adjacency slicing:
	// HasEdge below indexes by the *neighbor's* offsets, which the
	// per-node loop would not have vetted yet.
	for v := 0; v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] {
			return fmt.Errorf("graph: decreasing offsets at node %d", v)
		}
	}
	for v := 0; v < n; v++ {
		adj := g.Neighbors(NodeID(v))
		for i, w := range adj {
			if int(w) >= n {
				return fmt.Errorf("graph: node %d has out-of-range neighbor %d", v, w)
			}
			if w == NodeID(v) {
				return fmt.Errorf("graph: self-loop at node %d", v)
			}
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: adjacency of node %d not strictly sorted", v)
			}
			if !g.HasEdge(w, NodeID(v)) {
				return fmt.Errorf("graph: edge %d->%d has no reverse", v, w)
			}
		}
	}
	return nil
}
